// Remote TimeKits: the host-side view of the §4 implementation, where
// TimeKits talks to the device through (NVMe-wrapped) commands rather than
// function calls. This example starts an in-process almanacd server on a
// loopback socket, then performs the whole quickstart flow — write,
// time-travel, roll back — purely over the wire.
package main

import (
	"fmt"
	"log"
	"net"

	"almanac/internal/almaproto"
	"almanac/internal/core"
	"almanac/internal/flash"
	"almanac/internal/ftl"
	"almanac/internal/vclock"
)

func main() {
	// Device + server (in production this is the almanacd command).
	dev, err := core.New(core.DefaultConfig(ftl.WithFlash(flash.DefaultConfig())))
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := almaproto.NewServer(dev)
	go srv.Serve(ln)
	defer srv.Close()

	// Host side: pure protocol client.
	c, err := almaproto.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	id, err := c.Identify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected: %d logical pages × %d B, %d channels\n",
		id.LogicalPages, id.PageSize, id.Channels)

	page := func(s string) []byte {
		p := make([]byte, id.PageSize)
		copy(p, s)
		return p
	}
	const lpa = 7
	for i, s := range []string{"draft one", "draft two", "final copy"} {
		at := vclock.Time(i+1) * vclock.Time(vclock.Hour)
		if _, err := c.Write(lpa, page(s), at); err != nil {
			log.Fatal(err)
		}
	}
	now := vclock.Time(4 * vclock.Hour)

	vers, _, err := c.AddrQueryAll(lpa, 1, now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("versions over the wire:")
	for _, v := range vers[0].Versions {
		fmt.Printf("  %v live=%-5v %q\n", v.TS, v.Live, string(v.Data[:10]))
	}

	if _, _, err := c.RollBack(lpa, 1, vclock.Time(90*vclock.Minute), now); err != nil {
		log.Fatal(err)
	}
	data, _, err := c.Read(lpa, now.Add(vclock.Second))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after remote rollback: %q\n", string(data[:9]))

	st, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device stats: %d host writes, %d flash programs, %d deltas\n",
		st.HostPageWrites, st.FlashPrograms, st.DeltasCreated)
}
