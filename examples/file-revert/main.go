// File revert: the paper's "git-revert without git" case study (§5.5.2,
// Fig. 11). A stream of commits patches kernel source files; afterwards
// each file is reverted to its state one minute earlier with 1, 2 and 4
// host threads, showing recovery accelerate with the SSD's internal
// channel parallelism.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"almanac/internal/core"
	"almanac/internal/flash"
	"almanac/internal/fsim"
	"almanac/internal/ftl"
	"almanac/internal/timekits"
	"almanac/internal/vclock"
)

var files = []string{"mmap.c", "mprotect.c", "slab.c", "swap.c", "aio.c"}

func build() (*fsim.FS, *timekits.Kit, vclock.Time) {
	dev, err := core.New(core.DefaultConfig(ftl.WithFlash(flash.DefaultConfig())))
	if err != nil {
		log.Fatal(err)
	}
	fs, at, err := fsim.Mkfs(dev, fsim.DefaultOptions(fsim.ModeInPlace), 0)
	if err != nil {
		log.Fatal(err)
	}
	return fs, timekits.New(dev), at
}

func main() {
	rng := rand.New(rand.NewSource(1))
	for _, threads := range []int{1, 2, 4} {
		fs, kit, at := build()
		ps := fs.Device().PageSize()

		// Seed the "source tree".
		for _, name := range files {
			var err error
			if at, err = fs.Create(name, at); err != nil {
				log.Fatal(err)
			}
			if at, err = fs.Write(name, 0, src(rng, 8*ps), at); err != nil {
				log.Fatal(err)
			}
		}
		// Replay 60 commits, ~100 per virtual minute like the paper.
		for i := 0; i < 60; i++ {
			name := files[rng.Intn(len(files))]
			size, _ := fs.Size(name)
			off := rng.Int63n(size - 128)
			var err error
			if at, err = fs.Write(name, off, src(rng, 128+rng.Intn(ps)), at); err != nil {
				log.Fatal(err)
			}
			at = at.Add(600 * vclock.Millisecond)
		}

		// Revert every file to one minute before "now".
		target := at.Add(-vclock.Minute)
		var total vclock.Duration
		for _, name := range files {
			lpas, err := fs.FileLPAs(name)
			if err != nil {
				log.Fatal(err)
			}
			res, err := kit.RollBackParallel(lpas, threads, target, at)
			if err != nil {
				log.Fatal(err)
			}
			total += res.Elapsed
			at = res.Done
		}
		fmt.Printf("%d thread(s): reverted %d files in %v total device time\n",
			threads, len(files), total)
	}
	fmt.Println("more threads keep more flash channels busy, so recovery accelerates —")
	fmt.Println("the effect Figure 11 of the paper measures.")
}

func src(rng *rand.Rand, n int) []byte {
	tokens := []string{"static int ", "return -EINVAL;\n", "struct page *p;\n", "if (err)\n\t", "spin_lock(&l);\n"}
	out := make([]byte, 0, n)
	for len(out) < n {
		out = append(out, tokens[rng.Intn(len(tokens))]...)
	}
	return out[:n]
}
