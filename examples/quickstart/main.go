// Quickstart: build a TimeSSD, write a few versions of a page, travel back
// in time, and roll the page back — the smallest end-to-end tour of the
// Project Almanac API.
package main

import (
	"fmt"
	"log"

	"almanac/internal/core"
	"almanac/internal/flash"
	"almanac/internal/ftl"
	"almanac/internal/timekits"
	"almanac/internal/vclock"
)

func main() {
	// A small simulated SSD: 4 channels, 4 KiB pages, ~32 MiB raw.
	fc := flash.DefaultConfig()
	cfg := core.DefaultConfig(ftl.WithFlash(fc))
	dev, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	kit := timekits.New(dev)

	page := func(s string) []byte {
		p := make([]byte, dev.PageSize())
		copy(p, s)
		return p
	}

	// Write three versions of logical page 42 at different (virtual) times.
	const lpa = 42
	t1 := vclock.Time(1 * vclock.Hour)
	t2 := vclock.Time(2 * vclock.Hour)
	t3 := vclock.Time(3 * vclock.Hour)
	for _, v := range []struct {
		at  vclock.Time
		txt string
	}{
		{t1, "v1: the original document"},
		{t2, "v2: an edited document"},
		{t3, "v3: the latest document"},
	} {
		if _, err := dev.Write(lpa, page(v.txt), v.at); err != nil {
			log.Fatal(err)
		}
	}
	now := vclock.Time(4 * vclock.Hour)

	// 1. Read the current state.
	cur, _, _ := dev.Read(lpa, now)
	fmt.Printf("current state:      %q\n", trim(cur))

	// 2. Time-travel: every retained version, newest first.
	res, err := kit.AddrQueryAll(lpa, 1, now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("retained versions:")
	for _, v := range res.Value[0].Versions {
		fmt.Printf("  written %-14v live=%-5v %q\n", v.TS, v.Live, trim(v.Data))
	}

	// 3. What was the state at 2.5 hours?
	at25 := vclock.Time(2*vclock.Hour + 30*vclock.Minute)
	q, err := kit.AddrQuery(lpa, 1, at25, now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("state at t=2.5h:    %q\n", trim(q.Value[0].Versions[0].Data))

	// 4. Roll the page back to that state (the rollback itself is just
	// another version — nothing is lost).
	rb, err := kit.RollBack(lpa, 1, at25, q.Done)
	if err != nil {
		log.Fatal(err)
	}
	cur, _, _ = dev.Read(lpa, rb.Done)
	fmt.Printf("after rollback:     %q\n", trim(cur))
	fmt.Printf("rollback took %v of device time\n", rb.Elapsed)

	// 5. The overwritten "latest" version is still recoverable.
	res, _ = kit.AddrQueryAll(lpa, 1, rb.Done)
	fmt.Printf("versions retrievable after rollback: %d\n", len(res.Value[0].Versions))
	fmt.Printf("retention window: %.1f hours and growing\n",
		dev.RetentionDuration(rb.Done).Hours())
}

func trim(p []byte) string {
	for i, b := range p {
		if b == 0 {
			return string(p[:i])
		}
	}
	return string(p)
}
