// Storage forensics: reconstruct a tamper-proof timeline of device updates
// from the firmware-retained history (§2.2, §3.9). An "intruder" modifies
// a log file and then tries to cover their tracks by rewriting it; the
// time-based state queries expose both the tampering and the cover-up,
// because the device below the OS retained every version.
package main

import (
	"fmt"
	"log"
	"strings"

	"almanac/internal/core"
	"almanac/internal/flash"
	"almanac/internal/fsim"
	"almanac/internal/ftl"
	"almanac/internal/timekits"
	"almanac/internal/vclock"
)

func main() {
	dev, err := core.New(core.DefaultConfig(ftl.WithFlash(flash.DefaultConfig())))
	if err != nil {
		log.Fatal(err)
	}
	fs, at, err := fsim.Mkfs(dev, fsim.DefaultOptions(fsim.ModeInPlace), 0)
	if err != nil {
		log.Fatal(err)
	}
	kit := timekits.New(dev)

	// The system keeps an audit log.
	if at, err = fs.Create("audit.log", at); err != nil {
		log.Fatal(err)
	}
	appendLine := func(when vclock.Time, line string) vclock.Time {
		done, err := fs.Append("audit.log", []byte(line+"\n"), when)
		if err != nil {
			log.Fatal(err)
		}
		return done
	}
	at = appendLine(vclock.Time(1*vclock.Hour), "09:00 login alice")
	at = appendLine(vclock.Time(2*vclock.Hour), "10:00 login bob")
	at = appendLine(vclock.Time(3*vclock.Hour), "11:00 bob reads payroll.db")

	// The intruder (bob, with root) rewrites the log at t=4h, replacing the
	// incriminating entry with a forged innocuous one of the same length.
	sz0, _ := fs.Size("audit.log")
	forged := "09:00 login alice\n10:00 login bob\n11:00 bob idle............\n"[:sz0]
	if at, err = fs.Write("audit.log", 0, []byte(forged), vclock.Time(4*vclock.Hour)); err != nil {
		log.Fatal(err)
	}
	_ = at

	now := vclock.Time(5 * vclock.Hour)
	sz, _ := fs.Size("audit.log")
	cur, _, _ := fs.Read("audit.log", 0, int(sz), now)
	fmt.Println("what the OS sees now:")
	fmt.Println(indent(string(cur)))

	// Forensics: which pages changed in the suspicious window, and what
	// did they hold before?
	tq, err := kit.TimeQueryRange(vclock.Time(3*vclock.Hour+30*vclock.Minute), now, now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pages modified between t=3.5h and t=5h: %d\n", len(tq.Value))

	lpas, err := fs.FileLPAs("audit.log")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("version history of the log's first page (device-level, tamper-proof):")
	res, err := kit.AddrQueryAll(lpas[0], 1, tq.Done)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range res.Value[0].Versions {
		fmt.Printf("  at %-14v live=%-5v:\n%s", v.TS, v.Live, indent(clean(v.Data)))
	}
	fmt.Println("the pre-tampering version still shows bob touching payroll.db —")
	fmt.Println("evidence the intruder could not destroy from the host.")
}

func clean(p []byte) string {
	s := strings.TrimRight(string(p), "\x00")
	return s
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "    " + strings.Join(lines, "\n    ") + "\n"
}
