// Ransomware recovery: the paper's §5.5.1 case study as a runnable demo.
// A Locky-class ransomware model encrypts a directory of documents on a
// file system mounted over a TimeSSD; TimeKits then finds every page the
// malware touched, rolls the device back to the pre-attack instant, and
// the file system remounts with every document intact — even though the
// malware deleted the originals and held no decryption key.
package main

import (
	"fmt"
	"log"

	"almanac/internal/core"
	"almanac/internal/flash"
	"almanac/internal/fsim"
	"almanac/internal/ftl"
	"almanac/internal/ransom"
	"almanac/internal/timekits"
	"almanac/internal/vclock"
)

func main() {
	fc := flash.DefaultConfig()
	fc.Channels = 4
	fc.ChipsPerChannel = 2
	fc.BlocksPerPlane = 64
	fc.PagesPerBlock = 32
	cfg := core.DefaultConfig(ftl.WithFlash(fc))
	dev, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fs, at, err := fsim.Mkfs(dev, fsim.DefaultOptions(fsim.ModeInPlace), 0)
	if err != nil {
		log.Fatal(err)
	}
	kit := timekits.New(dev)

	fam, err := ransom.FamilyByName("Locky")
	if err != nil {
		log.Fatal(err)
	}
	fam.Files = 20 // keep the demo brisk

	victims, at, err := ransom.PlantFiles(fs, fam, 7, at.Add(vclock.Second))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planted %d documents (%d files on disk)\n", len(victims), len(fs.List()))

	// Normal life happens for an hour, then the infection begins.
	at = at.Add(vclock.Hour)
	res, at, err := ransom.Attack(fs, fam, victims, 8, at)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s encrypted %d files (%.1f KiB) between %v and %v\n",
		fam.Name, len(res.Victims), float64(res.BytesHit)/1024, res.Start, res.End)

	// The originals are gone from the namespace…
	gone := 0
	for _, name := range victims {
		if _, err := fs.Size(name); err != nil {
			gone++
		}
	}
	fmt.Printf("original files deleted by the malware: %d/%d\n", gone, len(victims))

	// …but not from the flash. Recover with 4 host threads.
	st, _, err := ransom.Recover(kit, res, 4, at.Add(vclock.Minute))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: rolled back %d pages in %v (query share %v)\n",
		st.PagesRolledBack, st.RecoveryTime, st.QueryTime)
	fmt.Printf("file system remounted: %v; all contents verified byte-exact: %v\n",
		st.Remount, st.Verified)
}
