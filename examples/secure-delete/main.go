// Secure delete under retention: §3.10's dilemma and its answer. A
// time-traveling SSD deliberately defeats deletion — which is exactly
// wrong for data that must actually die. With a retention key configured,
// deleted data is sealed in delta storage: the owner (key holder) can
// still travel back to it, while an attacker who steals the drive and
// rebuilds its state from the raw flash recovers nothing.
package main

import (
	"bytes"
	"fmt"
	"log"

	"almanac/internal/core"
	"almanac/internal/flash"
	"almanac/internal/ftl"
	"almanac/internal/vclock"
)

func main() {
	key := []byte("a 32-byte AES-256 retention key!")
	fc := flash.DefaultConfig()
	fc.BlocksPerPlane = 16
	fc.PagesPerBlock = 16
	cfg := core.DefaultConfig(ftl.WithFlash(fc))
	cfg.MinRetention = 30 * vclock.Day // the demo must not expire the secret
	cfg.RetentionKey = key
	dev, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	secret := make([]byte, dev.PageSize())
	copy(secret, "SSN 078-05-1120 / the launch codes")
	const lpa = 3
	at, err := dev.Write(lpa, secret, vclock.Time(vclock.Hour))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote a secret, then deleted it")
	if at, err = dev.Trim(lpa, at.Add(vclock.Minute)); err != nil {
		log.Fatal(err)
	}
	// Background compression moves the deleted version into (encrypted)
	// delta storage; churn + GC then erase the plaintext original.
	churn(dev, &at)

	// The owner, holding the key, still time-travels to the secret.
	vers, _, err := dev.Versions(lpa, at)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owner sees %d retained version(s); recovered intact: %v\n",
		len(vers), len(vers) > 0 && bytes.Equal(vers[0].Data, secret))

	// The attacker steals the drive: raw flash image, no key.
	stolenCfg := cfg
	stolenCfg.RetentionKey = nil
	stolen, err := core.Rebuild(dev.Arr, stolenCfg)
	if err != nil {
		log.Fatal(err)
	}
	svers, _, err := stolen.Versions(lpa, at)
	if err != nil {
		log.Fatal(err)
	}
	leaked := false
	for _, v := range svers {
		if bytes.Contains(v.Data, []byte("SSN")) {
			leaked = true
		}
	}
	fmt.Printf("attacker (no key) decodes %d version(s); secret leaked: %v\n", len(svers), leaked)
	fmt.Println("time travel for the owner, secure deletion against everyone else (§3.10)")
}

// churn forces compression and GC so the plaintext original is erased.
func churn(dev *core.TimeSSD, at *vclock.Time) {
	filler := make([]byte, dev.PageSize())
	for i := 0; i < dev.Config().FTL.Flash.TotalPages(); i++ {
		filler[0] = byte(i)
		done, err := dev.Write(uint64(50+i%40), filler, at.Add(vclock.Second))
		if err != nil {
			log.Fatal(err)
		}
		*at = done
		if i%256 == 255 {
			dev.Idle(*at, at.Add(30*vclock.Second))
			*at = at.Add(30 * vclock.Second)
		}
	}
}
