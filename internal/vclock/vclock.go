// Package vclock provides the discrete virtual clock used by the flash
// simulator and everything above it.
//
// All latencies in the simulated device are charged against virtual time, so
// an experiment that spans eight weeks of device time completes in seconds of
// wall time. Virtual time is a simple monotonic nanosecond counter; there is
// deliberately no connection to the host clock.
package vclock

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. The zero Time is the simulation epoch.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts freely to
// and from time.Duration, which has the same representation.
type Duration = time.Duration

// Common durations re-exported for convenience at call sites that only
// import vclock.
const (
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
	Minute      = time.Minute
	Hour        = time.Hour
	Day         = 24 * time.Hour
)

// Add returns t shifted forward by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Days returns t expressed in (fractional) virtual days since the epoch.
func (t Time) Days() float64 { return float64(t) / float64(Day) }

// String renders the time as d:hh:mm:ss.mmm for readable logs.
func (t Time) String() string {
	d := time.Duration(t)
	days := d / Day
	d -= days * Day
	h := d / time.Hour
	d -= h * time.Hour
	m := d / time.Minute
	d -= m * time.Minute
	s := d / time.Second
	d -= s * time.Second
	ms := d / time.Millisecond
	return fmt.Sprintf("%dd%02dh%02dm%02d.%03ds", days, h, m, s, ms)
}

// Clock is a monotonic virtual clock. Advancing it never moves backwards:
// attempts to set an earlier time are ignored, which makes it safe to merge
// timelines from independently progressing components (host arrivals vs.
// device completions).
type Clock struct {
	now Time
}

// New returns a clock positioned at the epoch.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// AdvanceTo moves the clock forward to t. If t is in the past the clock is
// unchanged. It returns the (possibly unchanged) current time.
func (c *Clock) AdvanceTo(t Time) Time {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Advance moves the clock forward by d (d must be non-negative; negative
// durations are ignored) and returns the new time.
func (c *Clock) Advance(d Duration) Time {
	if d > 0 {
		c.now += Time(d)
	}
	return c.now
}
