package vclock

import (
	"testing"
	"time"
)

func TestClockMonotonic(t *testing.T) {
	c := New()
	if got := c.Now(); got != 0 {
		t.Fatalf("fresh clock at %v, want 0", got)
	}
	c.AdvanceTo(100)
	if got := c.Now(); got != 100 {
		t.Fatalf("AdvanceTo(100) -> %v", got)
	}
	// Moving backwards is ignored.
	c.AdvanceTo(50)
	if got := c.Now(); got != 100 {
		t.Fatalf("AdvanceTo(50) moved clock backwards to %v", got)
	}
	c.Advance(25)
	if got := c.Now(); got != 125 {
		t.Fatalf("Advance(25) -> %v", got)
	}
	c.Advance(-10)
	if got := c.Now(); got != 125 {
		t.Fatalf("negative Advance moved clock to %v", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	var epoch Time
	noon := epoch.Add(12 * Hour)
	if !epoch.Before(noon) || !noon.After(epoch) {
		t.Fatal("ordering broken")
	}
	if d := noon.Sub(epoch); d != 12*Hour {
		t.Fatalf("Sub = %v, want 12h", d)
	}
	if days := epoch.Add(36 * Hour).Days(); days != 1.5 {
		t.Fatalf("Days = %v, want 1.5", days)
	}
}

func TestTimeString(t *testing.T) {
	ts := Time(0).Add(2*Day + 3*Hour + 4*Minute + 5*Second + 6*Millisecond)
	if got, want := ts.String(), "2d03h04m05.006s"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestDurationAliases(t *testing.T) {
	if Day != 24*time.Hour {
		t.Fatalf("Day = %v", time.Duration(Day))
	}
}
