package array

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"almanac/internal/core"
	"almanac/internal/flash"
	"almanac/internal/ftl"
	"almanac/internal/obs"
	"almanac/internal/timekits"
	"almanac/internal/trace"
	"almanac/internal/vclock"
)

func shardConfig() core.Config {
	fc := flash.DefaultConfig()
	fc.Channels = 2
	fc.ChipsPerChannel = 1
	fc.BlocksPerPlane = 32
	fc.PagesPerBlock = 16
	fc.PageSize = 512
	cfg := core.DefaultConfig(ftl.WithFlash(fc))
	cfg.MinRetention = 0
	return cfg
}

func newTestArray(t testing.TB, shards int) *Array {
	t.Helper()
	a, err := New(Config{Shards: shards, Shard: shardConfig()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

func testPage(a *Array, b byte) []byte {
	p := make([]byte, a.PageSize())
	for i := range p {
		p[i] = b
	}
	return p
}

func TestLocateRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		a := newTestArray(t, n)
		perShard := make([]int, n)
		for lpa := uint64(0); lpa < uint64(a.LogicalPages()); lpa++ {
			s, local := a.Locate(lpa)
			if g := a.GlobalLPA(s, local); g != lpa {
				t.Fatalf("n=%d: GlobalLPA(Locate(%d)) = %d", n, lpa, g)
			}
			if local >= uint64(a.LogicalPages()/n) {
				t.Fatalf("n=%d: lpa %d maps to local %d beyond shard capacity", n, lpa, local)
			}
			perShard[s]++
		}
		for s, c := range perShard {
			if c != a.LogicalPages()/n {
				t.Fatalf("n=%d: shard %d owns %d pages, want %d", n, s, c, a.LogicalPages()/n)
			}
		}
	}
}

func TestLocalRangeCoversStripe(t *testing.T) {
	a := newTestArray(t, 4)
	for _, r := range []struct {
		addr uint64
		cnt  int
	}{{0, 1}, {1, 1}, {0, 4}, {3, 5}, {7, 11}, {2, 64}} {
		covered := make(map[uint64]bool)
		for s := range a.shards {
			lo, n, ok := a.localRange(r.addr, r.cnt, s)
			if !ok {
				continue
			}
			for i := 0; i < n; i++ {
				g := a.GlobalLPA(s, lo+uint64(i))
				if g < r.addr || g >= r.addr+uint64(r.cnt) {
					t.Fatalf("range [%d,+%d) shard %d: local %d maps outside to %d", r.addr, r.cnt, s, lo+uint64(i), g)
				}
				if covered[g] {
					t.Fatalf("range [%d,+%d): lpa %d covered twice", r.addr, r.cnt, g)
				}
				covered[g] = true
			}
		}
		if len(covered) != r.cnt {
			t.Fatalf("range [%d,+%d): covered %d of %d pages", r.addr, r.cnt, len(covered), r.cnt)
		}
	}
}

// TestStripeRoundTrip writes distinct content to every global LPA and reads
// it back: the stripe mapping must be a bijection end to end, and host
// writes must spread evenly over the shards.
func TestStripeRoundTrip(t *testing.T) {
	a := newTestArray(t, 4)
	at := vclock.Time(vclock.Second)
	total := uint64(a.LogicalPages())
	for lpa := uint64(0); lpa < total; lpa++ {
		done, err := a.Write(lpa, testPage(a, byte(lpa%251)), at)
		if err != nil {
			t.Fatalf("write %d: %v", lpa, err)
		}
		at = done.Add(vclock.Millisecond)
	}
	for lpa := uint64(0); lpa < total; lpa++ {
		data, _, err := a.Read(lpa, at)
		if err != nil {
			t.Fatalf("read %d: %v", lpa, err)
		}
		if !bytes.Equal(data, testPage(a, byte(lpa%251))) {
			t.Fatalf("lpa %d: content corrupted by striping", lpa)
		}
	}
	for i := 0; i < a.Shards(); i++ {
		if w := a.ShardSnapshot(i).C.HostPageWrites; w != int64(total)/int64(a.Shards()) {
			t.Fatalf("shard %d absorbed %d writes, want %d", i, w, total/uint64(a.Shards()))
		}
	}
	if st := a.StatsView(); st.HostPageWrites != int64(total) || st.HostPageReads != int64(total) {
		t.Fatalf("aggregate stats wrong: %+v", st)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTimeQueryRangeMergeOrdering exercises the cross-shard merge: updates
// land on all four shards at interleaved times (including a trim and a
// cross-shard timestamp tie) and the merged stream must come out newest
// update first, ties broken by ascending global LPA.
func TestTimeQueryRangeMergeOrdering(t *testing.T) {
	a := newTestArray(t, 4)
	h := func(n int) vclock.Time { return vclock.Time(n) * vclock.Time(vclock.Hour) }
	// LPA k lives on shard k%4. Writes at distinct hours, newest on a
	// middle shard so merge order differs from shard order; LPAs 5 and 6
	// (shards 1 and 2) share hour 5 to exercise the LPA tiebreak.
	writes := []struct {
		lpa uint64
		at  vclock.Time
	}{
		{0, h(1)}, {1, h(3)}, {2, h(2)}, {3, h(4)},
		{5, h(5)}, {6, h(5)},
	}
	for _, w := range writes {
		if _, err := a.Write(w.lpa, testPage(a, byte(w.lpa+1)), w.at); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Trim(2, h(6)); err != nil { // newest event of all, on shard 2
		t.Fatal(err)
	}
	now := h(7)

	res, err := a.TimeQueryRange(0, now, now)
	if err != nil {
		t.Fatal(err)
	}
	var gotLPAs []uint64
	for _, r := range res.Value {
		gotLPAs = append(gotLPAs, r.LPA)
	}
	// Newest first: trim(2)@6h, tie 5/6@5h by LPA, 3@4h, 1@3h, 0@1h.
	want := []uint64{2, 5, 6, 3, 1, 0}
	if !reflect.DeepEqual(gotLPAs, want) {
		t.Fatalf("merge order: got %v want %v", gotLPAs, want)
	}
	if res.Value[0].Times[0] != h(6) {
		t.Fatalf("trim timestamp not merged: %v", res.Value[0].Times)
	}
	for i := 1; i < len(res.Value); i++ {
		if res.Value[i].Times[0] > res.Value[i-1].Times[0] {
			t.Fatalf("record %d newer than its predecessor", i)
		}
	}
	if res.Done <= now {
		t.Fatal("cross-shard query charged no device time")
	}

	// A sub-range excludes events outside it on every shard.
	res, err = a.TimeQueryRange(h(2), h(4), now)
	if err != nil {
		t.Fatal(err)
	}
	gotLPAs = gotLPAs[:0]
	for _, r := range res.Value {
		gotLPAs = append(gotLPAs, r.LPA)
	}
	if want := []uint64{3, 1, 2}; !reflect.DeepEqual(gotLPAs, want) {
		t.Fatalf("sub-range merge: got %v want %v", gotLPAs, want)
	}
}

// TestRollBackAllMatchesSingleDevice replays one write history against a
// 4-shard array and a single TimeSSD, rolls both back to the same shared
// timestamp, and requires identical per-LPA contents: the acceptance check
// that one virtual timestamp names a consistent cross-shard point.
func TestRollBackAllMatchesSingleDevice(t *testing.T) {
	a := newTestArray(t, 4)
	single, err := core.New(shardConfig())
	if err != nil {
		t.Fatal(err)
	}
	kit := timekits.New(single)

	span := uint64(16) // fits the single device; stripes over every shard
	h := func(n int) vclock.Time { return vclock.Time(n) * vclock.Time(vclock.Hour) }
	// Three generations; generation g rewrites every even-offset page (and
	// all pages in g1) so some LPAs have deeper histories than others.
	for g := 1; g <= 3; g++ {
		for lpa := uint64(0); lpa < span; lpa++ {
			if g > 1 && lpa%2 == 1 {
				continue
			}
			data := testPage(a, byte(16*g)+byte(lpa))
			if _, err := a.Write(lpa, data, h(g)); err != nil {
				t.Fatal(err)
			}
			if _, err := single.Write(lpa, data, h(g)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Travel both to just after generation 2.
	target, now := h(2).Add(vclock.Minute), h(5)
	ares, err := a.RollBackAll(target, now)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := kit.RollBackAll(target, now)
	if err != nil {
		t.Fatal(err)
	}
	if ares.Value != sres.Value {
		t.Fatalf("array changed %d pages, single device %d", ares.Value, sres.Value)
	}
	after := now.Add(vclock.Hour)
	for lpa := uint64(0); lpa < span; lpa++ {
		got, _, err := a.Read(lpa, after)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := single.Read(lpa, after)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("lpa %d: array rollback diverges from single device (got %x… want %x…)", lpa, got[0], want[0])
		}
		// Both must equal generation 2's content (g1 content on odd LPAs).
		g := byte(32)
		if lpa%2 == 1 {
			g = 16
		}
		if got[0] != g+byte(lpa) {
			t.Fatalf("lpa %d: rollback restored wrong generation (%x)", lpa, got[0])
		}
	}
}

// TestDeterministicReplay runs the same generated trace twice on fresh
// 4-shard arrays: aggregate stats and every per-shard snapshot must be
// bit-identical regardless of how the scheduler interleaved the workers.
func TestDeterministicReplay(t *testing.T) {
	run := func() (obs.Counters, []Snapshot, *trace.RunStats) {
		a := newTestArray(t, 4)
		gen := trace.NewContentGen(a.PageSize(), trace.ContentSimilar, 7)
		footprint := uint64(a.LogicalPages()) / 2
		warmEnd, err := trace.Fill(a, footprint, gen, 0)
		if err != nil {
			t.Fatal(err)
		}
		reqs, err := trace.Generate(trace.Spec{
			Name: "det", Seed: 7, Requests: 600,
			Duration:   vclock.Duration(600) * 100 * vclock.Microsecond,
			WriteRatio: 0.8, TrimRatio: 0.05, Footprint: footprint,
			AvgPages: 2, HotFraction: 0.1, HotAccess: 0.7, BurstLen: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		shift := warmEnd.Add(vclock.Second)
		for i := range reqs {
			reqs[i].At = reqs[i].At + shift
		}
		st, err := Replay(a, reqs, trace.ReplayOptions{Content: gen, AnnounceIdle: true})
		if err != nil {
			t.Fatal(err)
		}
		snaps := make([]Snapshot, a.Shards())
		for i := range snaps {
			snaps[i] = a.ShardSnapshot(i)
		}
		return a.StatsView(), snaps, st
	}

	st1, snaps1, run1 := run()
	st2, snaps2, run2 := run()
	if st1 != st2 {
		t.Fatalf("aggregate stats differ between identical runs:\n%+v\n%+v", st1, st2)
	}
	if !reflect.DeepEqual(snaps1, snaps2) {
		t.Fatalf("per-shard snapshots differ between identical runs")
	}
	if run1.End != run2.End || run1.Errors != run2.Errors {
		t.Fatalf("replay outcomes differ: end %v/%v errors %d/%d", run1.End, run2.End, run1.Errors, run2.Errors)
	}
	if st1.HostPageWrites == 0 || st1.TrimOps == 0 {
		t.Fatalf("trace exercised nothing: %+v", st1)
	}
}

// TestObsConcurrentWithIO hammers the observability layer from every
// side at once — writers and readers on all shards, plus goroutines
// pulling array-wide snapshots and traces mid-flight. Run under -race
// this is the proof that registries need no caller locking; the final
// quiesced snapshot must satisfy the count-consistency invariant.
func TestObsConcurrentWithIO(t *testing.T) {
	a := newTestArray(t, 4)
	a.SetObsEnabled(true)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := a.ObsSnapshot()
				if snap.Shards != 4 {
					t.Errorf("mid-flight snapshot has %d shards", snap.Shards)
					return
				}
				_ = a.TraceEvents(16)
			}
		}()
	}

	workers := 4
	perWorker := uint64(a.LogicalPages() / workers)
	iters := 200
	if int(perWorker) < iters {
		iters = int(perWorker)
	}
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			base := uint64(w) * perWorker
			at := vclock.Time(vclock.Second)
			for i := 0; i < iters; i++ {
				lpa := base + uint64(i)
				done, err := a.Write(lpa, testPage(a, byte(i)), at)
				if err != nil {
					t.Errorf("worker %d write %d: %v", w, lpa, err)
					return
				}
				if _, _, err := a.Read(lpa, done.Add(vclock.Second)); err != nil {
					t.Errorf("worker %d read %d: %v", w, lpa, err)
					return
				}
				at = done.Add(2 * vclock.Second)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	snap := a.ObsSnapshot()
	total := int64(workers * iters)
	if snap.C.HostPageWrites != total || snap.C.HostPageReads != total {
		t.Fatalf("counters: %d writes / %d reads, want %d each", snap.C.HostPageWrites, snap.C.HostPageReads, total)
	}
	if got := snap.Ops["host-write"].Count; got != total {
		t.Fatalf("host-write histogram count %d != %d writes", got, total)
	}
	if got := snap.Ops["host-read"].Count; got != total {
		t.Fatalf("host-read histogram count %d != %d reads", got, total)
	}
	if got := snap.Ops["flash-program"].Count; got != snap.C.FlashPrograms {
		t.Fatalf("flash-program histogram count %d != counter %d", got, snap.C.FlashPrograms)
	}
	evs := a.TraceEvents(0)
	if len(evs) == 0 {
		t.Fatal("no trace events after concurrent IO")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].DoneNS < evs[i-1].DoneNS {
			t.Fatalf("merged trace not chronological at %d", i)
		}
	}
}

func TestSubmitAfterClose(t *testing.T) {
	a := newTestArray(t, 2)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write(0, testPage(a, 1), 0); err != ErrClosed {
		t.Fatalf("write after close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestAddrQueryAcrossShards(t *testing.T) {
	a := newTestArray(t, 4)
	h := func(n int) vclock.Time { return vclock.Time(n) * vclock.Time(vclock.Hour) }
	for lpa := uint64(0); lpa < 8; lpa++ {
		for g := 1; g <= 2; g++ {
			if _, err := a.Write(lpa, testPage(a, byte(16*g)+byte(lpa)), h(g)); err != nil {
				t.Fatal(err)
			}
		}
	}
	now := h(3)
	res, err := a.AddrQuery(2, 5, h(1).Add(vclock.Minute), now)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Value) != 5 {
		t.Fatalf("AddrQuery returned %d LPAs, want 5", len(res.Value))
	}
	for i, pv := range res.Value {
		if pv.LPA != uint64(2+i) {
			t.Fatalf("result %d: lpa %d, want ascending from 2", i, pv.LPA)
		}
		if len(pv.Versions) != 1 || pv.Versions[0].Data[0] != 16+byte(pv.LPA) {
			t.Fatalf("lpa %d: wrong generation at t", pv.LPA)
		}
	}
}
