// Package array scales TimeSSD horizontally: an Array stripes the logical
// address space across N independent TimeSSD shards, each owned by a
// dedicated worker goroutine fed by a buffered submission queue — the
// host-side analogue of an NVMe submission/completion queue pair per
// device. Reads, writes, trims and TimeKits calls that land on different
// shards proceed in true parallel on the host, while each shard keeps the
// single-threaded firmware model the simulator assumes.
//
// Time travel is preserved across the array: version timestamps are host
// issue times (DESIGN.md §4a.6), which every shard shares, so one virtual
// timestamp names a consistent cross-shard point in time. Array-level
// TimeKits (kits.go) fan queries and rollbacks out across shards and merge
// the results; the retrievable window of the array is the intersection of
// the per-shard windows.
//
// Concurrency model: a shard's TimeSSD is touched only by its worker
// goroutine — there are no device locks at all. Every operation, including
// queries (which charge flash reads and therefore mutate channel timing
// state), travels through the shard's queue. The only shared mutable state
// outside the queues is each shard's stats snapshot, republished by the
// worker after every batch of commands via an atomic pointer, which lets
// Identify- and Stats-style callers observe the array without queueing
// behind long queries. Workers drain their whole submission queue per
// wakeup and execute the batch back to back, publishing one snapshot per
// batch; a command's completion is still only signalled after the snapshot
// covering it is visible.
package array

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"almanac/internal/core"
	"almanac/internal/fault"
	"almanac/internal/ftl"
	"almanac/internal/obs"
	"almanac/internal/timekits"
	"almanac/internal/vclock"
)

// Config parameterises an Array.
type Config struct {
	// Shards is the number of TimeSSD devices in the array (≥ 1).
	Shards int

	// QueueDepth is the buffered capacity of each shard's submission
	// queue. Submission blocks when the queue is full (host-side
	// backpressure, like a full NVMe SQ).
	QueueDepth int

	// Shard configures each member device. All shards share one geometry:
	// uniform stripes keep the LPA mapping a pure mod/div pair.
	Shard core.Config
}

// DefaultQueueDepth is used when Config.QueueDepth is zero.
const DefaultQueueDepth = 64

// opKind identifies a queued command.
type opKind uint8

const (
	opRead opKind = iota + 1
	opWrite
	opTrim
	opIdle
	opFunc // internal fan-out: run fn on the shard's device/kit
)

// Cmd is one queued command. Submit it with Array.Submit and wait for the
// worker to complete it with Wait; the result fields are valid only after
// Wait returns. A Cmd must not be reused while in flight, and every
// submitted Cmd must be Waited exactly once before reuse — completion is
// a token sent on a one-slot channel (not a close), precisely so a Cmd
// can be recycled: the channel is allocated on first submission and then
// reused for the command's whole life (see the service layer's BatchRun,
// which keeps per-connection Cmd scratch and resets it with SetRead /
// SetWrite / SetTrim between batches).
type Cmd struct {
	Kind opKind
	LPA  uint64 // global (array) LPA
	Data []byte // write payload
	At   vclock.Time
	End  vclock.Time // idle: end of the announced gap

	// Results.
	Out  []byte
	Done vclock.Time
	Err  error

	fn   func(dev *core.TimeSSD, kit *timekits.Kit)
	done chan struct{} // cap 1; one completion token per submission
}

// Wait blocks until the shard worker has executed the command, consuming
// its completion token.
func (c *Cmd) Wait() { <-c.done }

// ReadCmd, WriteCmd and TrimCmd build queue commands for batched
// submission. Callers that hold many independent operations (the service
// layer's OpBatch, pipelined protocol servers) submit every command
// before waiting on any, so commands landing on different shards execute
// concurrently instead of serialising through the synchronous wrappers.
func ReadCmd(lpa uint64, at vclock.Time) *Cmd { return &Cmd{Kind: opRead, LPA: lpa, At: at} }

// WriteCmd builds a queued write of data to global LPA lpa.
func WriteCmd(lpa uint64, data []byte, at vclock.Time) *Cmd {
	return &Cmd{Kind: opWrite, LPA: lpa, Data: data, At: at}
}

// TrimCmd builds a queued trim of global LPA lpa.
func TrimCmd(lpa uint64, at vclock.Time) *Cmd { return &Cmd{Kind: opTrim, LPA: lpa, At: at} }

// SetRead, SetWrite and SetTrim reset a completed (or fresh) Cmd in
// place for resubmission, clearing results while keeping the completion
// channel — the reuse path that lets batch submitters recycle Cmd
// scratch with zero allocations in steady state.
func (c *Cmd) SetRead(lpa uint64, at vclock.Time) { c.reset(opRead, lpa, nil, at) }

// SetWrite resets the Cmd to a queued write of data to global LPA lpa.
func (c *Cmd) SetWrite(lpa uint64, data []byte, at vclock.Time) { c.reset(opWrite, lpa, data, at) }

// SetTrim resets the Cmd to a queued trim of global LPA lpa.
func (c *Cmd) SetTrim(lpa uint64, at vclock.Time) { c.reset(opTrim, lpa, nil, at) }

func (c *Cmd) reset(kind opKind, lpa uint64, data []byte, at vclock.Time) {
	c.Kind, c.LPA, c.Data, c.At, c.End = kind, lpa, data, at, 0
	c.Out, c.Done, c.Err, c.fn = nil, 0, nil, nil
}

// Snapshot is the lock-free per-shard state view republished by the worker
// after every batch of commands (see StatsView): the retention-window header plus
// the canonical counter surface. Histograms are not part of the published
// snapshot — they live in the shard's obs registry, which is safe to read
// lock-free at any time (see ObsSnapshot).
type Snapshot struct {
	WindowStart vclock.Time
	Segments    int
	C           obs.Counters
}

// shard is one member device plus its worker plumbing.
type shard struct {
	id   int
	dev  *core.TimeSSD
	kit  *timekits.Kit
	sq   chan *Cmd
	snap atomic.Pointer[Snapshot]
}

// Array is a striped multi-device TimeSSD.
type Array struct {
	cfg     Config
	shards  []*shard
	logical int
	pages   int // page size

	wg sync.WaitGroup

	// closeMu serialises submissions against Close: senders hold the read
	// side while enqueueing, so the queues can only be closed when no send
	// is in flight (a send on a closed channel would panic).
	closeMu sync.RWMutex
	closed  bool
}

var _ ftl.Device = (*Array)(nil)

// ErrClosed is returned for submissions after Close.
var ErrClosed = errors.New("array: closed")

// New builds an array of cfg.Shards fresh TimeSSDs and starts one worker
// per shard.
func New(cfg Config) (*Array, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("array: need at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	a := &Array{cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		dev, err := core.New(cfg.Shard)
		if err != nil {
			a.stopWorkers()
			return nil, fmt.Errorf("array: shard %d: %w", i, err)
		}
		a.addShard(dev)
	}
	a.finish()
	return a, nil
}

// Assemble builds an array over pre-built devices (the almanacd image-load
// path: each shard is rebuilt from its own image file, then handed here).
// All devices must share one geometry.
func Assemble(devs []*core.TimeSSD) (*Array, error) {
	if len(devs) == 0 {
		return nil, errors.New("array: no shards")
	}
	a := &Array{cfg: Config{Shards: len(devs), QueueDepth: DefaultQueueDepth, Shard: devs[0].Config()}}
	for i, dev := range devs {
		if dev.LogicalPages() != devs[0].LogicalPages() || dev.PageSize() != devs[0].PageSize() {
			a.stopWorkers()
			return nil, fmt.Errorf("array: shard %d geometry differs from shard 0", i)
		}
		a.addShard(dev)
	}
	a.finish()
	return a, nil
}

func (a *Array) addShard(dev *core.TimeSSD) {
	s := &shard{
		id:  len(a.shards),
		dev: dev,
		kit: timekits.New(dev),
		sq:  make(chan *Cmd, a.cfg.QueueDepth),
	}
	dev.Obs().SetShard(s.id)
	s.snap.Store(snapshotOf(dev))
	a.shards = append(a.shards, s)
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		s.run()
	}()
}

func (a *Array) finish() {
	a.logical = a.shards[0].dev.LogicalPages() * len(a.shards)
	a.pages = a.shards[0].dev.PageSize()
}

func (a *Array) stopWorkers() {
	for _, s := range a.shards {
		close(s.sq)
	}
	a.wg.Wait()
}

// Close drains and stops every worker. Commands already submitted complete;
// later submissions fail with ErrClosed.
func (a *Array) Close() error {
	a.closeMu.Lock()
	if a.closed {
		a.closeMu.Unlock()
		return nil
	}
	a.closed = true
	a.closeMu.Unlock()
	a.stopWorkers()
	return nil
}

// run is the worker loop: execute commands FIFO, republish the snapshot.
//
// The loop is batched: one blocking receive picks up the first command,
// then every command already sitting in the queue is drained without
// blocking and the whole batch executes back to back. The snapshot is
// republished once per batch — after the last command and before any
// completion is signalled — so the invariant callers rely on still holds:
// when a command's Wait returns, the published snapshot includes that
// command's effects. Under a loaded queue this replaces one snapshot
// allocation + atomic publish per command with one per wakeup.
func (s *shard) run() {
	batch := make([]*Cmd, 0, cap(s.sq))
	for cmd := range s.sq {
		batch = append(batch[:0], cmd)
	drain:
		for {
			select {
			case c, ok := <-s.sq:
				if !ok {
					break drain // closed: finish this batch, outer range exits
				}
				batch = append(batch, c)
			default:
				break drain
			}
		}
		for _, c := range batch {
			s.exec(c)
		}
		s.snap.Store(snapshotOf(s.dev))
		for i, c := range batch {
			c.done <- struct{}{} // one token per submission; never blocks (cap 1)
			batch[i] = nil       // release completed commands while idle in the outer receive
		}
	}
}

func (s *shard) exec(c *Cmd) {
	local := c.LPA
	switch c.Kind {
	case opRead:
		c.Out, c.Done, c.Err = s.dev.Read(local, c.At)
	case opWrite:
		c.Done, c.Err = s.dev.Write(local, c.Data, c.At)
		c.Data = nil // release the payload; pipelined replays retain Cmds until collection
	case opTrim:
		c.Done, c.Err = s.dev.Trim(local, c.At)
	case opIdle:
		s.dev.Idle(c.At, c.End)
		c.Done = c.At
	case opFunc:
		c.fn(s.dev, s.kit)
		c.Done = c.At
	default:
		c.Err = fmt.Errorf("array: unknown command kind %d", c.Kind)
	}
}

func snapshotOf(dev *core.TimeSSD) *Snapshot {
	return &Snapshot{
		WindowStart: dev.RetentionWindowStart(),
		Segments:    dev.Segments(),
		C:           dev.Counters(),
	}
}

// ---- striping -------------------------------------------------------------

// Shards returns the number of member devices.
func (a *Array) Shards() int { return len(a.shards) }

// ShardConfig returns the configuration shared by every member device.
func (a *Array) ShardConfig() core.Config { return a.cfg.Shard }

// LogicalPages is the array's exported capacity: the sum over shards.
func (a *Array) LogicalPages() int { return a.logical }

// PageSize is the page size shared by every shard.
func (a *Array) PageSize() int { return a.pages }

// Locate maps a global LPA to its shard and shard-local LPA. Striping is
// round-robin at page granularity (shard = lpa mod N), so sequential host
// ranges spread across every member device — the same reason SSDs stripe
// across channels.
func (a *Array) Locate(lpa uint64) (shard int, local uint64) {
	n := uint64(len(a.shards))
	return int(lpa % n), lpa / n
}

// GlobalLPA is the inverse of Locate.
func (a *Array) GlobalLPA(shard int, local uint64) uint64 {
	return local*uint64(len(a.shards)) + uint64(shard)
}

func (a *Array) checkLPA(lpa uint64) error {
	if lpa >= uint64(a.logical) {
		return fmt.Errorf("%w: lpa %d (array has %d pages)", ftl.ErrOutOfRange, lpa, a.logical)
	}
	return nil
}

// ---- submission -----------------------------------------------------------

// Submit enqueues cmd on the shard owning cmd.LPA (Read/Write/Trim). The
// call blocks only while that shard's queue is full. Completion is
// observed with cmd.Wait.
func (a *Array) Submit(cmd *Cmd) error {
	if err := a.checkLPA(cmd.LPA); err != nil {
		return err
	}
	sh, local := a.Locate(cmd.LPA)
	cmd.LPA = local
	return a.submitTo(sh, cmd)
}

// submitTo enqueues a command on an explicit shard.
func (a *Array) submitTo(sh int, cmd *Cmd) error {
	a.closeMu.RLock()
	defer a.closeMu.RUnlock()
	if a.closed {
		return ErrClosed
	}
	if cmd.done == nil {
		cmd.done = make(chan struct{}, 1)
	}
	// Sending under the read lock is the design: Close takes the write side
	// only after every in-flight send finished, and workers drain the queue
	// without ever taking closeMu, so a full queue cannot deadlock Close.
	//almalint:allow lockorder reason: workers drain sq without taking closeMu, so a full queue cannot block Close
	a.shards[sh].sq <- cmd
	return nil
}

// fanOut runs fn on every shard concurrently and waits for all of them.
// fn receives the shard index and must only touch that shard's device/kit.
func (a *Array) fanOut(at vclock.Time, fn func(i int, dev *core.TimeSSD, kit *timekits.Kit)) error {
	cmds := make([]*Cmd, len(a.shards))
	for i := range a.shards {
		i := i
		cmds[i] = &Cmd{Kind: opFunc, At: at, fn: func(dev *core.TimeSSD, kit *timekits.Kit) { fn(i, dev, kit) }}
		if err := a.submitTo(i, cmds[i]); err != nil {
			for _, c := range cmds[:i] {
				c.Wait()
			}
			return err
		}
	}
	for _, c := range cmds {
		c.Wait()
	}
	return nil
}

// ---- synchronous ftl.Device interface -------------------------------------

// Read returns the current version of lpa.
func (a *Array) Read(lpa uint64, at vclock.Time) ([]byte, vclock.Time, error) {
	cmd := &Cmd{Kind: opRead, LPA: lpa, At: at}
	if err := a.Submit(cmd); err != nil {
		return nil, at, err
	}
	cmd.Wait()
	return cmd.Out, cmd.Done, cmd.Err
}

// Write stores a new version of lpa.
func (a *Array) Write(lpa uint64, data []byte, at vclock.Time) (vclock.Time, error) {
	cmd := &Cmd{Kind: opWrite, LPA: lpa, Data: data, At: at}
	if err := a.Submit(cmd); err != nil {
		return at, err
	}
	cmd.Wait()
	return cmd.Done, cmd.Err
}

// Trim invalidates lpa.
func (a *Array) Trim(lpa uint64, at vclock.Time) (vclock.Time, error) {
	cmd := &Cmd{Kind: opTrim, LPA: lpa, At: at}
	if err := a.Submit(cmd); err != nil {
		return at, err
	}
	cmd.Wait()
	return cmd.Done, cmd.Err
}

// Idle announces a host idle period [now, until) to every shard (trace
// replay uses this for §3.6 background compression). All shards run their
// idle work concurrently; Idle returns when every shard is done.
func (a *Array) Idle(now, until vclock.Time) {
	cmds := make([]*Cmd, 0, len(a.shards))
	for i := range a.shards {
		cmd := &Cmd{Kind: opIdle, At: now, End: until}
		if a.submitTo(i, cmd) == nil {
			cmds = append(cmds, cmd)
		}
	}
	for _, c := range cmds {
		c.Wait()
	}
}

// ---- observability --------------------------------------------------------

// StatsView sums the per-shard counter snapshots without queueing: the
// view is lock-free and may trail in-flight commands by at most one
// batch (bounded by the queue depth) per shard.
func (a *Array) StatsView() obs.Counters {
	var out obs.Counters
	for _, s := range a.shards {
		out.Add(s.snap.Load().C)
	}
	return out
}

// SetFaultPlan arms a plan-driven fault injector on every shard, or
// disarms injection when p is nil. Each shard's injector is built from the
// plan reseeded with Seed+shard, so a multi-shard sweep exercises
// different fault timings per device while staying fully deterministic.
// The swap travels through the shard workers like any other command, so
// it never races in-flight I/O.
func (a *Array) SetFaultPlan(p *fault.Plan) error {
	injs := make([]*fault.Injector, len(a.shards))
	if p != nil {
		for i := range injs {
			inj, err := fault.NewInjector(p.Reseeded(p.Seed + int64(i)))
			if err != nil {
				return err
			}
			injs[i] = inj
		}
	}
	return a.fanOut(0, func(i int, dev *core.TimeSSD, _ *timekits.Kit) {
		dev.SetFaults(injs[i])
	})
}

// SetMinRetention replaces the guaranteed retention lower bound on every
// shard. The service layer calls this with the maximum over per-volume
// retention promises (plus the operator's configured floor), so the
// array-wide window always covers the strictest volume. The change
// travels through the shard workers like any other command and therefore
// never races in-flight I/O.
func (a *Array) SetMinRetention(d vclock.Duration) error {
	return a.fanOut(0, func(_ int, dev *core.TimeSSD, _ *timekits.Kit) {
		dev.SetMinRetention(d)
	})
}

// SetObsEnabled switches histogram and trace recording on every shard.
// Registries are lock-free, so the flip needs no queueing; commands in
// flight during the transition may be partially recorded.
func (a *Array) SetObsEnabled(on bool) {
	for _, s := range a.shards {
		s.dev.Obs().SetEnabled(on)
	}
}

// ObsSnapshot merges every shard's published counters and lock-free
// histogram state into one array-wide snapshot. Shards are visited in
// index order and per-class maps merge over sorted keys, so two calls
// against the same per-shard states produce identical snapshots.
func (a *Array) ObsSnapshot() obs.Snapshot {
	var out obs.Snapshot
	for _, s := range a.shards {
		sn := s.snap.Load()
		out.Merge(obs.Snapshot{
			Shards:        1,
			WindowStartNS: int64(sn.WindowStart),
			Segments:      sn.Segments,
			C:             sn.C,
			Ops:           s.dev.Obs().Ops(),
		})
	}
	return out
}

// TraceEvents merges the per-shard trace rings, ordered by virtual
// completion time (ties break on issue time, then shard), keeping the
// latest max events. max <= 0 means everything the rings hold.
func (a *Array) TraceEvents(max int) []obs.Event {
	var all []obs.Event
	for _, s := range a.shards {
		all = append(all, s.dev.Obs().Trace(0)...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].DoneNS != all[j].DoneNS {
			return all[i].DoneNS < all[j].DoneNS
		}
		if all[i].IssueNS != all[j].IssueNS {
			return all[i].IssueNS < all[j].IssueNS
		}
		return all[i].Shard < all[j].Shard
	})
	if max > 0 && len(all) > max {
		all = all[len(all)-max:]
	}
	return all
}

// ShardSnapshot returns shard i's latest published snapshot (lock-free).
func (a *Array) ShardSnapshot(i int) Snapshot { return *a.shards[i].snap.Load() }

// RetentionWindowStart returns the start of the array-wide retrievable
// window: the latest per-shard window start. Inside it, every shard can
// answer for its stripe, so a cross-shard query at any t past this point
// is consistent; individual shards may reach further back on their own.
func (a *Array) RetentionWindowStart() vclock.Time {
	var start vclock.Time
	for _, s := range a.shards {
		if ws := s.snap.Load().WindowStart; ws > start {
			start = ws
		}
	}
	return start
}

// WriteAmplification returns array-wide flash programs / host page writes.
func (a *Array) WriteAmplification() float64 {
	c := a.StatsView()
	if c.HostPageWrites == 0 {
		return 0
	}
	return float64(c.FlashPrograms) / float64(c.HostPageWrites)
}

// Barrier waits until every command submitted before the call has
// completed on its shard (a full-array flush).
func (a *Array) Barrier() {
	_ = a.fanOut(0, func(int, *core.TimeSSD, *timekits.Kit) {})
}

// CheckInvariants runs the per-device invariant checker on every shard.
func (a *Array) CheckInvariants() error {
	errs := make([]error, len(a.shards))
	if err := a.fanOut(0, func(i int, dev *core.TimeSSD, _ *timekits.Kit) {
		errs[i] = dev.CheckInvariants()
	}); err != nil {
		return err
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("array: shard %d: %w", i, err)
		}
	}
	return nil
}
