package array

import (
	"fmt"
	"sort"

	"almanac/internal/core"
	"almanac/internal/timekits"
	"almanac/internal/vclock"
)

// Array-wide TimeKits: the Table-1 API fanned out across shards. Because
// every version carries its host-issue timestamp and all shards share the
// host's clock, a single virtual timestamp names a consistent cross-shard
// point in time — AddrQuery(t) and RollBackAll(t) observe/restore exactly
// the state the whole array had at t, regardless of how far each shard's
// internal timeline has advanced.
//
// Fan-out calls run concurrently (one command per shard worker); the
// virtual completion time of an array call is the completion of the
// slowest shard, mirroring how a single device's query completes with its
// slowest channel.

// localRange maps the global LPA range [addr, addr+cnt) onto shard s:
// the matching shard-local LPAs are contiguous. ok is false when the
// range does not touch the shard.
func (a *Array) localRange(addr uint64, cnt int, s int) (lo uint64, n int, ok bool) {
	N := uint64(len(a.shards))
	first := addr + ((uint64(s) + N - addr%N) % N) // smallest g ≥ addr with g ≡ s (mod N)
	end := addr + uint64(cnt)
	if first >= end {
		return 0, 0, false
	}
	return first / N, int((end-1-first)/N) + 1, true
}

func (a *Array) checkRange(addr uint64, cnt int) error {
	logical := uint64(a.logical)
	if cnt < 1 || uint64(cnt) > logical || addr > logical-uint64(cnt) {
		return fmt.Errorf("%w: addr %d cnt %d (array has %d pages)", timekits.ErrBadRange, addr, cnt, logical)
	}
	return nil
}

// addrFan fans a per-shard address query over the global range and
// reassembles the results in ascending global LPA order.
func (a *Array) addrFan(addr uint64, cnt int, at vclock.Time,
	fn func(kit *timekits.Kit, lo uint64, n int) (timekits.Result[[]timekits.PageVersions], error),
) (timekits.Result[[]timekits.PageVersions], error) {
	var zero timekits.Result[[]timekits.PageVersions]
	if err := a.checkRange(addr, cnt); err != nil {
		return zero, err
	}
	res := make([]timekits.Result[[]timekits.PageVersions], len(a.shards))
	errs := make([]error, len(a.shards))
	if err := a.fanOut(at, func(i int, _ *core.TimeSSD, kit *timekits.Kit) {
		lo, n, ok := a.localRange(addr, cnt, i)
		if !ok {
			return
		}
		res[i], errs[i] = fn(kit, lo, n)
	}); err != nil {
		return zero, err
	}
	out := make([]timekits.PageVersions, 0, cnt)
	done := at
	for i := range a.shards {
		if errs[i] != nil {
			return zero, fmt.Errorf("array: shard %d: %w", i, errs[i])
		}
		if res[i].Done > done {
			done = res[i].Done
		}
		for _, pv := range res[i].Value {
			pv.LPA = a.GlobalLPA(i, pv.LPA)
			out = append(out, pv)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LPA < out[j].LPA })
	return timekits.Result[[]timekits.PageVersions]{Value: out, Start: at, Done: done, Elapsed: done.Sub(at)}, nil
}

// AddrQuery returns, for cnt global LPAs starting at addr, the version
// current at time t.
func (a *Array) AddrQuery(addr uint64, cnt int, t, at vclock.Time) (timekits.Result[[]timekits.PageVersions], error) {
	return a.addrFan(addr, cnt, at, func(kit *timekits.Kit, lo uint64, n int) (timekits.Result[[]timekits.PageVersions], error) {
		return kit.AddrQuery(lo, n, t, at)
	})
}

// AddrQueryRange returns all versions written within [t1, t2].
func (a *Array) AddrQueryRange(addr uint64, cnt int, t1, t2, at vclock.Time) (timekits.Result[[]timekits.PageVersions], error) {
	if t2 < t1 {
		return timekits.Result[[]timekits.PageVersions]{}, fmt.Errorf("%w: t2 %v before t1 %v", timekits.ErrBadRange, t2, t1)
	}
	return a.addrFan(addr, cnt, at, func(kit *timekits.Kit, lo uint64, n int) (timekits.Result[[]timekits.PageVersions], error) {
		return kit.AddrQueryRange(lo, n, t1, t2, at)
	})
}

// AddrQueryAll returns every retained version for the global range.
func (a *Array) AddrQueryAll(addr uint64, cnt int, at vclock.Time) (timekits.Result[[]timekits.PageVersions], error) {
	return a.addrFan(addr, cnt, at, func(kit *timekits.Kit, lo uint64, n int) (timekits.Result[[]timekits.PageVersions], error) {
		return kit.AddrQueryAll(lo, n, at)
	})
}

// timeFan fans a time query to every shard and merges the per-shard update
// records by timestamp: records are ordered newest-update-first (ties
// broken by global LPA), so "what changed most recently anywhere on the
// array" streams out first — the order a forensic scan wants.
func (a *Array) timeFan(at vclock.Time,
	fn func(kit *timekits.Kit) (timekits.Result[[]core.UpdateRecord], error),
) (timekits.Result[[]core.UpdateRecord], error) {
	var zero timekits.Result[[]core.UpdateRecord]
	res := make([]timekits.Result[[]core.UpdateRecord], len(a.shards))
	errs := make([]error, len(a.shards))
	if err := a.fanOut(at, func(i int, _ *core.TimeSSD, kit *timekits.Kit) {
		res[i], errs[i] = fn(kit)
	}); err != nil {
		return zero, err
	}
	var out []core.UpdateRecord
	done := at
	for i := range a.shards {
		if errs[i] != nil {
			return zero, fmt.Errorf("array: shard %d: %w", i, errs[i])
		}
		if res[i].Done > done {
			done = res[i].Done
		}
		for _, r := range res[i].Value {
			r.LPA = a.GlobalLPA(i, r.LPA)
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		// Times[0] is each record's newest event (write or trim).
		ti, tj := out[i].Times[0], out[j].Times[0]
		if ti != tj {
			return ti > tj
		}
		return out[i].LPA < out[j].LPA
	})
	return timekits.Result[[]core.UpdateRecord]{Value: out, Start: at, Done: done, Elapsed: done.Sub(at)}, nil
}

// TimeQuery returns every global LPA updated since time t.
func (a *Array) TimeQuery(t, at vclock.Time) (timekits.Result[[]core.UpdateRecord], error) {
	return a.timeFan(at, func(kit *timekits.Kit) (timekits.Result[[]core.UpdateRecord], error) {
		return kit.TimeQuery(t, at)
	})
}

// TimeQueryRange returns every global LPA updated within [t1, t2], merged
// across shards in newest-first timestamp order.
func (a *Array) TimeQueryRange(t1, t2, at vclock.Time) (timekits.Result[[]core.UpdateRecord], error) {
	if t2 < t1 {
		return timekits.Result[[]core.UpdateRecord]{}, fmt.Errorf("%w: t2 %v before t1 %v", timekits.ErrBadRange, t2, t1)
	}
	return a.timeFan(at, func(kit *timekits.Kit) (timekits.Result[[]core.UpdateRecord], error) {
		return kit.TimeQueryRange(t1, t2, at)
	})
}

// TimeQueryAll returns the update history of the array-wide retention
// window (the intersection of the per-shard windows).
func (a *Array) TimeQueryAll(at vclock.Time) (timekits.Result[[]core.UpdateRecord], error) {
	from := a.RetentionWindowStart()
	return a.timeFan(at, func(kit *timekits.Kit) (timekits.Result[[]core.UpdateRecord], error) {
		return kit.TimeQuery(from, at)
	})
}

// RollBack reverts cnt global LPAs starting at addr to their state at
// time t, each shard reverting its stripe concurrently.
func (a *Array) RollBack(addr uint64, cnt int, t, at vclock.Time) (timekits.Result[int], error) {
	var zero timekits.Result[int]
	if err := a.checkRange(addr, cnt); err != nil {
		return zero, err
	}
	res := make([]timekits.Result[int], len(a.shards))
	errs := make([]error, len(a.shards))
	if err := a.fanOut(at, func(i int, _ *core.TimeSSD, kit *timekits.Kit) {
		lo, n, ok := a.localRange(addr, cnt, i)
		if !ok {
			return
		}
		res[i], errs[i] = kit.RollBack(lo, n, t, at)
	}); err != nil {
		return zero, err
	}
	return a.sumResults(res, errs, at)
}

// RollBackAll reverts every global LPA with retrievable state to time t —
// the whole array travels to one shared instant. Shards roll back
// concurrently; the result counts pages changed array-wide.
func (a *Array) RollBackAll(t, at vclock.Time) (timekits.Result[int], error) {
	res := make([]timekits.Result[int], len(a.shards))
	errs := make([]error, len(a.shards))
	if err := a.fanOut(at, func(i int, _ *core.TimeSSD, kit *timekits.Kit) {
		res[i], errs[i] = kit.RollBackAll(t, at)
	}); err != nil {
		return timekits.Result[int]{}, err
	}
	return a.sumResults(res, errs, at)
}

// RollBackParallel reverts an explicit set of global LPAs to time t. The
// shards are the parallelism: each reverts its share of the set; threads
// is the per-shard host thread count forwarded to the member kit.
func (a *Array) RollBackParallel(lpas []uint64, threads int, t, at vclock.Time) (timekits.Result[int], error) {
	var zero timekits.Result[int]
	if threads < 1 {
		return zero, fmt.Errorf("%w: threads %d", timekits.ErrBadRange, threads)
	}
	for _, lpa := range lpas {
		if err := a.checkLPA(lpa); err != nil {
			return zero, err
		}
	}
	byShard := make([][]uint64, len(a.shards))
	for _, lpa := range lpas {
		s, local := a.Locate(lpa)
		byShard[s] = append(byShard[s], local)
	}
	res := make([]timekits.Result[int], len(a.shards))
	errs := make([]error, len(a.shards))
	if err := a.fanOut(at, func(i int, _ *core.TimeSSD, kit *timekits.Kit) {
		if len(byShard[i]) == 0 {
			return
		}
		res[i], errs[i] = kit.RollBackParallel(byShard[i], threads, t, at)
	}); err != nil {
		return zero, err
	}
	return a.sumResults(res, errs, at)
}

func (a *Array) sumResults(res []timekits.Result[int], errs []error, at vclock.Time) (timekits.Result[int], error) {
	changed := 0
	done := at
	for i := range res {
		if errs[i] != nil {
			return timekits.Result[int]{}, fmt.Errorf("array: shard %d: %w", i, errs[i])
		}
		changed += res[i].Value
		if res[i].Done > done {
			done = res[i].Done
		}
	}
	return timekits.Result[int]{Value: changed, Start: at, Done: done, Elapsed: done.Sub(at)}, nil
}
