package array

import (
	"errors"
	"fmt"

	"almanac/internal/core"
	"almanac/internal/ftl"
	"almanac/internal/trace"
	"almanac/internal/vclock"
)

// Replay drives a request stream against the array with per-shard
// pipelining: a single submitter walks the trace in order and enqueues
// each page operation on its shard without waiting for completion, so
// shards execute in parallel while every shard still sees its own
// operations in trace order (same-LPA ordering is therefore preserved —
// an LPA always maps to one shard, whose queue is FIFO).
//
// Determinism: content generation happens in the submitter, in trace
// order, from the seeded generator; each shard's command sequence is a
// pure function of the trace; and per-shard devices are only touched by
// their workers. Two replays of the same trace on same-shaped arrays
// therefore produce bit-identical per-shard and aggregate statistics, no
// matter how the host scheduler interleaves the workers.
//
// Idle announcements derive from trace arrival gaps (the submitter cannot
// know completion times without stalling the pipeline); gaps of at least
// opts-independent 1 ms are forwarded to every shard in stream order.
func Replay(a *Array, reqs []trace.Request, opts trace.ReplayOptions) (*trace.RunStats, error) {
	st := &trace.RunStats{}
	if len(reqs) == 0 {
		return st, nil
	}
	st.Start = reqs[0].At
	logical := uint64(a.LogicalPages())

	// One entry per request: the page commands whose max completion is the
	// request's completion.
	cmds := make([][]*Cmd, len(reqs))
	prevArrival := reqs[0].At

	const minIdleGap = vclock.Duration(1 * vclock.Millisecond)

	for i := range reqs {
		r := &reqs[i]
		if opts.AnnounceIdle && r.At.Sub(prevArrival) >= minIdleGap {
			// Async fan-out: ordering within each shard is kept by the queue.
			for s := range a.shards {
				cmd := &Cmd{Kind: opIdle, At: prevArrival, End: r.At}
				if err := a.submitTo(s, cmd); err == nil {
					cmds[i] = append(cmds[i], cmd)
				}
			}
		}
		prevArrival = r.At
		switch r.Op {
		case trace.OpRead:
			st.Reads++
			for p := 0; p < r.Pages; p++ {
				lpa := (r.LPA + uint64(p)) % logical
				c := &Cmd{Kind: opRead, LPA: lpa, At: r.At}
				if err := a.Submit(c); err != nil {
					return st, err
				}
				cmds[i] = append(cmds[i], c)
				st.PagesRead++
			}
		case trace.OpWrite:
			st.Writes++
			for p := 0; p < r.Pages; p++ {
				lpa := (r.LPA + uint64(p)) % logical
				var payload []byte
				if opts.Content != nil {
					payload = opts.Content.NextVersion(lpa)
				} else {
					payload = make([]byte, a.PageSize())
				}
				c := &Cmd{Kind: opWrite, LPA: lpa, Data: payload, At: r.At}
				if err := a.Submit(c); err != nil {
					return st, err
				}
				cmds[i] = append(cmds[i], c)
				st.PagesWritten++
			}
		case trace.OpTrim:
			st.Trims++
			for p := 0; p < r.Pages; p++ {
				lpa := (r.LPA + uint64(p)) % logical
				c := &Cmd{Kind: opTrim, LPA: lpa, At: r.At}
				if err := a.Submit(c); err != nil {
					return st, err
				}
				cmds[i] = append(cmds[i], c)
			}
		default:
			return st, fmt.Errorf("array: unknown op %v", r.Op)
		}
		st.Requests++
	}

	// Collect completions and fold them into per-request response times.
	var firstFatal error
	for i := range reqs {
		arrival := reqs[i].At
		done := arrival
		failed := false
		for _, c := range cmds[i] {
			c.Wait()
			if c.Err != nil {
				failed = true
				if firstFatal == nil && isFatal(c.Err) {
					firstFatal = fmt.Errorf("request %d (%v lpa=%d): %w", i, reqs[i].Op, reqs[i].LPA, c.Err)
				}
				continue
			}
			if c.Done > done {
				done = c.Done
			}
		}
		if failed {
			st.Errors++
		}
		resp := done.Sub(arrival)
		st.RespSum += resp
		if resp > st.RespMax {
			st.RespMax = resp
		}
		if opts.KeepLatencies {
			st.Latencies = append(st.Latencies, resp)
		}
		if done.After(st.End) {
			st.End = done
		}
	}
	if firstFatal != nil {
		return st, firstFatal
	}
	if opts.StopOnError && st.Errors > 0 {
		return st, fmt.Errorf("array: %d requests failed", st.Errors)
	}
	return st, nil
}

// isFatal mirrors trace.Replay's policy: a full device (including
// core.ErrRetentionFull, which wraps nothing but accompanies exhaustion)
// means nothing later in the stream can succeed.
func isFatal(err error) bool {
	return errors.Is(err, ftl.ErrDeviceFull) || errors.Is(err, core.ErrRetentionFull)
}
