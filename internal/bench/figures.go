package bench

import (
	"strconv"
	"strings"
	"testing"

	"almanac/internal/harness"
)

// harnessConfig is the reduced-scale harness configuration for the figure
// benchmarks.
func harnessConfig() harness.Config {
	c := harness.Quick()
	c.Days = 3
	c.ReqPerDay = 250
	c.Fig8MSRLens = []int{7}
	c.Fig8FIULens = []int{7}
	c.IOZoneOps = 200
	c.PostMarkTxns = 120
	c.OLTPTxns = 80
	c.OLTPTablePages = 128
	c.RansomScale = 0.15
	c.Fig11Commits = 30
	return c
}

// cellFloat pulls a numeric cell out of a rendered table row.
func cellFloat(tab *harness.Table, row, col int) float64 {
	s := strings.TrimSuffix(strings.TrimPrefix(tab.Rows[row][col], "+"), "%")
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

// Fig6ResponseTime regenerates Figure 6 and reports the mean TimeSSD
// response time across its rows (ms).
func Fig6ResponseTime(b *testing.B) {
	c := harnessConfig()
	for i := 0; i < b.N; i++ {
		tab, err := harness.Figure6(c)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for r := range tab.Rows {
			sum += cellFloat(tab, r, 3)
		}
		b.ReportMetric(sum/float64(len(tab.Rows)), "ms-response")
	}
}

// Fig7WriteAmp regenerates Figure 7 and reports mean TimeSSD write
// amplification.
func Fig7WriteAmp(b *testing.B) {
	c := harnessConfig()
	for i := 0; i < b.N; i++ {
		tab, err := harness.Figure7(c)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for r := range tab.Rows {
			sum += cellFloat(tab, r, 3)
		}
		b.ReportMetric(sum/float64(len(tab.Rows)), "write-amp")
	}
}

// Fig8Retention regenerates Figure 8 and reports mean retention (days).
func Fig8Retention(b *testing.B) {
	c := harnessConfig()
	for i := 0; i < b.N; i++ {
		tab, err := harness.Figure8(c)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for r := range tab.Rows {
			sum += cellFloat(tab, r, 4)
		}
		b.ReportMetric(sum/float64(len(tab.Rows)), "retention-days")
	}
}

// Fig9IOZone regenerates Figure 9a and reports TimeSSD's random-write
// speedup over Ext4.
func Fig9IOZone(b *testing.B) {
	c := harnessConfig()
	for i := 0; i < b.N; i++ {
		tab, err := harness.Figure9IOZone(c)
		if err != nil {
			b.Fatal(err)
		}
		for r, row := range tab.Rows {
			if row[0] == "RandomWrite" {
				b.ReportMetric(cellFloat(tab, r, 3), "randwrite-speedup")
			}
		}
	}
}

// Fig9OLTP regenerates Figure 9b and reports TimeSSD's PostMark speedup.
func Fig9OLTP(b *testing.B) {
	c := harnessConfig()
	for i := 0; i < b.N; i++ {
		tab, err := harness.Figure9OLTP(c)
		if err != nil {
			b.Fatal(err)
		}
		for r, row := range tab.Rows {
			if row[0] == "PostMark" {
				b.ReportMetric(cellFloat(tab, r, 3), "postmark-speedup")
			}
		}
	}
}

// Fig10Ransomware regenerates Figure 10 and reports mean TimeSSD recovery
// time (virtual seconds).
func Fig10Ransomware(b *testing.B) {
	c := harnessConfig()
	for i := 0; i < b.N; i++ {
		tab, err := harness.Figure10(c)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for r := range tab.Rows {
			sum += cellFloat(tab, r, 2)
		}
		b.ReportMetric(sum/float64(len(tab.Rows)), "recovery-s")
	}
}

// Fig11Revert regenerates Figure 11 and reports the 1→4 thread speedup.
func Fig11Revert(b *testing.B) {
	c := harnessConfig()
	for i := 0; i < b.N; i++ {
		tab, err := harness.Figure11(c)
		if err != nil {
			b.Fatal(err)
		}
		var t1, t4 float64
		for r := range tab.Rows {
			t1 += cellFloat(tab, r, 1)
			t4 += cellFloat(tab, r, 3)
		}
		b.ReportMetric(t1/t4, "thread-speedup")
	}
}

// Table3Queries regenerates Table 3 and reports mean TimeQuery seconds.
func Table3Queries(b *testing.B) {
	c := harnessConfig()
	for i := 0; i < b.N; i++ {
		tab, err := harness.Table3(c)
		if err != nil {
			b.Fatal(err)
		}
		var tq float64
		for r := range tab.Rows {
			tq += cellFloat(tab, r, 1)
		}
		b.ReportMetric(tq/float64(len(tab.Rows)), "timequery-s")
	}
}

// AblationNoCompression regenerates the compression ablation.
func AblationNoCompression(b *testing.B) {
	c := harnessConfig()
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationCompression(c); err != nil {
			b.Fatal(err)
		}
	}
}

// AblationGroupSize regenerates the Bloom group-size ablation.
func AblationGroupSize(b *testing.B) {
	c := harnessConfig()
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationGroupSize(c); err != nil {
			b.Fatal(err)
		}
	}
}

// AblationThreshold regenerates the GC-threshold ablation.
func AblationThreshold(b *testing.B) {
	c := harnessConfig()
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationThreshold(c); err != nil {
			b.Fatal(err)
		}
	}
}

// AblationMinRetention regenerates the retention-bound ablation.
func AblationMinRetention(b *testing.B) {
	c := harnessConfig()
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationMinRetention(c); err != nil {
			b.Fatal(err)
		}
	}
}

// AblationMapCache regenerates the mapping-cache ablation.
func AblationMapCache(b *testing.B) {
	c := harnessConfig()
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationMapCache(c); err != nil {
			b.Fatal(err)
		}
	}
}

// AblationWear regenerates the wear-leveling ablation.
func AblationWear(b *testing.B) {
	c := harnessConfig()
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationWear(c); err != nil {
			b.Fatal(err)
		}
	}
}

// ArrayScaling regenerates the array-scaling sweep and reports the 4-shard
// weak-scaling speedup.
func ArrayScaling(b *testing.B) {
	c := harnessConfig()
	for i := 0; i < b.N; i++ {
		tab, err := harness.ArrayScaling(c)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range tab.Rows {
			if row[0] == "weak" && row[1] == "4" {
				v, _ := strconv.ParseFloat(strings.TrimSuffix(row[5], "x"), 64)
				b.ReportMetric(v, "4shard-speedup")
			}
		}
	}
}
