// Package bench holds the benchmark bodies shared by the repository's
// `go test -bench` suite (bench_test.go at the module root) and the
// cmd/almabench trajectory tool, which runs them via testing.Benchmark and
// records the results in BENCH_N.json. Keeping one copy of each body means
// the committed trajectory numbers and the interactive benchmarks can never
// drift apart.
package bench

import "testing"

// Spec names one benchmark body for cmd/almabench. Noisy marks bodies
// that cross the kernel (real sockets, real syscalls): their run-to-run
// spread reflects the scheduler, not the code, so almabench records
// their median instead of their floor and widens the regression gate.
type Spec struct {
	Name  string
	Bench func(b *testing.B)
	Noisy bool
}

// Micro returns the micro-benchmarks: codec, Bloom-chain and device
// hot paths. These are cheap enough for a CI smoke run.
func Micro() []Spec {
	return []Spec{
		{Name: "LZFCompress4K", Bench: LZFCompress4K},
		{Name: "LZFDecompress4K", Bench: LZFDecompress4K},
		{Name: "DeltaEncode4K", Bench: DeltaEncode4K},
		{Name: "BloomChainInvalidate", Bench: BloomChainInvalidate},
		{Name: "BloomChainContains", Bench: BloomChainContains},
		{Name: "TimeSSDWrite", Bench: TimeSSDWrite},
		{Name: "TimeSSDRead", Bench: TimeSSDRead},
		{Name: "VersionsQuery", Bench: VersionsQuery},
		{Name: "ServiceOpsPerSec", Bench: ServiceOpsPerSec},
		{Name: "ServiceOpsPerSecTCP", Bench: ServiceOpsPerSecTCP, Noisy: true},
		{Name: "SimOpsPerSecond", Bench: SimOpsPerSecond},
	}
}

// Figures returns the figure/table regeneration benchmarks — full harness
// sweeps at reduced scale, seconds per op.
func Figures() []Spec {
	return []Spec{
		{Name: "Fig6ResponseTime", Bench: Fig6ResponseTime},
		{Name: "Fig7WriteAmp", Bench: Fig7WriteAmp},
		{Name: "Fig8Retention", Bench: Fig8Retention},
		{Name: "Fig9IOZone", Bench: Fig9IOZone},
		{Name: "Fig9OLTP", Bench: Fig9OLTP},
		{Name: "Fig10Ransomware", Bench: Fig10Ransomware},
		{Name: "Fig11Revert", Bench: Fig11Revert},
		{Name: "Table3Queries", Bench: Table3Queries},
		{Name: "AblationNoCompression", Bench: AblationNoCompression},
		{Name: "AblationGroupSize", Bench: AblationGroupSize},
		{Name: "AblationThreshold", Bench: AblationThreshold},
		{Name: "AblationMinRetention", Bench: AblationMinRetention},
		{Name: "AblationMapCache", Bench: AblationMapCache},
		{Name: "AblationWear", Bench: AblationWear},
		{Name: "ArrayScaling", Bench: ArrayScaling},
	}
}
