// Package bench holds the benchmark bodies shared by the repository's
// `go test -bench` suite (bench_test.go at the module root) and the
// cmd/almabench trajectory tool, which runs them via testing.Benchmark and
// records the results in BENCH_N.json. Keeping one copy of each body means
// the committed trajectory numbers and the interactive benchmarks can never
// drift apart.
package bench

import "testing"

// Spec names one benchmark body for cmd/almabench.
type Spec struct {
	Name  string
	Bench func(b *testing.B)
}

// Micro returns the micro-benchmarks: codec, Bloom-chain and device
// hot paths. These are cheap enough for a CI smoke run.
func Micro() []Spec {
	return []Spec{
		{"LZFCompress4K", LZFCompress4K},
		{"LZFDecompress4K", LZFDecompress4K},
		{"DeltaEncode4K", DeltaEncode4K},
		{"BloomChainInvalidate", BloomChainInvalidate},
		{"BloomChainContains", BloomChainContains},
		{"TimeSSDWrite", TimeSSDWrite},
		{"TimeSSDRead", TimeSSDRead},
		{"VersionsQuery", VersionsQuery},
		{"ServiceOpsPerSec", ServiceOpsPerSec},
		{"SimOpsPerSecond", SimOpsPerSecond},
	}
}

// Figures returns the figure/table regeneration benchmarks — full harness
// sweeps at reduced scale, seconds per op.
func Figures() []Spec {
	return []Spec{
		{"Fig6ResponseTime", Fig6ResponseTime},
		{"Fig7WriteAmp", Fig7WriteAmp},
		{"Fig8Retention", Fig8Retention},
		{"Fig9IOZone", Fig9IOZone},
		{"Fig9OLTP", Fig9OLTP},
		{"Fig10Ransomware", Fig10Ransomware},
		{"Fig11Revert", Fig11Revert},
		{"Table3Queries", Table3Queries},
		{"AblationNoCompression", AblationNoCompression},
		{"AblationGroupSize", AblationGroupSize},
		{"AblationThreshold", AblationThreshold},
		{"AblationMinRetention", AblationMinRetention},
		{"AblationMapCache", AblationMapCache},
		{"AblationWear", AblationWear},
		{"ArrayScaling", ArrayScaling},
	}
}
