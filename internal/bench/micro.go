package bench

import (
	"math/rand"
	"testing"

	"almanac/internal/bloom"
	"almanac/internal/core"
	"almanac/internal/delta"
	"almanac/internal/flash"
	"almanac/internal/ftl"
	"almanac/internal/lzf"
	"almanac/internal/trace"
	"almanac/internal/vclock"
)

// benchPage builds a dense compressible page (small-alphabet bytes).
func benchPage(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(rng.Intn(8)) // compressible
	}
	return p
}

// lzfCorpus builds the page shape almost every production Compress call
// sees: the XOR residual of two adjacent versions of a page — mostly zero
// with scattered changed bytes (trace.ContentSimilar versions differ in
// ~PageSize/8·ratio single bytes, and delta.Encode XORs them before
// compressing). Raw-page compression of dense data is the rare cold path
// (idle compression of never-overwritten pages).
func lzfCorpus(seed int64, n, changed int) []byte {
	rng := rand.New(rand.NewSource(seed))
	p := make([]byte, n)
	for i := 0; i < changed; i++ {
		p[rng.Intn(n)] = byte(1 + rng.Intn(255))
	}
	return p
}

// LZFCompress4K compresses a 4 KiB delta residual.
func LZFCompress4K(b *testing.B) {
	src := lzfCorpus(1, 4096, 200)
	b.SetBytes(4096)
	var out []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = lzf.Compress(out[:0], src)
	}
}

// LZFDecompress4K decompresses the same residual payload.
func LZFDecompress4K(b *testing.B) {
	comp := lzf.Compress(nil, lzfCorpus(1, 4096, 200))
	b.SetBytes(4096)
	var out []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, err = lzf.Decompress(out[:0], comp, 4096)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// DeltaEncode4K delta-encodes a page against a reference differing in 200
// scattered bytes.
func DeltaEncode4K(b *testing.B) {
	old := benchPage(1, 4096)
	ref := append([]byte(nil), old...)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		ref[rng.Intn(4096)] ^= byte(1 + rng.Intn(255))
	}
	b.SetBytes(4096)
	var out []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, out = delta.Encode(out[:0], old, ref)
	}
}

// BloomChainInvalidate appends invalidations to a Bloom-filter chain.
func BloomChainInvalidate(b *testing.B) {
	c := bloom.NewChain(4096, 0.001, 16, 0)
	for i := 0; i < b.N; i++ {
		c.Invalidate(uint64(i), vclock.Time(i))
	}
}

// BloomChainContains probes a populated Bloom-filter chain.
func BloomChainContains(b *testing.B) {
	c := bloom.NewChain(4096, 0.001, 16, 0)
	for i := 0; i < 100000; i++ {
		c.Invalidate(uint64(i), vclock.Time(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Contains(uint64(i % 200000))
	}
}

func benchDevice(b *testing.B) *core.TimeSSD {
	b.Helper()
	fc := flash.DefaultConfig()
	fc.BlocksPerPlane = 128
	cfg := core.DefaultConfig(ftl.WithFlash(fc))
	cfg.MinRetention = 0
	d, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// TimeSSDWrite streams host writes over half the logical space.
func TimeSSDWrite(b *testing.B) {
	d := benchDevice(b)
	gen := trace.NewContentGen(d.PageSize(), trace.ContentSimilar, 1)
	logical := uint64(d.LogicalPages()) / 2
	at := vclock.Time(0)
	b.SetBytes(int64(d.PageSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lpa := uint64(i) % logical
		done, err := d.Write(lpa, gen.NextVersion(lpa), at)
		if err != nil {
			b.Fatal(err)
		}
		at = done.Add(vclock.Millisecond)
	}
}

// TimeSSDRead reads the latest versions of a filled region.
func TimeSSDRead(b *testing.B) {
	d := benchDevice(b)
	gen := trace.NewContentGen(d.PageSize(), trace.ContentSimilar, 1)
	at, err := trace.Fill(d, 512, gen, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(d.PageSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Read(uint64(i)%512, at); err != nil {
			b.Fatal(err)
		}
	}
}

// VersionsQuery walks 16-version delta chains (the §3.7 expensive path).
func VersionsQuery(b *testing.B) {
	d := benchDevice(b)
	gen := trace.NewContentGen(d.PageSize(), trace.ContentSimilar, 1)
	at := vclock.Time(0)
	// 16 versions each over 64 pages.
	for v := 0; v < 16; v++ {
		for lpa := uint64(0); lpa < 64; lpa++ {
			done, err := d.Write(lpa, gen.NextVersion(lpa), at)
			if err != nil {
				b.Fatal(err)
			}
			at = done.Add(vclock.Millisecond)
		}
	}
	// Idle-compress the retained versions so queries walk §3.7 delta
	// chains (the expensive path) rather than raw data pages.
	d.Idle(at, at.Add(vclock.Hour))
	at = at.Add(vclock.Hour)
	done, err := d.FlushDeltas(at)
	if err != nil {
		b.Fatal(err)
	}
	at = done
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vers, _, err := d.Versions(uint64(i)%64, at)
		if err != nil {
			b.Fatal(err)
		}
		if len(vers) == 0 {
			b.Fatal("no versions")
		}
	}
}
