package bench

import (
	"testing"

	"almanac/internal/core"
	"almanac/internal/flash"
	"almanac/internal/ftl"
	"almanac/internal/trace"
	"almanac/internal/vclock"
)

// simDevice builds the SimOpsPerSecond device: 512-byte sectors (the
// NVMe LBA size) over the default channel fan-out. Small pages keep the
// per-op byte work (copies, XOR, compression) proportionally small, so
// the benchmark weighs exactly what a million-IOPS core is about — the
// per-op constant factor of the event loop, mapping tables and version
// store — rather than host memory bandwidth.
func simDevice(b *testing.B) *core.TimeSSD {
	b.Helper()
	fc := flash.DefaultConfig()
	fc.PageSize = 512
	fc.PagesPerBlock = 128
	fc.BlocksPerPlane = 128
	cfg := core.DefaultConfig(ftl.WithFlash(fc))
	cfg.MinRetention = 0
	d, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// SimOpsPerSecond is the end-to-end simulator throughput benchmark: a
// mixed host workload (8 writes : 7 reads : 1 version query per 16 ops)
// driven through core.TimeSSD. The write stream covers half the logical
// space — the same capacity pressure TimeSSDWrite applies — so the
// adaptive retention window, GC and the version store all reach steady
// state instead of growing with b.N. All page content is generated
// before the timer starts, so the number measures the simulator hot
// path — FTL mapping, NAND state, version retention, GC — rather than
// workload synthesis. The inverse of ns/op is the headline "simulated
// IOPS" figure tracked by BENCH_N.json.
func SimOpsPerSecond(b *testing.B) {
	d := simDevice(b)
	const (
		templates = 512 // distinct page lineages shared across the LPA space
		rounds    = 6   // pre-generated successive versions per lineage
	)
	workSet := uint64(d.LogicalPages()) / 2
	gen := trace.NewContentGen(d.PageSize(), trace.ContentSimilar, 1)
	corpus := make([][][]byte, rounds)
	for r := range corpus {
		corpus[r] = make([][]byte, templates)
	}
	for k := 0; k < templates; k++ {
		for r := 0; r < rounds; r++ {
			corpus[r][k] = append([]byte(nil), gen.NextVersion(uint64(k))...)
		}
	}
	content := func(round int, lpa uint64) []byte {
		return corpus[round%rounds][lpa%templates]
	}
	at := vclock.Time(0)
	// Prefill the working set so every read and version query hits live
	// data and the device starts the timed loop under GC pressure.
	for lpa := uint64(0); lpa < workSet; lpa++ {
		done, err := d.Write(lpa, content(0, lpa), at)
		if err != nil {
			b.Fatal(err)
		}
		at = done.Add(vclock.Microsecond)
	}
	b.SetBytes(int64(d.PageSize()))
	b.ResetTimer()
	var writes, reads, queries int
	for i := 0; i < b.N; i++ {
		switch {
		case i%16 == 15: // version query
			lpa := uint64(queries) % workSet
			vers, _, err := d.Versions(lpa, at)
			if err != nil {
				b.Fatal(err)
			}
			if len(vers) == 0 {
				b.Fatal("no versions")
			}
			queries++
		case i%2 == 0: // write
			lpa := uint64(writes) % workSet
			done, err := d.Write(lpa, content(1+writes/int(workSet), lpa), at)
			if err != nil {
				b.Fatal(err)
			}
			at = done.Add(vclock.Microsecond)
			writes++
		default: // read
			lpa := uint64(reads) % workSet
			if _, _, err := d.Read(lpa, at); err != nil {
				b.Fatal(err)
			}
			reads++
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}
