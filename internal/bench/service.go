package bench

import (
	"net"
	"testing"

	"almanac/internal/almaproto"
	"almanac/internal/array"
	"almanac/internal/core"
	"almanac/internal/flash"
	"almanac/internal/ftl"
	"almanac/internal/service"
	"almanac/internal/vclock"
)

// ServiceOpsPerSec measures end-to-end throughput of the v4 stack: page
// writes flow from a pipelined client through the tagged transport over
// an in-memory pipe, into the volume service, and onto a 4-shard array's
// worker queues. Ops ride multi-op batch frames with several batches in
// flight, so the number reflects the pipelined path almanacd serves — not
// a request/response ping-pong.
func ServiceOpsPerSec(b *testing.B) {
	serviceOpsBody(b, func(srv *almaproto.Server) (*almaproto.Client, func()) {
		cliEnd, srvEnd := net.Pipe()
		go srv.ServeOne(srvEnd)
		c := almaproto.NewClient(cliEnd)
		return c, func() {
			_ = c.Close()
			_ = srvEnd.Close()
		}
	})
}

// ServiceOpsPerSecTCP is ServiceOpsPerSec over a real loopback TCP
// socket. net.Pipe is a synchronous rendezvous — every Write blocks until
// the peer reads, which hides what write coalescing buys on a socket
// (fewer syscalls, fewer wakeups). This variant puts the kernel back in
// the path so the coalesced flush shows up in the committed numbers.
func ServiceOpsPerSecTCP(b *testing.B) {
	serviceOpsBody(b, func(srv *almaproto.Server) (*almaproto.Client, func()) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			srv.ServeOne(conn)
		}()
		c, err := almaproto.Dial(ln.Addr().String())
		if err != nil {
			_ = ln.Close()
			b.Fatal(err)
		}
		return c, func() {
			_ = c.Close()
			_ = ln.Close()
		}
	})
}

// serviceOpsBody is the shared benchmark body: connect builds a client
// over the transport under test against the given server and returns a
// cleanup.
func serviceOpsBody(b *testing.B, connect func(*almaproto.Server) (*almaproto.Client, func())) {
	fc := flash.DefaultConfig()
	fc.BlocksPerPlane = 128
	cfg := core.DefaultConfig(ftl.WithFlash(fc))
	cfg.MinRetention = 0
	arr, err := array.New(array.Config{Shards: 4, Shard: cfg})
	if err != nil {
		b.Fatal(err)
	}
	defer arr.Close()
	svc := service.New(arr)
	srv := almaproto.NewServiceServer(svc)
	c, cleanup := connect(srv)
	defer cleanup()

	const volPages = 2048
	t0 := vclock.Time(vclock.Hour)
	if _, err := c.VolCreate("bench", "key", volPages, 0, t0); err != nil {
		b.Fatal(err)
	}
	info, err := c.VolAttach("bench", "key", t0)
	if err != nil {
		b.Fatal(err)
	}

	const (
		batchOps = 16 // ops per batch frame
		inflight = 8  // batch frames kept in flight
	)
	data := benchPage(1, arr.PageSize())
	ops := make([]service.BatchOp, batchOps)
	var pending []*almaproto.PendingBatch
	drainOne := func() {
		results, err := pending[0].Wait()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
		pending = pending[1:]
	}

	at := t0.Add(vclock.Second)
	seq := uint64(0)
	b.SetBytes(int64(arr.PageSize()))
	b.ResetTimer()
	for n := 0; n < b.N; {
		k := batchOps
		if rem := b.N - n; k > rem {
			k = rem
		}
		for i := 0; i < k; i++ {
			ops[i] = service.BatchOp{Kind: service.KindWrite, LPA: seq % volPages, Data: data, At: at}
			seq++
			at = at.Add(vclock.Millisecond)
		}
		pb, err := c.SubmitBatch(info.ID, ops[:k])
		if err != nil {
			b.Fatal(err)
		}
		pending = append(pending, pb)
		if len(pending) >= inflight {
			drainOne()
		}
		n += k
	}
	for len(pending) > 0 {
		drainOne()
	}
}
