// Package apps implements the application-level benchmarks of §5.3 —
// IOZone, PostMark, and the Shore-MT OLTP workloads (TPCC, TPCB, TATP) —
// as drivers over the fsim file system. Each returns virtual-time
// throughput, which Figure 9 reports normalised against the Ext4 baseline.
//
// Substitution note (DESIGN.md): Shore-MT itself is a large storage
// manager; what the paper's figure measures is the I/O stream it induces —
// random page updates into database files plus sequential WAL appends with
// per-transaction commits. The OLTP driver reproduces exactly that stream
// with per-benchmark transaction shapes.
package apps

import (
	"fmt"
	"math/rand"

	"almanac/internal/fsim"
	"almanac/internal/vclock"
)

// Result reports one benchmark run.
type Result struct {
	Name    string
	Ops     int             // operations (or transactions) completed
	Bytes   int64           // user bytes moved
	Elapsed vclock.Duration // virtual time consumed
	Start   vclock.Time
	End     vclock.Time
}

// OpsPerSec returns operations per virtual second.
func (r *Result) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// MBPerSec returns user throughput in MiB per virtual second.
func (r *Result) MBPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / (1 << 20) / r.Elapsed.Seconds()
}

// randomPage returns an incompressible page-sized buffer (IOZone writes
// random values, §5.3).
func randomPage(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	_, _ = rng.Read(b) // rand.Rand.Read is documented to never fail
	return b
}

// dbPage returns a page with content locality: mostly stable bytes with a
// small mutated window, giving the 0.12–0.23 delta ratios the paper
// measures for PostMark/OLTP data.
func dbPage(rng *rand.Rand, n int, key int64) []byte {
	base := rand.New(rand.NewSource(key))
	b := make([]byte, n)
	_, _ = base.Read(b) // rand.Rand.Read is documented to never fail
	k := n / 16
	for i := 0; i < k; i++ {
		b[rng.Intn(n)] = byte(rng.Intn(256))
	}
	return b
}

// IOZoneConfig sizes the IOZone run.
type IOZoneConfig struct {
	Files        int // files in the working set
	PagesPerFile int
	OpsPerPhase  int
	// SeqChunkPages is the I/O size of the sequential phases in pages
	// (IOZone streams large sequential requests, which lets a journaling
	// FS amortise its per-transaction commit overhead; random phases are
	// single-page ops). Default 8. OpsPerPhase counts pages, so every
	// phase moves the same data volume regardless of chunking.
	SeqChunkPages int
	Seed          int64
}

// IOZoneResult holds one result per phase.
type IOZoneResult struct {
	SeqWrite, SeqRead, RandWrite, RandRead Result
}

// IOZone runs the four phases (sequential write/read, random write/read)
// over a working set of files, 4 KiB at a time, and reports per-phase
// throughput.
func IOZone(fs *fsim.FS, cfg IOZoneConfig, at vclock.Time) (*IOZoneResult, vclock.Time, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ps := fs.Device().PageSize()
	chunk := cfg.SeqChunkPages
	if chunk < 1 {
		chunk = 8
	}
	if chunk > cfg.PagesPerFile {
		chunk = cfg.PagesPerFile
	}
	chunksPerFile := cfg.PagesPerFile / chunk
	if chunksPerFile < 1 {
		chunksPerFile = 1
	}
	names := make([]string, cfg.Files)
	var err error
	for i := range names {
		names[i] = fmt.Sprintf("iozone-%03d", i)
		if at, err = fs.Create(names[i], at); err != nil {
			return nil, at, err
		}
	}
	res := &IOZoneResult{}

	seqOps := cfg.OpsPerPhase / chunk
	if seqOps < 1 {
		seqOps = 1
	}
	phase := func(name string, ops int, fn func(i int, at vclock.Time) (int, vclock.Time, error)) (Result, error) {
		r := Result{Name: name, Start: at}
		for i := 0; i < ops; i++ {
			n, done, err := fn(i, at)
			if err != nil {
				return r, err
			}
			at = done
			r.Ops++
			r.Bytes += int64(n)
		}
		r.End = at
		r.Elapsed = r.End.Sub(r.Start)
		return r, nil
	}

	// Sequential write: file after file, one large streaming request per
	// op (chunk pages each).
	if res.SeqWrite, err = phase("SeqWrite", seqOps, func(i int, at vclock.Time) (int, vclock.Time, error) {
		f := (i / chunksPerFile) % cfg.Files
		c := i % chunksPerFile
		done, err := fs.Write(names[f], int64(c*chunk*ps), randomPage(rng, chunk*ps), at)
		return chunk * ps, done, err
	}); err != nil {
		return nil, at, err
	}
	// Sequential read.
	if res.SeqRead, err = phase("SeqRead", seqOps, func(i int, at vclock.Time) (int, vclock.Time, error) {
		f := (i / chunksPerFile) % cfg.Files
		c := i % chunksPerFile
		_, done, err := fs.Read(names[f], int64(c*chunk*ps), chunk*ps, at)
		return chunk * ps, done, err
	}); err != nil {
		return nil, at, err
	}
	// Random phases touch only the region the sequential pass populated,
	// so every read hits real data.
	covered := chunksPerFile * chunk
	if res.RandWrite, err = phase("RandomWrite", cfg.OpsPerPhase, func(i int, at vclock.Time) (int, vclock.Time, error) {
		f := rng.Intn(cfg.Files)
		p := rng.Intn(covered)
		done, err := fs.Write(names[f], int64(p*ps), randomPage(rng, ps), at)
		return ps, done, err
	}); err != nil {
		return nil, at, err
	}
	if res.RandRead, err = phase("RandomRead", cfg.OpsPerPhase, func(i int, at vclock.Time) (int, vclock.Time, error) {
		f := rng.Intn(cfg.Files)
		p := rng.Intn(covered)
		_, done, err := fs.Read(names[f], int64(p*ps), ps, at)
		return ps, done, err
	}); err != nil {
		return nil, at, err
	}
	return res, at, nil
}

// PostMarkConfig sizes the PostMark mail-server emulation.
type PostMarkConfig struct {
	InitialFiles int
	MinFileKB    int
	MaxFileKB    int
	Transactions int
	Seed         int64
}

// DefaultPostMark matches PostMark's classic small-file profile.
func DefaultPostMark() PostMarkConfig {
	return PostMarkConfig{InitialFiles: 60, MinFileKB: 1, MaxFileKB: 16, Transactions: 500, Seed: 1}
}

// PostMark runs the mail-server benchmark: an initial pool of small files,
// then transactions that each pair a create-or-delete with a read-or-append
// (PostMark's definition).
func PostMark(fs *fsim.FS, cfg PostMarkConfig, at vclock.Time) (*Result, vclock.Time, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := &Result{Name: "PostMark", Start: at}
	var err error
	var pool []string
	serial := 0
	newName := func() string {
		serial++
		return fmt.Sprintf("mail-%06d", serial)
	}
	size := func() int {
		kb := cfg.MinFileKB + rng.Intn(cfg.MaxFileKB-cfg.MinFileKB+1)
		return kb * 1024
	}
	create := func(at vclock.Time) (vclock.Time, error) {
		name := newName()
		if at, err = fs.Create(name, at); err != nil {
			return at, err
		}
		n := size()
		if at, err = fs.Write(name, 0, dbPage(rng, n, int64(serial)), at); err != nil {
			return at, err
		}
		pool = append(pool, name)
		r.Bytes += int64(n)
		return at, nil
	}
	for i := 0; i < cfg.InitialFiles; i++ {
		if at, err = create(at); err != nil {
			return nil, at, err
		}
	}
	r.Start = at // measure transactions only, like PostMark -t
	for i := 0; i < cfg.Transactions; i++ {
		// Half A: create or delete.
		if rng.Intn(2) == 0 || len(pool) == 0 {
			if at, err = create(at); err != nil {
				return nil, at, err
			}
		} else {
			idx := rng.Intn(len(pool))
			if at, err = fs.Delete(pool[idx], at); err != nil {
				return nil, at, err
			}
			pool = append(pool[:idx], pool[idx+1:]...)
		}
		// Half B: read or append.
		if len(pool) > 0 {
			name := pool[rng.Intn(len(pool))]
			if rng.Intn(2) == 0 {
				sz, _ := fs.Size(name)
				if sz > 0 {
					_, done, rerr := fs.Read(name, 0, int(sz), at)
					if rerr != nil {
						return nil, at, rerr
					}
					at = done
					r.Bytes += sz
				}
			} else {
				n := 1024 + rng.Intn(4096)
				if at, err = fs.Append(name, dbPage(rng, n, int64(i)), at); err != nil {
					return nil, at, err
				}
				r.Bytes += int64(n)
			}
		}
		r.Ops++
	}
	r.End = at
	r.Elapsed = r.End.Sub(r.Start)
	return r, at, nil
}

// OLTPKind selects the transaction benchmark.
type OLTPKind int

const (
	TPCC OLTPKind = iota
	TPCB
	TATP
)

func (k OLTPKind) String() string {
	switch k {
	case TPCC:
		return "TPCC"
	case TPCB:
		return "TPCB"
	case TATP:
		return "TATP"
	default:
		return fmt.Sprintf("oltp(%d)", int(k))
	}
}

// OLTPConfig sizes an OLTP run.
type OLTPConfig struct {
	Kind         OLTPKind
	TablePages   int // database table size in pages
	Transactions int
	Seed         int64
}

// oltpShape captures per-benchmark transaction characteristics: how many
// pages a transaction reads and dirties, and the read-only fraction —
// TPC-C's mid-weight mixed transactions, TPC-B's small debit-credit
// updates, TATP's tiny read-dominated telecom lookups.
type oltpShape struct {
	readPages  int
	writePages int
	readOnly   float64 // fraction of transactions that only read
	logBytes   int     // WAL bytes per update transaction
}

func shapeOf(k OLTPKind) oltpShape {
	switch k {
	case TPCC:
		return oltpShape{readPages: 8, writePages: 6, readOnly: 0.08, logBytes: 3000}
	case TPCB:
		return oltpShape{readPages: 2, writePages: 3, readOnly: 0, logBytes: 600}
	default: // TATP
		return oltpShape{readPages: 1, writePages: 1, readOnly: 0.8, logBytes: 200}
	}
}

// OLTP runs the benchmark: transactions read and update random table
// pages (with hot-spot skew) in database files and append commit records
// to a write-ahead log, exactly the stream Shore-MT sends to the device.
func OLTP(fs *fsim.FS, cfg OLTPConfig, at vclock.Time) (*Result, vclock.Time, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sh := shapeOf(cfg.Kind)
	ps := fs.Device().PageSize()
	maxPages := 0
	// The table spans multiple files to stay within per-file limits.
	var tables []string
	var err error
	perFile := 0
	{
		perFile = (fsPagesLimit(fs) * 3) / 4
		need := cfg.TablePages
		for i := 0; need > 0; i++ {
			name := fmt.Sprintf("%s-table-%02d", cfg.Kind, i)
			if at, err = fs.Create(name, at); err != nil {
				return nil, at, err
			}
			n := need
			if n > perFile {
				n = perFile
			}
			// Preallocate the table file.
			for p := 0; p < n; p++ {
				if at, err = fs.Write(name, int64(p*ps), dbPage(rng, ps, int64(i*perFile+p)), at); err != nil {
					return nil, at, err
				}
			}
			tables = append(tables, name)
			maxPages += n
			need -= n
		}
	}
	wal := fmt.Sprintf("%s-wal", cfg.Kind)
	if at, err = fs.Create(wal, at); err != nil {
		return nil, at, err
	}
	walLimit := int64((fsPagesLimit(fs) - 2) * ps)
	var walOff int64

	r := &Result{Name: cfg.Kind.String(), Start: at}
	pagePick := func() (string, int) {
		// 80% of accesses hit 20% of the table (hot spot).
		var global int
		if rng.Float64() < 0.8 {
			global = rng.Intn(maxPages/5 + 1)
		} else {
			global = rng.Intn(maxPages)
		}
		return tables[global/perFile], global % perFile
	}
	for i := 0; i < cfg.Transactions; i++ {
		readOnly := rng.Float64() < sh.readOnly
		for p := 0; p < sh.readPages; p++ {
			name, pg := pagePick()
			if _, at, err = fs.Read(name, int64(pg*ps), ps, at); err != nil {
				return nil, at, err
			}
			r.Bytes += int64(ps)
		}
		if !readOnly {
			for p := 0; p < sh.writePages; p++ {
				name, pg := pagePick()
				if at, err = fs.Write(name, int64(pg*ps), dbPage(rng, ps, int64(pg)), at); err != nil {
					return nil, at, err
				}
				r.Bytes += int64(ps)
			}
			// Commit: append the log record (fsim is write-through, so this
			// is the fsync).
			if walOff+int64(sh.logBytes) >= walLimit {
				// Rotate the log like a real checkpointer.
				if at, err = fs.Delete(wal, at); err != nil {
					return nil, at, err
				}
				if at, err = fs.Create(wal, at); err != nil {
					return nil, at, err
				}
				walOff = 0
			}
			if at, err = fs.Write(wal, walOff, dbPage(rng, sh.logBytes, int64(i)), at); err != nil {
				return nil, at, err
			}
			walOff += int64(sh.logBytes)
			r.Bytes += int64(sh.logBytes)
		}
		r.Ops++
	}
	r.End = at
	r.Elapsed = r.End.Sub(r.Start)
	return r, at, nil
}

// fsPagesLimit returns the per-file page limit of the file system.
func fsPagesLimit(fs *fsim.FS) int {
	return 12 + fs.Device().PageSize()/8
}
