package apps

import (
	"testing"

	"almanac/internal/core"
	"almanac/internal/flash"
	"almanac/internal/fsim"
	"almanac/internal/ftl"
	"almanac/internal/vclock"
)

func newFS(t *testing.T, mode fsim.Mode) *fsim.FS {
	t.Helper()
	fc := flash.DefaultConfig()
	fc.Channels = 4
	fc.ChipsPerChannel = 1
	fc.BlocksPerPlane = 64
	fc.PagesPerBlock = 32
	fc.PageSize = 2048
	cfg := core.DefaultConfig(ftl.WithFlash(fc))
	cfg.MinRetention = 0
	dev, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := fsim.DefaultOptions(mode)
	opts.InodeCount = 256
	fs, _, err := fsim.Mkfs(dev, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestIOZonePhases(t *testing.T) {
	fs := newFS(t, fsim.ModeInPlace)
	res, _, err := IOZone(fs, IOZoneConfig{Files: 4, PagesPerFile: 32, OpsPerPhase: 200, Seed: 1}, vclock.Time(vclock.Second))
	if err != nil {
		t.Fatal(err)
	}
	ps := int64(fs.Device().PageSize())
	for _, r := range []Result{res.SeqWrite, res.SeqRead, res.RandWrite, res.RandRead} {
		// OpsPerPhase counts pages: every phase moves the same volume.
		if r.Bytes != 200*ps {
			t.Fatalf("%s: moved %d bytes, want %d", r.Name, r.Bytes, 200*ps)
		}
		if r.Elapsed <= 0 {
			t.Fatalf("%s: no virtual time elapsed", r.Name)
		}
		if r.MBPerSec() <= 0 || r.OpsPerSec() <= 0 {
			t.Fatalf("%s: zero throughput", r.Name)
		}
	}
	// Reads must be faster than writes on flash.
	if res.SeqRead.Elapsed >= res.SeqWrite.Elapsed {
		t.Fatalf("sequential read (%v) not faster than write (%v)",
			res.SeqRead.Elapsed, res.SeqWrite.Elapsed)
	}
}

func TestPostMark(t *testing.T) {
	for _, mode := range []fsim.Mode{fsim.ModeInPlace, fsim.ModeDataJournal, fsim.ModeLogStructured} {
		t.Run(mode.String(), func(t *testing.T) {
			fs := newFS(t, mode)
			cfg := DefaultPostMark()
			cfg.InitialFiles = 20
			cfg.Transactions = 150
			res, _, err := PostMark(fs, cfg, vclock.Time(vclock.Second))
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 150 {
				t.Fatalf("completed %d transactions", res.Ops)
			}
			if res.OpsPerSec() <= 0 {
				t.Fatal("no throughput")
			}
		})
	}
}

func TestPostMarkJournalSlower(t *testing.T) {
	run := func(mode fsim.Mode) float64 {
		fs := newFS(t, mode)
		cfg := DefaultPostMark()
		cfg.InitialFiles = 20
		cfg.Transactions = 200
		res, _, err := PostMark(fs, cfg, vclock.Time(vclock.Second))
		if err != nil {
			t.Fatal(err)
		}
		return res.OpsPerSec()
	}
	inPlace := run(fsim.ModeInPlace)
	journal := run(fsim.ModeDataJournal)
	if journal >= inPlace {
		t.Fatalf("data journaling (%.1f tps) not slower than in-place (%.1f tps)", journal, inPlace)
	}
}

func TestOLTPKinds(t *testing.T) {
	for _, kind := range []OLTPKind{TPCC, TPCB, TATP} {
		t.Run(kind.String(), func(t *testing.T) {
			fs := newFS(t, fsim.ModeInPlace)
			res, _, err := OLTP(fs, OLTPConfig{Kind: kind, TablePages: 200, Transactions: 150, Seed: 2}, vclock.Time(vclock.Second))
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 150 {
				t.Fatalf("%d transactions", res.Ops)
			}
			if res.OpsPerSec() <= 0 {
				t.Fatal("no throughput")
			}
		})
	}
}

func TestOLTPShapeOrdering(t *testing.T) {
	// TATP transactions are far lighter than TPCC's, so TATP must achieve
	// higher TPS on the same device (the paper reports 122.3K vs 6.3K).
	run := func(kind OLTPKind) float64 {
		fs := newFS(t, fsim.ModeInPlace)
		res, _, err := OLTP(fs, OLTPConfig{Kind: kind, TablePages: 200, Transactions: 200, Seed: 3}, vclock.Time(vclock.Second))
		if err != nil {
			t.Fatal(err)
		}
		return res.OpsPerSec()
	}
	tpcc := run(TPCC)
	tpcb := run(TPCB)
	tatp := run(TATP)
	if !(tatp > tpcb && tpcb > tpcc) {
		t.Fatalf("TPS ordering wrong: TPCC=%.0f TPCB=%.0f TATP=%.0f", tpcc, tpcb, tatp)
	}
}
