package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"almanac/internal/lint/flow"
)

// cacheVersion invalidates every cache entry when the summary format or
// any rule's semantics change. Bump it alongside such changes.
const cacheVersion = "almalint-cache-v1"

// allowRecord is one allow directive in serializable form, kept in the
// cache so deep-rule findings can be filtered without re-parsing clean
// packages.
type allowRecord struct {
	File  string   `json:"file"`
	Line  int      `json:"line"`
	Rules []string `json:"rules"`
}

// cacheEntry is the per-package cache payload: everything a warm run
// needs from a clean package without parsing or type-checking it.
// Classic findings are safe to cache per package (they depend only on the
// package's own files); deep findings are NOT cached — they are derived
// every run by re-linking the (cached) summaries, because a finding
// anchored in package A can be caused by an edit in package B.
type cacheEntry struct {
	Version   string             `json:"version"`
	Hash      string             `json:"hash"`
	Summaries []flow.FuncSummary `json:"summaries"`
	Findings  []Finding          `json:"findings"`
	Allows    []allowRecord      `json:"allows"`
}

// AnalyzeStats reports how one Analyze call used the cache.
type AnalyzeStats struct {
	Packages    int
	CacheHits   int
	CacheMisses int
}

// Result is the output of Analyze.
type Result struct {
	Findings []Finding
	Stats    AnalyzeStats
	// Program is the linked whole-module flow program (for -graph export).
	Program *flow.Program
}

// Analyze runs the full rule set (classic + deep) over the module rooted
// at root. When cacheDir is non-empty, per-package summaries and classic
// findings are persisted there, keyed by a content hash covering the
// package's files and its transitive module-internal dependencies; warm
// runs skip parsing and type-checking for unchanged packages entirely,
// which is what keeps warm wall time well under cold.
func Analyze(root, cacheDir string, rules []Rule, deep []DeepRule) (*Result, error) {
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	dirs, err := loader.PackageDirs()
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	hashes, err := contentHashes(loader, dirs)
	if err != nil {
		return nil, err
	}

	if cacheDir != "" {
		// Best effort: an unusable cache directory degrades to cold runs.
		if err := os.MkdirAll(cacheDir, 0o755); err != nil {
			cacheDir = ""
		}
	}

	res := &Result{Stats: AnalyzeStats{Packages: len(dirs)}}
	var sums []flow.FuncSummary
	allows := allowSet{}
	ruleKey := ruleSetKey(rules, deep)

	for _, dir := range dirs {
		key := hashes[dir] + "|" + ruleKey
		var entry *cacheEntry
		path := ""
		if cacheDir != "" {
			path = filepath.Join(cacheDir, entryName(loader, dir))
			entry = readEntry(path, key)
		}
		if entry != nil {
			res.Stats.CacheHits++
		} else {
			res.Stats.CacheMisses++
			p, err := loader.Load(dir)
			if err != nil {
				return nil, err
			}
			entry = &cacheEntry{
				Version:   cacheVersion,
				Hash:      key,
				Summaries: ExtractPackage(p, loader.ModulePath),
				Findings:  Run([]*Package{p}, rules),
				Allows:    allowRecords(p),
			}
			if path != "" {
				writeEntry(path, entry)
			}
		}
		res.Findings = append(res.Findings, entry.Findings...)
		sums = append(sums, entry.Summaries...)
		mergeAllowRecords(allows, entry.Allows)
	}

	res.Program = flow.Link(sums)
	for _, r := range deep {
		for _, f := range r.CheckProgram(res.Program) {
			if allows.allowed(f.Rule, f.File, f.Line) {
				continue
			}
			res.Findings = append(res.Findings, f)
		}
	}
	sortFindings(res.Findings)
	return res, nil
}

// ruleSetKey folds the active rule IDs into the cache key so adding or
// removing a rule invalidates cached findings.
func ruleSetKey(rules []Rule, deep []DeepRule) string {
	var ids []string
	for _, r := range rules {
		ids = append(ids, r.ID())
	}
	for _, r := range deep {
		ids = append(ids, "deep:"+r.ID())
	}
	sort.Strings(ids)
	return strings.Join(ids, ",")
}

// entryName derives a stable cache file name from the import path.
func entryName(l *Loader, dir string) string {
	path, err := l.importPathFor(dir)
	if err != nil {
		path = dir
	}
	sum := sha256.Sum256([]byte(path))
	return hex.EncodeToString(sum[:8]) + ".json"
}

func readEntry(path, wantKey string) *cacheEntry {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil {
		return nil
	}
	if e.Version != cacheVersion || e.Hash != wantKey {
		return nil
	}
	return &e
}

func writeEntry(path string, e *cacheEntry) {
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	tmp := path + ".tmp"
	if os.WriteFile(tmp, data, 0o644) != nil {
		return
	}
	_ = os.Rename(tmp, path)
}

// contentHashes computes, for every package directory, a hash covering
// the package's own non-test Go files and (transitively) those of every
// module-internal dependency — discovered with imports-only parsing, so a
// warm run never type-checks anything. An edit to a dependency therefore
// invalidates its dependents, which is what makes caching summaries of
// type-checked code sound.
func contentHashes(l *Loader, dirs []string) (map[string]string, error) {
	own := map[string]string{}
	deps := map[string][]string{}
	byPath := map[string]string{} // import path → dir
	fset := token.NewFileSet()

	for _, dir := range dirs {
		importPath, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		byPath[importPath] = dir

		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		var names []string
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") ||
				strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				continue
			}
			names = append(names, name)
		}
		sort.Strings(names)

		h := sha256.New()
		var imports []string
		for _, name := range names {
			full := filepath.Join(dir, name)
			data, err := os.ReadFile(full)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(h, "%s\x00%d\x00", name, len(data))
			_, _ = h.Write(data) // hash.Hash writes never fail
			f, err := parser.ParseFile(fset, full, data, parser.ImportsOnly)
			if err != nil {
				continue // the real load will surface the error
			}
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == l.ModulePath || strings.HasPrefix(p, l.ModulePath+"/") {
					imports = append(imports, p)
				}
			}
		}
		own[dir] = hex.EncodeToString(h.Sum(nil))
		sort.Strings(imports)
		deps[dir] = imports
	}

	// Transitive hash: own hash + dependency hashes, memoized. Go forbids
	// import cycles, so plain recursion terminates.
	memo := map[string]string{}
	var trans func(dir string) string
	trans = func(dir string) string {
		if v, ok := memo[dir]; ok {
			return v
		}
		memo[dir] = own[dir] // break accidental cycles defensively
		h := sha256.New()
		fmt.Fprintf(h, "%s\x00", own[dir])
		prev := ""
		for _, imp := range deps[dir] {
			if imp == prev {
				continue
			}
			prev = imp
			if d, ok := byPath[imp]; ok {
				fmt.Fprintf(h, "%s=%s\x00", imp, trans(d))
			}
		}
		v := hex.EncodeToString(h.Sum(nil))
		memo[dir] = v
		return v
	}
	out := map[string]string{}
	for _, dir := range dirs {
		out[dir] = trans(dir)
	}
	return out, nil
}

// allowRecords serializes a package's allow directives.
func allowRecords(p *Package) []allowRecord {
	set := collectAllows(p)
	var out []allowRecord
	var files []string
	for f := range set {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		var lines []int
		for l := range set[f] {
			lines = append(lines, l)
		}
		sort.Ints(lines)
		for _, l := range lines {
			var rules []string
			for r := range set[f][l] {
				rules = append(rules, r)
			}
			sort.Strings(rules)
			out = append(out, allowRecord{File: f, Line: l, Rules: rules})
		}
	}
	return out
}

func mergeAllowRecords(set allowSet, recs []allowRecord) {
	for _, rec := range recs {
		lines := set[rec.File]
		if lines == nil {
			lines = map[int]map[string]bool{}
			set[rec.File] = lines
		}
		rules := lines[rec.Line]
		if rules == nil {
			rules = map[string]bool{}
			lines[rec.Line] = rules
		}
		for _, r := range rec.Rules {
			rules[r] = true
		}
	}
}
