package lint

import (
	"go/ast"
	"strings"
)

// AllowReason enforces the suppression-comment contract: every
// //almalint:allow directive must name at least one rule ID and carry a
// "reason:" suffix with non-empty justification text. A suppression
// without a recorded reason is indistinguishable from a silenced bug six
// months later. Findings from this rule are themselves never suppressible.
type AllowReason struct{}

// NewAllowReason returns the rule in production configuration.
func NewAllowReason() *AllowReason { return &AllowReason{} }

func (r *AllowReason) ID() string { return "allowreason" }

func (r *AllowReason) Doc() string {
	return "every //almalint:allow must list rule IDs and end with 'reason: <justification>'"
}

func (r *AllowReason) Check(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if f, bad := r.checkComment(p, c); bad {
					out = append(out, f)
				}
			}
		}
	}
	return out
}

func (r *AllowReason) checkComment(p *Package, c *ast.Comment) (Finding, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, AllowPrefix) {
		return Finding{}, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, AllowPrefix))
	fields := strings.Fields(rest)

	ids := 0
	for _, fld := range fields {
		if !isRuleToken(strings.Trim(fld, ",")) {
			break
		}
		ids++
	}
	if ids == 0 {
		return finding(p, c, r.ID(),
			"allow directive names no rule IDs",
			"format: //almalint:allow <rule-id>[, <rule-id>...] reason: <justification>"), true
	}
	for i, fld := range fields {
		if fld == "reason:" && i+1 < len(fields) {
			return Finding{}, false
		}
		if strings.HasPrefix(fld, "reason:") && len(fld) > len("reason:") {
			return Finding{}, false
		}
	}
	return finding(p, c, r.ID(),
		"allow directive has no reason: justification",
		"append 'reason: <why this finding is a documented false positive>'"), true
}
