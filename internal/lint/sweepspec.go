package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// SweepSpec forbids ad-hoc construction of sweep.Spec and sweep.Axis
// composite literals outside the layers that legitimately author
// design-space specifications: internal/sweep itself (the parser and the
// default-grid presets) and internal/harness (the "sweep" experiment).
// Everywhere else a spec must come through sweep.Parse — the spec text
// is then serialisable, embedded in SWEEP_N.json artifacts, and
// validated in one place, exactly the discipline faultplan enforces for
// fault schedules. Consuming a parsed spec (sweep.Engine, Points,
// tables) is fine anywhere; conjuring one is not.
//
// Test files are exempt by construction (the loader analyzes only
// non-test files), and cmd/ sits outside the internal scope — the
// almasweep CLI reads spec files rather than building literals anyway.
type SweepSpec struct {
	// Module is the module path prefix; empty selects "almanac".
	Module string
}

// NewSweepSpec returns the rule in production configuration.
func NewSweepSpec() *SweepSpec { return &SweepSpec{} }

func (r *SweepSpec) ID() string { return "sweepspec" }

func (r *SweepSpec) Doc() string {
	return "sweep.Spec/sweep.Axis literals only in internal/sweep, internal/harness and tests; build specs with sweep.Parse"
}

func (r *SweepSpec) Check(p *Package) []Finding {
	mod := r.Module
	if mod == "" {
		mod = "almanac"
	}
	switch p.ImportPath {
	case mod + "/internal/sweep", mod + "/internal/harness":
		return nil
	}
	if !strings.HasPrefix(p.ImportPath, mod+"/internal/") {
		return nil
	}
	sweepPath := mod + "/internal/sweep"
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[ast.Expr(cl)]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != sweepPath {
				return true
			}
			name := named.Obj().Name()
			if name != "Spec" && name != "Axis" {
				return true
			}
			out = append(out, finding(p, cl, r.ID(),
				fmt.Sprintf("sweep.%s literal constructed in %s", name, p.ImportPath),
				"build sweep specs with sweep.Parse so they are serialisable and CI-replayable; literals belong to internal/sweep, internal/harness and tests"))
			return true
		})
	}
	return out
}
