package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// callTarget names a method that is a guarded layer entry point.
type callTarget struct {
	PkgPath  string // defining package import path
	Type     string // receiver named type
	Methods  map[string]bool
	Allowed  map[string]bool // caller import paths allowed to invoke it
	Boundary string          // human name of the boundary, for messages
	// InternalOnly restricts enforcement to callers under <module>/internal:
	// cmd/ and examples/ sit on the host side of the firmware boundary and
	// consume the device API like any host program would.
	InternalOnly bool
}

// Layering enforces the paper's firmware boundary (§3.3) as a declared
// call matrix: raw flash program/erase/charge operations are reachable
// only from the FTL and core layers, and TimeSSD mutation entry points are
// reachable (among internal packages) only from the layers that legitimately
// drive a device: the array, TimeKits, the wire protocol, the harness, the
// file-system simulator, and the benchmark bodies. Everything else must go
// through the ftl.Device interface or the array, so that instrumentation
// and striping cannot be bypassed. The multi-tenant volume layer adds two
// more boundaries: tenant mutation and lifecycle calls enter only through
// the wire protocol, harness, or bench, and the array-wide retention bound
// reaches member devices only through the array's fan-out.
type Layering struct {
	// Module is the module path prefix used to resolve caller scope. Empty
	// selects "almanac".
	Module string
	// Targets overrides the production matrix (tests only).
	Targets []callTarget
}

// NewLayering returns the rule with the production matrix.
func NewLayering() *Layering { return &Layering{} }

func (r *Layering) ID() string { return "layering" }

func (r *Layering) Doc() string {
	return "raw flash ops only from ftl/core; core mutation entry points only from array/timekits/almaproto/harness/fsim/bench; volume mutation and lifecycle only from almaproto/harness/bench"
}

func (r *Layering) matrix() []callTarget {
	if r.Targets != nil {
		return r.Targets
	}
	mod := r.Module
	if mod == "" {
		mod = "almanac"
	}
	return []callTarget{
		{
			PkgPath: mod + "/internal/flash",
			Type:    "Array",
			Methods: map[string]bool{"Program": true, "Erase": true, "Charge": true, "FailReads": true, "SetFaults": true},
			Allowed: map[string]bool{
				mod + "/internal/ftl":  true,
				mod + "/internal/core": true,
			},
			Boundary: "raw flash mutation (firmware boundary, DESIGN.md)",
		},
		{
			PkgPath: mod + "/internal/core",
			Type:    "TimeSSD",
			Methods: map[string]bool{"Write": true, "Trim": true, "Idle": true, "SetFaults": true},
			Allowed: map[string]bool{
				mod + "/internal/array":     true,
				mod + "/internal/timekits":  true,
				mod + "/internal/almaproto": true,
				mod + "/internal/harness":   true,
				mod + "/internal/fsim":      true,
				mod + "/internal/bench":     true,
			},
			Boundary:     "TimeSSD mutation entry points",
			InternalOnly: true,
		},
		{
			// The array-wide retention bound is derived from the volume
			// set; only the array's fan-out may push it down to member
			// devices, so the service can never touch core directly.
			PkgPath: mod + "/internal/core",
			Type:    "TimeSSD",
			Methods: map[string]bool{"SetMinRetention": true},
			Allowed: map[string]bool{
				mod + "/internal/array": true,
			},
			Boundary:     "retention-bound fan-out (array only)",
			InternalOnly: true,
		},
		{
			// Tenant I/O must enter through a checked volume handle: the
			// wire protocol, the harness fleet, and the benchmark bodies.
			// Anything else would bypass extent bounds and window checks.
			// StartBatch is the split-submission form the server's writer
			// goroutine completes — same boundary as Batch.
			PkgPath: mod + "/internal/service",
			Type:    "Volume",
			Methods: map[string]bool{"Write": true, "Trim": true, "Batch": true, "StartBatch": true, "RollBack": true},
			Allowed: map[string]bool{
				mod + "/internal/almaproto": true,
				mod + "/internal/harness":   true,
				mod + "/internal/bench":     true,
			},
			Boundary:     "volume tenant mutation entry points",
			InternalOnly: true,
		},
		{
			PkgPath: mod + "/internal/service",
			Type:    "Service",
			Methods: map[string]bool{"Create": true, "Delete": true},
			Allowed: map[string]bool{
				mod + "/internal/almaproto": true,
				mod + "/internal/harness":   true,
				mod + "/internal/bench":     true,
			},
			Boundary:     "volume lifecycle entry points",
			InternalOnly: true,
		},
	}
}

func (r *Layering) Check(p *Package) []Finding {
	mod := r.Module
	if mod == "" {
		mod = "almanac"
	}
	var out []Finding
	for _, t := range r.matrix() {
		if t.Allowed[p.ImportPath] || p.ImportPath == t.PkgPath {
			continue
		}
		if t.InternalOnly && !strings.HasPrefix(p.ImportPath, mod+"/internal/") {
			continue
		}
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
				if !ok || !t.Methods[fn.Name()] {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() == nil {
					return true
				}
				named := namedRecv(sig.Recv().Type())
				if named == nil || named.Obj().Pkg() == nil {
					return true
				}
				if named.Obj().Pkg().Path() != t.PkgPath || named.Obj().Name() != t.Type {
					return true
				}
				out = append(out, finding(p, sel, r.ID(),
					fmt.Sprintf("%s.%s.%s called from %s, which is outside the %s layer set",
						lastSegment(t.PkgPath), t.Type, fn.Name(), p.ImportPath, t.Boundary),
					"go through the ftl.Device interface or the array instead of the raw entry point"))
				return true
			})
		}
	}
	return out
}

// namedRecv unwraps a receiver type to its named type, if any.
func namedRecv(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
