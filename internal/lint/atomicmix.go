package lint

import (
	"fmt"

	"almanac/internal/lint/flow"
)

// AtomicMix flags fields (and module-level variables) that are accessed
// through sync/atomic somewhere but read or written plainly somewhere
// else — anywhere in the module, across package boundaries. A single
// plain access to an atomically-updated word is a data race the compiler
// accepts silently and the race detector only reports on the schedules
// that interleave it; the obs seqlock ring and the lock-free stats
// snapshots rely on every access agreeing on atomicity.
type AtomicMix struct{}

// NewAtomicMix returns the rule in production configuration.
func NewAtomicMix() *AtomicMix { return &AtomicMix{} }

func (r *AtomicMix) ID() string { return "atomicmix" }

func (r *AtomicMix) Doc() string {
	return "a field accessed via sync/atomic anywhere must be accessed atomically everywhere, module-wide"
}

func (r *AtomicMix) inScope(importPath string) bool {
	if inTestdata(importPath) {
		return lastSegment(importPath) == r.ID()
	}
	return true
}

func (r *AtomicMix) CheckProgram(prog *flow.Program) []Finding {
	var out []Finding
	for _, rep := range prog.AtomicMix() {
		f := prog.Func(rep.Func)
		if f == nil || !r.inScope(f.Pkg) {
			continue
		}
		out = append(out, Finding{
			Rule: r.ID(), File: rep.PlainPos.File, Line: rep.PlainPos.Line, Col: rep.PlainPos.Col,
			Msg: fmt.Sprintf("plain %s of %s, which is accessed via atomic.%s at %s",
				rep.Mode, humanLock(("T:" + rep.Field)), rep.AtomicOp, shortPos(rep.AtomicPos)),
			Hint: "use sync/atomic (or a typed atomic) for every access to this word, " +
				"or annotate with //almalint:allow atomicmix reason: <why this access cannot race>",
		})
	}
	return out
}
