package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// SeededRand forbids the global math/rand PRNG everywhere in the module.
// The global source is seeded once per process (and randomly since Go
// 1.20), so any call to rand.Intn and friends makes harness runs and the
// array replay path non-reproducible. Every consumer must thread an
// explicit rand.New(rand.NewSource(seed)).
type SeededRand struct{}

// NewSeededRand returns the rule.
func NewSeededRand() *SeededRand { return &SeededRand{} }

func (r *SeededRand) ID() string { return "seededrand" }

func (r *SeededRand) Doc() string {
	return "global math/rand PRNG calls are forbidden; use an explicitly seeded rand.New(rand.NewSource(seed))"
}

// seededRandOK are the math/rand package-level functions that construct
// seeded sources rather than consult the global PRNG.
var seededRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func (r *SeededRand) Check(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on *rand.Rand are fine: the source is explicit
			}
			if seededRandOK[fn.Name()] {
				return true
			}
			out = append(out, finding(p, sel, r.ID(),
				fmt.Sprintf("global PRNG call rand.%s is not reproducible", fn.Name()),
				"use a local rng := rand.New(rand.NewSource(seed)) so runs are bit-reproducible"))
			return true
		})
	}
	return out
}
