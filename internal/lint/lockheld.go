package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// LockHeld flags channel operations and known blocking calls made while a
// mutex is lexically held, in the packages that mix locks with worker
// queues (array, almaproto). A send on a full submission queue while
// holding a lock the consumer also needs is a classic deadlock that
// go vet does not catch, and the race detector only finds if the schedule
// cooperates. The analysis is lexical, as specified: a critical section is
// the statements between x.Lock()/x.RLock() and the next matching
// x.Unlock()/x.RUnlock() in the same statement list, or the rest of the
// list after a defer-unlock. Blocking work inside a nested function
// literal is not flagged — it runs on another goroutine's schedule.
type LockHeld struct {
	// Packages is the set of in-scope package base names. Nil selects the
	// production set.
	Packages map[string]bool
}

var lockHeldPackages = map[string]bool{"array": true, "almaproto": true}

// NewLockHeld returns the rule in production configuration.
func NewLockHeld() *LockHeld { return &LockHeld{} }

func (r *LockHeld) ID() string { return "lockheld" }

func (r *LockHeld) Doc() string {
	return "no channel sends/receives, selects, blocking waits, or obs instrumentation calls while a mutex is lexically held"
}

func (r *LockHeld) inScope(importPath string) bool {
	pkgs := r.Packages
	if pkgs == nil {
		pkgs = lockHeldPackages
	}
	return pkgs[lastSegment(importPath)] || inTestdata(importPath)
}

func (r *LockHeld) Check(p *Package) []Finding {
	if !r.inScope(p.ImportPath) {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			out = append(out, r.checkList(p, block.List)...)
			return true
		})
	}
	return out
}

// checkList scans one statement list for Lock()…Unlock() regions.
func (r *LockHeld) checkList(p *Package, list []ast.Stmt) []Finding {
	var out []Finding
	for i := 0; i < len(list); i++ {
		key, ok := lockCall(p, list[i], "Lock", "RLock")
		if !ok {
			continue
		}
		// Find the matching unlock at this nesting level.
		end := len(list)
		deferred := false
		for j := i + 1; j < len(list); j++ {
			if k, ok := lockCall(p, list[j], "Unlock", "RUnlock"); ok && k == key {
				end = j
				break
			}
			if d, ok := list[j].(*ast.DeferStmt); ok && j == i+1 {
				if k, ok := deferUnlockKey(p, d); ok && k == key {
					deferred = true
				}
			}
		}
		start := i + 1
		if deferred {
			start = i + 2 // skip the defer statement itself
		}
		for j := start; j < end; j++ {
			out = append(out, r.blockingOps(p, list[j], key)...)
		}
		i = end // resume after the region; nested blocks are scanned separately
	}
	return out
}

// lockCall matches an expression statement `recv.M()` where M is one of
// names and recv's type is a sync (rw)mutex or something that embeds one.
// The returned key is the printed receiver expression.
func lockCall(p *Package, s ast.Stmt, names ...string) (string, bool) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	return lockCallExpr(p, es.X, names...)
}

func deferUnlockKey(p *Package, d *ast.DeferStmt) (string, bool) {
	return lockCallExpr(p, d.Call, "Unlock", "RUnlock")
}

func lockCallExpr(p *Package, e ast.Expr, names ...string) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
		}
	}
	if !match {
		return "", false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	return exprKey(p.Fset, sel.X), true
}

// exprKey renders an expression to a canonical string for matching the
// lock receiver between Lock and Unlock.
func exprKey(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e)
	return buf.String()
}

// isObsPackage matches the module's observability package; the suffix
// form keeps the rule working if the module path is ever re-rooted.
func isObsPackage(path string) bool {
	return path == "almanac/internal/obs" || strings.HasSuffix(path, "/internal/obs")
}

// blockingOps walks one statement (without descending into function
// literals) and reports channel operations and known blocking calls.
func (r *LockHeld) blockingOps(p *Package, s ast.Stmt, key string) []Finding {
	var out []Finding
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs on its own schedule
		case *ast.SendStmt:
			out = append(out, finding(p, n, r.ID(),
				fmt.Sprintf("channel send while holding %s", key),
				"move the send outside the critical section, or annotate with //almalint:allow lockheld <why this cannot deadlock>"))
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				out = append(out, finding(p, n, r.ID(),
					fmt.Sprintf("channel receive while holding %s", key),
					"move the receive outside the critical section, or annotate with //almalint:allow lockheld <why this cannot deadlock>"))
			}
		case *ast.SelectStmt:
			out = append(out, finding(p, n, r.ID(),
				fmt.Sprintf("select while holding %s", key),
				"move the select outside the critical section"))
			return false // the select finding covers its comm clauses
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					out = append(out, finding(p, n, r.ID(),
						fmt.Sprintf("range over channel while holding %s", key),
						"move the channel drain outside the critical section"))
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
					if fn.Pkg().Path() == "sync" && fn.Name() == "Wait" {
						out = append(out, finding(p, n, r.ID(),
							fmt.Sprintf("sync.WaitGroup.Wait while holding %s", key),
							"wait outside the critical section"))
					}
					if fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
						out = append(out, finding(p, n, r.ID(),
							fmt.Sprintf("time.Sleep while holding %s", key),
							"sleep outside the critical section"))
					}
					// Instrumentation must never run under a service
					// lock: obs calls are cheap but not free (atomics,
					// a wall-clock read on the timed path), and metrics
					// handlers that snapshot under the firmware lock
					// serialise against the data path. Read registries
					// after Unlock — they are lock-free by design.
					if isObsPackage(fn.Pkg().Path()) {
						out = append(out, finding(p, n, r.ID(),
							fmt.Sprintf("obs instrumentation call while holding %s", key),
							"record or snapshot outside the critical section; the obs registry is lock-free and needs no caller lock"))
					}
				}
			}
		}
		return true
	})
	return out
}
