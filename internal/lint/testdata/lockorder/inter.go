package lockorderbad

import "sync"

// Pair exercises the interprocedural half of the rule: every violation
// below spans at least two functions, so a lexical checker cannot see it.
type Pair struct {
	a sync.Mutex
	b sync.Mutex
}

// AB takes a then b — but b is acquired two calls away.
func (p *Pair) AB() {
	p.a.Lock()
	defer p.a.Unlock()
	p.lockB() // want lockorder
}

func (p *Pair) lockB() {
	p.b.Lock()
	p.b.Unlock()
}

// BA takes b then a through a helper: the opposite order. Together with
// AB this is the classic ABBA deadlock, assembled across four functions.
func (p *Pair) BA() {
	p.b.Lock()
	defer p.b.Unlock()
	p.lockA()
}

func (p *Pair) lockA() {
	p.a.Lock()
	p.a.Unlock()
}

// NotifyUnderLock blocks through a callee: the send lives in send(), the
// lock in the caller.
func (p *Pair) NotifyUnderLock(ch chan int) {
	p.a.Lock()
	p.send(ch) // want lockorder
	p.a.Unlock()
}

func (p *Pair) send(ch chan int) {
	ch <- 1
}

// Guard exercises locks passed as parameters (through the sync.Locker
// interface) and goroutine spawns.
type Guard struct {
	mu  sync.Mutex
	res sync.Mutex
}

// acquireVia locks whatever it is handed, then res: the first edge of the
// cycle exists only after the caller's argument is substituted in.
func acquireVia(l sync.Locker, g *Guard) {
	l.Lock()
	g.res.Lock()
	g.res.Unlock()
	l.Unlock()
}

// Front instantiates acquireVia's parameter with g.mu: mu → res.
func (g *Guard) Front() {
	acquireVia(&g.mu, g) // want lockorder
}

// SpawnWorkers launches workers under mu. The spawns themselves are fine
// (a goroutine does not inherit the caller's locks), but each worker
// takes res → mu, closing the cycle against Front.
func (g *Guard) SpawnWorkers(n int) {
	g.mu.Lock()
	for i := 0; i < n; i++ {
		go g.worker()
	}
	g.mu.Unlock()
}

func (g *Guard) worker() {
	g.res.Lock()
	defer g.res.Unlock()
	g.poke()
}

func (g *Guard) poke() {
	g.mu.Lock()
	g.mu.Unlock()
}
