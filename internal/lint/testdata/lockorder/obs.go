package lockorderbad

import (
	"sync"

	"almanac/internal/obs"
)

// B mirrors a protocol backend: a service lock guarding device state,
// plus the lock-free observability registry.
type B struct {
	mu  sync.Mutex
	reg *obs.Registry
}

// SnapshotUnderLock reads the registry inside the critical section. The
// registry needs no caller lock, so this only serialises metric readers
// against the data path.
func (b *B) SnapshotUnderLock() map[string]obs.OpStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reg.Ops() // want lockorder
}

// RecordUnderLock instruments from inside the critical section.
func (b *B) RecordUnderLock(ns int64) {
	b.mu.Lock()
	b.reg.Observe(obs.HostWrite, ns, 0, true) // want lockorder
	b.mu.Unlock()
}

// SnapshotAfterUnlock is the approved shape: capture the registry
// pointer under the lock, read it after release.
func (b *B) SnapshotAfterUnlock() map[string]obs.OpStats {
	b.mu.Lock()
	reg := b.reg
	b.mu.Unlock()
	return reg.Ops()
}
