package lockorderbad

import "sync"

// connWriter mirrors the protocol server's coalescing writer goroutine:
// producers queue frames under a mutex and hand the writer a single wake
// token through a cap-1 channel. The token send must happen outside the
// critical section — the writer's drain loop takes the same mutex, so a
// send under it deadlocks the connection the moment the token channel
// backs up.
type connWriter struct {
	mu       sync.Mutex
	q        [][]byte
	signaled bool
	wake     chan struct{}
}

// EnqueueWakeUnderLock is the broken shape: the wake token is sent while
// the queue mutex is held.
func (w *connWriter) EnqueueWakeUnderLock(frame []byte) {
	w.mu.Lock()
	w.q = append(w.q, frame)
	if !w.signaled {
		w.signaled = true
		w.wake <- struct{}{} // want lockorder
	}
	w.mu.Unlock()
}

// EnqueueWakeOutsideLock is the fixed shape the data path uses: record
// the false→true signal edge under the mutex, send the token after
// unlocking. The edge guard keeps the cap-1 send from ever blocking.
func (w *connWriter) EnqueueWakeOutsideLock(frame []byte) {
	w.mu.Lock()
	w.q = append(w.q, frame)
	wakeup := !w.signaled
	w.signaled = true
	w.mu.Unlock()
	if wakeup {
		w.wake <- struct{}{}
	}
}
