// Package lockorderbad is a golden-corpus package for the lockorder rule.
package lockorderbad

import "sync"

// Q is a toy worker queue guarded by a mutex.
type Q struct {
	mu sync.Mutex
	wg sync.WaitGroup
	ch chan int
}

// SendUnderLock sends on a channel inside the critical section: if the
// consumer needs mu, this deadlocks when ch is full.
func (q *Q) SendUnderLock(v int) {
	q.mu.Lock()
	q.ch <- v // want lockorder
	q.mu.Unlock()
}

// RecvUnderDeferredLock blocks on a receive while the deferred unlock
// keeps mu held for the whole function.
func (q *Q) RecvUnderDeferredLock() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return <-q.ch // want lockorder
}

// WaitUnderLock parks on a WaitGroup inside the critical section.
func (q *Q) WaitUnderLock() {
	q.mu.Lock()
	q.wg.Wait() // want lockorder
	q.mu.Unlock()
}

// SelectUnderLock multiplexes channels inside the critical section.
func (q *Q) SelectUnderLock() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	select { // want lockorder
	case v := <-q.ch:
		return v
	default:
		return 0
	}
}

// SendOutsideLock is the fixed shape: snapshot under the lock, send after.
func (q *Q) SendOutsideLock(v int) {
	q.mu.Lock()
	q.mu.Unlock()
	q.ch <- v
}

// GoroutineIsFine launches the blocking work on another goroutine, which
// does not hold the lock.
func (q *Q) GoroutineIsFine(v int) {
	q.mu.Lock()
	go func() { q.ch <- v }()
	q.mu.Unlock()
}
