// Package wallclockbad is a golden-corpus package for the wallclock rule.
// Corpus packages under internal/lint/testdata are in scope for every rule.
package wallclockbad

import "time"

// Elapsed uses wall time inside simulated code: forbidden.
func Elapsed() time.Duration {
	start := time.Now() // want wallclock
	Spin()
	return time.Since(start) // want wallclock
}

// Spin sleeps on the wall clock: forbidden.
func Spin() {
	time.Sleep(time.Millisecond)   // want wallclock
	<-time.After(time.Millisecond) // want wallclock
}

// Allowed demonstrates the escape hatch: the annotation suppresses the
// finding on the next line.
func Allowed() time.Time {
	//almalint:allow wallclock reason: corpus demonstration of the escape hatch
	return time.Now()
}

// Pure uses only time.Duration arithmetic, which is fine.
func Pure(d time.Duration) time.Duration { return d * 2 }
