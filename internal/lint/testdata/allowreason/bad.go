// Package allowreasonbad is a golden-corpus package for the allowreason
// rule: every suppression must name rule IDs and justify itself.
package allowreasonbad

import "time"

// BareAllow suppresses a finding without saying why.
func BareAllow() int64 {
	//almalint:allow wallclock // want allowreason
	return time.Now().UnixNano()
}

// NoRuleIDs has a reason but forgot which rule it is silencing.
func NoRuleIDs() int64 {
	//almalint:allow reason: measuring host time on purpose // want allowreason
	return time.Now().UnixNano() // want wallclock
}

// Justified is the approved form; nothing to report.
func Justified() int64 {
	//almalint:allow wallclock reason: corpus fixture exercising the approved suppression form
	return time.Now().UnixNano()
}
