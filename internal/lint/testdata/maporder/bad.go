// Package maporderbad is a golden-corpus package for the maporder rule.
package maporderbad

import "sort"

// Keys returns map keys in random iteration order: a replay-determinism
// hazard when the result is serialized or compared across runs.
func Keys(m map[int]string) []int {
	var out []int
	for k := range m { // want maporder
		out = append(out, k)
	}
	return out
}

// SortedKeys sorts after the loop: deterministic, allowed.
func SortedKeys(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// NamedResult appends into a named result without sorting: flagged.
func NamedResult(m map[string]int) (vals []int) {
	for _, v := range m { // want maporder
		vals = append(vals, v)
	}
	return
}

// LocalUse aggregates without exposing ordering: allowed.
func LocalUse(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
