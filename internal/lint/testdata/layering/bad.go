// Package layeringbad is a golden-corpus package for the layering rule: it
// pokes raw flash operations and core mutation entry points from outside
// the allowed layer sets.
package layeringbad

import (
	"almanac/internal/core"
	"almanac/internal/flash"
	"almanac/internal/service"
	"almanac/internal/vclock"
)

// RawProgram bypasses the FTL and programs flash directly: forbidden
// outside internal/ftl and internal/core.
func RawProgram(arr *flash.Array, at vclock.Time) error {
	oob := flash.OOB{Kind: flash.KindData}
	if _, _, err := arr.Program(0, nil, oob, at); err != nil { // want layering
		return err
	}
	_, err := arr.Erase(0, at) // want layering
	return err
}

// DirectWrite drives a member device directly instead of going through the
// array or the ftl.Device interface: forbidden for internal packages
// outside the declared layer set.
func DirectWrite(dev *core.TimeSSD, at vclock.Time) error {
	_, err := dev.Write(0, []byte("x"), at) // want layering
	if err != nil {
		return err
	}
	_, err = dev.Trim(0, at) // want layering
	return err
}

// DirectRetention pushes a retention bound straight at a member device:
// only the array's fan-out may do that.
func DirectRetention(dev *core.TimeSSD) {
	dev.SetMinRetention(vclock.Hour) // want layering
}

// TenantBypass mutates a volume and its lifecycle from outside the wire
// protocol / harness / bench layer set.
func TenantBypass(svc *service.Service, v *service.Volume, at vclock.Time) error {
	if _, err := v.Write(0, []byte("x"), at); err != nil { // want layering
		return err
	}
	if _, err := v.RollBack(at.Add(-vclock.Minute), at); err != nil { // want layering
		return err
	}
	v.Batch([]service.BatchOp{{Kind: service.KindTrim, LPA: 0, At: at}}) // want layering
	if _, err := svc.Create("rogue", "", 1, 0, at); err != nil {         // want layering
		return err
	}
	_, err := svc.Delete("rogue", "", at) // want layering
	return err
}

// ReadsAreFine reads through the public query surface, which any layer may
// use.
func ReadsAreFine(arr *flash.Array, dev *core.TimeSSD, v *service.Volume, at vclock.Time) {
	_, _, _ = arr.PeekPage(0)
	_, _, _ = dev.Read(0, at)
	_, _, _ = v.Read(0, at)
	_ = v.WindowStart(at)
}
