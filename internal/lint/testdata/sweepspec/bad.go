// Package sweepspecbad is a golden-corpus package for the sweepspec
// rule: design-space specs must come from sweep.Parse outside
// internal/sweep, internal/harness and test files.
package sweepspecbad

import "almanac/internal/sweep"

// AdHocSpec conjures a sweep specification from literals: forbidden
// here — the spec would never round-trip through the artifact text.
func AdHocSpec() *sweep.Spec {
	ax := sweep.Axis{ // want sweepspec
		Knob:   "op",
		Values: []string{"0.1", "0.2"},
	}
	s := sweep.Spec{ // want sweepspec
		Name:     "rogue",
		Sampling: "grid",
	}
	s.Axes = append(s.Axes, ax)
	return &s
}

// Parsed is the blessed path: specs come from text, engines may be
// built anywhere.
func Parsed() (*sweep.Spec, error) {
	return sweep.Parse("sweep ok\naxis op 0.1 0.2\n")
}

// Allowed demonstrates the escape hatch.
func Allowed() sweep.Axis {
	//almalint:allow sweepspec reason: corpus demonstration of the escape hatch
	return sweep.Axis{Knob: "th", Values: []string{"0.1"}}
}
