// Package seededrandbad is a golden-corpus package for the seededrand rule.
package seededrandbad

import "math/rand"

// GlobalDice consults the process-global PRNG: not reproducible.
func GlobalDice() int {
	return rand.Intn(6) // want seededrand
}

// GlobalFill uses more global helpers: all forbidden.
func GlobalFill(b []byte) {
	rand.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] }) // want seededrand
	_ = rand.Float64()                                               // want seededrand
}

// SeededDice threads an explicit source: the required idiom.
func SeededDice(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}
