// Package atomicmixbad is a golden-corpus package for the atomicmix rule:
// a field accessed via sync/atomic anywhere must be atomic everywhere.
package atomicmixbad

import "sync/atomic"

// Counter mixes disciplines: Add goes through sync/atomic, Snapshot
// reads the same word plainly from another function — a data race the
// race detector only catches if both paths run concurrently in a test.
type Counter struct {
	hits int64
	cold int64
}

func (c *Counter) Add() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *Counter) Snapshot() int64 {
	return c.hits // want atomicmix
}

func (c *Counter) Reset() {
	c.hits = 0 // want atomicmix
}

// ColdPath never uses sync/atomic on cold, so plain access is fine.
func (c *Counter) ColdPath() int64 {
	c.cold++
	return c.cold
}

// Typed uses atomic.Int64, which cannot be accessed plainly at all — the
// approved fix for Counter.
type Typed struct {
	hits atomic.Int64
}

func (t *Typed) Add() int64 {
	return t.hits.Add(1)
}
