// Package faultplanbad is a golden-corpus package for the faultplan rule:
// fault schedules must come from fault.Parse outside internal/fault,
// internal/harness and test files.
package faultplanbad

import "almanac/internal/fault"

// AdHocPlan conjures a fault schedule from literals: forbidden here.
func AdHocPlan() *fault.Plan {
	r := fault.Rule{ // want faultplan
		Effect:  fault.ProgramFail,
		Channel: fault.Any,
		Block:   fault.Any,
		Page:    fault.Any,
	}
	p := fault.Plan{Seed: 1} // want faultplan
	p.Rules = append(p.Rules, r)
	return &p
}

// Parsed is the blessed path: plans come from text, injectors may be
// built anywhere.
func Parsed() (*fault.Injector, error) {
	p, err := fault.Parse("seed 1\nprogram fail\n")
	if err != nil {
		return nil, err
	}
	return fault.NewInjector(p)
}

// Allowed demonstrates the escape hatch.
func Allowed() fault.Rule {
	//almalint:allow faultplan reason: corpus demonstration of the escape hatch
	return fault.Rule{Effect: fault.EraseFail, Channel: fault.Any, Block: fault.Any, Page: fault.Any}
}
