// Package walltaintbad is a golden-corpus package for the walltaint rule:
// wall-clock and host-randomness values must never become virtual time.
package walltaintbad

import (
	"math/rand"
	"time"

	"almanac/internal/vclock"
)

// hostNanos hides the wall-clock read behind a helper: the taint crosses
// a function boundary before it is converted.
func hostNanos() int64 {
	return time.Now().UnixNano() // want wallclock
}

// DirectConversion converts a helper-laundered wall-clock value.
func DirectConversion() vclock.Time {
	return vclock.Time(hostNanos()) // want walltaint
}

// Meter carries a wall-derived value through a struct field: written in
// one method, converted in another.
type Meter struct {
	stampNS int64
}

func (m *Meter) Stamp() {
	m.stampNS = hostNanos()
}

func (m *Meter) Virtual() vclock.Time {
	return vclock.Time(m.stampNS) // want walltaint
}

// GlobalRand feeds the unseeded global source into virtual time.
func GlobalRand() vclock.Time {
	return vclock.Time(rand.Int63()) // want walltaint seededrand
}

// SeededIsFine is the sanctioned deterministic pattern: an explicitly
// seeded generator is not host randomness.
func SeededIsFine(seed int64) vclock.Time {
	r := rand.New(rand.NewSource(seed))
	return vclock.Time(r.Int63())
}

// TupleSiblingIsFine returns a virtual value next to a wall-clock one;
// positional tracking must not smear the duration's taint onto it.
func timed(at vclock.Time) (vclock.Time, time.Duration) {
	start := time.Now()                                       // want wallclock
	return at + vclock.Time(vclock.Second), time.Since(start) // want wallclock
}

func TupleSiblingIsFine(at vclock.Time) vclock.Time {
	v, _ := timed(at)
	return vclock.Time(int64(v))
}
