package walltaintbad

import (
	"time"

	"almanac/internal/obs"
)

// emit is the instrumentation helper: the sink (Observe's virtual-time
// argument) lives here, two frames away from the wall-clock read.
func emit(reg *obs.Registry, virtNS int64) {
	reg.Observe(obs.HostWrite, virtNS, 0, true) // want walltaint
}

// ObserveWall measures host elapsed time and reports it as virtual.
func ObserveWall(reg *obs.Registry) {
	start := time.Now()                        // want wallclock
	emit(reg, time.Since(start).Nanoseconds()) // want wallclock
}
