// Package checkederrbad is a golden-corpus package for the checkederr rule.
package checkederrbad

import (
	"fmt"
	"os"
	"strings"
)

// Cleanup drops errors on the floor: forbidden as bare statements.
func Cleanup(path string) {
	os.Remove(path)     // want checkederr
	os.Setenv("K", "V") // want checkederr
	fail()              // want checkederr
}

func fail() error { return fmt.Errorf("boom") }

// Explicit makes every discard visible: allowed.
func Explicit(path string) {
	_ = os.Remove(path)
	defer os.Remove(path)
	var sb strings.Builder
	sb.WriteString("in-memory writers never fail") //nolint-style exclusion is built in
	fmt.Println(sb.String())
}
