// Package lint implements almalint, a domain-aware static analyzer for the
// Almanac codebase. It machine-checks project conventions the Go compiler
// cannot see: virtual time must flow through internal/vclock, randomness
// must be explicitly seeded, the firmware layer boundary around raw flash
// operations (DESIGN.md "Static analysis & invariants"), lock discipline in
// the concurrent array/almaproto code, dropped errors, and map-iteration
// ordering hazards that would break replay determinism.
//
// The analyzer is built entirely on the standard library (go/parser,
// go/ast, go/types); see load.go for how packages are resolved without
// golang.org/x/tools.
//
// A finding can be suppressed with an allow comment on the offending line
// or the line directly above it:
//
//	//almalint:allow <rule-id>[, <rule-id>...] reason: <justification>
//
// The reason: suffix is mandatory (enforced by the allowreason rule, whose
// own findings can never be suppressed). Suppressions are meant for the
// documented exceptions only (e.g. wall-time measurement in the harness);
// genuine violations should be fixed.
//
// Beyond the per-package classic rules, almalint has an interprocedural
// layer: package flow builds whole-module function summaries, links them
// into a call/lock/taint graph, and the deep rules (lockorder, walltaint,
// atomicmix) query it. See deep.go and internal/lint/flow.
package lint

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	Rule string `json:"rule"`
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"`
	Hint string `json:"hint,omitempty"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Msg, f.Rule)
	if f.Hint != "" {
		s += "\n\thint: " + f.Hint
	}
	return s
}

// Rule is one self-contained check run over a type-checked package.
type Rule interface {
	// ID is the rule identifier used in reports and allow comments.
	ID() string
	// Doc is a one-line description of what the rule enforces.
	Doc() string
	// Check reports violations found in pkg.
	Check(pkg *Package) []Finding
}

// DefaultRules returns the classic (single-package) project rules in
// their production configuration. The interprocedural rules live in
// DefaultDeepRules; lock discipline moved there (lockorder subsumed the
// old lexical lockheld rule).
func DefaultRules() []Rule {
	return []Rule{
		NewWallclock(),
		NewSeededRand(),
		NewLayering(),
		NewCheckedErr(),
		NewMapOrder(),
		NewFaultPlan(),
		NewSweepSpec(),
		NewAllowReason(),
	}
}

// Run applies rules to every package, drops findings suppressed by allow
// comments, and returns the rest sorted by position.
func Run(pkgs []*Package, rules []Rule) []Finding {
	var out []Finding
	for _, p := range pkgs {
		allows := collectAllows(p)
		for _, r := range rules {
			for _, f := range r.Check(p) {
				if allows.allowed(f.Rule, f.File, f.Line) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// allowSet records, per file and line, which rule IDs are suppressed.
type allowSet map[string]map[int]map[string]bool

// AllowPrefix introduces a suppression comment: //almalint:allow <rules...>
const AllowPrefix = "almalint:allow"

// collectAllows scans every comment in the package for allow directives.
func collectAllows(p *Package) allowSet {
	set := allowSet{}
	collectAllowsInto(set, p)
	return set
}

// collectAllowsInto merges p's allow directives into set, so deep rules
// can filter against the whole module's suppressions at once.
func collectAllowsInto(set allowSet, p *Package) {
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, AllowPrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				rules := lines[pos.Line]
				if rules == nil {
					rules = map[string]bool{}
					lines[pos.Line] = rules
				}
				// Rule IDs may be comma- or space-separated; anything after
				// the ID list is free-form reason text, which starts at the
				// first token that is not a known separator-joined ID — for
				// simplicity every leading token is treated as an ID until
				// one contains characters outside [a-z,].
				for _, fld := range fields {
					id := strings.Trim(fld, ",")
					if !isRuleToken(id) {
						break
					}
					rules[id] = true
				}
			}
		}
	}
}

func isRuleToken(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < 'a' || r > 'z' {
			return false
		}
	}
	return true
}

// allowed reports whether rule is suppressed at file:line — by a directive
// on the line itself or on the line directly above. allowreason findings
// are never suppressible: they flag the directives themselves.
func (s allowSet) allowed(rule, file string, line int) bool {
	if rule == "allowreason" {
		return false
	}
	lines := s[file]
	if lines == nil {
		return false
	}
	for _, l := range []int{line, line - 1} {
		if lines[l][rule] {
			return true
		}
	}
	return false
}

// posOf converts a node position into Finding fields.
func posOf(p *Package, n ast.Node) (string, int, int) {
	pos := p.Fset.Position(n.Pos())
	return pos.Filename, pos.Line, pos.Column
}

// finding builds a Finding anchored at node n.
func finding(p *Package, n ast.Node, rule, msg, hint string) Finding {
	file, line, col := posOf(p, n)
	return Finding{Rule: rule, File: file, Line: line, Col: col, Msg: msg, Hint: hint}
}

// inTestdata reports whether the package is part of the analyzer's own
// golden corpus. Corpus packages are lint targets by definition, so
// package-scoped rules treat them as in scope regardless of their name.
func inTestdata(importPath string) bool {
	return strings.Contains(importPath, "internal/lint/testdata")
}

// lastSegment returns the final element of an import path.
func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
