package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// MapOrder flags a replay-determinism hazard: ranging over a map while
// appending to a slice that the enclosing function returns (or names as a
// result), without sorting the slice afterwards. Go randomizes map
// iteration order, so such a slice differs run to run — poison for
// bit-reproducible harness output, image serialization, and the array
// replay path. Sorting the slice (sort.* or slices.Sort*) after the loop,
// or sorting the keys before ranging, clears the finding.
type MapOrder struct{}

// NewMapOrder returns the rule.
func NewMapOrder() *MapOrder { return &MapOrder{} }

func (r *MapOrder) ID() string { return "maporder" }

func (r *MapOrder) Doc() string {
	return "map range that appends to a returned slice must sort the slice (map iteration order is random)"
}

func (r *MapOrder) Check(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, r.checkFunc(p, fd)...)
		}
	}
	return out
}

func (r *MapOrder) checkFunc(p *Package, fd *ast.FuncDecl) []Finding {
	// Objects named as results: appends into these always escape.
	results := map[types.Object]bool{}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					results[obj] = true
				}
			}
		}
	}
	// Objects that appear inside any return statement.
	returned := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil {
						returned[obj] = true
					}
				}
				return true
			})
		}
		return true
	})

	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, obj := range appendTargets(p, rng.Body) {
			if !results[obj] && !returned[obj] {
				continue
			}
			if sortedAfter(p, fd.Body, rng, obj) {
				continue
			}
			out = append(out, finding(p, rng, r.ID(),
				fmt.Sprintf("map iteration appends to %s, which the function returns, without a subsequent sort", obj.Name()),
				"sort the slice after the loop (sort.Slice / slices.Sort*), or iterate over sorted keys"))
		}
		return true
	})
	return out
}

// appendTargets finds objects x in statements `x = append(x, ...)` inside
// body, where x is declared outside body.
func appendTargets(p *Package, body *ast.BlockStmt) []types.Object {
	var objs []types.Object
	seen := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "append" {
				continue
			}
			if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			lhs, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.Info.Uses[lhs]
			if obj == nil {
				obj = p.Info.Defs[lhs]
			}
			if obj == nil || seen[obj] {
				continue
			}
			// Declared inside the loop body → rebuilt per iteration, the
			// cross-iteration ordering hazard does not apply to it here.
			if body.Pos() <= obj.Pos() && obj.Pos() <= body.End() {
				continue
			}
			seen[obj] = true
			objs = append(objs, obj)
		}
		return true
	})
	return objs
}

// sortedAfter reports whether, lexically after the range statement, the
// function calls a sort.* or slices.* function with obj among its
// arguments (or obj.Sort()-style method).
func sortedAfter(p *Package, body *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			mentions := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && p.Info.Uses[id] == obj {
					mentions = true
				}
				return true
			})
			if mentions {
				found = true
			}
		}
		return true
	})
	return found
}
