package lint

import (
	"sort"

	"almanac/internal/lint/flow"
)

// DeepRule is a whole-program rule: instead of inspecting one package's
// AST it queries the linked flow.Program — the call graph, lock graph,
// and taint facts computed over every package at once. Deep findings are
// filtered through the same //almalint:allow mechanism as classic rules.
type DeepRule interface {
	// ID is the rule identifier used in reports and allow comments.
	ID() string
	// Doc is a one-line description of what the rule enforces.
	Doc() string
	// CheckProgram reports violations found in the linked program.
	CheckProgram(prog *flow.Program) []Finding
}

// DefaultDeepRules returns the three interprocedural rules in production
// configuration.
func DefaultDeepRules() []DeepRule {
	return []DeepRule{NewLockOrder(), NewWallTaint(), NewAtomicMix()}
}

// ExtractPackage summarizes one type-checked package for the flow engine.
// The summaries are plain data — cmd/almalint caches them per package.
func ExtractPackage(p *Package, modulePath string) []flow.FuncSummary {
	return flow.Extract(&flow.Source{
		ImportPath: p.ImportPath,
		ModulePath: modulePath,
		Fset:       p.Fset,
		Files:      p.Files,
		Pkg:        p.Pkg,
		Info:       p.Info,
	})
}

// RunDeep links summaries into a program, applies the deep rules, and
// drops findings suppressed by the given allow records.
func RunDeep(sums []flow.FuncSummary, allows allowSet, rules []DeepRule) []Finding {
	prog := flow.Link(sums)
	var out []Finding
	for _, r := range rules {
		for _, f := range r.CheckProgram(prog) {
			if allows.allowed(f.Rule, f.File, f.Line) {
				continue
			}
			out = append(out, f)
		}
	}
	sortFindings(out)
	return out
}

// RunAll is the uncached full analysis: classic rules per package, then
// extraction, linking, and the deep rules over the whole set.
func RunAll(pkgs []*Package, modulePath string, rules []Rule, deep []DeepRule) []Finding {
	out := Run(pkgs, rules)
	if len(deep) > 0 {
		var sums []flow.FuncSummary
		allows := allowSet{}
		for _, p := range pkgs {
			sums = append(sums, ExtractPackage(p, modulePath)...)
			collectAllowsInto(allows, p)
		}
		out = append(out, RunDeep(sums, allows, deep)...)
	}
	sortFindings(out)
	return out
}

func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Rule < out[j].Rule
	})
}
