package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// FaultPlan forbids ad-hoc construction of fault.Plan and fault.Rule
// composite literals outside the layers that legitimately author fault
// schedules: internal/fault itself (the parser) and internal/harness (the
// crash sweep). Everywhere else a fault schedule must come through
// fault.Parse — the plan text is then serialisable, replayable from CI
// artifacts, and validated in one place. fault.NewInjector is blessed
// everywhere: consuming a plan is fine, conjuring one is not.
//
// Test files are exempt by construction (the loader analyzes only
// non-test files), and cmd/ sits outside the internal scope — host
// tooling reads plan files rather than building literals anyway.
type FaultPlan struct {
	// Module is the module path prefix; empty selects "almanac".
	Module string
}

// NewFaultPlan returns the rule in production configuration.
func NewFaultPlan() *FaultPlan { return &FaultPlan{} }

func (r *FaultPlan) ID() string { return "faultplan" }

func (r *FaultPlan) Doc() string {
	return "fault.Plan/fault.Rule literals only in internal/fault, internal/harness and tests; build plans with fault.Parse"
}

func (r *FaultPlan) Check(p *Package) []Finding {
	mod := r.Module
	if mod == "" {
		mod = "almanac"
	}
	switch p.ImportPath {
	case mod + "/internal/fault", mod + "/internal/harness":
		return nil
	}
	if !strings.HasPrefix(p.ImportPath, mod+"/internal/") {
		return nil
	}
	faultPath := mod + "/internal/fault"
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[ast.Expr(cl)]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != faultPath {
				return true
			}
			name := named.Obj().Name()
			if name != "Plan" && name != "Rule" {
				return true
			}
			out = append(out, finding(p, cl, r.ID(),
				fmt.Sprintf("fault.%s literal constructed in %s", name, p.ImportPath),
				"build fault schedules with fault.Parse so they are serialisable and replayable; literals belong to internal/fault, internal/harness and tests"))
			return true
		})
	}
	return out
}
