package lint

import (
	"encoding/json"
	"path/filepath"
	"sort"
	"strings"
)

// Minimal SARIF 2.1.0 model — just the subset GitHub code scanning needs
// to annotate findings inline on pull requests.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// ToSARIF renders findings as a SARIF 2.1.0 log. ruleDocs maps rule IDs
// to their one-line docs; root makes file paths checkout-relative so CI
// annotation lands on the right files.
func ToSARIF(findings []Finding, ruleDocs map[string]string, root string) ([]byte, error) {
	var ruleIDs []string
	seen := map[string]bool{}
	for id := range ruleDocs {
		if !seen[id] {
			seen[id] = true
			ruleIDs = append(ruleIDs, id)
		}
	}
	sort.Strings(ruleIDs)

	var rules []sarifRule
	for _, id := range ruleIDs {
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: ruleDocs[id]}})
	}

	results := []sarifResult{}
	for _, f := range findings {
		uri := f.File
		if root != "" {
			if rel, err := filepath.Rel(root, f.File); err == nil && !strings.HasPrefix(rel, "..") {
				uri = filepath.ToSlash(rel)
			}
		}
		text := f.Msg
		if f.Hint != "" {
			text += " (" + f.Hint + ")"
		}
		results = append(results, sarifResult{
			RuleID:  f.Rule,
			Level:   "error",
			Message: sarifMessage{Text: text},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: uri},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "almalint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(&log, "", "  ")
}
