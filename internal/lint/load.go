package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package of the module under analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File // non-test files of the default (no almanacdebug) build
	Pkg        *types.Package
	Info       *types.Info
}

// Loader resolves and type-checks the module's packages using only the
// standard library. Imports inside the module are parsed and checked from
// source recursively; everything else (the standard library) is delegated
// to go/importer's "source" compiler, which reads GOROOT/src. This is what
// lets almalint run with a go.mod that has zero dependencies.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string
	// Tags are the build tags considered active when filtering files.
	// almanacdebug is intentionally absent: almalint analyzes the default
	// build, the one whose determinism the rules protect.
	Tags map[string]bool

	std     types.ImporterFrom
	pkgs    map[string]*Package // memoized by import path
	loading map[string]bool     // cycle detection
}

// NewLoader builds a loader rooted at the module directory (the directory
// containing go.mod).
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not support ImportFrom")
	}
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  abs,
		Tags:       map[string]bool{},
		std:        std,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleDir)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module import path back to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.ModulePath {
		return l.ModuleDir
	}
	rel := strings.TrimPrefix(path, l.ModulePath+"/")
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
}

// Load parses and type-checks the package in dir (absolute or relative to
// the module root). Results are memoized by import path.
func (l *Loader) Load(dir string) (*Package, error) {
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.ModuleDir, dir)
	}
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path)
}

// PackageDirs walks the module and returns every directory containing
// buildable Go files, skipping testdata, vendor, and hidden directories
// (the same set the go tool ignores).
func (l *Loader) PackageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleDir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasBuildableGo(p) {
			dirs = append(dirs, p)
		}
		return nil
	})
	return dirs, err
}

// LoadAll loads every buildable package of the module. Packages are
// returned sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	dirs, err := l.PackageDirs()
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

func hasBuildableGo(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
	}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses the non-test Go files of dir that survive build-tag
// filtering, in deterministic (sorted) order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.Fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !l.fileIncluded(f) {
			continue
		}
		files = append(files, f)
	}
	return files, nil
}

// fileIncluded evaluates a file's //go:build constraint (if any) against the
// loader's active tag set.
func (l *Loader) fileIncluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		// Constraints must precede the package clause.
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			return expr.Eval(func(tag string) bool {
				// Match the host platform and any modern go version tag so
				// platform-style constraints behave as in a normal build.
				return l.Tags[tag] || tag == runtime.GOOS || tag == runtime.GOARCH ||
					(tag == "unix" && runtime.GOOS != "windows") ||
					strings.HasPrefix(tag, "go1.")
			})
		}
	}
	return true
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// loaded from source within the module; everything else falls through to
// the stdlib source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
