package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// newTestLoader builds one loader rooted at the module, shared across the
// whole test binary: package type-checking (including the stdlib source
// closure) is memoized on the loader.
var testLoader *Loader

func loaderFor(t *testing.T) *Loader {
	t.Helper()
	if testLoader == nil {
		root, err := filepath.Abs(filepath.Join("..", ".."))
		if err != nil {
			t.Fatal(err)
		}
		l, err := NewLoader(root)
		if err != nil {
			t.Fatal(err)
		}
		testLoader = l
	}
	return testLoader
}

// wantMarkers scans a corpus package directory for "// want <rule>" line
// markers and returns the expected rule@line set per file.
func wantMarkers(t *testing.T, dir string) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		line := 0
		for sc.Scan() {
			line++
			text := sc.Text()
			idx := strings.Index(text, "// want ")
			if idx < 0 {
				continue
			}
			for _, rule := range strings.Fields(text[idx+len("// want "):]) {
				want[fmt.Sprintf("%s:%d:%s", path, line, rule)] = true
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		_ = f.Close()
	}
	return want
}

// TestGoldenCorpus runs the full rule set — classic and deep — over every
// testdata package and compares findings against the // want markers.
func TestGoldenCorpus(t *testing.T) {
	l := loaderFor(t)
	corpus := filepath.Join(l.ModuleDir, "internal", "lint", "testdata")
	entries, err := os.ReadDir(corpus)
	if err != nil {
		t.Fatal(err)
	}
	rulesSeen := map[string]bool{}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(corpus, e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			pkg, err := l.Load(dir)
			if err != nil {
				t.Fatalf("loading corpus package: %v", err)
			}
			findings := RunAll([]*Package{pkg}, l.ModulePath, DefaultRules(), DefaultDeepRules())
			if len(findings) == 0 {
				t.Fatalf("corpus package %s produced no findings", e.Name())
			}
			got := map[string]bool{}
			for _, f := range findings {
				got[fmt.Sprintf("%s:%d:%s", f.File, f.Line, f.Rule)] = true
				rulesSeen[f.Rule] = true
			}
			want := wantMarkers(t, dir)
			for key := range want {
				if !got[key] {
					t.Errorf("missing expected finding %s", key)
				}
			}
			for key := range got {
				if !want[key] {
					t.Errorf("unexpected finding %s", key)
				}
			}
		})
	}
	var all []string
	for _, r := range DefaultRules() {
		if !rulesSeen[r.ID()] {
			all = append(all, r.ID())
		}
	}
	for _, r := range DefaultDeepRules() {
		if !rulesSeen[r.ID()] {
			all = append(all, r.ID())
		}
	}
	if len(all) > 0 {
		sort.Strings(all)
		t.Errorf("rules not exercised by the corpus: %s", strings.Join(all, ", "))
	}
}

// TestRepoIsClean is the self-check: the full rule set — classic and
// deep — over the whole module must report nothing. Every legitimate
// exception carries its reasoned allow annotation, and everything else
// has been fixed.
func TestRepoIsClean(t *testing.T) {
	l := loaderFor(t)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	findings := RunAll(pkgs, l.ModulePath, DefaultRules(), DefaultDeepRules())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestAnalyzeCacheWarm pins the summary cache contract: a second Analyze
// over an unchanged tree hits the cache for every package and reproduces
// the cold run's findings exactly.
func TestAnalyzeCacheWarm(t *testing.T) {
	l := loaderFor(t)
	cacheDir := t.TempDir()
	cold, err := Analyze(l.ModuleDir, cacheDir, DefaultRules(), DefaultDeepRules())
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.CacheMisses != cold.Stats.Packages {
		t.Errorf("cold run: %d misses for %d packages", cold.Stats.CacheMisses, cold.Stats.Packages)
	}
	warm, err := Analyze(l.ModuleDir, cacheDir, DefaultRules(), DefaultDeepRules())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheHits != warm.Stats.Packages || warm.Stats.CacheMisses != 0 {
		t.Errorf("warm run: %d/%d hits, want all", warm.Stats.CacheHits, warm.Stats.Packages)
	}
	if len(warm.Findings) != len(cold.Findings) {
		t.Fatalf("warm run found %d findings, cold %d", len(warm.Findings), len(cold.Findings))
	}
	for i := range warm.Findings {
		if warm.Findings[i] != cold.Findings[i] {
			t.Errorf("finding %d differs: cold %v, warm %v", i, cold.Findings[i], warm.Findings[i])
		}
	}
	if warm.Program == nil || len(warm.Program.FuncKeys()) == 0 {
		t.Error("warm run lost the linked program")
	}
}

// TestAllowComment pins the suppression mechanics: same line and
// line-above both work, and only for the named rule.
func TestAllowComment(t *testing.T) {
	set := allowSet{
		"f.go": {
			10: {"wallclock": true},
		},
	}
	if !set.allowed("wallclock", "f.go", 10) {
		t.Error("same-line allow not honored")
	}
	if !set.allowed("wallclock", "f.go", 11) {
		t.Error("line-above allow not honored")
	}
	if set.allowed("seededrand", "f.go", 10) {
		t.Error("allow leaked to a different rule")
	}
	if set.allowed("wallclock", "f.go", 12) {
		t.Error("allow leaked two lines down")
	}
}
