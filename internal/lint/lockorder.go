package lint

import (
	"fmt"
	"strings"

	"almanac/internal/lint/flow"
)

// LockOrder is the interprocedural lock-discipline rule, subsuming the
// old lexical lockheld check. It derives the whole-module lock-acquisition
// graph — including acquisitions reached through calls, locks passed as
// parameters or through interfaces, and goroutine spawns — and reports:
//
//   - lock-order cycles (two locks taken in opposite orders on different
//     paths: the classic ABBA deadlock), and
//   - blocking operations (channel send/receive/select, WaitGroup.Wait,
//     time.Sleep) reachable while a lock is held, whether the block is in
//     the locked function itself or any callee, plus obs instrumentation
//     calls made directly under a lock.
//
// Scope is the lock-heavy concurrent packages (array, almaproto, service)
// and the rule's own corpus; summaries from the rest of the module still
// feed the graph, so a violation only visible across package boundaries
// is anchored at the in-scope site that triggers it. That scope includes
// the connection writer goroutines of the v4 data path (almaproto's
// connWriter and the client writeLoop), whose wake-token protocol exists
// precisely to keep channel sends outside the queue mutex — the corpus
// writer.go case pins the broken shape.
type LockOrder struct {
	// Packages is the set of in-scope package base names. Nil selects the
	// production set.
	Packages map[string]bool
}

var lockOrderPackages = map[string]bool{"array": true, "almaproto": true, "service": true}

// NewLockOrder returns the rule in production configuration.
func NewLockOrder() *LockOrder { return &LockOrder{} }

func (r *LockOrder) ID() string { return "lockorder" }

func (r *LockOrder) Doc() string {
	return "whole-program lock discipline: no lock-order cycles, no blocking operations reachable while a mutex is held"
}

func (r *LockOrder) inScope(importPath string) bool {
	if inTestdata(importPath) {
		return lastSegment(importPath) == r.ID()
	}
	pkgs := r.Packages
	if pkgs == nil {
		pkgs = lockOrderPackages
	}
	return pkgs[lastSegment(importPath)]
}

func (r *LockOrder) CheckProgram(prog *flow.Program) []Finding {
	var out []Finding

	for _, rep := range prog.BlockingUnderLock() {
		f := prog.Func(rep.Func)
		if f == nil || !r.inScope(f.Pkg) {
			continue
		}
		held := humanLocks(rep.Held)
		if rep.Direct {
			out = append(out, Finding{
				Rule: r.ID(), File: rep.Pos.File, Line: rep.Pos.Line, Col: rep.Pos.Col,
				Msg: fmt.Sprintf("%s while holding %s", rep.Kind, held),
				Hint: "move the blocking operation outside the critical section, " +
					"or annotate with //almalint:allow lockorder reason: <why this cannot deadlock>",
			})
			continue
		}
		out = append(out, Finding{
			Rule: r.ID(), File: rep.Pos.File, Line: rep.Pos.Line, Col: rep.Pos.Col,
			Msg: fmt.Sprintf("call to %s may block (%s at %s) while holding %s",
				humanFunc(prog, rep.Via[0]), rep.Kind, shortPos(rep.ViaPos), held),
			Hint: fmt.Sprintf("blocking path: %s; release the lock before the call, "+
				"or annotate with //almalint:allow lockorder reason: <why this cannot deadlock>",
				humanChain(prog, rep.Func, rep.Via)),
		})
	}

	for _, cyc := range prog.LockCycles() {
		var anchor *flow.LockEdge
		for i := range cyc.Edges {
			f := prog.Func(cyc.Edges[i].Func)
			if f != nil && r.inScope(f.Pkg) {
				anchor = &cyc.Edges[i]
				break
			}
		}
		if anchor == nil {
			continue
		}
		var parts []string
		for _, e := range cyc.Edges {
			via := ""
			if e.Via != "" {
				via = " via " + humanFunc(prog, e.Via)
			}
			parts = append(parts, fmt.Sprintf("%s → %s (%s%s)",
				humanLock(e.From), humanLock(e.To), shortPos(e.Pos), via))
		}
		out = append(out, Finding{
			Rule: r.ID(), File: anchor.Pos.File, Line: anchor.Pos.Line, Col: anchor.Pos.Col,
			Msg:  fmt.Sprintf("lock-order cycle among %s", humanLocks(cyc.Keys)),
			Hint: "acquisitions: " + strings.Join(parts, "; ") + "; pick one global order and stick to it",
		})
	}
	return out
}

// humanLock strips the canonical-key prefixes down to a readable name:
// "T:almanac/internal/array.Array.closeMu" → "array.Array.closeMu".
func humanLock(key string) string {
	switch {
	case strings.HasPrefix(key, "T:"), strings.HasPrefix(key, "G:"):
		return lastSegment(key[2:])
	case strings.HasPrefix(key, "L:"):
		// Function-local fallback key "L:<func>:<expr>" — show the expr.
		rest := key[2:]
		if i := strings.LastIndex(rest, ":"); i >= 0 {
			return rest[i+1:]
		}
		return rest
	case strings.HasPrefix(key, "param:"):
		return "parameter lock " + key[len("param:"):]
	}
	return key
}

func humanLocks(keys []string) string {
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = humanLock(k)
	}
	return strings.Join(out, ", ")
}

// humanFunc renders a function key as "pkg.Name".
func humanFunc(prog *flow.Program, key string) string {
	if f := prog.Func(key); f != nil {
		return lastSegment(f.Pkg) + "." + f.Name
	}
	return key
}

func humanChain(prog *flow.Program, from string, via []string) string {
	parts := []string{humanFunc(prog, from)}
	for _, v := range via {
		parts = append(parts, humanFunc(prog, v))
	}
	return strings.Join(parts, " → ")
}

func shortPos(p flow.Pos) string {
	return fmt.Sprintf("%s:%d", lastSegment(p.File), p.Line)
}
