package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Wallclock forbids wall-clock time inside simulation packages. All
// simulated latency must flow through internal/vclock's virtual time; a
// single time.Now in a hot path silently couples results to the host
// machine and destroys replay determinism (EagleTree's and Amber's core
// trustworthiness requirement). Host-side packages (cmd/, examples/) are
// out of scope: wall time is legitimate on the host side of the firmware
// boundary.
type Wallclock struct {
	// Packages is the set of in-scope package base names. Nil selects the
	// production set.
	Packages map[string]bool
	// Funcs is the set of forbidden functions in package time. Nil selects
	// the default set.
	Funcs map[string]bool
}

// simPackages is the production scope: every package that participates in
// the simulation or serves it concurrently. harness and almaproto are
// included — their few legitimate wall-clock uses (wall-time measurement,
// network deadlines) carry //almalint:allow wallclock annotations.
var simPackages = map[string]bool{
	"flash": true, "vclock": true, "ftl": true, "core": true,
	"bloom": true, "delta": true, "array": true, "fsim": true,
	"trace": true, "apps": true, "ransom": true, "fault": true,
	"harness": true, "almaproto": true, "timekits": true, "lzf": true,
	"service": true, "sweep": true,
}

var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// NewWallclock returns the rule in production configuration.
func NewWallclock() *Wallclock { return &Wallclock{} }

func (r *Wallclock) ID() string { return "wallclock" }

func (r *Wallclock) Doc() string {
	return "time.Now/Since/Sleep and friends are forbidden in simulation packages; use internal/vclock virtual time"
}

func (r *Wallclock) inScope(importPath string) bool {
	pkgs := r.Packages
	if pkgs == nil {
		pkgs = simPackages
	}
	return pkgs[lastSegment(importPath)] || inTestdata(importPath)
}

func (r *Wallclock) Check(p *Package) []Finding {
	if !r.inScope(p.ImportPath) {
		return nil
	}
	funcs := r.Funcs
	if funcs == nil {
		funcs = wallclockFuncs
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on time.Time etc. are pure
			}
			if !funcs[fn.Name()] {
				return true
			}
			out = append(out, finding(p, sel, r.ID(),
				fmt.Sprintf("wall-clock call time.%s in simulation package %s", fn.Name(), p.Pkg.Name()),
				"route time through internal/vclock; if wall time is genuinely required, annotate with //almalint:allow wallclock <reason>"))
			return true
		})
	}
	return out
}
