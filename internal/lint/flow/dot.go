package flow

import (
	"fmt"
	"sort"
	"strings"
)

// CallGraphDot renders the resolved call graph in Graphviz DOT form.
// Spawn edges (goroutines, escaping literals) are dashed; interface-call
// edges are labeled with the method name.
func (p *Program) CallGraphDot() string {
	var b strings.Builder
	b.WriteString("digraph almalint_callgraph {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	for _, k := range p.keys {
		f := p.funcs[k]
		fmt.Fprintf(&b, "  %s [label=%s];\n", dotID(k), dotString(f.Pkg+"\n"+f.Name))
	}
	for _, k := range p.keys {
		f := p.funcs[k]
		seen := map[string]bool{}
		for ci := range f.Calls {
			cs := &f.Calls[ci]
			for _, g := range p.resolve(cs) {
				var attrs []string
				if cs.Go {
					attrs = append(attrs, "style=dashed")
				}
				if cs.Method != "" {
					attrs = append(attrs, "label="+dotString("."+cs.Method))
				}
				id := g + "|" + strings.Join(attrs, ",")
				if seen[id] {
					continue
				}
				seen[id] = true
				fmt.Fprintf(&b, "  %s -> %s", dotID(k), dotID(g))
				if len(attrs) > 0 {
					fmt.Fprintf(&b, " [%s]", strings.Join(attrs, ", "))
				}
				b.WriteString(";\n")
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// LockGraphDot renders the lock-order graph in Graphviz DOT form, with
// every edge annotated by its witness position and any cycle highlighted.
func (p *Program) LockGraphDot() string {
	inCycle := map[string]bool{}
	for _, c := range p.LockCycles() {
		for _, e := range c.Edges {
			inCycle[e.From+"|"+e.To] = true
		}
	}
	var b strings.Builder
	b.WriteString("digraph almalint_lockgraph {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=ellipse, fontsize=10];\n")
	nodes := map[string]bool{}
	edges := p.LockGraph()
	for _, e := range edges {
		nodes[e.From] = true
		nodes[e.To] = true
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)
	for _, n := range order {
		fmt.Fprintf(&b, "  %s [label=%s];\n", dotID(n), dotString(n))
	}
	for _, e := range edges {
		label := e.Pos.String()
		if e.Via != "" {
			label += "\nvia " + e.Via
		}
		attrs := "label=" + dotString(label)
		if inCycle[e.From+"|"+e.To] {
			attrs += ", color=red, penwidth=2"
		}
		fmt.Fprintf(&b, "  %s -> %s [%s];\n", dotID(e.From), dotID(e.To), attrs)
	}
	b.WriteString("}\n")
	return b.String()
}

// dotID makes a string safe as a DOT node identifier.
func dotID(s string) string {
	var b strings.Builder
	b.WriteString("n_")
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// dotString quotes a string as a DOT double-quoted literal.
func dotString(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return `"` + s + `"`
}
