// Package flow is almalint's interprocedural analysis framework: a
// whole-repo call graph built from per-function summaries, a worklist
// fixpoint over those summaries, and goroutine-spawn / channel-edge
// modeling. It is built entirely on the standard library (go/ast,
// go/types) and deliberately splits analysis into two phases:
//
//   - Extraction (extract.go) turns one type-checked package into a set
//     of FuncSummary values. Summaries are plain serializable data — no
//     AST or types.Info pointers — so cmd/almalint can cache them per
//     package, keyed by content hash, and warm runs skip type-checking
//     unchanged packages entirely.
//
//   - Linking (program.go) joins every summary into a Program: call
//     edges are resolved (including interface calls, matched by method
//     name + canonical signature), lock placeholders are substituted
//     through call sites, and worklist fixpoints compute the transitive
//     facts the deep rules ask about — which locks a call may acquire,
//     whether it may block, and where wall-clock taint can flow.
//
// The deep rules themselves (lockorder, walltaint, atomicmix) live in
// package lint and phrase Program queries as findings.
package flow

import "fmt"

// Pos is a serializable source position.
type Pos struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

func (p Pos) String() string { return fmt.Sprintf("%s:%d", p.File, p.Line) }

// IsValid reports whether the position was filled in.
func (p Pos) IsValid() bool { return p.File != "" && p.Line > 0 }

// DepKind classifies one taint dependency of an expression.
type DepKind string

const (
	// DepSource is a direct wall-clock/randomness source (time.Now, ...).
	DepSource DepKind = "source"
	// DepParam is the value of the enclosing function's i-th parameter.
	DepParam DepKind = "param"
	// DepCall is the result of a call recorded as Calls[CallIdx].
	DepCall DepKind = "call"
	// DepField is the value loaded from a struct field or module-level var.
	DepField DepKind = "field"
)

// Dep is one taint dependency: the ways a value at some program point can
// have become wall-clock-derived.
type Dep struct {
	Kind DepKind `json:"kind"`
	// Source: human description of the source ("time.Now") and its position.
	Source string `json:"source,omitempty"`
	Pos    Pos    `json:"pos,omitempty"`
	// Param: parameter index in the enclosing function.
	Param int `json:"param,omitempty"`
	// Call: index into the enclosing summary's Calls slice, plus which
	// result of that call (tuple returns are tracked positionally so a
	// wall-clock duration in one result does not taint its siblings).
	CallIdx int `json:"callIdx,omitempty"`
	Ret     int `json:"ret,omitempty"`
	// Field: canonical field key ("pkg/path.Type.field" or "pkg/path.var").
	Field string `json:"field,omitempty"`
}

// CallSite is one call (or goroutine spawn, or function-value reference)
// recorded in a function body.
type CallSite struct {
	Pos Pos `json:"pos"`

	// Callee is the canonical key of a statically resolved module
	// function, or "" for interface/dynamic calls.
	Callee string `json:"callee,omitempty"`

	// Method/Sig identify an interface method call for link-time
	// resolution: every module method with the same name and canonical
	// signature is a candidate target. Iface narrows the candidates to
	// receiver types whose declared method set covers the interface's
	// complete method set (sorted "name|sig" entries) — without it, one
	// shared method name like Close() error would glue unrelated types
	// into the call graph.
	Method string   `json:"method,omitempty"`
	Sig    string   `json:"sig,omitempty"`
	Iface  []string `json:"iface,omitempty"`

	// Go marks goroutine spawns and function values that escape the call
	// site (stored, passed as an argument): the callee runs, but on its
	// own schedule, so lock-held state never propagates across this edge.
	Go bool `json:"go,omitempty"`

	// InLoop marks call sites inside a for/range body (spawn-in-loop).
	InLoop bool `json:"inLoop,omitempty"`

	// Held is the set of canonical lock keys lexically held at the call.
	Held []string `json:"held,omitempty"`

	// ArgDeps holds, per argument, the taint dependencies of the argument
	// expression (nil when an argument has none).
	ArgDeps [][]Dep `json:"argDeps,omitempty"`

	// ArgLocks maps argument index to a canonical lock key when the
	// argument is a recognizable lock value (&x.mu, x.mu, a *sync.Mutex
	// parameter); the linker substitutes these for the callee's
	// parameter-lock placeholders.
	ArgLocks map[int]string `json:"argLocks,omitempty"`
}

// BlockKind classifies a potentially blocking operation.
type BlockKind string

const (
	BlockSend    BlockKind = "chan-send"
	BlockRecv    BlockKind = "chan-recv"
	BlockSelect  BlockKind = "select"
	BlockRange   BlockKind = "chan-range"
	BlockWait    BlockKind = "wg-wait"
	BlockSleep   BlockKind = "sleep"
	BlockObsCall BlockKind = "obs-call"
)

// Blocking reports whether the kind is a true scheduling block (as
// opposed to the obs instrumentation-cost policy, which is checked only
// at the site itself, never propagated through calls).
func (k BlockKind) Blocking() bool { return k != BlockObsCall }

func (k BlockKind) String() string {
	switch k {
	case BlockSend:
		return "channel send"
	case BlockRecv:
		return "channel receive"
	case BlockSelect:
		return "select"
	case BlockRange:
		return "range over channel"
	case BlockWait:
		return "sync.WaitGroup.Wait"
	case BlockSleep:
		return "time.Sleep"
	case BlockObsCall:
		return "obs instrumentation call"
	default:
		return string(k)
	}
}

// BlockSite is one potentially blocking operation.
type BlockSite struct {
	Pos  Pos       `json:"pos"`
	Kind BlockKind `json:"kind"`
	// Held is the set of canonical lock keys lexically held at the site.
	Held []string `json:"held,omitempty"`
}

// LockSite is one lock acquisition.
type LockSite struct {
	Pos Pos `json:"pos"`
	// Key is the canonical lock key being acquired.
	Key string `json:"key"`
	// Held is the set of keys already held when acquiring (each yields a
	// lock-order edge Held[i] → Key).
	Held []string `json:"held,omitempty"`
	// Reader marks RLock acquisitions.
	Reader bool `json:"reader,omitempty"`
}

// AtomicMode classifies a struct-field access for the atomicmix rule.
type AtomicMode string

const (
	AccessAtomic AtomicMode = "atomic"
	AccessRead   AtomicMode = "read"
	AccessWrite  AtomicMode = "write"
)

// FieldAccess is one access to an integer-kinded struct field that could
// participate in a mixed atomic/plain access bug.
type FieldAccess struct {
	Pos   Pos        `json:"pos"`
	Field string     `json:"field"`
	Mode  AtomicMode `json:"mode"`
	// Op names the sync/atomic function for atomic accesses.
	Op string `json:"op,omitempty"`
}

// SinkSite is one place a value flows into a determinism-critical
// location: a vclock.Time/Duration conversion or slot, or an obs
// virtual-time histogram parameter.
type SinkSite struct {
	Pos Pos `json:"pos"`
	// What describes the sink ("conversion to vclock.Time",
	// "virtual-time argument of obs.Registry.Record", ...).
	What string `json:"what"`
	// Deps are the taint dependencies of the value reaching the sink.
	Deps []Dep `json:"deps,omitempty"`
}

// FieldStore records taint flowing into a struct field or module-level
// variable.
type FieldStore struct {
	Field string `json:"field"`
	Deps  []Dep  `json:"deps,omitempty"`
}

// FuncSummary is the complete, serializable analysis summary of one
// function, method, or function literal.
type FuncSummary struct {
	// Key is the canonical symbol: "pkg/path.Func",
	// "pkg/path.(*Type).Method", or "pkg/path.Parent$N" for literals.
	Key string `json:"key"`
	// Pkg is the import path of the declaring package.
	Pkg string `json:"pkg"`
	// Name is the display name ("(*Array).Submit", "fanOut$1").
	Name string `json:"name"`
	Pos  Pos    `json:"pos"`

	// Method and Sig are set for methods: the bare method name and the
	// canonical receiver-less signature, used to resolve interface calls.
	Method string `json:"method,omitempty"`
	Sig    string `json:"sig,omitempty"`

	Calls    []CallSite    `json:"calls,omitempty"`
	Locks    []LockSite    `json:"locks,omitempty"`
	Blocking []BlockSite   `json:"blocking,omitempty"`
	Fields   []FieldAccess `json:"fields,omitempty"`
	Sinks    []SinkSite    `json:"sinks,omitempty"`
	Stores   []FieldStore  `json:"stores,omitempty"`
	// ReturnDeps are the taint dependencies of the function's results,
	// indexed by result position.
	ReturnDeps [][]Dep `json:"returnDeps,omitempty"`
}

// ParamLockKey is the placeholder lock key for a mutex reaching a
// function as parameter i; the linker substitutes the caller's ArgLocks.
func ParamLockKey(i int) string { return fmt.Sprintf("param:%d", i) }
