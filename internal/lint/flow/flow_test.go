package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// fakeModule is the module path used by the inline test packages.
const fakeModule = "example.com/m"

// chainImporter resolves the test's fake packages first and falls back to
// the stdlib source importer for everything else.
type chainImporter struct {
	fakes map[string]*types.Package
	std   types.ImporterFrom
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.fakes[path]; ok {
		return p, nil
	}
	return c.std.ImportFrom(path, "", 0)
}

// srcPkg is one inline package: import path plus source text.
type srcPkg struct {
	path string
	src  string
}

// linkSrc type-checks the packages in order (dependencies first),
// extracts summaries from each, and links them into a Program.
func linkSrc(t *testing.T, pkgs []srcPkg) *Program {
	t.Helper()
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		t.Fatal("source importer does not support ImportFrom")
	}
	imp := &chainImporter{fakes: map[string]*types.Package{}, std: std}

	var sums []FuncSummary
	for _, p := range pkgs {
		f, err := parser.ParseFile(fset, p.path+"/src.go", p.src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", p.path, err)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.path, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("type-checking %s: %v", p.path, err)
		}
		imp.fakes[p.path] = tpkg
		sums = append(sums, Extract(&Source{
			ImportPath: p.path,
			ModulePath: fakeModule,
			Fset:       fset,
			Files:      []*ast.File{f},
			Pkg:        tpkg,
			Info:       info,
		})...)
	}
	return Link(sums)
}

// vclockSrc is a minimal stand-in for the real virtual-clock package; the
// sink detector keys on the "/internal/vclock" path suffix.
var vclockSrc = srcPkg{
	path: fakeModule + "/internal/vclock",
	src: `package vclock
type Time int64
const Second Time = 1e9
`,
}

func TestLockCycleAcrossCalls(t *testing.T) {
	prog := linkSrc(t, []srcPkg{{
		path: fakeModule + "/pair",
		src: `package pair

import "sync"

type Pair struct {
	a, b sync.Mutex
}

func (p *Pair) AB() { p.a.Lock(); defer p.a.Unlock(); p.lockB() }
func (p *Pair) lockB() { p.b.Lock(); p.b.Unlock() }
func (p *Pair) BA() { p.b.Lock(); defer p.b.Unlock(); p.lockA() }
func (p *Pair) lockA() { p.a.Lock(); p.a.Unlock() }
`,
	}})
	cycles := prog.LockCycles()
	if len(cycles) != 1 {
		t.Fatalf("got %d lock cycles, want 1: %+v", len(cycles), cycles)
	}
	keys := strings.Join(cycles[0].Keys, " ")
	if !strings.Contains(keys, "Pair.a") || !strings.Contains(keys, "Pair.b") {
		t.Errorf("cycle keys %q missing Pair.a/Pair.b", keys)
	}
}

func TestBlockingThroughCallee(t *testing.T) {
	prog := linkSrc(t, []srcPkg{{
		path: fakeModule + "/q",
		src: `package q

import "sync"

type Q struct {
	mu sync.Mutex
	ch chan int
}

func (q *Q) NotifyUnderLock() { q.mu.Lock(); q.send(); q.mu.Unlock() }
func (q *Q) send() { q.ch <- 1 }
func (q *Q) SpawnIsFine() { q.mu.Lock(); go q.send(); q.mu.Unlock() }
`,
	}})
	var underLock []BlockReport
	for _, r := range prog.BlockingUnderLock() {
		underLock = append(underLock, r)
	}
	if len(underLock) != 1 {
		t.Fatalf("got %d blocking-under-lock reports, want 1 (spawn must not count): %+v", len(underLock), underLock)
	}
	r := underLock[0]
	if r.Direct || len(r.Via) == 0 || !strings.HasSuffix(r.Via[0], "send") {
		t.Errorf("report should be indirect via send, got %+v", r)
	}
	if r.Kind != BlockSend {
		t.Errorf("kind = %v, want %v", r.Kind, BlockSend)
	}
}

func TestParamLockSubstitution(t *testing.T) {
	prog := linkSrc(t, []srcPkg{{
		path: fakeModule + "/g",
		src: `package g

import "sync"

type Guard struct {
	mu, res sync.Mutex
}

func acquireVia(l sync.Locker, g *Guard) { l.Lock(); g.res.Lock(); g.res.Unlock(); l.Unlock() }
func (g *Guard) Front() { acquireVia(&g.mu, g) }
func (g *Guard) Back() { g.res.Lock(); g.mu.Lock(); g.mu.Unlock(); g.res.Unlock() }
`,
	}})
	var haveMuRes bool
	for _, e := range prog.LockGraph() {
		if strings.Contains(e.From, "Guard.mu") && strings.Contains(e.To, "Guard.res") {
			haveMuRes = true
		}
	}
	if !haveMuRes {
		t.Error("parameter lock was not substituted into a mu→res edge")
	}
	if len(prog.LockCycles()) != 1 {
		t.Errorf("got %d cycles, want 1 (mu→res via param, res→mu direct)", len(prog.LockCycles()))
	}
}

func TestTaintThroughFieldAndTuplePrecision(t *testing.T) {
	prog := linkSrc(t, []srcPkg{vclockSrc, {
		path: fakeModule + "/meter",
		src: `package meter

import (
	"time"

	"example.com/m/internal/vclock"
)

type Meter struct {
	stampNS int64
}

func (m *Meter) Stamp() { m.stampNS = time.Now().UnixNano() }
func (m *Meter) Virtual() vclock.Time { return vclock.Time(m.stampNS) }

func timed(at vclock.Time) (vclock.Time, time.Duration) {
	start := time.Now()
	return at + vclock.Second, time.Since(start)
}

func Sibling(at vclock.Time) vclock.Time {
	v, _ := timed(at)
	return vclock.Time(int64(v))
}
`,
	}})
	sinks := prog.TaintedSinks()
	if len(sinks) != 1 {
		t.Fatalf("got %d tainted sinks, want exactly the field-mediated one: %+v", len(sinks), sinks)
	}
	s := sinks[0]
	if !strings.HasSuffix(s.Func, "Virtual") {
		t.Errorf("tainted sink in %s, want Virtual (tuple sibling must stay clean)", s.Func)
	}
	if !strings.HasPrefix(s.Source.Source, "time.Now") {
		t.Errorf("source = %q, want time.Now", s.Source.Source)
	}
}

func TestAtomicMixAcrossFunctions(t *testing.T) {
	prog := linkSrc(t, []srcPkg{{
		path: fakeModule + "/ctr",
		src: `package ctr

import "sync/atomic"

type Counter struct {
	hits int64
	cold int64
}

func (c *Counter) Add() { atomic.AddInt64(&c.hits, 1) }
func (c *Counter) Snapshot() int64 { return c.hits }
func (c *Counter) Cold() int64 { c.cold++; return c.cold }
`,
	}})
	mixes := prog.AtomicMix()
	if len(mixes) != 1 {
		t.Fatalf("got %d atomic-mix reports, want 1: %+v", len(mixes), mixes)
	}
	if !strings.Contains(mixes[0].Field, "Counter.hits") {
		t.Errorf("mixed field = %q, want Counter.hits", mixes[0].Field)
	}
}

func TestInterfaceResolutionNeedsFullMethodSet(t *testing.T) {
	prog := linkSrc(t, []srcPkg{{
		path: fakeModule + "/res",
		src: `package res

import "sync"

// closer shares Close() error with stdlib interfaces like net.Listener;
// widget implements only closer, not the wider twoFace.
type closer interface {
	Close() error
}

type twoFace interface {
	Close() error
	Other()
}

type widget struct {
	mu sync.Mutex
	ch chan int
}

func (w *widget) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.ch <- 0
	return nil
}

func ViaCloser(c closer) { _ = c.Close() }
func ViaTwoFace(f twoFace) { _ = f.Close() }
`,
	}})
	find := func(fn string) *CallSite {
		f := prog.Func(fakeModule + "/res." + fn)
		if f == nil || len(f.Calls) == 0 {
			t.Fatalf("no call site recorded in %s", fn)
		}
		return &f.Calls[0]
	}
	if got := prog.resolve(find("ViaCloser")); len(got) != 1 {
		t.Errorf("closer.Close should resolve to widget, got %v", got)
	}
	if got := prog.resolve(find("ViaTwoFace")); len(got) != 0 {
		t.Errorf("twoFace.Close must not resolve to widget (missing Other), got %v", got)
	}
}

func TestDotExports(t *testing.T) {
	prog := linkSrc(t, []srcPkg{{
		path: fakeModule + "/d",
		src: `package d

import "sync"

type D struct {
	a, b sync.Mutex
}

func (d *D) F() { d.a.Lock(); d.g(); d.a.Unlock() }
func (d *D) g() { d.b.Lock(); d.b.Unlock() }
func (d *D) Spawn() { go d.g() }
`,
	}})
	call := prog.CallGraphDot()
	if !strings.Contains(call, "digraph") || !strings.Contains(call, "style=dashed") {
		t.Errorf("call graph missing digraph/spawn styling:\n%s", call)
	}
	lock := prog.LockGraphDot()
	if !strings.Contains(lock, "D.a") || !strings.Contains(lock, "D.b") {
		t.Errorf("lock graph missing a→b edge:\n%s", lock)
	}
}
