package flow

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Source is the view of one type-checked package the extractor consumes.
// It mirrors lint.Package without importing it (package lint imports flow
// for the deep rules, so the dependency must point this way).
type Source struct {
	ImportPath string
	ModulePath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

func (s *Source) inModule(p *types.Package) bool {
	if p == nil {
		return false
	}
	path := p.Path()
	return path == s.ModulePath || strings.HasPrefix(path, s.ModulePath+"/")
}

// Extract summarizes every function, method, and function literal of the
// package. Summaries are ordered by position, so identical sources yield
// identical summary lists.
func Extract(src *Source) []FuncSummary {
	var out []FuncSummary
	for _, file := range src.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := src.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			ex := newExtractor(src, funcKeyOf(fn), displayName(fn), fd, fn)
			out = append(out, ex.run(fd.Body)...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// funcKeyOf builds the canonical symbol key for a declared function.
func funcKeyOf(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return fn.Pkg().Path() + "." + recvString(sig.Recv().Type()) + "." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

func displayName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return recvString(sig.Recv().Type()) + "." + fn.Name()
	}
	return fn.Name()
}

// recvString renders a receiver type as "(T)" or "(*T)".
func recvString(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		if n, ok := p.Elem().(*types.Named); ok {
			return "(*" + n.Obj().Name() + ")"
		}
	}
	if n, ok := t.(*types.Named); ok {
		return "(" + n.Obj().Name() + ")"
	}
	return "(?)"
}

// sigString renders a receiver-less canonical signature for interface
// call matching, with full package paths so the match is unambiguous.
func sigString(sig *types.Signature) string {
	qual := func(p *types.Package) string { return p.Path() }
	var b strings.Builder
	b.WriteString("(")
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), qual))
	}
	b.WriteString(")(")
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), qual))
	}
	b.WriteString(")")
	return b.String()
}

// assignment is one recorded taint-relevant assignment lhs ← rhs. ret is
// the tuple result position when rhs is a multi-value call (so only that
// result's taint reaches the variable), -1 otherwise.
type assignment struct {
	obj types.Object // local variable assigned, nil for field stores
	rhs ast.Expr
	ret int
}

// extractor builds one function's summary (plus nested literals').
type extractor struct {
	src *Source
	sum *FuncSummary

	params map[types.Object]int // parameter (incl. receiver at -1 offset) → index
	sig    *types.Signature

	assigns  []assignment
	locals   map[types.Object][]Dep
	callIdx  map[*ast.CallExpr]int
	retExprs []ast.Expr
	retPos   []int      // parallel to retExprs: result position, -1 = tuple-forwarding return
	sinkExpr []ast.Expr // parallel to sum.Sinks
	argExpr  map[int][]ast.Expr
	storeRhs []ast.Expr // parallel to sum.Stores
	storeRet []int      // parallel to sum.Stores: tuple position, -1 if n/a

	atomicArgs map[ast.Expr]bool // selector args consumed by sync/atomic calls

	nested []FuncSummary
	litSeq int
	loop   int
}

func newExtractor(src *Source, key, name string, fd *ast.FuncDecl, fn *types.Func) *extractor {
	sum := &FuncSummary{
		Key:  key,
		Pkg:  src.ImportPath,
		Name: name,
		Pos:  posOf(src, fd.Name),
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		sum.Method = fn.Name()
		sum.Sig = sigString(sig)
	}
	ex := &extractor{src: src, sum: sum, sig: sig}
	ex.init()
	if sig != nil {
		i := 0
		if r := sig.Recv(); r != nil {
			ex.params[r] = i
			i++
		}
		for j := 0; j < sig.Params().Len(); j++ {
			ex.params[sig.Params().At(j)] = i
			i++
		}
	}
	return ex
}

// numResults is the function's result count (0 when the signature is
// unknown, which also disables positional return tracking).
func (ex *extractor) numResults() int {
	if ex.sig == nil {
		return 0
	}
	return ex.sig.Results().Len()
}

func (ex *extractor) init() {
	ex.params = map[types.Object]int{}
	ex.locals = map[types.Object][]Dep{}
	ex.callIdx = map[*ast.CallExpr]int{}
	ex.argExpr = map[int][]ast.Expr{}
	ex.atomicArgs = map[ast.Expr]bool{}
}

func posOf(src *Source, n ast.Node) Pos {
	p := src.Fset.Position(n.Pos())
	return Pos{File: p.Filename, Line: p.Line, Col: p.Column}
}

// run walks the body, resolves local taint, and returns the function's
// summary followed by any nested literal summaries.
func (ex *extractor) run(body *ast.BlockStmt) []FuncSummary {
	ex.walkStmts(body.List, newHeld())
	ex.resolveTaint()
	out := []FuncSummary{*ex.sum}
	out = append(out, ex.nested...)
	return out
}

// ---- lock-held statement walk ---------------------------------------------

// held tracks the ordered set of lock keys lexically held.
type held struct{ keys []string }

func newHeld() *held { return &held{} }

func (h *held) copyHeld() *held {
	c := &held{keys: make([]string, len(h.keys))}
	copy(c.keys, h.keys)
	return c
}

func (h *held) push(k string) { h.keys = append(h.keys, k) }

func (h *held) drop(k string) {
	for i := len(h.keys) - 1; i >= 0; i-- {
		if h.keys[i] == k {
			h.keys = append(h.keys[:i], h.keys[i+1:]...)
			return
		}
	}
}

func (h *held) snapshot() []string {
	if len(h.keys) == 0 {
		return nil
	}
	out := make([]string, len(h.keys))
	copy(out, h.keys)
	return out
}

// walkStmts walks one statement list in order, maintaining the held-lock
// set. Nested statement lists get a copy: a conditional unlock-and-return
// inside a branch must not clear the lock for the fall-through path.
func (ex *extractor) walkStmts(list []ast.Stmt, h *held) {
	for i := 0; i < len(list); i++ {
		s := list[i]
		if key, reader, ok := ex.lockStmt(s, "Lock", "RLock"); ok {
			ex.sum.Locks = append(ex.sum.Locks, LockSite{
				Pos: posOf(ex.src, s), Key: key, Held: h.snapshot(), Reader: reader,
			})
			h.push(key)
			continue
		}
		if key, _, ok := ex.lockStmt(s, "Unlock", "RUnlock"); ok {
			h.drop(key)
			continue
		}
		if d, ok := s.(*ast.DeferStmt); ok {
			if key, _, ok := ex.lockCallExpr(d.Call, "Unlock", "RUnlock"); ok {
				// The lock stays held for the rest of the function; nothing
				// to record, the held set simply keeps the key.
				_ = key
				continue
			}
		}
		ex.walkStmt(s, h)
	}
}

// lockStmt matches `recv.Lock()`-style expression statements.
func (ex *extractor) lockStmt(s ast.Stmt, names ...string) (string, bool, bool) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return "", false, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", false, false
	}
	return ex.lockCallExpr(call, names...)
}

// lockCallExpr matches a niladic sync mutex/locker method call and
// returns the canonical lock key and whether it is the reader side.
func (ex *extractor) lockCallExpr(call *ast.CallExpr, names ...string) (string, bool, bool) {
	if len(call.Args) != 0 {
		return "", false, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
		}
	}
	if !match {
		return "", false, false
	}
	fn, ok := ex.src.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	reader := strings.HasPrefix(sel.Sel.Name, "R")
	return ex.lockKey(sel.X), reader, true
}

// lockKey canonicalizes a lock receiver expression. Receivers and
// parameters of named module types key by type ("T:pkg.Type.field"), so
// the same lock is recognized across every method of the type; bare
// mutex/locker parameters become substitutable placeholders; everything
// else falls back to a function-local printed form.
func (ex *extractor) lockKey(e ast.Expr) string {
	e = unparen(e)
	var path []string
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return ex.exprLockKey(e)
			}
			e = x.X
		case *ast.SelectorExpr:
			path = append([]string{x.Sel.Name}, path...)
			e = x.X
		case *ast.Ident:
			obj := ex.src.Info.Uses[x]
			if obj == nil {
				obj = ex.src.Info.Defs[x]
			}
			v, ok := obj.(*types.Var)
			if !ok {
				return ex.exprLockKey(e)
			}
			if named := namedOf(v.Type()); named != nil && ex.src.inModule(named.Obj().Pkg()) {
				key := "T:" + named.Obj().Pkg().Path() + "." + named.Obj().Name()
				if len(path) > 0 {
					key += "." + strings.Join(path, ".")
				}
				return key
			}
			if i, ok := ex.params[obj]; ok && len(path) == 0 {
				return ParamLockKey(i)
			}
			if v.Parent() == ex.src.Pkg.Scope() {
				key := "G:" + ex.src.ImportPath + "." + v.Name()
				if len(path) > 0 {
					key += "." + strings.Join(path, ".")
				}
				return key
			}
			return ex.exprLockKey(x)
		default:
			return ex.exprLockKey(e)
		}
	}
}

func (ex *extractor) exprLockKey(e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, ex.src.Fset, e)
	return "L:" + ex.sum.Key + ":" + buf.String()
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// walkStmt dispatches one non-lock statement.
func (ex *extractor) walkStmt(s ast.Stmt, h *held) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		ex.walkStmts(s.List, h.copyHeld())
	case *ast.IfStmt:
		if s.Init != nil {
			ex.walkStmt(s.Init, h)
		}
		ex.scanExpr(s.Cond, h, false)
		ex.walkStmts(s.Body.List, h.copyHeld())
		if s.Else != nil {
			ex.walkStmt(s.Else, h.copyHeld())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			ex.walkStmt(s.Init, h)
		}
		if s.Cond != nil {
			ex.scanExpr(s.Cond, h, false)
		}
		if s.Post != nil {
			ex.walkStmt(s.Post, h)
		}
		ex.loop++
		ex.walkStmts(s.Body.List, h.copyHeld())
		ex.loop--
	case *ast.RangeStmt:
		if t := ex.src.Info.TypeOf(s.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				ex.sum.Blocking = append(ex.sum.Blocking, BlockSite{
					Pos: posOf(ex.src, s), Kind: BlockRange, Held: h.snapshot(),
				})
			}
		}
		ex.scanExpr(s.X, h, false)
		ex.recordAssignTargets(s.Key, s.Value, nil)
		ex.loop++
		ex.walkStmts(s.Body.List, h.copyHeld())
		ex.loop--
	case *ast.SwitchStmt:
		if s.Init != nil {
			ex.walkStmt(s.Init, h)
		}
		if s.Tag != nil {
			ex.scanExpr(s.Tag, h, false)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				ex.scanExpr(e, h, false)
			}
			ex.walkStmts(cc.Body, h.copyHeld())
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			ex.walkStmt(s.Init, h)
		}
		ex.walkStmt(s.Assign, h)
		for _, c := range s.Body.List {
			ex.walkStmts(c.(*ast.CaseClause).Body, h.copyHeld())
		}
	case *ast.SelectStmt:
		ex.sum.Blocking = append(ex.sum.Blocking, BlockSite{
			Pos: posOf(ex.src, s), Kind: BlockSelect, Held: h.snapshot(),
		})
		// The select finding covers its comm clauses; the bodies still
		// run on this goroutine and are walked normally.
		for _, c := range s.Body.List {
			ex.walkStmts(c.(*ast.CommClause).Body, h.copyHeld())
		}
	case *ast.SendStmt:
		ex.sum.Blocking = append(ex.sum.Blocking, BlockSite{
			Pos: posOf(ex.src, s), Kind: BlockSend, Held: h.snapshot(),
		})
		ex.scanExpr(s.Chan, h, false)
		ex.scanExpr(s.Value, h, false)
	case *ast.GoStmt:
		ex.scanCall(s.Call, h, true)
	case *ast.DeferStmt:
		// Deferred work runs at return with an unknown held set; record
		// the edge for the call graph without attributing current locks.
		ex.scanCall(s.Call, newHeld(), false)
	case *ast.ExprStmt:
		ex.scanExpr(s.X, h, false)
	case *ast.AssignStmt:
		ex.walkAssign(s, h)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					ex.scanExpr(v, h, false)
				}
				if len(vs.Names) > 1 && len(vs.Values) == 1 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, name := range vs.Names {
						lhs[i] = name
					}
					ex.recordTupleAssign(lhs, vs.Values[0])
				} else {
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							ex.recordLocalAssign(name, vs.Values[i], -1)
						}
					}
				}
			}
		}
	case *ast.ReturnStmt:
		n := ex.numResults()
		for i, r := range s.Results {
			ex.scanExpr(r, h, false)
			ex.retExprs = append(ex.retExprs, r)
			if len(s.Results) == n {
				ex.retPos = append(ex.retPos, i)
			} else {
				// `return f()` forwarding a tuple: positions resolved at
				// taint time from the call's own result deps.
				ex.retPos = append(ex.retPos, -1)
			}
		}
	case *ast.IncDecStmt:
		ex.scanExpr(s.X, h, true)
	case *ast.LabeledStmt:
		ex.walkStmt(s.Stmt, h)
	}
}

func (ex *extractor) walkAssign(s *ast.AssignStmt, h *held) {
	for _, r := range s.Rhs {
		ex.scanExpr(r, h, false)
	}
	for _, l := range s.Lhs {
		// Scan index/selector bases on the lhs (reads), and mark the
		// final selector as a write for atomicmix.
		ex.scanExpr(l, h, true)
	}
	// Taint bookkeeping: pair lhs with rhs (1:1 or tuple-from-one-call).
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			ex.recordAssign(s.Lhs[i], s.Rhs[i], -1)
		}
	} else if len(s.Rhs) == 1 {
		ex.recordTupleAssign(s.Lhs, s.Rhs[0])
	}
}

// recordTupleAssign pairs a multi-value rhs with its targets. Call results
// are tracked positionally; for the comma-ok forms (map index, type
// assertion, channel receive) only the value target carries taint — the
// bool never does.
func (ex *extractor) recordTupleAssign(lhs []ast.Expr, rhs ast.Expr) {
	switch unparen(rhs).(type) {
	case *ast.CallExpr:
		for i, l := range lhs {
			ex.recordAssign(l, rhs, i)
		}
	case *ast.TypeAssertExpr, *ast.IndexExpr, *ast.UnaryExpr:
		ex.recordAssign(lhs[0], rhs, -1)
	default:
		for _, l := range lhs {
			ex.recordAssign(l, rhs, -1)
		}
	}
}

func (ex *extractor) recordAssignTargets(key, value ast.Expr, rhs ast.Expr) {
	// Range variables: no taint modeling of element flows (rhs nil keeps
	// the locals untainted rather than guessing).
	_ = key
	_ = value
	_ = rhs
}

func (ex *extractor) recordAssign(lhs, rhs ast.Expr, ret int) {
	switch l := unparen(lhs).(type) {
	case *ast.Ident:
		ex.recordLocalAssign(l, rhs, ret)
	case *ast.SelectorExpr:
		if key, ok := ex.fieldKeyOf(l); ok {
			ex.sum.Stores = append(ex.sum.Stores, FieldStore{Field: key})
			ex.storeRhs = append(ex.storeRhs, rhs)
			ex.storeRet = append(ex.storeRet, ret)
		}
	}
}

func (ex *extractor) recordLocalAssign(id *ast.Ident, rhs ast.Expr, ret int) {
	if id.Name == "_" {
		return
	}
	obj := ex.src.Info.Defs[id]
	if obj == nil {
		obj = ex.src.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	if v, ok := obj.(*types.Var); ok && v.Parent() == ex.src.Pkg.Scope() {
		// Assignment to a package-level variable is a store.
		ex.sum.Stores = append(ex.sum.Stores, FieldStore{Field: "G:" + ex.src.ImportPath + "." + v.Name()})
		ex.storeRhs = append(ex.storeRhs, rhs)
		ex.storeRet = append(ex.storeRet, ret)
		return
	}
	ex.assigns = append(ex.assigns, assignment{obj: obj, rhs: rhs, ret: ret})
}

// ---- expression scan -------------------------------------------------------

// scanExpr records call sites, blocking operations, and field accesses
// inside one expression. write marks the outermost expression as an
// assignment target.
func (ex *extractor) scanExpr(e ast.Expr, h *held, write bool) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.ParenExpr:
		ex.scanExpr(e.X, h, write)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			ex.sum.Blocking = append(ex.sum.Blocking, BlockSite{
				Pos: posOf(ex.src, e), Kind: BlockRecv, Held: h.snapshot(),
			})
		}
		ex.scanExpr(e.X, h, false)
	case *ast.StarExpr:
		ex.scanExpr(e.X, h, false)
	case *ast.BinaryExpr:
		ex.scanExpr(e.X, h, false)
		ex.scanExpr(e.Y, h, false)
	case *ast.CallExpr:
		ex.scanCall(e, h, false)
	case *ast.SelectorExpr:
		ex.recordFieldAccess(e, write)
		ex.scanExpr(e.X, h, false)
	case *ast.Ident:
		ex.recordGlobalAccess(e, write)
	case *ast.IndexExpr:
		ex.scanExpr(e.X, h, false)
		ex.scanExpr(e.Index, h, false)
	case *ast.IndexListExpr:
		ex.scanExpr(e.X, h, false)
	case *ast.SliceExpr:
		ex.scanExpr(e.X, h, false)
		ex.scanExpr(e.Low, h, false)
		ex.scanExpr(e.High, h, false)
		ex.scanExpr(e.Max, h, false)
	case *ast.TypeAssertExpr:
		ex.scanExpr(e.X, h, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				ex.scanExpr(kv.Value, h, false)
				continue
			}
			ex.scanExpr(el, h, false)
		}
	case *ast.FuncLit:
		ex.extractLit(e, h, true, false)
	case *ast.KeyValueExpr:
		ex.scanExpr(e.Value, h, false)
	}
}

// extractLit summarizes a function literal and records the edge to it.
// escaped literals (stored, passed along) run on an unknown schedule, so
// the edge is marked Go — locks held here never extend into the literal.
func (ex *extractor) extractLit(lit *ast.FuncLit, h *held, escaped, spawned bool) string {
	ex.litSeq++
	key := fmt.Sprintf("%s$%d", ex.sum.Key, ex.litSeq)
	sub := &extractor{src: ex.src, sum: &FuncSummary{
		Key:  key,
		Pkg:  ex.src.ImportPath,
		Name: fmt.Sprintf("%s$%d", ex.sum.Name, ex.litSeq),
		Pos:  posOf(ex.src, lit),
	}}
	sub.init()
	if sig, ok := ex.src.Info.TypeOf(lit).(*types.Signature); ok {
		for j := 0; j < sig.Params().Len(); j++ {
			sub.params[sig.Params().At(j)] = j
		}
		sub.sig = sig
	}
	ex.nested = append(ex.nested, sub.run(lit.Body)...)
	ex.sum.Calls = append(ex.sum.Calls, CallSite{
		Pos:    posOf(ex.src, lit),
		Callee: key,
		Go:     escaped || spawned,
		InLoop: ex.loop > 0,
	})
	return key
}

// scanCall records one call expression: lock ops, blocking stdlib calls,
// atomic accesses, obs policy calls, spawn edges, and resolved/interface
// call-graph edges.
func (ex *extractor) scanCall(call *ast.CallExpr, h *held, spawned bool) {
	// Direct invocation or spawn of a literal.
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		ex.extractLit(lit, h, false, spawned)
		idx := len(ex.sum.Calls) - 1
		cs := &ex.sum.Calls[idx]
		cs.Go = spawned
		if !spawned {
			cs.Held = h.snapshot()
		}
		ex.callIdx[call] = idx
		ex.argExpr[idx] = call.Args
		for _, a := range call.Args {
			ex.scanExpr(a, h, false)
		}
		return
	}

	// Conversions: scan the operand and check the vclock sink.
	if tv, ok := ex.src.Info.Types[call.Fun]; ok && tv.IsType() {
		ex.checkConvSink(call)
		for _, a := range call.Args {
			ex.scanExpr(a, h, false)
		}
		return
	}

	fn := ex.calleeFunc(call)
	if fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "sync":
			switch fn.Name() {
			case "Lock", "RLock":
				// A lock call in expression position (defer/go handled
				// elsewhere); track it so the held set stays truthful.
				if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
					h.push(ex.lockKey(sel.X))
				}
				return
			case "Unlock", "RUnlock":
				if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
					h.drop(ex.lockKey(sel.X))
				}
				return
			case "Wait":
				ex.sum.Blocking = append(ex.sum.Blocking, BlockSite{
					Pos: posOf(ex.src, call), Kind: BlockWait, Held: h.snapshot(),
				})
			}
		case "time":
			if fn.Name() == "Sleep" {
				ex.sum.Blocking = append(ex.sum.Blocking, BlockSite{
					Pos: posOf(ex.src, call), Kind: BlockSleep, Held: h.snapshot(),
				})
			}
		case "sync/atomic":
			ex.recordAtomicCall(call, fn)
		}
		if isObsPath(fn.Pkg().Path()) {
			// Only the contended entry points matter under a held lock:
			// Observe/Record write the per-shard seqlock slots, Ops/Trace
			// spin reading them. Constructors and atomic setters
			// (NewRegistry, SetEnabled, Start, ...) are lock-free.
			switch fn.Name() {
			case "Observe", "Record", "Ops", "Trace":
				ex.sum.Blocking = append(ex.sum.Blocking, BlockSite{
					Pos: posOf(ex.src, call), Kind: BlockObsCall, Held: h.snapshot(),
				})
			}
			ex.checkObsSink(call, fn)
		}
	}

	ex.recordCallEdge(call, h, spawned)

	for _, a := range call.Args {
		ex.scanExpr(a, h, false)
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		ex.scanExpr(sel.X, h, false)
	}
}

// calleeFunc resolves the *types.Func a call invokes, if static.
func (ex *extractor) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := ex.src.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := ex.src.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// recordCallEdge adds a CallSite for module functions and interface
// methods. Dynamic calls through plain function values stay unresolved —
// literals get edges where they are created instead.
func (ex *extractor) recordCallEdge(call *ast.CallExpr, h *held, spawned bool) {
	fn := ex.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	cs := CallSite{
		Pos:    posOf(ex.src, call),
		Go:     spawned,
		InLoop: ex.loop > 0,
	}
	if !spawned {
		cs.Held = h.snapshot()
	}
	// For method calls the receiver is parameter 0 of the callee summary,
	// so it leads the expression list ArgDeps/ArgLocks are built from.
	var iface *types.Interface
	exprs := make([]ast.Expr, 0, len(call.Args)+1)
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := ex.src.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			exprs = append(exprs, sel.X)
			if it, ok := s.Recv().Underlying().(*types.Interface); ok {
				iface = it
			}
		}
	}
	exprs = append(exprs, call.Args...)
	switch {
	case iface != nil:
		sig, _ := fn.Type().(*types.Signature)
		cs.Method = fn.Name()
		if sig != nil {
			cs.Sig = sigString(sig)
		}
		cs.Iface = ifaceMethodSet(iface)
	case ex.src.inModule(fn.Pkg()):
		cs.Callee = funcKeyOf(fn)
	default:
		return // stdlib: handled as source/blocking above, no graph edge
	}
	cs.ArgLocks = ex.argLocksOf(exprs)
	idx := len(ex.sum.Calls)
	ex.callIdx[call] = idx
	ex.argExpr[idx] = exprs
	ex.sum.Calls = append(ex.sum.Calls, cs)
}

// ifaceMethodSet renders an interface's complete method set as sorted
// "name|sig" entries for link-time candidate filtering.
func ifaceMethodSet(it *types.Interface) []string {
	it = it.Complete()
	out := make([]string, 0, it.NumMethods())
	for i := 0; i < it.NumMethods(); i++ {
		m := it.Method(i)
		sig, _ := m.Type().(*types.Signature)
		if sig == nil {
			continue
		}
		out = append(out, m.Name()+"|"+sigString(sig))
	}
	sort.Strings(out)
	return out
}

// argLocksOf maps argument positions to canonical lock keys for arguments
// that carry a recognizable lock value.
func (ex *extractor) argLocksOf(exprs []ast.Expr) map[int]string {
	var out map[int]string
	for i, a := range exprs {
		t := ex.src.Info.TypeOf(a)
		if t == nil || !isLockType(t) {
			continue
		}
		if out == nil {
			out = map[int]string{}
		}
		out[i] = ex.lockKey(a)
	}
	return out
}

// isLockType reports sync.Mutex/RWMutex pointers and sync.Locker values.
func isLockType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync" {
		return false
	}
	switch n.Obj().Name() {
	case "Mutex", "RWMutex", "Locker":
		return true
	}
	return false
}

func isObsPath(path string) bool {
	return strings.HasSuffix(path, "/internal/obs")
}

// ---- atomic / plain field accesses ----------------------------------------

// atomicFuncs maps sync/atomic package functions to the index of their
// address argument.
var atomicFuncs = map[string]int{
	"LoadInt32": 0, "LoadInt64": 0, "LoadUint32": 0, "LoadUint64": 0,
	"LoadUintptr": 0, "LoadPointer": 0,
	"StoreInt32": 0, "StoreInt64": 0, "StoreUint32": 0, "StoreUint64": 0,
	"StoreUintptr": 0, "StorePointer": 0,
	"AddInt32": 0, "AddInt64": 0, "AddUint32": 0, "AddUint64": 0, "AddUintptr": 0,
	"SwapInt32": 0, "SwapInt64": 0, "SwapUint32": 0, "SwapUint64": 0,
	"SwapUintptr": 0, "SwapPointer": 0,
	"CompareAndSwapInt32": 0, "CompareAndSwapInt64": 0,
	"CompareAndSwapUint32": 0, "CompareAndSwapUint64": 0,
	"CompareAndSwapUintptr": 0, "CompareAndSwapPointer": 0,
}

func (ex *extractor) recordAtomicCall(call *ast.CallExpr, fn *types.Func) {
	argIdx, ok := atomicFuncs[fn.Name()]
	if !ok || argIdx >= len(call.Args) {
		return
	}
	addr, ok := unparen(call.Args[argIdx]).(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return
	}
	target := unparen(addr.X)
	var key string
	switch t := target.(type) {
	case *ast.SelectorExpr:
		k, ok := ex.fieldKeyOf(t)
		if !ok {
			return
		}
		key = k
		ex.atomicArgs[t] = true
	case *ast.Ident:
		v, ok := ex.src.Info.Uses[t].(*types.Var)
		if !ok || v.Parent() != ex.src.Pkg.Scope() {
			return
		}
		key = "G:" + ex.src.ImportPath + "." + v.Name()
		ex.atomicArgs[t] = true
	default:
		return
	}
	ex.sum.Fields = append(ex.sum.Fields, FieldAccess{
		Pos: posOf(ex.src, call), Field: key, Mode: AccessAtomic, Op: fn.Name(),
	})
}

// recordFieldAccess records plain reads/writes of integer-kinded module
// struct fields — the accesses atomicmix compares against atomic ones.
func (ex *extractor) recordFieldAccess(sel *ast.SelectorExpr, write bool) {
	if ex.atomicArgs[sel] {
		return // the &x.f inside an atomic call is the atomic access itself
	}
	key, ok := ex.fieldKeyOf(sel)
	if !ok {
		return
	}
	if !ex.atomicCapable(ex.src.Info.TypeOf(sel)) {
		return
	}
	mode := AccessRead
	if write {
		mode = AccessWrite
	}
	ex.sum.Fields = append(ex.sum.Fields, FieldAccess{
		Pos: posOf(ex.src, sel.Sel), Field: key, Mode: mode,
	})
}

func (ex *extractor) recordGlobalAccess(id *ast.Ident, write bool) {
	if ex.atomicArgs[id] {
		return
	}
	v, ok := ex.src.Info.Uses[id].(*types.Var)
	if !ok || v.Parent() != ex.src.Pkg.Scope() {
		return
	}
	if !ex.atomicCapable(v.Type()) {
		return
	}
	mode := AccessRead
	if write {
		mode = AccessWrite
	}
	ex.sum.Fields = append(ex.sum.Fields, FieldAccess{
		Pos: posOf(ex.src, id), Field: "G:" + ex.src.ImportPath + "." + v.Name(), Mode: mode,
	})
}

// atomicCapable reports types sync/atomic functions can address.
func (ex *extractor) atomicCapable(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr, types.UnsafePointer:
		return true
	}
	return false
}

// fieldKeyOf canonicalizes a struct-field selector to
// "pkg/path.Type.field". Only fields of named module structs qualify.
func (ex *extractor) fieldKeyOf(sel *ast.SelectorExpr) (string, bool) {
	s, ok := ex.src.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || v.Pkg() == nil || !ex.src.inModule(v.Pkg()) {
		return "", false
	}
	named := namedOf(s.Recv())
	if named == nil || named.Obj().Pkg() == nil {
		return "", false
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + v.Name(), true
}
