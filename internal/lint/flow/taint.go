package flow

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// sourceName reports whether fn is a wall-clock or host-randomness source
// and names it for diagnostics.
func sourceName(fn *types.Func) (string, bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name(), true
		}
	case "math/rand", "math/rand/v2":
		// Only the package-level convenience functions draw from the
		// global (host-seeded) source. rand.New(rand.NewSource(seed)) is
		// the sanctioned deterministic pattern — not a taint source.
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8", "Seed":
			return "", false
		}
		return fn.Pkg().Path() + "." + fn.Name(), true
	case "crypto/rand":
		switch fn.Name() {
		case "Read", "Int", "Prime", "Text":
			return "crypto/rand." + fn.Name(), true
		}
	}
	return "", false
}

// checkConvSink records a conversion into vclock.Time/Duration — the
// boundary where a host-derived value would become "virtual time".
func (ex *extractor) checkConvSink(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := ex.src.Info.Types[call.Fun]
	if !ok {
		return
	}
	named := namedOf(tv.Type)
	if named == nil || named.Obj().Pkg() == nil {
		return
	}
	if !strings.HasSuffix(named.Obj().Pkg().Path(), "/internal/vclock") {
		return
	}
	name := named.Obj().Name()
	if name != "Time" && name != "Duration" {
		return
	}
	// Re-typing a value that is already the target type is not a boundary
	// crossing.
	if src := ex.src.Info.TypeOf(call.Args[0]); src != nil && namedOf(src) == named {
		return
	}
	ex.sum.Sinks = append(ex.sum.Sinks, SinkSite{
		Pos: posOf(ex.src, call), What: "conversion to vclock." + name,
	})
	ex.sinkExpr = append(ex.sinkExpr, call.Args[0])
}

// checkObsSink records the virtual-time arguments of obs recording calls:
// Observe(class, virtNS, wallStart, ok) and
// Record(class, lpa, issueNS, doneNS, wallStart, ok).
func (ex *extractor) checkObsSink(call *ast.CallExpr, fn *types.Func) {
	var idxs []int
	switch fn.Name() {
	case "Observe":
		idxs = []int{1}
	case "Record":
		idxs = []int{2, 3}
	default:
		return
	}
	for _, i := range idxs {
		if i >= len(call.Args) {
			continue
		}
		ex.sum.Sinks = append(ex.sum.Sinks, SinkSite{
			Pos:  posOf(ex.src, call.Args[i]),
			What: fmt.Sprintf("virtual-time argument %d of obs.%s", i, fn.Name()),
		})
		ex.sinkExpr = append(ex.sinkExpr, call.Args[i])
	}
}

// resolveTaint runs the flow-insensitive local fixpoint over recorded
// assignments, then fills in the dependency sets of call arguments,
// sinks, field stores, and returns.
func (ex *extractor) resolveTaint() {
	for iter := 0; iter < 20; iter++ {
		changed := false
		for _, a := range ex.assigns {
			d := retSlice(ex.eval(a.rhs), a.ret)
			if len(d) == 0 {
				continue
			}
			merged, grew := unionDeps(ex.locals[a.obj], d)
			if grew {
				ex.locals[a.obj] = merged
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, idx := range sortedCallIdx(ex.callIdx) {
		exprs := ex.argExpr[idx]
		if len(exprs) == 0 {
			continue
		}
		var argDeps [][]Dep
		any := false
		for _, e := range exprs {
			d := ex.eval(e)
			if len(d) > 0 {
				any = true
			}
			argDeps = append(argDeps, d)
		}
		if any {
			ex.sum.Calls[idx].ArgDeps = argDeps
		}
	}
	for i, e := range ex.sinkExpr {
		ex.sum.Sinks[i].Deps = ex.eval(e)
	}
	for i, e := range ex.storeRhs {
		if e != nil {
			ex.sum.Stores[i].Deps = retSlice(ex.eval(e), ex.storeRet[i])
		}
	}
	n := ex.numResults()
	if n > 0 && len(ex.retExprs) > 0 {
		rets := make([][]Dep, n)
		for i, e := range ex.retExprs {
			d := ex.eval(e)
			if len(d) == 0 {
				continue
			}
			if pos := ex.retPos[i]; pos >= 0 && pos < n {
				rets[pos], _ = unionDeps(rets[pos], d)
			} else {
				// `return f()` forwarding a tuple: result j of this
				// function is result j of the forwarded call; any non-call
				// taint is spread conservatively.
				for j := range rets {
					rets[j], _ = unionDeps(rets[j], retSlice(d, j))
				}
			}
		}
		any := false
		for _, r := range rets {
			if len(r) > 0 {
				any = true
			}
		}
		if any {
			ex.sum.ReturnDeps = rets
		}
	}
}

// retSlice projects deps onto tuple result position ret: call deps are
// narrowed to that result; other dep kinds pass through unchanged. ret < 0
// means "not a tuple context" and is the identity.
func retSlice(deps []Dep, ret int) []Dep {
	if ret < 0 {
		return deps
	}
	var out []Dep
	for _, d := range deps {
		if d.Kind == DepCall {
			d.Ret = ret
		}
		out = append(out, d)
	}
	return out
}

func sortedCallIdx(m map[*ast.CallExpr]int) []int {
	out := make([]int, 0, len(m))
	for _, i := range m {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func depKey(d Dep) string {
	switch d.Kind {
	case DepSource:
		return "s:" + d.Source
	case DepParam:
		return fmt.Sprintf("p:%d", d.Param)
	case DepCall:
		return fmt.Sprintf("c:%d:%d", d.CallIdx, d.Ret)
	case DepField:
		return "f:" + d.Field
	}
	return "?"
}

// unionDeps merges b into a, reporting whether a grew. Sets stay small
// (bounded by distinct keys in one function).
func unionDeps(a, b []Dep) ([]Dep, bool) {
	grew := false
	for _, d := range b {
		found := false
		k := depKey(d)
		for _, e := range a {
			if depKey(e) == k {
				found = true
				break
			}
		}
		if !found {
			a = append(a, d)
			grew = true
		}
	}
	return a, grew
}

// eval computes the taint dependencies of an expression under the current
// local solution.
func (ex *extractor) eval(e ast.Expr) []Dep {
	return ex.evalDepth(e, 0)
}

func (ex *extractor) evalDepth(e ast.Expr, depth int) []Dep {
	if depth > 12 {
		return nil
	}
	switch e := e.(type) {
	case nil:
		return nil
	case *ast.ParenExpr:
		return ex.evalDepth(e.X, depth+1)
	case *ast.Ident:
		obj := ex.src.Info.Uses[e]
		if obj == nil {
			obj = ex.src.Info.Defs[e]
		}
		if obj == nil {
			return nil
		}
		if i, ok := ex.params[obj]; ok {
			return []Dep{{Kind: DepParam, Param: i}}
		}
		if d, ok := ex.locals[obj]; ok {
			return d
		}
		if v, ok := obj.(*types.Var); ok && v.Parent() == ex.src.Pkg.Scope() {
			return []Dep{{Kind: DepField, Field: "G:" + ex.src.ImportPath + "." + v.Name()}}
		}
		return nil
	case *ast.SelectorExpr:
		if id, ok := unparen(e.X).(*ast.Ident); ok {
			if _, isPkg := ex.src.Info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := ex.src.Info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && ex.src.inModule(v.Pkg()) {
					return []Dep{{Kind: DepField, Field: "G:" + v.Pkg().Path() + "." + v.Name()}}
				}
				return nil
			}
		}
		if key, ok := ex.fieldKeyOf(e); ok {
			out, _ := unionDeps([]Dep{{Kind: DepField, Field: key}}, ex.evalDepth(e.X, depth+1))
			return out
		}
		return ex.evalDepth(e.X, depth+1)
	case *ast.CallExpr:
		if tv, ok := ex.src.Info.Types[e.Fun]; ok && tv.IsType() {
			if len(e.Args) == 1 {
				return ex.evalDepth(e.Args[0], depth+1)
			}
			return nil
		}
		if name, ok := sourceName(ex.calleeFunc(e)); ok {
			return []Dep{{Kind: DepSource, Source: name, Pos: posOf(ex.src, e)}}
		}
		if idx, ok := ex.callIdx[e]; ok {
			return []Dep{{Kind: DepCall, CallIdx: idx}}
		}
		// Unresolved call (stdlib helper, function value): taint passes
		// through receiver and arguments — time.Now().UnixNano() stays
		// tainted even though UnixNano itself is not a source.
		var out []Dep
		if sel, ok := unparen(e.Fun).(*ast.SelectorExpr); ok {
			out, _ = unionDeps(out, ex.evalDepth(sel.X, depth+1))
		}
		for _, a := range e.Args {
			out, _ = unionDeps(out, ex.evalDepth(a, depth+1))
		}
		return out
	case *ast.BinaryExpr:
		out, _ := unionDeps(ex.evalDepth(e.X, depth+1), ex.evalDepth(e.Y, depth+1))
		return out
	case *ast.UnaryExpr:
		return ex.evalDepth(e.X, depth+1)
	case *ast.StarExpr:
		return ex.evalDepth(e.X, depth+1)
	case *ast.IndexExpr:
		return ex.evalDepth(e.X, depth+1)
	case *ast.SliceExpr:
		return ex.evalDepth(e.X, depth+1)
	case *ast.TypeAssertExpr:
		return ex.evalDepth(e.X, depth+1)
	case *ast.CompositeLit:
		var out []Dep
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			out, _ = unionDeps(out, ex.evalDepth(el, depth+1))
		}
		return out
	}
	return nil
}
