package flow

import (
	"sort"
	"strconv"
	"strings"
)

// Program is the linked whole-module view: every function summary joined
// into a call graph, with the interprocedural fixpoints (transitive lock
// acquisition, blocking reachability, taint propagation) computed once at
// construction so rule queries are cheap lookups.
type Program struct {
	funcs map[string]*FuncSummary
	keys  []string // sorted function keys

	// byMethod indexes methods by "name|signature" for interface-call
	// resolution: any module method matching both is a candidate target.
	byMethod map[string][]string

	acq    map[string]map[string]acqInfo
	blocks map[string]*blockFact

	lockEdges  map[string]LockEdge // "from|to" → first witness
	paramEdges map[string][]LockEdge

	taintFrom map[string]taintInfo // tainted node id → provenance

	// methodSets maps a normalized receiver ("pkg.T", pointer and value
	// merged) to the "name|sig" set of its declared methods, for
	// full-interface candidate filtering in resolve.
	methodSets map[string]map[string]bool
}

// acqInfo is the witness for "function may acquire lock": where, and
// through which callee (empty for a direct acquisition).
type acqInfo struct {
	Pos Pos
	Via string
}

// blockFact is the witness for "function may block".
type blockFact struct {
	Kind BlockKind
	Pos  Pos
	Via  []string // call chain from the function to the blocking site
}

// LockEdge is one lock-order edge: To was acquired while From was held.
type LockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Pos  Pos    `json:"pos"`
	Func string `json:"func"`
	// Via names the callee the acquisition happened through, "" if direct.
	Via string `json:"via,omitempty"`
}

// taintInfo records how a taint-graph node became tainted.
type taintInfo struct {
	Source Dep    // the originating DepSource
	From   string // predecessor node id, "" if directly from the source
}

// Link joins summaries into a Program and runs every fixpoint.
func Link(sums []FuncSummary) *Program {
	p := &Program{
		funcs:      map[string]*FuncSummary{},
		byMethod:   map[string][]string{},
		methodSets: map[string]map[string]bool{},
		acq:        map[string]map[string]acqInfo{},
		blocks:     map[string]*blockFact{},
		lockEdges:  map[string]LockEdge{},
		paramEdges: map[string][]LockEdge{},
		taintFrom:  map[string]taintInfo{},
	}
	for i := range sums {
		s := &sums[i]
		p.funcs[s.Key] = s
	}
	for k := range p.funcs {
		p.keys = append(p.keys, k)
	}
	sort.Strings(p.keys)
	for _, k := range p.keys {
		s := p.funcs[k]
		if s.Method != "" {
			mk := s.Method + "|" + s.Sig
			p.byMethod[mk] = append(p.byMethod[mk], k)
			if recv := recvOf(k); recv != "" {
				ms := p.methodSets[recv]
				if ms == nil {
					ms = map[string]bool{}
					p.methodSets[recv] = ms
				}
				ms[mk] = true
			}
		}
	}
	p.computeAcquires()
	p.computeBlocking()
	p.computeLockEdges()
	p.computeTaint()
	return p
}

// Func returns the summary for a canonical key, or nil.
func (p *Program) Func(key string) *FuncSummary { return p.funcs[key] }

// FuncKeys returns every function key in sorted order.
func (p *Program) FuncKeys() []string { return p.keys }

// resolve returns the possible targets of a call site, sorted.
func (p *Program) resolve(cs *CallSite) []string {
	if cs.Callee != "" {
		if _, ok := p.funcs[cs.Callee]; ok {
			return []string{cs.Callee}
		}
		return nil
	}
	if cs.Method != "" {
		cands := p.byMethod[cs.Method+"|"+cs.Sig]
		if len(cs.Iface) == 0 {
			return cands
		}
		// Keep only receiver types whose declared method set covers the
		// whole interface: sharing one method name (Close() error on
		// net.Listener vs a module type) must not create an edge.
		// Promoted methods from embedded types are not credited to the
		// outer type here, which can drop a genuine target — an accepted
		// precision/recall trade for a linter.
		var out []string
		for _, k := range cands {
			ms := p.methodSets[recvOf(k)]
			ok := true
			for _, m := range cs.Iface {
				if !ms[m] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, k)
			}
		}
		return out
	}
	return nil
}

// recvOf extracts the normalized receiver from a method key:
// "pkg.(*T).M" and "pkg.T.M" both map to "pkg.T". Returns "" for
// non-method keys (no receiver segment).
func recvOf(key string) string {
	i := strings.LastIndex(key, ".")
	if i < 0 {
		return ""
	}
	recv := key[:i]
	recv = strings.Replace(recv, "(*", "", 1)
	recv = strings.Replace(recv, ")", "", 1)
	return recv
}

// substLock maps a callee lock key into the caller's frame: parameter
// placeholders become the caller's argument lock (possibly the caller's
// own placeholder, substituted one level further up), unknown parameters
// drop out, and concrete keys pass through.
func substLock(key string, argLocks map[int]string) string {
	if !strings.HasPrefix(key, "param:") {
		return key
	}
	var i int
	for _, c := range key[len("param:"):] {
		if c < '0' || c > '9' {
			return ""
		}
		i = i*10 + int(c-'0')
	}
	return argLocks[i] // "" when the caller passed no recognizable lock
}

func isParamLock(key string) bool { return strings.HasPrefix(key, "param:") }

// ---- transitive lock acquisition -------------------------------------------

func (p *Program) computeAcquires() {
	for _, k := range p.keys {
		m := map[string]acqInfo{}
		for _, ls := range p.funcs[k].Locks {
			if _, ok := m[ls.Key]; !ok {
				m[ls.Key] = acqInfo{Pos: ls.Pos}
			}
		}
		p.acq[k] = m
	}
	for round := 0; round < 100; round++ {
		changed := false
		for _, k := range p.keys {
			f := p.funcs[k]
			for ci := range f.Calls {
				cs := &f.Calls[ci]
				if cs.Go {
					// A spawned goroutine acquires its locks on its own
					// schedule; the spawner itself does not.
					continue
				}
				for _, g := range p.resolve(cs) {
					for _, gk := range sortedKeys(p.acq[g]) {
						k2 := substLock(gk, cs.ArgLocks)
						if k2 == "" {
							continue
						}
						if _, ok := p.acq[k][k2]; !ok {
							p.acq[k][k2] = acqInfo{Pos: cs.Pos, Via: g}
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}

// Acquires returns the sorted set of lock keys the function may acquire,
// directly or through (non-spawn) calls.
func (p *Program) Acquires(key string) []string {
	return sortedKeys(p.acq[key])
}

func sortedKeys(m map[string]acqInfo) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---- blocking reachability -------------------------------------------------

func (p *Program) computeBlocking() {
	for _, k := range p.keys {
		for _, b := range p.funcs[k].Blocking {
			if b.Kind.Blocking() {
				p.blocks[k] = &blockFact{Kind: b.Kind, Pos: b.Pos}
				break
			}
		}
	}
	for round := 0; round < 100; round++ {
		changed := false
		for _, k := range p.keys {
			if p.blocks[k] != nil {
				continue
			}
			f := p.funcs[k]
			for ci := range f.Calls {
				cs := &f.Calls[ci]
				if cs.Go {
					continue
				}
				for _, g := range p.resolve(cs) {
					if fg := p.blocks[g]; fg != nil {
						via := append([]string{g}, fg.Via...)
						p.blocks[k] = &blockFact{Kind: fg.Kind, Pos: fg.Pos, Via: via}
						changed = true
						break
					}
				}
				if p.blocks[k] != nil {
					break
				}
			}
		}
		if !changed {
			return
		}
	}
}

// MayBlock reports whether a function may perform a true scheduling block
// (directly or through calls), with a witness.
func (p *Program) MayBlock(key string) (BlockKind, Pos, []string, bool) {
	f := p.blocks[key]
	if f == nil {
		return "", Pos{}, nil, false
	}
	return f.Kind, f.Pos, f.Via, true
}

// ---- lock-order graph ------------------------------------------------------

func (p *Program) addLockEdge(e LockEdge) {
	if e.From == e.To {
		// Same canonical key on both sides: with type-based keys this is
		// usually two *instances* of the same type, which establishes no
		// order violation by itself, so self-edges are dropped.
		return
	}
	if isParamLock(e.From) || isParamLock(e.To) {
		key := e.Func + "|" + e.From + "|" + e.To
		for _, have := range p.paramEdges[e.Func] {
			if have.Func+"|"+have.From+"|"+have.To == key {
				return
			}
		}
		p.paramEdges[e.Func] = append(p.paramEdges[e.Func], e)
		return
	}
	id := e.From + "|" + e.To
	if _, ok := p.lockEdges[id]; !ok {
		p.lockEdges[id] = e
	}
}

func (p *Program) computeLockEdges() {
	for _, k := range p.keys {
		f := p.funcs[k]
		for _, ls := range f.Locks {
			for _, h := range ls.Held {
				p.addLockEdge(LockEdge{From: h, To: ls.Key, Pos: ls.Pos, Func: k})
			}
		}
		for ci := range f.Calls {
			cs := &f.Calls[ci]
			if cs.Go || len(cs.Held) == 0 {
				continue
			}
			for _, g := range p.resolve(cs) {
				for _, gk := range sortedKeys(p.acq[g]) {
					k2 := substLock(gk, cs.ArgLocks)
					if k2 == "" {
						continue
					}
					for _, h := range cs.Held {
						p.addLockEdge(LockEdge{From: h, To: k2, Pos: cs.Pos, Func: k, Via: g})
					}
				}
			}
		}
	}
	// Instantiate parameter-lock edges at call sites until no new concrete
	// edges appear: a helper that locks two of its mutex parameters yields
	// a concrete edge at every caller that passes concrete locks.
	for round := 0; round < 30; round++ {
		changed := false
		for _, k := range p.keys {
			f := p.funcs[k]
			for ci := range f.Calls {
				cs := &f.Calls[ci]
				for _, g := range p.resolve(cs) {
					for _, e := range p.paramEdges[g] {
						from := substLock(e.From, cs.ArgLocks)
						to := substLock(e.To, cs.ArgLocks)
						if from == "" || to == "" || (from == e.From && to == e.To) {
							continue
						}
						e2 := LockEdge{From: from, To: to, Pos: cs.Pos, Func: k, Via: g}
						if isParamLock(from) || isParamLock(to) {
							before := len(p.paramEdges[k])
							p.addLockEdge(e2)
							if len(p.paramEdges[k]) != before {
								changed = true
							}
							continue
						}
						if _, ok := p.lockEdges[from+"|"+to]; !ok {
							p.lockEdges[from+"|"+to] = e2
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}

// LockGraph returns every concrete lock-order edge, sorted.
func (p *Program) LockGraph() []LockEdge {
	out := make([]LockEdge, 0, len(p.lockEdges))
	for _, e := range p.lockEdges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// LockCycle is one strongly connected component of the lock-order graph:
// a set of locks that can be acquired in inconsistent order.
type LockCycle struct {
	Keys  []string
	Edges []LockEdge
}

// LockCycles finds cycles in the lock-order graph via Tarjan's SCC.
func (p *Program) LockCycles() []LockCycle {
	edges := p.LockGraph()
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
		nodes[e.From] = true
		nodes[e.To] = true
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				sccs = append(sccs, comp)
			}
		}
	}
	for _, n := range order {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}

	var out []LockCycle
	for _, comp := range sccs {
		sort.Strings(comp)
		member := map[string]bool{}
		for _, k := range comp {
			member[k] = true
		}
		var ce []LockEdge
		for _, e := range edges {
			if member[e.From] && member[e.To] {
				ce = append(ce, e)
			}
		}
		out = append(out, LockCycle{Keys: comp, Edges: ce})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Keys[0] < out[j].Keys[0] })
	return out
}

// BlockReport is one potentially blocking operation reachable while a
// lock is held.
type BlockReport struct {
	Pos    Pos
	Func   string // key of the function holding the lock
	Held   []string
	Kind   BlockKind
	Direct bool
	// For indirect reports: the call chain and the ultimate block site.
	Via    []string
	ViaPos Pos
}

// BlockingUnderLock reports every site where a lock is held across a
// blocking operation — directly, or through a (non-spawn) call whose
// callee may block.
func (p *Program) BlockingUnderLock() []BlockReport {
	var out []BlockReport
	for _, k := range p.keys {
		f := p.funcs[k]
		for _, b := range f.Blocking {
			if len(b.Held) == 0 {
				continue
			}
			out = append(out, BlockReport{
				Pos: b.Pos, Func: k, Held: b.Held, Kind: b.Kind, Direct: true,
			})
		}
		for ci := range f.Calls {
			cs := &f.Calls[ci]
			if cs.Go || len(cs.Held) == 0 {
				continue
			}
			for _, g := range p.resolve(cs) {
				if fg := p.blocks[g]; fg != nil {
					out = append(out, BlockReport{
						Pos: cs.Pos, Func: k, Held: cs.Held, Kind: fg.Kind,
						Via: append([]string{g}, fg.Via...), ViaPos: fg.Pos,
					})
					break
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.File != out[j].Pos.File {
			return out[i].Pos.File < out[j].Pos.File
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}

// ---- taint propagation -----------------------------------------------------

// obsOpaque reports summaries/field keys belonging to internal/obs, which
// walltaint treats as a terminal: obs stores wall time on purpose (the
// wall-time histogram half), and its internals never feed virtual time.
func obsOpaque(s string) bool {
	return strings.Contains(s, "internal/obs.") || isObsPath(s)
}

func (p *Program) computeTaint() {
	rev := map[string][]string{} // node → dependents
	direct := map[string][]Dep{} // node → source deps hitting it directly

	addDep := func(to string, d Dep, ownerKey string, calls []CallSite) {
		switch d.Kind {
		case DepSource:
			direct[to] = append(direct[to], d)
		case DepParam:
			from := "param:" + ownerKey + ":" + strconv.Itoa(d.Param)
			rev[from] = append(rev[from], to)
		case DepField:
			if obsOpaque(d.Field) {
				return
			}
			from := "field:" + d.Field
			rev[from] = append(rev[from], to)
		case DepCall:
			if d.CallIdx < 0 || d.CallIdx >= len(calls) {
				return
			}
			for _, g := range p.resolve(&calls[d.CallIdx]) {
				if obsOpaque(g) {
					continue
				}
				rev["ret:"+g+":"+strconv.Itoa(d.Ret)] = append(rev["ret:"+g+":"+strconv.Itoa(d.Ret)], to)
			}
		}
	}

	for _, k := range p.keys {
		f := p.funcs[k]
		if isObsPath(f.Pkg) {
			continue
		}
		for ri, deps := range f.ReturnDeps {
			for _, d := range deps {
				addDep("ret:"+k+":"+strconv.Itoa(ri), d, k, f.Calls)
			}
		}
		for ci := range f.Calls {
			cs := &f.Calls[ci]
			if cs.ArgDeps == nil {
				continue
			}
			for _, g := range p.resolve(cs) {
				if obsOpaque(g) {
					continue
				}
				for ai, deps := range cs.ArgDeps {
					for _, d := range deps {
						addDep("param:"+g+":"+strconv.Itoa(ai), d, k, f.Calls)
					}
				}
			}
		}
		for si, s := range f.Sinks {
			for _, d := range s.Deps {
				addDep("sink:"+k+":"+strconv.Itoa(si), d, k, f.Calls)
			}
		}
		for _, st := range f.Stores {
			if obsOpaque(st.Field) {
				continue
			}
			for _, d := range st.Deps {
				addDep("field:"+st.Field, d, k, f.Calls)
			}
		}
	}

	// BFS from directly-sourced nodes, deterministic order.
	var seeds []string
	for n := range direct {
		seeds = append(seeds, n)
	}
	sort.Strings(seeds)
	var queue []string
	for _, n := range seeds {
		p.taintFrom[n] = taintInfo{Source: direct[n][0]}
		queue = append(queue, n)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		deps := rev[n]
		sort.Strings(deps)
		for _, m := range deps {
			if _, done := p.taintFrom[m]; done {
				continue
			}
			p.taintFrom[m] = taintInfo{Source: p.taintFrom[n].Source, From: n}
			queue = append(queue, m)
		}
	}
}

// TaintReport is one sink reached by wall-clock/randomness taint.
type TaintReport struct {
	Func   string
	Pkg    string
	Sink   SinkSite
	Source Dep
	Path   []string // taint-graph node chain from the source to the sink
}

// TaintedSinks returns every sink a source value can reach.
func (p *Program) TaintedSinks() []TaintReport {
	var out []TaintReport
	for _, k := range p.keys {
		f := p.funcs[k]
		if isObsPath(f.Pkg) {
			continue
		}
		for si, s := range f.Sinks {
			node := "sink:" + k + ":" + strconv.Itoa(si)
			info, ok := p.taintFrom[node]
			if !ok {
				continue
			}
			var path []string
			for n := node; n != ""; {
				path = append([]string{n}, path...)
				n = p.taintFrom[n].From
				if len(path) > 8 {
					break
				}
			}
			out = append(out, TaintReport{
				Func: f.Name, Pkg: f.Pkg, Sink: s, Source: info.Source, Path: path,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sink.Pos.File != out[j].Sink.Pos.File {
			return out[i].Sink.Pos.File < out[j].Sink.Pos.File
		}
		return out[i].Sink.Pos.Line < out[j].Sink.Pos.Line
	})
	return out
}

// ---- atomic/plain mix ------------------------------------------------------

// MixReport is one plain access to a field that is accessed atomically
// elsewhere in the module.
type MixReport struct {
	Field     string
	AtomicPos Pos
	AtomicOp  string
	PlainPos  Pos
	Mode      AtomicMode
	Func      string
}

// AtomicMix returns every plain read/write of a field that any function
// accesses through sync/atomic.
func (p *Program) AtomicMix() []MixReport {
	type access struct {
		fa FieldAccess
		fn string
	}
	byField := map[string][]access{}
	for _, k := range p.keys {
		for _, fa := range p.funcs[k].Fields {
			byField[fa.Field] = append(byField[fa.Field], access{fa, k})
		}
	}
	var fields []string
	for f := range byField {
		fields = append(fields, f)
	}
	sort.Strings(fields)

	var out []MixReport
	for _, field := range fields {
		accs := byField[field]
		sort.Slice(accs, func(i, j int) bool {
			if accs[i].fa.Pos.File != accs[j].fa.Pos.File {
				return accs[i].fa.Pos.File < accs[j].fa.Pos.File
			}
			return accs[i].fa.Pos.Line < accs[j].fa.Pos.Line
		})
		var atomic *access
		plainAny := false
		for i := range accs {
			if accs[i].fa.Mode == AccessAtomic {
				if atomic == nil {
					atomic = &accs[i]
				}
			} else {
				plainAny = true
			}
		}
		if atomic == nil || !plainAny {
			continue
		}
		seen := map[string]bool{}
		for _, a := range accs {
			if a.fa.Mode == AccessAtomic {
				continue
			}
			id := a.fa.Pos.String()
			if seen[id] {
				continue
			}
			seen[id] = true
			out = append(out, MixReport{
				Field: field, AtomicPos: atomic.fa.Pos, AtomicOp: atomic.fa.Op,
				PlainPos: a.fa.Pos, Mode: a.fa.Mode, Func: a.fn,
			})
		}
	}
	return out
}
