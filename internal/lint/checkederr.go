package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CheckedErr flags call statements that silently drop an error return.
// Test files are never loaded by the analyzer, so this rule covers exactly
// the non-test code. A deliberate discard must be spelled `_ = f()` (the
// discard is then visible in review) or carry an allow comment. Deferred
// calls (`defer f.Close()`) and goroutine launches are not flagged — both
// are established idioms whose error has no consumer.
type CheckedErr struct{}

// NewCheckedErr returns the rule.
func NewCheckedErr() *CheckedErr { return &CheckedErr{} }

func (r *CheckedErr) ID() string { return "checkederr" }

func (r *CheckedErr) Doc() string {
	return "calls returning an error must not be used as bare statements; handle it or assign to _ explicitly"
}

// errDropOK lists callees whose error is conventionally unactionable:
// fmt printing, and in-memory writers that are documented never to fail.
func errDropOK(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return true
	}
	if pkg.Path() == "fmt" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedRecv(sig.Recv().Type())
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	recv := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	switch recv {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}

func (r *CheckedErr) Check(p *Package) []Finding {
	errType := types.Universe.Lookup("error").Type()
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[call]
			if !ok {
				return true
			}
			if !resultHasError(tv.Type, errType) {
				return true
			}
			if fn := calleeFunc(p, call); fn != nil && errDropOK(fn) {
				return true
			}
			out = append(out, finding(p, call, r.ID(),
				fmt.Sprintf("result of %s contains an error that is dropped", callName(p, call)),
				"check the error, or make the discard explicit with _ ="))
			return true
		})
	}
	return out
}

// resultHasError reports whether a call result type contains error.
func resultHasError(t types.Type, errType types.Type) bool {
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
	default:
		return t != nil && types.Identical(t, errType)
	}
	return false
}

// calleeFunc resolves the static callee of a call, if any.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

// callName renders a short name for the callee for messages.
func callName(p *Package, call *ast.CallExpr) string {
	if fn := calleeFunc(p, call); fn != nil {
		return fn.Name()
	}
	return "call"
}
