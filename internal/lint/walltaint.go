package lint

import (
	"fmt"
	"strings"

	"almanac/internal/lint/flow"
)

// WallTaint is the interprocedural determinism rule. Where the classic
// wallclock rule bans *calling* time.Now in simulation packages, this one
// proves the stronger property the figures depend on: no wall-clock or
// host-randomness value — wherever it was read — ever *flows* into a
// virtual-time sink. Sinks are the points where a value becomes virtual
// time: conversions into vclock.Time/vclock.Duration (virtual-time
// results and every wire payload / harness table derives from those), and
// the virtual-nanosecond arguments of obs.Observe/obs.Record (the virtual
// histogram half). Taint is tracked through assignments, struct fields,
// call arguments, and return values across the whole module; the obs
// package itself is opaque — it stores wall time on purpose, in the
// wall-time histogram half, and never feeds it back into virtual time.
type WallTaint struct{}

// NewWallTaint returns the rule in production configuration.
func NewWallTaint() *WallTaint { return &WallTaint{} }

func (r *WallTaint) ID() string { return "walltaint" }

func (r *WallTaint) Doc() string {
	return "no wall-clock/host-randomness value may flow into a virtual-time sink (vclock conversions, obs virtual histograms), module-wide"
}

func (r *WallTaint) inScope(importPath string) bool {
	if inTestdata(importPath) {
		return lastSegment(importPath) == r.ID()
	}
	return true
}

func (r *WallTaint) CheckProgram(prog *flow.Program) []Finding {
	var out []Finding
	for _, rep := range prog.TaintedSinks() {
		if !r.inScope(rep.Pkg) {
			continue
		}
		hint := "derive virtual time from vclock arithmetic only; if this value is genuinely virtual, " +
			"annotate with //almalint:allow walltaint reason: <why>"
		if len(rep.Path) > 1 {
			hint = "taint path: " + strings.Join(rep.Path, " → ") + "; " + hint
		}
		out = append(out, Finding{
			Rule: r.ID(), File: rep.Sink.Pos.File, Line: rep.Sink.Pos.Line, Col: rep.Sink.Pos.Col,
			Msg: fmt.Sprintf("wall-clock value from %s (%s) reaches %s in %s",
				rep.Source.Source, shortPos(rep.Source.Pos), rep.Sink.What, rep.Func),
			Hint: hint,
		})
	}
	return out
}
