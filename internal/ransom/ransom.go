// Package ransom models the encryption-ransomware case study of §5.5.1
// (Fig. 10): thirteen ransomware families attack a file system mounted on
// a TimeSSD, and recovery is performed with TimeKits by rolling every page
// the attack touched back to its pre-attack version.
//
// Substitution note (DESIGN.md): the paper runs real samples from
// VirusTotal; those binaries are obviously not shippable, so each family is
// modelled by its documented I/O behaviour — how many files it encrypts,
// how fast, and whether it encrypts in place or writes a new encrypted
// copy and deletes the original. Recovery uses the real TimeKits path, so
// the measured quantity (device-level rollback time as a function of dirty
// data volume and channel parallelism) exercises the same code the paper
// measures.
//
// The paper's FlashGuard baseline retains victim pages uncompressed, so its
// recovery skips delta decompression; it is reproduced by running TimeSSD
// with DisableCompression (raw retention), which the paper reports makes
// recovery ≈14% faster at the cost of retention capacity.
package ransom

import (
	"bytes"
	"fmt"
	"math/rand"

	"almanac/internal/fsim"
	"almanac/internal/timekits"
	"almanac/internal/vclock"
)

// Family describes one ransomware family's I/O behaviour.
type Family struct {
	Name        string
	Files       int     // victim files encrypted before the ransom note
	AvgFileKB   int     // mean victim file size
	Overwrite   bool    // true: encrypt in place; false: write copy, delete original
	FilesPerSec float64 // attack speed
}

// Families are the thirteen families of Fig. 10. Counts, sizes, speeds and
// the in-place-vs-copy behaviour follow the qualitative descriptions in
// the ransomware analysis literature; they control only the x-axis spread
// of the figure (recovery time scales with encrypted volume).
var Families = []Family{
	{Name: "Petya", Files: 48, AvgFileKB: 24, Overwrite: true, FilesPerSec: 8},
	{Name: "CTB-Locker", Files: 40, AvgFileKB: 32, Overwrite: false, FilesPerSec: 4},
	{Name: "JigSaw", Files: 24, AvgFileKB: 16, Overwrite: false, FilesPerSec: 2},
	{Name: "Maktub", Files: 36, AvgFileKB: 24, Overwrite: true, FilesPerSec: 5},
	{Name: "Mobef", Files: 28, AvgFileKB: 20, Overwrite: true, FilesPerSec: 3},
	{Name: "CryptoWall", Files: 56, AvgFileKB: 28, Overwrite: false, FilesPerSec: 6},
	{Name: "Locky", Files: 64, AvgFileKB: 24, Overwrite: false, FilesPerSec: 10},
	{Name: "7ev3n", Files: 20, AvgFileKB: 16, Overwrite: true, FilesPerSec: 2},
	{Name: "Stampado", Files: 32, AvgFileKB: 20, Overwrite: true, FilesPerSec: 4},
	{Name: "TeslaCrypt", Files: 52, AvgFileKB: 24, Overwrite: false, FilesPerSec: 7},
	{Name: "HydraCrypt", Files: 36, AvgFileKB: 20, Overwrite: true, FilesPerSec: 4},
	{Name: "CryptoFortress", Files: 30, AvgFileKB: 24, Overwrite: false, FilesPerSec: 3},
	{Name: "Cerber", Files: 60, AvgFileKB: 28, Overwrite: false, FilesPerSec: 9},
}

// FamilyByName looks a family up.
func FamilyByName(name string) (Family, error) {
	for _, f := range Families {
		if f.Name == name {
			return f, nil
		}
	}
	return Family{}, fmt.Errorf("ransom: unknown family %q", name)
}

// AttackResult records what the attack did — and the ground truth needed
// to verify recovery.
type AttackResult struct {
	Family      Family
	Start       vclock.Time
	End         vclock.Time
	Victims     []string          // file names encrypted
	PreContents map[string][]byte // pre-attack contents (verification oracle)
	BytesHit    int64
}

// PlantFiles populates the file system with victim files and returns their
// names. Contents are moderately compressible documents.
func PlantFiles(fs *fsim.FS, fam Family, seed int64, at vclock.Time) ([]string, vclock.Time, error) {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, 0, fam.Files)
	var err error
	for i := 0; i < fam.Files; i++ {
		name := fmt.Sprintf("doc-%s-%03d.dat", fam.Name, i)
		size := fileSize(rng, fam.AvgFileKB)
		if at, err = fs.Create(name, at); err != nil {
			return nil, at, err
		}
		if at, err = fs.Write(name, 0, document(rng, size), at); err != nil {
			return nil, at, err
		}
		names = append(names, name)
	}
	return names, at, nil
}

func fileSize(rng *rand.Rand, avgKB int) int {
	kb := avgKB/2 + rng.Intn(avgKB) // uniform in [avg/2, 1.5avg)
	if kb < 1 {
		kb = 1
	}
	return kb * 1024
}

// document synthesises compressible file content (text-like).
func document(rng *rand.Rand, size int) []byte {
	words := []string{"the ", "quarterly ", "report ", "shows ", "figures ", "for ", "storage ", "systems "}
	var buf bytes.Buffer
	for buf.Len() < size {
		buf.WriteString(words[rng.Intn(len(words))])
	}
	return buf.Bytes()[:size]
}

// ciphertext synthesises the encrypted replacement: incompressible bytes,
// like real ciphertext.
func ciphertext(rng *rand.Rand, size int) []byte {
	out := make([]byte, size)
	_, _ = rng.Read(out) // rand.Rand.Read is documented to never fail
	return out
}

// Attack runs the family's encryption campaign against the file system.
// Victim files must already exist (PlantFiles).
func Attack(fs *fsim.FS, fam Family, victims []string, seed int64, at vclock.Time) (*AttackResult, vclock.Time, error) {
	rng := rand.New(rand.NewSource(seed))
	res := &AttackResult{
		Family:      fam,
		Start:       at,
		Victims:     append([]string(nil), victims...),
		PreContents: make(map[string][]byte, len(victims)),
	}
	gap := vclock.Duration(float64(vclock.Second) / fam.FilesPerSec)
	var err error
	for _, name := range victims {
		// The ransomware reads the file…
		size, serr := fs.Size(name)
		if serr != nil {
			return nil, at, serr
		}
		plain, done, rerr := fs.Read(name, 0, int(size), at)
		if rerr != nil {
			return nil, at, rerr
		}
		at = done
		res.PreContents[name] = plain
		enc := ciphertext(rng, int(size))
		if fam.Overwrite {
			// …and encrypts it in place.
			if at, err = fs.Write(name, 0, enc, at); err != nil {
				return nil, at, err
			}
		} else {
			// …or writes an encrypted copy and deletes the original.
			encName := name + ".enc"
			if at, err = fs.Create(encName, at); err != nil {
				return nil, at, err
			}
			if at, err = fs.Write(encName, 0, enc, at); err != nil {
				return nil, at, err
			}
			if at, err = fs.Delete(name, at); err != nil {
				return nil, at, err
			}
		}
		res.BytesHit += size
		at = at.Add(gap)
	}
	res.End = at
	return res, at, nil
}

// RecoverStats reports a recovery run.
type RecoverStats struct {
	RecoveryTime    vclock.Duration // virtual time from detection to restored state
	PagesRolledBack int
	QueryTime       vclock.Duration // share spent finding dirty pages
	Verified        bool            // post-recovery contents match pre-attack
	Remount         bool            // file system mounted cleanly afterwards
}

// Recover performs the paper's device-level recovery: query every LPA
// written since the attack started, roll each back to its pre-attack
// version with the requested host-thread parallelism, remount the file
// system, and verify every victim file byte-for-byte.
func Recover(kit *timekits.Kit, res *AttackResult, threads int, at vclock.Time) (*RecoverStats, vclock.Time, error) {
	start := at
	// 1. Find everything the malware touched (time-based state query).
	q, err := kit.TimeQueryRange(res.Start, res.End, at)
	if err != nil {
		return nil, at, err
	}
	at = q.Done
	lpas := make([]uint64, 0, len(q.Value))
	for _, rec := range q.Value {
		lpas = append(lpas, rec.LPA)
	}
	// 2. Roll those pages back to just before the attack.
	rb, err := kit.RollBackParallel(lpas, threads, res.Start-1, at)
	if err != nil {
		return nil, at, err
	}
	at = rb.Done
	st := &RecoverStats{
		RecoveryTime:    at.Sub(start),
		QueryTime:       q.Elapsed,
		PagesRolledBack: rb.Value,
	}
	// 3. Remount and verify.
	fs2, done, err := fsim.Mount(kit.Device(), at)
	if err != nil {
		return st, at, nil // recovery "finished" but unverifiable
	}
	at = done
	st.Remount = true
	st.Verified = true
	for name, want := range res.PreContents {
		got, done, rerr := fs2.Read(name, 0, len(want), at)
		if rerr != nil || !bytes.Equal(got, want) {
			st.Verified = false
			break
		}
		at = done
	}
	return st, at, nil
}
