package ransom

import (
	"testing"

	"almanac/internal/core"
	"almanac/internal/flash"
	"almanac/internal/fsim"
	"almanac/internal/ftl"
	"almanac/internal/timekits"
	"almanac/internal/vclock"
)

// rig builds a TimeSSD + fsim + TimeKits stack big enough for an attack.
func rig(t *testing.T, disableCompression bool) (*fsim.FS, *timekits.Kit) {
	t.Helper()
	fc := flash.DefaultConfig()
	fc.Channels = 4
	fc.ChipsPerChannel = 2
	fc.BlocksPerPlane = 64
	fc.PagesPerBlock = 32
	fc.PageSize = 4096
	cfg := core.DefaultConfig(ftl.WithFlash(fc))
	cfg.MinRetention = 0
	cfg.DisableCompression = disableCompression
	dev, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := fsim.DefaultOptions(fsim.ModeInPlace)
	opts.InodeCount = 512
	fs, _, err := fsim.Mkfs(dev, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	return fs, timekits.New(dev)
}

func TestFamilyByName(t *testing.T) {
	f, err := FamilyByName("Locky")
	if err != nil || f.Name != "Locky" {
		t.Fatalf("lookup failed: %v", err)
	}
	if _, err := FamilyByName("NotAFamily"); err == nil {
		t.Fatal("unknown family accepted")
	}
	if len(Families) != 13 {
		t.Fatalf("paper evaluates 13 families, have %d", len(Families))
	}
}

func testFamilyRecovery(t *testing.T, fam Family, disableCompression bool) {
	fs, kit := rig(t, disableCompression)
	at := vclock.Time(vclock.Second)
	victims, at, err := PlantFiles(fs, fam, 1, at)
	if err != nil {
		t.Fatal(err)
	}
	// Let time pass so the attack window is clearly separated.
	at = at.Add(vclock.Hour)
	res, at, err := Attack(fs, fam, victims, 2, at)
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesHit == 0 {
		t.Fatal("attack encrypted nothing")
	}
	// The "ransom note pops up" — recovery starts.
	at = at.Add(vclock.Minute)
	st, _, err := Recover(kit, res, 4, at)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Remount {
		t.Fatal("file system did not remount after recovery")
	}
	if !st.Verified {
		t.Fatal("recovered contents do not match pre-attack state")
	}
	if st.RecoveryTime <= 0 || st.PagesRolledBack == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
}

func TestRecoverOverwriteFamily(t *testing.T) {
	fam, _ := FamilyByName("Petya") // encrypts in place
	testFamilyRecovery(t, fam, false)
}

func TestRecoverDeleteFamily(t *testing.T) {
	fam, _ := FamilyByName("Locky") // writes copies, deletes originals
	testFamilyRecovery(t, fam, false)
}

func TestRecoverFlashGuardStyle(t *testing.T) {
	fam, _ := FamilyByName("TeslaCrypt")
	testFamilyRecovery(t, fam, true) // raw retention (no decompression)
}

func TestAllFamiliesSmall(t *testing.T) {
	for _, fam := range Families {
		fam := fam
		fam.Files = 6 // keep the full sweep fast
		t.Run(fam.Name, func(t *testing.T) {
			testFamilyRecovery(t, fam, false)
		})
	}
}

func TestRecoveryFasterWithMoreThreads(t *testing.T) {
	fam, _ := FamilyByName("Cerber")
	run := func(threads int) vclock.Duration {
		fs, kit := rig(t, false)
		at := vclock.Time(vclock.Second)
		victims, at, err := PlantFiles(fs, fam, 1, at)
		if err != nil {
			t.Fatal(err)
		}
		at = at.Add(vclock.Hour)
		res, at, err := Attack(fs, fam, victims, 2, at)
		if err != nil {
			t.Fatal(err)
		}
		st, _, err := Recover(kit, res, threads, at.Add(vclock.Minute))
		if err != nil {
			t.Fatal(err)
		}
		if !st.Verified {
			t.Fatal("recovery not verified")
		}
		return st.RecoveryTime
	}
	t1 := run(1)
	t4 := run(4)
	if t4 >= t1 {
		t.Fatalf("4-thread recovery (%v) not faster than 1-thread (%v)", t4, t1)
	}
}
