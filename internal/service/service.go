// Package service turns a sharded TimeSSD array into a multi-tenant
// storage service: named volumes carved out of the array's logical
// address space, each with its own tenant key, retention promise, and
// observability registry.
//
// A volume is a contiguous extent of *global* array LPAs. Because the
// array stripes global LPAs across shards (shard = lpa mod N), every
// volume's pages spread over all shards — each tenant gets the full
// device parallelism — while the extents themselves stay disjoint. All
// TimeKits state on the array is keyed by LPA, so a range-scoped
// RollBack over one volume's extent cannot touch another volume's
// version history: per-volume time travel falls out of the address-space
// partition rather than needing per-tenant firmware state.
//
// Retention: the device keeps one physical window (the paper's §3.4
// adaptive window with a guaranteed lower bound). A volume's promise is
// enforced in two directions. Upward, the service raises the array-wide
// MinRetention to the maximum over volume promises, so the physical
// window always covers the strictest volume. Downward, each volume's
// visible window is clamped at its creation time and (when a promise is
// set) at `at - retention`, so a tenant can never read state from before
// its volume existed — including a previous tenant of the same extent.
//
// Concurrency: Service methods take one service mutex for the volume
// table; Volume I/O takes no service lock at all — it translates
// addresses and submits to the array's per-shard worker queues, so
// tenants on different shards proceed in parallel exactly as raw array
// callers do.
package service

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"sort"
	"sync"

	"almanac/internal/array"
	"almanac/internal/obs"
	"almanac/internal/vclock"
)

// Typed failures. The protocol layer (almaproto) maps these to wire
// status codes so remote clients can match them with errors.Is exactly
// as in-process callers do.
var (
	// ErrAuth is returned when a tenant key does not match, or when an
	// operation arrives for a volume the connection never attached.
	ErrAuth = errors.New("service: tenant key rejected")

	// ErrNoVolume is returned for operations on names that do not exist
	// (or volumes deleted while a handle was still held).
	ErrNoVolume = errors.New("service: no such volume")

	// ErrBeforeWindow is returned for time-travel requests that precede
	// the volume's visible window: its creation, its retention promise,
	// or the device's physical window, whichever is latest.
	ErrBeforeWindow = errors.New("service: time precedes the volume's retention window")

	// ErrExists is returned when creating a volume whose name is taken.
	ErrExists = errors.New("service: volume exists")

	// ErrNoSpace is returned when no contiguous extent can hold a new
	// volume.
	ErrNoSpace = errors.New("service: no contiguous capacity for volume")
)

// extent is a free contiguous range of global array LPAs.
type extent struct {
	base  uint64
	pages uint64
}

// Service owns the volume table and the free-extent allocator over one
// array's logical address space.
type Service struct {
	arr *array.Array

	// floor is the operator-configured MinRetention the array was built
	// with; volume promises raise the effective bound but never lower it
	// below the floor.
	floor vclock.Duration

	mu     sync.Mutex
	byName map[string]*Volume
	byID   map[uint32]*Volume
	nextID uint32
	free   []extent // sorted by base, adjacent extents merged
	obsOn  bool
}

// New builds a service over arr. The array's configured MinRetention
// becomes the retention floor no volume promise can lower.
func New(arr *array.Array) *Service {
	return &Service{
		arr:    arr,
		floor:  arr.ShardConfig().MinRetention,
		byName: make(map[string]*Volume),
		byID:   make(map[uint32]*Volume),
		nextID: 1,
		free:   []extent{{base: 0, pages: uint64(arr.LogicalPages())}},
	}
}

// Array exposes the backing array (the protocol server routes block I/O
// and array-wide TimeKits through it).
func (s *Service) Array() *array.Array { return s.arr }

// SetObsEnabled switches per-volume histogram recording for existing and
// future volumes.
func (s *Service) SetObsEnabled(on bool) {
	s.mu.Lock()
	vols := s.sortedLocked()
	s.obsOn = on
	s.mu.Unlock()
	for _, v := range vols {
		v.reg.SetEnabled(on)
	}
}

// sortedLocked returns the volumes in name order; the caller holds s.mu.
func (s *Service) sortedLocked() []*Volume {
	names := make([]string, 0, len(s.byName))
	for name := range s.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Volume, 0, len(names))
	for _, name := range names {
		out = append(out, s.byName[name])
	}
	return out
}

// Create carves a new volume of pages logical pages named name out of
// the free space, protected by key. retention is the volume's promise —
// how far back the tenant must be able to travel (0 accepts the device
// default); at stamps the creation in virtual time and becomes the floor
// of the volume's visible window.
func (s *Service) Create(name, key string, pages uint64, retention vclock.Duration, at vclock.Time) (*Volume, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty volume name", ErrNoVolume)
	}
	if pages == 0 {
		return nil, fmt.Errorf("service: volume %q: need at least one page", name)
	}
	if retention < 0 {
		return nil, fmt.Errorf("service: volume %q: negative retention %v", name, retention)
	}
	s.mu.Lock()
	if _, ok := s.byName[name]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	base, ok := s.allocLocked(pages)
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q needs %d pages", ErrNoSpace, name, pages)
	}
	v := &Volume{
		svc:       s,
		id:        s.nextID,
		name:      name,
		key:       key,
		base:      base,
		pages:     pages,
		retention: retention,
		createdAt: at,
		reg:       obs.NewRegistry(),
	}
	s.nextID++
	v.reg.SetEnabled(s.obsOn)
	s.byName[name] = v
	s.byID[v.id] = v
	bound := s.boundLocked()
	s.mu.Unlock()
	if err := s.arr.SetMinRetention(bound); err != nil {
		return nil, err
	}
	return v, nil
}

// Delete authenticates and removes a volume. Its pages are trimmed (the
// live content is invalidated so the extent hands no readable data to
// the next tenant) and the extent returns to the allocator. Handles still
// held by other connections fail every subsequent operation with
// ErrNoVolume. The returned time is the virtual completion of the scrub.
func (s *Service) Delete(name, key string, at vclock.Time) (vclock.Time, error) {
	s.mu.Lock()
	v, ok := s.byName[name]
	if !ok {
		s.mu.Unlock()
		return at, fmt.Errorf("%w: %q", ErrNoVolume, name)
	}
	if !keyMatches(v.key, key) {
		s.mu.Unlock()
		return at, fmt.Errorf("%w: volume %q", ErrAuth, name)
	}
	delete(s.byName, name)
	delete(s.byID, v.id)
	bound := s.boundLocked()
	s.mu.Unlock()

	v.dead.Store(true)
	// Scrub: invalidate every mapped page of the extent. History inside
	// the physical window survives (retention is a device-wide promise),
	// but the window clamp of any future volume over this extent hides it.
	done := at
	cmds := make([]*array.Cmd, 0, v.pages)
	for lpa := v.base; lpa < v.base+v.pages; lpa++ {
		cmd := array.TrimCmd(lpa, at)
		if err := s.arr.Submit(cmd); err != nil {
			break // array closed mid-delete; the extent is still reclaimed
		}
		cmds = append(cmds, cmd)
	}
	for _, cmd := range cmds {
		cmd.Wait()
		if cmd.Err == nil && cmd.Done > done {
			done = cmd.Done
		}
	}

	s.mu.Lock()
	s.freeLocked(extent{base: v.base, pages: v.pages})
	s.mu.Unlock()
	if err := s.arr.SetMinRetention(bound); err != nil {
		return done, err
	}
	return done, nil
}

// Attach authenticates against a named volume and returns its handle.
// The same *Volume is shared by every attacher; it is safe for
// concurrent use.
func (s *Service) Attach(name, key string) (*Volume, error) {
	s.mu.Lock()
	v, ok := s.byName[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoVolume, name)
	}
	if !keyMatches(v.key, key) {
		return nil, fmt.Errorf("%w: volume %q", ErrAuth, name)
	}
	return v, nil
}

// Lookup returns the attached-volume handle for an id (the wire protocol
// resolves batch frames by id after an attach).
func (s *Service) Lookup(id uint32) (*Volume, bool) {
	s.mu.Lock()
	v, ok := s.byID[id]
	s.mu.Unlock()
	return v, ok
}

// Info is the public description of one volume — everything List exposes
// to unauthenticated callers (no keys).
type Info struct {
	ID        uint32
	Name      string
	Pages     uint64
	Retention vclock.Duration
	CreatedAt vclock.Time
}

// List describes every volume in name order.
func (s *Service) List() []Info {
	s.mu.Lock()
	vols := s.sortedLocked()
	s.mu.Unlock()
	out := make([]Info, 0, len(vols))
	for _, v := range vols {
		out = append(out, v.Info())
	}
	return out
}

// ObsSnapshot merges every volume's registry into one snapshot, visiting
// volumes in name order so identical states produce identical snapshots.
// The counters are derived from the vol-* class counts; device-wide
// flash counters live in the array's own snapshot.
func (s *Service) ObsSnapshot() obs.Snapshot {
	s.mu.Lock()
	vols := s.sortedLocked()
	s.mu.Unlock()
	var out obs.Snapshot
	for _, v := range vols {
		out.Merge(v.Snapshot())
	}
	return out
}

// RetentionBound returns the effective array MinRetention: the operator
// floor raised to the strictest volume promise.
func (s *Service) RetentionBound() vclock.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.boundLocked()
}

func (s *Service) boundLocked() vclock.Duration {
	bound := s.floor
	for _, v := range s.byName {
		if v.retention > bound {
			bound = v.retention
		}
	}
	return bound
}

// allocLocked finds the first free extent that fits (first fit keeps the
// allocator deterministic for a fixed create/delete sequence).
func (s *Service) allocLocked(pages uint64) (uint64, bool) {
	for i, e := range s.free {
		if e.pages < pages {
			continue
		}
		base := e.base
		if e.pages == pages {
			s.free = append(s.free[:i], s.free[i+1:]...)
		} else {
			s.free[i] = extent{base: e.base + pages, pages: e.pages - pages}
		}
		return base, true
	}
	return 0, false
}

// freeLocked returns an extent to the allocator, merging with adjacent
// free extents.
func (s *Service) freeLocked(e extent) {
	i := sort.Search(len(s.free), func(i int) bool { return s.free[i].base > e.base })
	s.free = append(s.free, extent{})
	copy(s.free[i+1:], s.free[i:])
	s.free[i] = e
	// Merge right then left.
	if i+1 < len(s.free) && s.free[i].base+s.free[i].pages == s.free[i+1].base {
		s.free[i].pages += s.free[i+1].pages
		s.free = append(s.free[:i+1], s.free[i+2:]...)
	}
	if i > 0 && s.free[i-1].base+s.free[i-1].pages == s.free[i].base {
		s.free[i-1].pages += s.free[i].pages
		s.free = append(s.free[:i], s.free[i+1:]...)
	}
}

// keyMatches compares tenant keys in constant time.
func keyMatches(want, got string) bool {
	return subtle.ConstantTimeCompare([]byte(want), []byte(got)) == 1
}
