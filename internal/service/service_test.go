package service

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"almanac/internal/array"
	"almanac/internal/core"
	"almanac/internal/flash"
	"almanac/internal/ftl"
	"almanac/internal/obs"
	"almanac/internal/vclock"
)

func newService(t testing.TB, shards int) *Service {
	t.Helper()
	fc := flash.DefaultConfig()
	fc.Channels = 2
	fc.ChipsPerChannel = 1
	fc.BlocksPerPlane = 32
	fc.PagesPerBlock = 16
	fc.PageSize = 512
	cfg := core.DefaultConfig(ftl.WithFlash(fc))
	cfg.MinRetention = 0
	arr, err := array.New(array.Config{Shards: shards, Shard: cfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { arr.Close() })
	return New(arr)
}

func pattern(b byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestVolumeLifecycle(t *testing.T) {
	s := newService(t, 2)
	at := vclock.Time(vclock.Hour)

	v, err := s.Create("alpha", "k1", 32, 0, at)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("alpha", "k2", 32, 0, at); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := s.Create("", "k", 8, 0, at); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := s.Create("huge", "k", uint64(s.arr.LogicalPages())+1, 0, at); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("oversized create: %v", err)
	}

	if _, err := s.Attach("alpha", "nope"); !errors.Is(err, ErrAuth) {
		t.Fatalf("wrong key attach: %v", err)
	}
	if _, err := s.Attach("ghost", "k1"); !errors.Is(err, ErrNoVolume) {
		t.Fatalf("missing attach: %v", err)
	}
	h, err := s.Attach("alpha", "k1")
	if err != nil {
		t.Fatal(err)
	}
	if h != v {
		t.Fatal("attach returned a different handle")
	}

	ps := s.arr.PageSize()
	if _, err := v.Write(2, pattern(0xaa, ps), at.Add(vclock.Second)); err != nil {
		t.Fatal(err)
	}
	data, _, err := v.Read(2, at.Add(vclock.Minute))
	if err != nil || !bytes.Equal(data, pattern(0xaa, ps)) {
		t.Fatalf("read back: %v", err)
	}
	if _, err := v.Write(uint64(v.Pages()), pattern(1, ps), at.Add(vclock.Minute)); !errors.Is(err, ftl.ErrOutOfRange) {
		t.Fatalf("out-of-range write: %v", err)
	}

	if _, err := s.Delete("alpha", "nope", at.Add(2*vclock.Minute)); !errors.Is(err, ErrAuth) {
		t.Fatalf("wrong key delete: %v", err)
	}
	if _, err := s.Delete("alpha", "k1", at.Add(2*vclock.Minute)); err != nil {
		t.Fatal(err)
	}
	// A handle held across the delete fails typed.
	if _, _, err := v.Read(2, at.Add(3*vclock.Minute)); !errors.Is(err, ErrNoVolume) {
		t.Fatalf("read on deleted volume: %v", err)
	}
	if _, err := s.Attach("alpha", "k1"); !errors.Is(err, ErrNoVolume) {
		t.Fatalf("attach after delete: %v", err)
	}
	if _, err := s.Delete("alpha", "k1", at); !errors.Is(err, ErrNoVolume) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestListOrderAndIDs(t *testing.T) {
	s := newService(t, 2)
	at := vclock.Time(vclock.Hour)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := s.Create(name, "k", 8, 0, at); err != nil {
			t.Fatal(err)
		}
	}
	infos := s.List()
	if len(infos) != 3 || infos[0].Name != "alpha" || infos[1].Name != "mid" || infos[2].Name != "zeta" {
		t.Fatalf("list order: %+v", infos)
	}
	// IDs are allocation-ordered and never reused.
	if infos[2].ID != 1 || infos[0].ID != 2 || infos[1].ID != 3 {
		t.Fatalf("ids: %+v", infos)
	}
	if _, err := s.Delete("mid", "k", at.Add(vclock.Second)); err != nil {
		t.Fatal(err)
	}
	v, err := s.Create("new", "k", 8, 0, at.Add(vclock.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if v.ID() != 4 {
		t.Fatalf("deleted id reused: %d", v.ID())
	}
	if got, ok := s.Lookup(v.ID()); !ok || got != v {
		t.Fatal("Lookup broken")
	}
	if _, ok := s.Lookup(3); ok {
		t.Fatal("Lookup found a deleted volume")
	}
}

// TestExtentReuseAndMerge drives the allocator: a freed extent is reused
// first-fit, and adjacent frees merge so a larger volume fits where two
// smaller ones sat.
func TestExtentReuseAndMerge(t *testing.T) {
	s := newService(t, 2)
	at := vclock.Time(vclock.Hour)
	a, err := s.Create("a", "k", 32, 0, at)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Create("b", "k", 32, 0, at)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Create("c", "k", 32, 0, at)
	if err != nil {
		t.Fatal(err)
	}
	if a.base != 0 || b.base != 32 || c.base != 64 {
		t.Fatalf("first-fit bases: %d %d %d", a.base, b.base, c.base)
	}

	if _, err := s.Delete("b", "k", at.Add(vclock.Second)); err != nil {
		t.Fatal(err)
	}
	d, err := s.Create("d", "k", 16, 0, at.Add(vclock.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if d.base != 32 {
		t.Fatalf("freed extent not reused first-fit: base %d", d.base)
	}

	// Free d and c — the three-way merge (d's remainder, d, c) must yield
	// one extent big enough for a 64-page volume at base 32.
	if _, err := s.Delete("d", "k", at.Add(2*vclock.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("c", "k", at.Add(3*vclock.Minute)); err != nil {
		t.Fatal(err)
	}
	e, err := s.Create("e", "k", 64, 0, at.Add(4*vclock.Minute))
	if err != nil {
		t.Fatalf("adjacent frees did not merge: %v", err)
	}
	if e.base != 32 {
		t.Fatalf("merged extent base %d, want 32", e.base)
	}
}

// TestRollBackIsolation is the acceptance bar for per-volume time travel:
// rolling one volume back leaves every other volume's version history
// byte-identical.
func TestRollBackIsolation(t *testing.T) {
	s := newService(t, 4)
	ps := s.arr.PageSize()
	at := vclock.Time(vclock.Hour)
	v0, err := s.Create("v0", "k", 24, 0, at)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := s.Create("v1", "k", 24, 0, at)
	if err != nil {
		t.Fatal(err)
	}

	// Interleaved histories: two generations on both volumes.
	t1, t2 := at.Add(vclock.Minute), at.Add(2*vclock.Minute)
	for lpa := uint64(0); lpa < 8; lpa++ {
		if _, err := v0.Write(lpa, pattern(0x10+byte(lpa), ps), t1); err != nil {
			t.Fatal(err)
		}
		if _, err := v1.Write(lpa, pattern(0x50+byte(lpa), ps), t1); err != nil {
			t.Fatal(err)
		}
	}
	for lpa := uint64(0); lpa < 8; lpa++ {
		if _, err := v0.Write(lpa, pattern(0x20+byte(lpa), ps), t2); err != nil {
			t.Fatal(err)
		}
		if _, err := v1.Write(lpa, pattern(0x60+byte(lpa), ps), t2); err != nil {
			t.Fatal(err)
		}
	}

	before, err := v1.History(0, 24, at.Add(3*vclock.Minute))
	if err != nil {
		t.Fatal(err)
	}

	res, err := v0.RollBack(t1.Add(vclock.Second), at.Add(4*vclock.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value == 0 {
		t.Fatal("rollback changed nothing")
	}

	after, err := v1.History(0, 24, at.Add(5*vclock.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before.Value, after.Value) {
		t.Fatalf("v1 history disturbed by v0 rollback:\nbefore %+v\nafter  %+v", before.Value, after.Value)
	}

	// v0 really travelled: its pages read generation 1 again.
	for lpa := uint64(0); lpa < 8; lpa++ {
		data, _, err := v0.Read(lpa, at.Add(6*vclock.Minute))
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != 0x10+byte(lpa) {
			t.Fatalf("v0 lpa %d = %#x after rollback, want %#x", lpa, data[0], 0x10+byte(lpa))
		}
		data, _, err = v1.Read(lpa, at.Add(6*vclock.Minute))
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != 0x60+byte(lpa) {
			t.Fatalf("v1 lpa %d = %#x, rollback leaked across volumes", lpa, data[0])
		}
	}
}

func TestRetentionGatesAndBound(t *testing.T) {
	s := newService(t, 2)
	at := vclock.Time(48 * vclock.Hour)
	if s.RetentionBound() != 0 {
		t.Fatalf("fresh bound %v", s.RetentionBound())
	}
	v6, err := s.Create("six", "k", 16, 6*vclock.Hour, at)
	if err != nil {
		t.Fatal(err)
	}
	if s.RetentionBound() != 6*vclock.Hour {
		t.Fatalf("bound %v, want 6h", s.RetentionBound())
	}
	if _, err := s.Create("twelve", "k", 16, 12*vclock.Hour, at); err != nil {
		t.Fatal(err)
	}
	if s.RetentionBound() != 12*vclock.Hour {
		t.Fatalf("bound %v, want 12h", s.RetentionBound())
	}
	if _, err := s.Delete("twelve", "k", at.Add(vclock.Second)); err != nil {
		t.Fatal(err)
	}
	if s.RetentionBound() != 6*vclock.Hour {
		t.Fatalf("bound after delete %v, want 6h", s.RetentionBound())
	}

	// Travel gates: inside the promise passes the volume gate, before the
	// promise or before creation fails typed.
	now := at.Add(10 * vclock.Hour)
	ws := v6.WindowStart(now)
	if want := now.Add(-6 * vclock.Hour); ws != want {
		t.Fatalf("window start %v, want %v", ws, want)
	}
	if _, err := v6.AddrQuery(0, 4, now.Add(-7*vclock.Hour), now); !errors.Is(err, ErrBeforeWindow) {
		t.Fatalf("pre-window query: %v", err)
	}
	if _, err := v6.RollBack(at.Add(-vclock.Second), now); !errors.Is(err, ErrBeforeWindow) {
		t.Fatalf("pre-creation rollback: %v", err)
	}
	if _, err := v6.Write(0, pattern(1, s.arr.PageSize()), at.Add(-vclock.Minute)); !errors.Is(err, ErrBeforeWindow) {
		t.Fatalf("write before creation: %v", err)
	}
	if _, err := s.Create("neg", "k", 8, -vclock.Hour, at); err == nil {
		t.Fatal("negative retention accepted")
	}
}

// TestRecycledExtentHidesPriorTenant: delete scrubs the extent and the
// next tenant's window clamp hides what history physically survives.
func TestRecycledExtentHidesPriorTenant(t *testing.T) {
	s := newService(t, 2)
	ps := s.arr.PageSize()
	at := vclock.Time(vclock.Hour)
	a, err := s.Create("a", "k", 16, 0, at)
	if err != nil {
		t.Fatal(err)
	}
	for lpa := uint64(0); lpa < 16; lpa++ {
		if _, err := a.Write(lpa, pattern(0xee, ps), at.Add(vclock.Second)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Delete("a", "k", at.Add(vclock.Minute)); err != nil {
		t.Fatal(err)
	}

	b, err := s.Create("b", "k2", 16, 0, at.Add(2*vclock.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if b.base != a.base {
		t.Fatalf("extent not recycled: %d vs %d", b.base, a.base)
	}
	// Current content: scrubbed (zero on read).
	data, _, err := b.Read(0, at.Add(3*vclock.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 0 {
		t.Fatalf("prior tenant's live data leaked: %#x", data[0])
	}
	// History: nothing from before b's creation is visible.
	res, err := b.History(0, 16, at.Add(3*vclock.Minute))
	if err != nil {
		t.Fatal(err)
	}
	for _, pv := range res.Value {
		for _, ver := range pv.Versions {
			if !ver.Live && ver.TS < b.createdAt {
				t.Fatalf("lpa %d: prior-tenant version at %v visible to new tenant", pv.LPA, ver.TS)
			}
		}
	}
}

func TestBatchPartialFailure(t *testing.T) {
	s := newService(t, 2)
	ps := s.arr.PageSize()
	at := vclock.Time(vclock.Hour)
	v, err := s.Create("v", "k", 16, 0, at)
	if err != nil {
		t.Fatal(err)
	}
	res := v.Batch([]BatchOp{
		{Kind: KindWrite, LPA: 1, Data: pattern(0x42, ps), At: at.Add(vclock.Second)},
		{Kind: KindWrite, LPA: 500, Data: pattern(1, ps), At: at.Add(vclock.Second)},
		{Kind: KindRead, LPA: 1, At: at.Add(2 * vclock.Second)},
		{Kind: OpKind(99), LPA: 0, At: at.Add(vclock.Second)},
		{Kind: KindRead, LPA: 2, At: at.Add(-vclock.Hour)},
		{Kind: KindTrim, LPA: 1, At: at.Add(3 * vclock.Second)},
	})
	if len(res) != 6 {
		t.Fatalf("%d results", len(res))
	}
	if res[0].Err != nil || res[2].Err != nil || res[5].Err != nil {
		t.Fatalf("good ops poisoned: %v %v %v", res[0].Err, res[2].Err, res[5].Err)
	}
	if !bytes.Equal(res[2].Data, pattern(0x42, ps)) {
		t.Fatal("batch read wrong data")
	}
	if !errors.Is(res[1].Err, ftl.ErrOutOfRange) {
		t.Fatalf("oob op: %v", res[1].Err)
	}
	if res[3].Err == nil {
		t.Fatal("unknown kind accepted")
	}
	if !errors.Is(res[4].Err, ErrBeforeWindow) {
		t.Fatalf("pre-creation op: %v", res[4].Err)
	}
}

func TestObsSnapshotCounts(t *testing.T) {
	s := newService(t, 2)
	s.SetObsEnabled(true)
	ps := s.arr.PageSize()
	at := vclock.Time(vclock.Hour)
	v, err := s.Create("v", "k", 16, 0, at)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		if _, err := v.Write(i, pattern(byte(i+1), ps), at.Add(vclock.Duration(i)*vclock.Second)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := v.Read(0, at.Add(vclock.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Trim(3, at.Add(2*vclock.Minute)); err != nil {
		t.Fatal(err)
	}
	v.Batch([]BatchOp{
		{Kind: KindRead, LPA: 1, At: at.Add(3 * vclock.Minute)},
		{Kind: KindWrite, LPA: 2, Data: pattern(9, ps), At: at.Add(3 * vclock.Minute)},
	})

	snap := v.Snapshot()
	if snap.C.HostPageWrites != 5 || snap.C.HostPageReads != 2 || snap.C.TrimOps != 1 {
		t.Fatalf("derived counters: %+v", snap.C)
	}
	if snap.Ops[obs.VolBatch.String()].Count != 1 {
		t.Fatalf("batch class count: %+v", snap.Ops[obs.VolBatch.String()])
	}
	merged := s.ObsSnapshot()
	if merged.C.HostPageWrites != 5 {
		t.Fatalf("merged counters: %+v", merged.C)
	}
}
