package service

import (
	"fmt"
	"sync/atomic"

	"almanac/internal/array"
	"almanac/internal/ftl"
	"almanac/internal/obs"
	"almanac/internal/timekits"
	"almanac/internal/vclock"
)

// Volume is one tenant's slice of the array: a contiguous extent of
// global LPAs addressed volume-relative (0 … Pages-1). The handle is
// shared by every attacher and safe for concurrent use; all I/O routes
// through the array's per-shard worker queues without any volume lock.
type Volume struct {
	svc       *Service
	id        uint32
	name      string
	key       string
	base      uint64
	pages     uint64
	retention vclock.Duration
	createdAt vclock.Time
	reg       *obs.Registry
	dead      atomic.Bool
}

// ID returns the volume's service-assigned id.
func (v *Volume) ID() uint32 { return v.id }

// Name returns the volume's name.
func (v *Volume) Name() string { return v.name }

// Pages returns the volume's capacity in logical pages.
func (v *Volume) Pages() uint64 { return v.pages }

// Info returns the volume's public description.
func (v *Volume) Info() Info {
	return Info{ID: v.id, Name: v.name, Pages: v.pages, Retention: v.retention, CreatedAt: v.createdAt}
}

// WindowStart returns the start of the volume's visible window as of
// virtual time at: the latest of the array's physical window, the
// volume's creation, and — when the volume carries a retention promise —
// at minus that promise. Travel (queries, rollback) earlier than this
// fails with ErrBeforeWindow.
func (v *Volume) WindowStart(at vclock.Time) vclock.Time {
	ws := v.svc.arr.RetentionWindowStart()
	if v.createdAt > ws {
		ws = v.createdAt
	}
	if v.retention > 0 {
		if cap := at.Add(-v.retention); cap > ws {
			ws = cap
		}
	}
	return ws
}

// gate rejects operations on deleted volumes and operations stamped
// before the volume existed (virtual time is caller-supplied; a volume
// cannot absorb I/O from before its own creation, which is also what
// keeps a recycled extent's previous tenant invisible).
func (v *Volume) gate(at vclock.Time) error {
	if v.dead.Load() {
		return fmt.Errorf("%w: %q deleted", ErrNoVolume, v.name)
	}
	if at < v.createdAt {
		return fmt.Errorf("%w: at %v precedes volume %q creation %v", ErrBeforeWindow, at, v.name, v.createdAt)
	}
	return nil
}

// checkLPA bounds a volume-relative address.
func (v *Volume) checkLPA(lpa uint64) error {
	if lpa >= v.pages {
		return fmt.Errorf("%w: lpa %d (volume %q has %d pages)", ftl.ErrOutOfRange, lpa, v.name, v.pages)
	}
	return nil
}

// gateTravel additionally bounds a time-travel target t by the visible
// window.
func (v *Volume) gateTravel(t, at vclock.Time) error {
	if err := v.gate(at); err != nil {
		return err
	}
	if ws := v.WindowStart(at); t < ws {
		return fmt.Errorf("%w: t %v precedes window start %v of volume %q", ErrBeforeWindow, t, ws, v.name)
	}
	return nil
}

// Read returns the current content of volume page lpa.
func (v *Volume) Read(lpa uint64, at vclock.Time) ([]byte, vclock.Time, error) {
	if err := v.gate(at); err != nil {
		return nil, at, err
	}
	if err := v.checkLPA(lpa); err != nil {
		return nil, at, err
	}
	ws := v.reg.Start()
	data, done, err := v.svc.arr.Read(v.base+lpa, at)
	v.reg.Record(obs.VolRead, lpa, int64(at), int64(done), ws, err == nil)
	return data, done, err
}

// Write stores a new version of volume page lpa.
func (v *Volume) Write(lpa uint64, data []byte, at vclock.Time) (vclock.Time, error) {
	if err := v.gate(at); err != nil {
		return at, err
	}
	if err := v.checkLPA(lpa); err != nil {
		return at, err
	}
	ws := v.reg.Start()
	done, err := v.svc.arr.Write(v.base+lpa, data, at)
	v.reg.Record(obs.VolWrite, lpa, int64(at), int64(done), ws, err == nil)
	return done, err
}

// Trim invalidates volume page lpa.
func (v *Volume) Trim(lpa uint64, at vclock.Time) (vclock.Time, error) {
	if err := v.gate(at); err != nil {
		return at, err
	}
	if err := v.checkLPA(lpa); err != nil {
		return at, err
	}
	ws := v.reg.Start()
	done, err := v.svc.arr.Trim(v.base+lpa, at)
	v.reg.Record(obs.VolTrim, lpa, int64(at), int64(done), ws, err == nil)
	return done, err
}

// OpKind identifies one operation inside a batch.
type OpKind uint8

// Batch operation kinds. The values are also the v4 wire encoding.
const (
	KindRead OpKind = iota + 1
	KindWrite
	KindTrim
)

// BatchOp is one operation of a multi-op batch.
type BatchOp struct {
	Kind OpKind
	LPA  uint64 // volume-relative
	Data []byte // write payload
	At   vclock.Time
}

// BatchResult is the per-op completion: a typed error for the ops that
// failed, data and virtual completion time for the ones that succeeded.
// One failing op never poisons its batch.
type BatchResult struct {
	Data []byte // read result
	Done vclock.Time
	Err  error
}

// BatchRun is the split form of Batch: StartBatch validates and submits
// every op to its shard queue in one pass, Complete collects the
// completions. The struct is reusable scratch — the protocol server
// keeps one per in-flight batch and recycles it, so a steady-state batch
// allocates nothing: the command slice holds Cmds by value and their
// completion channels survive reset (see array.Cmd). A BatchRun must not
// be touched between StartBatch and Complete, and the ops slice (with
// its write payloads) must stay valid until Complete returns.
type BatchRun struct {
	v     *Volume
	ops   []BatchOp
	out   []BatchResult
	cmds  []array.Cmd
	sub   []bool // cmds[i] was submitted and must be waited
	issue vclock.Time
}

// StartBatch begins executing ops with true cross-shard pipelining:
// every valid op is submitted to its shard queue before any completion
// is awaited, so ops landing on different shards execute concurrently
// while per-shard FIFO order preserves the submission order of ops that
// collide. r.Complete collects the results; they are positional —
// out[i] completes ops[i].
func (v *Volume) StartBatch(ops []BatchOp, r *BatchRun) {
	r.v = v
	r.ops = ops
	n := len(ops)
	if cap(r.out) < n {
		r.out = make([]BatchResult, n)
		r.cmds = make([]array.Cmd, n)
		r.sub = make([]bool, n)
	}
	r.out = r.out[:n]
	r.cmds = r.cmds[:n]
	r.sub = r.sub[:n]
	var issue vclock.Time
	for i, op := range ops {
		r.out[i] = BatchResult{Done: op.At}
		r.sub[i] = false
		if err := v.gate(op.At); err != nil {
			r.out[i].Err = err
			continue
		}
		if err := v.checkLPA(op.LPA); err != nil {
			r.out[i].Err = err
			continue
		}
		global := v.base + op.LPA
		cmd := &r.cmds[i]
		switch op.Kind {
		case KindRead:
			cmd.SetRead(global, op.At)
		case KindWrite:
			cmd.SetWrite(global, op.Data, op.At)
		case KindTrim:
			cmd.SetTrim(global, op.At)
		default:
			r.out[i].Err = fmt.Errorf("service: unknown batch op kind %d", op.Kind)
			continue
		}
		if i == 0 || op.At < issue {
			issue = op.At
		}
		if err := v.svc.arr.Submit(cmd); err != nil {
			r.out[i].Err = err
			continue
		}
		r.sub[i] = true
	}
	r.issue = issue
}

// Complete waits for every submitted op of the batch and returns the
// positional results. The returned slice is the run's scratch: it is
// valid until the next StartBatch on the same run, and read Data may
// alias device storage (copy before the next device operation if
// retained).
func (r *BatchRun) Complete() []BatchResult {
	v := r.v
	ws := v.reg.Start()
	ok := true
	done := vclock.Time(0)
	for i := range r.cmds {
		if !r.sub[i] {
			if r.out[i].Err != nil {
				ok = false
			}
			continue
		}
		cmd := &r.cmds[i]
		cmd.Wait()
		r.out[i] = BatchResult{Data: cmd.Out, Done: cmd.Done, Err: cmd.Err}
		v.observeOp(r.ops[i].Kind, r.ops[i].LPA, r.ops[i].At, cmd.Done, cmd.Err)
		if cmd.Err != nil {
			ok = false
		}
		if cmd.Done > done {
			done = cmd.Done
		}
	}
	if done < r.issue {
		done = r.issue
	}
	v.reg.Record(obs.VolBatch, uint64(len(r.ops)), int64(r.issue), int64(done), ws, ok)
	return r.out
}

// Batch executes ops and waits for them: StartBatch plus Complete over a
// throwaway run. Callers that issue batches repeatedly (the protocol
// server, fleet harnesses) should hold a BatchRun and use the split form
// to reuse the command scratch.
func (v *Volume) Batch(ops []BatchOp) []BatchResult {
	var r BatchRun
	v.StartBatch(ops, &r)
	return r.Complete()
}

func (v *Volume) observeOp(kind OpKind, lpa uint64, at, done vclock.Time, err error) {
	var c obs.Class
	switch kind {
	case KindRead:
		c = obs.VolRead
	case KindWrite:
		c = obs.VolWrite
	case KindTrim:
		c = obs.VolTrim
	default:
		return
	}
	v.reg.Record(c, lpa, int64(at), int64(done), 0, err == nil)
}

// AddrQuery returns, per volume page in [lpa, lpa+cnt), the version
// current at time t. LPAs in the result are volume-relative.
func (v *Volume) AddrQuery(lpa uint64, cnt int, t, at vclock.Time) (timekits.Result[[]timekits.PageVersions], error) {
	var zero timekits.Result[[]timekits.PageVersions]
	if err := v.gateTravel(t, at); err != nil {
		return zero, err
	}
	if err := v.checkQueryRange(lpa, cnt); err != nil {
		return zero, err
	}
	res, err := v.svc.arr.AddrQuery(v.base+lpa, cnt, t, at)
	return v.relocalize(res), err
}

// History returns every retained version of cnt volume pages from lpa,
// filtered to the volume's visible window: dead versions from before the
// window — including anything a previous tenant of the extent wrote —
// are dropped; the live version always survives (it is the current
// content regardless of age).
func (v *Volume) History(lpa uint64, cnt int, at vclock.Time) (timekits.Result[[]timekits.PageVersions], error) {
	var zero timekits.Result[[]timekits.PageVersions]
	if err := v.gate(at); err != nil {
		return zero, err
	}
	if err := v.checkQueryRange(lpa, cnt); err != nil {
		return zero, err
	}
	res, err := v.svc.arr.AddrQueryAll(v.base+lpa, cnt, at)
	if err != nil {
		return zero, err
	}
	ws := v.WindowStart(at)
	for i := range res.Value {
		kept := res.Value[i].Versions[:0]
		for _, ver := range res.Value[i].Versions {
			if ver.Live || ver.TS >= ws {
				kept = append(kept, ver)
			}
		}
		res.Value[i].Versions = kept
	}
	return v.relocalize(res), nil
}

// RollBack reverts the whole volume to its state at time t. Only this
// volume's extent is touched: every other volume's version history is
// byte-identical before and after.
func (v *Volume) RollBack(t, at vclock.Time) (timekits.Result[int], error) {
	if err := v.gateTravel(t, at); err != nil {
		return timekits.Result[int]{}, err
	}
	ws := v.reg.Start()
	res, err := v.svc.arr.RollBack(v.base, int(v.pages), t, at)
	v.reg.Record(obs.VolRollback, v.base, int64(at), int64(res.Done), ws, err == nil)
	return res, err
}

func (v *Volume) checkQueryRange(lpa uint64, cnt int) error {
	if cnt < 1 || uint64(cnt) > v.pages || lpa > v.pages-uint64(cnt) {
		return fmt.Errorf("%w: addr %d cnt %d (volume %q has %d pages)", timekits.ErrBadRange, lpa, cnt, v.name, v.pages)
	}
	return nil
}

// relocalize rewrites global LPAs in a query result back to
// volume-relative addresses.
func (v *Volume) relocalize(res timekits.Result[[]timekits.PageVersions]) timekits.Result[[]timekits.PageVersions] {
	for i := range res.Value {
		res.Value[i].LPA -= v.base
	}
	return res
}

// Snapshot returns the volume's observability snapshot: the vol-* class
// histograms plus counters derived from them. WindowStartNS is the
// volume's visible window floor independent of any in-flight operation
// (creation time or the physical window, whichever is later; the
// retention-promise clamp needs an `at` and is reported by WindowStart).
func (v *Volume) Snapshot() obs.Snapshot {
	ops := v.reg.Ops()
	ws := v.svc.arr.RetentionWindowStart()
	if v.createdAt > ws {
		ws = v.createdAt
	}
	var c obs.Counters
	c.HostPageReads = ops[obs.VolRead.String()].Count
	c.HostPageWrites = ops[obs.VolWrite.String()].Count
	c.TrimOps = ops[obs.VolTrim.String()].Count
	return obs.Snapshot{
		Shards:        1,
		WindowStartNS: int64(ws),
		C:             c,
		Ops:           ops,
	}
}
