package almaproto

import (
	"encoding/binary"
	"io"
	"net"
	"sync"

	"almanac/internal/obs"
)

// Frame-buffer pooling for the v4 data path. The tagged transport moves a
// frame per request and a frame per completion; allocating each one
// (64 KB batch frames on the hot path) made the garbage collector the
// bottleneck of the wire path. A framePool is an explicit generation-
// tagged free list — the same discipline as lzf.Compressor and the core's
// flat refcache — so steady-state framing allocates nothing and the
// AllocsPerRun pins stay deterministic (a sync.Pool can be emptied by any
// GC cycle mid-run).
//
// Lifecycle: acquire leases a buffer, release returns it. A release bumps
// the buffer's generation, so a holder that recorded the generation at
// acquire time can detect use-after-release (fb.stale), and a double
// release panics instead of corrupting the free list with an aliased
// buffer.

// frameBuf is one pooled frame: a length-prefixed wire frame or a frame
// body, depending on the path. The backing array is retained across
// reuse, so a connection's buffers grow to its frame sizes once and then
// recycle.
type frameBuf struct {
	b    []byte
	gen  uint32
	free bool
}

// stale reports whether the buffer has been released (and possibly
// re-leased) since the caller recorded gen.
func (fb *frameBuf) stale(gen uint32) bool { return fb.gen != gen || fb.free }

// framePool is a mutex-guarded free list of frame buffers. Pools are
// per-connection (or per-client direction), so the mutex is uncontended
// relative to the I/O it amortises.
type framePool struct {
	mu   sync.Mutex
	free []*frameBuf
}

// acquire leases a buffer with len(b) == n, allocating only when the free
// list is empty or the recycled buffer is too small.
func (p *framePool) acquire(n int) *frameBuf {
	p.mu.Lock()
	var fb *frameBuf
	if k := len(p.free); k > 0 {
		fb = p.free[k-1]
		p.free[k-1] = nil
		p.free = p.free[:k-1]
	}
	p.mu.Unlock()
	if fb == nil {
		fb = &frameBuf{}
	}
	fb.free = false
	if cap(fb.b) < n {
		fb.b = make([]byte, n)
	}
	fb.b = fb.b[:n]
	return fb
}

// release returns a leased buffer to the free list. The caller must not
// touch fb.b afterwards — the next acquire hands the same storage to
// someone else. Releasing twice panics: a doubly-listed buffer would be
// leased to two holders at once.
func (p *framePool) release(fb *frameBuf) {
	if fb.free {
		panic("almaproto: frame buffer released twice")
	}
	fb.free = true
	fb.gen++
	p.mu.Lock()
	p.free = append(p.free, fb)
	p.mu.Unlock()
}

// readFrameInto reads one length-prefixed frame body into a pooled
// buffer. On error nothing stays leased.
func readFrameInto(r io.Reader, p *framePool, wire *obs.WireStats) (*frameBuf, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, ErrFrameTooLarge
	}
	fb := p.acquire(int(n))
	if _, err := io.ReadFull(r, fb.b); err != nil {
		p.release(fb)
		return nil, err
	}
	wire.RecordRead(4 + int(n))
	return fb, nil
}

// coalesceLimit bounds the flattening copy of a multi-frame flush: below
// it, queued frames are memcpy'd into one contiguous buffer and issued as
// a single Write (one syscall on TCP, one rendezvous on net.Pipe); above
// it the copy would cost more than the write it saves, so the flush falls
// back to a vectored net.Buffers write (writev on TCP).
const coalesceLimit = 64 << 10

// flushFrames writes the queued frames — each already a complete
// length-prefixed wire frame — in as few Writes as possible. scratch and
// bufs are caller-owned reusable backing so a steady-state flush
// allocates nothing.
func flushFrames(conn io.Writer, frames []*frameBuf, scratch *[]byte, bufs *net.Buffers, wire *obs.WireStats) error {
	if len(frames) == 0 {
		return nil
	}
	if len(frames) == 1 {
		wire.RecordFlush(1, len(frames[0].b))
		_, err := conn.Write(frames[0].b)
		return err
	}
	total := 0
	for _, fb := range frames {
		total += len(fb.b)
	}
	if total <= coalesceLimit {
		out := (*scratch)[:0]
		for _, fb := range frames {
			out = append(out, fb.b...)
		}
		*scratch = out
		wire.RecordFlush(len(frames), total)
		_, err := conn.Write(out)
		return err
	}
	nb := (*bufs)[:0]
	for _, fb := range frames {
		nb = append(nb, fb.b)
	}
	wire.RecordFlush(len(frames), total)
	// WriteTo consumes the slice; keep the backing array for reuse.
	_, err := nb.WriteTo(conn)
	*bufs = nb[:0]
	return err
}
