package almaproto

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"almanac/internal/vclock"
)

// writeGatedBackend stalls every Write until the gate opens, so tests can pin
// submissions in flight on the server side.
type writeGatedBackend struct {
	Backend
	gate chan struct{}
}

func (g *writeGatedBackend) Write(lpa uint64, data []byte, at vclock.Time) (vclock.Time, error) {
	<-g.gate
	return g.Backend.Write(lpa, data, at)
}

// gatedPair wires a client to a server whose writes block on the returned
// release func and whose v4 window is capped at window.
func gatedPair(t *testing.T, window int) (*Client, net.Conn, func()) {
	t.Helper()
	dev := newDevice(t)
	srv := NewServer(dev)
	gate := make(chan struct{})
	srv.backend = &writeGatedBackend{Backend: srv.backend, gate: gate}
	srv.window = window
	cliEnd, srvEnd := net.Pipe()
	go srv.ServeOne(srvEnd)
	c := NewClient(cliEnd)
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	t.Cleanup(func() { release(); c.Close(); srvEnd.Close() })
	return c, srvEnd, release
}

// TestPipelineWindowExhaustion fills the advertised in-flight window and
// checks the submitter blocks — and then drains cleanly once completions
// flow — instead of over-submitting or wedging.
func TestPipelineWindowExhaustion(t *testing.T) {
	c, _, release := gatedPair(t, 2)
	id, err := c.Identify()
	if err != nil {
		t.Fatal(err)
	}
	if id.Window != 2 {
		t.Fatalf("advertised window = %d, want 2", id.Window)
	}
	p, err := c.NewPipeline(0)
	if err != nil {
		t.Fatal(err)
	}
	h := vclock.Time(vclock.Second)
	for lpa := uint64(0); lpa < 2; lpa++ {
		if err := p.Write(lpa, page(c, byte(lpa), id.PageSize), h); err != nil {
			t.Fatalf("write %d inside the window: %v", lpa, err)
		}
	}
	third := make(chan error, 1)
	go func() { third <- p.Write(2, page(c, 2, id.PageSize), h) }()
	select {
	case err := <-third:
		t.Fatalf("third write returned (%v) while the window was full", err)
	case <-time.After(100 * time.Millisecond):
	}
	release()
	select {
	case err := <-third:
		if err != nil {
			t.Fatalf("third write after release: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("third write still blocked after the gate opened")
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	for lpa := uint64(0); lpa < 3; lpa++ {
		data, _, err := c.Read(lpa, h+vclock.Time(vclock.Second))
		if err != nil {
			t.Fatalf("readback %d: %v", lpa, err)
		}
		if data[0] != byte(lpa) {
			t.Fatalf("readback %d: got %#x", lpa, data[0])
		}
	}
}

// TestPipelineServerCloseMidFlight kills the server connection while the
// window is full and a submitter is blocked on it: the blocked call, the
// flush, and every later submission must all fail fast with ErrConnClosed
// rather than hang.
func TestPipelineServerCloseMidFlight(t *testing.T) {
	c, srvEnd, _ := gatedPair(t, 2)
	id, err := c.Identify()
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.NewPipeline(0)
	if err != nil {
		t.Fatal(err)
	}
	h := vclock.Time(vclock.Second)
	for lpa := uint64(0); lpa < 2; lpa++ {
		if err := p.Write(lpa, page(c, byte(lpa), id.PageSize), h); err != nil {
			t.Fatalf("write %d inside the window: %v", lpa, err)
		}
	}
	third := make(chan error, 1)
	go func() { third <- p.Write(2, page(c, 2, id.PageSize), h) }()

	srvEnd.Close()
	select {
	case err := <-third:
		if !errors.Is(err, ErrConnClosed) {
			t.Fatalf("blocked write after server close: %v, want ErrConnClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("blocked write hung after server close")
	}
	if err := p.Flush(); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("flush after server close: %v, want ErrConnClosed", err)
	}
	if _, err := c.SubmitWrite(3, page(c, 3, id.PageSize), h); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("submit after server close: %v, want ErrConnClosed", err)
	}
}

// TestClientCloseDuringCoalescedFlush closes the client while its writer
// goroutine is blocked mid-flush (the peer never reads, so the pipe Write
// parks) with more frames queued behind the stuck one. Close must
// unblock the flush, every in-flight Wait must surface a typed
// ErrConnClosed, and Close itself must return instead of waiting on the
// wedged writer.
func TestClientCloseDuringCoalescedFlush(t *testing.T) {
	cliEnd, srvEnd := net.Pipe()
	defer srvEnd.Close()
	c := NewClient(cliEnd)
	// White-box: skip Identify (there is no server) and force the tagged
	// transport on directly.
	c.mu.Lock()
	c.version = CurrentVersion
	c.mu.Unlock()
	c.enableTagged()

	h := vclock.Time(vclock.Second)
	data := make([]byte, 512)
	var pends []*PendingWrite
	for lpa := uint64(0); lpa < 8; lpa++ {
		w, err := c.SubmitWrite(lpa, data, h)
		if err != nil {
			t.Fatalf("submit %d: %v", lpa, err)
		}
		pends = append(pends, w)
	}
	// Let the writer park inside the pipe Write with the rest of the
	// frames queued for the next coalesced flush.
	time.Sleep(20 * time.Millisecond)

	closed := make(chan error, 1)
	go func() { closed <- c.Close() }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on the mid-flush writer")
	}
	for i, w := range pends {
		done := make(chan error, 1)
		go func() {
			_, err := w.Wait()
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, ErrConnClosed) {
				t.Fatalf("wait %d after close: %v, want ErrConnClosed", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("wait %d hung after close", i)
		}
	}
	if _, err := c.SubmitWrite(9, data, h); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("submit after close: %v, want ErrConnClosed", err)
	}
}

// TestSubmitWaitServerClose pins the bare Submit/Wait surface: a Wait on
// an in-flight submission reports ErrConnClosed when the peer vanishes.
func TestSubmitWaitServerClose(t *testing.T) {
	c, srvEnd, _ := gatedPair(t, 4)
	id, err := c.Identify()
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.SubmitWrite(0, page(c, 1, id.PageSize), vclock.Time(vclock.Second))
	if err != nil {
		t.Fatal(err)
	}
	srvEnd.Close()
	done := make(chan error, 1)
	go func() {
		_, err := w.Wait()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrConnClosed) {
			t.Fatalf("wait after server close: %v, want ErrConnClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("wait hung after server close")
	}
}
