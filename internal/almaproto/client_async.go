package almaproto

import (
	"encoding/binary"
	"fmt"
	"sync"

	"almanac/internal/obs"
	"almanac/internal/service"
	"almanac/internal/vclock"
)

// Tagged (v4) client transport: submissions carry a client-chosen request
// ID, a reader goroutine demuxes completions — which arrive in whatever
// order the backend finishes them — to their submitters, and the typed
// Submit*/Wait surface plus the Pipeline helper expose the pipelining to
// callers. Synchronous methods keep working unchanged: roundTrip submits
// and waits when the connection is tagged.
//
// The data path is pooled and coalesced end to end: request frames are
// built header-first in pooled buffers, handed to a dedicated writer
// goroutine that drains every queued frame into a single Write per
// wakeup, and recycled once flushed; response frames are read into a
// second pool, decoded in place by the typed Waits, and recycled there.
// Steady-state submission therefore allocates nothing on the transport.

// taggedResp is one demuxed completion: a positioned decoder aliasing
// the pooled response frame on success, the typed failure otherwise.
// Whoever consumes a successful response releases fb (typed Waits do;
// the sync roundTrip path deliberately leaves its frame to the GC
// because decoded slices may escape to the application).
type taggedResp struct {
	d   dec
	fb  *frameBuf
	err error
}

// rawPending is one in-flight tagged submission. Pendings (and their
// completion channels) are recycled through Client.pfree: exactly one
// taggedResp is ever sent per lease — demux removes the channel from the
// pending map before sending, and failPending swaps the whole map — so
// once wait consumes it the pending is clean for reuse.
type rawPending struct {
	c  *Client
	ch chan taggedResp
}

// wait blocks for the completion and recycles the pending.
func (p *rawPending) wait() taggedResp {
	r := <-p.ch
	c := p.c
	c.pmu.Lock()
	c.pfree = append(c.pfree, p)
	c.pmu.Unlock()
	return r
}

// enableTagged flips the connection to the tagged transport (idempotent)
// and starts the demux reader plus the coalescing writer. Called by
// Identify once v4 is agreed.
func (c *Client) enableTagged() {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.tagged {
		return
	}
	c.tagged = true
	c.nextID = 1
	c.pend = make(map[uint64]chan taggedResp)
	c.wwake = make(chan struct{}, 1)
	c.wdone = make(chan struct{})
	go c.demux()
	go c.writeLoop()
}

// demux owns the read side of a tagged connection: it routes every
// completion to its submitter by request ID and, on transport failure,
// fails every outstanding submission with the same error and shuts the
// writer down.
func (c *Client) demux() {
	for {
		fb, err := readFrameInto(c.conn, &c.respPool, nil)
		if err != nil {
			c.failPending(fmt.Errorf("%w: %w", ErrConnClosed, err))
			go c.stopWriter()
			return
		}
		body := fb.b
		if len(body) < 9 { // u64 reqID + u8 status minimum
			c.respPool.release(fb)
			c.failPending(fmt.Errorf("almaproto: tagged completion of %d bytes: %w", len(body), ErrShortPayload))
			go c.stopWriter()
			return
		}
		reqID := binary.LittleEndian.Uint64(body)
		c.pmu.Lock()
		ch := c.pend[reqID]
		delete(c.pend, reqID)
		c.pmu.Unlock()
		if ch == nil {
			c.respPool.release(fb)
			continue // completion for an abandoned submission
		}
		d := dec{b: body, pos: 8}
		if status := d.u8(); status != StatusOK {
			msg := string(d.bytes())
			c.respPool.release(fb)
			ch <- taggedResp{err: &RemoteError{Msg: msg, Code: status}}
			continue
		}
		ch <- taggedResp{d: d, fb: fb}
	}
}

func (c *Client) failPending(err error) {
	c.pmu.Lock()
	pend := c.pend
	c.pend = make(map[uint64]chan taggedResp)
	if c.readErr == nil {
		c.readErr = err
	}
	c.pmu.Unlock()
	for _, ch := range pend {
		ch <- taggedResp{err: err}
	}
}

// newRequest leases a request frame and returns an encoder positioned
// past the 12-byte header (u32 frame length + u64 request ID, both
// patched by submitFrame) with the opcode already written. The encoder
// may grow past the frame's capacity, so callers must hand e.b back via
// submitFrame rather than touching fb.b directly.
func (c *Client) newRequest(op Op) (*frameBuf, enc) {
	fb := c.reqPool.acquire(12)
	e := enc{b: fb.b[:12]}
	e.u8(uint8(op))
	return fb, e
}

// submitFrame registers a pending completion for the built frame, stamps
// its header, and hands it to the writer goroutine. The frame is owned
// by the transport from here on: the writer releases it after the flush.
func (c *Client) submitFrame(fb *frameBuf, body []byte) (*rawPending, error) {
	fb.b = body
	binary.LittleEndian.PutUint32(fb.b, uint32(len(fb.b)-4))
	c.pmu.Lock()
	if !c.tagged {
		c.pmu.Unlock()
		c.reqPool.release(fb)
		return nil, fmt.Errorf("almaproto: submit on an untagged connection")
	}
	if c.readErr != nil {
		err := c.readErr
		c.pmu.Unlock()
		c.reqPool.release(fb)
		return nil, err
	}
	reqID := c.nextID
	c.nextID++
	var p *rawPending
	if k := len(c.pfree); k > 0 {
		p = c.pfree[k-1]
		c.pfree[k-1] = nil
		c.pfree = c.pfree[:k-1]
	} else {
		p = &rawPending{c: c, ch: make(chan taggedResp, 1)}
	}
	c.pend[reqID] = p.ch
	c.pmu.Unlock()
	binary.LittleEndian.PutUint64(fb.b[4:], reqID)

	if !c.enqueueWrite(fb) {
		// Connection closed under us. failPending may already have taken
		// our channel (and will send to it); only recycle the pending if
		// the registration is still ours to remove.
		c.reqPool.release(fb)
		c.pmu.Lock()
		if _, ok := c.pend[reqID]; ok {
			delete(c.pend, reqID)
			c.pfree = append(c.pfree, p)
		}
		err := c.readErr
		c.pmu.Unlock()
		if err == nil {
			err = ErrConnClosed
		}
		return nil, err
	}
	return p, nil
}

// submit sends one tagged request body (without header) and returns the
// pending completion. Hot paths build frames in place via newRequest;
// this copying form serves the synchronous methods.
func (c *Client) submit(body []byte) (*rawPending, error) {
	fb := c.reqPool.acquire(12 + len(body))
	copy(fb.b[12:], body)
	return c.submitFrame(fb, fb.b)
}

// enqueueWrite queues a built frame for the writer goroutine, sending
// the wake token outside wmu on the false→true signal edge. Returns
// false (without queueing) once the writer has been stopped.
func (c *Client) enqueueWrite(fb *frameBuf) bool {
	c.wmu.Lock()
	if c.wclosed {
		c.wmu.Unlock()
		return false
	}
	c.wq = append(c.wq, fb)
	wake := !c.wsignal
	c.wsignal = true
	c.wmu.Unlock()
	if wake {
		c.wwake <- struct{}{}
	}
	return true
}

// stopWriter asks the writer goroutine to exit once its queue is drained
// and waits for it. Idempotent; a no-op on untagged connections.
func (c *Client) stopWriter() {
	c.pmu.Lock()
	started := c.tagged
	c.pmu.Unlock()
	if !started {
		return
	}
	c.wmu.Lock()
	c.wclosed = true
	wake := !c.wsignal
	c.wsignal = true
	c.wmu.Unlock()
	if wake {
		c.wwake <- struct{}{}
	}
	<-c.wdone
}

// writeLoop is the connection's writer goroutine: it drains every frame
// queued since the last wakeup and flushes them with a single Write
// (coalesced) whenever they fit, then recycles the frames. A flush
// failure fails every in-flight submission with a typed ErrConnClosed
// and later frames are drained without writing, so submitters never
// hang on a dead connection.
func (c *Client) writeLoop() {
	defer close(c.wdone)
	for range c.wwake {
		for {
			c.wmu.Lock()
			if len(c.wq) == 0 {
				c.wsignal = false
				closed := c.wclosed
				c.wmu.Unlock()
				if closed {
					return
				}
				break
			}
			c.wbatch = append(c.wbatch[:0], c.wq...)
			for i := range c.wq {
				c.wq[i] = nil
			}
			c.wq = c.wq[:0]
			c.wmu.Unlock()
			if c.werr == nil {
				if err := flushFrames(c.conn, c.wbatch, &c.wscratch, &c.wbufs, nil); err != nil {
					c.werr = err
					c.failPending(fmt.Errorf("%w: %w", ErrConnClosed, err))
				}
			}
			for i, fb := range c.wbatch {
				c.reqPool.release(fb)
				c.wbatch[i] = nil
			}
		}
	}
}

// ensureTagged negotiates if needed and confirms the connection speaks
// the tagged transport.
func (c *Client) ensureTagged(op Op) error {
	v, err := c.negotiated()
	if err != nil {
		return err
	}
	c.pmu.Lock()
	on := c.tagged
	c.pmu.Unlock()
	if !on {
		return fmt.Errorf("almaproto: %v requires protocol v%d, server negotiated v%d", op, VersionService, v)
	}
	return nil
}

// Window returns the server-advertised in-flight window (0 before a v4
// Identify).
func (c *Client) Window() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.window
}

// ---- typed async submissions ----------------------------------------------

// PendingRead is an in-flight read submission.
type PendingRead struct{ p *rawPending }

// SubmitRead pipelines a read of lpa; Wait collects the completion.
func (c *Client) SubmitRead(lpa uint64, at vclock.Time) (*PendingRead, error) {
	if err := c.ensureTagged(OpRead); err != nil {
		return nil, err
	}
	fb, e := c.newRequest(OpRead)
	e.u64(lpa)
	e.time(at)
	p, err := c.submitFrame(fb, e.b)
	if err != nil {
		return nil, err
	}
	return &PendingRead{p: p}, nil
}

// Wait blocks until the read completes. The returned data is the
// caller's (copied out of the pooled response frame).
func (r *PendingRead) Wait() ([]byte, vclock.Time, error) {
	c := r.p.c
	resp := r.p.wait()
	if resp.err != nil {
		return nil, 0, resp.err
	}
	d := &resp.d
	done := d.time()
	data := append([]byte(nil), d.bytes()...)
	err := d.err
	c.respPool.release(resp.fb)
	return data, done, err
}

// PendingWrite is an in-flight write submission.
type PendingWrite struct{ p *rawPending }

// SubmitWrite pipelines a write to lpa; Wait collects the completion.
// data is copied into the request frame before SubmitWrite returns.
func (c *Client) SubmitWrite(lpa uint64, data []byte, at vclock.Time) (*PendingWrite, error) {
	if err := c.ensureTagged(OpWrite); err != nil {
		return nil, err
	}
	fb, e := c.newRequest(OpWrite)
	e.u64(lpa)
	e.time(at)
	e.bytes(data)
	p, err := c.submitFrame(fb, e.b)
	if err != nil {
		return nil, err
	}
	return &PendingWrite{p: p}, nil
}

// Wait blocks until the write completes.
func (w *PendingWrite) Wait() (vclock.Time, error) {
	c := w.p.c
	resp := w.p.wait()
	if resp.err != nil {
		return 0, resp.err
	}
	d := &resp.d
	done := d.time()
	err := d.err
	c.respPool.release(resp.fb)
	return done, err
}

// PendingTrim is an in-flight trim submission.
type PendingTrim struct{ p *rawPending }

// SubmitTrim pipelines a trim of lpa; Wait collects the completion.
func (c *Client) SubmitTrim(lpa uint64, at vclock.Time) (*PendingTrim, error) {
	if err := c.ensureTagged(OpTrim); err != nil {
		return nil, err
	}
	fb, e := c.newRequest(OpTrim)
	e.u64(lpa)
	e.time(at)
	p, err := c.submitFrame(fb, e.b)
	if err != nil {
		return nil, err
	}
	return &PendingTrim{p: p}, nil
}

// Wait blocks until the trim completes.
func (t *PendingTrim) Wait() (vclock.Time, error) {
	c := t.p.c
	resp := t.p.wait()
	if resp.err != nil {
		return 0, resp.err
	}
	d := &resp.d
	done := d.time()
	err := d.err
	c.respPool.release(resp.fb)
	return done, err
}

// PendingBatch is an in-flight multi-op batch submission.
type PendingBatch struct {
	p     *rawPending
	kinds []service.OpKind
}

// SubmitBatch pipelines a multi-op batch against an attached volume.
// Results are positional and per-op: one failing op surfaces as that
// slot's typed error without failing the batch or the ops around it.
func (c *Client) SubmitBatch(volID uint32, ops []service.BatchOp) (*PendingBatch, error) {
	if err := c.ensureTagged(OpBatch); err != nil {
		return nil, err
	}
	fb, e := c.newRequest(OpBatch)
	e.u32(volID)
	e.u32(uint32(len(ops)))
	kinds := make([]service.OpKind, len(ops))
	for i, op := range ops {
		kinds[i] = op.Kind
		e.u8(uint8(op.Kind))
		e.u64(op.LPA)
		e.time(op.At)
		if op.Kind == service.KindWrite {
			e.bytes(op.Data)
		}
	}
	p, err := c.submitFrame(fb, e.b)
	if err != nil {
		return nil, err
	}
	return &PendingBatch{p: p, kinds: kinds}, nil
}

// Wait blocks until every op of the batch has completed. Read data is
// the caller's (copied out of the pooled response frame).
func (b *PendingBatch) Wait() ([]service.BatchResult, error) {
	c := b.p.c
	resp := b.p.wait()
	if resp.err != nil {
		return nil, resp.err
	}
	d := &resp.d
	release := func() {
		c.respPool.release(resp.fb)
	}
	n := int(d.u32())
	if n != len(b.kinds) {
		release()
		return nil, fmt.Errorf("almaproto: batch returned %d results for %d ops", n, len(b.kinds))
	}
	out := make([]service.BatchResult, n)
	for i := 0; i < n; i++ {
		status := d.u8()
		if d.err != nil {
			release()
			return nil, d.err
		}
		if status != StatusOK {
			out[i].Err = &RemoteError{Msg: string(d.bytes()), Code: status}
			continue
		}
		out[i].Done = d.time()
		if b.kinds[i] == service.KindRead {
			out[i].Data = append([]byte(nil), d.bytes()...)
		}
	}
	err := d.err
	release()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Batch submits a batch and waits for it.
func (c *Client) Batch(volID uint32, ops []service.BatchOp) ([]service.BatchResult, error) {
	p, err := c.SubmitBatch(volID, ops)
	if err != nil {
		return nil, err
	}
	return p.Wait()
}

// ---- volume management -----------------------------------------------------

// VolumeInfo is the wire description of one volume. WindowStart is only
// populated by VolAttach (it depends on the attach time).
type VolumeInfo struct {
	ID          uint32
	Name        string
	Pages       uint64
	Retention   vclock.Duration
	CreatedAt   vclock.Time
	WindowStart vclock.Time
}

// VolCreate creates a named volume of pages logical pages protected by
// key, with a per-volume retention promise (0 accepts the device
// default). at stamps the creation in virtual time.
func (c *Client) VolCreate(name, key string, pages uint64, retention vclock.Duration, at vclock.Time) (VolumeInfo, error) {
	if err := c.requireVersion(VersionService, OpVolCreate); err != nil {
		return VolumeInfo{}, err
	}
	e := request(OpVolCreate)
	e.bytes([]byte(name))
	e.bytes([]byte(key))
	e.u64(pages)
	e.i64(int64(retention))
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return VolumeInfo{}, err
	}
	in := VolumeInfo{ID: d.u32(), Name: name, Pages: pages, Retention: retention, CreatedAt: at}
	return in, d.err
}

// VolDelete authenticates and deletes a volume; the returned time is the
// virtual completion of the extent scrub.
func (c *Client) VolDelete(name, key string, at vclock.Time) (vclock.Time, error) {
	if err := c.requireVersion(VersionService, OpVolDelete); err != nil {
		return at, err
	}
	e := request(OpVolDelete)
	e.bytes([]byte(name))
	e.bytes([]byte(key))
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return at, err
	}
	done := d.time()
	return done, d.err
}

// VolList describes every volume, in name order.
func (c *Client) VolList() ([]VolumeInfo, error) {
	if err := c.requireVersion(VersionService, OpVolList); err != nil {
		return nil, err
	}
	d, err := c.roundTrip(request(OpVolList).b)
	if err != nil {
		return nil, err
	}
	n := int(d.u32())
	if d.err != nil || n > maxFrame/16 {
		return nil, ErrShortPayload
	}
	out := make([]VolumeInfo, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		in := VolumeInfo{ID: d.u32(), Name: string(d.bytes()), Pages: d.u64()}
		in.Retention = vclock.Duration(d.i64())
		in.CreatedAt = d.time()
		if d.err != nil {
			return nil, d.err
		}
		out = append(out, in)
	}
	return out, nil
}

// VolAttach authenticates against a named volume, binding its id to this
// connection for Batch/VolRollBack/VolStats. at is the attach time used
// to report the volume's current visible window start.
func (c *Client) VolAttach(name, key string, at vclock.Time) (VolumeInfo, error) {
	if err := c.requireVersion(VersionService, OpVolAttach); err != nil {
		return VolumeInfo{}, err
	}
	e := request(OpVolAttach)
	e.bytes([]byte(name))
	e.bytes([]byte(key))
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return VolumeInfo{}, err
	}
	in := VolumeInfo{ID: d.u32(), Name: name, Pages: d.u64()}
	in.Retention = vclock.Duration(d.i64())
	in.CreatedAt = d.time()
	in.WindowStart = d.time()
	return in, d.err
}

// VolStats fetches the per-volume observability snapshot of an attached
// volume.
func (c *Client) VolStats(volID uint32) (obs.Snapshot, error) {
	if err := c.requireVersion(VersionService, OpVolStats); err != nil {
		return obs.Snapshot{}, err
	}
	e := request(OpVolStats)
	e.u32(volID)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return obs.Snapshot{}, err
	}
	s := decSnapshot(d)
	return s, d.err
}

// VolRollBack reverts an attached volume to its state at time t. Other
// volumes are untouched.
func (c *Client) VolRollBack(volID uint32, t, at vclock.Time) (int, vclock.Time, error) {
	if err := c.requireVersion(VersionService, OpVolRollBack); err != nil {
		return 0, at, err
	}
	e := request(OpVolRollBack)
	e.u32(volID)
	e.time(t)
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return 0, at, err
	}
	done := d.time()
	changed := int(d.u32())
	return changed, done, d.err
}

// ---- pipeline --------------------------------------------------------------

// Pipeline keeps a bounded number of submissions in flight on a tagged
// connection: each Read/Write/Trim call submits immediately and blocks
// only when the window is full, completions are collected by per-op
// goroutines as they arrive (in any order), and Flush waits for the tail.
// The first error is sticky: it fails the pipeline and every later call.
// Read completion callbacks run on collector goroutines — they must be
// safe to call concurrently. A Pipeline is safe for use from one
// submitting goroutine.
type Pipeline struct {
	c     *Client
	slots chan struct{}
	wg    sync.WaitGroup

	mu  sync.Mutex
	err error
}

// NewPipeline builds a pipeline over the client's tagged connection.
// window <= 0 uses the server-advertised in-flight window.
func (c *Client) NewPipeline(window int) (*Pipeline, error) {
	if err := c.ensureTagged(OpBatch); err != nil {
		return nil, err
	}
	if window <= 0 {
		window = c.Window()
	}
	if window <= 0 {
		window = DefaultWindow
	}
	return &Pipeline{c: c, slots: make(chan struct{}, window)}, nil
}

func (p *Pipeline) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// Err returns the pipeline's sticky error.
func (p *Pipeline) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// acquire takes a window slot unless the pipeline already failed.
func (p *Pipeline) acquire() error {
	if err := p.Err(); err != nil {
		return err
	}
	p.slots <- struct{}{}
	return nil
}

// collect spawns the completion collector for one submission.
func collect[T any](p *Pipeline, wait func() (T, error), fn func(T, error)) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		v, err := wait()
		if err != nil {
			p.fail(err)
		}
		if fn != nil {
			fn(v, err)
		}
		<-p.slots
	}()
}

// Write pipelines a write; completion errors surface through Flush.
func (p *Pipeline) Write(lpa uint64, data []byte, at vclock.Time) error {
	if err := p.acquire(); err != nil {
		return err
	}
	w, err := p.c.SubmitWrite(lpa, data, at)
	if err != nil {
		<-p.slots
		p.fail(err)
		return err
	}
	collect(p, w.Wait, nil)
	return nil
}

// ReadResult is one pipelined read completion.
type ReadResult struct {
	Data []byte
	Done vclock.Time
}

// Read pipelines a read; fn (optional) receives the completion on a
// collector goroutine.
func (p *Pipeline) Read(lpa uint64, at vclock.Time, fn func(ReadResult, error)) error {
	if err := p.acquire(); err != nil {
		return err
	}
	r, err := p.c.SubmitRead(lpa, at)
	if err != nil {
		<-p.slots
		p.fail(err)
		return err
	}
	collect(p, func() (ReadResult, error) {
		data, done, err := r.Wait()
		return ReadResult{Data: data, Done: done}, err
	}, fn)
	return nil
}

// Trim pipelines a trim; completion errors surface through Flush.
func (p *Pipeline) Trim(lpa uint64, at vclock.Time) error {
	if err := p.acquire(); err != nil {
		return err
	}
	t, err := p.c.SubmitTrim(lpa, at)
	if err != nil {
		<-p.slots
		p.fail(err)
		return err
	}
	collect(p, t.Wait, nil)
	return nil
}

// Flush waits for every in-flight submission and returns the pipeline's
// first error. The pipeline remains usable after a clean Flush.
func (p *Pipeline) Flush() error {
	p.wg.Wait()
	return p.Err()
}
