package almaproto

import (
	"encoding/binary"
	"fmt"
	"sync"

	"almanac/internal/obs"
	"almanac/internal/service"
	"almanac/internal/vclock"
)

// Tagged (v4) client transport: submissions carry a client-chosen request
// ID, a reader goroutine demuxes completions — which arrive in whatever
// order the backend finishes them — to their submitters, and the typed
// Submit*/Wait surface plus the Pipeline helper expose the pipelining to
// callers. Synchronous methods keep working unchanged: roundTrip submits
// and waits when the connection is tagged.

// taggedResp is one demuxed completion: a positioned decoder on success,
// the typed failure otherwise.
type taggedResp struct {
	d   *dec
	err error
}

// rawPending is one in-flight tagged submission.
type rawPending struct {
	ch chan taggedResp
}

func (p *rawPending) wait() (*dec, error) {
	r := <-p.ch
	return r.d, r.err
}

// enableTagged flips the connection to the tagged transport (idempotent)
// and starts the demux reader. Called by Identify once v4 is agreed.
func (c *Client) enableTagged() {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.tagged {
		return
	}
	c.tagged = true
	c.nextID = 1
	c.pend = make(map[uint64]chan taggedResp)
	go c.demux()
}

// demux owns the read side of a tagged connection: it routes every
// completion to its submitter by request ID and, on transport failure,
// fails every outstanding submission with the same error.
func (c *Client) demux() {
	for {
		body, err := readFrame(c.conn)
		if err != nil {
			c.failPending(fmt.Errorf("%w: %w", ErrConnClosed, err))
			return
		}
		if len(body) < 9 { // u64 reqID + u8 status minimum
			c.failPending(fmt.Errorf("almaproto: tagged completion of %d bytes: %w", len(body), ErrShortPayload))
			return
		}
		reqID := binary.LittleEndian.Uint64(body)
		c.pmu.Lock()
		ch := c.pend[reqID]
		delete(c.pend, reqID)
		c.pmu.Unlock()
		if ch == nil {
			continue // completion for an abandoned submission
		}
		d := &dec{b: body, pos: 8}
		if status := d.u8(); status != StatusOK {
			ch <- taggedResp{err: &RemoteError{Msg: string(d.bytes()), Code: status}}
			continue
		}
		ch <- taggedResp{d: d}
	}
}

func (c *Client) failPending(err error) {
	c.pmu.Lock()
	pend := c.pend
	c.pend = make(map[uint64]chan taggedResp)
	c.readErr = err
	c.pmu.Unlock()
	for _, ch := range pend {
		ch <- taggedResp{err: err}
	}
}

// submit sends one tagged request and returns the pending completion.
func (c *Client) submit(body []byte) (*rawPending, error) {
	c.pmu.Lock()
	if !c.tagged {
		c.pmu.Unlock()
		return nil, fmt.Errorf("almaproto: submit on an untagged connection")
	}
	if c.readErr != nil {
		err := c.readErr
		c.pmu.Unlock()
		return nil, err
	}
	reqID := c.nextID
	c.nextID++
	ch := make(chan taggedResp, 1)
	c.pend[reqID] = ch
	c.pmu.Unlock()

	out := make([]byte, 0, 8+len(body))
	out = binary.LittleEndian.AppendUint64(out, reqID)
	out = append(out, body...)
	c.mu.Lock()
	err := writeFrame(c.conn, out)
	c.mu.Unlock()
	if err != nil {
		c.pmu.Lock()
		delete(c.pend, reqID)
		c.pmu.Unlock()
		return nil, err
	}
	return &rawPending{ch: ch}, nil
}

// ensureTagged negotiates if needed and confirms the connection speaks
// the tagged transport.
func (c *Client) ensureTagged(op Op) error {
	v, err := c.negotiated()
	if err != nil {
		return err
	}
	c.pmu.Lock()
	on := c.tagged
	c.pmu.Unlock()
	if !on {
		return fmt.Errorf("almaproto: %v requires protocol v%d, server negotiated v%d", op, VersionService, v)
	}
	return nil
}

// Window returns the server-advertised in-flight window (0 before a v4
// Identify).
func (c *Client) Window() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.window
}

// ---- typed async submissions ----------------------------------------------

// PendingRead is an in-flight read submission.
type PendingRead struct{ p *rawPending }

// SubmitRead pipelines a read of lpa; Wait collects the completion.
func (c *Client) SubmitRead(lpa uint64, at vclock.Time) (*PendingRead, error) {
	if err := c.ensureTagged(OpRead); err != nil {
		return nil, err
	}
	e := request(OpRead)
	e.u64(lpa)
	e.time(at)
	p, err := c.submit(e.b)
	if err != nil {
		return nil, err
	}
	return &PendingRead{p: p}, nil
}

// Wait blocks until the read completes.
func (r *PendingRead) Wait() ([]byte, vclock.Time, error) {
	d, err := r.p.wait()
	if err != nil {
		return nil, 0, err
	}
	done := d.time()
	data := d.bytes()
	return data, done, d.err
}

// PendingWrite is an in-flight write submission.
type PendingWrite struct{ p *rawPending }

// SubmitWrite pipelines a write to lpa; Wait collects the completion.
func (c *Client) SubmitWrite(lpa uint64, data []byte, at vclock.Time) (*PendingWrite, error) {
	if err := c.ensureTagged(OpWrite); err != nil {
		return nil, err
	}
	e := request(OpWrite)
	e.u64(lpa)
	e.time(at)
	e.bytes(data)
	p, err := c.submit(e.b)
	if err != nil {
		return nil, err
	}
	return &PendingWrite{p: p}, nil
}

// Wait blocks until the write completes.
func (w *PendingWrite) Wait() (vclock.Time, error) {
	d, err := w.p.wait()
	if err != nil {
		return 0, err
	}
	done := d.time()
	return done, d.err
}

// PendingTrim is an in-flight trim submission.
type PendingTrim struct{ p *rawPending }

// SubmitTrim pipelines a trim of lpa; Wait collects the completion.
func (c *Client) SubmitTrim(lpa uint64, at vclock.Time) (*PendingTrim, error) {
	if err := c.ensureTagged(OpTrim); err != nil {
		return nil, err
	}
	e := request(OpTrim)
	e.u64(lpa)
	e.time(at)
	p, err := c.submit(e.b)
	if err != nil {
		return nil, err
	}
	return &PendingTrim{p: p}, nil
}

// Wait blocks until the trim completes.
func (t *PendingTrim) Wait() (vclock.Time, error) {
	d, err := t.p.wait()
	if err != nil {
		return 0, err
	}
	done := d.time()
	return done, d.err
}

// PendingBatch is an in-flight multi-op batch submission.
type PendingBatch struct {
	p     *rawPending
	kinds []service.OpKind
}

// SubmitBatch pipelines a multi-op batch against an attached volume.
// Results are positional and per-op: one failing op surfaces as that
// slot's typed error without failing the batch or the ops around it.
func (c *Client) SubmitBatch(volID uint32, ops []service.BatchOp) (*PendingBatch, error) {
	if err := c.ensureTagged(OpBatch); err != nil {
		return nil, err
	}
	e := request(OpBatch)
	e.u32(volID)
	e.u32(uint32(len(ops)))
	kinds := make([]service.OpKind, len(ops))
	for i, op := range ops {
		kinds[i] = op.Kind
		e.u8(uint8(op.Kind))
		e.u64(op.LPA)
		e.time(op.At)
		if op.Kind == service.KindWrite {
			e.bytes(op.Data)
		}
	}
	p, err := c.submit(e.b)
	if err != nil {
		return nil, err
	}
	return &PendingBatch{p: p, kinds: kinds}, nil
}

// Wait blocks until every op of the batch has completed.
func (b *PendingBatch) Wait() ([]service.BatchResult, error) {
	d, err := b.p.wait()
	if err != nil {
		return nil, err
	}
	n := int(d.u32())
	if n != len(b.kinds) {
		return nil, fmt.Errorf("almaproto: batch returned %d results for %d ops", n, len(b.kinds))
	}
	out := make([]service.BatchResult, n)
	for i := 0; i < n; i++ {
		status := d.u8()
		if d.err != nil {
			return nil, d.err
		}
		if status != StatusOK {
			out[i].Err = &RemoteError{Msg: string(d.bytes()), Code: status}
			continue
		}
		out[i].Done = d.time()
		if b.kinds[i] == service.KindRead {
			out[i].Data = d.bytes()
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return out, nil
}

// Batch submits a batch and waits for it.
func (c *Client) Batch(volID uint32, ops []service.BatchOp) ([]service.BatchResult, error) {
	p, err := c.SubmitBatch(volID, ops)
	if err != nil {
		return nil, err
	}
	return p.Wait()
}

// ---- volume management -----------------------------------------------------

// VolumeInfo is the wire description of one volume. WindowStart is only
// populated by VolAttach (it depends on the attach time).
type VolumeInfo struct {
	ID          uint32
	Name        string
	Pages       uint64
	Retention   vclock.Duration
	CreatedAt   vclock.Time
	WindowStart vclock.Time
}

// VolCreate creates a named volume of pages logical pages protected by
// key, with a per-volume retention promise (0 accepts the device
// default). at stamps the creation in virtual time.
func (c *Client) VolCreate(name, key string, pages uint64, retention vclock.Duration, at vclock.Time) (VolumeInfo, error) {
	if err := c.requireVersion(VersionService, OpVolCreate); err != nil {
		return VolumeInfo{}, err
	}
	e := request(OpVolCreate)
	e.bytes([]byte(name))
	e.bytes([]byte(key))
	e.u64(pages)
	e.i64(int64(retention))
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return VolumeInfo{}, err
	}
	in := VolumeInfo{ID: d.u32(), Name: name, Pages: pages, Retention: retention, CreatedAt: at}
	return in, d.err
}

// VolDelete authenticates and deletes a volume; the returned time is the
// virtual completion of the extent scrub.
func (c *Client) VolDelete(name, key string, at vclock.Time) (vclock.Time, error) {
	if err := c.requireVersion(VersionService, OpVolDelete); err != nil {
		return at, err
	}
	e := request(OpVolDelete)
	e.bytes([]byte(name))
	e.bytes([]byte(key))
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return at, err
	}
	done := d.time()
	return done, d.err
}

// VolList describes every volume, in name order.
func (c *Client) VolList() ([]VolumeInfo, error) {
	if err := c.requireVersion(VersionService, OpVolList); err != nil {
		return nil, err
	}
	d, err := c.roundTrip(request(OpVolList).b)
	if err != nil {
		return nil, err
	}
	n := int(d.u32())
	if d.err != nil || n > maxFrame/16 {
		return nil, ErrShortPayload
	}
	out := make([]VolumeInfo, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		in := VolumeInfo{ID: d.u32(), Name: string(d.bytes()), Pages: d.u64()}
		in.Retention = vclock.Duration(d.i64())
		in.CreatedAt = d.time()
		if d.err != nil {
			return nil, d.err
		}
		out = append(out, in)
	}
	return out, nil
}

// VolAttach authenticates against a named volume, binding its id to this
// connection for Batch/VolRollBack/VolStats. at is the attach time used
// to report the volume's current visible window start.
func (c *Client) VolAttach(name, key string, at vclock.Time) (VolumeInfo, error) {
	if err := c.requireVersion(VersionService, OpVolAttach); err != nil {
		return VolumeInfo{}, err
	}
	e := request(OpVolAttach)
	e.bytes([]byte(name))
	e.bytes([]byte(key))
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return VolumeInfo{}, err
	}
	in := VolumeInfo{ID: d.u32(), Name: name, Pages: d.u64()}
	in.Retention = vclock.Duration(d.i64())
	in.CreatedAt = d.time()
	in.WindowStart = d.time()
	return in, d.err
}

// VolStats fetches the per-volume observability snapshot of an attached
// volume.
func (c *Client) VolStats(volID uint32) (obs.Snapshot, error) {
	if err := c.requireVersion(VersionService, OpVolStats); err != nil {
		return obs.Snapshot{}, err
	}
	e := request(OpVolStats)
	e.u32(volID)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return obs.Snapshot{}, err
	}
	s := decSnapshot(d)
	return s, d.err
}

// VolRollBack reverts an attached volume to its state at time t. Other
// volumes are untouched.
func (c *Client) VolRollBack(volID uint32, t, at vclock.Time) (int, vclock.Time, error) {
	if err := c.requireVersion(VersionService, OpVolRollBack); err != nil {
		return 0, at, err
	}
	e := request(OpVolRollBack)
	e.u32(volID)
	e.time(t)
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return 0, at, err
	}
	done := d.time()
	changed := int(d.u32())
	return changed, done, d.err
}

// ---- pipeline --------------------------------------------------------------

// Pipeline keeps a bounded number of submissions in flight on a tagged
// connection: each Read/Write/Trim call submits immediately and blocks
// only when the window is full, completions are collected by per-op
// goroutines as they arrive (in any order), and Flush waits for the tail.
// The first error is sticky: it fails the pipeline and every later call.
// Read completion callbacks run on collector goroutines — they must be
// safe to call concurrently. A Pipeline is safe for use from one
// submitting goroutine.
type Pipeline struct {
	c     *Client
	slots chan struct{}
	wg    sync.WaitGroup

	mu  sync.Mutex
	err error
}

// NewPipeline builds a pipeline over the client's tagged connection.
// window <= 0 uses the server-advertised in-flight window.
func (c *Client) NewPipeline(window int) (*Pipeline, error) {
	if err := c.ensureTagged(OpBatch); err != nil {
		return nil, err
	}
	if window <= 0 {
		window = c.Window()
	}
	if window <= 0 {
		window = DefaultWindow
	}
	return &Pipeline{c: c, slots: make(chan struct{}, window)}, nil
}

func (p *Pipeline) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// Err returns the pipeline's sticky error.
func (p *Pipeline) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// acquire takes a window slot unless the pipeline already failed.
func (p *Pipeline) acquire() error {
	if err := p.Err(); err != nil {
		return err
	}
	p.slots <- struct{}{}
	return nil
}

// collect spawns the completion collector for one submission.
func collect[T any](p *Pipeline, wait func() (T, error), fn func(T, error)) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		v, err := wait()
		if err != nil {
			p.fail(err)
		}
		if fn != nil {
			fn(v, err)
		}
		<-p.slots
	}()
}

// Write pipelines a write; completion errors surface through Flush.
func (p *Pipeline) Write(lpa uint64, data []byte, at vclock.Time) error {
	if err := p.acquire(); err != nil {
		return err
	}
	w, err := p.c.SubmitWrite(lpa, data, at)
	if err != nil {
		<-p.slots
		p.fail(err)
		return err
	}
	collect(p, w.Wait, nil)
	return nil
}

// ReadResult is one pipelined read completion.
type ReadResult struct {
	Data []byte
	Done vclock.Time
}

// Read pipelines a read; fn (optional) receives the completion on a
// collector goroutine.
func (p *Pipeline) Read(lpa uint64, at vclock.Time, fn func(ReadResult, error)) error {
	if err := p.acquire(); err != nil {
		return err
	}
	r, err := p.c.SubmitRead(lpa, at)
	if err != nil {
		<-p.slots
		p.fail(err)
		return err
	}
	collect(p, func() (ReadResult, error) {
		data, done, err := r.Wait()
		return ReadResult{Data: data, Done: done}, err
	}, fn)
	return nil
}

// Trim pipelines a trim; completion errors surface through Flush.
func (p *Pipeline) Trim(lpa uint64, at vclock.Time) error {
	if err := p.acquire(); err != nil {
		return err
	}
	t, err := p.c.SubmitTrim(lpa, at)
	if err != nil {
		<-p.slots
		p.fail(err)
		return err
	}
	collect(p, t.Wait, nil)
	return nil
}

// Flush waits for every in-flight submission and returns the pipeline's
// first error. The pipeline remains usable after a clean Flush.
func (p *Pipeline) Flush() error {
	p.wg.Wait()
	return p.Err()
}
