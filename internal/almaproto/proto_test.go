package almaproto

import (
	"bytes"
	"errors"
	"math/rand"
	"net"
	"testing"

	"almanac/internal/core"
	"almanac/internal/fault"
	"almanac/internal/flash"
	"almanac/internal/ftl"
	"almanac/internal/vclock"
)

func newDevice(t testing.TB) *core.TimeSSD {
	t.Helper()
	fc := flash.DefaultConfig()
	fc.Channels = 2
	fc.ChipsPerChannel = 1
	fc.BlocksPerPlane = 32
	fc.PagesPerBlock = 16
	fc.PageSize = 512
	cfg := core.DefaultConfig(ftl.WithFlash(fc))
	cfg.MinRetention = 0
	d, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// pipePair wires a client to a server over an in-memory duplex pipe.
func pipePair(t testing.TB) (*Client, *core.TimeSSD) {
	t.Helper()
	dev := newDevice(t)
	srv := NewServer(dev)
	cliEnd, srvEnd := net.Pipe()
	go srv.ServeOne(srvEnd)
	c := NewClient(cliEnd)
	t.Cleanup(func() { c.Close(); srvEnd.Close() })
	return c, dev
}

func page(c *Client, b byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestIdentify(t *testing.T) {
	c, dev := pipePair(t)
	id, err := c.Identify()
	if err != nil {
		t.Fatal(err)
	}
	if id.PageSize != dev.PageSize() || id.LogicalPages != dev.LogicalPages() || id.Channels != 2 {
		t.Fatalf("identity mismatch: %+v", id)
	}
}

func TestReadWriteTrimOverWire(t *testing.T) {
	c, dev := pipePair(t)
	ps := dev.PageSize()
	done, err := c.Write(7, page(c, 0xaa, ps), vclock.Time(vclock.Second))
	if err != nil {
		t.Fatal(err)
	}
	if done <= vclock.Time(vclock.Second) {
		t.Fatal("write charged no device time")
	}
	data, done2, err := c.Read(7, done)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, page(c, 0xaa, ps)) {
		t.Fatal("wire round trip corrupted data")
	}
	if _, err := c.Trim(7, done2); err != nil {
		t.Fatal(err)
	}
	data, _, err = c.Read(7, done2.Add(vclock.Second))
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 0 {
		t.Fatal("trim not visible over wire")
	}
}

func TestQueriesOverWire(t *testing.T) {
	c, dev := pipePair(t)
	ps := dev.PageSize()
	for seq := 0; seq < 3; seq++ {
		at := vclock.Time((seq + 1) * int(vclock.Hour))
		if _, err := c.Write(3, page(c, byte(seq+1), ps), at); err != nil {
			t.Fatal(err)
		}
	}
	now := vclock.Time(4 * vclock.Hour)

	all, _, err := c.AddrQueryAll(3, 1, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || len(all[0].Versions) != 3 {
		t.Fatalf("AddrQueryAll: %+v", all)
	}
	if !all[0].Versions[0].Live || all[0].Versions[0].Data[0] != 3 {
		t.Fatal("newest version wrong over wire")
	}

	at25 := vclock.Time(2*vclock.Hour + 30*vclock.Minute)
	q, _, err := c.AddrQuery(3, 1, at25, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(q[0].Versions) != 1 || q[0].Versions[0].Data[0] != 2 {
		t.Fatal("AddrQuery(t) wrong over wire")
	}

	rq, _, err := c.AddrQueryRange(3, 1, vclock.Time(vclock.Hour), vclock.Time(2*vclock.Hour), now)
	if err != nil {
		t.Fatal(err)
	}
	if len(rq[0].Versions) != 2 {
		t.Fatalf("AddrQueryRange returned %d versions", len(rq[0].Versions))
	}

	recs, _, err := c.TimeQuery(vclock.Time(2*vclock.Hour+1), now)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LPA != 3 || len(recs[0].Times) != 1 {
		t.Fatalf("TimeQuery: %+v", recs)
	}

	recs, _, err = c.TimeQueryRange(0, now, now)
	if err != nil || len(recs) != 1 || len(recs[0].Times) != 3 {
		t.Fatalf("TimeQueryRange: %v %+v", err, recs)
	}

	recs, _, err = c.TimeQueryAll(now)
	if err != nil || len(recs) != 1 {
		t.Fatalf("TimeQueryAll: %v %+v", err, recs)
	}
}

func TestRollBackOverWire(t *testing.T) {
	c, dev := pipePair(t)
	ps := dev.PageSize()
	c.Write(1, page(c, 1, ps), vclock.Time(vclock.Hour))
	c.Write(1, page(c, 2, ps), vclock.Time(2*vclock.Hour))
	changed, done, err := c.RollBack(1, 1, vclock.Time(vclock.Hour+1), vclock.Time(3*vclock.Hour))
	if err != nil || changed != 1 {
		t.Fatalf("rollback: %v changed=%d", err, changed)
	}
	data, _, _ := c.Read(1, done)
	if data[0] != 1 {
		t.Fatal("rollback over wire did not restore v1")
	}

	lpas := []uint64{1}
	changed, _, err = c.RollBackParallel(lpas, 2, vclock.Time(2*vclock.Hour+1), done.Add(vclock.Second))
	if err != nil || changed != 1 {
		t.Fatalf("parallel rollback: %v changed=%d", err, changed)
	}
}

func TestStatsOverWire(t *testing.T) {
	c, dev := pipePair(t)
	c.Write(9, page(c, 5, dev.PageSize()), vclock.Time(vclock.Second))
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.HostPageWrites != 1 || st.FlashPrograms < 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRemoteErrors(t *testing.T) {
	c, dev := pipePair(t)
	// Out-of-range LPA surfaces as a RemoteError, not a broken connection.
	_, _, err := c.Read(uint64(dev.LogicalPages())+10, 0)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	// The connection is still usable afterwards.
	if _, err := c.Write(0, page(c, 1, dev.PageSize()), vclock.Time(vclock.Second)); err != nil {
		t.Fatalf("connection dead after remote error: %v", err)
	}
}

func TestTCPServer(t *testing.T) {
	dev := newDevice(t)
	srv := NewServer(dev)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	// Two concurrent clients share the device.
	c1, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	ps := dev.PageSize()
	if _, err := c1.Write(4, page(c1, 0x11, ps), vclock.Time(vclock.Second)); err != nil {
		t.Fatal(err)
	}
	data, _, err := c2.Read(4, vclock.Time(2*vclock.Second))
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 0x11 {
		t.Fatal("clients do not share device state")
	}
}

// TestWireFuzz throws random garbage frames at the dispatcher: it must
// answer every one with an error response, never panic or accept.
func TestWireFuzz(t *testing.T) {
	dev := newDevice(t)
	srv := NewServer(dev)
	rng := rand.New(rand.NewSource(11))
	st := newConnState()
	for i := 0; i < 2000; i++ {
		n := rng.Intn(64)
		body := make([]byte, n)
		rng.Read(body)
		resp := srv.dispatch(st, body)
		if len(resp) == 0 {
			t.Fatalf("fuzz %d: empty response", i)
		}
		if resp[0] == 0 {
			// A random body that parses cleanly must at least be a real
			// opcode with fully-consumed payload; spot-check legality.
			if n == 0 || Op(body[0]) > OpBatch || Op(body[0]) == 0 {
				t.Fatalf("fuzz %d: garbage accepted: % x", i, body)
			}
		}
	}
	// The device must still be coherent after the fuzzing session.
	if err := dev.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, maxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatal("oversize frame accepted")
	}
	// A lying length prefix is rejected.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := readFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("absurd frame length accepted: %v", err)
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "Read" || Op(200).String() == "" {
		t.Fatal("op names broken")
	}
}

// armPlan parses a fault plan and arms it on the device.
func armPlan(t *testing.T, dev *core.TimeSSD, text string) {
	t.Helper()
	plan, err := fault.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetFaults(inj)
}

func TestTypedRemoteErrors(t *testing.T) {
	c, dev := pipePair(t)
	ps := dev.PageSize()
	if _, err := c.Write(3, page(c, 7, ps), vclock.Time(vclock.Second)); err != nil {
		t.Fatal(err)
	}

	// An uncorrectable read crosses the wire as StatusUncorrectable and
	// unwraps to the fault sentinel, exactly as in-process.
	armPlan(t, dev, "seed 1\nread uncorrectable count=1\n")
	_, _, err := c.Read(3, vclock.Time(2*vclock.Second))
	if !errors.Is(err, fault.ErrUncorrectable) {
		t.Fatalf("want fault.ErrUncorrectable over the wire, got %v", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != StatusUncorrectable {
		t.Fatalf("want RemoteError code %d, got %+v", StatusUncorrectable, re)
	}
	// The rule is exhausted (count=1); the connection and device survive.
	if _, _, err := c.Read(3, vclock.Time(3*vclock.Second)); err != nil {
		t.Fatalf("read after exhausted fault rule: %v", err)
	}

	// A power cut kills the device mid-plan; every later command reports
	// StatusPowerCut but the protocol stream itself stays framed.
	armPlan(t, dev, "seed 1\npowercut at=1h\n")
	if _, err := c.Write(3, page(c, 8, ps), vclock.Time(2*vclock.Hour)); !errors.Is(err, fault.ErrPowerCut) {
		t.Fatalf("want fault.ErrPowerCut, got %v", err)
	}
	_, _, err = c.Read(3, vclock.Time(3*vclock.Hour))
	if !errors.As(err, &re) || re.Code != StatusPowerCut || !errors.Is(err, fault.ErrPowerCut) {
		t.Fatalf("dead device: want power-cut status, got %v", err)
	}
}
