package almaproto

import (
	"testing"

	"almanac/internal/service"
	"almanac/internal/vclock"
)

// TestTaggedTransportAllocs pins the pooled data path end to end: once
// the pools are warm, a full SubmitBatch/Wait round trip — client
// framing, server framing, batch dispatch, coalesced response flush —
// must stay at or under one allocation per op on both sides combined.
// The budget covers the per-batch allocations the API contract requires
// (the results slice and kind table handed to the caller); everything on
// the transport itself recycles. Under the race detector the bound
// relaxes: instrumentation allocates on channel and map traffic.
func TestTaggedTransportAllocs(t *testing.T) {
	c, _ := servicePipe(t)
	t0 := vclock.Time(vclock.Hour)
	const volPages = 256
	if _, err := c.VolCreate("alloc", "key", volPages, 0, t0); err != nil {
		t.Fatal(err)
	}
	info, err := c.VolAttach("alloc", "key", t0)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Identify()
	if err != nil {
		t.Fatal(err)
	}

	const batchOps = 16
	data := page(c, 7, id.PageSize)
	ops := make([]service.BatchOp, batchOps)
	at := t0.Add(vclock.Second)
	seq := uint64(0)
	roundTrip := func() {
		for i := range ops {
			ops[i] = service.BatchOp{Kind: service.KindWrite, LPA: seq % volPages, Data: data, At: at}
			seq++
			at = at.Add(vclock.Millisecond)
		}
		pb, err := c.SubmitBatch(info.ID, ops)
		if err != nil {
			t.Fatal(err)
		}
		results, err := pb.Wait()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
	}
	for i := 0; i < 8; i++ {
		roundTrip() // warm the frame pools, batch scratch, and shard queues
	}

	perBatch := testing.AllocsPerRun(50, roundTrip)
	perOp := perBatch / batchOps
	limit := 1.0
	if raceEnabled {
		limit = 8.0
	}
	if perOp > limit {
		t.Fatalf("tagged batch round trip allocates %.2f/op (%.1f/batch), want <= %.1f/op", perOp, perBatch, limit)
	}
}

// TestSubmitWaitAllocs pins the single-op Submit/Wait path. Unlike the
// batch fast path this one keeps its per-request dispatch goroutine and
// encoder on the server, so it is not allocation-free — but with warm
// pools the transport itself recycles, and the total stays bounded
// instead of paying a fresh frame and channel per op.
func TestSubmitWaitAllocs(t *testing.T) {
	c, _ := servicePipe(t)
	id, err := c.Identify()
	if err != nil {
		t.Fatal(err)
	}
	data := page(c, 3, id.PageSize)
	at := vclock.Time(vclock.Hour)
	roundTrip := func() {
		w, err := c.SubmitWrite(0, data, at)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Wait(); err != nil {
			t.Fatal(err)
		}
		at = at.Add(vclock.Millisecond)
	}
	for i := 0; i < 8; i++ {
		roundTrip()
	}
	perOp := testing.AllocsPerRun(50, roundTrip)
	limit := 12.0
	if raceEnabled {
		limit = 48.0
	}
	if perOp > limit {
		t.Fatalf("Submit/Wait round trip allocates %.2f/op, want <= %.1f", perOp, limit)
	}
}
