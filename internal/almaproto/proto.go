// Package almaproto is the host⇄device command protocol of Project
// Almanac. The paper's implementation "defines new NVMe commands to wrap
// the TimeKits API" and runs TimeKits atop the host NVMe driver (§4); this
// package is that boundary for the simulated device: a framed, versioned
// binary protocol carrying block I/O, the Table-1 state queries, and
// rollback, served over any net.Conn (the almanacd command serves TCP).
//
// Because the device lives in virtual time, every command carries the
// virtual issue time and every completion returns the virtual done time —
// the protocol transports the simulation clock alongside the data, exactly
// as the harness's in-process calls do.
//
// Wire format (little endian):
//
//	frame  := u32 bodyLen, body
//	request body  := u8 opcode, payload…
//	response body := u8 status (0 = OK), payload… | error string
package almaproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"almanac/internal/core"
	"almanac/internal/vclock"
)

// Op identifies a command.
type Op uint8

const (
	OpIdentify Op = iota + 1
	OpRead
	OpWrite
	OpTrim
	OpAddrQuery
	OpAddrQueryRange
	OpAddrQueryAll
	OpTimeQuery
	OpTimeQueryRange
	OpTimeQueryAll
	OpRollBack
	OpRollBackParallel
	OpStats
	// OpRollBackAll was added with the array protocol revision; it sits
	// after OpStats so every pre-existing opcode keeps its value.
	OpRollBackAll
)

func (o Op) String() string {
	names := map[Op]string{
		OpIdentify: "Identify", OpRead: "Read", OpWrite: "Write", OpTrim: "Trim",
		OpAddrQuery: "AddrQuery", OpAddrQueryRange: "AddrQueryRange", OpAddrQueryAll: "AddrQueryAll",
		OpTimeQuery: "TimeQuery", OpTimeQueryRange: "TimeQueryRange", OpTimeQueryAll: "TimeQueryAll",
		OpRollBack: "RollBack", OpRollBackParallel: "RollBackParallel", OpStats: "Stats",
		OpRollBackAll: "RollBackAll",
	}
	if n, ok := names[o]; ok {
		return n
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// maxFrame bounds a frame body; large enough for a full-device TimeQuery
// result on simulated geometries, small enough to reject garbage framing.
const maxFrame = 64 << 20

// Errors.
var (
	ErrFrameTooLarge = errors.New("almaproto: frame exceeds limit")
	ErrShortPayload  = errors.New("almaproto: truncated payload")
)

// RemoteError is a device-side failure relayed to the client.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "almaproto: device: " + e.Msg }

// writeFrame sends one length-prefixed body.
func writeFrame(w io.Writer, body []byte) error {
	if len(body) > maxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame receives one length-prefixed body.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// enc is an append-only payload builder.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)         { e.b = append(e.b, v) }
func (e *enc) u32(v uint32)       { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)       { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)        { e.u64(uint64(v)) }
func (e *enc) time(t vclock.Time) { e.i64(int64(t)) }
func (e *enc) bytes(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}

// dec is a bounds-checked payload reader.
type dec struct {
	b   []byte
	pos int
	err error
}

func (d *dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.pos+n > len(d.b) {
		d.err = ErrShortPayload
		return false
	}
	return true
}

func (d *dec) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.pos]
	d.pos++
	return v
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.pos:])
	d.pos += 4
	return v
}

func (d *dec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.pos:])
	d.pos += 8
	return v
}

func (d *dec) i64() int64        { return int64(d.u64()) }
func (d *dec) time() vclock.Time { return vclock.Time(d.i64()) }
func (d *dec) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || !d.need(n) {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[d.pos:d.pos+n])
	d.pos += n
	return out
}

// Version mirrors core.Version on the wire.
func encVersions(e *enc, vers []core.Version) {
	e.u32(uint32(len(vers)))
	for _, v := range vers {
		e.time(v.TS)
		if v.Live {
			e.u8(1)
		} else {
			e.u8(0)
		}
		e.bytes(v.Data)
	}
}

func decVersions(d *dec) []core.Version {
	n := int(d.u32())
	if d.err != nil || n > maxFrame/16 {
		return nil
	}
	out := make([]core.Version, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		v := core.Version{TS: d.time(), Live: d.u8() == 1, Data: d.bytes()}
		if d.err != nil {
			return nil
		}
		out = append(out, v)
	}
	return out
}

func encRecords(e *enc, recs []core.UpdateRecord) {
	e.u32(uint32(len(recs)))
	for _, r := range recs {
		e.u64(r.LPA)
		e.u32(uint32(len(r.Times)))
		for _, t := range r.Times {
			e.time(t)
		}
	}
}

func decRecords(d *dec) []core.UpdateRecord {
	n := int(d.u32())
	if d.err != nil || n > maxFrame/8 {
		return nil
	}
	out := make([]core.UpdateRecord, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		r := core.UpdateRecord{LPA: d.u64()}
		m := int(d.u32())
		if d.err != nil || m > maxFrame/8 {
			return nil
		}
		for j := 0; j < m; j++ {
			r.Times = append(r.Times, d.time())
		}
		out = append(out, r)
	}
	return out
}

// Identity describes the device to the host. Shards advertises the
// backing topology (1 for a single device, N for an array); Channels is
// the total flash channel count across all shards — the device-internal
// parallelism TimeKits callers can exploit.
type Identity struct {
	PageSize     int
	LogicalPages int
	Channels     int
	Shards       int
	WindowStart  vclock.Time
}

// DeviceStats is the counter snapshot OpStats returns. (The retention
// window's start is part of Identify, since it is a point in virtual time
// rather than a counter.)
type DeviceStats struct {
	HostPageWrites int64
	HostPageReads  int64
	FlashPrograms  int64
	FlashReads     int64
	FlashErases    int64
	DeltasCreated  int64
	WindowDrops    int64
}
