// Package almaproto is the host⇄device command protocol of Project
// Almanac. The paper's implementation "defines new NVMe commands to wrap
// the TimeKits API" and runs TimeKits atop the host NVMe driver (§4); this
// package is that boundary for the simulated device: a framed, versioned
// binary protocol carrying block I/O, the Table-1 state queries, and
// rollback, served over any net.Conn (the almanacd command serves TCP).
//
// Because the device lives in virtual time, every command carries the
// virtual issue time and every completion returns the virtual done time —
// the protocol transports the simulation clock alongside the data, exactly
// as the harness's in-process calls do.
//
// Wire format (little endian):
//
//	frame  := u32 bodyLen, body
//	request body  := u8 opcode, payload…
//	response body := u8 status (0 = OK), payload… | error string
//
// # Protocol revisions
//
// The revision rule: opcodes are append-only — a new command takes the
// next free opcode value, and existing opcodes never change value or
// payload shape. Servers may append new fields to the *end* of an
// existing response payload only when every older client ignores trailing
// response bytes for that opcode (the Identify negotiation below relies
// on exactly this property). Request payloads are closed: servers reject
// trailing request bytes, so extending a request requires a new opcode.
//
// Versions gate the opcode set. A client announces the highest version it
// speaks in OpIdentify (a u32 after the opcode; absent for pre-v3
// clients), the server replies with the agreed version — min(client max,
// server max) — appended to the Identify response, and commands
// introduced after the agreed version fail with an error naming it
// instead of desynchronising the stream:
//
//	v1: OpIdentify … OpStats (single device)
//	v2: + OpRollBackAll (array revision)
//	v3: + version negotiation, OpMetrics, OpTrace (observability)
//	v4: + tagged pipelined transport, volume opcodes, OpBatch (service)
//
// # Tagged transport (v4)
//
// A connection that negotiates v4 switches, starting with the first
// frame after the Identify response, to tagged frames:
//
//	tagged request body  := u64 reqID, u8 opcode, payload…
//	tagged response body := u64 reqID, u8 status, payload…
//
// Request IDs are chosen by the client and only echoed by the server, so
// a client may pipeline many submissions and match completions as they
// arrive — completions are unordered, exactly like an NVMe completion
// queue. The server bounds concurrency with a per-connection in-flight
// window (advertised in the Identify response): once the window is full
// it stops reading further frames, which backpressures the submitter
// through the transport. Pre-v4 connections keep the one-frame-at-a-time
// request/response transport above, unchanged.
package almaproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"almanac/internal/core"
	"almanac/internal/fault"
	"almanac/internal/obs"
	"almanac/internal/service"
	"almanac/internal/vclock"
)

// Op identifies a command.
type Op uint8

const (
	OpIdentify Op = iota + 1
	OpRead
	OpWrite
	OpTrim
	OpAddrQuery
	OpAddrQueryRange
	OpAddrQueryAll
	OpTimeQuery
	OpTimeQueryRange
	OpTimeQueryAll
	OpRollBack
	OpRollBackParallel
	OpStats
	// OpRollBackAll was added with the array protocol revision (v2); per
	// the append-only rule it sits after OpStats so every pre-existing
	// opcode keeps its value.
	OpRollBackAll
	// OpMetrics and OpTrace are the v3 observability surface; both
	// require a negotiated version ≥ VersionObs.
	OpMetrics
	OpTrace
	// The v4 service surface (internal/service): named volumes and
	// multi-op batches. All of these require a negotiated version ≥
	// VersionService and a server built over a volume service.
	OpVolCreate
	OpVolDelete
	OpVolList
	OpVolAttach
	OpVolStats
	OpVolRollBack
	OpBatch
)

// Protocol versions (see the package documentation for the revision
// rule). CurrentVersion is the highest version this build speaks.
const (
	Version1       = 1 // single-device command set, through OpStats
	VersionArray   = 2 // + OpRollBackAll
	VersionObs     = 3 // + Identify negotiation, OpMetrics, OpTrace
	VersionService = 4 // + tagged pipelined transport, volumes, OpBatch
	CurrentVersion = VersionService
)

func (o Op) String() string {
	switch o {
	case OpIdentify:
		return "Identify"
	case OpRead:
		return "Read"
	case OpWrite:
		return "Write"
	case OpTrim:
		return "Trim"
	case OpAddrQuery:
		return "AddrQuery"
	case OpAddrQueryRange:
		return "AddrQueryRange"
	case OpAddrQueryAll:
		return "AddrQueryAll"
	case OpTimeQuery:
		return "TimeQuery"
	case OpTimeQueryRange:
		return "TimeQueryRange"
	case OpTimeQueryAll:
		return "TimeQueryAll"
	case OpRollBack:
		return "RollBack"
	case OpRollBackParallel:
		return "RollBackParallel"
	case OpStats:
		return "Stats"
	case OpRollBackAll:
		return "RollBackAll"
	case OpMetrics:
		return "Metrics"
	case OpTrace:
		return "Trace"
	case OpVolCreate:
		return "VolCreate"
	case OpVolDelete:
		return "VolDelete"
	case OpVolList:
		return "VolList"
	case OpVolAttach:
		return "VolAttach"
	case OpVolStats:
		return "VolStats"
	case OpVolRollBack:
		return "VolRollBack"
	case OpBatch:
		return "Batch"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// maxFrame bounds a frame body; large enough for a full-device TimeQuery
// result on simulated geometries, small enough to reject garbage framing.
const maxFrame = 64 << 20

// Errors.
var (
	ErrFrameTooLarge = errors.New("almaproto: frame exceeds limit")
	ErrShortPayload  = errors.New("almaproto: truncated payload")
	// ErrConnClosed marks a tagged-transport failure: the connection died
	// with submissions in flight. Every outstanding Wait and every later
	// Submit on the connection reports it, so pipelined callers get a
	// typed error instead of a hang when the server goes away.
	ErrConnClosed = errors.New("almaproto: connection closed")
)

// Response status codes. Like opcodes, status codes are append-only: 0
// and 1 are the original OK/error pair; later codes refine the error
// class so clients can match device faults with errors.Is instead of
// string-sniffing. Servers may send any code; older clients treat every
// non-zero status as a generic RemoteError, which stays correct.
const (
	StatusOK            = 0
	StatusError         = 1 // generic device-side failure
	StatusUncorrectable = 2 // fault.ErrUncorrectable: data lost to ECC
	StatusPowerCut      = 3 // fault.ErrPowerCut: device dead mid-plan
	StatusAuth          = 4 // service.ErrAuth: key rejected / volume not attached
	StatusNoVolume      = 5 // service.ErrNoVolume: unknown or deleted volume
	StatusBeforeWindow  = 6 // service.ErrBeforeWindow: travel precedes the volume window
)

// statusOf maps a device error to its wire status code.
func statusOf(err error) uint8 {
	switch {
	case errors.Is(err, fault.ErrUncorrectable):
		return StatusUncorrectable
	case errors.Is(err, fault.ErrPowerCut):
		return StatusPowerCut
	case errors.Is(err, service.ErrAuth):
		return StatusAuth
	case errors.Is(err, service.ErrNoVolume):
		return StatusNoVolume
	case errors.Is(err, service.ErrBeforeWindow):
		return StatusBeforeWindow
	default:
		return StatusError
	}
}

// RemoteError is a device-side failure relayed to the client. Code is the
// wire status; Unwrap maps the typed statuses back to the fault sentinels,
// so errors.Is(err, fault.ErrUncorrectable) works across the protocol
// boundary exactly as it does in-process.
type RemoteError struct {
	Msg  string
	Code uint8
}

func (e *RemoteError) Error() string { return "almaproto: device: " + e.Msg }

func (e *RemoteError) Unwrap() error {
	switch e.Code {
	case StatusUncorrectable:
		return fault.ErrUncorrectable
	case StatusPowerCut:
		return fault.ErrPowerCut
	case StatusAuth:
		return service.ErrAuth
	case StatusNoVolume:
		return service.ErrNoVolume
	case StatusBeforeWindow:
		return service.ErrBeforeWindow
	default:
		return nil
	}
}

// writeFrame sends one length-prefixed body.
func writeFrame(w io.Writer, body []byte) error {
	if len(body) > maxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame receives one length-prefixed body.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// enc is an append-only payload builder.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)         { e.b = append(e.b, v) }
func (e *enc) u32(v uint32)       { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)       { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)        { e.u64(uint64(v)) }
func (e *enc) time(t vclock.Time) { e.i64(int64(t)) }
func (e *enc) bytes(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}

// dec is a bounds-checked payload reader.
type dec struct {
	b   []byte
	pos int
	err error
}

func (d *dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.pos+n > len(d.b) {
		d.err = ErrShortPayload
		return false
	}
	return true
}

func (d *dec) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.pos]
	d.pos++
	return v
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.pos:])
	d.pos += 4
	return v
}

func (d *dec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.pos:])
	d.pos += 8
	return v
}

func (d *dec) i64() int64        { return int64(d.u64()) }
func (d *dec) time() vclock.Time { return vclock.Time(d.i64()) }
func (d *dec) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || !d.need(n) {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[d.pos:d.pos+n])
	d.pos += n
	return out
}

// bytesAlias reads a length-prefixed byte field without copying: the
// result aliases the decoder's backing buffer. Server dispatch uses it
// for request payloads — the backing frame outlives the dispatch (pooled
// frames are released only after the command consumed the payload), so
// the alias is safe and the per-payload copy disappears.
func (d *dec) bytesAlias() []byte {
	n := int(d.u32())
	if d.err != nil || !d.need(n) {
		return nil
	}
	out := d.b[d.pos : d.pos+n : d.pos+n]
	d.pos += n
	return out
}

// Version mirrors core.Version on the wire.
func encVersions(e *enc, vers []core.Version) {
	e.u32(uint32(len(vers)))
	for _, v := range vers {
		e.time(v.TS)
		if v.Live {
			e.u8(1)
		} else {
			e.u8(0)
		}
		e.bytes(v.Data)
	}
}

func decVersions(d *dec) []core.Version {
	n := int(d.u32())
	if d.err != nil || n > maxFrame/16 {
		return nil
	}
	out := make([]core.Version, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		v := core.Version{TS: d.time(), Live: d.u8() == 1, Data: d.bytes()}
		if d.err != nil {
			return nil
		}
		out = append(out, v)
	}
	return out
}

func encRecords(e *enc, recs []core.UpdateRecord) {
	e.u32(uint32(len(recs)))
	for _, r := range recs {
		e.u64(r.LPA)
		e.u32(uint32(len(r.Times)))
		for _, t := range r.Times {
			e.time(t)
		}
	}
}

func decRecords(d *dec) []core.UpdateRecord {
	n := int(d.u32())
	if d.err != nil || n > maxFrame/8 {
		return nil
	}
	out := make([]core.UpdateRecord, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		r := core.UpdateRecord{LPA: d.u64()}
		m := int(d.u32())
		if d.err != nil || m > maxFrame/8 {
			return nil
		}
		for j := 0; j < m; j++ {
			r.Times = append(r.Times, d.time())
		}
		out = append(out, r)
	}
	return out
}

// Identity describes the device to the host. Shards advertises the
// backing topology (1 for a single device, N for an array); Channels is
// the total flash channel count across all shards — the device-internal
// parallelism TimeKits callers can exploit. Version is the negotiated
// protocol version for the connection Identify ran on. Window is the
// server's per-connection in-flight window for the tagged transport
// (appended to the Identify response by v4 servers; 0 when the peer or
// the negotiated version predates v4, meaning no pipelining).
type Identity struct {
	PageSize     int
	LogicalPages int
	Channels     int
	Shards       int
	WindowStart  vclock.Time
	Version      int
	Window       int
}

// DeviceStats is the counter snapshot OpStats returns. It predates the
// obs.Counters collapse and survives as the OpStats wire adapter: the
// seven fields below, as i64 in this order, are the frozen v1 payload
// (DeviceStatsView projects them out of the canonical counters; OpMetrics
// carries the full set). The retention window's start is part of
// Identify, since it is a point in virtual time rather than a counter.
type DeviceStats struct {
	HostPageWrites int64
	HostPageReads  int64
	FlashPrograms  int64
	FlashReads     int64
	FlashErases    int64
	DeltasCreated  int64
	WindowDrops    int64
}

// DeviceStatsView projects the legacy OpStats counter set out of the
// canonical counter surface.
func DeviceStatsView(c obs.Counters) DeviceStats {
	return DeviceStats{
		HostPageWrites: c.HostPageWrites,
		HostPageReads:  c.HostPageReads,
		FlashPrograms:  c.FlashPrograms,
		FlashReads:     c.FlashReads,
		FlashErases:    c.FlashErases,
		DeltasCreated:  c.DeltasCreated,
		WindowDrops:    c.WindowDrops,
	}
}

// encCounters writes the simulated-device counter surface as 20 i64 values
// in obs.Counters declaration order. The sequence is part of the v3 payload;
// adding a simulated-device counter to obs.Counters requires a protocol
// revision. Host-side telemetry in obs.Counters (the RefCache* fields, which
// measure simulator performance rather than device behavior) is deliberately
// not part of the payload and must stay out of counterSeq.
func encCounters(e *enc, c obs.Counters) {
	for _, v := range counterSeq(c) {
		e.i64(v)
	}
}

func decCounters(d *dec) obs.Counters {
	var c obs.Counters
	seq := counterSeq(c)
	for i := range seq {
		seq[i] = d.i64()
	}
	c.HostPageWrites, c.HostPageReads, c.TrimOps = seq[0], seq[1], seq[2]
	c.FlashReads, c.FlashPrograms, c.FlashErases = seq[3], seq[4], seq[5]
	c.GCRuns, c.GCReads, c.GCWrites, c.GCErases, c.GCDeltaOps = seq[6], seq[7], seq[8], seq[9], seq[10]
	c.ReadFailures = seq[11]
	c.Invalidations, c.DeltasCreated, c.DeltaPagesWritten = seq[12], seq[13], seq[14]
	c.ExpiredReclaimed, c.WindowDrops, c.IdleCompressions = seq[15], seq[16], seq[17]
	c.EstimatorChecks, c.EstimatorTrips = seq[18], seq[19]
	return c
}

func counterSeq(c obs.Counters) []int64 {
	return []int64{
		c.HostPageWrites, c.HostPageReads, c.TrimOps,
		c.FlashReads, c.FlashPrograms, c.FlashErases,
		c.GCRuns, c.GCReads, c.GCWrites, c.GCErases, c.GCDeltaOps,
		c.ReadFailures,
		c.Invalidations, c.DeltasCreated, c.DeltaPagesWritten,
		c.ExpiredReclaimed, c.WindowDrops, c.IdleCompressions,
		c.EstimatorChecks, c.EstimatorTrips,
	}
}

func encHist(e *enc, h obs.HistSnapshot) {
	e.i64(h.Count)
	e.i64(h.SumNS)
	e.i64(h.MaxNS)
	e.u32(uint32(len(h.Buckets)))
	for _, n := range h.Buckets {
		e.i64(n)
	}
}

func decHist(d *dec) obs.HistSnapshot {
	var h obs.HistSnapshot
	h.Count, h.SumNS, h.MaxNS = d.i64(), d.i64(), d.i64()
	n := int(d.u32())
	if d.err != nil || n > 1024 {
		d.err = ErrShortPayload
		return obs.HistSnapshot{}
	}
	// A peer built with a different bucket count still parses; buckets
	// beyond ours fold into the unbounded last bucket.
	for i := 0; i < n; i++ {
		v := d.i64()
		j := i
		if j >= len(h.Buckets) {
			j = len(h.Buckets) - 1
			h.Buckets[j] += v
			continue
		}
		h.Buckets[j] = v
	}
	return h
}

// encSnapshot writes an obs.Snapshot; per-class entries are emitted in
// sorted name order, making the encoding deterministic.
func encSnapshot(e *enc, s obs.Snapshot) {
	e.u32(uint32(s.Shards))
	e.i64(s.WindowStartNS)
	e.u32(uint32(s.Segments))
	encCounters(e, s.C)
	names := obs.SortedOpNames(s.Ops)
	e.u32(uint32(len(names)))
	for _, name := range names {
		st := s.Ops[name]
		e.bytes([]byte(name))
		e.i64(st.Count)
		e.i64(st.Errors)
		encHist(e, st.Virt)
		encHist(e, st.Wall)
	}
}

func decSnapshot(d *dec) obs.Snapshot {
	s := obs.Snapshot{
		Shards:        int(d.u32()),
		WindowStartNS: d.i64(),
		Segments:      int(d.u32()),
		C:             decCounters(d),
	}
	n := int(d.u32())
	if d.err != nil || n > 1024 {
		d.err = ErrShortPayload
		return obs.Snapshot{}
	}
	if n > 0 {
		s.Ops = make(map[string]obs.OpStats, n)
	}
	for i := 0; i < n; i++ {
		name := string(d.bytes())
		st := obs.OpStats{Count: d.i64(), Errors: d.i64()}
		st.Virt = decHist(d)
		st.Wall = decHist(d)
		if d.err != nil {
			return obs.Snapshot{}
		}
		s.Ops[name] = st
	}
	return s
}

func encEvents(e *enc, evs []obs.Event) {
	e.u32(uint32(len(evs)))
	for _, ev := range evs {
		e.u8(uint8(ev.Class))
		e.u32(uint32(ev.Shard))
		if ev.OK {
			e.u8(1)
		} else {
			e.u8(0)
		}
		e.u64(ev.LPA)
		e.i64(ev.IssueNS)
		e.i64(ev.DoneNS)
	}
}

func decEvents(d *dec) []obs.Event {
	n := int(d.u32())
	if d.err != nil || n > maxFrame/16 {
		return nil
	}
	out := make([]obs.Event, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		ev := obs.Event{
			Class: obs.Class(d.u8()),
			Shard: int(d.u32()),
			OK:    d.u8() == 1,
			LPA:   d.u64(),
		}
		ev.IssueNS = d.i64()
		ev.DoneNS = d.i64()
		if d.err != nil {
			return nil
		}
		out = append(out, ev)
	}
	return out
}
