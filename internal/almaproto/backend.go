package almaproto

import (
	"sync"

	"almanac/internal/array"
	"almanac/internal/core"
	"almanac/internal/obs"
	"almanac/internal/timekits"
	"almanac/internal/vclock"
)

// Backend is what the server dispatches onto: a single TimeSSD (wrapped in
// a device-wide lock, the firmware's single command interpreter) or a
// sharded array (internally synchronised per shard; see the locking notes
// in server.go). Each implementation owns its own synchronisation —
// dispatch holds no lock of its own.
type Backend interface {
	Identify() Identity
	Stats() DeviceStats
	Metrics() obs.Snapshot
	Trace(max int) []obs.Event

	Read(lpa uint64, at vclock.Time) ([]byte, vclock.Time, error)
	Write(lpa uint64, data []byte, at vclock.Time) (vclock.Time, error)
	Trim(lpa uint64, at vclock.Time) (vclock.Time, error)

	AddrQuery(addr uint64, cnt int, t, at vclock.Time) (timekits.Result[[]timekits.PageVersions], error)
	AddrQueryRange(addr uint64, cnt int, t1, t2, at vclock.Time) (timekits.Result[[]timekits.PageVersions], error)
	AddrQueryAll(addr uint64, cnt int, at vclock.Time) (timekits.Result[[]timekits.PageVersions], error)

	TimeQuery(t, at vclock.Time) (timekits.Result[[]core.UpdateRecord], error)
	TimeQueryRange(t1, t2, at vclock.Time) (timekits.Result[[]core.UpdateRecord], error)
	TimeQueryAll(at vclock.Time) (timekits.Result[[]core.UpdateRecord], error)

	RollBack(addr uint64, cnt int, t, at vclock.Time) (timekits.Result[int], error)
	RollBackAll(t, at vclock.Time) (timekits.Result[int], error)
	RollBackParallel(lpas []uint64, threads int, t, at vclock.Time) (timekits.Result[int], error)
}

// deviceBackend serves one TimeSSD. The device model is a single firmware
// command interpreter, so every command — including Identify and Stats,
// which read mutable device state — serialises on one mutex.
type deviceBackend struct {
	mu  sync.Mutex
	dev *core.TimeSSD
	kit *timekits.Kit
}

func newDeviceBackend(dev *core.TimeSSD) *deviceBackend {
	return &deviceBackend{dev: dev, kit: timekits.New(dev)}
}

func (b *deviceBackend) Identify() Identity {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Identity{
		PageSize:     b.dev.PageSize(),
		LogicalPages: b.dev.LogicalPages(),
		Channels:     b.dev.Config().FTL.Flash.Channels,
		Shards:       1,
		WindowStart:  b.dev.RetentionWindowStart(),
	}
}

func (b *deviceBackend) Stats() DeviceStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return DeviceStatsView(b.dev.Counters())
}

func (b *deviceBackend) Metrics() obs.Snapshot {
	// Counter and window state belong to the device and need the firmware
	// lock; the histogram maps are read from the lock-free registry after
	// release (obs calls must stay out of lock regions — almalint lockorder).
	b.mu.Lock()
	snap := obs.Snapshot{
		Shards:        1,
		WindowStartNS: int64(b.dev.RetentionWindowStart()),
		Segments:      b.dev.Segments(),
		C:             b.dev.Counters(),
	}
	reg := b.dev.Obs()
	b.mu.Unlock()
	snap.Ops = reg.Ops()
	return snap
}

func (b *deviceBackend) Trace(max int) []obs.Event {
	// The trace ring is lock-free by construction; no firmware lock.
	return b.dev.Obs().Trace(max)
}

func (b *deviceBackend) Read(lpa uint64, at vclock.Time) ([]byte, vclock.Time, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dev.Read(lpa, at)
}

func (b *deviceBackend) Write(lpa uint64, data []byte, at vclock.Time) (vclock.Time, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dev.Write(lpa, data, at)
}

func (b *deviceBackend) Trim(lpa uint64, at vclock.Time) (vclock.Time, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dev.Trim(lpa, at)
}

func (b *deviceBackend) AddrQuery(addr uint64, cnt int, t, at vclock.Time) (timekits.Result[[]timekits.PageVersions], error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.kit.AddrQuery(addr, cnt, t, at)
}

func (b *deviceBackend) AddrQueryRange(addr uint64, cnt int, t1, t2, at vclock.Time) (timekits.Result[[]timekits.PageVersions], error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.kit.AddrQueryRange(addr, cnt, t1, t2, at)
}

func (b *deviceBackend) AddrQueryAll(addr uint64, cnt int, at vclock.Time) (timekits.Result[[]timekits.PageVersions], error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.kit.AddrQueryAll(addr, cnt, at)
}

func (b *deviceBackend) TimeQuery(t, at vclock.Time) (timekits.Result[[]core.UpdateRecord], error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.kit.TimeQuery(t, at)
}

func (b *deviceBackend) TimeQueryRange(t1, t2, at vclock.Time) (timekits.Result[[]core.UpdateRecord], error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.kit.TimeQueryRange(t1, t2, at)
}

func (b *deviceBackend) TimeQueryAll(at vclock.Time) (timekits.Result[[]core.UpdateRecord], error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.kit.TimeQueryAll(at)
}

func (b *deviceBackend) RollBack(addr uint64, cnt int, t, at vclock.Time) (timekits.Result[int], error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.kit.RollBack(addr, cnt, t, at)
}

func (b *deviceBackend) RollBackAll(t, at vclock.Time) (timekits.Result[int], error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.kit.RollBackAll(t, at)
}

func (b *deviceBackend) RollBackParallel(lpas []uint64, threads int, t, at vclock.Time) (timekits.Result[int], error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.kit.RollBackParallel(lpas, threads, t, at)
}

// arrayBackend serves a sharded array. It adds no locking: the array
// routes every command through per-shard worker queues, so commands to
// different shards run in parallel and Identify/Stats are lock-free
// snapshot reads that never queue behind long queries.
type arrayBackend struct {
	arr *array.Array
}

func (b *arrayBackend) Identify() Identity {
	return Identity{
		PageSize:     b.arr.PageSize(),
		LogicalPages: b.arr.LogicalPages(),
		// Total flash channels the host can drive concurrently.
		Channels:    b.arr.Shards() * b.arr.ShardConfig().FTL.Flash.Channels,
		Shards:      b.arr.Shards(),
		WindowStart: b.arr.RetentionWindowStart(),
	}
}

func (b *arrayBackend) Stats() DeviceStats {
	return DeviceStatsView(b.arr.StatsView())
}

func (b *arrayBackend) Metrics() obs.Snapshot {
	return b.arr.ObsSnapshot()
}

func (b *arrayBackend) Trace(max int) []obs.Event {
	return b.arr.TraceEvents(max)
}

func (b *arrayBackend) Read(lpa uint64, at vclock.Time) ([]byte, vclock.Time, error) {
	return b.arr.Read(lpa, at)
}

func (b *arrayBackend) Write(lpa uint64, data []byte, at vclock.Time) (vclock.Time, error) {
	return b.arr.Write(lpa, data, at)
}

func (b *arrayBackend) Trim(lpa uint64, at vclock.Time) (vclock.Time, error) {
	return b.arr.Trim(lpa, at)
}

func (b *arrayBackend) AddrQuery(addr uint64, cnt int, t, at vclock.Time) (timekits.Result[[]timekits.PageVersions], error) {
	return b.arr.AddrQuery(addr, cnt, t, at)
}

func (b *arrayBackend) AddrQueryRange(addr uint64, cnt int, t1, t2, at vclock.Time) (timekits.Result[[]timekits.PageVersions], error) {
	return b.arr.AddrQueryRange(addr, cnt, t1, t2, at)
}

func (b *arrayBackend) AddrQueryAll(addr uint64, cnt int, at vclock.Time) (timekits.Result[[]timekits.PageVersions], error) {
	return b.arr.AddrQueryAll(addr, cnt, at)
}

func (b *arrayBackend) TimeQuery(t, at vclock.Time) (timekits.Result[[]core.UpdateRecord], error) {
	return b.arr.TimeQuery(t, at)
}

func (b *arrayBackend) TimeQueryRange(t1, t2, at vclock.Time) (timekits.Result[[]core.UpdateRecord], error) {
	return b.arr.TimeQueryRange(t1, t2, at)
}

func (b *arrayBackend) TimeQueryAll(at vclock.Time) (timekits.Result[[]core.UpdateRecord], error) {
	return b.arr.TimeQueryAll(at)
}

func (b *arrayBackend) RollBack(addr uint64, cnt int, t, at vclock.Time) (timekits.Result[int], error) {
	return b.arr.RollBack(addr, cnt, t, at)
}

func (b *arrayBackend) RollBackAll(t, at vclock.Time) (timekits.Result[int], error) {
	return b.arr.RollBackAll(t, at)
}

func (b *arrayBackend) RollBackParallel(lpas []uint64, threads int, t, at vclock.Time) (timekits.Result[int], error) {
	return b.arr.RollBackParallel(lpas, threads, t, at)
}
