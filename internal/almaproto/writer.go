package almaproto

import (
	"encoding/binary"
	"io"
	"net"
	"sync"

	"almanac/internal/obs"
	"almanac/internal/service"
)

// connWriter is the output half of a tagged connection: dispatchers hand
// it completions, a dedicated writer goroutine drains everything that is
// ready and flushes the lot with as few Writes as possible — the same
// batch-drain shape as the array's shard workers, applied to the wire.
//
// Two kinds of work arrive:
//
//   - a ready frame (fb): a fully built length-prefixed response from a
//     per-frame dispatch goroutine;
//   - a pending batch (pb): an OpBatch whose ops the reader already
//     submitted to the shard queues in one pass. The writer completes it
//     (waits the shard commands), encodes the response into a pooled
//     frame, and only then releases the request frame the write payloads
//     alias.
//
// The wake protocol keeps every channel operation outside the queue
// mutex (the lockorder rule proves this package free of channel ops
// under locks): enqueue appends under mu, and only the false→true edge
// of signaled sends the single wake token, so the cap-1 send never
// blocks and the writer never misses work.
type connWriter struct {
	conn  io.Writer
	pool  framePool      // response frames; recycled after each flush
	slots chan struct{}  // the connection's in-flight window; one release per frame written
	wire  *obs.WireStats // per-connection transport counters
	wake  chan struct{}  // cap 1; at most one token outstanding (signaled)
	done  chan struct{}  // closed when the writer goroutine exits

	mu       sync.Mutex
	q        []wireItem
	signaled bool
	stopped  bool

	// Writer-goroutine-owned reusable state.
	batch   []wireItem
	scratch []byte
	nbufs   net.Buffers
	ready   []*frameBuf
	pbFree  []*pendingBatch
	err     error // first write failure; later frames are completed but not written
}

// wireItem is one unit of writer work; exactly one field is set.
type wireItem struct {
	fb *frameBuf
	pb *pendingBatch
}

// pendingBatch is an OpBatch in flight between the reader (which decoded
// it and submitted every op) and the writer (which completes and encodes
// it). ops and run are scratch reused across batches on the connection;
// gen pins the request frame's pool generation so a buffer recycled out
// from under the batch is caught instead of silently decoded.
type pendingBatch struct {
	reqID uint64
	fb    *frameBuf
	pool  *framePool // the reader's request pool fb returns to
	gen   uint32
	ops   []service.BatchOp
	run   service.BatchRun
}

func newConnWriter(conn io.Writer, slots chan struct{}, wire *obs.WireStats) *connWriter {
	w := &connWriter{
		conn:  conn,
		slots: slots,
		wire:  wire,
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	go w.run()
	return w
}

// enqueue hands the writer one completion. Safe from any goroutine.
func (w *connWriter) enqueue(it wireItem) {
	w.mu.Lock()
	w.q = append(w.q, it)
	wakeup := !w.signaled
	w.signaled = true
	w.mu.Unlock()
	if wakeup {
		w.wake <- struct{}{}
	}
}

// stop tells the writer to exit once the queue is drained and waits for
// it. Callers must have stopped producing (ServeTagged waits for every
// dispatch goroutine first), so the drain is complete.
func (w *connWriter) stop() {
	w.mu.Lock()
	w.stopped = true
	wakeup := !w.signaled
	w.signaled = true
	w.mu.Unlock()
	if wakeup {
		w.wake <- struct{}{}
	}
	<-w.done
}

// getBatch leases pending-batch scratch (writer free list; reader-only
// caller, so no lock needed beyond the queue handoff).
func (w *connWriter) getBatch() *pendingBatch {
	w.mu.Lock()
	var pb *pendingBatch
	if k := len(w.pbFree); k > 0 {
		pb = w.pbFree[k-1]
		w.pbFree[k-1] = nil
		w.pbFree = w.pbFree[:k-1]
	}
	w.mu.Unlock()
	if pb == nil {
		pb = &pendingBatch{}
	}
	return pb
}

func (w *connWriter) putBatch(pb *pendingBatch) {
	pb.fb = nil
	w.mu.Lock()
	w.pbFree = append(w.pbFree, pb)
	w.mu.Unlock()
}

func (w *connWriter) run() {
	defer close(w.done)
	for range w.wake {
		for {
			w.mu.Lock()
			if len(w.q) == 0 {
				w.signaled = false
				stopped := w.stopped
				w.mu.Unlock()
				if stopped {
					return
				}
				break
			}
			w.batch = append(w.batch[:0], w.q...)
			for i := range w.q {
				w.q[i] = wireItem{}
			}
			w.q = w.q[:0]
			w.mu.Unlock()
			w.process(w.batch)
		}
	}
}

// process completes and flushes one drained batch of writer work. Every
// item is completed even after a write failure — batch commands must be
// collected from the shard queues and window slots must keep flowing so
// a reader blocked on the window can reach its own read error and hang
// up.
func (w *connWriter) process(items []wireItem) {
	w.ready = w.ready[:0]
	for _, it := range items {
		if it.pb != nil {
			w.ready = append(w.ready, w.completeBatch(it.pb))
		} else {
			w.ready = append(w.ready, it.fb)
		}
	}
	if w.err == nil {
		w.err = flushFrames(w.conn, w.ready, &w.scratch, &w.nbufs, w.wire)
	}
	for i, fb := range w.ready {
		w.pool.release(fb)
		w.ready[i] = nil
	}
	for range items {
		<-w.slots
	}
}

// completeBatch waits for the batch's shard commands, encodes the tagged
// response into a pooled frame, and releases the request frame (safe
// now: every write payload aliasing it has been programmed into the
// device arena by the shard workers).
func (w *connWriter) completeBatch(pb *pendingBatch) *frameBuf {
	results := pb.run.Complete()
	out := w.pool.acquire(12)
	e := enc{b: out.b[:12]}
	e.u8(StatusOK)
	encBatchResults(&e, pb.ops, results)
	out.b = e.b
	binary.LittleEndian.PutUint32(out.b, uint32(len(out.b)-4))
	binary.LittleEndian.PutUint64(out.b[4:], pb.reqID)
	if pb.fb.stale(pb.gen) {
		panic("almaproto: batch request frame recycled while its ops were in flight")
	}
	reqFB, pool := pb.fb, pb.pool
	w.putBatch(pb)
	pool.release(reqFB)
	return out
}
