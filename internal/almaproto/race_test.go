//go:build race

package almaproto

// raceEnabled reports whether the race detector is compiled in; the
// allocation pins relax under it (race instrumentation allocates on
// channel and map operations the production build does not).
const raceEnabled = true
