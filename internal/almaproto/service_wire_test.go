package almaproto

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"almanac/internal/array"
	"almanac/internal/core"
	"almanac/internal/flash"
	"almanac/internal/ftl"
	"almanac/internal/service"
	"almanac/internal/vclock"
)

// newServiceArray builds a small two-shard array wrapped in a volume
// service, mirroring newDevice's geometry per shard.
func newServiceArray(t testing.TB) *service.Service {
	t.Helper()
	fc := flash.DefaultConfig()
	fc.Channels = 2
	fc.ChipsPerChannel = 1
	fc.BlocksPerPlane = 32
	fc.PagesPerBlock = 16
	fc.PageSize = 512
	cfg := core.DefaultConfig(ftl.WithFlash(fc))
	cfg.MinRetention = 0
	arr, err := array.New(array.Config{Shards: 2, Shard: cfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { arr.Close() })
	return service.New(arr)
}

// servicePipe wires a client to a volume-service server over net.Pipe.
func servicePipe(t testing.TB) (*Client, *service.Service) {
	t.Helper()
	svc := newServiceArray(t)
	srv := NewServiceServer(svc)
	cliEnd, srvEnd := net.Pipe()
	go srv.ServeOne(srvEnd)
	c := NewClient(cliEnd)
	t.Cleanup(func() { c.Close(); srvEnd.Close() })
	return c, svc
}

// TestGoldenWireV4 pins the byte-level encoding of the tagged transport
// and every v4 opcode. Requests are hand-built (raw, not enc) and written
// straight to the connection; a twin service is driven through the
// identical operation sequence via the direct API, and — the simulation
// being deterministic — the server's response frames must equal
// hand-encoded responses derived from the twin, request ID echo included.
// One frame is kept in flight at a time so completions cannot reorder.
func TestGoldenWireV4(t *testing.T) {
	svc := newServiceArray(t)
	twin := newServiceArray(t)
	srv := NewServiceServer(svc)
	cliEnd, srvEnd := net.Pipe()
	t.Cleanup(func() { cliEnd.Close(); srvEnd.Close() })
	go srv.ServeOne(srvEnd)

	rt := func(frame raw) []byte {
		t.Helper()
		var resp []byte
		var rerr error
		done := make(chan struct{})
		go func() {
			resp, rerr = readFrame(cliEnd)
			close(done)
		}()
		if err := writeFrame(cliEnd, frame); err != nil {
			t.Fatal(err)
		}
		<-done
		if rerr != nil {
			t.Fatal(rerr)
		}
		return resp
	}
	// tagStep sends one tagged request and checks the completion frame
	// byte-for-byte: echoed request ID, then status and payload.
	tagStep := func(name string, reqID uint64, req raw, want *enc) {
		t.Helper()
		resp := rt(append(raw{}.u64(reqID), req...))
		exp := append(raw{}.u64(reqID), want.b...)
		if !bytes.Equal(resp, []byte(exp)) {
			t.Fatalf("%s completion:\n got % x\nwant % x", name, resp, exp)
		}
	}
	okResp := func() *enc {
		e := &enc{}
		e.u8(0)
		return e
	}

	arr := twin.Array()
	ps := arr.PageSize()

	// Untagged Identify announcing v4: geometry, version, then the
	// appended in-flight window. This is the last untagged frame.
	want := okResp()
	want.u32(uint32(arr.PageSize()))
	want.u64(uint64(arr.LogicalPages()))
	want.u32(4) // 2 shards × 2 channels
	want.u32(2)
	want.time(arr.RetentionWindowStart())
	want.u32(VersionService)
	want.u32(DefaultWindow)
	resp := rt(raw{}.u8(uint8(OpIdentify)).u32(CurrentVersion))
	if !bytes.Equal(resp, want.b) {
		t.Fatalf("Identify response:\n got % x\nwant % x", resp, want.b)
	}

	// VolCreate: name, key, pages, retention, at → volume id.
	at1 := vclock.Time(vclock.Hour)
	tvol, err := twin.Create("alpha", "k1", 64, 0, at1)
	if err != nil {
		t.Fatal(err)
	}
	want = okResp()
	want.u32(tvol.ID())
	tagStep("VolCreate", 0xA1, raw{}.u8(uint8(OpVolCreate)).
		blob([]byte("alpha")).blob([]byte("k1")).u64(64).i64(0).t(at1), want)

	// VolAttach echoes the volume description plus its window start at
	// the attach time.
	in := tvol.Info()
	want = okResp()
	want.u32(in.ID)
	want.u64(in.Pages)
	want.i64(int64(in.Retention))
	want.time(in.CreatedAt)
	want.time(tvol.WindowStart(at1))
	tagStep("VolAttach", 0xA2, raw{}.u8(uint8(OpVolAttach)).
		blob([]byte("alpha")).blob([]byte("k1")).t(at1), want)

	// OpBatch: two writes, a read, a trim — all volume-relative.
	dataA, dataB := page(nil, 0xa1, ps), page(nil, 0xb2, ps)
	at2 := vclock.Time(2 * vclock.Hour)
	ops := []service.BatchOp{
		{Kind: service.KindWrite, LPA: 3, Data: dataA, At: at2},
		{Kind: service.KindWrite, LPA: 7, Data: dataB, At: at2.Add(vclock.Second)},
		{Kind: service.KindRead, LPA: 3, At: at2.Add(2 * vclock.Second)},
		{Kind: service.KindTrim, LPA: 7, At: at2.Add(3 * vclock.Second)},
	}
	results := tvol.Batch(ops)
	req := raw{}.u8(uint8(OpBatch)).u32(tvol.ID()).u32(uint32(len(ops)))
	for _, op := range ops {
		req = req.u8(uint8(op.Kind)).u64(op.LPA).t(op.At)
		if op.Kind == service.KindWrite {
			req = req.blob(op.Data)
		}
	}
	want = okResp()
	want.u32(uint32(len(results)))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("twin batch op %d failed: %v", i, r.Err)
		}
		want.u8(StatusOK)
		want.time(r.Done)
		if ops[i].Kind == service.KindRead {
			want.bytes(r.Data)
		}
	}
	tagStep("Batch", 0xA3, req, want)

	// VolList: count then each volume in name order.
	want = okResp()
	infos := twin.List()
	want.u32(uint32(len(infos)))
	for _, in := range infos {
		want.u32(in.ID)
		want.bytes([]byte(in.Name))
		want.u64(in.Pages)
		want.i64(int64(in.Retention))
		want.time(in.CreatedAt)
	}
	tagStep("VolList", 0xA4, raw{}.u8(uint8(OpVolList)), want)

	// VolRollBack to between the writes and the trim: LPA 7 reverts to
	// dataB.
	rbT, rbAt := at2.Add(2*vclock.Second), vclock.Time(4*vclock.Hour)
	res, err := tvol.RollBack(rbT, rbAt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value == 0 {
		t.Fatal("twin rollback changed nothing; the golden step would not exercise reversion")
	}
	want = okResp()
	want.time(res.Done)
	want.u32(uint32(res.Value))
	tagStep("VolRollBack", 0xA5, raw{}.u8(uint8(OpVolRollBack)).u32(tvol.ID()).t(rbT).t(rbAt), want)

	// VolStats: the volume's obs snapshot (registry disabled, so counters
	// only — deterministic).
	want = okResp()
	encSnapshot(want, tvol.Snapshot())
	tagStep("VolStats", 0xA6, raw{}.u8(uint8(OpVolStats)).u32(tvol.ID()), want)

	// VolDelete: the scrub's virtual completion time.
	at5 := vclock.Time(5 * vclock.Hour)
	done, err := twin.Delete("alpha", "k1", at5)
	if err != nil {
		t.Fatal(err)
	}
	want = okResp()
	want.time(done)
	tagStep("VolDelete", 0xA7, raw{}.u8(uint8(OpVolDelete)).
		blob([]byte("alpha")).blob([]byte("k1")).t(at5), want)
}

// gatedBackend blocks reads of LPA 0 until the gate closes, making
// completion order controllable from the test.
type gatedBackend struct {
	Backend
	gate chan struct{}
}

func (g *gatedBackend) Read(lpa uint64, at vclock.Time) ([]byte, vclock.Time, error) {
	if lpa == 0 {
		<-g.gate
	}
	return g.Backend.Read(lpa, at)
}

// TestTaggedOutOfOrderCompletion proves the v4 transport completes
// requests out of submission order: a read stalled in the backend does
// not block the completion of a read submitted after it.
func TestTaggedOutOfOrderCompletion(t *testing.T) {
	dev := newDevice(t)
	srv := NewServer(dev)
	gate := make(chan struct{})
	srv.backend = &gatedBackend{Backend: srv.backend, gate: gate}

	cliEnd, srvEnd := net.Pipe()
	t.Cleanup(func() { cliEnd.Close(); srvEnd.Close() })
	go srv.ServeOne(srvEnd)
	c := NewClient(cliEnd)

	if _, err := c.Identify(); err != nil {
		t.Fatal(err)
	}
	ps := dev.PageSize()
	if _, err := c.Write(0, page(c, 0x01, ps), vclock.Time(vclock.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(1, page(c, 0x02, ps), vclock.Time(2*vclock.Second)); err != nil {
		t.Fatal(err)
	}

	at := vclock.Time(vclock.Minute)
	r0, err := c.SubmitRead(0, at) // stalls in the gated backend
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c.SubmitRead(1, at)
	if err != nil {
		t.Fatal(err)
	}
	// r1 completes while r0 is still held — its Wait returning at all is
	// the proof, since r0's completion cannot be written before the gate
	// opens.
	data, _, err := r1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 0x02 {
		t.Fatalf("read 1 returned %#x", data[0])
	}
	close(gate)
	data, _, err = r0.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 0x01 {
		t.Fatalf("read 0 returned %#x", data[0])
	}
}

// TestBatchPartialFailure drives a mixed batch over the wire: the bad ops
// come back with their own typed statuses and the good ops complete
// unharmed.
func TestBatchPartialFailure(t *testing.T) {
	c, _ := servicePipe(t)
	if _, err := c.Identify(); err != nil {
		t.Fatal(err)
	}
	at := vclock.Time(vclock.Hour)
	info, err := c.VolCreate("data", "secret", 16, 0, at)
	if err != nil {
		t.Fatal(err)
	}
	if info, err = c.VolAttach("data", "secret", at); err != nil {
		t.Fatal(err)
	}

	payload := page(c, 0x5a, 512)
	results, err := c.Batch(info.ID, []service.BatchOp{
		{Kind: service.KindWrite, LPA: 2, Data: payload, At: at.Add(vclock.Second)},
		{Kind: service.KindWrite, LPA: 999, Data: payload, At: at.Add(vclock.Second)}, // out of range
		{Kind: service.KindRead, LPA: 2, At: at.Add(2 * vclock.Second)},
		{Kind: service.KindRead, LPA: 3, At: at.Add(-vclock.Hour)}, // before volume creation
		{Kind: service.KindTrim, LPA: 2, At: at.Add(3 * vclock.Second)},
	})
	if err != nil {
		t.Fatalf("batch itself failed: %v", err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results", len(results))
	}
	for _, i := range []int{0, 2, 4} {
		if results[i].Err != nil {
			t.Fatalf("good op %d poisoned: %v", i, results[i].Err)
		}
	}
	if !bytes.Equal(results[2].Data, payload) {
		t.Fatal("read in a partially-failing batch returned wrong data")
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "out of range") {
		t.Fatalf("out-of-range op error = %v", results[1].Err)
	}
	if !errors.Is(results[3].Err, service.ErrBeforeWindow) {
		t.Fatalf("before-creation op error = %v, want ErrBeforeWindow through the wire", results[3].Err)
	}
}

// TestVolumeAuthOverWire checks the typed auth failures survive the wire:
// wrong keys and unattached ids both come back as service.ErrAuth.
func TestVolumeAuthOverWire(t *testing.T) {
	c, _ := servicePipe(t)
	at := vclock.Time(vclock.Hour)
	if _, err := c.VolCreate("vault", "right", 8, 0, at); err != nil {
		t.Fatal(err)
	}
	if _, err := c.VolAttach("vault", "wrong", at); !errors.Is(err, service.ErrAuth) {
		t.Fatalf("wrong key attach error = %v, want ErrAuth", err)
	}
	if _, err := c.VolAttach("ghost", "x", at); !errors.Is(err, service.ErrNoVolume) {
		t.Fatalf("missing volume attach error = %v, want ErrNoVolume", err)
	}
	if _, err := c.VolStats(42); !errors.Is(err, service.ErrAuth) {
		t.Fatalf("unattached VolStats error = %v, want ErrAuth", err)
	}
	if _, err := c.VolDelete("vault", "wrong", at); !errors.Is(err, service.ErrAuth) {
		t.Fatalf("wrong key delete error = %v, want ErrAuth", err)
	}
}

// TestInteropOldClientNewServer emulates v1/v2/v3 clients against a v4
// service server: negotiation lands on the client's level, the connection
// stays untagged, the pre-v4 surface works, and the v4 surface fails with
// an error naming both versions.
func TestInteropOldClientNewServer(t *testing.T) {
	for _, cv := range []uint32{Version1, VersionArray, VersionObs} {
		t.Run(fmt.Sprintf("v%d", cv), func(t *testing.T) {
			c, _ := servicePipe(t)
			c.maxVersion = cv
			id, err := c.Identify()
			if err != nil {
				t.Fatal(err)
			}
			if uint32(id.Version) != cv {
				t.Fatalf("negotiated v%d, want v%d", id.Version, cv)
			}
			if id.Window != 0 {
				t.Fatalf("pre-v4 negotiation advertised window %d", id.Window)
			}
			c.pmu.Lock()
			tagged := c.tagged
			c.pmu.Unlock()
			if tagged {
				t.Fatal("pre-v4 client switched to the tagged transport")
			}

			at := vclock.Time(vclock.Second)
			if _, err := c.Write(3, page(c, 0x77, 512), at); err != nil {
				t.Fatal(err)
			}
			data, _, err := c.Read(3, at.Add(vclock.Second))
			if err != nil || data[0] != 0x77 {
				t.Fatalf("pre-v4 read broken: %v %#x", err, data[0])
			}

			_, err = c.VolCreate("x", "k", 8, 0, at)
			if err == nil || !strings.Contains(err.Error(), "requires protocol v4") ||
				!strings.Contains(err.Error(), fmt.Sprintf("v%d", cv)) {
				t.Fatalf("VolCreate on v%d connection: %v", cv, err)
			}

			_, err = c.Metrics()
			if cv >= VersionObs && err != nil {
				t.Fatalf("v3 client lost Metrics: %v", err)
			}
			if cv < VersionObs && (err == nil || !strings.Contains(err.Error(), "requires protocol v3")) {
				t.Fatalf("Metrics on v%d connection: %v", cv, err)
			}
		})
	}
}

// TestInteropNewClientOldServer emulates v1/v2/v3 servers under a v4
// client: the client stays on the sync transport, classic commands work,
// and both the async surface and the volume surface fail with version
// errors.
func TestInteropNewClientOldServer(t *testing.T) {
	for _, sv := range []uint32{Version1, VersionArray, VersionObs} {
		t.Run(fmt.Sprintf("v%d", sv), func(t *testing.T) {
			dev := newDevice(t)
			srv := NewServer(dev)
			srv.maxVersion = sv
			cliEnd, srvEnd := net.Pipe()
			t.Cleanup(func() { cliEnd.Close(); srvEnd.Close() })
			go srv.ServeOne(srvEnd)
			c := NewClient(cliEnd)

			id, err := c.Identify()
			if err != nil {
				t.Fatal(err)
			}
			if uint32(id.Version) != sv || id.Window != 0 {
				t.Fatalf("negotiated v%d window %d against a v%d server", id.Version, id.Window, sv)
			}

			at := vclock.Time(vclock.Second)
			if _, err := c.Write(5, page(c, 0x33, dev.PageSize()), at); err != nil {
				t.Fatal(err)
			}
			data, _, err := c.Read(5, at.Add(vclock.Second))
			if err != nil || data[0] != 0x33 {
				t.Fatalf("sync path broken against v%d server: %v", sv, err)
			}

			if _, err := c.SubmitRead(5, at); err == nil ||
				!strings.Contains(err.Error(), "requires protocol v4") {
				t.Fatalf("SubmitRead against v%d server: %v", sv, err)
			}
			if _, err := c.NewPipeline(4); err == nil ||
				!strings.Contains(err.Error(), "requires protocol v4") {
				t.Fatalf("NewPipeline against v%d server: %v", sv, err)
			}
			if _, err := c.VolList(); err == nil ||
				!strings.Contains(err.Error(), "requires protocol v4") {
				t.Fatalf("VolList against v%d server: %v", sv, err)
			}
		})
	}
}

// TestPipelinedClientConcurrency hammers one tagged connection from many
// goroutines — sync methods and the async surface together — and then
// verifies every page landed intact. Run under -race this also proves the
// demux plumbing is clean.
func TestPipelinedClientConcurrency(t *testing.T) {
	c, _ := servicePipe(t)
	if _, err := c.Identify(); err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		pages   = 16
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * pages)
			at := vclock.Time(vclock.Hour + vclock.Duration(w)*vclock.Minute)
			for i := uint64(0); i < pages; i++ {
				if _, err := c.Write(base+i, page(c, byte(w*pages+int(i)), 512), at.Add(vclock.Duration(i)*vclock.Second)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Verify through a pipeline with completion callbacks.
	p, err := c.NewPipeline(0) // server-advertised window
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	bad := 0
	at := vclock.Time(2 * vclock.Hour)
	for w := 0; w < workers; w++ {
		for i := uint64(0); i < pages; i++ {
			lpa := uint64(w*pages) + i
			want := byte(w*pages + int(i))
			if err := p.Read(lpa, at, func(r ReadResult, err error) {
				if err != nil || len(r.Data) == 0 || r.Data[0] != want {
					mu.Lock()
					bad++
					mu.Unlock()
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d pipelined reads returned wrong data", bad)
	}
}

// TestPipelineSurvivesFlush checks a pipeline stays usable after a clean
// Flush and that trims ride it too.
func TestPipelineSurvivesFlush(t *testing.T) {
	c, _ := servicePipe(t)
	p, err := c.NewPipeline(4)
	if err != nil {
		t.Fatal(err)
	}
	at := vclock.Time(vclock.Hour)
	for i := uint64(0); i < 8; i++ {
		if err := p.Write(i, page(c, byte(i+1), 512), at.Add(vclock.Duration(i)*vclock.Second)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		if err := p.Trim(i, at.Add(vclock.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if data, _, err := c.Read(0, at.Add(2*vclock.Minute)); err != nil || data[0] != 0 {
		t.Fatalf("trimmed page: %v %#x, want zeroes", err, data[0])
	}
	data, _, err := c.Read(5, at.Add(2*vclock.Minute))
	if err != nil || data[0] != 6 {
		t.Fatalf("untrimmed page: %v %#x", err, data[0])
	}
}
