package almaproto

import (
	"bytes"
	"encoding/binary"
	"net"
	"reflect"
	"strings"
	"testing"

	"almanac/internal/obs"
	"almanac/internal/timekits"
	"almanac/internal/vclock"
)

// raw builds request bodies by hand, independent of the enc helper, so
// the golden test pins the documented little-endian field layout rather
// than merely checking that enc and dec agree with each other.
type raw []byte

func (r raw) u8(v uint8) raw      { return append(r, v) }
func (r raw) u32(v uint32) raw    { return binary.LittleEndian.AppendUint32(r, v) }
func (r raw) u64(v uint64) raw    { return binary.LittleEndian.AppendUint64(r, v) }
func (r raw) i64(v int64) raw     { return r.u64(uint64(v)) }
func (r raw) t(t vclock.Time) raw { return r.i64(int64(t)) }
func (r raw) blob(p []byte) raw   { return append(r.u32(uint32(len(p))), p...) }

// TestGoldenRequestBytes pins the client-side encoding of a simple
// request against a hardcoded byte string: opcode, then fields in
// documented order, little endian throughout.
func TestGoldenRequestBytes(t *testing.T) {
	e := request(OpRead)
	e.u64(0x0102030405060708)
	e.time(vclock.Time(0x1112131415161718))
	want := []byte{
		0x02,
		0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,
		0x18, 0x17, 0x16, 0x15, 0x14, 0x13, 0x12, 0x11,
	}
	if !bytes.Equal(e.b, want) {
		t.Fatalf("OpRead request encoding:\n got % x\nwant % x", e.b, want)
	}
}

// TestGoldenWire round-trips every opcode byte-for-byte: each request is
// hand-built (raw, not enc) and dispatched against one device, while a
// twin device is driven through the identical operation sequence via the
// direct API; the simulation is deterministic, so the server's response
// bytes must equal a hand-encoded response derived from the twin.
// Observability stays disabled so the OpMetrics/OpTrace payloads are
// deterministic too (counters only, no wall-time histograms).
func TestGoldenWire(t *testing.T) {
	dev := newDevice(t)
	twin := newDevice(t)
	srv := NewServer(dev)
	st := newConnState()
	kit := timekits.New(twin)
	ps := twin.PageSize()

	step := func(name string, req raw, want *enc) {
		t.Helper()
		resp := srv.dispatch(st, []byte(req))
		if !bytes.Equal(resp, want.b) {
			t.Fatalf("%s response:\n got % x\nwant % x", name, resp, want.b)
		}
	}
	okResp := func() *enc {
		e := &enc{}
		e.u8(0)
		return e
	}

	// Identify, announcing the current version; the response carries
	// geometry plus the agreed version and — since v4 — the server's
	// in-flight window appended at the end.
	want := okResp()
	want.u32(uint32(twin.PageSize()))
	want.u64(uint64(twin.LogicalPages()))
	want.u32(2) // newDevice geometry: 2 channels
	want.u32(1)
	want.time(twin.RetentionWindowStart())
	want.u32(CurrentVersion)
	want.u32(DefaultWindow)
	step("Identify", raw{}.u8(uint8(OpIdentify)).u32(CurrentVersion), want)

	// Two versions of LPA 5, then a write+trim of LPA 6.
	dataA, dataB := page(nil, 0xa1, ps), page(nil, 0xb2, ps)
	at1, at2 := vclock.Time(vclock.Hour), vclock.Time(2*vclock.Hour)
	done, err := twin.Write(5, dataA, at1)
	if err != nil {
		t.Fatal(err)
	}
	want = okResp()
	want.time(done)
	step("Write v1", raw{}.u8(uint8(OpWrite)).u64(5).t(at1).blob(dataA), want)

	done, err = twin.Write(5, dataB, at2)
	if err != nil {
		t.Fatal(err)
	}
	want = okResp()
	want.time(done)
	step("Write v2", raw{}.u8(uint8(OpWrite)).u64(5).t(at2).blob(dataB), want)

	rat := done.Add(vclock.Second)
	rdata, rdone, err := twin.Read(5, rat)
	if err != nil {
		t.Fatal(err)
	}
	want = okResp()
	want.time(rdone)
	want.bytes(rdata)
	step("Read", raw{}.u8(uint8(OpRead)).u64(5).t(rat), want)

	wat := rdone.Add(vclock.Second)
	done, err = twin.Write(6, dataA, wat)
	if err != nil {
		t.Fatal(err)
	}
	want = okResp()
	want.time(done)
	step("Write lpa6", raw{}.u8(uint8(OpWrite)).u64(6).t(wat).blob(dataA), want)

	tat := done.Add(vclock.Second)
	done, err = twin.Trim(6, tat)
	if err != nil {
		t.Fatal(err)
	}
	want = okResp()
	want.time(done)
	step("Trim", raw{}.u8(uint8(OpTrim)).u64(6).t(tat), want)

	now := vclock.Time(3 * vclock.Hour)
	encPVs := func(e *enc, res timekits.Result[[]timekits.PageVersions]) {
		e.time(res.Done)
		e.u32(uint32(len(res.Value)))
		for _, pv := range res.Value {
			e.u64(pv.LPA)
			encVersions(e, pv.Versions)
		}
	}

	aq, err := kit.AddrQuery(5, 1, at1.Add(vclock.Minute), now)
	if err != nil {
		t.Fatal(err)
	}
	want = okResp()
	encPVs(want, aq)
	step("AddrQuery", raw{}.u8(uint8(OpAddrQuery)).u64(5).u32(1).t(at1.Add(vclock.Minute)).t(now), want)

	ar, err := kit.AddrQueryRange(5, 1, 0, at2, now)
	if err != nil {
		t.Fatal(err)
	}
	want = okResp()
	encPVs(want, ar)
	step("AddrQueryRange", raw{}.u8(uint8(OpAddrQueryRange)).u64(5).u32(1).t(0).t(at2).t(now), want)

	aa, err := kit.AddrQueryAll(5, 1, now)
	if err != nil {
		t.Fatal(err)
	}
	want = okResp()
	encPVs(want, aa)
	step("AddrQueryAll", raw{}.u8(uint8(OpAddrQueryAll)).u64(5).u32(1).t(now), want)

	tq, err := kit.TimeQuery(at2-1, now)
	if err != nil {
		t.Fatal(err)
	}
	want = okResp()
	want.time(tq.Done)
	encRecords(want, tq.Value)
	step("TimeQuery", raw{}.u8(uint8(OpTimeQuery)).t(at2-1).t(now), want)

	tr, err := kit.TimeQueryRange(0, at2, now)
	if err != nil {
		t.Fatal(err)
	}
	want = okResp()
	want.time(tr.Done)
	encRecords(want, tr.Value)
	step("TimeQueryRange", raw{}.u8(uint8(OpTimeQueryRange)).t(0).t(at2).t(now), want)

	ta, err := kit.TimeQueryAll(now)
	if err != nil {
		t.Fatal(err)
	}
	want = okResp()
	want.time(ta.Done)
	encRecords(want, ta.Value)
	step("TimeQueryAll", raw{}.u8(uint8(OpTimeQueryAll)).t(now), want)

	rbAt := vclock.Time(4 * vclock.Hour)
	rb, err := kit.RollBack(5, 1, at1.Add(vclock.Minute), rbAt)
	if err != nil {
		t.Fatal(err)
	}
	want = okResp()
	want.time(rb.Done)
	want.u32(uint32(rb.Value))
	step("RollBack", raw{}.u8(uint8(OpRollBack)).u64(5).u32(1).t(at1.Add(vclock.Minute)).t(rbAt), want)

	rpAt := rb.Done.Add(vclock.Second)
	rp, err := kit.RollBackParallel([]uint64{5}, 2, at2.Add(vclock.Minute), rpAt)
	if err != nil {
		t.Fatal(err)
	}
	want = okResp()
	want.time(rp.Done)
	want.u32(uint32(rp.Value))
	step("RollBackParallel", raw{}.u8(uint8(OpRollBackParallel)).u32(1).u64(5).u32(2).t(at2.Add(vclock.Minute)).t(rpAt), want)

	raAt := rp.Done.Add(vclock.Second)
	ra, err := kit.RollBackAll(at2.Add(vclock.Minute), raAt)
	if err != nil {
		t.Fatal(err)
	}
	want = okResp()
	want.time(ra.Done)
	want.u32(uint32(ra.Value))
	step("RollBackAll", raw{}.u8(uint8(OpRollBackAll)).t(at2.Add(vclock.Minute)).t(raAt), want)

	c := twin.Counters()
	want = okResp()
	for _, v := range []int64{c.HostPageWrites, c.HostPageReads, c.FlashPrograms,
		c.FlashReads, c.FlashErases, c.DeltasCreated, c.WindowDrops} {
		want.i64(v)
	}
	step("Stats", raw{}.u8(uint8(OpStats)), want)

	want = okResp()
	encSnapshot(want, twin.Snapshot())
	step("Metrics", raw{}.u8(uint8(OpMetrics)), want)

	want = okResp()
	want.u32(0) // obs disabled: the trace ring is empty
	step("Trace", raw{}.u8(uint8(OpTrace)).u32(16), want)
}

// TestSnapshotWireRoundTrip pushes a synthetic snapshot — non-trivial
// histograms included — through the v3 encoding: decode(encode(s)) must
// reproduce s exactly, consume every byte, and re-encode to identical
// bytes (the sorted-name order makes the encoding deterministic).
func TestSnapshotWireRoundTrip(t *testing.T) {
	mkHist := func(seed int64) obs.HistSnapshot {
		h := obs.HistSnapshot{Count: 7 + seed, SumNS: 900 * seed, MaxNS: 1e6 * seed}
		for i := range h.Buckets {
			h.Buckets[i] = seed * int64(i%5)
		}
		return h
	}
	s := obs.Snapshot{
		Shards:        3,
		WindowStartNS: 123456789,
		Segments:      11,
		C: obs.Counters{
			HostPageWrites: 42, TrimOps: 3, FlashErases: 9,
			GCDeltaOps: 5, EstimatorTrips: 2,
		},
		Ops: map[string]obs.OpStats{
			"host-write": {Count: 42, Errors: 1, Virt: mkHist(2), Wall: mkHist(3)},
			"gc-pass":    {Count: 4, Virt: mkHist(1)},
		},
	}
	e := &enc{}
	encSnapshot(e, s)
	d := &dec{b: e.b}
	got := decSnapshot(d)
	if d.err != nil {
		t.Fatal(d.err)
	}
	if d.pos != len(d.b) {
		t.Fatalf("%d undecoded bytes", len(d.b)-d.pos)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("snapshot round trip:\n got %+v\nwant %+v", got, s)
	}
	e2 := &enc{}
	encSnapshot(e2, got)
	if !bytes.Equal(e.b, e2.b) {
		t.Fatal("re-encoding is not byte-identical")
	}
}

// TestEventsWireRoundTrip does the same for the OpTrace payload.
func TestEventsWireRoundTrip(t *testing.T) {
	evs := []obs.Event{
		{Class: obs.HostWrite, Shard: 2, OK: true, LPA: 77, IssueNS: 100, DoneNS: 250},
		{Class: obs.Rollback, Shard: 0, OK: false, LPA: 0, IssueNS: 300, DoneNS: 900},
	}
	e := &enc{}
	encEvents(e, evs)
	d := &dec{b: e.b}
	got := decEvents(d)
	if d.err != nil || d.pos != len(d.b) {
		t.Fatalf("decode: err=%v, %d bytes left", d.err, len(d.b)-d.pos)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("events round trip:\n got %+v\nwant %+v", got, evs)
	}
}

func TestNegotiationAgreesOnCurrent(t *testing.T) {
	c, _ := pipePair(t)
	id, err := c.Identify()
	if err != nil {
		t.Fatal(err)
	}
	if id.Version != CurrentVersion {
		t.Fatalf("negotiated v%d, want v%d", id.Version, CurrentVersion)
	}
}

// TestLegacyIdentifyPinsArrayLevel drives the dispatcher the way a pre-v3
// client would: a bare Identify pins the connection at VersionArray and
// the v3 surface fails with an error naming both versions.
func TestLegacyIdentifyPinsArrayLevel(t *testing.T) {
	dev := newDevice(t)
	srv := NewServer(dev)
	st := newConnState()

	resp := srv.dispatch(st, []byte{byte(OpIdentify)})
	if resp[0] != 0 {
		t.Fatalf("bare Identify rejected: % x", resp)
	}
	if v := st.version.Load(); v != VersionArray {
		t.Fatalf("bare Identify negotiated v%d, want v%d", v, VersionArray)
	}
	// The appended version field says v2; a legacy client never reads it.
	d := &dec{b: resp, pos: 1}
	d.u32()
	d.u64()
	d.u32()
	d.u32()
	d.time()
	if v := d.u32(); v != VersionArray || d.err != nil {
		t.Fatalf("trailing version field = %d (err %v), want %d", v, d.err, VersionArray)
	}

	for _, op := range []Op{OpMetrics, OpTrace} {
		req := raw{}.u8(uint8(op))
		if op == OpTrace {
			req = req.u32(8)
		}
		resp = srv.dispatch(st, []byte(req))
		if resp[0] == 0 {
			t.Fatalf("%v served on a v2 connection", op)
		}
		msg := string((&dec{b: resp, pos: 1}).bytes())
		if !strings.Contains(msg, "requires protocol v3") || !strings.Contains(msg, "negotiated v2") {
			t.Fatalf("%v gating error does not name the versions: %q", op, msg)
		}
	}
}

func TestUnknownOpcodeNamesVersion(t *testing.T) {
	dev := newDevice(t)
	srv := NewServer(dev)
	st := newConnState()
	resp := srv.dispatch(st, []byte{200})
	if resp[0] == 0 {
		t.Fatal("unknown opcode accepted")
	}
	msg := string((&dec{b: resp, pos: 1}).bytes())
	if !strings.Contains(msg, "unknown opcode 200") || !strings.Contains(msg, "v2") {
		t.Fatalf("error does not name opcode and version: %q", msg)
	}
}

// TestClientFallbackToLegacyServer fakes a pre-v3 server: it rejects the
// Identify announcement as trailing request bytes and answers the bare
// retry without the version field. The client must fall back and pin
// VersionArray, refusing the v3 surface locally.
func TestClientFallbackToLegacyServer(t *testing.T) {
	dev := newDevice(t)
	cliEnd, srvEnd := net.Pipe()
	go func() {
		for {
			body, err := readFrame(srvEnd)
			if err != nil {
				return
			}
			e := &enc{}
			if Op(body[0]) != OpIdentify || len(body) > 1 {
				e.u8(1)
				e.bytes([]byte("Identify: 4 trailing payload bytes"))
			} else {
				e.u8(0)
				e.u32(uint32(dev.PageSize()))
				e.u64(uint64(dev.LogicalPages()))
				e.u32(2)
				e.u32(1)
				e.time(dev.RetentionWindowStart())
			}
			if writeFrame(srvEnd, e.b) != nil {
				return
			}
		}
	}()
	c := NewClient(cliEnd)
	defer func() { c.Close(); srvEnd.Close() }()

	id, err := c.Identify()
	if err != nil {
		t.Fatal(err)
	}
	if id.Version != VersionArray {
		t.Fatalf("fallback negotiated v%d, want v%d", id.Version, VersionArray)
	}
	if id.PageSize != dev.PageSize() || id.LogicalPages != dev.LogicalPages() {
		t.Fatalf("legacy identity mangled: %+v", id)
	}
	if _, err := c.Metrics(); err == nil || !strings.Contains(err.Error(), "requires protocol v3") {
		t.Fatalf("Metrics on a v2 connection: %v", err)
	}
}

// TestMetricsTraceOverWire is the end-to-end v3 path: instrumentation on,
// traffic over the wire, then the fetched histograms must sum consistently
// with the scalar counters (the count-consistency invariant) and the trace
// must be chronological.
func TestMetricsTraceOverWire(t *testing.T) {
	c, dev := pipePair(t)
	dev.Obs().SetEnabled(true)
	ps := dev.PageSize()

	at := vclock.Time(vclock.Second)
	for i := 0; i < 10; i++ {
		done, err := c.Write(uint64(i), page(c, byte(i+1), ps), at)
		if err != nil {
			t.Fatal(err)
		}
		at = done.Add(vclock.Second)
	}
	for i := 0; i < 5; i++ {
		_, done, err := c.Read(uint64(i), at)
		if err != nil {
			t.Fatal(err)
		}
		at = done.Add(vclock.Second)
	}
	if _, err := c.Trim(9, at); err != nil {
		t.Fatal(err)
	}

	snap, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Shards != 1 {
		t.Fatalf("shards = %d", snap.Shards)
	}
	for _, ck := range []struct {
		op   string
		want int64
	}{
		{"host-write", snap.C.HostPageWrites},
		{"host-read", snap.C.HostPageReads},
		{"host-trim", snap.C.TrimOps},
		{"flash-read", snap.C.FlashReads},
		{"flash-program", snap.C.FlashPrograms},
		{"flash-erase", snap.C.FlashErases},
	} {
		st, ok := snap.Ops[ck.op]
		if ck.want == 0 {
			if ok {
				t.Fatalf("%s present with zero counter", ck.op)
			}
			continue
		}
		if st.Count != ck.want {
			t.Fatalf("%s histogram count %d != counter %d", ck.op, st.Count, ck.want)
		}
		var sum int64
		for _, n := range st.Virt.Buckets {
			sum += n
		}
		if sum != st.Count {
			t.Fatalf("%s: buckets sum to %d, count %d", ck.op, sum, st.Count)
		}
	}
	if snap.C.HostPageWrites != 10 || snap.C.HostPageReads != 5 || snap.C.TrimOps != 1 {
		t.Fatalf("counters off: %+v", snap.C)
	}

	evs, err := c.Trace(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 16 { // 10 writes + 5 reads + 1 trim; flash micro-ops are histogram-only
		t.Fatalf("trace holds %d events, want 16", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].DoneNS < evs[i-1].DoneNS {
			t.Fatalf("trace not chronological at %d", i)
		}
	}
	last := evs[len(evs)-1]
	if last.Class != obs.HostTrim || last.LPA != 9 || !last.OK {
		t.Fatalf("newest event is not the trim: %+v", last)
	}

	tail, err := c.Trace(3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tail, evs[len(evs)-3:]) {
		t.Fatalf("Trace(3) is not the newest tail:\n got %+v\nwant %+v", tail, evs[len(evs)-3:])
	}
}
