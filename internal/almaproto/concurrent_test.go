package almaproto

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	"almanac/internal/array"
	"almanac/internal/core"
	"almanac/internal/flash"
	"almanac/internal/ftl"
	"almanac/internal/vclock"
)

// newTestArray builds a small 4-shard array for server tests.
func newTestArray(t testing.TB) *array.Array {
	t.Helper()
	fc := flash.DefaultConfig()
	fc.Channels = 2
	fc.ChipsPerChannel = 1
	fc.BlocksPerPlane = 32
	fc.PagesPerBlock = 16
	fc.PageSize = 512
	cfg := core.DefaultConfig(ftl.WithFlash(fc))
	cfg.MinRetention = 0
	a, err := array.New(array.Config{Shards: 4, Shard: cfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

// TestConcurrentClients hammers both server variants with 8 concurrent
// connections issuing mixed reads, writes, trims, queries and rollbacks.
// Each client owns a disjoint LPA stripe so results are assertable; the
// test's real work happens under `go test -race`, where any unsynchronised
// device access in the server, backend, or array worker path is fatal.
func TestConcurrentClients(t *testing.T) {
	const (
		clients   = 8
		pagesEach = 8
	)
	h := func(n int) vclock.Time { return vclock.Time(n) * vclock.Time(vclock.Hour) }

	variants := []struct {
		name  string
		serve func(t *testing.T) (*Server, func() error)
	}{
		{"single-device", func(t *testing.T) (*Server, func() error) {
			dev := newDevice(t)
			return NewServer(dev), dev.CheckInvariants
		}},
		{"array", func(t *testing.T) (*Server, func() error) {
			arr := newTestArray(t)
			return NewArrayServer(arr), arr.CheckInvariants
		}},
	}

	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			srv, check := v.serve(t)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go srv.Serve(ln)
			defer srv.Close()

			var wg sync.WaitGroup
			errc := make(chan error, clients)
			for g := 0; g < clients; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					if err := concurrentClientRun(ln.Addr().String(), uint64(g*pagesEach), pagesEach, h); err != nil {
						errc <- fmt.Errorf("client %d: %w", g, err)
					}
				}(g)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}
			if err := check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// concurrentClientRun is one client's workload over its own LPA range
// [base, base+n): two write generations, point reads, address/time queries,
// a trim, and a rollback — every TimeKits family, all while 7 other clients
// do the same elsewhere on the device.
func concurrentClientRun(addr string, base uint64, n int, h func(int) vclock.Time) error {
	c, err := Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()

	id, err := c.Identify()
	if err != nil {
		return err
	}
	pg := func(b byte) []byte {
		p := make([]byte, id.PageSize)
		for i := range p {
			p[i] = b
		}
		return p
	}

	// Generation 1 at hour 1, generation 2 at hour 2 (all clients share
	// these virtual timestamps; the device must keep the stripes apart).
	for g := 1; g <= 2; g++ {
		for i := 0; i < n; i++ {
			lpa := base + uint64(i)
			if _, err := c.Write(lpa, pg(byte(64*g)+byte(lpa%64)), h(g)); err != nil {
				return fmt.Errorf("write g%d lpa %d: %w", g, lpa, err)
			}
		}
	}
	now := h(3)

	// Point reads see generation 2.
	for i := 0; i < n; i++ {
		lpa := base + uint64(i)
		data, _, err := c.Read(lpa, now)
		if err != nil {
			return fmt.Errorf("read lpa %d: %w", lpa, err)
		}
		if !bytes.Equal(data, pg(128+byte(lpa%64))) {
			return fmt.Errorf("lpa %d: read returned wrong generation", lpa)
		}
	}

	// AddrQuery at a time between the generations sees generation 1.
	q, _, err := c.AddrQuery(base, n, h(1).Add(vclock.Minute), now)
	if err != nil {
		return err
	}
	if len(q) != n {
		return fmt.Errorf("AddrQuery returned %d LPAs, want %d", len(q), n)
	}
	for _, pv := range q {
		if len(pv.Versions) != 1 || pv.Versions[0].Data[0] != 64+byte(pv.LPA%64) {
			return fmt.Errorf("lpa %d: AddrQuery(t) wrong version", pv.LPA)
		}
	}

	// TimeQuery since hour 2 includes this client's whole range (other
	// clients' pages may appear too — they share the timeline).
	recs, _, err := c.TimeQuery(h(2).Add(-vclock.Minute), now)
	if err != nil {
		return err
	}
	mine := 0
	for _, r := range recs {
		if r.LPA >= base && r.LPA < base+uint64(n) {
			mine++
		}
	}
	if mine != n {
		return fmt.Errorf("TimeQuery found %d of my %d pages", mine, n)
	}

	// Trim the last page, then roll the whole range back to generation 1.
	if _, err := c.Trim(base+uint64(n-1), now); err != nil {
		return err
	}
	changed, done, err := c.RollBack(base, n, h(1).Add(vclock.Minute), h(4))
	if err != nil {
		return err
	}
	if changed != n {
		return fmt.Errorf("rollback changed %d pages, want %d", changed, n)
	}
	for i := 0; i < n; i++ {
		lpa := base + uint64(i)
		data, _, err := c.Read(lpa, done.Add(vclock.Second))
		if err != nil {
			return err
		}
		if !bytes.Equal(data, pg(64+byte(lpa%64))) {
			return fmt.Errorf("lpa %d: rollback did not restore generation 1", lpa)
		}
	}

	// Stats and Identify stay serviceable throughout.
	if _, err := c.Stats(); err != nil {
		return err
	}
	return nil
}

// TestArrayServerWire checks the array-specific protocol surface: Identify
// advertises the shard topology and aggregate capacity, and OpRollBackAll
// reverts every shard to the shared timestamp.
func TestArrayServerWire(t *testing.T) {
	arr := newTestArray(t)
	srv := NewArrayServer(arr)
	cliEnd, srvEnd := net.Pipe()
	go srv.ServeOne(srvEnd)
	c := NewClient(cliEnd)
	t.Cleanup(func() { c.Close(); srvEnd.Close() })

	id, err := c.Identify()
	if err != nil {
		t.Fatal(err)
	}
	if id.Shards != 4 || id.LogicalPages != arr.LogicalPages() || id.Channels != 4*2 {
		t.Fatalf("array identity: %+v", id)
	}

	h := func(n int) vclock.Time { return vclock.Time(n) * vclock.Time(vclock.Hour) }
	pg := func(b byte) []byte {
		p := make([]byte, id.PageSize)
		for i := range p {
			p[i] = b
		}
		return p
	}
	// One page per shard, two generations.
	for g := 1; g <= 2; g++ {
		for lpa := uint64(0); lpa < 4; lpa++ {
			if _, err := c.Write(lpa, pg(byte(64*g)+byte(lpa)), h(g)); err != nil {
				t.Fatal(err)
			}
		}
	}
	changed, done, err := c.RollBackAll(h(1).Add(vclock.Minute), h(3))
	if err != nil {
		t.Fatal(err)
	}
	if changed != 4 {
		t.Fatalf("RollBackAll changed %d pages, want 4", changed)
	}
	for lpa := uint64(0); lpa < 4; lpa++ {
		data, _, err := c.Read(lpa, done.Add(vclock.Second))
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != 64+byte(lpa) {
			t.Fatalf("lpa %d (shard %d): RollBackAll missed it", lpa, lpa%4)
		}
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// 8 host writes plus 4 pages re-written by the rollback restore.
	if st.HostPageWrites != 12 {
		t.Fatalf("aggregate stats over wire: %+v", st)
	}
}

// TestShutdownDrains verifies the graceful-drain contract: Shutdown returns
// only after in-flight frames have completed, and both idle and late
// clients observe a closed connection rather than a half-served one.
func TestShutdownDrains(t *testing.T) {
	dev := newDevice(t)
	srv := NewServer(dev)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() { srv.Serve(ln); close(serveDone) }()

	// An idle client sits in readFrame on the server side.
	idle, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	if _, err := idle.Identify(); err != nil { // ensure the conn is registered
		t.Fatal(err)
	}

	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	<-serveDone

	// The device is safe to touch directly now — that is the whole point
	// of draining before the image save.
	if err := dev.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// New connections are refused after shutdown.
	if _, err := net.Dial("tcp", ln.Addr().String()); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}
