package almaproto

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"almanac/internal/array"
	"almanac/internal/core"
	"almanac/internal/obs"
	"almanac/internal/timekits"
	"almanac/internal/vclock"
)

// Server exposes one Backend — a single TimeSSD or a sharded array — over
// the command protocol.
//
// Locking model: dispatch itself holds no lock; synchronisation belongs to
// the backend.
//
//   - Single device (NewServer): the simulated firmware has one command
//     interpreter, so the deviceBackend serialises every command on one
//     device mutex. A long TimeQueryAll therefore still delays other
//     connections — exactly as it would on the paper's board, where the
//     full-device query occupies the firmware for minutes (§3.9).
//   - Array (NewArrayServer): commands are routed to per-shard worker
//     queues, so operations on different shards proceed in parallel and a
//     long query only delays commands that need the same shards. Identify
//     and Stats read lock-free per-shard snapshots and never queue at all.
//
// Connections are handled concurrently in either case; the protocol layer
// (framing, decode, encode) is lock-free throughout.
type Server struct {
	backend Backend

	lnMu     sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	wg       sync.WaitGroup
}

// NewServer wraps a single device behind the device-wide firmware lock.
func NewServer(dev *core.TimeSSD) *Server {
	return &Server{backend: newDeviceBackend(dev), conns: make(map[net.Conn]struct{})}
}

// NewArrayServer wraps a sharded array; commands dispatch concurrently
// onto per-shard workers.
func NewArrayServer(arr *array.Array) *Server {
	return &Server{backend: &arrayBackend{arr: arr}, conns: make(map[net.Conn]struct{})}
}

// Metrics returns the backend's observability snapshot through the same
// synchronisation the wire path uses. The daemon's -metrics-addr HTTP
// listener reads through here rather than touching the device directly.
func (s *Server) Metrics() obs.Snapshot { return s.backend.Metrics() }

// Serve accepts connections on ln until Close or Shutdown. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		s.lnMu.Lock()
		if s.draining {
			s.lnMu.Unlock()
			_ = conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.lnMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.lnMu.Lock()
				delete(s.conns, conn)
				s.lnMu.Unlock()
				_ = conn.Close()
			}()
			s.serveConn(conn)
		}()
	}
}

// Close stops the listener; Serve returns after in-flight connections end.
func (s *Server) Close() error {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

// Shutdown drains gracefully: it stops accepting, lets every in-flight
// frame finish (response written), then unblocks connections idling in a
// read. Commands never race the caller's post-Shutdown work (such as
// saving a device image) — a frame either completed before Shutdown
// returned or was never read.
func (s *Server) Shutdown() error {
	s.lnMu.Lock()
	s.draining = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	// An expired read deadline makes the *next* readFrame fail without
	// affecting a dispatch already in progress or its response write.
	for conn := range s.conns {
		//almalint:allow wallclock network read deadlines are host wall time, not simulated time
		_ = conn.SetReadDeadline(time.Now())
	}
	s.lnMu.Unlock()
	s.wg.Wait()
	return err
}

// connState is the per-connection protocol state. Until a client
// identifies itself, it is assumed to speak the pre-negotiation wire
// level (VersionArray): every opcode that predates v3 works, the v3
// surface is gated.
type connState struct {
	version uint32
}

func newConnState() *connState { return &connState{version: VersionArray} }

func (s *Server) serveConn(conn net.Conn) {
	st := newConnState()
	for {
		body, err := readFrame(conn)
		if err != nil {
			return // EOF, broken peer, or drain deadline
		}
		resp := s.dispatch(st, body)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// dispatch executes one command body and builds the response body.
func (s *Server) dispatch(st *connState, body []byte) []byte {
	fail := func(err error) []byte {
		e := &enc{}
		e.u8(statusOf(err))
		e.bytes([]byte(err.Error()))
		return e.b
	}
	if len(body) == 0 {
		return fail(ErrShortPayload)
	}
	op := Op(body[0])
	d := &dec{b: body, pos: 1}
	e := &enc{}
	e.u8(0) // OK; overwritten by fail on error

	b := s.backend

	switch op {
	case OpIdentify:
		// v3 clients announce their maximum version; a bare request is a
		// pre-v3 client and pins the connection at the legacy level. The
		// agreed version is appended to the response — legacy clients
		// ignore trailing response bytes, so the extension is compatible.
		if d.pos < len(d.b) {
			clientMax := d.u32()
			if d.err != nil {
				return fail(d.err)
			}
			v := clientMax
			if v > CurrentVersion {
				v = CurrentVersion
			}
			if v < Version1 {
				v = Version1
			}
			st.version = v
		} else {
			st.version = VersionArray
		}
		id := b.Identify()
		e.u32(uint32(id.PageSize))
		e.u64(uint64(id.LogicalPages))
		e.u32(uint32(id.Channels))
		e.u32(uint32(id.Shards))
		e.time(id.WindowStart)
		e.u32(st.version)

	case OpRead:
		lpa, at := d.u64(), d.time()
		if d.err != nil {
			return fail(d.err)
		}
		data, done, err := b.Read(lpa, at)
		if err != nil {
			return fail(err)
		}
		e.time(done)
		e.bytes(data)

	case OpWrite:
		lpa, at, data := d.u64(), d.time(), d.bytes()
		if d.err != nil {
			return fail(d.err)
		}
		done, err := b.Write(lpa, data, at)
		if err != nil {
			return fail(err)
		}
		e.time(done)

	case OpTrim:
		lpa, at := d.u64(), d.time()
		if d.err != nil {
			return fail(d.err)
		}
		done, err := b.Trim(lpa, at)
		if err != nil {
			return fail(err)
		}
		e.time(done)

	case OpAddrQuery, OpAddrQueryRange, OpAddrQueryAll:
		addr, cnt := d.u64(), int(d.u32())
		var t1, t2 vclock.Time
		switch op {
		case OpAddrQuery:
			t1 = d.time()
		case OpAddrQueryRange:
			t1, t2 = d.time(), d.time()
		}
		at := d.time()
		if d.err != nil {
			return fail(d.err)
		}
		var res timekits.Result[[]timekits.PageVersions]
		var err error
		switch op {
		case OpAddrQuery:
			res, err = b.AddrQuery(addr, cnt, t1, at)
		case OpAddrQueryRange:
			res, err = b.AddrQueryRange(addr, cnt, t1, t2, at)
		default:
			res, err = b.AddrQueryAll(addr, cnt, at)
		}
		if err != nil {
			return fail(err)
		}
		e.time(res.Done)
		e.u32(uint32(len(res.Value)))
		for _, pv := range res.Value {
			e.u64(pv.LPA)
			encVersions(e, pv.Versions)
		}

	case OpTimeQuery, OpTimeQueryRange, OpTimeQueryAll:
		var t1, t2 vclock.Time
		switch op {
		case OpTimeQuery:
			t1 = d.time()
		case OpTimeQueryRange:
			t1, t2 = d.time(), d.time()
		}
		at := d.time()
		if d.err != nil {
			return fail(d.err)
		}
		var res timekits.Result[[]core.UpdateRecord]
		var err error
		switch op {
		case OpTimeQuery:
			res, err = b.TimeQuery(t1, at)
		case OpTimeQueryRange:
			res, err = b.TimeQueryRange(t1, t2, at)
		default:
			res, err = b.TimeQueryAll(at)
		}
		if err != nil {
			return fail(err)
		}
		e.time(res.Done)
		encRecords(e, res.Value)

	case OpRollBack:
		addr, cnt, t, at := d.u64(), int(d.u32()), d.time(), d.time()
		if d.err != nil {
			return fail(d.err)
		}
		res, err := b.RollBack(addr, cnt, t, at)
		if err != nil {
			return fail(err)
		}
		e.time(res.Done)
		e.u32(uint32(res.Value))

	case OpRollBackAll:
		t, at := d.time(), d.time()
		if d.err != nil {
			return fail(d.err)
		}
		res, err := b.RollBackAll(t, at)
		if err != nil {
			return fail(err)
		}
		e.time(res.Done)
		e.u32(uint32(res.Value))

	case OpRollBackParallel:
		n := int(d.u32())
		if d.err != nil || n > maxFrame/8 {
			return fail(ErrShortPayload)
		}
		lpas := make([]uint64, 0, min(n, 4096))
		for i := 0; i < n; i++ {
			lpas = append(lpas, d.u64())
		}
		threads, t, at := int(d.u32()), d.time(), d.time()
		if d.err != nil {
			return fail(d.err)
		}
		res, err := b.RollBackParallel(lpas, threads, t, at)
		if err != nil {
			return fail(err)
		}
		e.time(res.Done)
		e.u32(uint32(res.Value))

	case OpStats:
		st := b.Stats()
		e.i64(st.HostPageWrites)
		e.i64(st.HostPageReads)
		e.i64(st.FlashPrograms)
		e.i64(st.FlashReads)
		e.i64(st.FlashErases)
		e.i64(st.DeltasCreated)
		e.i64(st.WindowDrops)

	case OpMetrics:
		if st.version < VersionObs {
			return fail(fmt.Errorf("almaproto: %v requires protocol v%d, connection negotiated v%d",
				op, VersionObs, st.version))
		}
		encSnapshot(e, b.Metrics())

	case OpTrace:
		max := int(d.u32())
		if d.err != nil {
			return fail(d.err)
		}
		if st.version < VersionObs {
			return fail(fmt.Errorf("almaproto: %v requires protocol v%d, connection negotiated v%d",
				op, VersionObs, st.version))
		}
		encEvents(e, b.Trace(max))

	default:
		return fail(fmt.Errorf("almaproto: unknown opcode %d (connection negotiated protocol v%d)",
			body[0], st.version))
	}
	if d.pos != len(d.b) {
		return fail(fmt.Errorf("almaproto: %v: %d trailing payload bytes", op, len(d.b)-d.pos))
	}
	return e.b
}

// ServeOne handles exactly one connection (for tests over net.Pipe).
func (s *Server) ServeOne(conn io.ReadWriter) {
	st := newConnState()
	for {
		body, err := readFrame(conn)
		if err != nil {
			return
		}
		if err := writeFrame(conn, s.dispatch(st, body)); err != nil {
			return
		}
	}
}
