package almaproto

import (
	"fmt"
	"io"
	"net"
	"sync"

	"almanac/internal/core"
	"almanac/internal/timekits"
	"almanac/internal/vclock"
)

// Server exposes one TimeSSD over the command protocol. Connections are
// handled concurrently; commands serialise on the device mutex (the
// firmware's single command interpreter, §4).
type Server struct {
	dev *core.TimeSSD
	kit *timekits.Kit
	mu  sync.Mutex

	lnMu sync.Mutex
	ln   net.Listener
	wg   sync.WaitGroup
}

// NewServer wraps a device.
func NewServer(dev *core.TimeSSD) *Server {
	return &Server{dev: dev, kit: timekits.New(dev)}
}

// Serve accepts connections on ln until Close. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// Close stops the listener; Serve returns after in-flight connections end.
func (s *Server) Close() error {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

func (s *Server) serveConn(conn net.Conn) {
	for {
		body, err := readFrame(conn)
		if err != nil {
			return // EOF or broken peer
		}
		resp := s.dispatch(body)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// dispatch executes one command body and builds the response body.
func (s *Server) dispatch(body []byte) []byte {
	fail := func(err error) []byte {
		e := &enc{}
		e.u8(1)
		e.bytes([]byte(err.Error()))
		return e.b
	}
	if len(body) == 0 {
		return fail(ErrShortPayload)
	}
	op := Op(body[0])
	d := &dec{b: body, pos: 1}
	e := &enc{}
	e.u8(0) // OK; overwritten by fail on error

	s.mu.Lock()
	defer s.mu.Unlock()

	switch op {
	case OpIdentify:
		e.u32(uint32(s.dev.PageSize()))
		e.u64(uint64(s.dev.LogicalPages()))
		e.u32(uint32(s.dev.Config().FTL.Flash.Channels))
		e.time(s.dev.RetentionWindowStart())

	case OpRead:
		lpa, at := d.u64(), d.time()
		if d.err != nil {
			return fail(d.err)
		}
		data, done, err := s.dev.Read(lpa, at)
		if err != nil {
			return fail(err)
		}
		e.time(done)
		e.bytes(data)

	case OpWrite:
		lpa, at, data := d.u64(), d.time(), d.bytes()
		if d.err != nil {
			return fail(d.err)
		}
		done, err := s.dev.Write(lpa, data, at)
		if err != nil {
			return fail(err)
		}
		e.time(done)

	case OpTrim:
		lpa, at := d.u64(), d.time()
		if d.err != nil {
			return fail(d.err)
		}
		done, err := s.dev.Trim(lpa, at)
		if err != nil {
			return fail(err)
		}
		e.time(done)

	case OpAddrQuery, OpAddrQueryRange, OpAddrQueryAll:
		addr, cnt := d.u64(), int(d.u32())
		var t1, t2 vclock.Time
		switch op {
		case OpAddrQuery:
			t1 = d.time()
		case OpAddrQueryRange:
			t1, t2 = d.time(), d.time()
		}
		at := d.time()
		if d.err != nil {
			return fail(d.err)
		}
		var res timekits.Result[[]timekits.PageVersions]
		var err error
		switch op {
		case OpAddrQuery:
			res, err = s.kit.AddrQuery(addr, cnt, t1, at)
		case OpAddrQueryRange:
			res, err = s.kit.AddrQueryRange(addr, cnt, t1, t2, at)
		default:
			res, err = s.kit.AddrQueryAll(addr, cnt, at)
		}
		if err != nil {
			return fail(err)
		}
		e.time(res.Done)
		e.u32(uint32(len(res.Value)))
		for _, pv := range res.Value {
			e.u64(pv.LPA)
			encVersions(e, pv.Versions)
		}

	case OpTimeQuery, OpTimeQueryRange, OpTimeQueryAll:
		var t1, t2 vclock.Time
		switch op {
		case OpTimeQuery:
			t1 = d.time()
		case OpTimeQueryRange:
			t1, t2 = d.time(), d.time()
		}
		at := d.time()
		if d.err != nil {
			return fail(d.err)
		}
		var res timekits.Result[[]core.UpdateRecord]
		var err error
		switch op {
		case OpTimeQuery:
			res, err = s.kit.TimeQuery(t1, at)
		case OpTimeQueryRange:
			res, err = s.kit.TimeQueryRange(t1, t2, at)
		default:
			res, err = s.kit.TimeQueryAll(at)
		}
		if err != nil {
			return fail(err)
		}
		e.time(res.Done)
		encRecords(e, res.Value)

	case OpRollBack:
		addr, cnt, t, at := d.u64(), int(d.u32()), d.time(), d.time()
		if d.err != nil {
			return fail(d.err)
		}
		res, err := s.kit.RollBack(addr, cnt, t, at)
		if err != nil {
			return fail(err)
		}
		e.time(res.Done)
		e.u32(uint32(res.Value))

	case OpRollBackParallel:
		n := int(d.u32())
		if d.err != nil || n > maxFrame/8 {
			return fail(ErrShortPayload)
		}
		lpas := make([]uint64, 0, min(n, 4096))
		for i := 0; i < n; i++ {
			lpas = append(lpas, d.u64())
		}
		threads, t, at := int(d.u32()), d.time(), d.time()
		if d.err != nil {
			return fail(d.err)
		}
		res, err := s.kit.RollBackParallel(lpas, threads, t, at)
		if err != nil {
			return fail(err)
		}
		e.time(res.Done)
		e.u32(uint32(res.Value))

	case OpStats:
		fs := s.dev.Arr.Stats()
		ts := s.dev.TimeStats()
		e.i64(s.dev.HostPageWrites)
		e.i64(s.dev.HostPageReads)
		e.i64(fs.Programs)
		e.i64(fs.Reads)
		e.i64(fs.Erases)
		e.i64(ts.DeltasCreated)
		e.i64(ts.WindowDrops)

	default:
		return fail(fmt.Errorf("almaproto: unknown opcode %d", body[0]))
	}
	if d.pos != len(d.b) {
		return fail(fmt.Errorf("almaproto: %v: %d trailing payload bytes", op, len(d.b)-d.pos))
	}
	return e.b
}

// ServeOne handles exactly one connection (for tests over net.Pipe).
func (s *Server) ServeOne(conn io.ReadWriter) {
	for {
		body, err := readFrame(conn)
		if err != nil {
			return
		}
		if err := writeFrame(conn, s.dispatch(body)); err != nil {
			return
		}
	}
}
