package almaproto

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"almanac/internal/array"
	"almanac/internal/core"
	"almanac/internal/obs"
	"almanac/internal/service"
	"almanac/internal/timekits"
	"almanac/internal/vclock"
)

// Server exposes one Backend — a single TimeSSD or a sharded array — over
// the command protocol.
//
// Locking model: dispatch itself holds no lock; synchronisation belongs to
// the backend.
//
//   - Single device (NewServer): the simulated firmware has one command
//     interpreter, so the deviceBackend serialises every command on one
//     device mutex. A long TimeQueryAll therefore still delays other
//     connections — exactly as it would on the paper's board, where the
//     full-device query occupies the firmware for minutes (§3.9).
//   - Array (NewArrayServer): commands are routed to per-shard worker
//     queues, so operations on different shards proceed in parallel and a
//     long query only delays commands that need the same shards. Identify
//     and Stats read lock-free per-shard snapshots and never queue at all.
//
// Connections are handled concurrently in either case; the protocol layer
// (framing, decode, encode) is lock-free throughout.
type Server struct {
	backend Backend
	svc     *service.Service // nil unless built by NewServiceServer

	// window is the per-connection in-flight bound of the v4 tagged
	// transport; maxVersion caps negotiation (CurrentVersion when zero —
	// tests lower it to emulate older servers).
	window     int
	maxVersion uint32

	lnMu     sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	wg       sync.WaitGroup

	// Transport telemetry: per-connection WireStats folded into a
	// server-wide total as connections end (see WireSnapshot).
	wireMu    sync.Mutex
	wireTotal obs.WireCounters
	wireLive  map[*obs.WireStats]struct{}
}

// DefaultWindow is the per-connection in-flight window advertised to v4
// clients: deep enough to keep every shard queue of a typical array busy,
// shallow enough to bound per-connection server memory.
const DefaultWindow = 128

// NewServer wraps a single device behind the device-wide firmware lock.
func NewServer(dev *core.TimeSSD) *Server {
	return &Server{backend: newDeviceBackend(dev), window: DefaultWindow, conns: make(map[net.Conn]struct{})}
}

// NewArrayServer wraps a sharded array; commands dispatch concurrently
// onto per-shard workers.
func NewArrayServer(arr *array.Array) *Server {
	return &Server{backend: &arrayBackend{arr: arr}, window: DefaultWindow, conns: make(map[net.Conn]struct{})}
}

// NewServiceServer wraps a volume service: block I/O and array-wide
// TimeKits route to the backing array, and the v4 volume opcodes
// (create/delete/list/attach, per-volume rollback and stats, OpBatch)
// route to svc.
func NewServiceServer(svc *service.Service) *Server {
	return &Server{
		backend: &arrayBackend{arr: svc.Array()},
		svc:     svc,
		window:  DefaultWindow,
		conns:   make(map[net.Conn]struct{}),
	}
}

// serverMax returns the highest version this server negotiates.
func (s *Server) serverMax() uint32 {
	if s.maxVersion != 0 {
		return s.maxVersion
	}
	return CurrentVersion
}

// Metrics returns the backend's observability snapshot through the same
// synchronisation the wire path uses. The daemon's -metrics-addr HTTP
// listener reads through here rather than touching the device directly.
func (s *Server) Metrics() obs.Snapshot { return s.backend.Metrics() }

// WireSnapshot aggregates the transport counters — frames and bytes per
// direction, Write calls, coalesced flushes — over every tagged
// connection the server has handled, live connections included.
func (s *Server) WireSnapshot() obs.WireCounters {
	s.wireMu.Lock()
	defer s.wireMu.Unlock()
	out := s.wireTotal
	for ws := range s.wireLive {
		out.Add(ws.Snapshot())
	}
	return out
}

func (s *Server) trackWire(ws *obs.WireStats) {
	s.wireMu.Lock()
	if s.wireLive == nil {
		s.wireLive = make(map[*obs.WireStats]struct{})
	}
	s.wireLive[ws] = struct{}{}
	s.wireMu.Unlock()
}

func (s *Server) untrackWire(ws *obs.WireStats) {
	s.wireMu.Lock()
	s.wireTotal.Add(ws.Snapshot())
	delete(s.wireLive, ws)
	s.wireMu.Unlock()
}

// Serve accepts connections on ln until Close or Shutdown. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		s.lnMu.Lock()
		if s.draining {
			s.lnMu.Unlock()
			_ = conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.lnMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.lnMu.Lock()
				delete(s.conns, conn)
				s.lnMu.Unlock()
				_ = conn.Close()
			}()
			s.serveConn(conn)
		}()
	}
}

// Close stops the listener; Serve returns after in-flight connections end.
func (s *Server) Close() error {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

// Shutdown drains gracefully: it stops accepting, lets every in-flight
// frame finish (response written), then unblocks connections idling in a
// read. Commands never race the caller's post-Shutdown work (such as
// saving a device image) — a frame either completed before Shutdown
// returned or was never read.
func (s *Server) Shutdown() error {
	s.lnMu.Lock()
	s.draining = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	// An expired read deadline makes the *next* readFrame fail without
	// affecting a dispatch already in progress or its response write.
	for conn := range s.conns {
		//almalint:allow wallclock reason: network read deadlines are host wall time, not simulated time
		_ = conn.SetReadDeadline(time.Now())
	}
	s.lnMu.Unlock()
	s.wg.Wait()
	return err
}

// connState is the per-connection protocol state. Until a client
// identifies itself, it is assumed to speak the pre-negotiation wire
// level (VersionArray): every opcode that predates v3 works, the v3
// surface is gated. The version is atomic because a v4 connection
// dispatches concurrently, and any of those dispatches may be a
// re-Identify racing the version gates of the others.
type connState struct {
	version atomic.Uint32

	// attached maps volume id → handle for volumes this connection
	// authenticated against with OpVolAttach. Guarded by mu: attaches on
	// a tagged connection run concurrently with batch lookups.
	mu       sync.Mutex
	attached map[uint32]*service.Volume
}

func newConnState() *connState {
	st := &connState{attached: make(map[uint32]*service.Volume)}
	st.version.Store(VersionArray)
	return st
}

// volume resolves an attached volume id; the typed ErrAuth failure tells
// clients authentication (not existence) is what's missing.
func (st *connState) volume(id uint32) (*service.Volume, error) {
	st.mu.Lock()
	vol := st.attached[id]
	st.mu.Unlock()
	if vol == nil {
		return nil, fmt.Errorf("%w: volume id %d not attached on this connection", service.ErrAuth, id)
	}
	return vol, nil
}

func (s *Server) serveConn(conn net.Conn) {
	st := newConnState()
	for {
		body, err := readFrame(conn)
		if err != nil {
			return // EOF, broken peer, or drain deadline
		}
		resp := s.dispatch(st, body)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
		// The Identify response that negotiated v4 is the last untagged
		// frame; everything after it speaks the tagged transport.
		if st.version.Load() >= VersionService {
			s.serveTagged(conn, st)
			return
		}
	}
}

// serveTagged is the v4 transport loop, split into a reader (this
// goroutine) and a completion-draining writer (connWriter): the reader
// pulls tagged frames into pooled buffers, OpBatch frames take a fast
// path that submits every op to the shard queues in one pass, every
// other opcode dispatches on its own goroutine, and all completions
// funnel through the writer, which flushes everything ready in as few
// Writes as possible. The in-flight window is a semaphore acquired
// before dispatching: when the window is full the loop stops reading,
// and the transport's flow control backpressures the submitter (a full
// NVMe submission queue); the writer releases a slot per frame flushed.
//
// On read error (peer gone, or the Shutdown drain deadline) the loop
// waits for every in-flight dispatch, then stops the writer, which
// drains and flushes every queued completion before exiting — graceful
// shutdown drains pipelined requests instead of dropping them. This is
// what lets almanacd save shard images knowing no command is still
// mutating the device.
func (s *Server) serveTagged(conn io.ReadWriter, st *connState) {
	window := s.window
	if window <= 0 {
		window = DefaultWindow
	}
	wire := &obs.WireStats{}
	s.trackWire(wire)
	defer s.untrackWire(wire)
	slots := make(chan struct{}, window)
	w := newConnWriter(conn, slots, wire)
	var (
		reqPool framePool
		wg      sync.WaitGroup
	)
	for {
		fb, err := readFrameInto(conn, &reqPool, wire)
		if err != nil {
			break
		}
		if len(fb.b) < 8 {
			// A frame too short to carry a request ID means the peer lost
			// the framing; there is no ID to complete, so hang up.
			reqPool.release(fb)
			break
		}
		reqID := binary.LittleEndian.Uint64(fb.b)
		slots <- struct{}{}
		if len(fb.b) > 8 && Op(fb.b[8]) == OpBatch && s.tryBatch(st, reqID, fb, &reqPool, w) {
			continue
		}
		wg.Add(1)
		go func(fb *frameBuf, reqID uint64) {
			defer wg.Done()
			resp := s.dispatch(st, fb.b[8:])
			out := w.pool.acquire(12 + len(resp))
			binary.LittleEndian.PutUint32(out.b, uint32(8+len(resp)))
			binary.LittleEndian.PutUint64(out.b[4:], reqID)
			copy(out.b[12:], resp)
			// The request frame is consumed: dispatch is synchronous, so
			// every payload decoded by aliasing has been copied into the
			// device (or the response) by now.
			reqPool.release(fb)
			w.enqueue(wireItem{fb: out})
		}(fb, reqID)
	}
	wg.Wait()
	w.stop()
}

// tryBatch is the batch-aware fast path: decode an OpBatch straight out
// of the pooled request frame (write payloads alias it — zero copies),
// submit every op to its shard queue in one pass, and hand the pending
// run to the writer, which completes and flushes it with the rest of the
// ready output. Returns false — with no side effects — when the frame
// needs the generic path (malformed, volume not attached, version gate),
// so error responses stay byte-identical with dispatch's.
func (s *Server) tryBatch(st *connState, reqID uint64, fb *frameBuf, pool *framePool, w *connWriter) bool {
	if s.svc == nil || st.version.Load() < VersionService {
		return false
	}
	req := fb.b[8:]
	pb := w.getBatch()
	d := dec{b: req, pos: 1}
	id, ops, err := decodeBatchOps(&d, pb.ops[:0])
	pb.ops = ops // keep grown scratch even when falling back
	if err != nil || d.err != nil || d.pos != len(req) {
		w.putBatch(pb)
		return false
	}
	vol, err := st.volume(id)
	if err != nil {
		w.putBatch(pb)
		return false
	}
	pb.reqID, pb.fb, pb.pool, pb.gen = reqID, fb, pool, fb.gen
	vol.StartBatch(ops, &pb.run)
	w.enqueue(wireItem{pb: pb})
	return true
}

// dispatch executes one command body and builds the response body.
func (s *Server) dispatch(st *connState, body []byte) []byte {
	fail := func(err error) []byte {
		e := &enc{}
		e.u8(statusOf(err))
		e.bytes([]byte(err.Error()))
		return e.b
	}
	if len(body) == 0 {
		return fail(ErrShortPayload)
	}
	op := Op(body[0])
	d := &dec{b: body, pos: 1}
	e := &enc{}
	e.u8(0) // OK; overwritten by fail on error

	b := s.backend

	switch op {
	case OpIdentify:
		// v3 clients announce their maximum version; a bare request is a
		// pre-v3 client and pins the connection at the legacy level. The
		// agreed version is appended to the response — legacy clients
		// ignore trailing response bytes, so the extension is compatible.
		if d.pos < len(d.b) {
			clientMax := d.u32()
			if d.err != nil {
				return fail(d.err)
			}
			v := clientMax
			if max := s.serverMax(); v > max {
				v = max
			}
			if v < Version1 {
				v = Version1
			}
			st.version.Store(v)
		} else {
			st.version.Store(VersionArray)
		}
		id := b.Identify()
		e.u32(uint32(id.PageSize))
		e.u64(uint64(id.LogicalPages))
		e.u32(uint32(id.Channels))
		e.u32(uint32(id.Shards))
		e.time(id.WindowStart)
		e.u32(st.version.Load())
		// v4 appends the in-flight window of the tagged transport; older
		// clients ignore trailing response bytes, so this is compatible,
		// and a pre-v4 negotiation advertises no window at all.
		if st.version.Load() >= VersionService {
			e.u32(uint32(s.window))
		}

	case OpRead:
		lpa, at := d.u64(), d.time()
		if d.err != nil {
			return fail(d.err)
		}
		data, done, err := b.Read(lpa, at)
		if err != nil {
			return fail(err)
		}
		e.time(done)
		e.bytes(data)

	case OpWrite:
		// The payload aliases the request frame: both backends consume it
		// synchronously (the device copies it into the arena), and the
		// frame is only released after dispatch returns.
		lpa, at, data := d.u64(), d.time(), d.bytesAlias()
		if d.err != nil {
			return fail(d.err)
		}
		done, err := b.Write(lpa, data, at)
		if err != nil {
			return fail(err)
		}
		e.time(done)

	case OpTrim:
		lpa, at := d.u64(), d.time()
		if d.err != nil {
			return fail(d.err)
		}
		done, err := b.Trim(lpa, at)
		if err != nil {
			return fail(err)
		}
		e.time(done)

	case OpAddrQuery, OpAddrQueryRange, OpAddrQueryAll:
		addr, cnt := d.u64(), int(d.u32())
		var t1, t2 vclock.Time
		switch op {
		case OpAddrQuery:
			t1 = d.time()
		case OpAddrQueryRange:
			t1, t2 = d.time(), d.time()
		}
		at := d.time()
		if d.err != nil {
			return fail(d.err)
		}
		var res timekits.Result[[]timekits.PageVersions]
		var err error
		switch op {
		case OpAddrQuery:
			res, err = b.AddrQuery(addr, cnt, t1, at)
		case OpAddrQueryRange:
			res, err = b.AddrQueryRange(addr, cnt, t1, t2, at)
		default:
			res, err = b.AddrQueryAll(addr, cnt, at)
		}
		if err != nil {
			return fail(err)
		}
		e.time(res.Done)
		e.u32(uint32(len(res.Value)))
		for _, pv := range res.Value {
			e.u64(pv.LPA)
			encVersions(e, pv.Versions)
		}

	case OpTimeQuery, OpTimeQueryRange, OpTimeQueryAll:
		var t1, t2 vclock.Time
		switch op {
		case OpTimeQuery:
			t1 = d.time()
		case OpTimeQueryRange:
			t1, t2 = d.time(), d.time()
		}
		at := d.time()
		if d.err != nil {
			return fail(d.err)
		}
		var res timekits.Result[[]core.UpdateRecord]
		var err error
		switch op {
		case OpTimeQuery:
			res, err = b.TimeQuery(t1, at)
		case OpTimeQueryRange:
			res, err = b.TimeQueryRange(t1, t2, at)
		default:
			res, err = b.TimeQueryAll(at)
		}
		if err != nil {
			return fail(err)
		}
		e.time(res.Done)
		encRecords(e, res.Value)

	case OpRollBack:
		addr, cnt, t, at := d.u64(), int(d.u32()), d.time(), d.time()
		if d.err != nil {
			return fail(d.err)
		}
		res, err := b.RollBack(addr, cnt, t, at)
		if err != nil {
			return fail(err)
		}
		e.time(res.Done)
		e.u32(uint32(res.Value))

	case OpRollBackAll:
		t, at := d.time(), d.time()
		if d.err != nil {
			return fail(d.err)
		}
		res, err := b.RollBackAll(t, at)
		if err != nil {
			return fail(err)
		}
		e.time(res.Done)
		e.u32(uint32(res.Value))

	case OpRollBackParallel:
		n := int(d.u32())
		if d.err != nil || n > maxFrame/8 {
			return fail(ErrShortPayload)
		}
		lpas := make([]uint64, 0, min(n, 4096))
		for i := 0; i < n; i++ {
			lpas = append(lpas, d.u64())
		}
		threads, t, at := int(d.u32()), d.time(), d.time()
		if d.err != nil {
			return fail(d.err)
		}
		res, err := b.RollBackParallel(lpas, threads, t, at)
		if err != nil {
			return fail(err)
		}
		e.time(res.Done)
		e.u32(uint32(res.Value))

	case OpStats:
		st := b.Stats()
		e.i64(st.HostPageWrites)
		e.i64(st.HostPageReads)
		e.i64(st.FlashPrograms)
		e.i64(st.FlashReads)
		e.i64(st.FlashErases)
		e.i64(st.DeltasCreated)
		e.i64(st.WindowDrops)

	case OpMetrics:
		if v := st.version.Load(); v < VersionObs {
			return fail(fmt.Errorf("almaproto: %v requires protocol v%d, connection negotiated v%d",
				op, VersionObs, v))
		}
		encSnapshot(e, b.Metrics())

	case OpTrace:
		max := int(d.u32())
		if d.err != nil {
			return fail(d.err)
		}
		if v := st.version.Load(); v < VersionObs {
			return fail(fmt.Errorf("almaproto: %v requires protocol v%d, connection negotiated v%d",
				op, VersionObs, v))
		}
		encEvents(e, b.Trace(max))

	case OpVolCreate:
		if err := s.requireService(st, op); err != nil {
			return fail(err)
		}
		name, key := string(d.bytes()), string(d.bytes())
		pages, retention, at := d.u64(), vclock.Duration(d.i64()), d.time()
		if d.err != nil {
			return fail(d.err)
		}
		vol, err := s.svc.Create(name, key, pages, retention, at)
		if err != nil {
			return fail(err)
		}
		e.u32(vol.ID())

	case OpVolDelete:
		if err := s.requireService(st, op); err != nil {
			return fail(err)
		}
		name, key, at := string(d.bytes()), string(d.bytes()), d.time()
		if d.err != nil {
			return fail(d.err)
		}
		done, err := s.svc.Delete(name, key, at)
		if err != nil {
			return fail(err)
		}
		e.time(done)

	case OpVolList:
		if err := s.requireService(st, op); err != nil {
			return fail(err)
		}
		infos := s.svc.List()
		e.u32(uint32(len(infos)))
		for _, in := range infos {
			e.u32(in.ID)
			e.bytes([]byte(in.Name))
			e.u64(in.Pages)
			e.i64(int64(in.Retention))
			e.time(in.CreatedAt)
		}

	case OpVolAttach:
		if err := s.requireService(st, op); err != nil {
			return fail(err)
		}
		name, key, at := string(d.bytes()), string(d.bytes()), d.time()
		if d.err != nil {
			return fail(d.err)
		}
		vol, err := s.svc.Attach(name, key)
		if err != nil {
			return fail(err)
		}
		st.mu.Lock()
		st.attached[vol.ID()] = vol
		st.mu.Unlock()
		in := vol.Info()
		e.u32(in.ID)
		e.u64(in.Pages)
		e.i64(int64(in.Retention))
		e.time(in.CreatedAt)
		e.time(vol.WindowStart(at))

	case OpVolStats:
		if err := s.requireService(st, op); err != nil {
			return fail(err)
		}
		id := d.u32()
		if d.err != nil {
			return fail(d.err)
		}
		vol, err := st.volume(id)
		if err != nil {
			return fail(err)
		}
		encSnapshot(e, vol.Snapshot())

	case OpVolRollBack:
		if err := s.requireService(st, op); err != nil {
			return fail(err)
		}
		id, t, at := d.u32(), d.time(), d.time()
		if d.err != nil {
			return fail(d.err)
		}
		vol, err := st.volume(id)
		if err != nil {
			return fail(err)
		}
		res, err := vol.RollBack(t, at)
		if err != nil {
			return fail(err)
		}
		e.time(res.Done)
		e.u32(uint32(res.Value))

	case OpBatch:
		if err := s.requireService(st, op); err != nil {
			return fail(err)
		}
		id, ops, berr := decodeBatchOps(d, nil)
		if berr != nil {
			return fail(berr)
		}
		vol, err := st.volume(id)
		if err != nil {
			return fail(err)
		}
		results := vol.Batch(ops)
		encBatchResults(e, ops, results)

	default:
		return fail(fmt.Errorf("almaproto: unknown opcode %d (connection negotiated protocol v%d)",
			body[0], st.version.Load()))
	}
	if d.pos != len(d.b) {
		return fail(fmt.Errorf("almaproto: %v: %d trailing payload bytes", op, len(d.b)-d.pos))
	}
	return e.b
}

// maxBatchOps bounds one OpBatch frame; far above any sane batch, low
// enough that a garbage count cannot balloon the decode allocation.
const maxBatchOps = 1 << 16

// decodeBatchOps decodes an OpBatch payload (cursor past the opcode)
// into ops, reusing its capacity — the batch fast path passes the
// connection's scratch, dispatch passes nil. Write payloads alias the
// decoder's buffer (see dec.bytesAlias). The returned slice is always
// the (possibly grown) scratch, even on error.
func decodeBatchOps(d *dec, ops []service.BatchOp) (uint32, []service.BatchOp, error) {
	id, n := d.u32(), int(d.u32())
	if d.err != nil || n > maxBatchOps {
		return 0, ops, fmt.Errorf("almaproto: %v: bad op count %d", OpBatch, n)
	}
	if ops == nil {
		ops = make([]service.BatchOp, 0, min(n, 4096))
	}
	for i := 0; i < n; i++ {
		bop := service.BatchOp{Kind: service.OpKind(d.u8()), LPA: d.u64(), At: d.time()}
		if bop.Kind == service.KindWrite {
			bop.Data = d.bytesAlias()
		}
		if d.err != nil {
			return 0, ops, d.err
		}
		ops = append(ops, bop)
	}
	return id, ops, nil
}

// encBatchResults encodes the positional OpBatch response payload. One
// shared encoder keeps the generic dispatch path and the batch fast path
// byte-identical on the wire.
func encBatchResults(e *enc, ops []service.BatchOp, results []service.BatchResult) {
	e.u32(uint32(len(results)))
	for i, r := range results {
		if r.Err != nil {
			// Typed per-op status: the op failed, the batch did not.
			e.u8(statusOf(r.Err))
			e.bytes([]byte(r.Err.Error()))
			continue
		}
		e.u8(StatusOK)
		e.time(r.Done)
		if ops[i].Kind == service.KindRead {
			e.bytes(r.Data)
		}
	}
}

// requireService gates the v4 opcodes on the negotiated version and on
// the server actually fronting a volume service.
func (s *Server) requireService(st *connState, op Op) error {
	if v := st.version.Load(); v < VersionService {
		return fmt.Errorf("almaproto: %v requires protocol v%d, connection negotiated v%d",
			op, VersionService, v)
	}
	if s.svc == nil {
		return fmt.Errorf("almaproto: %v: server has no volume service", op)
	}
	return nil
}

// ServeOne handles exactly one connection (for tests over net.Pipe),
// including the switch to the tagged transport when v4 is negotiated.
func (s *Server) ServeOne(conn io.ReadWriter) {
	st := newConnState()
	for {
		body, err := readFrame(conn)
		if err != nil {
			return
		}
		if err := writeFrame(conn, s.dispatch(st, body)); err != nil {
			return
		}
		if st.version.Load() >= VersionService {
			s.serveTagged(conn, st)
			return
		}
	}
}
