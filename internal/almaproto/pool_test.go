package almaproto

import (
	"bytes"
	"net"
	"testing"

	"almanac/internal/obs"
)

// TestFramePoolRecycleGeneration pins the use-after-release discipline:
// a release bumps the generation, so a holder that recorded the lease
// generation observes staleness on the recycled buffer instead of
// silently reading someone else's frame.
func TestFramePoolRecycleGeneration(t *testing.T) {
	var p framePool
	fb := p.acquire(16)
	gen := fb.gen
	if fb.stale(gen) {
		t.Fatal("freshly leased buffer reports stale")
	}
	p.release(fb)
	if !fb.stale(gen) {
		t.Fatal("released buffer does not report stale to its old holder")
	}
	fb2 := p.acquire(8)
	if fb2 != fb {
		t.Fatal("pool did not recycle the released buffer")
	}
	if len(fb2.b) != 8 {
		t.Fatalf("recycled lease length = %d, want 8", len(fb2.b))
	}
	if !fb2.stale(gen) {
		t.Fatal("re-leased buffer does not report stale to the previous holder")
	}
	if fb2.stale(fb2.gen) {
		t.Fatal("re-leased buffer reports stale to its current holder")
	}
	p.release(fb2)
}

// TestFramePoolDoubleReleasePanics pins the corruption guard: releasing
// the same buffer twice must panic rather than list it twice (which
// would lease one backing array to two holders).
func TestFramePoolDoubleReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	var p framePool
	fb := p.acquire(4)
	p.release(fb)
	p.release(fb)
}

// countWriter records each Write for flush-policy assertions.
type countWriter struct {
	writes int
	buf    bytes.Buffer
}

func (w *countWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

// TestFlushFramesCoalesces pins the flush policy: one frame is written
// directly, several small frames collapse into a single Write, an
// over-limit batch takes the vectored path — and in every case the bytes
// on the wire are the exact concatenation of the queued frames.
func TestFlushFramesCoalesces(t *testing.T) {
	var p framePool
	mk := func(sizes ...int) ([]*frameBuf, []byte) {
		var frames []*frameBuf
		var want []byte
		for i, n := range sizes {
			fb := p.acquire(n)
			for j := range fb.b {
				fb.b[j] = byte(i + j)
			}
			frames = append(frames, fb)
			want = append(want, fb.b...)
		}
		return frames, want
	}
	var scratch []byte
	var bufs net.Buffers

	wire := &obs.WireStats{}
	w := &countWriter{}
	frames, want := mk(10)
	if err := flushFrames(w, frames, &scratch, &bufs, wire); err != nil {
		t.Fatal(err)
	}
	if w.writes != 1 || !bytes.Equal(w.buf.Bytes(), want) {
		t.Fatalf("single frame: %d writes, bytes match %v", w.writes, bytes.Equal(w.buf.Bytes(), want))
	}

	w = &countWriter{}
	frames, want = mk(10, 20, 30)
	if err := flushFrames(w, frames, &scratch, &bufs, wire); err != nil {
		t.Fatal(err)
	}
	if w.writes != 1 {
		t.Fatalf("small multi-frame flush took %d writes, want 1 (coalesced)", w.writes)
	}
	if !bytes.Equal(w.buf.Bytes(), want) {
		t.Fatal("coalesced flush bytes differ from frame concatenation")
	}

	w = &countWriter{}
	frames, want = mk(coalesceLimit/2, coalesceLimit/2, 64)
	if err := flushFrames(w, frames, &scratch, &bufs, wire); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.buf.Bytes(), want) {
		t.Fatal("vectored flush bytes differ from frame concatenation")
	}

	s := wire.Snapshot()
	if s.Writes != 3 || s.FramesOut != 7 {
		t.Fatalf("wire counters: %d flushes / %d frames, want 3 / 7", s.Writes, s.FramesOut)
	}
	if s.Coalesced != 2 {
		t.Fatalf("wire counters: %d coalesced flushes, want 2", s.Coalesced)
	}
	if want := int64(10 + 60 + coalesceLimit + 64); s.BytesOut != want {
		t.Fatalf("wire counters: %d bytes out, want %d", s.BytesOut, want)
	}
}
