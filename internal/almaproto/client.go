package almaproto

import (
	"io"
	"net"
	"sync"

	"almanac/internal/core"
	"almanac/internal/timekits"
	"almanac/internal/vclock"
)

// Client is the host-side driver: it issues protocol commands over a
// connection and exposes the same shapes the in-process TimeKits API does.
// A Client is safe for concurrent use; commands serialise on the wire.
type Client struct {
	mu   sync.Mutex
	conn io.ReadWriteCloser
}

// Dial connects to an almanacd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an existing connection (tests use net.Pipe).
func NewClient(conn io.ReadWriteCloser) *Client { return &Client{conn: conn} }

// Close shuts the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request body and decodes the response status.
func (c *Client) roundTrip(body []byte) (*dec, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, body); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	d := &dec{b: resp}
	if status := d.u8(); status != 0 {
		return nil, &RemoteError{Msg: string(d.bytes())}
	}
	return d, nil
}

func request(op Op) *enc {
	e := &enc{}
	e.u8(uint8(op))
	return e
}

// Identify fetches device geometry and the retention window start.
func (c *Client) Identify() (Identity, error) {
	d, err := c.roundTrip(request(OpIdentify).b)
	if err != nil {
		return Identity{}, err
	}
	id := Identity{
		PageSize:     int(d.u32()),
		LogicalPages: int(d.u64()),
		Channels:     int(d.u32()),
		Shards:       int(d.u32()),
		WindowStart:  d.time(),
	}
	return id, d.err
}

// Read fetches the current content of lpa.
func (c *Client) Read(lpa uint64, at vclock.Time) ([]byte, vclock.Time, error) {
	e := request(OpRead)
	e.u64(lpa)
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return nil, at, err
	}
	done := d.time()
	data := d.bytes()
	return data, done, d.err
}

// Write stores data at lpa.
func (c *Client) Write(lpa uint64, data []byte, at vclock.Time) (vclock.Time, error) {
	e := request(OpWrite)
	e.u64(lpa)
	e.time(at)
	e.bytes(data)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return at, err
	}
	done := d.time()
	return done, d.err
}

// Trim invalidates lpa.
func (c *Client) Trim(lpa uint64, at vclock.Time) (vclock.Time, error) {
	e := request(OpTrim)
	e.u64(lpa)
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return at, err
	}
	done := d.time()
	return done, d.err
}

func (c *Client) addrQuery(op Op, addr uint64, cnt int, t1, t2, at vclock.Time) ([]timekits.PageVersions, vclock.Time, error) {
	e := request(op)
	e.u64(addr)
	e.u32(uint32(cnt))
	switch op {
	case OpAddrQuery:
		e.time(t1)
	case OpAddrQueryRange:
		e.time(t1)
		e.time(t2)
	}
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return nil, at, err
	}
	done := d.time()
	n := int(d.u32())
	cap := n
	if cap > 4096 {
		cap = 4096 // grow past this instead of trusting the peer's count
	}
	out := make([]timekits.PageVersions, 0, cap)
	for i := 0; i < n && d.err == nil; i++ {
		pv := timekits.PageVersions{LPA: d.u64()}
		pv.Versions = decVersions(d)
		out = append(out, pv)
	}
	return out, done, d.err
}

// AddrQuery returns, per LPA, the version current at time t.
func (c *Client) AddrQuery(addr uint64, cnt int, t, at vclock.Time) ([]timekits.PageVersions, vclock.Time, error) {
	return c.addrQuery(OpAddrQuery, addr, cnt, t, 0, at)
}

// AddrQueryRange returns versions written in [t1, t2].
func (c *Client) AddrQueryRange(addr uint64, cnt int, t1, t2, at vclock.Time) ([]timekits.PageVersions, vclock.Time, error) {
	return c.addrQuery(OpAddrQueryRange, addr, cnt, t1, t2, at)
}

// AddrQueryAll returns every retained version.
func (c *Client) AddrQueryAll(addr uint64, cnt int, at vclock.Time) ([]timekits.PageVersions, vclock.Time, error) {
	return c.addrQuery(OpAddrQueryAll, addr, cnt, 0, 0, at)
}

func (c *Client) timeQuery(op Op, t1, t2, at vclock.Time) ([]core.UpdateRecord, vclock.Time, error) {
	e := request(op)
	switch op {
	case OpTimeQuery:
		e.time(t1)
	case OpTimeQueryRange:
		e.time(t1)
		e.time(t2)
	}
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return nil, at, err
	}
	done := d.time()
	recs := decRecords(d)
	return recs, done, d.err
}

// TimeQuery returns LPAs updated since t.
func (c *Client) TimeQuery(t, at vclock.Time) ([]core.UpdateRecord, vclock.Time, error) {
	return c.timeQuery(OpTimeQuery, t, 0, at)
}

// TimeQueryRange returns LPAs updated within [t1, t2].
func (c *Client) TimeQueryRange(t1, t2, at vclock.Time) ([]core.UpdateRecord, vclock.Time, error) {
	return c.timeQuery(OpTimeQueryRange, t1, t2, at)
}

// TimeQueryAll returns the whole retention window's update history.
func (c *Client) TimeQueryAll(at vclock.Time) ([]core.UpdateRecord, vclock.Time, error) {
	return c.timeQuery(OpTimeQueryAll, 0, 0, at)
}

// RollBack reverts cnt LPAs from addr to their state at time t.
func (c *Client) RollBack(addr uint64, cnt int, t, at vclock.Time) (int, vclock.Time, error) {
	e := request(OpRollBack)
	e.u64(addr)
	e.u32(uint32(cnt))
	e.time(t)
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return 0, at, err
	}
	done := d.time()
	changed := int(d.u32())
	return changed, done, d.err
}

// RollBackAll reverts every LPA with retrievable state to its version at
// time t — on an array server, every shard travels to the same instant.
func (c *Client) RollBackAll(t, at vclock.Time) (int, vclock.Time, error) {
	e := request(OpRollBackAll)
	e.time(t)
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return 0, at, err
	}
	done := d.time()
	changed := int(d.u32())
	return changed, done, d.err
}

// RollBackParallel reverts a set of LPAs with the given host threads.
func (c *Client) RollBackParallel(lpas []uint64, threads int, t, at vclock.Time) (int, vclock.Time, error) {
	e := request(OpRollBackParallel)
	e.u32(uint32(len(lpas)))
	for _, lpa := range lpas {
		e.u64(lpa)
	}
	e.u32(uint32(threads))
	e.time(t)
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return 0, at, err
	}
	done := d.time()
	changed := int(d.u32())
	return changed, done, d.err
}

// Stats fetches the device counters.
func (c *Client) Stats() (DeviceStats, error) {
	d, err := c.roundTrip(request(OpStats).b)
	if err != nil {
		return DeviceStats{}, err
	}
	st := DeviceStats{
		HostPageWrites: d.i64(),
		HostPageReads:  d.i64(),
		FlashPrograms:  d.i64(),
		FlashReads:     d.i64(),
		FlashErases:    d.i64(),
		DeltasCreated:  d.i64(),
		WindowDrops:    d.i64(),
	}
	return st, d.err
}
