package almaproto

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"almanac/internal/core"
	"almanac/internal/obs"
	"almanac/internal/timekits"
	"almanac/internal/vclock"
)

// Client is the host-side driver: it issues protocol commands over a
// connection and exposes the same shapes the in-process TimeKits API does.
// A Client is safe for concurrent use. Against a pre-v4 server commands
// serialise on the wire; once Identify negotiates v4 the connection
// switches to the tagged transport and concurrent commands pipeline —
// each call still blocks, but it no longer queues behind the others, and
// the async Submit*/Wait surface (client_async.go) exposes the
// pipelining directly.
type Client struct {
	mu         sync.Mutex
	conn       io.ReadWriteCloser
	version    uint32 // negotiated protocol version; 0 until Identify runs
	window     int    // server-advertised in-flight window (v4)
	maxVersion uint32 // negotiation cap; 0 means CurrentVersion (tests lower it)

	// Tagged (v4) transport state; see client_async.go.
	pmu     sync.Mutex
	tagged  bool
	nextID  uint64
	pend    map[uint64]chan taggedResp
	pfree   []*rawPending // recycled pendings (with their channels)
	readErr error

	// Frame pools: request frames cycle submit → writer flush → release;
	// response frames cycle demux → typed Wait → release.
	reqPool  framePool
	respPool framePool

	// Writer-goroutine state: submissions enqueue built frames here and
	// the writer drains each wakeup's worth into one coalesced Write.
	// The wake token is only ever sent outside wmu (lockorder-clean).
	wmu      sync.Mutex
	wq       []*frameBuf
	wsignal  bool
	wclosed  bool
	wwake    chan struct{} // cap 1
	wdone    chan struct{} // closed when the writer goroutine exits
	wbatch   []*frameBuf   // writer-owned drain scratch
	wscratch []byte        // writer-owned coalescing buffer
	wbufs    net.Buffers   // writer-owned vectored-write scratch
	werr     error         // writer-owned; first flush failure
}

// Dial connects to an almanacd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an existing connection (tests use net.Pipe).
func NewClient(conn io.ReadWriteCloser) *Client { return &Client{conn: conn} }

// Close shuts the connection. On a tagged connection it also stops the
// writer goroutine and waits for it, so every in-flight Wait observes a
// typed ErrConnClosed failure (from the demux reader hitting the closed
// connection) rather than hanging — closing mid-coalesced-flush is safe:
// the blocked Write fails, the writer fails all pendings, and exits.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.stopWriter()
	return err
}

// roundTrip sends one request body and decodes the response status. On a
// tagged (v4) connection the request is submitted with a fresh ID and the
// call waits for its completion, so every synchronous method transparently
// rides the pipelined transport.
func (c *Client) roundTrip(body []byte) (*dec, error) {
	c.pmu.Lock()
	tagged := c.tagged
	c.pmu.Unlock()
	if tagged {
		p, err := c.submit(body)
		if err != nil {
			return nil, err
		}
		r := p.wait()
		if r.err != nil {
			return nil, r.err
		}
		// Sync callers may hand decoded slices to the application, so the
		// response frame is left to the GC instead of being recycled.
		d := r.d
		return &d, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, body); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	d := &dec{b: resp}
	if status := d.u8(); status != StatusOK {
		return nil, &RemoteError{Msg: string(d.bytes()), Code: status}
	}
	return d, nil
}

func request(op Op) *enc {
	e := &enc{}
	e.u8(uint8(op))
	return e
}

// Identify fetches device geometry and the retention window start, and
// negotiates the protocol version: the client announces CurrentVersion,
// the server replies with the agreed one. Servers from before the
// negotiation revision reject the announcement as trailing request bytes;
// Identify then falls back to the legacy bare request and records the
// pre-negotiation wire level.
//
// When the agreed version is ≥ v4 the connection switches to the tagged
// transport the moment Identify returns. Run the first Identify to
// completion before issuing commands from other goroutines: a command
// racing the negotiation could hit the wire in the old framing after the
// server has already switched.
func (c *Client) Identify() (Identity, error) {
	e := request(OpIdentify)
	e.u32(c.announceMax())
	d, err := c.roundTrip(e.b)
	legacy := false
	if err != nil {
		var re *RemoteError
		if !errors.As(err, &re) {
			return Identity{}, err
		}
		legacy = true
		if d, err = c.roundTrip(request(OpIdentify).b); err != nil {
			return Identity{}, err
		}
	}
	id := Identity{
		PageSize:     int(d.u32()),
		LogicalPages: int(d.u64()),
		Channels:     int(d.u32()),
		Shards:       int(d.u32()),
		WindowStart:  d.time(),
	}
	if !legacy && d.pos < len(d.b) {
		id.Version = int(d.u32())
	} else {
		id.Version = VersionArray
	}
	if !legacy && d.pos < len(d.b) {
		id.Window = int(d.u32())
	}
	if d.err != nil {
		return Identity{}, d.err
	}
	c.mu.Lock()
	c.version = uint32(id.Version)
	c.window = id.Window
	c.mu.Unlock()
	if id.Version >= VersionService {
		c.enableTagged()
	}
	return id, nil
}

// announceMax returns the highest version this client announces.
func (c *Client) announceMax() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxVersion != 0 {
		return c.maxVersion
	}
	return CurrentVersion
}

// negotiated returns the connection's protocol version, running Identify
// first if no negotiation has happened yet.
func (c *Client) negotiated() (uint32, error) {
	c.mu.Lock()
	v := c.version
	c.mu.Unlock()
	if v != 0 {
		return v, nil
	}
	id, err := c.Identify()
	if err != nil {
		return 0, err
	}
	return uint32(id.Version), nil
}

// Read fetches the current content of lpa.
func (c *Client) Read(lpa uint64, at vclock.Time) ([]byte, vclock.Time, error) {
	e := request(OpRead)
	e.u64(lpa)
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return nil, at, err
	}
	done := d.time()
	data := d.bytes()
	return data, done, d.err
}

// Write stores data at lpa.
func (c *Client) Write(lpa uint64, data []byte, at vclock.Time) (vclock.Time, error) {
	e := request(OpWrite)
	e.u64(lpa)
	e.time(at)
	e.bytes(data)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return at, err
	}
	done := d.time()
	return done, d.err
}

// Trim invalidates lpa.
func (c *Client) Trim(lpa uint64, at vclock.Time) (vclock.Time, error) {
	e := request(OpTrim)
	e.u64(lpa)
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return at, err
	}
	done := d.time()
	return done, d.err
}

func (c *Client) addrQuery(op Op, addr uint64, cnt int, t1, t2, at vclock.Time) ([]timekits.PageVersions, vclock.Time, error) {
	e := request(op)
	e.u64(addr)
	e.u32(uint32(cnt))
	switch op {
	case OpAddrQuery:
		e.time(t1)
	case OpAddrQueryRange:
		e.time(t1)
		e.time(t2)
	}
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return nil, at, err
	}
	done := d.time()
	n := int(d.u32())
	cap := n
	if cap > 4096 {
		cap = 4096 // grow past this instead of trusting the peer's count
	}
	out := make([]timekits.PageVersions, 0, cap)
	for i := 0; i < n && d.err == nil; i++ {
		pv := timekits.PageVersions{LPA: d.u64()}
		pv.Versions = decVersions(d)
		out = append(out, pv)
	}
	return out, done, d.err
}

// AddrQuery returns, per LPA, the version current at time t.
func (c *Client) AddrQuery(addr uint64, cnt int, t, at vclock.Time) ([]timekits.PageVersions, vclock.Time, error) {
	return c.addrQuery(OpAddrQuery, addr, cnt, t, 0, at)
}

// AddrQueryRange returns versions written in [t1, t2].
func (c *Client) AddrQueryRange(addr uint64, cnt int, t1, t2, at vclock.Time) ([]timekits.PageVersions, vclock.Time, error) {
	return c.addrQuery(OpAddrQueryRange, addr, cnt, t1, t2, at)
}

// AddrQueryAll returns every retained version.
func (c *Client) AddrQueryAll(addr uint64, cnt int, at vclock.Time) ([]timekits.PageVersions, vclock.Time, error) {
	return c.addrQuery(OpAddrQueryAll, addr, cnt, 0, 0, at)
}

func (c *Client) timeQuery(op Op, t1, t2, at vclock.Time) ([]core.UpdateRecord, vclock.Time, error) {
	e := request(op)
	switch op {
	case OpTimeQuery:
		e.time(t1)
	case OpTimeQueryRange:
		e.time(t1)
		e.time(t2)
	}
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return nil, at, err
	}
	done := d.time()
	recs := decRecords(d)
	return recs, done, d.err
}

// TimeQuery returns LPAs updated since t.
func (c *Client) TimeQuery(t, at vclock.Time) ([]core.UpdateRecord, vclock.Time, error) {
	return c.timeQuery(OpTimeQuery, t, 0, at)
}

// TimeQueryRange returns LPAs updated within [t1, t2].
func (c *Client) TimeQueryRange(t1, t2, at vclock.Time) ([]core.UpdateRecord, vclock.Time, error) {
	return c.timeQuery(OpTimeQueryRange, t1, t2, at)
}

// TimeQueryAll returns the whole retention window's update history.
func (c *Client) TimeQueryAll(at vclock.Time) ([]core.UpdateRecord, vclock.Time, error) {
	return c.timeQuery(OpTimeQueryAll, 0, 0, at)
}

// RollBack reverts cnt LPAs from addr to their state at time t.
func (c *Client) RollBack(addr uint64, cnt int, t, at vclock.Time) (int, vclock.Time, error) {
	e := request(OpRollBack)
	e.u64(addr)
	e.u32(uint32(cnt))
	e.time(t)
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return 0, at, err
	}
	done := d.time()
	changed := int(d.u32())
	return changed, done, d.err
}

// RollBackAll reverts every LPA with retrievable state to its version at
// time t — on an array server, every shard travels to the same instant.
func (c *Client) RollBackAll(t, at vclock.Time) (int, vclock.Time, error) {
	e := request(OpRollBackAll)
	e.time(t)
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return 0, at, err
	}
	done := d.time()
	changed := int(d.u32())
	return changed, done, d.err
}

// RollBackParallel reverts a set of LPAs with the given host threads.
func (c *Client) RollBackParallel(lpas []uint64, threads int, t, at vclock.Time) (int, vclock.Time, error) {
	e := request(OpRollBackParallel)
	e.u32(uint32(len(lpas)))
	for _, lpa := range lpas {
		e.u64(lpa)
	}
	e.u32(uint32(threads))
	e.time(t)
	e.time(at)
	d, err := c.roundTrip(e.b)
	if err != nil {
		return 0, at, err
	}
	done := d.time()
	changed := int(d.u32())
	return changed, done, d.err
}

// Stats fetches the device counters.
func (c *Client) Stats() (DeviceStats, error) {
	d, err := c.roundTrip(request(OpStats).b)
	if err != nil {
		return DeviceStats{}, err
	}
	st := DeviceStats{
		HostPageWrites: d.i64(),
		HostPageReads:  d.i64(),
		FlashPrograms:  d.i64(),
		FlashReads:     d.i64(),
		FlashErases:    d.i64(),
		DeltasCreated:  d.i64(),
		WindowDrops:    d.i64(),
	}
	return st, d.err
}

// requireVersion negotiates if needed and checks the agreed version
// covers the requested surface.
func (c *Client) requireVersion(min uint32, op Op) error {
	v, err := c.negotiated()
	if err != nil {
		return err
	}
	if v < min {
		return fmt.Errorf("almaproto: %v requires protocol v%d, server negotiated v%d", op, min, v)
	}
	return nil
}

// Metrics fetches the device's full observability snapshot: counters plus
// per-class virtual- and wall-time histograms (protocol ≥ v3).
func (c *Client) Metrics() (obs.Snapshot, error) {
	if err := c.requireVersion(VersionObs, OpMetrics); err != nil {
		return obs.Snapshot{}, err
	}
	d, err := c.roundTrip(request(OpMetrics).b)
	if err != nil {
		return obs.Snapshot{}, err
	}
	s := decSnapshot(d)
	return s, d.err
}

// Trace fetches up to max recent trace events, oldest first; max <= 0
// requests everything the device's rings hold (protocol ≥ v3).
func (c *Client) Trace(max int) ([]obs.Event, error) {
	if err := c.requireVersion(VersionObs, OpTrace); err != nil {
		return nil, err
	}
	e := request(OpTrace)
	e.u32(uint32(max))
	d, err := c.roundTrip(e.b)
	if err != nil {
		return nil, err
	}
	evs := decEvents(d)
	return evs, d.err
}
