package lzf

import "testing"

// TestCodecAllocs pins the zero-allocation contract of the codec hot path:
// with a reused, pre-sized destination, Compress and Decompress must not
// allocate at all — both run on every retained version the device moves.
func TestCodecAllocs(t *testing.T) {
	// Sparse delta-residual shape: mostly zero with scattered set bytes,
	// the input almost every production call sees.
	src := make([]byte, 4096)
	for i := 0; i < 200; i++ {
		src[(i*61)%len(src)] = byte(1 + i%255)
	}

	dst := make([]byte, 0, 2*len(src))
	if n := testing.AllocsPerRun(100, func() {
		dst = Compress(dst[:0], src)
	}); n != 0 {
		t.Fatalf("Compress allocates %.2f times per call, want 0", n)
	}

	comp := Compress(nil, src)
	out := make([]byte, 0, len(src))
	if n := testing.AllocsPerRun(100, func() {
		var err error
		out, err = Decompress(out[:0], comp, len(src))
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Decompress allocates %.2f times per call, want 0", n)
	}
}
