// Package lzf implements an LZF-style byte compressor.
//
// TimeSSD compresses retained data versions with LZF because of its speed
// (§4 of the paper, citing LibLZF). This is a from-scratch implementation of
// the same format family: a greedy LZ77 coder with a tiny fixed hash table,
// literal runs of up to 32 bytes, and back-references of up to 264 bytes
// within an 8 KiB window. It favours speed over ratio, exactly the trade-off
// a firmware compressor makes.
//
// Encoded stream format (identical to classic LZF):
//
//	ctrl < 0x20:  literal run, ctrl+1 literal bytes follow.
//	ctrl >= 0x20: back-reference. len3 = ctrl>>5; if len3 == 7 an extension
//	              byte follows and the match length is 7+ext+2, otherwise
//	              len3+2. The reference offset is ((ctrl&0x1f)<<8 | low)+1
//	              bytes back from the current output position.
package lzf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

const (
	hashLog   = 13
	hashSize  = 1 << hashLog
	maxOff    = 1 << 13 // 8192: max back-reference distance
	maxMatch  = 264     // 7 + 255 + 2
	minMatch  = 3
	maxLitRun = 32
)

// ErrCorrupt is returned by Decompress when the input is not a valid LZF
// stream or does not fit the destination bound.
var ErrCorrupt = errors.New("lzf: corrupt input")

// ErrTooLarge is returned by Decompress when the decoded output would exceed
// the caller-provided maximum.
var ErrTooLarge = errors.New("lzf: output exceeds limit")

func hash3(a, b, c byte) uint32 {
	h := uint32(a)<<16 | uint32(b)<<8 | uint32(c)
	// Fibonacci-style multiplicative hash, folded to hashLog bits.
	return (h * 2654435761) >> (32 - hashLog)
}

// Compress appends the LZF encoding of src to dst and returns the extended
// slice. The output of Compress on incompressible data can be slightly
// larger than the input (worst case: one control byte per 32 literals).
//
// The match table stores position+1 so its zero value means "empty": a fresh
// stack table costs one vectorized 32 KiB clear instead of the explicit
// fill-with--1 loop a sentinel of -1 would need. Compress stays a pure
// function of src (no state outlives the call), which matters beyond
// hygiene: compressed bytes land on the simulated flash, so match selection
// influencing payload sizes must never depend on prior calls.
func Compress(dst, src []byte) []byte {
	if len(src) == 0 {
		return dst
	}
	var table [hashSize]int32 // entry = position+1; 0 = empty

	litStart := 0 // start of the pending literal run
	flushLits := func(end int) {
		for litStart < end {
			n := end - litStart
			if n > maxLitRun {
				n = maxLitRun
			}
			dst = append(dst, byte(n-1))
			dst = append(dst, src[litStart:litStart+n]...)
			litStart += n
		}
	}

	i := 0
	for i+minMatch <= len(src) {
		var h uint32
		var u uint32
		wide := i+4 <= len(src)
		if wide {
			// One little-endian load serves both the hash (byte-reversed so
			// it equals hash3(src[i], src[i+1], src[i+2])) and the 3-byte
			// candidate comparison below.
			u = binary.LittleEndian.Uint32(src[i:])
			h = ((bits.ReverseBytes32(u) >> 8) * 2654435761) >> (32 - hashLog)
		} else {
			h = hash3(src[i], src[i+1], src[i+2])
		}
		e := table[h]
		table[h] = int32(i + 1)
		if e != 0 {
			cand := int(e) - 1
			var hit bool
			if wide {
				// cand < i and i+4 <= len(src), so the 4-byte load at cand
				// is in bounds; the mask keeps only the minMatch prefix.
				hit = i-cand <= maxOff && (binary.LittleEndian.Uint32(src[cand:])^u)&0xffffff == 0
			} else {
				hit = i-cand <= maxOff &&
					src[cand] == src[i] && src[cand+1] == src[i+1] && src[cand+2] == src[i+2]
			}
			if hit {
				// Extend eight bytes per step while both sides keep whole
				// words in range; the XOR's trailing zero count pinpoints
				// the first differing byte, so the byte-wise tail only runs
				// when the word loop ran out of room rather than out of
				// match.
				mlen := minMatch
				limit := len(src) - i
				if limit > maxMatch {
					limit = maxMatch
				}
				exact := false
				// Short matches are common on low-locality content; one
				// byte probe avoids paying two word loads to learn the
				// match ends at minMatch.
				if mlen < limit && src[cand+mlen] != src[i+mlen] {
					exact = true
				}
				for !exact && mlen+8 <= limit {
					x := binary.LittleEndian.Uint64(src[cand+mlen:]) ^ binary.LittleEndian.Uint64(src[i+mlen:])
					if x != 0 {
						mlen += bits.TrailingZeros64(x) >> 3
						exact = true
						break
					}
					mlen += 8
				}
				if !exact {
					for mlen < limit && src[cand+mlen] == src[i+mlen] {
						mlen++
					}
				}
				flushLits(i)
				off := i - cand - 1
				l := mlen - 2
				if l < 7 {
					dst = append(dst, byte(l<<5)|byte(off>>8), byte(off))
				} else {
					dst = append(dst, byte(7<<5)|byte(off>>8), byte(l-7), byte(off))
				}
				// Seed the table with positions inside the match so later
				// data can reference it; a sparse seeding keeps compression
				// fast.
				end := i + mlen
				for j := i + 1; j+minMatch <= end && j+minMatch <= len(src); j += 2 {
					table[hash3(src[j], src[j+1], src[j+2])] = int32(j + 1)
				}
				i = end
				litStart = i
				continue
			}
		}
		i++
	}
	flushLits(len(src))
	return dst
}

// Compressor is a Compress variant that carries its match table across
// calls. Compress clears a 32 KiB stack table on every invocation — wasted
// work when the inputs are single flash pages far smaller than the table.
// The Compressor instead tags each table entry with a per-call generation:
// entries written by earlier calls read as empty, so no clear is needed and
// the output is byte-identical to the pure function's (the same positions
// are visible at the same probes — asserted by TestCompressorMatchesPure).
//
// The zero value is ready to use. A Compressor is NOT safe for concurrent
// use; give each goroutine (in the simulator: each device) its own.
type Compressor struct {
	gen   uint32
	table [hashSize]uint64 // gen<<32 | position+1; other-generation tags read as empty
}

// Compress appends the LZF encoding of src to dst and returns the extended
// slice. Output is byte-for-byte identical to the package-level Compress.
func (c *Compressor) Compress(dst, src []byte) []byte {
	if len(src) == 0 {
		return dst
	}
	c.gen++
	if c.gen == 0 {
		// Generation wrapped: stale tags from 1<<32 calls ago would read as
		// current. One real clear per 4 billion calls.
		c.table = [hashSize]uint64{}
		c.gen = 1
	}
	tag := uint64(c.gen) << 32

	litStart := 0 // start of the pending literal run
	flushLits := func(end int) {
		for litStart < end {
			n := end - litStart
			if n > maxLitRun {
				n = maxLitRun
			}
			dst = append(dst, byte(n-1))
			dst = append(dst, src[litStart:litStart+n]...)
			litStart += n
		}
	}

	i := 0
	for i+minMatch <= len(src) {
		var h uint32
		var u uint32
		wide := i+4 <= len(src)
		if wide {
			u = binary.LittleEndian.Uint32(src[i:])
			h = ((bits.ReverseBytes32(u) >> 8) * 2654435761) >> (32 - hashLog)
		} else {
			h = hash3(src[i], src[i+1], src[i+2])
		}
		e := c.table[h]
		c.table[h] = tag | uint64(i+1)
		if e>>32 == uint64(c.gen) {
			cand := int(uint32(e)) - 1
			var hit bool
			if wide {
				hit = i-cand <= maxOff && (binary.LittleEndian.Uint32(src[cand:])^u)&0xffffff == 0
			} else {
				hit = i-cand <= maxOff &&
					src[cand] == src[i] && src[cand+1] == src[i+1] && src[cand+2] == src[i+2]
			}
			if hit {
				mlen := minMatch
				limit := len(src) - i
				if limit > maxMatch {
					limit = maxMatch
				}
				exact := false
				if mlen < limit && src[cand+mlen] != src[i+mlen] {
					exact = true
				}
				for !exact && mlen+8 <= limit {
					x := binary.LittleEndian.Uint64(src[cand+mlen:]) ^ binary.LittleEndian.Uint64(src[i+mlen:])
					if x != 0 {
						mlen += bits.TrailingZeros64(x) >> 3
						exact = true
						break
					}
					mlen += 8
				}
				if !exact {
					for mlen < limit && src[cand+mlen] == src[i+mlen] {
						mlen++
					}
				}
				flushLits(i)
				off := i - cand - 1
				l := mlen - 2
				if l < 7 {
					dst = append(dst, byte(l<<5)|byte(off>>8), byte(off))
				} else {
					dst = append(dst, byte(7<<5)|byte(off>>8), byte(l-7), byte(off))
				}
				// Seed the table with positions inside the match (same stride
				// and hash values as the pure function; the word load mirrors
				// the main loop's byte-reversed trick).
				end := i + mlen
				for j := i + 1; j+minMatch <= end; j += 2 {
					var jh uint32
					if j+4 <= len(src) {
						ju := binary.LittleEndian.Uint32(src[j:])
						jh = ((bits.ReverseBytes32(ju) >> 8) * 2654435761) >> (32 - hashLog)
					} else {
						jh = hash3(src[j], src[j+1], src[j+2])
					}
					c.table[jh] = tag | uint64(j+1)
				}
				i = end
				litStart = i
				continue
			}
		}
		i++
	}
	flushLits(len(src))
	return dst
}

// Decompress appends the decoding of src to dst and returns the extended
// slice. maxOut bounds the total number of decoded bytes (not counting what
// is already in dst); pass the known original size, or a generous cap.
func Decompress(dst, src []byte, maxOut int) ([]byte, error) {
	base := len(dst)
	// Grow once up front: every append below then extends in place, and the
	// bulk copies never trigger a mid-copy reallocation.
	if need := base + maxOut; cap(dst) < need {
		grown := make([]byte, base, need)
		copy(grown, dst)
		dst = grown
	}
	i := 0
	for i < len(src) {
		ctrl := src[i]
		i++
		if ctrl < 0x20 { // literal run
			n := int(ctrl) + 1
			if i+n > len(src) {
				return dst, fmt.Errorf("%w: literal run past end", ErrCorrupt)
			}
			if len(dst)-base+n > maxOut {
				return dst, ErrTooLarge
			}
			dst = append(dst, src[i:i+n]...)
			i += n
			continue
		}
		mlen := int(ctrl >> 5)
		if mlen == 7 {
			if i >= len(src) {
				return dst, fmt.Errorf("%w: truncated length extension", ErrCorrupt)
			}
			mlen += int(src[i])
			i++
		}
		mlen += 2
		if i >= len(src) {
			return dst, fmt.Errorf("%w: truncated offset", ErrCorrupt)
		}
		off := int(ctrl&0x1f)<<8 | int(src[i])
		i++
		ref := len(dst) - off - 1
		if ref < base {
			return dst, fmt.Errorf("%w: reference before window", ErrCorrupt)
		}
		if len(dst)-base+mlen > maxOut {
			return dst, ErrTooLarge
		}
		if ref+mlen <= len(dst) {
			// Non-overlapping reference: one bulk copy.
			dst = append(dst, dst[ref:ref+mlen]...)
			continue
		}
		// Overlapping reference: the copy repeats the period-(off+1)
		// pattern ending at the write position (run-length encoding uses
		// off=0). Each bulk append doubles the materialised pattern, so a
		// long run costs O(log n) memmoves instead of n byte stores.
		for mlen > 0 {
			chunk := len(dst) - ref
			if chunk > mlen {
				chunk = mlen
			}
			dst = append(dst, dst[ref:ref+chunk]...)
			mlen -= chunk
		}
	}
	return dst, nil
}
