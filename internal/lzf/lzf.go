// Package lzf implements an LZF-style byte compressor.
//
// TimeSSD compresses retained data versions with LZF because of its speed
// (§4 of the paper, citing LibLZF). This is a from-scratch implementation of
// the same format family: a greedy LZ77 coder with a tiny fixed hash table,
// literal runs of up to 32 bytes, and back-references of up to 264 bytes
// within an 8 KiB window. It favours speed over ratio, exactly the trade-off
// a firmware compressor makes.
//
// Encoded stream format (identical to classic LZF):
//
//	ctrl < 0x20:  literal run, ctrl+1 literal bytes follow.
//	ctrl >= 0x20: back-reference. len3 = ctrl>>5; if len3 == 7 an extension
//	              byte follows and the match length is 7+ext+2, otherwise
//	              len3+2. The reference offset is ((ctrl&0x1f)<<8 | low)+1
//	              bytes back from the current output position.
package lzf

import (
	"errors"
	"fmt"
)

const (
	hashLog   = 13
	hashSize  = 1 << hashLog
	maxOff    = 1 << 13 // 8192: max back-reference distance
	maxRef    = maxOff
	maxMatch  = 264 // 7 + 255 + 2
	minMatch  = 3
	maxLitRun = 32
)

// ErrCorrupt is returned by Decompress when the input is not a valid LZF
// stream or does not fit the destination bound.
var ErrCorrupt = errors.New("lzf: corrupt input")

// ErrTooLarge is returned by Decompress when the decoded output would exceed
// the caller-provided maximum.
var ErrTooLarge = errors.New("lzf: output exceeds limit")

func hash3(a, b, c byte) uint32 {
	h := uint32(a)<<16 | uint32(b)<<8 | uint32(c)
	// Fibonacci-style multiplicative hash, folded to hashLog bits.
	return (h * 2654435761) >> (32 - hashLog)
}

// Compress appends the LZF encoding of src to dst and returns the extended
// slice. The output of Compress on incompressible data can be slightly
// larger than the input (worst case: one control byte per 32 literals).
func Compress(dst, src []byte) []byte {
	if len(src) == 0 {
		return dst
	}
	var table [hashSize]int32
	for i := range table {
		table[i] = -1
	}

	litStart := 0 // start of the pending literal run
	i := 0
	flushLits := func(end int) {
		for litStart < end {
			n := end - litStart
			if n > maxLitRun {
				n = maxLitRun
			}
			dst = append(dst, byte(n-1))
			dst = append(dst, src[litStart:litStart+n]...)
			litStart += n
		}
	}

	for i+minMatch <= len(src) {
		h := hash3(src[i], src[i+1], src[i+2])
		cand := table[h]
		table[h] = int32(i)
		if cand >= 0 && i-int(cand) <= maxOff &&
			src[cand] == src[i] && src[cand+1] == src[i+1] && src[cand+2] == src[i+2] {
			// Extend the match.
			mlen := minMatch
			limit := len(src) - i
			if limit > maxMatch {
				limit = maxMatch
			}
			for mlen < limit && src[int(cand)+mlen] == src[i+mlen] {
				mlen++
			}
			flushLits(i)
			off := i - int(cand) - 1
			l := mlen - 2
			if l < 7 {
				dst = append(dst, byte(l<<5)|byte(off>>8), byte(off))
			} else {
				dst = append(dst, byte(7<<5)|byte(off>>8), byte(l-7), byte(off))
			}
			// Seed the table with positions inside the match so later data
			// can reference it; a sparse seeding keeps compression fast.
			end := i + mlen
			for j := i + 1; j+minMatch <= end && j+minMatch <= len(src); j += 2 {
				table[hash3(src[j], src[j+1], src[j+2])] = int32(j)
			}
			i = end
			litStart = i
			continue
		}
		i++
	}
	flushLits(len(src))
	return dst
}

// Decompress appends the decoding of src to dst and returns the extended
// slice. maxOut bounds the total number of decoded bytes (not counting what
// is already in dst); pass the known original size, or a generous cap.
func Decompress(dst, src []byte, maxOut int) ([]byte, error) {
	base := len(dst)
	i := 0
	for i < len(src) {
		ctrl := src[i]
		i++
		if ctrl < 0x20 { // literal run
			n := int(ctrl) + 1
			if i+n > len(src) {
				return dst, fmt.Errorf("%w: literal run past end", ErrCorrupt)
			}
			if len(dst)-base+n > maxOut {
				return dst, ErrTooLarge
			}
			dst = append(dst, src[i:i+n]...)
			i += n
			continue
		}
		mlen := int(ctrl >> 5)
		if mlen == 7 {
			if i >= len(src) {
				return dst, fmt.Errorf("%w: truncated length extension", ErrCorrupt)
			}
			mlen += int(src[i])
			i++
		}
		mlen += 2
		if i >= len(src) {
			return dst, fmt.Errorf("%w: truncated offset", ErrCorrupt)
		}
		off := int(ctrl&0x1f)<<8 | int(src[i])
		i++
		ref := len(dst) - off - 1
		if ref < base {
			return dst, fmt.Errorf("%w: reference before window", ErrCorrupt)
		}
		if len(dst)-base+mlen > maxOut {
			return dst, ErrTooLarge
		}
		// Byte-at-a-time copy: overlapping references are legal and rely on
		// already-written output.
		for k := 0; k < mlen; k++ {
			dst = append(dst, dst[ref+k])
		}
	}
	return dst, nil
}
