package lzf

import (
	"bytes"
	"testing"
)

// FuzzLZFRoundTrip checks that Compress∘Decompress is the identity for any
// input, and that the decoder's output bound is honored. The compressor
// runs inside the GC's retained-data path, so a round-trip corruption here
// would rewrite history rather than just lose a page.
func FuzzLZFRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("a"))
	f.Add([]byte("abcabcabcabcabcabcabcabc"))
	f.Add(bytes.Repeat([]byte{0}, 4096))
	f.Add(bytes.Repeat([]byte("0123456789abcdef"), 256))
	// A run longer than the 264-byte max match plus a literal tail.
	f.Add(append(bytes.Repeat([]byte{0xAA}, 600), []byte("tail-literal-bytes")...))
	// Period exactly at the 8 KiB window boundary.
	f.Add(bytes.Repeat([]byte("x"), 8192+32))

	f.Fuzz(func(t *testing.T, src []byte) {
		comp := Compress(nil, src)
		got, err := Decompress(nil, comp, len(src))
		if err != nil {
			t.Fatalf("Decompress of own output failed: %v", err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("round trip mismatch: %d bytes in, %d bytes out", len(src), len(got))
		}
		if len(src) > 0 {
			// The declared bound must be enforced, not advisory.
			if _, err := Decompress(nil, comp, len(src)-1); err == nil {
				t.Fatalf("Decompress accepted output larger than its bound")
			}
		}
	})
}

// FuzzLZFDecompressArbitrary feeds arbitrary bytes to the decoder: it may
// reject them, but must never panic or exceed the output bound.
func FuzzLZFDecompressArbitrary(f *testing.F) {
	f.Add([]byte{}, 16)
	f.Add([]byte{0x00, 0x41}, 16)
	f.Add([]byte{0xFF, 0x00, 0x00}, 16)
	f.Fuzz(func(t *testing.T, data []byte, maxOut int) {
		if maxOut < 0 || maxOut > 1<<20 {
			t.Skip()
		}
		out, err := Decompress(nil, data, maxOut)
		if err == nil && len(out) > maxOut {
			t.Fatalf("Decompress returned %d bytes, bound was %d", len(out), maxOut)
		}
	})
}
