package lzf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) {
	t.Helper()
	comp := Compress(nil, src)
	dec, err := Decompress(nil, comp, len(src))
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("round trip mismatch: %d bytes in, %d out", len(src), len(dec))
	}
}

func TestRoundTripEmpty(t *testing.T) { roundTrip(t, nil) }

func TestRoundTripShort(t *testing.T) {
	for n := 1; n <= 8; n++ {
		roundTrip(t, bytes.Repeat([]byte{'x'}, n))
	}
}

func TestRoundTripRepetitive(t *testing.T) {
	src := bytes.Repeat([]byte("abcdefgh"), 512)
	comp := Compress(nil, src)
	if len(comp) >= len(src)/4 {
		t.Fatalf("repetitive data compressed to %d of %d bytes; expected much smaller", len(comp), len(src))
	}
	roundTrip(t, src)
}

func TestRoundTripAllSame(t *testing.T) {
	roundTrip(t, bytes.Repeat([]byte{0}, 4096))
	roundTrip(t, bytes.Repeat([]byte{0xff}, 4096))
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(8192)
		src := make([]byte, n)
		rng.Read(src)
		roundTrip(t, src)
	}
}

func TestRoundTripLongMatches(t *testing.T) {
	// Exercise the length-extension byte (matches > 8 bytes, up to maxMatch)
	// and matches crossing the 8 KiB window boundary.
	var src []byte
	src = append(src, bytes.Repeat([]byte{'A'}, 300)...)          // long match run
	src = append(src, make([]byte, 9000)...)                      // push past window
	src = append(src, bytes.Repeat([]byte{'A'}, 300)...)          // far reference
	src = append(src, []byte("the quick brown fox")...)           //
	src = append(src, bytes.Repeat([]byte("the quick"), 1000)...) // periodic
	roundTrip(t, src)
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(src []byte) bool {
		comp := Compress(nil, src)
		dec, err := Decompress(nil, comp, len(src))
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStructuredRoundTrip(t *testing.T) {
	// Structured inputs (limited alphabet) hit the match paths much more
	// often than uniform random bytes.
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6000)
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(r.Intn(4))
		}
		comp := Compress(nil, src)
		dec, err := Decompress(nil, comp, len(src))
		return err == nil && bytes.Equal(dec, src)
	}
	for i := 0; i < 200; i++ {
		if !f(rng.Int63()) {
			t.Fatalf("structured round trip failed")
		}
	}
}

func TestDecompressAppendsToDst(t *testing.T) {
	src := []byte("hello hello hello hello")
	comp := Compress(nil, src)
	prefix := []byte("prefix-")
	out, err := Decompress(prefix, comp, len(src))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, append([]byte("prefix-"), src...)) {
		t.Fatalf("append semantics broken: %q", out)
	}
}

func TestDecompressCorrupt(t *testing.T) {
	cases := [][]byte{
		{31},                // literal run of 32 with no data
		{0x20 | 0x1f, 0xff}, // back-reference before window start
		{7 << 5},            // truncated length extension
		{1 << 5},            // truncated offset byte
	}
	for i, c := range cases {
		if _, err := Decompress(nil, c, 1<<20); err == nil {
			t.Errorf("case %d: corrupt input decoded without error", i)
		}
	}
}

func TestDecompressTooLarge(t *testing.T) {
	src := bytes.Repeat([]byte{'z'}, 1000)
	comp := Compress(nil, src)
	if _, err := Decompress(nil, comp, 10); err == nil {
		t.Fatal("expected ErrTooLarge for tight output bound")
	}
}

func TestCompressWorstCaseBound(t *testing.T) {
	// Incompressible data must not blow up: worst case is one control byte
	// per 32 literals.
	rng := rand.New(rand.NewSource(2))
	src := make([]byte, 4096)
	rng.Read(src)
	comp := Compress(nil, src)
	bound := len(src) + (len(src)+maxLitRun-1)/maxLitRun
	if len(comp) > bound {
		t.Fatalf("compressed size %d exceeds worst-case bound %d", len(comp), bound)
	}
}

// TestCompressorMatchesPure pins the Compressor's contract: byte-identical
// output to the pure Compress across content shapes, sizes, and — the part
// the generation tags must get right — across sequential calls on one
// instance, where stale table entries from earlier inputs must never
// influence match selection.
func TestCompressorMatchesPure(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var c Compressor
	mk := func(n int, mode int) []byte {
		src := make([]byte, n)
		switch mode % 4 {
		case 0: // zeros (XOR-delta common case)
		case 1:
			rng.Read(src)
		case 2: // sparse: zeros with scattered bytes
			for j := 0; j < n/16; j++ {
				src[rng.Intn(n)] = byte(rng.Intn(256))
			}
		case 3: // periodic runs
			for j := range src {
				src[j] = byte(j % (1 + mode))
			}
		}
		return src
	}
	for round := 0; round < 400; round++ {
		src := mk(rng.Intn(5000), round)
		want := Compress(nil, src)
		got := c.Compress(nil, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("round %d (len %d): compressor output diverges from pure Compress", round, len(src))
		}
		dec, err := Decompress(nil, got, len(src)+1)
		if err != nil || !bytes.Equal(dec, src) {
			t.Fatalf("round %d: round-trip failed: %v", round, err)
		}
	}
	// Generation wrap: force gen past the reset boundary and re-verify.
	c.gen = ^uint32(0)
	src := mk(2048, 2)
	if !bytes.Equal(c.Compress(nil, src), Compress(nil, src)) {
		t.Fatal("compressor diverges after generation wrap")
	}
}
