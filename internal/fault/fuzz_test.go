package fault

import "testing"

// FuzzParsePlan drives the plan parser with arbitrary text. Invariants: no
// panic, a parsed plan always validates (Parse runs Validate), and String
// is a fixed point — serialising and re-parsing yields the same text, so a
// stored artifact plan replays exactly.
func FuzzParsePlan(f *testing.F) {
	f.Add("seed 42\necc-budget 8\nread uncorrectable block=3 page=7 count=1\n")
	f.Add("read bitflip bits=4 prob=0.001\nread bitflip bits=40 silent count=1\n")
	f.Add("program fail after-ops=100 count=2\nerase fail block=5\n")
	f.Add("powercut at=1.5s\npowercut after-ops=5000\n")
	f.Add("# only a comment\n\n   \n")
	f.Add("seed -1")
	f.Add("read uncorrectable channel=0 at=0s prob=1")
	f.Fuzz(func(t *testing.T, text string) {
		p, err := Parse(text)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse accepted a plan Validate rejects: %v\ninput: %q", err, text)
		}
		s := p.String()
		q, err := Parse(s)
		if err != nil {
			t.Fatalf("String output does not re-parse: %v\noutput: %q", err, s)
		}
		if q.String() != s {
			t.Fatalf("String not a fixed point:\n%q\nvs\n%q", s, q.String())
		}
		if _, err := NewInjector(p); err != nil {
			t.Fatalf("parsed plan rejected by NewInjector: %v", err)
		}
	})
}
