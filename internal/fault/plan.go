package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"almanac/internal/vclock"
)

// Plan text format — one directive per line, '#' starts a comment:
//
//	seed 42
//	ecc-budget 8
//	read uncorrectable block=3 page=7 count=1
//	read bitflip bits=4 prob=0.001
//	read bitflip bits=40 silent count=1
//	program fail after-ops=100 count=2
//	erase fail block=5
//	powercut at=1.5s
//	powercut after-ops=5000
//
// Options accepted by every rule line: channel=N block=N page=N (address
// predicates, omitted = any), at=DURATION (virtual trigger time), count=N
// (max firings, 0 = unlimited), after-ops=N (ops that must precede),
// prob=F (firing probability in [0,1]). "read bitflip" additionally takes
// bits=N and the bare flag "silent".

// Parse decodes the text plan format.
func Parse(text string) (*Plan, error) {
	p := &Plan{}
	for ln, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		lineNo := ln + 1
		switch fields[0] {
		case "seed":
			if len(fields) != 2 {
				return nil, fmt.Errorf("fault: line %d: want `seed N`", lineNo)
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: line %d: bad seed: %v", lineNo, err)
			}
			p.Seed = v
		case "ecc-budget":
			if len(fields) != 2 {
				return nil, fmt.Errorf("fault: line %d: want `ecc-budget N`", lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("fault: line %d: bad ecc-budget: %v", lineNo, err)
			}
			p.ECCBudget = v
		case "read", "program", "erase", "powercut":
			r, err := parseRule(fields)
			if err != nil {
				return nil, fmt.Errorf("fault: line %d: %v", lineNo, err)
			}
			p.Rules = append(p.Rules, r)
		default:
			return nil, fmt.Errorf("fault: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// parseRule decodes one rule line, already split into fields.
func parseRule(fields []string) (Rule, error) {
	r := Rule{Channel: Any, Block: Any, Page: Any}
	opts := fields[1:]
	switch fields[0] {
	case "read":
		if len(fields) < 2 {
			return r, fmt.Errorf("want `read uncorrectable|bitflip ...`")
		}
		switch fields[1] {
		case "uncorrectable":
			r.Effect = Uncorrectable
		case "bitflip":
			r.Effect = BitFlip
		default:
			return r, fmt.Errorf("unknown read fault %q (want uncorrectable or bitflip)", fields[1])
		}
		opts = fields[2:]
	case "program", "erase":
		if len(fields) < 2 || fields[1] != "fail" {
			return r, fmt.Errorf("want `%s fail ...`", fields[0])
		}
		if fields[0] == "program" {
			r.Effect = ProgramFail
		} else {
			r.Effect = EraseFail
		}
		opts = fields[2:]
	case "powercut":
		r.Effect = PowerCut
	}
	for _, opt := range opts {
		if opt == "silent" {
			r.Silent = true
			continue
		}
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return r, fmt.Errorf("malformed option %q (want key=value)", opt)
		}
		switch key {
		case "channel", "block", "page", "count", "bits":
			v, err := strconv.Atoi(val)
			if err != nil {
				return r, fmt.Errorf("bad %s: %v", key, err)
			}
			switch key {
			case "channel":
				r.Channel = v
			case "block":
				r.Block = v
			case "page":
				r.Page = v
			case "count":
				r.Count = v
			case "bits":
				r.Bits = v
			}
		case "after-ops":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return r, fmt.Errorf("bad after-ops: %v", err)
			}
			r.AfterOps = v
		case "at":
			d, err := time.ParseDuration(val)
			if err != nil {
				return r, fmt.Errorf("bad at: %v", err)
			}
			if d < 0 {
				return r, fmt.Errorf("negative at=%v", d)
			}
			r.At = vclock.Time(0).Add(d)
		case "prob":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return r, fmt.Errorf("bad prob: %v", err)
			}
			r.Prob = f
		default:
			return r, fmt.Errorf("unknown option %q", key)
		}
	}
	return r, nil
}

// String renders the plan back into the text format Parse accepts, so
// failure artifacts are directly replayable.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d\n", p.Seed)
	if p.ECCBudget != 0 {
		fmt.Fprintf(&b, "ecc-budget %d\n", p.ECCBudget)
	}
	for i := range p.Rules {
		b.WriteString(p.Rules[i].String())
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders one rule as a plan line.
func (r Rule) String() string {
	var head string
	switch r.Effect {
	case Uncorrectable:
		head = "read uncorrectable"
	case BitFlip:
		head = "read bitflip"
	case ProgramFail:
		head = "program fail"
	case EraseFail:
		head = "erase fail"
	case PowerCut:
		head = "powercut"
	default:
		head = fmt.Sprintf("effect(%d)", uint8(r.Effect))
	}
	opts := map[string]string{}
	if r.Effect == BitFlip {
		opts["bits"] = strconv.Itoa(r.Bits)
	}
	if r.Channel != Any {
		opts["channel"] = strconv.Itoa(r.Channel)
	}
	if r.Block != Any {
		opts["block"] = strconv.Itoa(r.Block)
	}
	if r.Page != Any {
		opts["page"] = strconv.Itoa(r.Page)
	}
	if r.At != 0 {
		opts["at"] = time.Duration(r.At).String()
	}
	if r.AfterOps != 0 {
		opts["after-ops"] = strconv.FormatInt(r.AfterOps, 10)
	}
	if r.Count != 0 {
		opts["count"] = strconv.Itoa(r.Count)
	}
	if r.Prob != 0 {
		opts["prob"] = strconv.FormatFloat(r.Prob, 'g', -1, 64)
	}
	keys := make([]string, 0, len(opts))
	for k := range opts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := []string{head}
	for _, k := range keys {
		parts = append(parts, k+"="+opts[k])
	}
	if r.Silent {
		parts = append(parts, "silent")
	}
	return strings.Join(parts, " ")
}
