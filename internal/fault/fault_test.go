package fault

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"almanac/internal/vclock"
)

func mustInjector(t *testing.T, p *Plan) *Injector {
	t.Helper()
	inj, err := NewInjector(p)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// TestSeedDeterminism: identical (plan, op stream) pairs must produce
// identical decision histories, including probabilistic rules and
// corruption bit positions; a different seed must diverge.
func TestSeedDeterminism(t *testing.T) {
	plan := func(seed int64) *Plan {
		return &Plan{Seed: seed, Rules: []Rule{
			{Effect: BitFlip, Channel: Any, Block: Any, Page: Any, Bits: 4, Prob: 0.3},
			{Effect: ProgramFail, Channel: Any, Block: Any, Page: Any, Prob: 0.1},
		}}
	}
	history := func(seed int64) ([]Decision, []byte) {
		inj := mustInjector(t, plan(seed))
		var decs []Decision
		data := make([]byte, 64)
		for i := 0; i < 200; i++ {
			addr := Addr{Channel: i % 4, Block: i % 8, Page: i % 16}
			kind := OpRead
			if i%3 == 0 {
				kind = OpProgram
			}
			out := inj.Check(kind, addr, vclock.Time(i))
			decs = append(decs, out.Decision)
			if out.Decision == DecSilent || out.Decision == DecCorrected {
				inj.Corrupt(data, out.Bits)
			}
		}
		return decs, data
	}
	d1, c1 := history(7)
	d2, c2 := history(7)
	d3, _ := history(8)
	if len(d1) != len(d2) {
		t.Fatal("history lengths differ")
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("op %d: same seed diverged: %v vs %v", i, d1[i], d2[i])
		}
	}
	if !bytes.Equal(c1, c2) {
		t.Fatal("same seed produced different corruption")
	}
	same := true
	for i := range d1 {
		if d1[i] != d3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical probabilistic history")
	}
}

// TestVirtualTimeTrigger: an at= rule stays dormant until virtual time
// reaches it, regardless of how many ops precede it, and first-match-wins
// ordering picks the earliest listed armed rule.
func TestVirtualTimeTrigger(t *testing.T) {
	inj := mustInjector(t, &Plan{Seed: 1, Rules: []Rule{
		{Effect: Uncorrectable, Channel: Any, Block: Any, Page: Any, At: vclock.Time(0).Add(vclock.Hour), Count: 1},
		{Effect: PowerCut, Channel: Any, Block: Any, Page: Any, At: vclock.Time(0).Add(2 * vclock.Hour)},
	}})
	addr := Addr{Channel: 0, Block: 0, Page: 0}
	for i := 0; i < 50; i++ {
		if out := inj.Check(OpRead, addr, vclock.Time(0).Add(vclock.Duration(i)*vclock.Minute)); out.Decision != DecNone {
			t.Fatalf("op %d fired %v before its trigger time", i, out.Decision)
		}
	}
	// First op at/after 1h: the uncorrectable rule wins (listed first).
	if out := inj.Check(OpRead, addr, vclock.Time(0).Add(vclock.Hour)); out.Decision != DecUncorrectable {
		t.Fatalf("at 1h: got %v, want uncorrectable", out.Decision)
	}
	// Exhausted (count=1): quiet again until the power cut arms.
	if out := inj.Check(OpRead, addr, vclock.Time(0).Add(90*vclock.Minute)); out.Decision != DecNone {
		t.Fatalf("at 90m: got %v, want none", out.Decision)
	}
	if out := inj.Check(OpProgram, addr, vclock.Time(0).Add(3*vclock.Hour)); out.Decision != DecPowerCut {
		t.Fatalf("at 3h: got %v, want powercut", out.Decision)
	}
	// The cut latches: every later op fails, even at earlier times.
	if out := inj.Check(OpRead, addr, 0); out.Decision != DecPowerCut || !inj.Cut() {
		t.Fatal("power cut did not latch")
	}
}

// TestAfterOpsCounting: after-ops counts ops of the rule's own kind;
// powercut rules (kindless) count all ops.
func TestAfterOpsCounting(t *testing.T) {
	addr := Addr{}
	inj := mustInjector(t, &Plan{Seed: 1, Rules: []Rule{
		{Effect: ProgramFail, Channel: Any, Block: Any, Page: Any, AfterOps: 3, Count: 1},
	}})
	for i := 0; i < 10; i++ { // reads never advance the program counter
		if out := inj.Check(OpRead, addr, 0); out.Decision != DecNone {
			t.Fatal("read advanced a program rule")
		}
	}
	for i := 0; i < 3; i++ {
		if out := inj.Check(OpProgram, addr, 0); out.Decision != DecNone {
			t.Fatalf("program %d fired early", i)
		}
	}
	if out := inj.Check(OpProgram, addr, 0); out.Decision != DecProgramFail {
		t.Fatalf("4th program: got %v, want program-fail", out.Decision)
	}

	cut := mustInjector(t, &Plan{Seed: 1, Rules: []Rule{
		{Effect: PowerCut, Channel: Any, Block: Any, Page: Any, AfterOps: 5},
	}})
	ops := []OpKind{OpRead, OpProgram, OpErase, OpRead, OpProgram}
	for i, k := range ops {
		if out := cut.Check(k, addr, 0); out.Decision != DecNone {
			t.Fatalf("mixed op %d fired early", i)
		}
	}
	if out := cut.Check(OpErase, addr, 0); out.Decision != DecPowerCut {
		t.Fatalf("6th op: got %v, want powercut", out.Decision)
	}
}

// TestECCBudgetBoundary: bits ≤ budget corrects, bits = budget+1 is
// uncorrectable, silent always bypasses ECC.
func TestECCBudgetBoundary(t *testing.T) {
	const budget = 6
	for _, tc := range []struct {
		name   string
		bits   int
		silent bool
		want   Decision
	}{
		{"under budget", budget - 1, false, DecCorrected},
		{"exactly budget", budget, false, DecCorrected},
		{"one past budget", budget + 1, false, DecUncorrectable},
		{"silent under budget", budget - 1, true, DecSilent},
		{"silent past budget", budget + 40, true, DecSilent},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inj := mustInjector(t, &Plan{Seed: 1, ECCBudget: budget, Rules: []Rule{
				{Effect: BitFlip, Channel: Any, Block: Any, Page: Any, Bits: tc.bits, Silent: tc.silent, Count: 1},
			}})
			out := inj.Check(OpRead, Addr{}, 0)
			if out.Decision != tc.want {
				t.Fatalf("bits=%d silent=%v: got %v, want %v", tc.bits, tc.silent, out.Decision, tc.want)
			}
			if out.Decision == DecSilent && out.Bits != tc.bits {
				t.Fatalf("silent outcome lost bit count: %d", out.Bits)
			}
		})
	}
	if mustInjector(t, &Plan{Seed: 1}).ECCBudget() != DefaultECCBudget {
		t.Fatal("zero budget did not default")
	}
}

func TestAddressPredicates(t *testing.T) {
	inj := mustInjector(t, &Plan{Seed: 1, Rules: []Rule{
		{Effect: EraseFail, Channel: 1, Block: 5, Page: Any},
	}})
	if out := inj.Check(OpErase, Addr{Channel: 0, Block: 5, Page: -1}, 0); out.Decision != DecNone {
		t.Fatal("wrong channel matched")
	}
	if out := inj.Check(OpErase, Addr{Channel: 1, Block: 4, Page: -1}, 0); out.Decision != DecNone {
		t.Fatal("wrong block matched")
	}
	if out := inj.Check(OpErase, Addr{Channel: 1, Block: 5, Page: -1}, 0); out.Decision != DecEraseFail {
		t.Fatal("exact address did not match")
	}
}

func TestCorruptFlipsExactly(t *testing.T) {
	inj := mustInjector(t, &Plan{Seed: 3})
	data := make([]byte, 128)
	inj.Corrupt(data, 5)
	flipped := 0
	for _, b := range data {
		for ; b != 0; b &= b - 1 {
			flipped++
		}
	}
	// Positions are drawn independently, so collisions can cancel; the
	// count must be ≤ requested and of the same parity.
	if flipped == 0 || flipped > 5 || flipped%2 != 5%2 {
		t.Fatalf("corrupt flipped %d bits for a budget of 5", flipped)
	}
}

func TestValidateRejects(t *testing.T) {
	for _, tc := range []struct {
		name string
		plan Plan
	}{
		{"negative budget", Plan{ECCBudget: -1}},
		{"prob out of range", Plan{Rules: []Rule{{Effect: Uncorrectable, Channel: Any, Block: Any, Page: Any, Prob: 1.5}}}},
		{"negative count", Plan{Rules: []Rule{{Effect: Uncorrectable, Channel: Any, Block: Any, Page: Any, Count: -1}}}},
		{"bitflip without bits", Plan{Rules: []Rule{{Effect: BitFlip, Channel: Any, Block: Any, Page: Any}}}},
		{"silent non-bitflip", Plan{Rules: []Rule{{Effect: ProgramFail, Channel: Any, Block: Any, Page: Any, Silent: true}}}},
		{"address below Any", Plan{Rules: []Rule{{Effect: Uncorrectable, Channel: -2, Block: Any, Page: Any}}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewInjector(&tc.plan); err == nil {
				t.Fatal("invalid plan accepted")
			}
		})
	}
	if _, err := NewInjector(nil); err == nil {
		t.Fatal("nil plan accepted")
	}
}

func TestReseededIsolation(t *testing.T) {
	p := &Plan{Seed: 1, Rules: []Rule{{Effect: Uncorrectable, Channel: Any, Block: Any, Page: Any}}}
	q := p.Reseeded(9)
	if q.Seed != 9 || p.Seed != 1 {
		t.Fatalf("reseed wrong: %d/%d", q.Seed, p.Seed)
	}
	q.Rules[0].Block = 3
	if p.Rules[0].Block != Any {
		t.Fatal("Reseeded shares the rule slice")
	}
}

func TestParseTable(t *testing.T) {
	for _, tc := range []struct {
		name, text string
		wantErr    string
		check      func(*Plan) error
	}{
		{
			name: "full plan",
			text: "# header comment\nseed 42\necc-budget 12\nread uncorrectable block=3 page=7 count=1\nread bitflip bits=4 prob=0.25\nprogram fail after-ops=100 count=2\nerase fail block=5\npowercut at=1.5s\n",
			check: func(p *Plan) error {
				if p.Seed != 42 || p.ECCBudget != 12 || len(p.Rules) != 5 {
					return errors.New("header fields or rule count wrong")
				}
				r := p.Rules[0]
				if r.Effect != Uncorrectable || r.Block != 3 || r.Page != 7 || r.Channel != Any || r.Count != 1 {
					return errors.New("rule 0 wrong")
				}
				if p.Rules[1].Bits != 4 || p.Rules[1].Prob != 0.25 {
					return errors.New("rule 1 wrong")
				}
				if p.Rules[2].AfterOps != 100 || p.Rules[2].Count != 2 {
					return errors.New("rule 2 wrong")
				}
				if p.Rules[4].At != vclock.Time(0).Add(1500*vclock.Millisecond) {
					return errors.New("rule 4 at wrong")
				}
				return nil
			},
		},
		{name: "silent flag", text: "read bitflip bits=40 silent\n", check: func(p *Plan) error {
			if !p.Rules[0].Silent {
				return errors.New("silent not set")
			}
			return nil
		}},
		{name: "empty plan", text: "# nothing\n\n", check: func(p *Plan) error {
			if len(p.Rules) != 0 {
				return errors.New("rules from nothing")
			}
			return nil
		}},
		{name: "unknown directive", text: "explode now\n", wantErr: "unknown"},
		{name: "bad option", text: "read uncorrectable sauce=1\n", wantErr: "sauce"},
		{name: "negative at", text: "powercut at=-1s\n", wantErr: "at"},
		{name: "bad prob", text: "read uncorrectable prob=nope\n", wantErr: "prob"},
		{name: "invalid plan", text: "read bitflip bits=0\n", wantErr: "bits"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Parse(tc.text)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := tc.check(p); err != nil {
				t.Fatalf("%v in plan %+v", err, p)
			}
		})
	}
}

// TestPlanRoundTrip: String must serialise to text Parse reads back to an
// equivalent plan, including every option.
func TestPlanRoundTrip(t *testing.T) {
	text := "seed 42\necc-budget 12\nread uncorrectable channel=1 block=3 page=7 count=1\nread bitflip bits=40 silent prob=0.5\nprogram fail after-ops=10\nerase fail block=5 at=2s\npowercut after-ops=500\n"
	p, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", p.String(), err)
	}
	if p.String() != q.String() {
		t.Fatalf("round trip not fixed-point:\n%q\nvs\n%q", p.String(), q.String())
	}
	if q.Seed != 42 || q.ECCBudget != 12 || len(q.Rules) != 5 {
		t.Fatalf("round trip lost fields: %+v", q)
	}
	for i := range p.Rules {
		if p.Rules[i] != q.Rules[i] {
			t.Fatalf("rule %d changed: %+v vs %+v", i, p.Rules[i], q.Rules[i])
		}
	}
}
