// Package fault is the deterministic NAND failure model: a seeded,
// plan-driven injector the flash array consults on every Read, Program and
// Erase. Real SSD firmware is defined by how it survives the failures NAND
// actually throws — program/erase failures that grow bad blocks, reads that
// come back past ECC, and power cuts that tear the page being programmed —
// and a reproduction is only trustworthy if those failures are schedulable
// and replayable. Faults here trigger by virtual time, by op count, or by
// (channel, block, page) predicate, with an optional probability drawn from
// the plan's own seeded stream, so a (plan, workload) pair always produces
// the same failure history.
//
// The package is a leaf: it imports only vclock, so every layer (flash
// first of all) can depend on it without cycles. Plans should be built with
// Parse or by the harness; almalint's faultplan rule keeps ad-hoc Plan
// literals out of the firmware layers.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"almanac/internal/vclock"
)

// Typed fault errors. The flash layer wraps these with address context;
// callers match with errors.Is.
var (
	// ErrUncorrectable is a read whose raw bit errors exceed what the ECC
	// budget can repair. The page's content is lost.
	ErrUncorrectable = errors.New("fault: uncorrectable read error")
	// ErrProgramFail is a page program that failed verify. The page is
	// burned (unusable until its block is erased); firmware must relocate
	// the write to another page.
	ErrProgramFail = errors.New("fault: page program failed")
	// ErrEraseFail is a block erase failure. The block is worn out and must
	// be retired as a grown bad block.
	ErrEraseFail = errors.New("fault: block erase failed")
	// ErrPowerCut reports that power was lost. The op in flight is torn;
	// every later op fails with the same error until the array is brought
	// back by an image round trip and a rebuild.
	ErrPowerCut = errors.New("fault: power cut")
)

// OpKind classifies the flash operation being checked.
type OpKind uint8

const (
	OpRead OpKind = iota
	OpProgram
	OpErase
	numOps
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpProgram:
		return "program"
	case OpErase:
		return "erase"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Effect is what a triggered rule does to the operation.
type Effect uint8

const (
	// Uncorrectable fails a read outright (bit errors past any ECC).
	Uncorrectable Effect = iota
	// BitFlip flips Rule.Bits random bits in the page being read. Within
	// the plan's ECC budget the flips are corrected (the read succeeds and
	// the correction is counted); past the budget the read fails
	// uncorrectable — unless the rule is Silent, in which case the
	// corrupted data is returned as if it were good.
	BitFlip
	// ProgramFail fails a page program, burning the page.
	ProgramFail
	// EraseFail fails a block erase, growing a bad block.
	EraseFail
	// PowerCut kills the array mid-operation.
	PowerCut
)

func (e Effect) String() string {
	switch e {
	case Uncorrectable:
		return "uncorrectable"
	case BitFlip:
		return "bitflip"
	case ProgramFail:
		return "program-fail"
	case EraseFail:
		return "erase-fail"
	case PowerCut:
		return "powercut"
	default:
		return fmt.Sprintf("effect(%d)", uint8(e))
	}
}

// Addr locates the page (or block) an operation targets. Erase checks carry
// Page = -1.
type Addr struct {
	Channel int
	Block   int
	Page    int
}

// Any matches every value of a rule's Channel/Block/Page predicate.
const Any = -1

// Rule schedules one fault. A rule arms when all of its predicates hold:
// the op kind matches the effect's domain, the address fields match
// (Any ignores a field), virtual time has reached At, and AfterOps matching
// operations have already been checked. An armed rule then fires with
// probability Prob (0 means always), at most Count times (0 means
// unlimited). PowerCut rules match any op kind.
type Rule struct {
	Effect   Effect
	Channel  int // Any or exact channel
	Block    int // Any or exact block index
	Page     int // Any or exact in-block page offset
	At       vclock.Time
	AfterOps int64 // ops of the matching kind that must precede the rule
	Count    int
	Prob     float64
	Bits     int  // BitFlip: raw bit errors per read
	Silent   bool // BitFlip: corruption bypasses ECC detection entirely
}

// op returns the op kind the rule's effect applies to; ok is false for
// PowerCut, which applies to all kinds.
func (r *Rule) op() (OpKind, bool) {
	switch r.Effect {
	case Uncorrectable, BitFlip:
		return OpRead, true
	case ProgramFail:
		return OpProgram, true
	case EraseFail:
		return OpErase, true
	default:
		return 0, false
	}
}

// DefaultECCBudget is the per-page correctable-bit budget used when a plan
// does not set one — a BCH-class code comfortably correcting a handful of
// bits per 2–4 KiB page.
const DefaultECCBudget = 8

// Plan is a complete, self-contained fault schedule.
type Plan struct {
	// Seed drives the plan's private random stream (probabilistic rules and
	// corruption bit positions). Identical (plan, workload) pairs replay
	// the identical failure history.
	Seed int64
	// ECCBudget is the number of raw bit errors per page the modelled ECC
	// corrects. Zero selects DefaultECCBudget.
	ECCBudget int
	Rules     []Rule
}

// Validate checks the plan's rules for nonsense values.
func (p *Plan) Validate() error {
	if p.ECCBudget < 0 {
		return fmt.Errorf("fault: negative ecc-budget %d", p.ECCBudget)
	}
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.Effect > PowerCut {
			return fmt.Errorf("fault: rule %d: unknown effect %d", i, uint8(r.Effect))
		}
		if r.Prob < 0 || r.Prob > 1 {
			return fmt.Errorf("fault: rule %d: prob %v outside [0,1]", i, r.Prob)
		}
		if r.Count < 0 || r.AfterOps < 0 || r.At < 0 {
			return fmt.Errorf("fault: rule %d: negative trigger field", i)
		}
		if r.Effect == BitFlip && r.Bits <= 0 {
			return fmt.Errorf("fault: rule %d: bitflip needs bits > 0", i)
		}
		if r.Silent && r.Effect != BitFlip {
			return fmt.Errorf("fault: rule %d: silent applies only to bitflip", i)
		}
		for _, v := range []int{r.Channel, r.Block, r.Page} {
			if v < Any {
				return fmt.Errorf("fault: rule %d: address predicate %d below Any", i, v)
			}
		}
	}
	return nil
}

// Reseeded returns a copy of the plan with a different seed — how a
// multi-shard array derives per-shard streams from one plan.
func (p *Plan) Reseeded(seed int64) *Plan {
	cp := *p
	cp.Seed = seed
	cp.Rules = append([]Rule(nil), p.Rules...)
	return &cp
}

// Decision is the injector's verdict on one operation.
type Decision uint8

const (
	// DecNone lets the operation proceed untouched.
	DecNone Decision = iota
	// DecCorrected: bit errors occurred but ECC repaired them; the read
	// succeeds with clean data and the correction should be counted.
	DecCorrected
	// DecUncorrectable fails the read with ErrUncorrectable.
	DecUncorrectable
	// DecSilent: the read succeeds but Outcome.Bits bits of the returned
	// data must be flipped (corruption below the detection floor).
	DecSilent
	// DecProgramFail burns the page and fails with ErrProgramFail.
	DecProgramFail
	// DecEraseFail retires the block and fails with ErrEraseFail.
	DecEraseFail
	// DecPowerCut kills the array and fails with ErrPowerCut.
	DecPowerCut
)

// Outcome is what Check tells the flash layer to do.
type Outcome struct {
	Decision Decision
	Bits     int // DecSilent: bits to flip in the returned copy
}

// Injector evaluates a plan against the operation stream. It is safe for
// concurrent use; the flash array calls Check under its own lock but peeks
// and multi-shard tooling may race with it.
type Injector struct {
	mu       sync.Mutex
	plan     Plan
	rng      *rand.Rand
	budget   int
	opSeen   [numOps]int64 // ops checked so far, by kind
	totalOps int64
	fired    []int // firings per rule
	cut      bool
}

// NewInjector compiles a plan. The plan is copied; later mutation of the
// caller's Plan does not affect the injector.
func NewInjector(p *Plan) (*Injector, error) {
	if p == nil {
		return nil, errors.New("fault: nil plan")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cp := *p
	cp.Rules = append([]Rule(nil), p.Rules...)
	budget := cp.ECCBudget
	if budget == 0 {
		budget = DefaultECCBudget
	}
	return &Injector{
		plan:   cp,
		rng:    rand.New(rand.NewSource(cp.Seed)),
		budget: budget,
		fired:  make([]int, len(cp.Rules)),
	}, nil
}

// Plan returns a copy of the compiled plan.
func (i *Injector) Plan() Plan {
	i.mu.Lock()
	defer i.mu.Unlock()
	cp := i.plan
	cp.Rules = append([]Rule(nil), i.plan.Rules...)
	return cp
}

// ECCBudget returns the effective per-page correctable-bit budget.
func (i *Injector) ECCBudget() int { return i.budget }

// Check evaluates the plan for one operation at virtual time `at`. Rules
// are evaluated in plan order; the first rule that fires decides the
// operation's fate. Once a PowerCut rule has fired, every subsequent check
// returns DecPowerCut.
func (i *Injector) Check(op OpKind, addr Addr, at vclock.Time) Outcome {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.cut {
		return Outcome{Decision: DecPowerCut}
	}
	seenKind := i.opSeen[op]
	seenAll := i.totalOps
	i.opSeen[op]++
	i.totalOps++
	for ri := range i.plan.Rules {
		r := &i.plan.Rules[ri]
		ruleOp, kinded := r.op()
		if kinded && ruleOp != op {
			continue
		}
		if r.Channel != Any && r.Channel != addr.Channel {
			continue
		}
		if r.Block != Any && r.Block != addr.Block {
			continue
		}
		if r.Page != Any && r.Page != addr.Page {
			continue
		}
		if at < r.At {
			continue
		}
		seen := seenKind
		if !kinded {
			seen = seenAll
		}
		if seen < r.AfterOps {
			continue
		}
		if r.Count > 0 && i.fired[ri] >= r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && i.rng.Float64() >= r.Prob {
			continue
		}
		i.fired[ri]++
		switch r.Effect {
		case Uncorrectable:
			return Outcome{Decision: DecUncorrectable}
		case BitFlip:
			if r.Silent {
				return Outcome{Decision: DecSilent, Bits: r.Bits}
			}
			if r.Bits <= i.budget {
				return Outcome{Decision: DecCorrected, Bits: r.Bits}
			}
			return Outcome{Decision: DecUncorrectable, Bits: r.Bits}
		case ProgramFail:
			return Outcome{Decision: DecProgramFail}
		case EraseFail:
			return Outcome{Decision: DecEraseFail}
		case PowerCut:
			i.cut = true
			return Outcome{Decision: DecPowerCut}
		}
	}
	return Outcome{}
}

// Corrupt flips `bits` random bit positions of data in place, drawing
// positions from the plan's seeded stream (so corruption is replayable).
func (i *Injector) Corrupt(data []byte, bits int) {
	if len(data) == 0 || bits <= 0 {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	n := len(data) * 8
	for k := 0; k < bits; k++ {
		bit := i.rng.Intn(n)
		data[bit/8] ^= 1 << (bit % 8)
	}
}

// Cut reports whether a PowerCut rule has fired.
func (i *Injector) Cut() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.cut
}
