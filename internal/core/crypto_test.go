package core

import (
	"bytes"
	"testing"

	"almanac/internal/flash"
	"almanac/internal/vclock"
)

var testKey = []byte("0123456789abcdef") // AES-128

// cryptoRig writes recognisable versions and forces them into delta
// storage via an idle compression pass.
func cryptoRig(t *testing.T, key []byte) (*TimeSSD, [][]byte, vclock.Time) {
	t.Helper()
	d := newTiny(t, func(c *Config) {
		c.RetentionKey = key
		c.MinRetention = 30 * vclock.Day // nothing may expire
	})
	const lpa = 9
	marker := []byte("TOPSECRET-PLAINTEXT-MARKER")
	var versions [][]byte
	at := vclock.Time(0)
	for i := 0; i < 4; i++ {
		p := make([]byte, d.PageSize())
		copy(p, marker)
		p[len(marker)] = byte('0' + i)
		at = at.Add(vclock.Hour)
		done, err := d.Write(lpa, p, at)
		if err != nil {
			t.Fatal(err)
		}
		versions = append(versions, p)
		at = done
		// Interleave unrelated writes so the blocks holding the secret's
		// versions seal (GC only visits sealed blocks).
		for f := 0; f < 3*d.cfg.FTL.Flash.PagesPerBlock; f++ {
			at = at.Add(vclock.Second)
			if at, err = d.Write(uint64(100+f%50), versionPage(d, uint64(100+f%50), i*1000+f), at); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The user "securely deletes" the secret: without §3.10's key the
	// versions would survive in delta storage in the clear (no reference
	// version exists after a trim, so they are stored LZF-raw).
	var err error
	if at, err = d.Trim(lpa, at.Add(vclock.Second)); err != nil {
		t.Fatal(err)
	}
	// Compress retained versions in an idle period, then sweep GC over the
	// data blocks so the original (necessarily plaintext) copies of the
	// superseded versions are erased — only then is §3.10's protection
	// complete, exactly as on real flash.
	d.observeArrival(at.Add(vclock.Second))
	d.Idle(at.Add(vclock.Second), at.Add(vclock.Minute))
	at = at.Add(vclock.Minute)
	for sweep := 0; sweep < d.cfg.FTL.Flash.TotalBlocks(); sweep++ {
		victim := d.bestVictim()
		if victim < 0 {
			break
		}
		var err error
		at, err = d.reclaimDataBlock(victim, at)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.FlushDeltas(at); err != nil {
		t.Fatal(err)
	}
	return d, versions, at
}

// scanFlashFor reports whether any programmed delta-storage page contains
// needle in the clear.
func scanFlashFor(t *testing.T, d *TimeSSD, needle []byte) bool {
	t.Helper()
	fc := d.cfg.FTL.Flash
	for blk := 0; blk < fc.TotalBlocks(); blk++ {
		for off := 0; off < d.Arr.WritePtr(blk); off++ {
			ppa := d.Arr.AddrOf(blk, off)
			data, oob, err := d.Arr.PeekPage(ppa)
			if err != nil {
				continue
			}
			if oob.Kind != flash.KindDelta && oob.Kind != flash.KindDeltaRaw {
				continue // live data pages are plaintext by physics (§3.10)
			}
			if bytes.Contains(data, needle) {
				return true
			}
		}
	}
	return false
}

func TestRetentionEncryptionHidesPlaintext(t *testing.T) {
	d, _, _ := cryptoRig(t, testKey)
	if d.TimeStats().DeltasCreated == 0 {
		t.Fatal("nothing was compressed; the test proves nothing")
	}
	if scanFlashFor(t, d, []byte("TOPSECRET")) {
		t.Fatal("plaintext marker visible in delta storage despite retention key")
	}
	// Control: without a key the marker IS visible in delta storage.
	d2, _, _ := cryptoRig(t, nil)
	if !scanFlashFor(t, d2, []byte("TOPSECRET")) {
		t.Fatal("control failed: marker not found even without encryption")
	}
}

func TestRetentionEncryptionRoundTrips(t *testing.T) {
	d, versions, at := cryptoRig(t, testKey)
	vers, _, err := d.Versions(9, at)
	if err != nil {
		t.Fatal(err)
	}
	if len(vers) != len(versions) {
		t.Fatalf("retrieved %d versions, want %d", len(vers), len(versions))
	}
	for i, v := range vers {
		want := versions[len(versions)-1-i]
		if !bytes.Equal(v.Data, want) {
			t.Fatalf("version %d corrupt under encryption", i)
		}
		if v.Live {
			t.Fatalf("version %d live after trim", i)
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRetentionEncryptionKeyRequired(t *testing.T) {
	d, versions, at := cryptoRig(t, testKey)
	// An attacker images the flash and rebuilds WITHOUT the key: the live
	// head is readable (it was never rewritten), but the retained history
	// in delta storage must not decode.
	cfg := d.cfg
	cfg.RetentionKey = nil
	r, err := Rebuild(d.Arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vers, _, err := r.Versions(9, at)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vers {
		for i, want := range versions {
			if bytes.Equal(v.Data, want) {
				t.Fatalf("retained version %d readable without the key", i)
			}
		}
	}
	// And with the key, the rebuilt device recovers everything.
	cfg.RetentionKey = testKey
	r2, err := Rebuild(d.Arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vers2, _, err := r2.Versions(9, at)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	byTS := map[vclock.Time][]byte{}
	for _, v := range vers2 {
		byTS[v.TS] = v.Data
	}
	for _, want := range versions {
		for _, got := range byTS {
			if bytes.Equal(got, want) {
				found++
				break
			}
		}
	}
	if found != len(versions) {
		t.Fatalf("rebuilt-with-key device recovered %d of %d versions", found, len(versions))
	}
}

func TestRetentionKeyValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.RetentionKey = []byte("short")
	if _, err := New(cfg); err == nil {
		t.Fatal("bad key length accepted")
	}
}
