package core

import (
	"bytes"
	"testing"

	"almanac/internal/vclock"
)

// --- LRU unit tests -------------------------------------------------------

func TestRefCacheUnit(t *testing.T) {
	if newRefCache(0, 64) != nil {
		t.Fatal("slots=0 must disable the cache")
	}
	var disabled *refCache
	disabled.put(1, 2, []byte("x"))
	if disabled.get(1, 2) != nil || disabled.len() != 0 {
		t.Fatal("nil cache must be inert")
	}
	disabled.invalidateLPA(1)
	disabled.invalidateAll()

	c := newRefCache(2, 64)
	c.put(1, 10, []byte("a"))
	c.put(2, 20, []byte("b"))
	if got := c.get(1, 10); !bytes.Equal(got, []byte("a")) {
		t.Fatalf("get(1,10) = %q", got)
	}
	// (1,10) is now most recently used; inserting a third entry must evict
	// (2,20), the LRU.
	data := []byte("c")
	c.put(3, 30, data)
	if c.get(2, 20) != nil {
		t.Fatal("LRU entry survived eviction")
	}
	if c.evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.evictions)
	}
	// The cache owns its bytes: mutating the caller's slice after put must
	// not reach the cached copy.
	data[0] = 'z'
	if got := c.get(3, 30); !bytes.Equal(got, []byte("c")) {
		t.Fatalf("cache aliases caller bytes: %q", got)
	}
	// A duplicate put refreshes recency only; content for a live key is
	// immutable.
	c.put(3, 30, []byte("?"))
	if c.len() != 2 {
		t.Fatalf("len = %d after duplicate put, want 2", c.len())
	}
	if got := c.get(3, 30); !bytes.Equal(got, []byte("c")) {
		t.Fatalf("duplicate put replaced content: %q", got)
	}

	c.invalidateLPA(3)
	if c.get(3, 30) != nil {
		t.Fatal("entry survived invalidateLPA")
	}
	if c.get(1, 10) == nil {
		t.Fatal("invalidateLPA dropped an unrelated LPA")
	}
	c.invalidateAll()
	if c.len() != 0 || c.get(1, 10) != nil {
		t.Fatal("entries survived invalidateAll")
	}
	if c.hits == 0 || c.misses == 0 {
		t.Fatalf("counter accounting: hits=%d misses=%d", c.hits, c.misses)
	}
}

// --- device-level tests ---------------------------------------------------

// deltaChainDevice builds a device whose retained versions live in §3.7
// delta chains: several versions per page, idle-compressed and flushed, so
// Versions queries exercise decode (and therefore the reference cache).
func deltaChainDevice(t *testing.T, mutate func(*Config)) (*TimeSSD, vclock.Time) {
	t.Helper()
	d := newTiny(t, func(c *Config) {
		c.MinRetention = 365 * vclock.Day // nothing may expire mid-test
		if mutate != nil {
			mutate(c)
		}
	})
	at := vclock.Time(0)
	for seq := 0; seq < 6; seq++ {
		for lpa := uint64(0); lpa < 4; lpa++ {
			at = at.Add(vclock.Second)
			done, err := d.Write(lpa, versionPage(d, lpa, seq), at)
			if err != nil {
				t.Fatal(err)
			}
			at = done
		}
	}
	d.Idle(at, at.Add(vclock.Hour))
	at = at.Add(vclock.Hour)
	done, err := d.FlushDeltas(at)
	if err != nil {
		t.Fatal(err)
	}
	return d, done
}

// queryVersions fetches lpa's history and checks the content against the
// versionPage model.
func queryVersions(t *testing.T, d *TimeSSD, lpa uint64, at vclock.Time) ([]Version, vclock.Time) {
	t.Helper()
	vers, done, err := d.Versions(lpa, at)
	if err != nil {
		t.Fatalf("versions of %d: %v", lpa, err)
	}
	if len(vers) != 6 {
		t.Fatalf("lpa %d: %d versions, want 6", lpa, len(vers))
	}
	for i, v := range vers {
		if want := versionPage(d, lpa, 5-i); !bytes.Equal(v.Data, want) {
			t.Fatalf("lpa %d version %d (ts %v): content mismatch", lpa, i, v.TS)
		}
	}
	return vers, done
}

func TestRefCacheHitMissCounters(t *testing.T) {
	d, at := deltaChainDevice(t, nil)
	for lpa := uint64(0); lpa < 4; lpa++ {
		_, at = queryVersions(t, d, lpa, at)
	}
	st := d.TimeStats()
	if st.RefCacheMisses == 0 {
		t.Fatal("cold queries recorded no misses")
	}
	if st.RefCacheHits != 0 {
		t.Fatalf("cold queries recorded %d hits", st.RefCacheHits)
	}
	// Warm pass: every decode the first pass cached must now hit, and the
	// returned content must be identical.
	for lpa := uint64(0); lpa < 4; lpa++ {
		_, at = queryVersions(t, d, lpa, at)
	}
	warm := d.TimeStats()
	if warm.RefCacheHits == 0 {
		t.Fatal("warm queries recorded no hits")
	}
	if warm.RefCacheMisses != st.RefCacheMisses {
		t.Fatalf("warm queries missed: %d -> %d", st.RefCacheMisses, warm.RefCacheMisses)
	}
	// The same counters must flow through the obs view.
	c := d.Counters()
	if c.RefCacheHits != warm.RefCacheHits || c.RefCacheMisses != warm.RefCacheMisses {
		t.Fatalf("obs counters diverge: %+v vs %+v", c, warm)
	}
}

func TestRefCacheEvictionCounter(t *testing.T) {
	d, at := deltaChainDevice(t, func(c *Config) { c.RefCacheSlots = 2 })
	for lpa := uint64(0); lpa < 4; lpa++ {
		_, at = queryVersions(t, d, lpa, at)
	}
	if d.TimeStats().RefCacheEvictions == 0 {
		t.Fatal("2-slot cache never evicted across 4 delta chains")
	}
	if n := d.refcache.len(); n > 2 {
		t.Fatalf("cache holds %d entries, bound is 2", n)
	}
}

func TestRefCacheDisabled(t *testing.T) {
	d, at := deltaChainDevice(t, func(c *Config) { c.RefCacheSlots = -1 })
	if d.refcache != nil {
		t.Fatal("RefCacheSlots<=0 must disable the cache")
	}
	for lpa := uint64(0); lpa < 4; lpa++ {
		_, at = queryVersions(t, d, lpa, at)
		_, at = queryVersions(t, d, lpa, at)
	}
	st := d.TimeStats()
	if st.RefCacheHits != 0 || st.RefCacheMisses != 0 || st.RefCacheEvictions != 0 {
		t.Fatalf("disabled cache recorded activity: %+v", st)
	}
}

func TestRefCacheInvalidateOnWrite(t *testing.T) {
	d, at := deltaChainDevice(t, nil)
	_, at = queryVersions(t, d, 0, at)
	if d.refcache.lpaCount(0) == 0 {
		t.Fatal("warm query cached nothing for lpa 0")
	}
	at = at.Add(vclock.Second)
	done, err := d.Write(0, versionPage(d, 0, 6), at)
	if err != nil {
		t.Fatal(err)
	}
	if d.refcache.lpaCount(0) != 0 {
		t.Fatal("cached versions of lpa 0 survived a host write")
	}
	// The cold re-decode must see the new version on top of the old chain.
	vers, _, err := d.Versions(0, done)
	if err != nil {
		t.Fatal(err)
	}
	if len(vers) != 7 || !bytes.Equal(vers[0].Data, versionPage(d, 0, 6)) {
		t.Fatalf("post-write history wrong: %d versions", len(vers))
	}
}

func TestRefCacheInvalidateOnTrim(t *testing.T) {
	d, at := deltaChainDevice(t, nil)
	_, at = queryVersions(t, d, 1, at)
	if d.refcache.lpaCount(1) == 0 {
		t.Fatal("warm query cached nothing for lpa 1")
	}
	at = at.Add(vclock.Second)
	done, err := d.Trim(1, at)
	if err != nil {
		t.Fatal(err)
	}
	if d.refcache.lpaCount(1) != 0 {
		t.Fatal("cached versions of lpa 1 survived a trim")
	}
	// History queries after the trim decode cold and must not resurrect
	// stale cached bytes.
	if _, _, err := d.Versions(1, done.Add(vclock.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestRefCacheInvalidateOnRollback(t *testing.T) {
	d, at := deltaChainDevice(t, nil)
	vers, at := queryVersions(t, d, 2, at)
	target := vers[3] // roll back to an older version
	at = at.Add(vclock.Second)
	done, err := d.RollBack(2, target.TS, at)
	if err != nil {
		t.Fatal(err)
	}
	if d.refcache.lpaCount(2) != 0 {
		t.Fatal("cached versions of lpa 2 survived a rollback")
	}
	data, _, err := d.Read(2, done.Add(vclock.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, target.Data) {
		t.Fatal("rollback restored wrong content")
	}
}

func TestRefCacheColdAfterWindowDrop(t *testing.T) {
	// A window drop may expire *any* version, so it must empty the whole
	// cache, not just one LPA's entries. Every pressure path (write-time
	// estimator, idle GC, retention flood) funnels through shortenWindow,
	// so drive that seam directly against a warm cache: a small BFCapacity
	// rolls the bloom chain into several segments during the warm-up, and
	// two virtual hours later dropping the oldest one is legal under the
	// 1-hour minimum.
	d, at := deltaChainDevice(t, func(c *Config) {
		c.MinRetention = vclock.Hour
		c.BFCapacity = 8
	})
	_, at = queryVersions(t, d, 0, at)
	if d.refcache.len() == 0 {
		t.Fatal("warm query cached nothing")
	}
	drops := d.st.WindowDrops
	at = at.Add(2 * vclock.Hour)
	if !d.shortenWindow(at) {
		t.Fatal("shortenWindow refused a legal drop")
	}
	if d.st.WindowDrops != drops+1 {
		t.Fatalf("WindowDrops = %d, want %d", d.st.WindowDrops, drops+1)
	}
	if n := d.refcache.len(); n != 0 {
		t.Fatalf("%d cached versions survived a window drop", n)
	}
	// Whatever survives the shortened window must still answer queries.
	if _, _, err := d.Versions(0, at); err != nil {
		t.Fatal(err)
	}
}

func TestRefCacheColdAfterRebuild(t *testing.T) {
	d, at := deltaChainDevice(t, nil)
	var colds [][]Version
	for lpa := uint64(0); lpa < 4; lpa++ {
		vers, done := queryVersions(t, d, lpa, at)
		colds = append(colds, vers)
		at = done
	}
	if d.refcache.len() == 0 {
		t.Fatal("queries cached nothing")
	}
	r, err := Rebuild(d.Arr, d.cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild constructs a fresh device: no cached decode and no counter
	// may survive the crash boundary.
	if r.refcache.len() != 0 {
		t.Fatal("cache state survived Rebuild")
	}
	if st := r.TimeStats(); st.RefCacheHits != 0 || st.RefCacheMisses != 0 {
		t.Fatalf("cache counters survived Rebuild: %+v", st)
	}
	// And the rebuilt device's cold decodes must match the pre-crash ones.
	for lpa := uint64(0); lpa < 4; lpa++ {
		vers, done, err := r.Versions(lpa, at)
		if err != nil {
			t.Fatal(err)
		}
		at = done
		want := colds[lpa]
		if len(vers) != len(want) {
			t.Fatalf("lpa %d: %d versions after rebuild, want %d", lpa, len(vers), len(want))
		}
		for i := range vers {
			if vers[i].TS != want[i].TS || !bytes.Equal(vers[i].Data, want[i].Data) {
				t.Fatalf("lpa %d version %d differs after rebuild", lpa, i)
			}
		}
	}
}
