package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"almanac/internal/vclock"
)

// TestQuickHistoryProperty drives randomly-seeded op sequences (write,
// trim, rollback, idle) against a per-page history model and checks, for
// every seed, the core retention contract:
//
//	soundness    — every retrieved version was actually written;
//	completeness — every version invalidated inside the window (plus the
//	               live head) is retrieved byte-exact;
//	order        — Versions returns strictly decreasing timestamps.
func TestQuickHistoryProperty(t *testing.T) {
	prop := func(seed int64) bool {
		d, err := New(tinyConfig())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		logical := d.LogicalPages() / 2
		type rec struct {
			ts      vclock.Time
			seq     int
			invalid vclock.Time
		}
		hist := map[uint64][]rec{}
		invalidate := func(lpa uint64, at vclock.Time) {
			if h := hist[lpa]; len(h) > 0 && h[len(h)-1].invalid == 0 {
				h[len(h)-1].invalid = at
			}
		}
		at := vclock.Time(0)
		seq := 0
		steps := 600 + rng.Intn(600)
		for i := 0; i < steps; i++ {
			at = at.Add(vclock.Second)
			lpa := uint64(rng.Intn(logical))
			switch rng.Intn(12) {
			case 0: // trim
				if _, err := d.Trim(lpa, at); err != nil {
					t.Fatal(err)
				}
				invalidate(lpa, at)
			case 1: // idle period
				d.Idle(at, at.Add(20*vclock.Second))
				at = at.Add(20 * vclock.Second)
			default: // write
				done, err := d.Write(lpa, versionPage(d, lpa, seq), at)
				if err != nil {
					t.Fatal(err)
				}
				invalidate(lpa, at)
				hist[lpa] = append(hist[lpa], rec{ts: at, seq: seq})
				seq++
				at = done
			}
		}
		window := d.RetentionWindowStart()
		for lpa, h := range hist {
			vers, _, err := d.Versions(lpa, at)
			if err != nil {
				t.Fatal(err)
			}
			// Order.
			for i := 1; i < len(vers); i++ {
				if vers[i].TS >= vers[i-1].TS {
					t.Logf("seed %d: lpa %d timestamps not decreasing", seed, lpa)
					return false
				}
			}
			// Soundness.
			wrote := map[vclock.Time]int{}
			for _, r := range h {
				wrote[r.ts] = r.seq
			}
			got := map[vclock.Time][]byte{}
			for _, v := range vers {
				s, ok := wrote[v.TS]
				if !ok || !bytes.Equal(v.Data, versionPage(d, lpa, s)) {
					t.Logf("seed %d: lpa %d phantom/corrupt version at %v", seed, lpa, v.TS)
					return false
				}
				got[v.TS] = v.Data
			}
			// Completeness.
			for _, r := range h {
				live := r.invalid == 0
				if !live && r.invalid <= window {
					continue
				}
				if _, ok := got[r.ts]; !ok {
					t.Logf("seed %d: lpa %d version %v missing (invalid %v, window %v)",
						seed, lpa, r.ts, r.invalid, window)
					return false
				}
			}
		}
		return d.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRollBackIdempotent checks that rolling back to the same instant
// twice is a no-op the second time, for arbitrary write histories.
func TestQuickRollBackIdempotent(t *testing.T) {
	prop := func(seed int64, nWrites uint8) bool {
		d, err := New(tinyConfig())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		n := int(nWrites%40) + 2
		at := vclock.Time(0)
		for i := 0; i < n; i++ {
			at = at.Add(vclock.Second)
			done, err := d.Write(uint64(rng.Intn(8)), versionPage(d, uint64(rng.Intn(8)), i), at)
			if err != nil {
				t.Fatal(err)
			}
			at = done
		}
		when := vclock.Time(int64(at) / 2)
		done, err := d.RollBack(3, when, at.Add(vclock.Second))
		if err != nil {
			t.Fatal(err)
		}
		first, _, err := d.Read(3, done)
		if err != nil {
			t.Fatal(err)
		}
		snap := append([]byte(nil), first...)
		done2, err := d.RollBack(3, when, done.Add(vclock.Second))
		if err != nil {
			t.Fatal(err)
		}
		second, _, err := d.Read(3, done2)
		if err != nil {
			t.Fatal(err)
		}
		return bytes.Equal(snap, second)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVersionAtMonotone checks that VersionAt is monotone: for any
// two query instants t1 ≤ t2, the version current at t1 has a timestamp no
// newer than the version current at t2.
func TestQuickVersionAtMonotone(t *testing.T) {
	d, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	at := vclock.Time(0)
	for i := 0; i < 24; i++ {
		at = at.Add(vclock.Minute)
		done, err := d.Write(5, versionPage(d, 5, i), at)
		if err != nil {
			t.Fatal(err)
		}
		at = done
	}
	prop := func(a, b uint32) bool {
		t1 := vclock.Time(a % uint32(at))
		t2 := vclock.Time(b % uint32(at))
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		v1, _, err := d.VersionAt(5, t1, at)
		if err != nil {
			t.Fatal(err)
		}
		v2, _, err := d.VersionAt(5, t2, at)
		if err != nil {
			t.Fatal(err)
		}
		if v1 == nil {
			return true // nothing at t1: vacuously monotone
		}
		return v2 != nil && v1.TS <= v2.TS
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
