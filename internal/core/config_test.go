package core

import (
	"math/rand"
	"strings"
	"testing"

	"almanac/internal/flash"
	"almanac/internal/ftl"
	"almanac/internal/vclock"
)

func TestConfigStringRoundTrip(t *testing.T) {
	cfgs := []Config{
		DefaultConfig(ftl.DefaultParams()),
		func() Config {
			c := DefaultConfig(ftl.DefaultParams())
			c.RetentionKey = []byte("0123456789abcdef")
			c.DisableCompression = true
			c.MinRetention = 0
			c.TH = 0.05
			return c
		}(),
		{}, // zero config: syntactically encodable even though invalid
	}
	for i, c := range cfgs {
		s := c.String()
		if strings.ContainsAny(s, "\n\t") {
			t.Fatalf("config %d: encoding is not single-line: %q", i, s)
		}
		got, err := ParseConfig(s)
		if err != nil {
			t.Fatalf("config %d: ParseConfig(%q): %v", i, s, err)
		}
		if got.String() != s {
			t.Fatalf("config %d: round trip changed encoding:\n in: %s\nout: %s", i, s, got.String())
		}
		if string(got.RetentionKey) != string(c.RetentionKey) {
			t.Fatalf("config %d: retention key lost: %q vs %q", i, got.RetentionKey, c.RetentionKey)
		}
	}
}

// TestConfigRoundTripRandom drives the encoder over randomized (valid and
// wild) configs: the decode of every encode must reproduce the identical
// encoding, which is the property the sweep checkpoint keys rely on.
func TestConfigRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		c := DefaultConfig(ftl.DefaultParams())
		c.FTL.Flash.Channels = rng.Intn(16) + 1
		c.FTL.Flash.PageSize = 512 << rng.Intn(5)
		c.FTL.OPRatio = float64(rng.Intn(400)) / 1000
		c.FTL.MappingCacheSlots = rng.Intn(1000)
		c.MinRetention = vclock.Duration(rng.Int63n(int64(30 * vclock.Day)))
		c.TH = rng.Float64()
		c.IdleAlpha = rng.Float64()
		c.BFFalsePositive = rng.Float64()/2 + 1e-9
		c.BFGroup = rng.Intn(128) + 1
		c.CohortSegments = rng.Intn(8) + 1
		c.RefCacheSlots = rng.Intn(4096) - 16
		c.DeltaCost = vclock.Duration(rng.Int63n(int64(vclock.Millisecond)))
		if rng.Intn(2) == 0 {
			key := make([]byte, []int{16, 24, 32}[rng.Intn(3)])
			rng.Read(key)
			c.RetentionKey = key
		}
		s := c.String()
		got, err := ParseConfig(s)
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", s, err)
		}
		if got.String() != s {
			t.Fatalf("round trip changed encoding:\n in: %s\nout: %s", s, got.String())
		}
	}
}

func TestParseConfigRejects(t *testing.T) {
	valid := DefaultConfig(ftl.DefaultParams()).String()
	cases := map[string]string{
		"empty":         "",
		"missing key":   strings.TrimPrefix(valid, "channels=4 "),
		"duplicate key": valid + " channels=4",
		"unknown key":   valid + " warp=9",
		"bare token":    valid + " channels",
		"bad int":       strings.Replace(valid, "channels=4", "channels=x", 1),
		"bad duration":  strings.Replace(valid, "minret=72h0m0s", "minret=3fortnights", 1),
		"bad hex key":   strings.Replace(valid, "key=", "key=zz", 1),
	}
	for name, in := range cases {
		if _, err := ParseConfig(in); err == nil {
			t.Errorf("%s: ParseConfig accepted %q", name, in)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(ftl.DefaultParams())
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := map[string]func(*Config){
		"zero flash":    func(c *Config) { c.FTL.Flash = flash.Config{} },
		"negative op":   func(c *Config) { c.FTL.OPRatio = -0.1 },
		"gc watermarks": func(c *Config) { c.FTL.GCHighBlocks = c.FTL.GCLowBlocks - 1 },
		"neg mapcache":  func(c *Config) { c.FTL.MappingCacheSlots = -1 },
		"neg retention": func(c *Config) { c.MinRetention = -vclock.Hour },
		"zero TH":       func(c *Config) { c.TH = 0 },
		"zero nfixed":   func(c *Config) { c.NFixed = 0 },
		"neg deltacost": func(c *Config) { c.DeltaCost = -1 },
		"neg idle":      func(c *Config) { c.IdleThreshold = -1 },
		"alpha > 1":     func(c *Config) { c.IdleAlpha = 1.5 },
		"zero bfcap":    func(c *Config) { c.BFCapacity = 0 },
		"bffp = 1":      func(c *Config) { c.BFFalsePositive = 1 },
		"zero bfgroup":  func(c *Config) { c.BFGroup = 0 },
		"zero cohort":   func(c *Config) { c.CohortSegments = 0 },
		"short key":     func(c *Config) { c.RetentionKey = []byte("short") },
	}
	for name, mutate := range mutations {
		c := DefaultConfig(ftl.DefaultParams())
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the config", name)
		}
	}
}

// TestValidateMatchesNew pins Validate to the constructor: any config
// Validate accepts must build (given a sane geometry), and the specific
// constructor rejections are covered by Validate too.
func TestValidateMatchesNew(t *testing.T) {
	c := DefaultConfig(ftl.DefaultParams())
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(c); err != nil {
		t.Fatalf("validated config failed to build: %v", err)
	}
	c.TH = 0
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted TH=0")
	}
	if _, err := New(c); err == nil {
		t.Fatal("New accepted TH=0")
	}
}
