package core

import (
	"math/rand"
	"testing"

	"almanac/internal/vclock"
)

// TestInvariantsUnderChurn runs the invariant checker repeatedly during a
// heavy mixed workload: writes, trims, idle compression, GC, and rollback
// all interleave, and after every slice the full structure cross-check
// must hold.
func TestInvariantsUnderChurn(t *testing.T) {
	d := newTiny(t, nil)
	rng := rand.New(rand.NewSource(77))
	logical := d.LogicalPages() * 3 / 4
	at := vclock.Time(0)
	for step := 0; step < 4000; step++ {
		at = at.Add(vclock.Second)
		lpa := uint64(rng.Intn(logical))
		var err error
		switch rng.Intn(20) {
		case 0:
			at, err = d.Trim(lpa, at)
		case 1:
			// A long idle period: background machinery runs.
			d.Idle(at, at.Add(30*vclock.Second))
			at = at.Add(30 * vclock.Second)
		case 2:
			at, err = d.RollBack(lpa, at.Add(-vclock.Minute), at)
		case 3, 4:
			_, _, err = d.Read(lpa, at)
		default:
			at, err = d.Write(lpa, versionPage(d, lpa, step), at)
		}
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if step%500 == 499 {
			if err := d.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestInvariantsAfterRollBackAll checks the structures after the most
// write-intensive operation the API offers.
func TestInvariantsAfterRollBackAll(t *testing.T) {
	d := newTiny(t, nil)
	rng := rand.New(rand.NewSource(78))
	at := vclock.Time(0)
	for i := 0; i < 600; i++ {
		at = at.Add(vclock.Second)
		done, err := d.Write(uint64(rng.Intn(40)), versionPage(d, 0, i), at)
		if err != nil {
			t.Fatal(err)
		}
		at = done
	}
	mid := at.Add(-5 * vclock.Minute)
	if _, _, err := d.RollBackAll(mid, at.Add(vclock.Second)); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsFreshDevice(t *testing.T) {
	d := newTiny(t, nil)
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
