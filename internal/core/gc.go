package core

import (
	"errors"
	"math"
	"sort"

	"almanac/internal/delta"
	"almanac/internal/fault"
	"almanac/internal/flash"
	"almanac/internal/ftl"
	"almanac/internal/invariant"
	"almanac/internal/obs"
	"almanac/internal/vclock"
)

// deltaPageLPA is the OOB LPA sentinel for packed delta pages, which hold
// deltas of many LPAs (individual LPAs live in the page header).
const deltaPageLPA = math.MaxUint64

// rebuildMarkerLPA is the OOB LPA sentinel for the rebuild-instant journal
// page Rebuild writes (a KindTranslation filler stamped with the rebuild
// timestamp, so the retention clock survives repeated crashes).
const rebuildMarkerLPA = math.MaxUint64 - 1

// bestVictim returns the data block GC would pick next, or -1.
func (t *TimeSSD) bestVictim() int {
	return t.VictimBlockOfKind(flash.KindData)
}

// victimQuality is the minimum number of a block's pages that must be
// reclaimable before collecting it is considered worthwhile: each freed
// page costs (valid/invalid) migrations, so thin victims inflate write
// amplification. The bar adapts to what utilisation makes achievable —
// half of the average per-block garbage — since at high usage no block can
// ever be half-garbage.
func (t *TimeSSD) victimQuality() int {
	ps := t.cfg.FTL.Flash.PagesPerBlock
	valid, blocks := 0, 0
	t.SealedBlocks(func(blk int, info *ftl.BlockInfo) {
		if info.Kind == flash.KindData {
			valid += info.Valid
			blocks++
		}
	})
	if blocks == 0 {
		return 2
	}
	q := (ps - valid/blocks) * 3 / 4
	if q < 2 {
		q = 2
	}
	if q > ps/4 {
		q = ps / 4
	}
	return q
}

// poorVictims reports whether reclamation has become inefficient: no
// expired delta block is queued and the best data victim falls below the
// quality bar (everything else is valid or retained).
func (t *TimeSSD) poorVictims() bool {
	if len(t.expiredDeltaBlocks) > 0 {
		return false
	}
	v := t.bestVictim()
	return v < 0 || t.Info[v].Invalid < t.victimQuality()
}

// cheapReclaimDeficit reports whether the stock of cheap reclamation —
// expired delta blocks plus data blocks with a healthy share of genuinely
// discardable pages (compressed, relocated, or expired; NOT retained pages,
// which cost compression work) — is below the low watermark's worth.
func (t *TimeSSD) cheapReclaimDeficit() bool {
	want := t.cfg.FTL.GCLowBlocks
	n := len(t.expiredDeltaBlocks)
	if n >= want {
		return false
	}
	ps := t.cfg.FTL.Flash.PagesPerBlock
	quality := t.victimQuality()
	t.SealedBlocks(func(blk int, info *ftl.BlockInfo) {
		if n >= want || info.Kind != flash.KindData || info.Invalid < quality {
			return
		}
		cheap := 0
		for off := 0; off < ps; off++ {
			ppa := t.Arr.AddrOf(blk, off)
			if t.PVT[ppa] {
				continue
			}
			if t.prt[ppa] {
				cheap++
				continue
			}
			if _, hit := t.chain.Contains(uint64(ppa)); !hit {
				cheap++
			}
		}
		if cheap >= quality {
			n++
		}
	})
	return n < want
}

// collectOnce is one pass of Algorithm 1 plus, under almanacdebug, a deep
// cross-consistency audit of the structures GC just touched.
func (t *TimeSSD) collectOnce(at vclock.Time) (vclock.Time, error) {
	ws := t.obs.Start()
	done, err := t.collectOncePass(at)
	t.obs.Record(obs.GCPass, 0, int64(at), int64(done), ws, err == nil)
	if invariant.Enabled && err == nil {
		// CheckInvariants is O(device); auditing every few GC passes keeps
		// debug-tag test runs tractable while still catching corruption
		// within a handful of passes of its introduction.
		t.gcAudits++
		if t.gcAudits%gcAuditEvery == 0 {
			invariant.AssertNoErr(t.CheckInvariants(), "post-GC AMT/PVT cross-consistency")
		}
	}
	return done, err
}

// gcAuditEvery is the deep-audit sampling interval under almanacdebug.
const gcAuditEvery = 8

// collectOncePass is one pass of Algorithm 1: erase an expired delta block
// if one exists (free space at zero migration cost); otherwise reclaim the
// data block with the most invalid pages.
func (t *TimeSSD) collectOncePass(at vclock.Time) (vclock.Time, error) {
	if n := len(t.expiredDeltaBlocks); n > 0 {
		blk := t.expiredDeltaBlocks[n-1]
		t.expiredDeltaBlocks = t.expiredDeltaBlocks[:n-1]
		t.GC.Runs++
		return t.eraseClearing(blk, at)
	}
	victim := t.VictimBlockOfKind(flash.KindData)
	if victim < 0 {
		return at, ftl.ErrDeviceFull
	}
	t.GC.Runs++
	return t.reclaimDataBlock(victim, at)
}

// reclaimDataBlock implements lines 5–26 of Algorithm 1: migrate valid
// pages, classify each invalid page as reclaimable / expired / retained,
// compress the retained ones into deltas, then erase the block.
func (t *TimeSSD) reclaimDataBlock(blk int, at vclock.Time) (vclock.Time, error) {
	var err error
	at, err = t.MigrateValidPages(blk, at, func(ppa flash.PPA) { t.prt[ppa] = true })
	if err != nil {
		return at, err
	}
	ps := t.cfg.FTL.Flash.PagesPerBlock
	for off := 0; off < ps; off++ {
		ppa := t.Arr.AddrOf(blk, off)
		if t.PVT[ppa] || t.prt[ppa] {
			// Valid pages were migrated above; PRT-marked pages were already
			// compressed or noted expired and can simply be discarded.
			continue
		}
		if _, hit := t.chain.Contains(uint64(ppa)); !hit {
			// Missing every Bloom filter proves the page expired (or was a
			// GC relocation shadow, which is reclaimable by construction).
			t.st.ExpiredReclaimed++
			continue
		}
		at, err = t.compressRetained(ppa, at)
		if err != nil {
			return at, err
		}
	}
	// Crash durability: any buffered delta whose source page sits in blk is
	// about to lose its on-flash copy. Flush those segments first, so the
	// erase never leaves a retained version existing only in RAM (a power
	// cut between erase and flush would silently drop history).
	at, err = t.flushPendingFrom(blk, at)
	if err != nil {
		return at, err
	}
	return t.eraseClearing(blk, at)
}

// flushPendingFrom flushes every segment holding a pending delta whose
// source page lies in blk. LPAs are visited in sorted order so the flash
// layout stays replay-deterministic.
func (t *TimeSSD) flushPendingFrom(blk int, at vclock.Time) (vclock.Time, error) {
	var lpas []uint64
	t.forEachPending(func(lpa uint64, p pendingDelta) {
		if t.Arr.BlockOf(p.src) == blk {
			lpas = append(lpas, lpa)
		}
	})
	sort.Slice(lpas, func(i, j int) bool { return lpas[i] < lpas[j] })
	for _, lpa := range lpas {
		p := t.pending[lpa]
		if p.d == nil {
			continue // an earlier flush in this loop already covered it
		}
		var err error
		if at, err = t.flushSegment(p.seg, at); err != nil {
			return at, err
		}
	}
	return at, nil
}

// eraseClearing erases blk and clears its PRT bits.
func (t *TimeSSD) eraseClearing(blk int, at vclock.Time) (vclock.Time, error) {
	base := blk * t.cfg.FTL.Flash.PagesPerBlock
	for off := 0; off < t.cfg.FTL.Flash.PagesPerBlock; off++ {
		t.prt[base+off] = false
	}
	return t.EraseBlock(blk, at)
}

// chainVersion is one retained version discovered by chain traversal.
type chainVersion struct {
	ppa  flash.PPA
	lpa  uint64
	ts   vclock.Time
	data []byte
	seg  int // Bloom-filter segment index the invalidation hit
}

// compressRetained compresses the retained invalid page at ppa — plus every
// older unexpired version reachable below it through the back-pointer chain
// (§3.7: once the victim is erased those versions would become unreachable)
// — into deltas against the latest version, and marks the source pages
// reclaimable in the PRT.
func (t *TimeSSD) compressRetained(ppa flash.PPA, at vclock.Time) (vclock.Time, error) {
	data, oob, done, err := t.Arr.Read(ppa, at)
	if err != nil {
		if errors.Is(err, flash.ErrReadFailed) {
			// The retained version is unrecoverable: this slice of history
			// is lost, but the device must keep going.
			t.ReadFailures++
			t.prt[ppa] = true
			return done, nil
		}
		return at, err
	}
	t.GC.Reads++
	at = done
	if oob.Kind != flash.KindData {
		return at, nil
	}
	lpa := oob.LPA
	seg, hit := t.chain.Contains(uint64(ppa))
	if !hit {
		t.st.ExpiredReclaimed++
		t.prt[ppa] = true
		return at, nil
	}
	// Chain-page data can be aliased rather than copied: within this pass
	// nothing programs over a programmed page (programs land only on erased
	// pages, and the victim's erase happens after compression finishes), so
	// the flash-owned bytes are stable until emitDelta consumes them.
	vers := append(t.gcVers[:0], chainVersion{ppa: ppa, lpa: lpa, ts: oob.TS, data: data, seg: seg})
	defer func() { t.gcVers = vers[:0] }()

	// Walk the chain below the victim collecting unexpired versions.
	prevTS := oob.TS
	cur := oob.BackPtr
	for cur != flash.NullPPA {
		if t.PVT[cur] || t.prt[cur] {
			break // relocated head shadow or already-compressed page
		}
		d2, o2, dn, err := t.Arr.Read(cur, at)
		if err != nil {
			break // chain ran into an erased page: older history expired
		}
		t.GC.Reads++
		at = dn
		if o2.Kind != flash.KindData || o2.LPA != lpa || o2.TS >= prevTS {
			break // stale pointer: the block was reused
		}
		s2, hit := t.chain.Contains(uint64(cur))
		if !hit {
			// Expired: it and everything older are reclaimable.
			t.st.ExpiredReclaimed++
			t.prt[cur] = true
			break
		}
		vers = append(vers, chainVersion{ppa: cur, lpa: lpa, ts: o2.TS, data: d2, seg: s2})
		prevTS = o2.TS
		cur = o2.BackPtr
	}

	// The latest valid version is the compression reference (§3.6).
	var ref []byte
	var refTS vclock.Time
	if head := t.AMT[lpa]; head != flash.NullPPA {
		rd, ro, dn, err := t.Arr.Read(head, at)
		switch {
		case err == nil:
			t.GC.Reads++
			at = dn
			ref = rd
			refTS = ro.TS
		case errors.Is(err, flash.ErrReadFailed):
			// The live head is unreadable: compress the retained versions
			// self-contained (no reference) so they at least survive.
			t.ReadFailures++
			at = dn
		default:
			return at, err
		}
	}

	// Emit deltas oldest-first so every delta's predecessor is already
	// placed (or never existed) when its back-pointer is resolved.
	for i := len(vers) - 1; i >= 0; i-- {
		at, err = t.emitDelta(&vers[i], ref, refTS, at)
		if err != nil {
			return at, err
		}
		t.prt[vers[i].ppa] = true
	}
	return at, nil
}

// emitDelta converts one retained version into a delta (or a raw retained
// page when compression does not pay) stored in its segment's delta blocks.
func (t *TimeSSD) emitDelta(v *chainVersion, ref []byte, refTS vclock.Time, at vclock.Time) (vclock.Time, error) {
	lpa := v.lpa
	var err error
	// Chain-order discipline: if a newer delta for this LPA is still
	// buffered, it must reach flash before this older one links below it.
	if p := t.pending[lpa]; p.d != nil {
		if at, err = t.flushSegment(p.seg, at); err != nil {
			return at, err
		}
	}
	prevHead := t.imt[lpa]
	seg := t.cohortFor(v.seg)

	if !t.cfg.DisableCompression {
		// Encode into the device's reusable scratch, then copy out
		// right-sized: the payload outlives this call inside the pending
		// buffer, and sealRetained returns its input unchanged when no
		// retention key is configured.
		enc, scratch := delta.EncodeWith(&t.lzc, t.encScratch[:0], v.data, ref)
		t.encScratch = scratch[:0]
		payload := append(make([]byte, 0, len(scratch)), scratch...)
		t.GC.DeltaOps++
		t.st.DeltasCreated++
		at = at.Add(t.cfg.DeltaCost)
		payload = t.sealRetained(lpa, v.ts, payload)
		d := &delta.Delta{LPA: lpa, BackPtr: uint64(prevHead), TS: v.ts, RefTS: refTS, Enc: enc, Payload: payload}
		if delta.NewBuffer(t.cfg.FTL.Flash.PageSize).Fits(d) {
			if !seg.buf.Fits(d) {
				if at, err = t.flushSegment(seg, at); err != nil {
					return at, err
				}
			}
			if !seg.buf.Add(d) {
				return at, errors.New("timessd: delta does not fit an empty buffer")
			}
			t.setPending(lpa, pendingDelta{d: d, seg: seg, src: v.ppa})
			return at, nil
		}
		// Falls through: even compressed it does not fit a packed page.
	}

	// Raw retention path: store the version whole in a delta block, chained
	// through its OOB back-pointer (kind KindDeltaRaw).
	oob := flash.OOB{LPA: lpa, BackPtr: prevHead, TS: v.ts, Kind: flash.KindDeltaRaw}
	ppa, done, err := t.programDeltaPage(seg, t.sealRetained(lpa, v.ts, v.data), oob, at)
	if err != nil {
		return at, err
	}
	t.imt[lpa] = ppa
	return done, nil
}

// cohortFor returns the delta cohort for Bloom-filter chain index i
// (0 = oldest live filter). Cohorts are keyed by the stable segment id so
// window drops do not shift the mapping.
func (t *TimeSSD) cohortFor(i int) *segment {
	if i < 0 {
		i = 0
	}
	stable := t.droppedSegs + i
	id := stable / t.cfg.CohortSegments
	for id >= len(t.cohorts) {
		t.cohorts = append(t.cohorts, nil)
	}
	seg := t.cohorts[id]
	if seg == nil {
		seg = t.newSegment()
		t.cohorts[id] = seg
	}
	return seg
}

// flushSegment programs the segment's buffered deltas as one packed delta
// page and updates the index mapping table for every delta it contains.
func (t *TimeSSD) flushSegment(seg *segment, at vclock.Time) (vclock.Time, error) {
	page, ds, err := seg.buf.Flush()
	if err != nil {
		return at, err
	}
	if page == nil {
		return at, nil
	}
	ws := t.obs.Start()
	oob := flash.OOB{LPA: deltaPageLPA, BackPtr: flash.NullPPA, TS: at, Kind: flash.KindDelta}
	ppa, done, err := t.programDeltaPage(seg, page, oob, at)
	if err != nil {
		t.obs.Record(obs.DeltaFlush, 0, int64(at), int64(at), ws, false)
		// The buffer was already drained by Flush. Put the deltas back so
		// the retained versions are not silently lost and the pending index
		// stays consistent with the buffer contents (a stale pending entry
		// would outlive its cohort's retirement and serve data that never
		// reached delta storage).
		for _, d := range ds {
			if !seg.buf.Add(d) {
				t.clearPending(d.LPA)
			}
		}
		return at, err
	}
	for _, d := range ds {
		t.imt[d.LPA] = ppa
		if t.pending[d.LPA].d == d {
			t.clearPending(d.LPA)
		}
	}
	t.st.DeltaPagesWritten++
	t.obs.Record(obs.DeltaFlush, 0, int64(at), int64(done), ws, true)
	return done, nil
}

// programDeltaPage appends one page to the segment's active delta block,
// allocating and sealing blocks as needed. Program failures burn a page and
// are retried on the next page (or a fresh block once the burned one
// seals); termination follows from finite capacity, ending in
// ErrDeviceFull when a pathological plan fails everything.
func (t *TimeSSD) programDeltaPage(seg *segment, data []byte, oob flash.OOB, at vclock.Time) (flash.PPA, vclock.Time, error) {
	for {
		if seg.activeBlk < 0 {
			blk := t.AllocDedicated(flash.KindDelta, len(seg.blocks))
			if blk < 0 {
				return flash.NullPPA, at, ftl.ErrDeviceFull
			}
			seg.activeBlk = blk
		}
		ppa, done, sealed, err := t.ProgramDedicated(seg.activeBlk, data, oob, at)
		if err != nil {
			if errors.Is(err, fault.ErrProgramFail) {
				if sealed {
					seg.blocks = append(seg.blocks, seg.activeBlk)
					seg.activeBlk = -1
				}
				at = done
				continue
			}
			return flash.NullPPA, at, err
		}
		t.GC.Writes++
		if sealed {
			seg.blocks = append(seg.blocks, seg.activeBlk)
			seg.activeBlk = -1
		}
		return ppa, done, nil
	}
}

// FlushDeltas forces every segment buffer to flash. Tests and shutdown
// paths use it; normal operation flushes on pressure.
func (t *TimeSSD) FlushDeltas(at vclock.Time) (vclock.Time, error) {
	for _, seg := range t.cohorts {
		if seg == nil {
			continue
		}
		var err error
		if at, err = t.flushSegment(seg, at); err != nil {
			return at, err
		}
	}
	return at, nil
}

// discountBackground subtracts GC work performed since `before` from the
// Eq. 1 estimator's view by advancing its baseline: background reclamation
// and compression never delayed a host request, so they must not trigger
// retention shedding.
func (t *TimeSSD) discountBackground(before ftl.GCCounters) {
	cur := t.GC
	t.baseGC.Reads += cur.Reads - before.Reads
	t.baseGC.Writes += cur.Writes - before.Writes
	t.baseGC.Erases += cur.Erases - before.Erases
	t.baseGC.DeltaOps += cur.DeltaOps - before.DeltaOps
}

// observeArrival feeds the idle-time predictor (§3.6): the next idle period
// is estimated by exponential smoothing over past inter-arrival gaps.
func (t *TimeSSD) observeArrival(at vclock.Time) {
	if !t.started {
		t.started = true
		t.lastArrival = at
		return
	}
	if at < t.lastArrival {
		return
	}
	interval := at.Sub(t.lastArrival)
	a := t.cfg.IdleAlpha
	t.predictedIdle = vclock.Duration(a*float64(interval) + (1-a)*float64(t.predictedIdle))
	t.lastArrival = at
}

// PredictedIdle exposes the current idle-time prediction.
func (t *TimeSSD) PredictedIdle() vclock.Duration { return t.predictedIdle }

// Idle tells the device no host I/O will arrive before `until`. If the
// predictor expects a long enough gap, TimeSSD compresses retained pages of
// the block with the most invalid pages in the background, marking them
// reclaimable so future GC can discard them without migration (§3.6).
// Work stops as soon as virtual time reaches `until` (the paper suspends
// background compression when a request arrives).
func (t *TimeSSD) Idle(now, until vclock.Time) {
	gap := until.Sub(now)
	if gap < t.cfg.IdleThreshold {
		return
	}
	// Short gaps start background work only if the predictor expects the
	// quiet period to last; an unambiguously long gap (two orders of
	// magnitude past the threshold) needs no prediction — the firmware has
	// visibly gone idle.
	if gap < 100*t.cfg.IdleThreshold && t.predictedIdle < t.cfg.IdleThreshold {
		return
	}
	at := now
	// Stage 1 — background GC: refill the free pool to the high watermark
	// so bursts rarely trigger foreground reclamation. If reclamation is
	// inefficient because retained history packs the device, shed the
	// oldest segment (space is needed now). Background work is excluded
	// from the Eq. 1 estimate: it never delayed a host request, and a
	// space-pressed simulator must pay background churn for retention that
	// the paper's never-full board gets for free — counting it would shed
	// the window to its minimum permanently (see DESIGN.md §4a).
	gcBefore := t.GC
	pass := ftl.GCPassCost(t.cfg.FTL)
refill:
	for until.Sub(at) > pass && t.FreeBlocks() < t.cfg.FTL.GCHighBlocks {
		// Never reclaim a thin victim in the background: migrating a
		// nearly-all-valid block plus writing its deltas can consume more
		// pages than the erase frees. Shed history until reclamation is
		// profitable; if nothing can be shed, leave the pool for the
		// (estimator-governed) foreground path.
		for t.poorVictims() {
			if !t.shortenWindow(at) {
				break refill
			}
		}
		done, err := t.collectOnce(at)
		if err != nil {
			break refill
		}
		at = done
	}
	// Wear leveling is background work too: cold swaps run here, where the
	// migration cost delays nothing.
	if t.WearCheckDue() && t.WearImbalanced() {
		if done, err := t.wearLevel(at, 4); err == nil {
			at = done
		}
	}
	t.discountBackground(gcBefore)

	// Stage 2 — idle delta compression (§3.6): condense retained versions
	// so they stop occupying whole pages, and mark the sources reclaimable
	// in the PRT. This both extends the retention window and stocks the
	// cheap-reclamation reserve without sacrificing any history.
	gcBefore = t.GC
	d0 := t.GC.DeltaOps
	defer func() {
		t.st.IdleCompressions += t.GC.DeltaOps - d0
		t.discountBackground(gcBefore)
	}()
	if !t.cfg.DisableIdleCompression && !t.cfg.DisableCompression {
		// One scan builds the candidate list (most invalid pages first);
		// re-picking a victim per block would be O(blocks²).
		type cand struct{ blk, invalid int }
		var cands []cand
		t.SealedBlocks(func(blk int, info *ftl.BlockInfo) {
			if info.Kind == flash.KindData && info.Invalid > 0 {
				cands = append(cands, cand{blk, info.Invalid})
			}
		})
		sort.Slice(cands, func(i, j int) bool { return cands[i].invalid > cands[j].invalid })
		ps := t.cfg.FTL.Flash.PagesPerBlock
		for _, c := range cands {
			if !at.Before(until) {
				break
			}
			for off := 0; off < ps && at.Before(until); off++ {
				ppa := t.Arr.AddrOf(c.blk, off)
				if t.PVT[ppa] || t.prt[ppa] {
					continue
				}
				if _, hit := t.chain.Contains(uint64(ppa)); !hit {
					t.st.ExpiredReclaimed++
					t.prt[ppa] = true
					continue
				}
				var err error
				at, err = t.compressRetained(ppa, at)
				if err != nil {
					return
				}
			}
		}
	}

	// Stage 3 — last resort, and only when the device is tight: if even
	// after compression the next burst would face only expensive victims,
	// shed the oldest history until the cheap-reclamation reserve is
	// stocked. A device with ample free space never sheds.
	for at.Before(until) && t.FreeBlocks() < 2*t.cfg.FTL.GCHighBlocks && t.cheapReclaimDeficit() {
		if !t.shortenWindow(at) {
			return
		}
	}
}
