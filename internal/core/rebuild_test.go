package core

import (
	"bytes"
	"math/rand"
	"testing"

	"almanac/internal/vclock"
)

// churnDevice drives a device through enough writes that GC, compression
// and retention are all active, then flushes the delta buffers (RAM-only
// state is legitimately lost in a crash; flushing first lets the test
// demand exact version-set equality).
func churnDevice(t *testing.T, d *TimeSSD, writes int) vclock.Time {
	t.Helper()
	rng := rand.New(rand.NewSource(55))
	logical := d.LogicalPages() / 2
	at := vclock.Time(0)
	for i := 0; i < writes; i++ {
		at = at.Add(vclock.Second)
		lpa := uint64(rng.Intn(logical))
		done, err := d.Write(lpa, versionPage(d, lpa, i), at)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		at = done
	}
	at, err := d.FlushDeltas(at)
	if err != nil {
		t.Fatal(err)
	}
	return at
}

func TestRebuildPreservesLiveState(t *testing.T) {
	d := newTiny(t, nil)
	at := churnDevice(t, d, d.cfg.FTL.Flash.TotalPages()*3)

	r, err := Rebuild(d.Arr, d.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("rebuilt device inconsistent: %v", err)
	}
	// Every live page reads identically.
	for lpa := uint64(0); lpa < uint64(d.LogicalPages()); lpa++ {
		want, _, err := d.Read(lpa, at)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := r.Read(lpa, at)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("lpa %d differs after rebuild", lpa)
		}
	}
}

func TestRebuildPreservesHistory(t *testing.T) {
	d := newTiny(t, nil)
	at := churnDevice(t, d, d.cfg.FTL.Flash.TotalPages()*2)

	r, err := Rebuild(d.Arr, d.cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every version retrievable before the crash is retrievable after
	// (the rebuilt window conservatively covers all surviving history).
	lost, checked := 0, 0
	for lpa := uint64(0); lpa < uint64(d.LogicalPages()); lpa++ {
		before, _, err := d.Versions(lpa, at)
		if err != nil {
			t.Fatal(err)
		}
		if len(before) == 0 {
			continue
		}
		after, _, err := r.Versions(lpa, at)
		if err != nil {
			t.Fatal(err)
		}
		byTS := map[vclock.Time][]byte{}
		for _, v := range after {
			byTS[v.TS] = v.Data
		}
		for _, v := range before {
			checked++
			got, ok := byTS[v.TS]
			if !ok {
				lost++
				continue
			}
			if !bytes.Equal(got, v.Data) {
				t.Fatalf("lpa %d version %v corrupted by rebuild", lpa, v.TS)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no versions to check")
	}
	if lost != 0 {
		t.Fatalf("rebuild lost %d of %d versions", lost, checked)
	}
}

func TestRebuildDeviceRemainsUsable(t *testing.T) {
	d := newTiny(t, nil)
	churnDevice(t, d, d.cfg.FTL.Flash.TotalPages()*2)

	r, err := Rebuild(d.Arr, d.cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Post-crash life: several device-capacities of writes must proceed
	// (GC, compression, window shedding all working on rebuilt state).
	rng := rand.New(rand.NewSource(56))
	logical := r.LogicalPages() / 2
	at := vclock.Time(0).Add(vclock.Hour)
	for i := 0; i < r.cfg.FTL.Flash.TotalPages()*3; i++ {
		at = at.Add(vclock.Second)
		lpa := uint64(rng.Intn(logical))
		done, err := r.Write(lpa, versionPage(r, lpa, i), at)
		if err != nil {
			t.Fatalf("post-rebuild write %d: %v", i, err)
		}
		at = done
	}
	if r.GC.Runs == 0 {
		t.Fatal("GC never ran after rebuild")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRebuildEmptyDevice(t *testing.T) {
	d := newTiny(t, nil)
	r, err := Rebuild(d.Arr, d.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if r.FreeBlocks() != d.cfg.FTL.Flash.TotalBlocks() {
		t.Fatalf("empty rebuild left %d free blocks", r.FreeBlocks())
	}
	data, _, err := r.Read(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 0 {
		t.Fatal("empty device reads non-zero")
	}
}

func TestRebuildMidGC(t *testing.T) {
	// Crash with partially-filled active blocks: rebuild pads them closed
	// and the device stays coherent.
	d := newTiny(t, nil)
	at := vclock.Time(0)
	for i := 0; i < 37; i++ { // deliberately not a multiple of pages-per-block
		at = at.Add(vclock.Second)
		done, err := d.Write(uint64(i%5), versionPage(d, uint64(i%5), i), at)
		if err != nil {
			t.Fatal(err)
		}
		at = done
	}
	r, err := Rebuild(d.Arr, d.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for lpa := uint64(0); lpa < 5; lpa++ {
		want, _, _ := d.Read(lpa, at)
		got, _, err := r.Read(lpa, at)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("lpa %d wrong after mid-write rebuild: %v", lpa, err)
		}
	}
}
