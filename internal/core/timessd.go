// Package core implements TimeSSD, the paper's primary contribution: an FTL
// that retains past storage states and their lineage inside the device for a
// bounded, workload-adaptive window of time (§3).
//
// TimeSSD layers four mechanisms over the shared FTL base:
//
//   - a retention-duration manager that trades retention window length
//     against GC overhead using the Eq. 1 estimator (§3.4, §3.8);
//   - an expired-data daemon built on a time-segmented Bloom filter chain
//     (§3.5) that decides, during GC, whether an invalid page may be
//     reclaimed;
//   - a delta-compression engine that condenses obsolete versions against
//     the latest version during GC and during predicted idle cycles (§3.6);
//   - a time-travel index: per-LPA reverse chains of data pages (via OOB
//     back-pointers) and delta pages (via the index mapping table), §3.7.
package core

import (
	"crypto/cipher"
	"errors"
	"fmt"

	"almanac/internal/bloom"
	"almanac/internal/delta"
	"almanac/internal/fault"
	"almanac/internal/flash"
	"almanac/internal/ftl"
	"almanac/internal/lzf"
	"almanac/internal/obs"
	"almanac/internal/vclock"
)

// ErrRetentionFull is returned when free space is exhausted but the
// retention window has not yet reached the guaranteed minimum: the paper's
// TimeSSD stops serving I/O rather than break the lower-bound guarantee
// (§3.4), making attacks that flood the device immediately visible.
var ErrRetentionFull = errors.New("timessd: free space exhausted inside minimum retention window")

// Config parameterises a TimeSSD instance.
type Config struct {
	FTL ftl.Params

	// MinRetention is the guaranteed lower bound on the retention window
	// (three days by default, §3.4).
	MinRetention vclock.Duration

	// TH is the GC-overhead threshold of Eq. 1, as a fraction of a page
	// write's cost (0.2 by default, §3.8).
	TH float64

	// NFixed is the number of host page writes per estimation period.
	NFixed int

	// DeltaCost is the CPU cost charged per delta compression (Cdelta).
	DeltaCost vclock.Duration

	// IdleThreshold is the minimum predicted idle time that triggers
	// background compression (10 ms by default, §3.6).
	IdleThreshold vclock.Duration

	// IdleAlpha is the exponential-smoothing factor for idle prediction
	// (0.5 by default).
	IdleAlpha float64

	// BFCapacity is the number of group insertions a Bloom filter absorbs
	// before a new time segment starts; BFFalsePositive is the per-filter
	// false positive target; BFGroup is the page-group granularity N.
	BFCapacity      int
	BFFalsePositive float64
	BFGroup         int

	// CohortSegments is how many consecutive Bloom-filter segments share
	// one set of delta blocks. Each live cohort pins at most one
	// partially-filled delta block, so this bounds delta-storage
	// fragmentation to (live segments / CohortSegments) blocks.
	CohortSegments int

	// RetentionKey, when non-empty (16/24/32 bytes for AES-128/192/256),
	// encrypts every retained version written to delta storage (§3.10):
	// history stays recoverable with the key and unreadable without it.
	RetentionKey []byte

	// DisableCompression turns delta compression off entirely (ablation:
	// retained versions stay as full pages and migrate during GC).
	DisableCompression bool

	// DisableIdleCompression keeps GC-time compression but disables the
	// idle-cycle background pass (ablation).
	DisableIdleCompression bool

	// RefCacheSlots bounds the host-side cache of decoded retained versions
	// used by the query paths (<= 0 disables it). The cache changes host
	// speed only: flash reads and firmware decode costs are charged
	// identically on hit and miss.
	RefCacheSlots int
}

// DefaultConfig derives TimeSSD defaults from FTL parameters.
func DefaultConfig(p ftl.Params) Config {
	capPerBF := p.Flash.TotalPages() / (16 * 48)
	if capPerBF < 16 {
		capPerBF = 16
	}
	// The estimation period must be small relative to the device, or the
	// control loop reacts too slowly to contain GC overhead.
	nFixed := p.Flash.TotalPages() / 128
	if nFixed < 64 {
		nFixed = 64
	}
	return Config{
		FTL:          p,
		MinRetention: 3 * vclock.Day,
		TH:           0.2,
		NFixed:       nFixed,
		// LZF (de)compression of one 4 KiB page on the embedded controller
		// CPU (the paper's board runs a 400 MHz-class ARM; §5.5.1 attributes
		// TimeSSD's 14.1% recovery overhead to this cost).
		DeltaCost:     120 * vclock.Microsecond,
		IdleThreshold: 10 * vclock.Millisecond,
		IdleAlpha:     0.5,
		BFCapacity:    capPerBF,
		// The chain is probed newest-first across every live filter, so
		// the effective false-positive rate compounds with segment count;
		// a tight per-filter target keeps phantom retention negligible.
		BFFalsePositive: 0.001,
		BFGroup:         16,
		CohortSegments:  cohortSize(p.Flash.TotalBlocks()),
		RefCacheSlots:   1024,
	}
}

// cohortSize balances two fragmentation sources: each live cohort pins one
// partially-filled delta block, but a dropped segment's delta blocks stay
// pinned until its whole cohort retires. Small devices cannot afford the
// latter; large ones cannot afford the former.
func cohortSize(totalBlocks int) int {
	c := totalBlocks / 32
	if c < 1 {
		return 1
	}
	if c > 8 {
		return 8
	}
	return c
}

// segment holds the delta storage of one cohort of consecutive Bloom-filter
// time segments: the open delta buffer, the active delta block, and the
// sealed delta blocks. The paper dedicates delta blocks per BF segment
// (§3.6) so they can be erased whole when the segment retires; grouping a
// few consecutive segments per erase unit preserves that property while
// bounding the internal fragmentation of partially-filled active blocks —
// essential when the device (and hence each block) is a much larger
// fraction of capacity than on a 1 TB drive.
type segment struct {
	buf       *delta.Buffer
	activeBlk int   // current delta block being filled, -1 if none
	blocks    []int // sealed (or partially filled) delta blocks of this cohort
}

// pendingDelta tracks a delta that sits in a segment buffer and has not yet
// been programmed to flash. src is the flash page the delta was compressed
// from: while src is still programmed the version is crash-durable (a
// rebuild re-registers the source as retained), so GC must flush the buffer
// before erasing src's block or a power cut would lose the version.
type pendingDelta struct {
	d   *delta.Delta
	seg *segment
	src flash.PPA
}

// trimRecord remembers the chain head of a trimmed LPA (so lineage survives
// deletion and re-creation) and when the trim happened (a deletion is a
// state update: time-based queries must report it, or recovery would miss
// files that were deleted but never rewritten).
type trimRecord struct {
	head flash.PPA
	ts   vclock.Time
}

// Stats exposes TimeSSD-specific counters on top of the base FTL's.
type Stats struct {
	Invalidations     int64 // version invalidations recorded in the BF chain
	DeltasCreated     int64
	DeltaPagesWritten int64
	ExpiredReclaimed  int64 // invalid pages reclaimed after expiry
	WindowDrops       int64 // Bloom filters dropped to shorten the window
	IdleCompressions  int64 // pages compressed during idle cycles
	EstimatorChecks   int64
	EstimatorTrips    int64 // periods in which Eq. 1 exceeded TH

	// Host-side reference-cache telemetry (see Config.RefCacheSlots).
	RefCacheHits      int64
	RefCacheMisses    int64
	RefCacheEvictions int64
}

// TimeSSD is the time-traveling FTL.
type TimeSSD struct {
	*ftl.Base
	cfg  Config
	zero []byte

	chain       *bloom.Chain
	cohorts     []*segment // delta cohorts indexed by stable cohort id (nil = retired/absent)
	droppedSegs int        // Bloom filters dropped so far (stable-id base)

	// The per-LPA tables are flat slices indexed by LPA (like the base
	// FTL's AMT) so the hot read/write/query paths never touch a map.
	// Absence sentinels: imt[lpa] == NullPPA, pending[lpa].d == nil,
	// trimmed[lpa].head == NullPPA.
	imt     []flash.PPA    // index mapping table: LPA → head delta page
	pending []pendingDelta // newest unflushed delta per LPA
	prt     []bool         // page reclamation table, indexed by PPA
	trimmed []trimRecord   // chain heads + times of trimmed LPAs

	// pendingLPAs lists LPAs that may hold a pending entry so iteration
	// never scans the whole logical space; cleared entries are compacted
	// out on the next forEachPending sweep (pendingListed guards against
	// duplicate list entries across clear/re-set cycles).
	pendingLPAs   []uint64
	pendingListed []bool

	expiredDeltaBlocks []int // delta blocks whose segment retired; erase first

	// Eq. 1 estimator period state.
	periodWrites int64
	baseGC       ftl.GCCounters
	gcEWMA       float64 // smoothed GC cost per host write (ns)

	// Idle predictor state (§3.6).
	lastArrival   vclock.Time
	predictedIdle vclock.Duration
	started       bool

	// §3.10 retained-data encryption (nil when no key is configured).
	aes cipher.Block

	gcAudits int64 // almanacdebug: GC passes since the last deep audit

	// Host-side hot-path state. Devices are single-goroutine (simulated
	// threads share a device serially; array shards own their devices), so
	// the scratch buffers need no locks.
	refcache    *refCache      // decoded-version cache for query paths
	encScratch  []byte         // delta.Encode staging, reused across GC compressions
	lzc         lzf.Compressor // generation-tagged LZF match table, reused across GC compressions
	gcVers      []chainVersion // compressRetained chain staging, reused across calls
	faultsArmed bool           // skip almanacdebug shadow decodes under injected faults

	// rebuiltAt is the rebuild instant when this device was mounted by
	// Rebuild (zero for a fresh device): the newest write timestamp found
	// on the medium, where the retention window restarts.
	rebuiltAt vclock.Time

	st  Stats
	obs *obs.Registry
}

var _ ftl.Device = (*TimeSSD)(nil)

// New builds a TimeSSD over a fresh flash array. The configuration must
// pass Config.Validate — the one validation surface shared with parsed
// and sweep-generated configs.
func New(cfg Config) (*TimeSSD, error) {
	if cfg.CohortSegments < 1 {
		cfg.CohortSegments = 1 // historical leniency: zero means "one cohort"
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b, err := ftl.NewBase(cfg.FTL)
	if err != nil {
		return nil, err
	}
	t := &TimeSSD{
		Base:     b,
		cfg:      cfg,
		zero:     make([]byte, cfg.FTL.Flash.PageSize),
		chain:    bloom.NewChain(cfg.BFCapacity, cfg.BFFalsePositive, cfg.BFGroup, 0),
		prt:      make([]bool, cfg.FTL.Flash.TotalPages()),
		refcache: newRefCache(cfg.RefCacheSlots, b.LogicalPages()),
	}
	t.chain.EnableMemo(uint64(cfg.FTL.Flash.TotalPages() - 1))
	t.initTables()
	if err := t.initCipher(); err != nil {
		return nil, err
	}
	t.attachObs()
	return t, nil
}

// initTables allocates the flat per-LPA tables with their absence
// sentinels in place.
func (t *TimeSSD) initTables() {
	logical := t.LogicalPages()
	t.imt = make([]flash.PPA, logical)
	t.trimmed = make([]trimRecord, logical)
	for i := range t.imt {
		t.imt[i] = flash.NullPPA
		t.trimmed[i].head = flash.NullPPA
	}
	t.pending = make([]pendingDelta, logical)
	t.pendingListed = make([]bool, logical)
}

// setPending records the newest unflushed delta for lpa.
func (t *TimeSSD) setPending(lpa uint64, p pendingDelta) {
	if !t.pendingListed[lpa] {
		t.pendingListed[lpa] = true
		t.pendingLPAs = append(t.pendingLPAs, lpa)
	}
	t.pending[lpa] = p
}

// clearPending drops lpa's pending entry; the stale list slot is compacted
// out by the next forEachPending sweep.
func (t *TimeSSD) clearPending(lpa uint64) {
	t.pending[lpa] = pendingDelta{}
}

// forEachPending visits every live pending entry, compacting cleared list
// slots as it goes. fn may clear entries (including the current one) and
// add new ones; additions are visited in the same sweep.
func (t *TimeSSD) forEachPending(fn func(lpa uint64, p pendingDelta)) {
	dst := 0
	for i := 0; i < len(t.pendingLPAs); i++ {
		lpa := t.pendingLPAs[i]
		if t.pending[lpa].d == nil {
			t.pendingListed[lpa] = false
			continue
		}
		t.pendingLPAs[dst] = lpa
		dst++
		fn(lpa, t.pending[lpa])
	}
	t.pendingLPAs = t.pendingLPAs[:dst]
}

// attachObs creates the device's observability registry (disabled until a
// caller opts in) and shares it with the flash layer so flash
// micro-operations land in the same per-device histograms.
func (t *TimeSSD) attachObs() {
	t.obs = obs.NewRegistry()
	t.Arr.SetObserver(t.obs)
}

// Obs returns the device's observability registry.
func (t *TimeSSD) Obs() *obs.Registry { return t.obs }

// RebuiltAt returns the rebuild instant if this device was mounted by
// Rebuild (the newest write timestamp the scan found — where the retention
// window restarted), or zero for a device created fresh.
func (t *TimeSSD) RebuiltAt() vclock.Time { return t.rebuiltAt }

// SetFaults arms a plan-driven fault injector on the device's flash array
// (nil restores the perfect device). Core owns the forwarding so host-side
// layers stay behind the firmware boundary. While an injector is armed the
// almanacdebug shadow decode of reference-cache hits is suspended: injected
// silent corruption makes a cold re-decode legitimately differ from the
// cached (good) bytes.
func (t *TimeSSD) SetFaults(inj *fault.Injector) {
	t.faultsArmed = inj != nil
	t.Arr.SetFaults(inj)
}

func (t *TimeSSD) newSegment() *segment {
	return &segment{buf: delta.NewBuffer(t.cfg.FTL.Flash.PageSize), activeBlk: -1}
}

// SetMinRetention replaces the guaranteed retention lower bound at run
// time; negative values clamp to zero. The service layer raises the bound
// to cover the strictest per-volume retention promise (a window can only
// be kept, not recovered, so the device-wide bound must dominate every
// volume's). Raising the bound never drops history: it only stops future
// shortenWindow passes earlier. Like every other mutator this must run on
// the goroutine that owns the device — array shards apply it through the
// worker queue (array.SetMinRetention).
func (t *TimeSSD) SetMinRetention(d vclock.Duration) {
	if d < 0 {
		d = 0
	}
	t.cfg.MinRetention = d
}

// Config returns the instance configuration.
func (t *TimeSSD) Config() Config { return t.cfg }

// TimeStats returns the TimeSSD-specific counters. It is a view of the
// canonical obs.Counters surface (see Counters); the Stats type survives
// for callers that predate the collapse.
func (t *TimeSSD) TimeStats() Stats { return TimeStatsView(t.Counters()) }

// TimeStatsView projects the TimeSSD-specific counters out of the
// canonical counter surface.
func TimeStatsView(c obs.Counters) Stats {
	return Stats{
		Invalidations:     c.Invalidations,
		DeltasCreated:     c.DeltasCreated,
		DeltaPagesWritten: c.DeltaPagesWritten,
		ExpiredReclaimed:  c.ExpiredReclaimed,
		WindowDrops:       c.WindowDrops,
		IdleCompressions:  c.IdleCompressions,
		EstimatorChecks:   c.EstimatorChecks,
		EstimatorTrips:    c.EstimatorTrips,
		RefCacheHits:      c.RefCacheHits,
		RefCacheMisses:    c.RefCacheMisses,
		RefCacheEvictions: c.RefCacheEvictions,
	}
}

// Counters assembles the device's canonical counter snapshot: the base
// FTL and flash counters plus the retention-machinery counters.
func (t *TimeSSD) Counters() obs.Counters {
	c := t.Base.Counters()
	c.Invalidations = t.st.Invalidations
	c.DeltasCreated = t.st.DeltasCreated
	c.DeltaPagesWritten = t.st.DeltaPagesWritten
	c.ExpiredReclaimed = t.st.ExpiredReclaimed
	c.WindowDrops = t.st.WindowDrops
	c.IdleCompressions = t.st.IdleCompressions
	c.EstimatorChecks = t.st.EstimatorChecks
	c.EstimatorTrips = t.st.EstimatorTrips
	if t.refcache != nil {
		c.RefCacheHits = t.refcache.hits
		c.RefCacheMisses = t.refcache.misses
		c.RefCacheEvictions = t.refcache.evictions
	}
	return c
}

// Snapshot captures the full observability state of the device: counters,
// the retention-window header, and the per-class latency histograms.
func (t *TimeSSD) Snapshot() obs.Snapshot {
	return obs.Snapshot{
		Shards:        1,
		WindowStartNS: int64(t.RetentionWindowStart()),
		Segments:      t.Segments(),
		C:             t.Counters(),
		Ops:           t.obs.Ops(),
	}
}

// RetentionWindowStart returns the start of the retrievable time window —
// the creation time of the oldest Bloom filter (Fig. 4).
func (t *TimeSSD) RetentionWindowStart() vclock.Time { return t.chain.WindowStart() }

// RetentionDuration returns the current window length at time now.
func (t *TimeSSD) RetentionDuration(now vclock.Time) vclock.Duration {
	return now.Sub(t.chain.WindowStart())
}

// Segments returns the number of live time segments (Bloom filters).
func (t *TimeSSD) Segments() int { return t.chain.Len() }

// Read returns the current version of lpa.
func (t *TimeSSD) Read(lpa uint64, at vclock.Time) ([]byte, vclock.Time, error) {
	if err := t.CheckLPA(lpa); err != nil {
		return nil, at, err
	}
	ws := t.obs.Start()
	issue := at
	t.observeArrival(at)
	at = t.TouchMapping(lpa, false, at)
	t.HostPageReads++
	ppa := t.AMT[lpa]
	if ppa == flash.NullPPA {
		t.obs.Record(obs.HostRead, lpa, int64(issue), int64(at), ws, true)
		return t.zero, at, nil
	}
	data, _, done, err := t.Arr.Read(ppa, at)
	t.obs.Record(obs.HostRead, lpa, int64(issue), int64(done), ws, err == nil)
	return data, done, err
}

// Write stores a new version of lpa. The superseded version is invalidated
// but retained: its PPA enters the active Bloom filter and it remains
// reachable through the reverse chain until it expires.
func (t *TimeSSD) Write(lpa uint64, data []byte, at vclock.Time) (vclock.Time, error) {
	if err := t.CheckLPA(lpa); err != nil {
		return at, err
	}
	ws := t.obs.Start()
	req := at
	t.observeArrival(at)
	at = t.TouchMapping(lpa, true, at)
	// The version's timestamp is the host-visible issue time; GC that runs
	// before the program only delays completion, it does not re-date the
	// write.
	issue := at
	at, err := t.ensureFree(at)
	if err != nil {
		t.obs.Record(obs.HostWrite, lpa, int64(req), int64(at), ws, false)
		return at, err
	}
	old := t.AMT[lpa]
	back := old
	if back == flash.NullPPA {
		// Preserve lineage across delete+recreate: the new version links to
		// the chain head remembered at trim time.
		if rec := t.trimmed[lpa]; rec.head != flash.NullPPA {
			back = rec.head
			t.trimmed[lpa] = trimRecord{head: flash.NullPPA}
		}
	}
	oob := flash.OOB{LPA: lpa, BackPtr: back, TS: issue, Kind: flash.KindData}
	ppa, done, err := t.AppendPage(t.HostFrontier(), flash.KindData, data, oob, at)
	if err != nil {
		t.obs.Record(obs.HostWrite, lpa, int64(req), int64(at), ws, false)
		return at, err
	}
	if old != flash.NullPPA {
		t.InvalidatePPA(old)
		t.recordInvalidation(old, issue)
	}
	t.AMT[lpa] = ppa
	t.refcache.invalidateLPA(lpa)
	t.HostPageWrites++
	t.periodWrites++
	if t.periodWrites >= int64(t.cfg.NFixed) {
		t.runEstimator(done)
	}
	t.obs.Record(obs.HostWrite, lpa, int64(req), int64(done), ws, true)
	return done, nil
}

// Trim invalidates lpa. The deleted version is retained inside the window,
// which is what lets TimeKits recover files deleted by malware.
func (t *TimeSSD) Trim(lpa uint64, at vclock.Time) (vclock.Time, error) {
	if err := t.CheckLPA(lpa); err != nil {
		return at, err
	}
	ws := t.obs.Start()
	issue := at
	t.observeArrival(at)
	at = t.TouchMapping(lpa, true, at)
	t.TrimOps++
	old := t.AMT[lpa]
	if old != flash.NullPPA {
		t.InvalidatePPA(old)
		t.recordInvalidation(old, at)
		t.AMT[lpa] = flash.NullPPA
		t.trimmed[lpa] = trimRecord{head: old, ts: at}
		t.refcache.invalidateLPA(lpa)
	}
	t.obs.Record(obs.HostTrim, lpa, int64(issue), int64(at), ws, true)
	return at, nil
}

// recordInvalidation inserts ppa into the active Bloom filter.
func (t *TimeSSD) recordInvalidation(ppa flash.PPA, at vclock.Time) {
	t.st.Invalidations++
	t.chain.Invalidate(uint64(ppa), at)
}

// runEstimator evaluates Eq. 1 over the period that just ended and shortens
// the retention window when GC overhead per user write exceeds TH×Cwrite.
func (t *TimeSSD) runEstimator(now vclock.Time) {
	t.st.EstimatorChecks++
	cur := t.GC
	nr := cur.Reads - t.baseGC.Reads
	nw := cur.Writes - t.baseGC.Writes
	ne := cur.Erases - t.baseGC.Erases
	nd := cur.DeltaOps - t.baseGC.DeltaOps
	fc := t.cfg.FTL.Flash
	cost := float64(nr)*float64(fc.ReadLatency) +
		float64(nw)*float64(fc.ProgLatency) +
		float64(ne)*float64(fc.EraseLatency) +
		float64(nd)*float64(t.cfg.DeltaCost)
	perWrite := cost / float64(t.periodWrites)
	t.baseGC = cur
	t.periodWrites = 0
	// Background work is lumpy (one idle stretch compresses hours of
	// retained data), so the estimate is smoothed before the comparison;
	// a raw per-period spike would shed far more history than the average
	// overhead justifies.
	const alpha = 0.25
	t.gcEWMA = (1-alpha)*t.gcEWMA + alpha*perWrite
	limit := t.cfg.TH * float64(fc.ProgLatency)
	if t.gcEWMA > limit {
		t.st.EstimatorTrips++
		// Shed proportionally to the overshoot ("reclaim some of the
		// oldest invalid data", §3.4), gently.
		drops := int(t.gcEWMA / limit)
		if drops > 4 {
			drops = 4
		}
		for i := 0; i < drops; i++ {
			if !t.shortenWindow(now) {
				break
			}
		}
	}
}

// shortenWindow drops the oldest Bloom filter unless doing so would violate
// the minimum retention guarantee. It returns true if a filter was dropped.
func (t *TimeSSD) shortenWindow(now vclock.Time) bool {
	if t.chain.Len() <= 1 {
		// A single segment can only be retired when no minimum retention is
		// configured: force-sealing it and dropping it empties the whole
		// window (the new active filter starts it afresh at `now`).
		if t.cfg.MinRetention > 0 || !t.chain.SealActive(now) {
			return false
		}
	}
	// The window after the drop would start at the second-oldest filter's
	// creation; refuse if that would leave less than the guaranteed bound.
	next := t.chain.Filter(1).Created
	if now.Sub(next) < t.cfg.MinRetention {
		return false
	}
	if !t.chain.DropOldest() {
		return false
	}
	t.st.WindowDrops++
	t.droppedSegs++
	// Any LPA's oldest cached versions may have just expired; the walk would
	// stop before reaching them, but a shrunken window must never serve
	// decoded bytes the chain no longer reaches.
	t.refcache.invalidateAll()
	// Retire every cohort whose last segment has now been dropped: all the
	// versions its delta blocks hold are expired, so the blocks are
	// erasable without migration.
	firstLive := t.droppedSegs / t.cfg.CohortSegments
	for id := 0; id < firstLive && id < len(t.cohorts); id++ {
		if seg := t.cohorts[id]; seg != nil {
			t.retireCohort(id, seg)
		}
	}
	return true
}

// retireCohort schedules a fully-expired cohort's delta blocks for
// immediate erase and discards its unflushed buffer (those versions just
// expired).
func (t *TimeSSD) retireCohort(id int, seg *segment) {
	if seg.activeBlk >= 0 {
		seg.blocks = append(seg.blocks, seg.activeBlk)
		seg.activeBlk = -1
	}
	t.expiredDeltaBlocks = append(t.expiredDeltaBlocks, seg.blocks...)
	seg.blocks = nil
	// Deltas still sitting in the buffer belong to the dropped window; the
	// pending index entries for them must be removed.
	if !seg.buf.Empty() {
		t.forEachPending(func(lpa uint64, p pendingDelta) {
			if p.seg == seg {
				t.clearPending(lpa)
			}
		})
	}
	t.refcache.invalidateAll()
	t.cohorts[id] = nil
}

// ensureFree keeps the free pool above the watermarks, running Algorithm 1
// GC passes and, if space cannot otherwise be found, shortening the window
// down to (but never past) the minimum retention bound. Like the regular
// FTL, reclamation is incremental — a triggering write pays for at most a
// couple of passes unless the pool is nearly exhausted — so the cost of
// retaining history spreads across requests instead of stalling one.
func (t *TimeSSD) ensureFree(at vclock.Time) (vclock.Time, error) {
	if t.FreeBlocks() > t.cfg.FTL.GCLowBlocks {
		return at, nil
	}
	limit := 4 * t.cfg.FTL.Flash.TotalBlocks()
	passes := 0
	for i := 0; t.FreeBlocks() < t.cfg.FTL.GCHighBlocks; i++ {
		if i > limit {
			return at, fmt.Errorf("timessd: GC made no progress after %d passes", limit)
		}
		// Graded budget: the deeper the pool deficit, the more passes this
		// request may pay for — a smooth ramp instead of an emergency cliff.
		budget := 2 + (t.cfg.FTL.GCLowBlocks - t.FreeBlocks())
		if t.FreeBlocks() > 2 && passes >= budget {
			break
		}
		if t.FreeBlocks() <= 2 || t.poorVictims() {
			// Space-critical or reclamation-inefficient: shed retention.
			// Dropping the oldest segment turns its delta blocks into free
			// space at pure erase cost and converts its retained data pages
			// into cheaply reclaimable garbage, avoiding stop-the-world
			// migration storms while still honouring the minimum bound.
			t.shortenWindow(at)
		}
		before := t.FreeBlocks()
		var err error
		at, err = t.collectOnce(at)
		passes++
		if err == nil {
			if t.FreeBlocks() > before {
				continue
			}
			// A pass that frees nothing net means retained data is holding
			// space hostage; fall through to window shortening.
		} else if !errors.Is(err, ftl.ErrDeviceFull) {
			return at, err
		}
		if t.shortenWindow(at) {
			continue
		}
		if t.FreeBlocks() > 0 {
			// Not at the high watermark, but writable: proceed rather than
			// fail while the minimum-retention bound forbids reclaiming.
			return at, nil
		}
		return at, ErrRetentionFull
	}
	if t.FreeBlocks() > t.cfg.FTL.GCLowBlocks && t.WearCheckDue() && t.WearImbalanced() {
		// Foreground: a single swap at most — the batch runs in idle time.
		return t.wearLevel(at, 1)
	}
	return at, nil
}

// wearLevel performs the cold-data swap of §3.8. Delta blocks are excluded
// (their chains must not break); the victim is processed like a GC victim
// so its retained invalid pages are compressed, not lost. A swap migrates
// a whole block of valid data, so it only runs with pool headroom.
func (t *TimeSSD) wearLevel(at vclock.Time, maxSwaps int) (vclock.Time, error) {
	for swaps := 0; swaps < maxSwaps && t.WearImbalanced(); swaps++ {
		if t.FreeBlocks() <= t.cfg.FTL.GCLowBlocks {
			return at, nil
		}
		cold := t.ColdBlock(func(blk int) bool { return t.Info[blk].Kind == flash.KindData })
		if cold < 0 {
			return at, nil
		}
		var err error
		at, err = t.reclaimDataBlock(cold, at)
		if err != nil {
			return at, err
		}
	}
	return at, nil
}
