package core

import (
	"errors"
	"fmt"

	"almanac/internal/bloom"
	"almanac/internal/delta"
	"almanac/internal/flash"
	"almanac/internal/ftl"
	"almanac/internal/vclock"
)

// Rebuild reconstructs a TimeSSD's entire in-core state from a flash array
// alone — the firmware's crash-recovery path. Everything the device needs
// is recoverable from what it stored on flash:
//
//   - the AMT comes from each LPA's newest data version (OOB reverse
//     mappings, write timestamps breaking ties);
//   - older data versions are re-registered as retained: their PPAs enter
//     a fresh Bloom-filter chain, so the retention window restarts at the
//     rebuild instant but no surviving history is lost;
//   - the IMT comes from scanning delta pages for each LPA's newest delta;
//   - partially-written blocks are padded closed (as firmware does after
//     power loss) and delta blocks join one legacy cohort that retires
//     with the first window segment group;
//   - grown bad blocks (every page KindBad — the on-medium retirement
//     record an erase failure leaves) are re-retired, and stray KindBad
//     pages (burned programs, power-cut torn writes) count as dead filler.
//
// Retention-clock semantics: the rebuild instant is the newest write
// timestamp found anywhere on the medium. The fresh Bloom-filter chain is
// created at that instant and every surviving invalidation is re-registered
// there, because the true invalidation times are RAM state the crash lost.
// The consequence — deliberate, and what crashsweep's equivalence check
// assumes — is that the retention window RESTARTS at the rebuild instant:
// no surviving version can expire before rebuiltAt + MinRetention, so a
// crash can only ever lengthen retention, never shorten it. The instant is
// recorded in OOB-visible metadata (a KindTranslation marker page stamped
// with rebuiltAt) so it survives further crashes even if the host never
// writes again, and is exposed via RebuiltAt.
//
// Deliberate losses, matching real FTL semantics: RAM-only delta buffers
// (their source pages are still on flash and simply count as retained
// again — GC flushes buffers before erasing their sources, so a buffered
// delta never outlives its source) and trim records (an LPA whose newest
// version survives is treated as live — crash-lost trims are standard for
// SSDs without a persistent trim journal).
func Rebuild(arr *flash.Array, cfg Config) (*TimeSSD, error) {
	b, err := ftl.NewBaseOn(arr, cfg.FTL)
	if err != nil {
		return nil, err
	}
	if cfg.CohortSegments < 1 {
		cfg.CohortSegments = 1
	}
	t := &TimeSSD{
		Base: b,
		cfg:  cfg,
		zero: make([]byte, cfg.FTL.Flash.PageSize),
		prt:  make([]bool, cfg.FTL.Flash.TotalPages()),
	}
	t.initTables()
	if err := t.initCipher(); err != nil {
		return nil, err
	}
	t.attachObs()

	fc := cfg.FTL.Flash
	ps := fc.PagesPerBlock

	// Pass 0: full OOB scan of every programmed page. Newest write
	// timestamp wins the AMT; every older data version is a retained
	// invalid page. Delta pages rebuild the IMT (newest delta per LPA).
	// The scan also finds the rebuild instant (the newest timestamp
	// anywhere on the medium) and the grown bad blocks (erase failures pin
	// a block full of KindBad pages — the on-medium retirement record).
	type head struct {
		ppa flash.PPA
		ts  vclock.Time
	}
	liveHead := map[uint64]head{}
	imtHead := map[uint64]head{}
	blockKind := make([]flash.PageKind, fc.TotalBlocks())
	blockBad := make([]bool, fc.TotalBlocks()) // full block of KindBad pages
	var rebuiltAt vclock.Time                  // newest write timestamp on the medium
	var adopted []ftl.AdoptedBlock

	for blk := 0; blk < fc.TotalBlocks(); blk++ {
		wp := arr.WritePtr(blk)
		if wp == 0 {
			continue
		}
		kind := flash.KindTranslation // downgraded below if real content found
		badPages := 0
		for off := 0; off < wp; off++ {
			ppa := arr.AddrOf(blk, off)
			data, oob, err := arr.PeekPage(ppa)
			if err != nil {
				return nil, fmt.Errorf("rebuild: scan ppa %d: %w", ppa, err)
			}
			if oob.TS > rebuiltAt {
				rebuiltAt = oob.TS
			}
			switch oob.Kind {
			case flash.KindData:
				kind = flash.KindData
				if h, ok := liveHead[oob.LPA]; !ok || oob.TS > h.ts {
					liveHead[oob.LPA] = head{ppa, oob.TS}
				}
			case flash.KindDelta:
				kind = flash.KindDelta
				ds, err := delta.UnpackPage(data)
				if err != nil {
					continue // torn delta page: its versions are lost
				}
				for _, d := range ds {
					if d.TS > rebuiltAt {
						rebuiltAt = d.TS
					}
					if h, ok := imtHead[d.LPA]; !ok || d.TS > h.ts {
						imtHead[d.LPA] = head{ppa, d.TS}
					}
				}
			case flash.KindDeltaRaw:
				kind = flash.KindDelta
				if h, ok := imtHead[oob.LPA]; !ok || oob.TS > h.ts {
					imtHead[oob.LPA] = head{ppa, oob.TS}
				}
			case flash.KindBad:
				badPages++ // burned/torn page: dead filler
			}
		}
		blockKind[blk] = kind
		// Only a full block of KindBad pages is a retirement record; a
		// partial block whose every programmed page is bad (e.g. a torn
		// first write) is just a crashed block that pads closed below.
		blockBad[blk] = wp == ps && badPages == ps
	}
	t.rebuiltAt = rebuiltAt
	t.chain = bloom.NewChain(cfg.BFCapacity, cfg.BFFalsePositive, cfg.BFGroup, rebuiltAt)
	t.chain.EnableMemo(uint64(fc.TotalPages() - 1))

	// Pass 1: close partially-written blocks. Firmware pads an open block
	// after a crash so programming can only ever resume on fresh blocks.
	// The first filler page doubles as the rebuild-instant journal: a
	// translation marker stamped rebuiltAt, so the retention clock is
	// OOB-visible to any later rebuild of this medium.
	markerDone := rebuiltAt == 0 // a virgin medium needs no journal
	for blk := 0; blk < fc.TotalBlocks(); blk++ {
		wp := arr.WritePtr(blk)
		if wp == 0 || wp == ps {
			continue
		}
		for arr.WritePtr(blk) < ps {
			filler := flash.OOB{LPA: deltaPageLPA, BackPtr: flash.NullPPA, Kind: flash.KindTranslation}
			if !markerDone {
				filler = flash.OOB{LPA: rebuildMarkerLPA, BackPtr: flash.NullPPA, TS: rebuiltAt, Kind: flash.KindTranslation}
			}
			if _, _, err := arr.Program(blk, nil, filler, 0); err != nil {
				return nil, fmt.Errorf("rebuild: padding block %d: %w", blk, err)
			}
			markerDone = true
		}
	}

	// Pass 2: validity. Only each LPA's newest data version is valid; all
	// other programmed pages are invalid (retained versions, deltas count
	// as live content of their blocks — see below — and filler is dead).
	logical := uint64(b.LogicalPages())
	for lpa, h := range liveHead {
		if lpa >= logical {
			return nil, fmt.Errorf("rebuild: flash holds lpa %d beyond logical capacity %d", lpa, logical)
		}
		b.AMT[lpa] = h.ppa
		b.PVT[h.ppa] = true
	}
	for lpa, h := range imtHead {
		if live, ok := liveHead[lpa]; ok && live.ts <= h.ts {
			return nil, fmt.Errorf("rebuild: lpa %d has a delta (ts %v) newer than its live head (ts %v)", lpa, h.ts, live.ts)
		}
		if lpa >= logical {
			continue // corrupt delta metadata for an impossible LPA: inert
		}
		t.imt[lpa] = h.ppa
	}

	legacy := t.newSegment()
	for blk := 0; blk < fc.TotalBlocks(); blk++ {
		if arr.WritePtr(blk) == 0 {
			continue
		}
		if blockBad[blk] {
			// A grown bad block's on-medium retirement record: re-retire it.
			adopted = append(adopted, ftl.AdoptedBlock{Blk: blk, Invalid: ps, Bad: true})
			continue
		}
		valid, invalid := 0, 0
		for off := 0; off < ps; off++ {
			ppa := arr.AddrOf(blk, off)
			oob, err := arr.PeekOOB(ppa)
			if err != nil {
				return nil, err
			}
			switch {
			case oob.Kind == flash.KindData && b.PVT[ppa]:
				valid++
			case oob.Kind == flash.KindData:
				// A retained version: re-register its invalidation so the
				// fresh window covers it (time of invalidation unknown →
				// conservatively "now", i.e. the rebuild instant).
				invalid++
				t.chain.Invalidate(uint64(ppa), rebuiltAt)
				t.st.Invalidations++
			case oob.Kind == flash.KindDelta || oob.Kind == flash.KindDeltaRaw:
				// Delta content is live until its cohort retires.
				b.PVT[ppa] = true
				valid++
			default: // filler padding, burned/torn pages
				invalid++
			}
		}
		adopted = append(adopted, ftl.AdoptedBlock{Blk: blk, Kind: blockKind[blk], Valid: valid, Invalid: invalid})
		if blockKind[blk] == flash.KindDelta {
			legacy.blocks = append(legacy.blocks, blk)
		}
	}
	if err := b.Adopt(adopted); err != nil {
		return nil, err
	}
	if len(legacy.blocks) > 0 {
		if len(t.cohorts) == 0 {
			t.cohorts = append(t.cohorts, nil)
		}
		t.cohorts[0] = legacy
	}
	// If every block was full (no padding page carried the journal), write
	// the rebuild-instant marker as an immediately-invalidated filler page
	// on the host frontier: OOB-visible, PVT-clean, reclaimable like any
	// other dead page. Best-effort — a completely full device cannot
	// journal, and a single rebuild needs no marker to be correct.
	if !markerDone {
		oob := flash.OOB{LPA: rebuildMarkerLPA, BackPtr: flash.NullPPA, TS: rebuiltAt, Kind: flash.KindTranslation}
		ppa, _, err := b.AppendPage(b.HostFrontier(), flash.KindData, nil, oob, rebuiltAt)
		switch {
		case err == nil:
			b.InvalidatePPA(ppa)
		case !errors.Is(err, ftl.ErrDeviceFull):
			return nil, fmt.Errorf("rebuild: journaling rebuild instant: %w", err)
		}
	}
	return t, nil
}
