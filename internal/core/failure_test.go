package core

import (
	"errors"
	"testing"

	"almanac/internal/flash"
	"almanac/internal/vclock"
)

// TestReadFailureOnLiveHead: an uncorrectable error on the current version
// surfaces to the host as an error; the device stays consistent and other
// pages remain readable.
func TestReadFailureOnLiveHead(t *testing.T) {
	d := newTiny(t, nil)
	at, err := d.Write(1, versionPage(d, 1, 0), vclock.Time(vclock.Second))
	if err != nil {
		t.Fatal(err)
	}
	at, err = d.Write(2, versionPage(d, 2, 0), at.Add(vclock.Second))
	if err != nil {
		t.Fatal(err)
	}
	d.Arr.FailReads(d.AMT[1], 1)
	if _, _, err := d.Read(1, at); !errors.Is(err, flash.ErrReadFailed) {
		t.Fatalf("expected injected failure, got %v", err)
	}
	// One-shot: the next read succeeds; neighbours unaffected.
	if _, _, err := d.Read(1, at); err != nil {
		t.Fatalf("read after transient failure: %v", err)
	}
	if _, _, err := d.Read(2, at); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReadFailureMidChain: a dead retained version truncates the history
// walk cleanly instead of erroring the whole query.
func TestReadFailureMidChain(t *testing.T) {
	d := newTiny(t, nil)
	at := vclock.Time(0)
	var heads []flash.PPA
	for i := 0; i < 4; i++ {
		at = at.Add(vclock.Second)
		done, err := d.Write(7, versionPage(d, 7, i), at)
		if err != nil {
			t.Fatal(err)
		}
		heads = append(heads, d.AMT[7])
		at = done
	}
	// Permanently kill version index 1 (the second oldest).
	d.Arr.FailReads(heads[1], 1<<30)
	vers, _, err := d.Versions(7, at)
	if err != nil {
		t.Fatal(err)
	}
	// Walk reaches versions 3 and 2, then stops at the dead page.
	if len(vers) != 2 {
		t.Fatalf("got %d versions, want 2 (walk truncated at the failure)", len(vers))
	}
	if !vers[0].Live || vers[1].Live {
		t.Fatal("wrong liveness in truncated walk")
	}
}

// TestReadFailureDuringGC: GC must survive an unrecoverable retained page
// (history lost, device alive) and an unrecoverable valid page (data lost,
// device alive).
func TestReadFailureDuringGC(t *testing.T) {
	d := newTiny(t, nil)
	at := vclock.Time(0)
	// Two versions so GC has a retained page; plus filler to seal blocks.
	var oldHead flash.PPA
	for i := 0; i < 2; i++ {
		at = at.Add(vclock.Second)
		done, err := d.Write(3, versionPage(d, 3, i), at)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			oldHead = d.AMT[3]
		}
		at = done
	}
	for f := 0; f < 4*d.cfg.FTL.Flash.PagesPerBlock; f++ {
		at = at.Add(vclock.Second)
		done, err := d.Write(uint64(50+f%30), versionPage(d, uint64(50+f%30), f), at)
		if err != nil {
			t.Fatal(err)
		}
		at = done
	}
	// Kill the retained version and the live head of another page, then
	// force reclamation of every sealed block.
	d.Arr.FailReads(oldHead, 1<<30)
	d.Arr.FailReads(d.AMT[50], 1<<30)
	for i := 0; i < d.cfg.FTL.Flash.TotalBlocks(); i++ {
		victim := d.bestVictim()
		if victim < 0 {
			break
		}
		var err error
		at, err = d.reclaimDataBlock(victim, at)
		if err != nil {
			t.Fatalf("GC wedged on injected failure: %v", err)
		}
	}
	if d.ReadFailures == 0 {
		t.Fatal("no read failures were recorded")
	}
	// The device keeps serving.
	if _, err := d.Write(9, versionPage(d, 9, 0), at.Add(vclock.Second)); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
