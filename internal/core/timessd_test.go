package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"almanac/internal/flash"
	"almanac/internal/ftl"
	"almanac/internal/vclock"
)

// tinyConfig builds a small device: 2 channels × 16 blocks × 8 pages ×
// 128 B. Small enough for exhaustive checks, deep enough for GC pressure.
func tinyConfig() Config {
	fc := flash.DefaultConfig()
	fc.Channels = 2
	fc.ChipsPerChannel = 1
	fc.BlocksPerPlane = 16
	fc.PagesPerBlock = 8
	fc.PageSize = 128
	cfg := DefaultConfig(ftl.WithFlash(fc))
	cfg.MinRetention = 0 // tests control retention explicitly
	cfg.BFCapacity = 64
	cfg.BFGroup = 1
	cfg.NFixed = 256
	return cfg
}

func newTiny(t *testing.T, mutate func(*Config)) *TimeSSD {
	t.Helper()
	cfg := tinyConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// versionPage builds page content for (lpa, seq) with high content locality
// between consecutive seqs: only the header and a small window change.
func versionPage(d *TimeSSD, lpa uint64, seq int) []byte {
	p := make([]byte, d.PageSize())
	for i := range p {
		p[i] = byte(lpa)
	}
	p[0] = byte(seq)
	p[1] = byte(seq >> 8)
	off := 8 + (seq*7)%32
	p[off] = byte(seq * 13)
	return p
}

func TestWriteReadVersions(t *testing.T) {
	d := newTiny(t, nil)
	var at vclock.Time
	var stamps []vclock.Time
	for seq := 0; seq < 5; seq++ {
		at = at.Add(vclock.Second)
		done, err := d.Write(3, versionPage(d, 3, seq), at)
		if err != nil {
			t.Fatal(err)
		}
		stamps = append(stamps, at)
		at = done
	}
	vers, _, err := d.Versions(3, at)
	if err != nil {
		t.Fatal(err)
	}
	if len(vers) != 5 {
		t.Fatalf("got %d versions, want 5", len(vers))
	}
	if !vers[0].Live {
		t.Fatal("newest version not marked live")
	}
	for i, v := range vers {
		seq := 4 - i
		if v.TS != stamps[seq] {
			t.Fatalf("version %d TS %v, want %v", i, v.TS, stamps[seq])
		}
		if !bytes.Equal(v.Data, versionPage(d, 3, seq)) {
			t.Fatalf("version %d content mismatch", i)
		}
	}
}

func TestVersionAtSemantics(t *testing.T) {
	d := newTiny(t, nil)
	times := []vclock.Time{100, 200, 300}
	for seq, ts := range times {
		if _, err := d.Write(1, versionPage(d, 1, seq), ts); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		when vclock.Time
		seq  int // -1 = no content
	}{
		{50, -1}, {100, 0}, {150, 0}, {200, 1}, {250, 1}, {300, 2}, {999, 2},
	}
	for _, c := range cases {
		v, _, err := d.VersionAt(1, c.when, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if c.seq < 0 {
			if v != nil {
				t.Fatalf("VersionAt(%d) = %v, want none", c.when, v.TS)
			}
			continue
		}
		if v == nil {
			t.Fatalf("VersionAt(%d) = none, want seq %d", c.when, c.seq)
		}
		if !bytes.Equal(v.Data, versionPage(d, 1, c.seq)) {
			t.Fatalf("VersionAt(%d): wrong content", c.when)
		}
	}
}

func TestRollBack(t *testing.T) {
	d := newTiny(t, nil)
	d.Write(2, versionPage(d, 2, 0), 100)
	d.Write(2, versionPage(d, 2, 1), 200)
	done, err := d.RollBack(2, 150, 1000)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := d.Read(2, done)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, versionPage(d, 2, 0)) {
		t.Fatal("rollback did not restore version 0")
	}
	// The rolled-over state (version 1) must itself remain recoverable:
	// rollback is a write, not an erasure (§3.9).
	vers, _, err := d.Versions(2, done)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range vers {
		if bytes.Equal(v.Data, versionPage(d, 2, 1)) {
			found = true
		}
	}
	if !found {
		t.Fatal("version 1 lost after rollback")
	}
}

func TestTrimRetainsAndRecovers(t *testing.T) {
	d := newTiny(t, nil)
	d.Write(4, versionPage(d, 4, 0), 100)
	if _, err := d.Trim(4, 200); err != nil {
		t.Fatal(err)
	}
	// Current read is zero.
	data, _, _ := d.Read(4, 300)
	if data[0] != 0 {
		t.Fatal("trimmed page reads non-zero")
	}
	// History survives the trim.
	vers, _, err := d.Versions(4, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(vers) != 1 || !bytes.Equal(vers[0].Data, versionPage(d, 4, 0)) {
		t.Fatalf("trimmed version not retrievable: %d versions", len(vers))
	}
	// Roll back to before the trim.
	done, err := d.RollBack(4, 150, 400)
	if err != nil {
		t.Fatal(err)
	}
	data, _, _ = d.Read(4, done)
	if !bytes.Equal(data, versionPage(d, 4, 0)) {
		t.Fatal("rollback after trim failed")
	}
}

func TestWriteAfterTrimPreservesLineage(t *testing.T) {
	d := newTiny(t, nil)
	d.Write(6, versionPage(d, 6, 0), 100)
	d.Trim(6, 200)
	d.Write(6, versionPage(d, 6, 1), 300)
	vers, _, err := d.Versions(6, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(vers) != 2 {
		t.Fatalf("lineage across trim: %d versions, want 2", len(vers))
	}
	if !bytes.Equal(vers[1].Data, versionPage(d, 6, 0)) {
		t.Fatal("pre-trim version lost")
	}
}

// TestHistoryModelUnderGC is the central property test: under heavy random
// overwrite pressure (several device-capacities of writes, GC and delta
// compression constantly active), every version whose invalidation time is
// inside the retention window must be retrievable and byte-exact, and
// everything retrieved must be a version that was actually written.
func TestHistoryModelUnderGC(t *testing.T) {
	d := newTiny(t, nil)
	rng := rand.New(rand.NewSource(42))
	logical := d.LogicalPages() / 2
	type rec struct {
		ts      vclock.Time
		seq     int
		invalid vclock.Time // when superseded; 0 = still live
	}
	hist := make(map[uint64][]rec)
	at := vclock.Time(0)
	seq := 0
	writes := d.cfg.FTL.Flash.TotalPages() * 5
	for i := 0; i < writes; i++ {
		at = at.Add(vclock.Second)
		lpa := uint64(rng.Intn(logical))
		done, err := d.Write(lpa, versionPage(d, lpa, seq), at)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		h := hist[lpa]
		if len(h) > 0 {
			h[len(h)-1].invalid = at
		}
		hist[lpa] = append(h, rec{ts: at, seq: seq})
		seq++
		at = done
	}
	if d.GC.Runs == 0 {
		t.Fatal("GC never ran")
	}
	if d.st.DeltasCreated == 0 {
		t.Fatal("no deltas were ever created")
	}
	window := d.RetentionWindowStart()

	checked, recovered := 0, 0
	for lpa, h := range hist {
		vers, _, err := d.Versions(lpa, at)
		if err != nil {
			t.Fatalf("versions(%d): %v", lpa, err)
		}
		byTS := make(map[vclock.Time][]byte, len(vers))
		for _, v := range vers {
			byTS[v.TS] = v.Data
		}
		// Soundness: everything retrieved matches a real write.
		wrote := make(map[vclock.Time]int, len(h))
		for _, r := range h {
			wrote[r.ts] = r.seq
		}
		for _, v := range vers {
			s, ok := wrote[v.TS]
			if !ok {
				t.Fatalf("lpa %d: phantom version at %v", lpa, v.TS)
			}
			if !bytes.Equal(v.Data, versionPage(d, lpa, s)) {
				t.Fatalf("lpa %d: version %v content corrupt", lpa, v.TS)
			}
		}
		// Completeness: every version invalidated inside the window (plus
		// the live head) must be present.
		for _, r := range h {
			live := r.invalid == 0
			// An invalidation at exactly the window start was recorded in
			// the dropped filter (it is what sealed it), so the window
			// covers invalidations strictly after its start.
			if !live && r.invalid <= window {
				continue // legitimately expired
			}
			checked++
			got, ok := byTS[r.ts]
			if !ok {
				t.Fatalf("lpa %d: version ts=%v (invalidated %v, window start %v, live=%v) missing",
					lpa, r.ts, r.invalid, window, live)
			}
			if !bytes.Equal(got, versionPage(d, lpa, r.seq)) {
				t.Fatalf("lpa %d: version ts=%v corrupt", lpa, r.ts)
			}
			recovered++
		}
	}
	if checked == 0 {
		t.Fatal("model check exercised nothing")
	}
	t.Logf("recovered %d/%d in-window versions; %d deltas; %d window drops; %d segments",
		recovered, checked, d.st.DeltasCreated, d.st.WindowDrops, d.Segments())
}

// TestReadYourWrites checks current-state linearisability under mixed ops.
func TestReadYourWrites(t *testing.T) {
	d := newTiny(t, nil)
	rng := rand.New(rand.NewSource(9))
	logical := d.LogicalPages() * 3 / 4
	model := make(map[uint64]int)
	at := vclock.Time(0)
	seq := 1
	for i := 0; i < 5000; i++ {
		at = at.Add(100 * vclock.Millisecond)
		lpa := uint64(rng.Intn(logical))
		switch rng.Intn(10) {
		case 0:
			var err error
			at, err = d.Trim(lpa, at)
			if err != nil {
				t.Fatal(err)
			}
			delete(model, lpa)
		case 1, 2:
			data, _, err := d.Read(lpa, at)
			if err != nil {
				t.Fatal(err)
			}
			if s, ok := model[lpa]; ok {
				if !bytes.Equal(data, versionPage(d, lpa, s)) {
					t.Fatalf("step %d: lpa %d stale", i, lpa)
				}
			} else if data[0] != 0 {
				t.Fatalf("step %d: deleted lpa %d non-zero", i, lpa)
			}
		default:
			done, err := d.Write(lpa, versionPage(d, lpa, seq), at)
			if err != nil {
				t.Fatal(err)
			}
			model[lpa] = seq
			seq++
			at = done
		}
	}
}

func TestRetentionWindowAdapts(t *testing.T) {
	d := newTiny(t, func(c *Config) {
		c.BFCapacity = 16 // many short segments
	})
	rng := rand.New(rand.NewSource(5))
	logical := d.LogicalPages() * 4 / 5 // high utilisation forces pressure
	at := vclock.Time(0)
	for i := 0; i < d.cfg.FTL.Flash.TotalPages()*6; i++ {
		at = at.Add(vclock.Second)
		done, err := d.Write(uint64(rng.Intn(logical)), versionPage(d, 0, i), at)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		at = done
	}
	if d.st.WindowDrops == 0 {
		t.Fatal("window never shortened under sustained pressure")
	}
	if d.RetentionWindowStart() == 0 {
		t.Fatal("window start never advanced")
	}
}

func TestRetentionFullStopsIO(t *testing.T) {
	d := newTiny(t, func(c *Config) {
		c.MinRetention = 365 * vclock.Day // nothing may ever expire
	})
	rng := rand.New(rand.NewSource(6))
	logical := d.LogicalPages() * 4 / 5
	at := vclock.Time(0)
	var sawFull bool
	for i := 0; i < d.cfg.FTL.Flash.TotalPages()*6; i++ {
		at = at.Add(vclock.Second)
		done, err := d.Write(uint64(rng.Intn(logical)), versionPage(d, 0, i), at)
		if err != nil {
			if errors.Is(err, ErrRetentionFull) {
				sawFull = true
				break
			}
			t.Fatalf("write %d: unexpected error %v", i, err)
		}
		at = done
	}
	if !sawFull {
		t.Fatal("device never enforced the retention guarantee by stopping I/O")
	}
}

func TestMinRetentionBoundsDrops(t *testing.T) {
	// With a 1-hour minimum and writes spaced a second apart, any window
	// drop must leave at least an hour of history.
	d := newTiny(t, func(c *Config) {
		c.MinRetention = vclock.Hour
		c.BFCapacity = 16
	})
	rng := rand.New(rand.NewSource(7))
	logical := d.LogicalPages() / 2
	at := vclock.Time(0)
	for i := 0; i < d.cfg.FTL.Flash.TotalPages()*6; i++ {
		at = at.Add(vclock.Second)
		done, err := d.Write(uint64(rng.Intn(logical)), versionPage(d, 0, i), at)
		if err != nil {
			if errors.Is(err, ErrRetentionFull) {
				break
			}
			t.Fatal(err)
		}
		at = done
		if d.st.WindowDrops > 0 {
			if w := d.RetentionDuration(at); w < vclock.Hour {
				t.Fatalf("window %v below the 1h minimum after a drop", w)
			}
		}
	}
}

func TestIdleCompression(t *testing.T) {
	// A long minimum retention keeps the proactive shedder from expiring
	// the history before the compression pass can get to it.
	d := newTiny(t, func(c *Config) { c.MinRetention = 30 * vclock.Day })
	at := vclock.Time(0)
	// Build up invalid versions.
	for i := 0; i < 200; i++ {
		at = at.Add(vclock.Second)
		done, err := d.Write(uint64(i%20), versionPage(d, uint64(i%20), i), at)
		if err != nil {
			t.Fatal(err)
		}
		at = done
	}
	// Warm the predictor with long gaps, then grant an idle period.
	d.observeArrival(at.Add(vclock.Second))
	d.Idle(at.Add(vclock.Second), at.Add(10*vclock.Second))
	if d.st.IdleCompressions == 0 {
		t.Fatal("idle cycle compressed nothing")
	}
	// History must survive background compression.
	vers, _, err := d.Versions(5, at.Add(20*vclock.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(vers) < 2 {
		t.Fatalf("history lost after idle compression: %d versions", len(vers))
	}
	for _, v := range vers {
		if !bytes.Equal(v.Data, versionPage(d, 5, int(v.Data[0])|int(v.Data[1])<<8)) {
			t.Fatal("version corrupted by idle compression")
		}
	}
}

func TestIdleCompressionDisabled(t *testing.T) {
	d := newTiny(t, func(c *Config) { c.DisableIdleCompression = true })
	at := vclock.Time(0)
	for i := 0; i < 100; i++ {
		at = at.Add(vclock.Second)
		done, err := d.Write(uint64(i%10), versionPage(d, uint64(i%10), i), at)
		if err != nil {
			t.Fatal(err)
		}
		at = done
	}
	d.observeArrival(at.Add(vclock.Second))
	d.Idle(at.Add(vclock.Second), at.Add(vclock.Minute))
	if d.st.IdleCompressions != 0 {
		t.Fatal("disabled idle compression still ran")
	}
}

func TestDisableCompressionStillRetains(t *testing.T) {
	d := newTiny(t, func(c *Config) { c.DisableCompression = true })
	rng := rand.New(rand.NewSource(8))
	logical := d.LogicalPages() / 2
	type rec struct {
		ts  vclock.Time
		seq int
	}
	last := make(map[uint64][]rec)
	at := vclock.Time(0)
	for i := 0; i < d.cfg.FTL.Flash.TotalPages()*4; i++ {
		at = at.Add(vclock.Second)
		lpa := uint64(rng.Intn(logical))
		done, err := d.Write(lpa, versionPage(d, lpa, i), at)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		last[lpa] = append(last[lpa], rec{at, i})
		at = done
	}
	if d.st.DeltasCreated != 0 {
		t.Fatal("compression disabled but deltas created")
	}
	// Spot-check retrievability of recent history.
	window := d.RetentionWindowStart()
	for lpa, h := range last {
		vers, _, err := d.Versions(lpa, at)
		if err != nil {
			t.Fatal(err)
		}
		byTS := map[vclock.Time]bool{}
		for _, v := range vers {
			byTS[v.TS] = true
		}
		for i, r := range h {
			inval := vclock.Time(0)
			if i+1 < len(h) {
				inval = h[i+1].ts
			}
			if inval != 0 && inval <= window {
				continue
			}
			if !byTS[r.ts] {
				t.Fatalf("lpa %d: version %v missing with compression disabled", lpa, r.ts)
			}
		}
	}
}

func TestUpdatedBetween(t *testing.T) {
	d := newTiny(t, nil)
	d.Write(1, versionPage(d, 1, 0), 100)
	d.Write(2, versionPage(d, 2, 0), 200)
	d.Write(1, versionPage(d, 1, 1), 300)
	recs, _, err := d.UpdatedBetween(150, 250, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LPA != 2 {
		t.Fatalf("UpdatedBetween(150,250) = %+v", recs)
	}
	recs, _, _ = d.UpdatedBetween(0, 1000, 1000)
	if len(recs) != 2 {
		t.Fatalf("full-range query found %d LPAs", len(recs))
	}
	for _, r := range recs {
		if r.LPA == 1 && len(r.Times) != 2 {
			t.Fatalf("LPA 1 has %d timestamps, want 2", len(r.Times))
		}
	}
}

func TestRollBackAll(t *testing.T) {
	d := newTiny(t, nil)
	for lpa := uint64(0); lpa < 8; lpa++ {
		d.Write(lpa, versionPage(d, lpa, 0), vclock.Time(100+lpa))
	}
	for lpa := uint64(0); lpa < 8; lpa++ {
		d.Write(lpa, versionPage(d, lpa, 1), vclock.Time(1000+lpa))
	}
	// LPA 9 created only after the rollback point: must vanish.
	d.Write(9, versionPage(d, 9, 2), 2000)
	n, done, err := d.RollBackAll(500, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("rolled back %d pages, want 9", n)
	}
	for lpa := uint64(0); lpa < 8; lpa++ {
		data, _, _ := d.Read(lpa, done)
		if !bytes.Equal(data, versionPage(d, lpa, 0)) {
			t.Fatalf("lpa %d not restored", lpa)
		}
	}
	data, _, _ := d.Read(9, done)
	if data[0] != 0 {
		t.Fatal("lpa 9 should have been trimmed by rollback")
	}
}

func TestEstimatorTrips(t *testing.T) {
	d := newTiny(t, func(c *Config) {
		c.TH = 0.0001 // any GC work at all trips the estimator
		c.BFCapacity = 16
		c.NFixed = 64
	})
	rng := rand.New(rand.NewSource(10))
	logical := d.LogicalPages() * 4 / 5
	at := vclock.Time(0)
	for i := 0; i < d.cfg.FTL.Flash.TotalPages()*4; i++ {
		at = at.Add(vclock.Second)
		done, err := d.Write(uint64(rng.Intn(logical)), versionPage(d, 0, i), at)
		if err != nil {
			t.Fatal(err)
		}
		at = done
	}
	if d.st.EstimatorChecks == 0 || d.st.EstimatorTrips == 0 {
		t.Fatalf("estimator never engaged: checks=%d trips=%d",
			d.st.EstimatorChecks, d.st.EstimatorTrips)
	}
}

func TestFlushDeltas(t *testing.T) {
	d := newTiny(t, nil)
	rng := rand.New(rand.NewSource(11))
	at := vclock.Time(0)
	for i := 0; i < d.cfg.FTL.Flash.TotalPages()*3; i++ {
		at = at.Add(vclock.Second)
		done, err := d.Write(uint64(rng.Intn(20)), versionPage(d, 0, i), at)
		if err != nil {
			t.Fatal(err)
		}
		at = done
	}
	if _, err := d.FlushDeltas(at); err != nil {
		t.Fatal(err)
	}
	livePending := 0
	for _, p := range d.pending {
		if p.d != nil {
			livePending++
		}
	}
	if livePending != 0 {
		t.Fatalf("%d pending deltas after flush", livePending)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.NFixed = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("NFixed=0 accepted")
	}
	cfg = tinyConfig()
	cfg.TH = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("TH=0 accepted")
	}
	cfg = tinyConfig()
	cfg.MinRetention = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative retention accepted")
	}
}
