package core

import (
	"testing"

	"almanac/internal/ftl"
)

// FuzzParseConfig drives the canonical config decoder with arbitrary
// text. Invariants: no panic, and for any accepted input the encoding is
// a fixed point — String re-parses to a config with the identical
// encoding. Sweep checkpoints and SWEEP_N.json rows key results by this
// encoding, so the fixed point is what makes resume-across-binaries
// sound.
func FuzzParseConfig(f *testing.F) {
	f.Add(DefaultConfig(ftl.DefaultParams()).String())
	f.Add(Config{}.String())
	f.Add("channels=1")
	f.Add("channels=1 channels=2")
	f.Add("key=zz")
	f.Add("minret=1h30m th=0.25")
	f.Fuzz(func(t *testing.T, text string) {
		c, err := ParseConfig(text)
		if err != nil {
			return
		}
		s := c.String()
		q, err := ParseConfig(s)
		if err != nil {
			t.Fatalf("String output does not re-parse: %v\noutput: %q", err, s)
		}
		if q.String() != s {
			t.Fatalf("String not a fixed point:\n%q\nvs\n%q", s, q.String())
		}
	})
}
