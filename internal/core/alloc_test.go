package core

import (
	"testing"

	"almanac/internal/invariant"
	"almanac/internal/vclock"
)

// TestReadAllocs pins the steady-state zero-allocation contract of the host
// read path: once the mapping is warm, Read must serve the live version
// without touching the heap.
func TestReadAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("almanacdebug shadow assertions allocate")
	}
	d := newTiny(t, nil)
	at := vclock.Time(0)
	const pages = 8
	for lpa := uint64(0); lpa < pages; lpa++ {
		at = at.Add(vclock.Second)
		done, err := d.Write(lpa, versionPage(d, lpa, 0), at)
		if err != nil {
			t.Fatal(err)
		}
		at = done
	}
	lpa := uint64(0)
	n := testing.AllocsPerRun(100, func() {
		if _, _, err := d.Read(lpa, at); err != nil {
			t.Fatal(err)
		}
		lpa = (lpa + 1) % pages
	})
	if n != 0 {
		t.Fatalf("Read allocates %.2f times per call in steady state, want 0", n)
	}
}
