package core

import (
	"testing"

	"almanac/internal/invariant"
	"almanac/internal/vclock"
)

// TestReadAllocs pins the steady-state zero-allocation contract of the host
// read path: once the mapping is warm, Read must serve the live version
// without touching the heap.
func TestReadAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("almanacdebug shadow assertions allocate")
	}
	d := newTiny(t, nil)
	at := vclock.Time(0)
	const pages = 8
	for lpa := uint64(0); lpa < pages; lpa++ {
		at = at.Add(vclock.Second)
		done, err := d.Write(lpa, versionPage(d, lpa, 0), at)
		if err != nil {
			t.Fatal(err)
		}
		at = done
	}
	lpa := uint64(0)
	n := testing.AllocsPerRun(100, func() {
		if _, _, err := d.Read(lpa, at); err != nil {
			t.Fatal(err)
		}
		lpa = (lpa + 1) % pages
	})
	if n != 0 {
		t.Fatalf("Read allocates %.2f times per call in steady state, want 0", n)
	}
}

// TestVersionsAllocs pins the steady-state allocation budget of the version
// query path at exactly one allocation per call: the returned []Version
// slice, which the API contract hands to the caller. Version.Data entries
// alias device storage (see Versions), so the payload bytes cost nothing.
func TestVersionsAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("almanacdebug shadow assertions allocate")
	}
	d := newTiny(t, nil)
	at := vclock.Time(0)
	const pages = 8
	for round := 0; round < 4; round++ {
		for lpa := uint64(0); lpa < pages; lpa++ {
			at = at.Add(vclock.Second)
			done, err := d.Write(lpa, versionPage(d, lpa, round), at)
			if err != nil {
				t.Fatal(err)
			}
			at = done
		}
	}
	lpa := uint64(0)
	n := testing.AllocsPerRun(200, func() {
		if _, _, err := d.Versions(lpa, at); err != nil {
			t.Fatal(err)
		}
		lpa = (lpa + 1) % pages
	})
	if n > 1 {
		t.Fatalf("Versions allocates %.2f times per call in steady state, want <= 1 (the result slice)", n)
	}
}

// TestRefCacheSteadyStateAllocs pins the decoded-version cache at zero
// heap traffic once warm: hits touch nothing, and an eviction-refill cycle
// with same-sized payloads reuses the evicted entry's buffer capacity, its
// arena slot (via the free list), and the byKey map's deleted cells.
func TestRefCacheSteadyStateAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("almanacdebug shadow assertions allocate")
	}
	c := newRefCache(4, 64)
	buf := make([]byte, 512)
	for i := uint64(0); i < 4; i++ {
		c.put(i, vclock.Time(i), buf)
	}
	i := uint64(0)
	n := testing.AllocsPerRun(200, func() {
		if got := c.get(i, vclock.Time(i)); got == nil {
			t.Fatal("unexpected miss on warm cache")
		}
		i = (i + 1) % 4
	})
	if n != 0 {
		t.Fatalf("warm refcache hit allocates %.2f times per call, want 0", n)
	}
	j := uint64(0)
	n = testing.AllocsPerRun(200, func() {
		c.put(8+j, vclock.Time(j), buf)
		j = (j + 1) % 8
	})
	if n != 0 {
		t.Fatalf("refcache eviction cycle allocates %.2f times per put, want 0", n)
	}
}
