package core

import (
	"almanac/internal/vclock"
)

// refCache is a bounded LRU of decoded retained versions keyed by
// (LPA, write timestamp). Version walks re-decode the same delta chains on
// every query (§3.7 walks are newest-first, and a page's older versions
// reappear in every Versions/VersionAt call that reaches them); the cache
// skips the host-side work of a repeat decode — LZF decompression, XOR
// reconstruction, and retained-data decryption — while the walk still issues
// every flash read and still charges the firmware's delta-decode cost, so
// virtual-time results are identical with the cache on, off, or cold.
//
// A (LPA, TS) pair names immutable content while the version is retrievable;
// the entry is dropped anyway on every event that could retire or replace
// the version (host write and trim of the LPA, rollback — which is writes
// and trims, window shortening, cohort retirement). Rebuild builds a fresh
// device and therefore starts cold by construction.
//
// Storage is a fixed slot arena threaded by intrusive index lists rather
// than container/list + maps: the write path calls invalidateLPA on every
// host write, and the flat per-LPA chain heads make the common no-entries
// case a single slice load instead of a map probe. Evicted and invalidated
// slots keep their data capacity, so a warm cache re-fills without
// allocating. The cache is per-device host-side state, like the tables of
// the FTL model: devices are single-goroutine, so no locking.
type refCache struct {
	slots   int
	byKey   map[refKey]int32
	entries []refEntry // fixed arena of `slots` entries
	lpaHead []int32    // per-LPA chain head (index into entries, -1 = none)

	freeHead         int32 // free-slot list threaded through refEntry.next
	lruHead, lruTail int32 // most / least recently used
	n                int

	hits, misses, evictions int64
}

type refKey struct {
	lpa uint64
	ts  vclock.Time
}

type refEntry struct {
	key  refKey
	data []byte // cache-owned copy of the decoded version

	prev, next       int32 // LRU neighbors (-1 = list end); next doubles as the free link
	lpaPrev, lpaNext int32 // same-LPA chain neighbors (-1 = end)
}

// newRefCache returns a cache holding at most slots decoded versions for a
// device with logicalPages host pages, or nil (fully disabled) when
// slots <= 0.
func newRefCache(slots, logicalPages int) *refCache {
	if slots <= 0 {
		return nil
	}
	c := &refCache{
		slots:   slots,
		byKey:   make(map[refKey]int32, slots),
		entries: make([]refEntry, slots),
		lpaHead: make([]int32, logicalPages),
		lruHead: -1,
		lruTail: -1,
	}
	for i := range c.entries {
		c.entries[i].next = int32(i + 1)
	}
	c.entries[slots-1].next = -1
	for i := range c.lpaHead {
		c.lpaHead[i] = -1
	}
	return c
}

func (c *refCache) lruUnlink(i int32) {
	e := &c.entries[i]
	if e.prev != -1 {
		c.entries[e.prev].next = e.next
	} else {
		c.lruHead = e.next
	}
	if e.next != -1 {
		c.entries[e.next].prev = e.prev
	} else {
		c.lruTail = e.prev
	}
}

func (c *refCache) lruPushFront(i int32) {
	e := &c.entries[i]
	e.prev = -1
	e.next = c.lruHead
	if c.lruHead != -1 {
		c.entries[c.lruHead].prev = i
	}
	c.lruHead = i
	if c.lruTail == -1 {
		c.lruTail = i
	}
}

// detachLPA unlinks entry i from its LPA's chain.
func (c *refCache) detachLPA(i int32) {
	e := &c.entries[i]
	if e.lpaPrev != -1 {
		c.entries[e.lpaPrev].lpaNext = e.lpaNext
	} else {
		c.lpaHead[e.key.lpa] = e.lpaNext
	}
	if e.lpaNext != -1 {
		c.entries[e.lpaNext].lpaPrev = e.lpaPrev
	}
}

// get returns the cached decode of version (lpa, ts), or nil. The returned
// slice is the cache's own copy: callers must not mutate it.
func (c *refCache) get(lpa uint64, ts vclock.Time) []byte {
	if c == nil {
		return nil
	}
	i, ok := c.byKey[refKey{lpa, ts}]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	if c.lruHead != i {
		c.lruUnlink(i)
		c.lruPushFront(i)
	}
	return c.entries[i].data
}

// put stores a copy of data as the decode of version (lpa, ts), evicting
// the least recently used entry if the cache is full.
func (c *refCache) put(lpa uint64, ts vclock.Time, data []byte) {
	if c == nil {
		return
	}
	key := refKey{lpa, ts}
	if i, ok := c.byKey[key]; ok {
		if c.lruHead != i {
			c.lruUnlink(i)
			c.lruPushFront(i)
		}
		return // content for a live key is immutable; nothing to refresh
	}
	var i int32
	if c.freeHead != -1 {
		i = c.freeHead
		c.freeHead = c.entries[i].next
	} else {
		i = c.lruTail
		c.lruUnlink(i)
		c.detachLPA(i)
		delete(c.byKey, c.entries[i].key)
		c.evictions++
		c.n--
	}
	e := &c.entries[i]
	e.key = key
	e.data = append(e.data[:0], data...)
	c.byKey[key] = i
	c.lruPushFront(i)
	e.lpaPrev = -1
	e.lpaNext = c.lpaHead[lpa]
	if e.lpaNext != -1 {
		c.entries[e.lpaNext].lpaPrev = i
	}
	c.lpaHead[lpa] = i
	c.n++
}

// invalidateLPA drops every cached version of lpa (host write, trim, and
// the writes/trims a rollback issues).
func (c *refCache) invalidateLPA(lpa uint64) {
	if c == nil {
		return
	}
	for i := c.lpaHead[lpa]; i != -1; {
		next := c.entries[i].lpaNext
		c.lruUnlink(i)
		delete(c.byKey, c.entries[i].key)
		c.entries[i].next = c.freeHead
		c.freeHead = i
		c.n--
		i = next
	}
	c.lpaHead[lpa] = -1
}

// invalidateAll empties the cache (window shortening and cohort
// retirement may expire versions of any LPA). O(live entries).
func (c *refCache) invalidateAll() {
	if c == nil {
		return
	}
	for i := c.lruHead; i != -1; {
		next := c.entries[i].next
		c.lpaHead[c.entries[i].key.lpa] = -1
		c.entries[i].next = c.freeHead
		c.freeHead = i
		i = next
	}
	clear(c.byKey)
	c.lruHead, c.lruTail = -1, -1
	c.n = 0
}

// lpaCount reports the number of cached versions of lpa.
func (c *refCache) lpaCount(lpa uint64) int {
	if c == nil {
		return 0
	}
	n := 0
	for i := c.lpaHead[lpa]; i != -1; i = c.entries[i].lpaNext {
		n++
	}
	return n
}

// len reports the number of cached versions.
func (c *refCache) len() int {
	if c == nil {
		return 0
	}
	return c.n
}
