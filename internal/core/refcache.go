package core

import (
	"container/list"

	"almanac/internal/vclock"
)

// refCache is a bounded LRU of decoded retained versions keyed by
// (LPA, write timestamp). Version walks re-decode the same delta chains on
// every query (§3.7 walks are newest-first, and a page's older versions
// reappear in every Versions/VersionAt call that reaches them); the cache
// skips the host-side work of a repeat decode — LZF decompression, XOR
// reconstruction, and retained-data decryption — while the walk still issues
// every flash read and still charges the firmware's delta-decode cost, so
// virtual-time results are identical with the cache on, off, or cold.
//
// A (LPA, TS) pair names immutable content while the version is retrievable;
// the entry is dropped anyway on every event that could retire or replace
// the version (host write and trim of the LPA, rollback — which is writes
// and trims, window shortening, cohort retirement). Rebuild builds a fresh
// device and therefore starts cold by construction.
//
// The cache is per-device host-side state, like the maps of the FTL model:
// devices are single-goroutine, so no locking.
type refCache struct {
	slots int
	lru   *list.List // front = most recently used; values are *refEntry
	byKey map[refKey]*list.Element
	byLPA map[uint64]map[vclock.Time]*list.Element

	hits, misses, evictions int64
}

type refKey struct {
	lpa uint64
	ts  vclock.Time
}

type refEntry struct {
	key  refKey
	data []byte // cache-owned copy of the decoded version
}

// newRefCache returns a cache holding at most slots decoded versions, or
// nil (fully disabled) when slots <= 0.
func newRefCache(slots int) *refCache {
	if slots <= 0 {
		return nil
	}
	return &refCache{
		slots: slots,
		lru:   list.New(),
		byKey: make(map[refKey]*list.Element),
		byLPA: make(map[uint64]map[vclock.Time]*list.Element),
	}
}

// get returns the cached decode of version (lpa, ts), or nil. The returned
// slice is the cache's own copy: callers must not mutate it.
func (c *refCache) get(lpa uint64, ts vclock.Time) []byte {
	if c == nil {
		return nil
	}
	el, ok := c.byKey[refKey{lpa, ts}]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*refEntry).data
}

// put stores a copy of data as the decode of version (lpa, ts), evicting
// the least recently used entry if the cache is full.
func (c *refCache) put(lpa uint64, ts vclock.Time, data []byte) {
	if c == nil {
		return
	}
	key := refKey{lpa, ts}
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		return // content for a live key is immutable; nothing to refresh
	}
	if c.lru.Len() >= c.slots {
		c.evict(c.lru.Back())
		c.evictions++
	}
	el := c.lru.PushFront(&refEntry{key: key, data: append([]byte(nil), data...)})
	c.byKey[key] = el
	perLPA := c.byLPA[lpa]
	if perLPA == nil {
		perLPA = make(map[vclock.Time]*list.Element)
		c.byLPA[lpa] = perLPA
	}
	perLPA[ts] = el
}

func (c *refCache) evict(el *list.Element) {
	e := el.Value.(*refEntry)
	c.lru.Remove(el)
	delete(c.byKey, e.key)
	if perLPA := c.byLPA[e.key.lpa]; perLPA != nil {
		delete(perLPA, e.key.ts)
		if len(perLPA) == 0 {
			delete(c.byLPA, e.key.lpa)
		}
	}
}

// invalidateLPA drops every cached version of lpa (host write, trim, and
// the writes/trims a rollback issues).
func (c *refCache) invalidateLPA(lpa uint64) {
	if c == nil {
		return
	}
	for _, el := range c.byLPA[lpa] {
		e := el.Value.(*refEntry)
		c.lru.Remove(el)
		delete(c.byKey, e.key)
	}
	delete(c.byLPA, lpa)
}

// invalidateAll empties the cache (window shortening and cohort
// retirement may expire versions of any LPA).
func (c *refCache) invalidateAll() {
	if c == nil {
		return
	}
	c.lru.Init()
	clear(c.byKey)
	clear(c.byLPA)
}

// len reports the number of cached versions.
func (c *refCache) len() int {
	if c == nil {
		return 0
	}
	return c.lru.Len()
}
