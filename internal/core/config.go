package core

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"time"

	"almanac/internal/vclock"
)

// This file gives Config one unambiguous, stable serialization. The sweep
// engine, its checkpoint files, and the committed SWEEP_N.json artifacts
// all key results by Config.String(), so two configs are interchangeable
// exactly when their encodings are byte-equal, and a design point written
// by one binary can be resumed or diffed by another. The format is a
// single line of space-separated key=value pairs in a fixed field order;
// ParseConfig is strict (every key exactly once, no unknowns) so that
// String∘ParseConfig and ParseConfig∘String are both identities.

// configFields is the canonical field order. Adding a Config field means
// adding a row here (and to the encoder/decoder below) — the round-trip
// test fails loudly if the three fall out of sync.
var configFields = []string{
	// flash geometry + timing
	"channels", "chips", "planes", "blocks", "pages", "pagesize",
	"readlat", "proglat", "eraselat",
	// base FTL policy
	"op", "gclow", "gchigh", "weardelta", "wearevery", "mapcache",
	// TimeSSD retention machinery
	"minret", "th", "nfixed", "deltacost", "idlethresh", "idlealpha",
	"bfcap", "bffp", "bfgroup", "cohort", "key", "nocompress",
	"noidlecompress", "refcache",
}

func fmtDur(d vclock.Duration) string { return time.Duration(d).String() }
func fmtF(f float64) string           { return strconv.FormatFloat(f, 'g', -1, 64) }

// String renders the canonical text encoding of the configuration. The
// output is deterministic, single-line, and round-trips exactly through
// ParseConfig for every valid Config.
func (c Config) String() string {
	fc := c.FTL.Flash
	vals := map[string]string{
		"channels": strconv.Itoa(fc.Channels),
		"chips":    strconv.Itoa(fc.ChipsPerChannel),
		"planes":   strconv.Itoa(fc.PlanesPerChip),
		"blocks":   strconv.Itoa(fc.BlocksPerPlane),
		"pages":    strconv.Itoa(fc.PagesPerBlock),
		"pagesize": strconv.Itoa(fc.PageSize),
		"readlat":  fmtDur(fc.ReadLatency),
		"proglat":  fmtDur(fc.ProgLatency),
		"eraselat": fmtDur(fc.EraseLatency),

		"op":        fmtF(c.FTL.OPRatio),
		"gclow":     strconv.Itoa(c.FTL.GCLowBlocks),
		"gchigh":    strconv.Itoa(c.FTL.GCHighBlocks),
		"weardelta": strconv.Itoa(c.FTL.WearDelta),
		"wearevery": strconv.Itoa(c.FTL.WearCheckEvery),
		"mapcache":  strconv.Itoa(c.FTL.MappingCacheSlots),

		"minret":         fmtDur(c.MinRetention),
		"th":             fmtF(c.TH),
		"nfixed":         strconv.Itoa(c.NFixed),
		"deltacost":      fmtDur(c.DeltaCost),
		"idlethresh":     fmtDur(c.IdleThreshold),
		"idlealpha":      fmtF(c.IdleAlpha),
		"bfcap":          strconv.Itoa(c.BFCapacity),
		"bffp":           fmtF(c.BFFalsePositive),
		"bfgroup":        strconv.Itoa(c.BFGroup),
		"cohort":         strconv.Itoa(c.CohortSegments),
		"key":            hex.EncodeToString(c.RetentionKey),
		"nocompress":     strconv.FormatBool(c.DisableCompression),
		"noidlecompress": strconv.FormatBool(c.DisableIdleCompression),
		"refcache":       strconv.Itoa(c.RefCacheSlots),
	}
	var b strings.Builder
	for i, k := range configFields {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(vals[k])
	}
	return b.String()
}

// ParseConfig decodes the canonical text encoding produced by
// Config.String. It is strict: every canonical key must appear exactly
// once and nothing else may. The decoded config is syntactically complete
// but not necessarily usable — call Validate (or core.New, which
// validates) before building a device from untrusted text.
func ParseConfig(s string) (Config, error) {
	var c Config
	seen := make(map[string]bool, len(configFields))
	canonical := make(map[string]bool, len(configFields))
	for _, k := range configFields {
		canonical[k] = true
	}

	var firstErr error
	fail := func(format string, args ...any) {
		if firstErr == nil {
			firstErr = fmt.Errorf(format, args...)
		}
	}
	pInt := func(v string) int {
		n, err := strconv.Atoi(v)
		if err != nil {
			fail("core: bad integer %q: %v", v, err)
		}
		return n
	}
	pF := func(v string) float64 {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			fail("core: bad float %q: %v", v, err)
		}
		return f
	}
	pDur := func(v string) vclock.Duration {
		d, err := time.ParseDuration(v)
		if err != nil {
			fail("core: bad duration %q: %v", v, err)
		}
		return vclock.Duration(d)
	}

	for _, tok := range strings.Fields(s) {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return Config{}, fmt.Errorf("core: config token %q is not key=value", tok)
		}
		if !canonical[k] {
			return Config{}, fmt.Errorf("core: unknown config key %q", k)
		}
		if seen[k] {
			return Config{}, fmt.Errorf("core: duplicate config key %q", k)
		}
		seen[k] = true
		switch k {
		case "channels":
			c.FTL.Flash.Channels = pInt(v)
		case "chips":
			c.FTL.Flash.ChipsPerChannel = pInt(v)
		case "planes":
			c.FTL.Flash.PlanesPerChip = pInt(v)
		case "blocks":
			c.FTL.Flash.BlocksPerPlane = pInt(v)
		case "pages":
			c.FTL.Flash.PagesPerBlock = pInt(v)
		case "pagesize":
			c.FTL.Flash.PageSize = pInt(v)
		case "readlat":
			c.FTL.Flash.ReadLatency = pDur(v)
		case "proglat":
			c.FTL.Flash.ProgLatency = pDur(v)
		case "eraselat":
			c.FTL.Flash.EraseLatency = pDur(v)
		case "op":
			c.FTL.OPRatio = pF(v)
		case "gclow":
			c.FTL.GCLowBlocks = pInt(v)
		case "gchigh":
			c.FTL.GCHighBlocks = pInt(v)
		case "weardelta":
			c.FTL.WearDelta = pInt(v)
		case "wearevery":
			c.FTL.WearCheckEvery = pInt(v)
		case "mapcache":
			c.FTL.MappingCacheSlots = pInt(v)
		case "minret":
			c.MinRetention = pDur(v)
		case "th":
			c.TH = pF(v)
		case "nfixed":
			c.NFixed = pInt(v)
		case "deltacost":
			c.DeltaCost = pDur(v)
		case "idlethresh":
			c.IdleThreshold = pDur(v)
		case "idlealpha":
			c.IdleAlpha = pF(v)
		case "bfcap":
			c.BFCapacity = pInt(v)
		case "bffp":
			c.BFFalsePositive = pF(v)
		case "bfgroup":
			c.BFGroup = pInt(v)
		case "cohort":
			c.CohortSegments = pInt(v)
		case "key":
			if v != "" {
				key, err := hex.DecodeString(v)
				if err != nil {
					fail("core: bad retention key hex %q: %v", v, err)
				}
				c.RetentionKey = key
			}
		case "nocompress":
			b, err := strconv.ParseBool(v)
			if err != nil {
				fail("core: bad bool %q: %v", v, err)
			}
			c.DisableCompression = b
		case "noidlecompress":
			b, err := strconv.ParseBool(v)
			if err != nil {
				fail("core: bad bool %q: %v", v, err)
			}
			c.DisableIdleCompression = b
		case "refcache":
			c.RefCacheSlots = pInt(v)
		}
		if firstErr != nil {
			return Config{}, firstErr
		}
	}
	for _, k := range configFields {
		if !seen[k] {
			return Config{}, fmt.Errorf("core: config key %q missing", k)
		}
	}
	return c, nil
}

// Validate reports whether the configuration can build a working TimeSSD.
// It subsumes the ad-hoc checks scattered through the constructors so
// sweep specs and parsed configs are rejected with one call, before any
// device state is allocated.
func (c Config) Validate() error {
	if err := c.FTL.Flash.Validate(); err != nil {
		return err
	}
	if c.FTL.OPRatio < 0 {
		return fmt.Errorf("core: negative over-provisioning ratio %g", c.FTL.OPRatio)
	}
	if c.FTL.GCLowBlocks < 1 || c.FTL.GCHighBlocks < c.FTL.GCLowBlocks {
		return fmt.Errorf("core: bad GC watermarks low=%d high=%d", c.FTL.GCLowBlocks, c.FTL.GCHighBlocks)
	}
	if c.FTL.MappingCacheSlots < 0 {
		return fmt.Errorf("core: negative mapping-cache slots %d", c.FTL.MappingCacheSlots)
	}
	if c.MinRetention < 0 {
		return fmt.Errorf("core: negative minimum retention %v", c.MinRetention)
	}
	if c.TH <= 0 {
		return fmt.Errorf("core: GC-overhead threshold TH must be positive, got %g", c.TH)
	}
	if c.NFixed < 1 {
		return fmt.Errorf("core: NFixed must be at least 1, got %d", c.NFixed)
	}
	if c.DeltaCost < 0 {
		return fmt.Errorf("core: negative delta cost %v", c.DeltaCost)
	}
	if c.IdleThreshold < 0 {
		return fmt.Errorf("core: negative idle threshold %v", c.IdleThreshold)
	}
	if c.IdleAlpha < 0 || c.IdleAlpha > 1 {
		return fmt.Errorf("core: idle-prediction alpha %g outside [0,1]", c.IdleAlpha)
	}
	if c.BFCapacity < 1 {
		return fmt.Errorf("core: Bloom-filter capacity must be at least 1, got %d", c.BFCapacity)
	}
	if c.BFFalsePositive <= 0 || c.BFFalsePositive >= 1 {
		return fmt.Errorf("core: Bloom false-positive target %g outside (0,1)", c.BFFalsePositive)
	}
	if c.BFGroup < 1 {
		return fmt.Errorf("core: Bloom page-group size must be at least 1, got %d", c.BFGroup)
	}
	if c.CohortSegments < 1 {
		return fmt.Errorf("core: cohort size must be at least 1, got %d", c.CohortSegments)
	}
	switch len(c.RetentionKey) {
	case 0, 16, 24, 32:
	default:
		return fmt.Errorf("core: retention key must be 16, 24 or 32 bytes, got %d", len(c.RetentionKey))
	}
	return nil
}
