package core

import (
	"bytes"
	"testing"

	"almanac/internal/flash"
)

// TestImagePersistenceRoundTrip is the full power-cycle: churn a device,
// serialise the flash medium, deserialise, rebuild the firmware state, and
// verify live contents and invariants — the almanacd -image path.
func TestImagePersistenceRoundTrip(t *testing.T) {
	d := newTiny(t, nil)
	at := churnDevice(t, d, d.cfg.FTL.Flash.TotalPages()*2)

	var buf bytes.Buffer
	if err := d.Arr.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	arr, err := flash.ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Rebuild(arr, d.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for lpa := uint64(0); lpa < uint64(d.LogicalPages()); lpa++ {
		want, _, err := d.Read(lpa, at)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := r.Read(lpa, at)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("lpa %d differs after image round trip", lpa)
		}
	}
	// Wear survives the power cycle.
	minA, maxA := d.Arr.WearSpread()
	minB, maxB := arr.WearSpread()
	if minA != minB || maxA != maxB {
		t.Fatalf("wear spread changed: %d..%d vs %d..%d", minA, maxA, minB, maxB)
	}
}
