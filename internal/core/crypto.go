package core

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"

	"almanac/internal/vclock"
)

// §3.10: "Retaining past storage states can prevent the secure deletion of
// sensitive data … we can use a user-specified encryption key to encrypt
// invalid data. This data can still be recovered by users, but can not be
// retrieved by others without the encryption key."
//
// TimeSSD implements that proposal here. When Config.RetentionKey is set,
// every retained version written to delta storage — packed delta payloads
// and raw retained pages alike — is sealed with AES-CTR under a
// per-version nonce derived from (LPA, write timestamp), which is unique
// because an LPA never has two versions with the same timestamp. Queries
// on a device holding the key decrypt transparently; a device brought up
// without the key (e.g. an attacker rebuilding from the bare flash image)
// sees ciphertext, which fails delta decoding and yields no history.
//
// Physics bounds the guarantee exactly as it would on the paper's board:
// a superseded version still sitting in its original data page cannot be
// encrypted in place; protection begins when the version is rewritten into
// delta storage (GC or idle compression).

// initCipher prepares the AES block for the configured key.
func (t *TimeSSD) initCipher() error {
	if len(t.cfg.RetentionKey) == 0 {
		return nil
	}
	blk, err := aes.NewCipher(t.cfg.RetentionKey)
	if err != nil {
		return fmt.Errorf("timessd: retention key: %w", err)
	}
	t.aes = blk
	return nil
}

// sealRetained encrypts a retained version's bytes in place-of-copy (the
// input is not modified) under the (lpa, ts) nonce. Without a key it
// returns the input unchanged.
func (t *TimeSSD) sealRetained(lpa uint64, ts vclock.Time, p []byte) []byte {
	if t.aes == nil {
		return p
	}
	return t.applyCTR(lpa, ts, p)
}

// openRetained decrypts; CTR is an involution, so it is sealRetained.
func (t *TimeSSD) openRetained(lpa uint64, ts vclock.Time, p []byte) []byte {
	return t.sealRetained(lpa, ts, p)
}

func (t *TimeSSD) applyCTR(lpa uint64, ts vclock.Time, p []byte) []byte {
	var iv [aes.BlockSize]byte
	binary.LittleEndian.PutUint64(iv[0:8], lpa)
	binary.LittleEndian.PutUint64(iv[8:16], uint64(ts))
	out := make([]byte, len(p))
	cipher.NewCTR(t.aes, iv[:]).XORKeyStream(out, p)
	return out
}
