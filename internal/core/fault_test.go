package core

import (
	"bytes"
	"errors"
	"testing"

	"almanac/internal/fault"
	"almanac/internal/flash"
	"almanac/internal/vclock"
)

func armFaults(t *testing.T, d *TimeSSD, p *fault.Plan) {
	t.Helper()
	inj, err := fault.NewInjector(p)
	if err != nil {
		t.Fatal(err)
	}
	d.SetFaults(inj)
}

// rebuildImage round-trips the device through its image format and the
// firmware rebuild path — the full power-loss recovery sequence.
func rebuildImage(t *testing.T, d *TimeSSD) *TimeSSD {
	t.Helper()
	var img bytes.Buffer
	if err := d.Arr.WriteImage(&img); err != nil {
		t.Fatal(err)
	}
	arr, err := flash.ReadImage(&img)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Rebuild(arr, d.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("rebuilt device inconsistent: %v", err)
	}
	return r
}

// TestRebuildInstantRestartsWindow: the retention window of a rebuilt
// device restarts at the rebuild instant — the newest write timestamp on
// the medium — and the instant is journalled in OOB metadata so a second
// rebuild (with no intervening writes) recovers the same clock.
func TestRebuildInstantRestartsWindow(t *testing.T) {
	d := newTiny(t, nil)
	var last vclock.Time
	at := vclock.Time(0)
	for i := 0; i < 40; i++ {
		at = at.Add(vclock.Minute)
		last = at
		done, err := d.Write(uint64(i%8), versionPage(d, uint64(i%8), i), at)
		if err != nil {
			t.Fatal(err)
		}
		at = done
	}

	r := rebuildImage(t, d)
	if r.RebuiltAt() != last {
		t.Fatalf("rebuild instant %v, newest write was at %v", r.RebuiltAt(), last)
	}
	if ws := r.RetentionWindowStart(); ws != last {
		t.Fatalf("retention window starts at %v, want the rebuild instant %v", ws, last)
	}
	// The consequence documented on Rebuild: the window can only have
	// grown — it must not start later than the crash left it.
	if r.RetentionWindowStart() > at {
		t.Fatal("rebuild moved the window start past the crash time")
	}

	// The instant survives a second crash with no host writes in between,
	// through the OOB journal marker alone.
	r2 := rebuildImage(t, r)
	if r2.RebuiltAt() != last {
		t.Fatalf("second rebuild lost the journalled instant: %v, want %v", r2.RebuiltAt(), last)
	}
}

// TestProgramFailRelocates: a failed page program burns the page and the
// FTL retries on the next page; the host write still succeeds and the
// failure is accounted.
func TestProgramFailRelocates(t *testing.T) {
	d := newTiny(t, nil)
	armFaults(t, d, &fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Effect: fault.ProgramFail, Channel: fault.Any, Block: fault.Any, Page: fault.Any, Count: 3},
	}})
	at := vclock.Time(0)
	for i := 0; i < 10; i++ {
		at = at.Add(vclock.Second)
		done, err := d.Write(uint64(i), versionPage(d, uint64(i), i), at)
		if err != nil {
			t.Fatalf("write %d should have relocated past the program failure: %v", i, err)
		}
		at = done
	}
	if got := d.Base.ProgramFailures; got != 3 {
		t.Fatalf("ProgramFailures = %d, want 3", got)
	}
	if st := d.Arr.Stats(); st.ProgramFails != 3 {
		t.Fatalf("flash stats ProgramFails = %d, want 3", st.ProgramFails)
	}
	for i := 0; i < 10; i++ {
		data, _, err := d.Read(uint64(i), at)
		if err != nil || !bytes.Equal(data, versionPage(d, uint64(i), i)) {
			t.Fatalf("lpa %d unreadable after relocation: %v", i, err)
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEraseFailGrowsBadBlock: a failed erase retires the block; the
// retirement is persisted in OOB and restored by Rebuild.
func TestEraseFailGrowsBadBlock(t *testing.T) {
	d := newTiny(t, nil)
	// Force churn so GC erases blocks; every erase fails until the pool of
	// rules runs out.
	armFaults(t, d, &fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Effect: fault.EraseFail, Channel: fault.Any, Block: fault.Any, Page: fault.Any, Count: 2},
	}})
	at := vclock.Time(0)
	writes := d.cfg.FTL.Flash.TotalPages() * 2
	for i := 0; i < writes; i++ {
		at = at.Add(vclock.Second)
		done, err := d.Write(uint64(i%(d.LogicalPages()/2)), versionPage(d, uint64(i), i), at)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		at = done
	}
	grown := d.Base.GrownBadBlocks
	if grown != 2 {
		t.Fatalf("GrownBadBlocks = %d, want 2", grown)
	}
	if st := d.Arr.Stats(); st.EraseFails != 2 {
		t.Fatalf("flash stats EraseFails = %d, want 2", st.EraseFails)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// The retirement survives power loss: the rebuilt device re-retires
	// the same number of blocks and never reuses them.
	d.SetFaults(nil)
	r := rebuildImage(t, d)
	if r.Base.GrownBadBlocks != grown {
		t.Fatalf("rebuild recovered %d grown bad blocks, want %d", r.Base.GrownBadBlocks, grown)
	}
}

// TestUncorrectableReadIsTyped: reads past the ECC budget surface as
// fault.ErrUncorrectable through core, and flash.ErrReadFailed still
// matches (it aliases the sentinel).
func TestUncorrectableReadIsTyped(t *testing.T) {
	d := newTiny(t, nil)
	at, err := d.Write(3, versionPage(d, 3, 1), vclock.Time(vclock.Second))
	if err != nil {
		t.Fatal(err)
	}
	armFaults(t, d, &fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Effect: fault.BitFlip, Channel: fault.Any, Block: fault.Any, Page: fault.Any, Bits: 100, Count: 1},
	}})
	_, _, err = d.Read(3, at.Add(vclock.Second))
	if !errors.Is(err, fault.ErrUncorrectable) {
		t.Fatalf("want fault.ErrUncorrectable, got %v", err)
	}
	if !errors.Is(err, flash.ErrReadFailed) {
		t.Fatalf("legacy flash.ErrReadFailed no longer matches: %v", err)
	}
	// Count=1: the next read succeeds with intact data.
	data, _, err := d.Read(3, at.Add(2*vclock.Second))
	if err != nil || !bytes.Equal(data, versionPage(d, 3, 1)) {
		t.Fatalf("read after exhausted rule: %v", err)
	}
}

// TestCorrectedReadsAccounted: bit flips within the ECC budget succeed and
// are counted, and silent corruption really does bypass detection.
func TestCorrectedAndSilentReads(t *testing.T) {
	d := newTiny(t, nil)
	at, err := d.Write(3, versionPage(d, 3, 1), vclock.Time(vclock.Second))
	if err != nil {
		t.Fatal(err)
	}
	armFaults(t, d, &fault.Plan{Seed: 1, ECCBudget: 8, Rules: []fault.Rule{
		{Effect: fault.BitFlip, Channel: fault.Any, Block: fault.Any, Page: fault.Any, Bits: 4, Count: 1},
		{Effect: fault.BitFlip, Channel: fault.Any, Block: fault.Any, Page: fault.Any, Bits: 4, Silent: true, Count: 1},
	}})
	data, done, err := d.Read(3, at.Add(vclock.Second))
	if err != nil || !bytes.Equal(data, versionPage(d, 3, 1)) {
		t.Fatalf("corrected read must return clean data: %v", err)
	}
	if st := d.Arr.Stats(); st.ECCCorrected != 1 {
		t.Fatalf("ECCCorrected = %d, want 1", st.ECCCorrected)
	}
	data, _, err = d.Read(3, done.Add(vclock.Second))
	if err != nil {
		t.Fatalf("silent corruption must not error: %v", err)
	}
	if bytes.Equal(data, versionPage(d, 3, 1)) {
		t.Fatal("silent corruption returned clean data")
	}
	// The medium itself is untouched: silent corruption happens on the
	// returned copy, so the next read is clean again.
	data, _, err = d.Read(3, done.Add(2*vclock.Second))
	if err != nil || !bytes.Equal(data, versionPage(d, 3, 1)) {
		t.Fatalf("medium corrupted by a silent read: %v", err)
	}
}

// TestPowerCutRecovery: a power cut mid-write tears the page, kills the
// device, and the rebuilt device serves the pre-cut state; the torn write
// never happened.
func TestPowerCutRecovery(t *testing.T) {
	d := newTiny(t, nil)
	at, err := d.Write(5, versionPage(d, 5, 1), vclock.Time(vclock.Second))
	if err != nil {
		t.Fatal(err)
	}
	armFaults(t, d, &fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Effect: fault.PowerCut, Channel: fault.Any, Block: fault.Any, Page: fault.Any, At: at.Add(vclock.Minute)},
	}})
	if _, err := d.Write(5, versionPage(d, 5, 2), at.Add(vclock.Hour)); !errors.Is(err, fault.ErrPowerCut) {
		t.Fatalf("want fault.ErrPowerCut, got %v", err)
	}
	if !d.Arr.Dead() {
		t.Fatal("array survived a power cut")
	}
	if _, _, err := d.Read(5, at.Add(2*vclock.Hour)); !errors.Is(err, fault.ErrPowerCut) {
		t.Fatalf("dead array served a read: %v", err)
	}
	if st := d.Arr.Stats(); st.TornWrites != 1 {
		t.Fatalf("TornWrites = %d, want 1", st.TornWrites)
	}

	r := rebuildImage(t, d)
	data, _, err := r.Read(5, at.Add(3*vclock.Hour))
	if err != nil || !bytes.Equal(data, versionPage(d, 5, 1)) {
		t.Fatalf("pre-cut version lost: %v", err)
	}
	vers, _, err := r.Versions(5, at.Add(4*vclock.Hour))
	if err != nil || len(vers) != 1 {
		t.Fatalf("torn write resurrected: %d versions, %v", len(vers), err)
	}
}
