package core

import (
	"bytes"
	"math"

	"almanac/internal/delta"
	"almanac/internal/flash"
	"almanac/internal/invariant"
	"almanac/internal/obs"
	"almanac/internal/vclock"
)

// Version is one recoverable state of a logical page.
type Version struct {
	TS   vclock.Time // write timestamp of this version
	Data []byte
	Live bool // true for the current (valid) version
}

const maxTime = vclock.Time(math.MaxInt64)

// Versions returns every retrievable version of lpa, newest first. The
// first entry (if any) is the live version; the rest are retained invalid
// versions recovered through the data-page and delta-page chains (§3.7).
// Reads are charged to virtual time; done is when the last read completes.
//
// Returned Version.Data slices are read-only views that may alias device
// storage — the same contract as Read — and stay valid until the next
// mutating operation (Write, Trim, RollBack, Idle) on the device; copy to
// retain content across mutations.
func (t *TimeSSD) Versions(lpa uint64, at vclock.Time) ([]Version, vclock.Time, error) {
	if err := t.CheckLPA(lpa); err != nil {
		return nil, at, err
	}
	out := make([]Version, 0, 8)
	prevTS := maxTime

	// Live head, if the LPA is mapped.
	cur := flash.NullPPA
	if head := t.AMT[lpa]; head != flash.NullPPA {
		data, oob, done, err := t.Arr.Read(head, at)
		if err != nil {
			return nil, at, err
		}
		at = done
		out = append(out, Version{TS: oob.TS, Data: data, Live: true})
		prevTS = oob.TS
		cur = oob.BackPtr
	} else if rec := t.trimmed[lpa]; rec.head != flash.NullPPA {
		cur = rec.head
	}

	// Data-page chain: uncompressed retained versions. Every hop is
	// verified against the OOB (correct LPA, strictly decreasing TS) so a
	// stale back-pointer into a reused block terminates the walk (§3.7).
	for cur != flash.NullPPA {
		if t.PVT[cur] || t.prt[cur] {
			break // relocation shadow, or continued in the delta chain
		}
		data, oob, done, err := t.Arr.Read(cur, at)
		if err != nil {
			break // chain ran into an erased block
		}
		at = done
		if oob.Kind != flash.KindData || oob.LPA != lpa || oob.TS >= prevTS {
			break
		}
		if _, hit := t.chain.Contains(uint64(cur)); !hit {
			break // expired: outside the retention window
		}
		out = append(out, Version{TS: oob.TS, Data: data})
		prevTS = oob.TS
		cur = oob.BackPtr
	}

	// Delta-page chain: first the (at most one) pending buffered delta,
	// then the on-flash chain headed by the index mapping table.
	dcur := flash.NullPPA
	if p := t.pending[lpa]; p.d != nil && p.d.TS < prevTS {
		if data, hit := t.cachedDecode(p.d, out); hit {
			at = t.chargeDecode(p.d.Enc, at)
			out = append(out, Version{TS: p.d.TS, Data: data})
			prevTS = p.d.TS
			dcur = flash.PPA(p.d.BackPtr)
		}
	} else if h := t.imt[lpa]; h != flash.NullPPA {
		dcur = h
	}

	for dcur != flash.NullPPA {
		data, oob, done, err := t.Arr.Read(dcur, at)
		if err != nil {
			break // segment retired and erased
		}
		at = done
		switch oob.Kind {
		case flash.KindDeltaRaw:
			if oob.LPA != lpa || oob.TS >= prevTS {
				return out, at, nil
			}
			cp := t.refcache.get(lpa, oob.TS)
			if cp != nil {
				if invariant.Enabled && !t.faultsArmed {
					cold := t.openRetained(oob.LPA, oob.TS, data)
					invariant.Assert(bytes.Equal(cold, cp),
						"refcache: cached raw version differs from cold decode (lpa %d ts %d)", lpa, oob.TS)
				}
				// Copy out: the cache slot can be evicted and its buffer
				// reused by a later query, which is not a device mutation.
				cp = append([]byte(nil), cp...)
			} else {
				// openRetained returns its input unchanged when no retention
				// key is configured, so cp may alias the flash page — covered
				// by the read-only until-next-mutation contract above.
				cp = t.openRetained(oob.LPA, oob.TS, data)
				t.refcache.put(lpa, oob.TS, cp)
			}
			out = append(out, Version{TS: oob.TS, Data: cp})
			prevTS = oob.TS
			dcur = oob.BackPtr
		case flash.KindDelta:
			var mine delta.Delta
			if found, err := delta.FindInPage(data, lpa, prevTS, &mine); err != nil || !found {
				return out, at, nil
			}
			dec, ok := t.cachedDecode(&mine, out)
			if !ok {
				return out, at, nil
			}
			at = t.chargeDecode(mine.Enc, at)
			out = append(out, Version{TS: mine.TS, Data: dec})
			prevTS = mine.TS
			dcur = flash.PPA(mine.BackPtr)
		default:
			return out, at, nil
		}
	}
	return out, at, nil
}

// cachedDecode reconstructs a delta's version through the reference cache:
// on a hit the host-side decode (LZF, XOR, retained-data decryption) is
// skipped, on a miss the cold decode is performed and cached. Either way the
// caller charges the same virtual-time decode cost — the cache alters host
// speed only. The returned slice is private to the caller.
func (t *TimeSSD) cachedDecode(d *delta.Delta, walked []Version) ([]byte, bool) {
	if cached := t.refcache.get(d.LPA, d.TS); cached != nil {
		if invariant.Enabled && !t.faultsArmed {
			cold, err := t.decodeDelta(d, walked)
			invariant.AssertNoErr(err, "refcache shadow decode")
			invariant.Assert(bytes.Equal(cold, cached),
				"refcache: cached version differs from cold decode (lpa %d ts %d)", d.LPA, d.TS)
		}
		return append([]byte(nil), cached...), true
	}
	dec, err := t.decodeDelta(d, walked)
	if err != nil {
		return nil, false
	}
	t.refcache.put(d.LPA, d.TS, dec)
	return dec, true
}

// chargeDecode charges the firmware CPU cost of decompressing one delta
// (the source of TimeSSD's ≈14% recovery-time overhead vs FlashGuard-style
// raw retention, §5.5.1). Raw payloads cost nothing.
func (t *TimeSSD) chargeDecode(enc delta.Encoding, at vclock.Time) vclock.Time {
	if enc == delta.EncXORLZF || enc == delta.EncRawLZF {
		return at.Add(t.cfg.DeltaCost)
	}
	return at
}

// decodeDelta reconstructs a version from its delta. XOR deltas need the
// reference version, which — because obsolete versions are reclaimed in
// time order — has always been reconstructed earlier in the walk, so a
// linear scan over the versions walked so far finds it (version counts are
// small; a per-call map would cost an allocation per query).
func (t *TimeSSD) decodeDelta(d *delta.Delta, walked []Version) ([]byte, error) {
	var ref []byte
	if d.Enc == delta.EncXORLZF {
		for i := range walked {
			if walked[i].TS == d.RefTS {
				ref = walked[i].Data
				break
			}
		}
	}
	payload := t.openRetained(d.LPA, d.TS, d.Payload)
	return delta.Decode(d.Enc, payload, ref, t.PageSize())
}

// VersionAt returns the version of lpa that was current at time `when`
// (the newest version with TS ≤ when), or nil if the page had no content
// at that time.
func (t *TimeSSD) VersionAt(lpa uint64, when, at vclock.Time) (*Version, vclock.Time, error) {
	vers, done, err := t.Versions(lpa, at)
	if err != nil {
		return nil, done, err
	}
	for i := range vers {
		if vers[i].TS <= when {
			return &vers[i], done, nil
		}
	}
	return nil, done, nil
}

// Timestamps returns the write timestamps of every retrievable version of
// lpa (newest first) without decompressing content. Data-chain hops read
// only OOB; delta pages are read once and parsed.
func (t *TimeSSD) Timestamps(lpa uint64, at vclock.Time) ([]vclock.Time, vclock.Time, error) {
	if err := t.CheckLPA(lpa); err != nil {
		return nil, at, err
	}
	var out []vclock.Time
	prevTS := maxTime

	cur := flash.NullPPA
	if head := t.AMT[lpa]; head != flash.NullPPA {
		oob, done, err := t.Arr.ReadOOB(head, at)
		if err != nil {
			return nil, at, err
		}
		at = done
		out = append(out, oob.TS)
		prevTS = oob.TS
		cur = oob.BackPtr
	} else if rec := t.trimmed[lpa]; rec.head != flash.NullPPA {
		cur = rec.head
	}

	for cur != flash.NullPPA {
		if t.PVT[cur] || t.prt[cur] {
			break
		}
		oob, done, err := t.Arr.ReadOOB(cur, at)
		if err != nil {
			break
		}
		at = done
		if oob.Kind != flash.KindData || oob.LPA != lpa || oob.TS >= prevTS {
			break
		}
		if _, hit := t.chain.Contains(uint64(cur)); !hit {
			break
		}
		out = append(out, oob.TS)
		prevTS = oob.TS
		cur = oob.BackPtr
	}

	dcur := flash.NullPPA
	if p := t.pending[lpa]; p.d != nil && p.d.TS < prevTS {
		out = append(out, p.d.TS)
		prevTS = p.d.TS
		dcur = flash.PPA(p.d.BackPtr)
	} else if h := t.imt[lpa]; h != flash.NullPPA {
		dcur = h
	}
	for dcur != flash.NullPPA {
		data, oob, done, err := t.Arr.Read(dcur, at)
		if err != nil {
			break
		}
		at = done
		if oob.Kind == flash.KindDeltaRaw {
			if oob.LPA != lpa || oob.TS >= prevTS {
				break
			}
			out = append(out, oob.TS)
			prevTS = oob.TS
			dcur = oob.BackPtr
			continue
		}
		if oob.Kind != flash.KindDelta {
			break
		}
		var mine delta.Delta
		if found, err := delta.FindInPage(data, lpa, prevTS, &mine); err != nil || !found {
			break
		}
		out = append(out, mine.TS)
		prevTS = mine.TS
		dcur = flash.PPA(mine.BackPtr)
	}
	return out, at, nil
}

// UpdateRecord reports the update history of one LPA within a time query.
type UpdateRecord struct {
	LPA   uint64
	Times []vclock.Time // write timestamps within the queried range, newest first
}

// CandidateLPAs returns every LPA that currently has retrievable state:
// mapped pages plus trimmed pages whose chains are remembered.
func (t *TimeSSD) CandidateLPAs() []uint64 {
	var out []uint64
	for lpa := uint64(0); lpa < uint64(t.LogicalPages()); lpa++ {
		if t.AMT[lpa] != flash.NullPPA {
			out = append(out, lpa)
			continue
		}
		if t.trimmed[lpa].head != flash.NullPPA {
			out = append(out, lpa)
		}
	}
	return out
}

// UpdatedBetween scans every candidate LPA for versions written in
// [from, to] and returns their timestamps. Per-LPA walks start at the same
// virtual instant, so the per-channel busy horizons model the paper's
// chip-parallel query execution; done is the completion of the slowest
// channel.
func (t *TimeSSD) UpdatedBetween(from, to vclock.Time, at vclock.Time) ([]UpdateRecord, vclock.Time, error) {
	var out []UpdateRecord
	done := at
	for _, lpa := range t.CandidateLPAs() {
		ts, d, err := t.Timestamps(lpa, at)
		if err != nil {
			return out, done, err
		}
		if d > done {
			done = d
		}
		var hit []vclock.Time
		// A deletion inside the range is an update of this LPA's state even
		// though it created no new version.
		if rec := t.trimmed[lpa]; rec.head != flash.NullPPA && rec.ts >= from && rec.ts <= to {
			hit = append(hit, rec.ts)
		}
		for _, w := range ts {
			if w >= from && w <= to {
				hit = append(hit, w)
			}
		}
		if len(hit) > 0 {
			out = append(out, UpdateRecord{LPA: lpa, Times: hit})
		}
	}
	return out, done, nil
}

// RollBack reverts lpa to the version current at time `when` by writing
// that version back as a fresh update (§3.9): the rolled-back state is just
// another version, so nothing retrievable is lost. If the page had no
// content at `when`, the LPA is trimmed.
func (t *TimeSSD) RollBack(lpa uint64, when, at vclock.Time) (vclock.Time, error) {
	ws := t.obs.Start()
	issue := at
	done, err := t.rollBackOne(lpa, when, at)
	t.obs.Record(obs.Rollback, lpa, int64(issue), int64(done), ws, err == nil)
	return done, err
}

func (t *TimeSSD) rollBackOne(lpa uint64, when, at vclock.Time) (vclock.Time, error) {
	v, done, err := t.VersionAt(lpa, when, at)
	if err != nil {
		return done, err
	}
	at = done
	if v == nil {
		return t.Trim(lpa, at)
	}
	if v.Live {
		return at, nil // already at the requested state
	}
	// Copy before writing back: v.Data may alias flash storage, and the
	// write's own GC could reclaim that page mid-operation.
	return t.Write(lpa, append([]byte(nil), v.Data...), at)
}

// RollBackAll reverts every candidate LPA to its state at time `when`.
// It returns the number of pages changed. Rolling back the whole device is
// write-intensive and may legitimately fail with ErrRetentionFull if it
// would violate the minimum retention guarantee (§3.9).
func (t *TimeSSD) RollBackAll(when, at vclock.Time) (int, vclock.Time, error) {
	ws := t.obs.Start()
	issue := at
	changed, done, err := t.rollBackAll(when, at)
	// One trace event spans the whole device rollback; the per-LPA writes
	// and trims it issued were recorded under their own classes.
	t.obs.Record(obs.Rollback, 0, int64(issue), int64(done), ws, err == nil)
	return changed, done, err
}

func (t *TimeSSD) rollBackAll(when, at vclock.Time) (int, vclock.Time, error) {
	changed := 0
	for _, lpa := range t.CandidateLPAs() {
		v, done, err := t.VersionAt(lpa, when, at)
		if err != nil {
			return changed, done, err
		}
		at = done
		if v == nil {
			if t.AMT[lpa] == flash.NullPPA {
				continue
			}
			if at, err = t.Trim(lpa, at); err != nil {
				return changed, at, err
			}
			changed++
			continue
		}
		if v.Live {
			continue
		}
		// Same aliasing hazard as rollBackOne: copy before writing back.
		if at, err = t.Write(lpa, append([]byte(nil), v.Data...), at); err != nil {
			return changed, at, err
		}
		changed++
	}
	return changed, at, nil
}
