package core

import (
	"fmt"

	"almanac/internal/flash"
)

// CheckInvariants cross-validates TimeSSD's time-travel structures on top
// of the base FTL's consistency check. O(device); for tests and debugging.
func (t *TimeSSD) CheckInvariants() error {
	if err := t.CheckConsistency(); err != nil {
		return err
	}
	// The PRT only ever marks invalid pages: a reclaimable bit on a valid
	// page would let GC discard live data.
	for ppa, marked := range t.prt {
		if marked && t.PVT[ppa] {
			return fmt.Errorf("timessd: ppa %d is both valid and PRT-reclaimable", ppa)
		}
	}
	// A trimmed LPA has no AMT mapping (the trim record *is* the head;
	// head == NullPPA is the absence sentinel of the flat table).
	for lpa, rec := range t.trimmed {
		if rec.head == flash.NullPPA {
			continue
		}
		if t.AMT[lpa] != flash.NullPPA {
			return fmt.Errorf("timessd: lpa %d is both mapped and trimmed", lpa)
		}
	}
	// Pending deltas must belong to live cohorts, hold strictly older
	// versions than the live head, and agree with the pending index key.
	for i, p := range t.pending {
		if p.d == nil {
			continue
		}
		lpa := uint64(i)
		if p.d.LPA != lpa {
			return fmt.Errorf("timessd: pending index %d holds delta for lpa %d", lpa, p.d.LPA)
		}
		found := false
		for _, seg := range t.cohorts {
			if seg != nil && seg == p.seg {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("timessd: pending delta for lpa %d references a retired cohort", lpa)
		}
		if head := t.AMT[lpa]; head != flash.NullPPA {
			oob, err := t.Arr.PeekOOB(head)
			if err != nil {
				return err
			}
			if p.d.TS >= oob.TS {
				return fmt.Errorf("timessd: pending delta for lpa %d (ts %v) not older than live head (ts %v)",
					lpa, p.d.TS, oob.TS)
			}
		}
		if !t.pendingListed[lpa] {
			return fmt.Errorf("timessd: pending delta for lpa %d missing from the iteration list", lpa)
		}
	}
	// Cohort delta blocks must be live delta blocks in the BST, and no
	// block may belong to two cohorts (or a cohort and the expired queue).
	owner := map[int]string{}
	claim := func(blk int, who string) error {
		if prev, ok := owner[blk]; ok {
			return fmt.Errorf("timessd: delta block %d claimed by both %s and %s", blk, prev, who)
		}
		owner[blk] = who
		if t.Info[blk].Kind != flash.KindDelta {
			return fmt.Errorf("timessd: %s block %d has kind %v", who, blk, t.Info[blk].Kind)
		}
		return nil
	}
	for id, seg := range t.cohorts {
		if seg == nil {
			continue
		}
		who := fmt.Sprintf("cohort %d", id)
		if seg.activeBlk >= 0 {
			if err := claim(seg.activeBlk, who); err != nil {
				return err
			}
		}
		for _, blk := range seg.blocks {
			if err := claim(blk, who); err != nil {
				return err
			}
		}
	}
	for _, blk := range t.expiredDeltaBlocks {
		if err := claim(blk, "expired-queue"); err != nil {
			return err
		}
	}
	// Every live delta block in the BST must be accounted for above.
	for blk := range t.Info {
		if t.Info[blk].Kind == flash.KindDelta {
			if _, ok := owner[blk]; !ok {
				return fmt.Errorf("timessd: delta block %d owned by no cohort and not queued for erase", blk)
			}
		}
	}
	// The IMT must point into delta storage (a live delta/raw page) or at
	// a stale location in a since-erased block — never at live user data.
	for lpa, ppa := range t.imt {
		if ppa == flash.NullPPA {
			continue
		}
		oob, err := t.Arr.PeekOOB(ppa)
		if err != nil {
			continue // erased with its cohort: a legal stale head
		}
		if oob.Kind == flash.KindDelta || oob.Kind == flash.KindDeltaRaw {
			continue
		}
		// The block was erased and reused for data; stale but detectable.
		if t.Info[t.Arr.BlockOf(ppa)].Kind == flash.KindDelta {
			return fmt.Errorf("timessd: imt head of lpa %d points at %v page inside a delta block", lpa, oob.Kind)
		}
	}
	return nil
}
