package ftl

import (
	"almanac/internal/flash"
	"almanac/internal/vclock"
)

// Regular is the conventional page-mapping SSD FTL the paper uses as the
// baseline ("Regular SSD", §5.2): out-of-place writes, greedy GC that
// reclaims invalid pages immediately, and cold-data-swap wear leveling.
type Regular struct {
	*Base
	zero []byte
}

var _ Device = (*Regular)(nil)

// NewRegular builds a regular SSD over a fresh flash array.
func NewRegular(p Params) (*Regular, error) {
	b, err := NewBase(p)
	if err != nil {
		return nil, err
	}
	return &Regular{Base: b, zero: make([]byte, p.Flash.PageSize)}, nil
}

// Read returns the current version of lpa.
func (r *Regular) Read(lpa uint64, at vclock.Time) ([]byte, vclock.Time, error) {
	if err := r.CheckLPA(lpa); err != nil {
		return nil, at, err
	}
	at = r.TouchMapping(lpa, false, at)
	r.HostPageReads++
	ppa := r.AMT[lpa]
	if ppa == flash.NullPPA {
		return r.zero, at, nil
	}
	data, _, done, err := r.Arr.Read(ppa, at)
	return data, done, err
}

// Write stores a new version of lpa and invalidates the previous one.
func (r *Regular) Write(lpa uint64, data []byte, at vclock.Time) (vclock.Time, error) {
	if err := r.CheckLPA(lpa); err != nil {
		return at, err
	}
	at = r.TouchMapping(lpa, true, at)
	at, err := r.ensureFree(at)
	if err != nil {
		return at, err
	}
	oob := flash.OOB{LPA: lpa, BackPtr: flash.NullPPA, TS: at, Kind: flash.KindData}
	ppa, done, err := r.AppendPage(r.hostFrontier(), flash.KindData, data, oob, at)
	if err != nil {
		return at, err
	}
	r.InvalidatePPA(r.AMT[lpa])
	r.AMT[lpa] = ppa
	r.HostPageWrites++
	return done, nil
}

// gcPassCost bounds the virtual cost of one GC pass: a background pass is
// only started if the remaining idle time can absorb it, because an
// overshooting pass would delay the request that ends the idle period.
func GCPassCost(p Params) vclock.Duration {
	fc := p.Flash
	return vclock.Duration(fc.PagesPerBlock)*(fc.ReadLatency+fc.ProgLatency) + fc.EraseLatency
}

// Idle lets the device use a host-visible quiet period [now, until) for
// background garbage collection up to the high watermark — what commodity
// SSD firmware does so foreground writes rarely wait for reclamation.
func (r *Regular) Idle(now, until vclock.Time) {
	at := now
	pass := GCPassCost(r.P)
	for r.FreeBlocks() < r.P.GCHighBlocks && until.Sub(at) > pass {
		done, err := r.collectOnce(at)
		if err != nil {
			return
		}
		at = done
	}
	if r.WearCheckDue() && r.WearImbalanced() {
		if done, err := r.wearLevel(at, 4); err == nil {
			at = done
		}
	}
}

// Trim drops the mapping for lpa; the old page becomes garbage.
func (r *Regular) Trim(lpa uint64, at vclock.Time) (vclock.Time, error) {
	if err := r.CheckLPA(lpa); err != nil {
		return at, err
	}
	at = r.TouchMapping(lpa, true, at)
	r.TrimOps++
	r.InvalidatePPA(r.AMT[lpa])
	r.AMT[lpa] = flash.NullPPA
	return at, nil
}

// ensureFree reclaims space incrementally: a write that finds the pool at
// the low watermark pays for at most a couple of block reclamations, so GC
// cost spreads across requests instead of landing as one long stall. Only
// when the pool is nearly empty does GC run to the high watermark
// unconditionally.
func (r *Regular) ensureFree(at vclock.Time) (vclock.Time, error) {
	if r.FreeBlocks() > r.P.GCLowBlocks {
		return at, nil
	}
	passes := 0
	for r.FreeBlocks() < r.P.GCHighBlocks {
		emergency := r.FreeBlocks() <= 2
		if !emergency && passes >= 2 {
			break
		}
		var err error
		at, err = r.collectOnce(at)
		if err != nil {
			return at, err
		}
		passes++
	}
	if r.FreeBlocks() > r.P.GCLowBlocks && r.WearCheckDue() && r.WearImbalanced() {
		// Foreground: a single swap at most — the batch runs in idle time.
		return r.wearLevel(at, 1)
	}
	return at, nil
}

// collectOnce reclaims one victim block: migrate valid pages, erase.
func (r *Regular) collectOnce(at vclock.Time) (vclock.Time, error) {
	victim := r.VictimBlock(nil)
	if victim < 0 {
		return at, ErrDeviceFull
	}
	r.GC.Runs++
	var err error
	at, err = r.MigrateValidPages(victim, at)
	if err != nil {
		return at, err
	}
	return r.EraseBlock(victim, at)
}

// wearLevel swaps the coldest block's content forward so the low-erase
// block rejoins the pool (§3.8's cold-data swapping). The swap migrates a
// whole block of valid data, so it only runs with pool headroom.
func (r *Regular) wearLevel(at vclock.Time, maxSwaps int) (vclock.Time, error) {
	for swaps := 0; swaps < maxSwaps && r.WearImbalanced(); swaps++ {
		if r.FreeBlocks() <= r.P.GCLowBlocks {
			return at, nil
		}
		cold := r.ColdBlock(nil)
		if cold < 0 {
			return at, nil
		}
		var err error
		at, err = r.MigrateValidPages(cold, at)
		if err != nil {
			return at, err
		}
		if at, err = r.EraseBlock(cold, at); err != nil {
			return at, err
		}
	}
	return at, nil
}
