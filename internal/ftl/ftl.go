// Package ftl provides the flash-translation-layer machinery shared by the
// Regular SSD baseline and TimeSSD: the address mapping table (AMT), page
// validity table (PVT), block status table (BST), free-block pools, active
// write frontiers, victim selection, and wear leveling (Fig. 3, top half).
//
// The Regular type in this package is the conventional page-mapping FTL the
// paper compares against (§5.2); the TimeSSD FTL in internal/core builds on
// the same Base.
package ftl

import (
	"errors"
	"fmt"

	"almanac/internal/fault"
	"almanac/internal/flash"
	"almanac/internal/obs"
	"almanac/internal/vclock"
)

// Device is the host-facing block interface both FTLs implement. All
// operations carry the virtual time at which the host issues them and
// return the virtual completion time, from which the caller derives
// response latency.
type Device interface {
	// Read returns the current content of lpa. Reading a never-written or
	// trimmed LPA yields a zeroed page at zero device cost.
	Read(lpa uint64, at vclock.Time) (data []byte, done vclock.Time, err error)
	// Write stores data (at most one page) at lpa.
	Write(lpa uint64, data []byte, at vclock.Time) (done vclock.Time, err error)
	// Trim invalidates lpa.
	Trim(lpa uint64, at vclock.Time) (done vclock.Time, err error)
	// LogicalPages is the exported capacity in pages (raw minus OP space).
	LogicalPages() int
	// PageSize is the page size in bytes.
	PageSize() int
}

// Errors surfaced by FTL operations.
var (
	ErrOutOfRange = errors.New("ftl: logical address out of range")
	ErrDeviceFull = errors.New("ftl: no reclaimable space (device full)")
)

// Params configures an FTL instance.
type Params struct {
	Flash flash.Config

	// OPRatio is over-provisioning as a fraction of logical capacity
	// (0.15 means raw = 1.15 × logical, as on the paper's board).
	OPRatio float64

	// GCLowBlocks / GCHighBlocks are the free-block watermarks: GC starts
	// when the pool drops to the low mark and runs until the high mark.
	GCLowBlocks  int
	GCHighBlocks int

	// WearDelta is the max tolerated spread of per-block erase counts
	// before wear leveling swaps cold data; WearCheckEvery is how many
	// erases pass between checks.
	WearDelta      int
	WearCheckEvery int

	// MappingCacheSlots enables DFTL-style demand paging of the address
	// mapping table (the paper's Fig. 3: the AMT lives in flash as
	// translation pages located through the GMD, with recently-accessed
	// mappings cached). Zero means the whole table is cached — the
	// right model for the paper's board, whose DRAM holds the full AMT.
	// A positive value caches that many translation pages; misses charge
	// a flash read and dirty evictions a flash program.
	MappingCacheSlots int
}

// DefaultParams returns parameters for the default flash geometry.
func DefaultParams() Params {
	return WithFlash(flash.DefaultConfig())
}

// WithFlash derives sensible FTL parameters for a flash geometry.
func WithFlash(fc flash.Config) Params {
	total := fc.TotalBlocks()
	// Foreground GC triggers at the low mark and is incremental (a couple
	// of passes per request); the high mark is the background-GC refill
	// target. The gap between them absorbs bursts — a workload property,
	// not a device one — so the target is capped absolutely: an oversized
	// target makes background GC grind a retention-packed device.
	high := total / 16
	if high > 32 {
		high = 32
	}
	if high < 6 {
		high = 6
	}
	low := high / 2
	return Params{
		Flash:          fc,
		OPRatio:        0.15,
		GCLowBlocks:    low,
		GCHighBlocks:   high,
		WearDelta:      32,
		WearCheckEvery: 64,
	}
}

// blockQueue is a FIFO of block indices. FIFO order matters: returning
// erased blocks to the tail and allocating from the head rotates every
// block through service, which spreads wear even before the explicit
// wear-leveling pass runs.
type blockQueue struct {
	items []int
	head  int
}

func (q *blockQueue) push(blk int) { q.items = append(q.items, blk) }

func (q *blockQueue) pop() (int, bool) {
	if q.head >= len(q.items) {
		return 0, false
	}
	blk := q.items[q.head]
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		q.items = append(q.items[:0], q.items[q.head:]...)
		q.head = 0
	}
	return blk, true
}

func (q *blockQueue) len() int { return len(q.items) - q.head }

// blockState tracks a block's role in the pools.
type blockState uint8

const (
	bsFree blockState = iota
	bsActive
	bsSealed
	// bsBad is a grown bad block: its erase failed, so it is retired — never
	// returned to the free pool, never selected as a GC or wear victim. The
	// retirement is also persisted on the medium (every page KindBad), which
	// is how a rebuild scan re-retires the block after a crash.
	bsBad
)

// BlockInfo is the per-block entry of the block status table (BST).
type BlockInfo struct {
	State   blockState
	Kind    flash.PageKind // KindData, KindDelta (TimeSSD), KindFree when free
	Valid   int            // valid pages
	Invalid int            // invalidated pages (regular: reclaimable; TimeSSD: possibly retained)
	Fill    int            // programmed pages
}

// GCCounters aggregates garbage-collection work, the inputs of the paper's
// Eq. 1 overhead estimator.
type GCCounters struct {
	Reads    int64 // flash page reads performed by GC
	Writes   int64 // flash page writes performed by GC (migrations, delta pages)
	Erases   int64 // block erases
	DeltaOps int64 // delta compressions (TimeSSD only)
	Runs     int64 // GC invocations
}

// Base carries the state shared by both FTLs.
type Base struct {
	P   Params
	Arr *flash.Array

	logicalPages int

	AMT  []flash.PPA // address mapping table: LPA → PPA (NullPPA if unmapped)
	PVT  []bool      // page validity table, indexed by PPA
	Info []BlockInfo // block status table, indexed by block

	freeByCh  []blockQueue // per-channel free block queues (FIFO)
	freeCount int

	activeHost []int // per-channel host-write frontier blocks (-1 = none)
	activeGC   []int // per-channel GC/migration frontier blocks
	cursor     int   // round-robin channel cursor for host writes
	gcCursor   int

	HostPageWrites int64
	HostPageReads  int64
	TrimOps        int64
	GC             GCCounters
	MapStats       MapStats
	// ReadFailures counts pages lost to uncorrectable read errors during
	// internal operations (migration); the FTL skips them rather than
	// wedging, like firmware does past ECC.
	ReadFailures int64
	// ProgramFailures counts page programs the flash failed; each burned
	// the page it targeted and was relocated to a fresh one.
	ProgramFailures int64
	// GrownBadBlocks counts blocks retired after an erase failure.
	GrownBadBlocks int64

	mcache        *mapCache
	erasesSinceWL int
	erases        []int // in-core mirror of per-block erase counts (hot path)
}

// NewBase allocates the shared state over a fresh flash array.
func NewBase(p Params) (*Base, error) {
	arr, err := flash.New(p.Flash)
	if err != nil {
		return nil, err
	}
	return NewBaseOn(arr, p)
}

// NewBaseOn allocates the shared state over an existing array — the entry
// point for mount-time state rebuild. All blocks start in the free pool;
// the rebuilder adopts in-use blocks with Adopt.
func NewBaseOn(arr *flash.Array, p Params) (*Base, error) {
	if arr.Config() != p.Flash {
		return nil, errors.New("ftl: array geometry does not match params")
	}
	if p.OPRatio < 0 {
		return nil, errors.New("ftl: negative over-provisioning ratio")
	}
	if p.GCLowBlocks < 1 || p.GCHighBlocks < p.GCLowBlocks {
		return nil, errors.New("ftl: bad GC watermarks")
	}
	total := p.Flash.TotalPages()
	logical := int(float64(total) / (1 + p.OPRatio))
	// Keep at least the GC reserve out of the logical space.
	reserve := (p.GCHighBlocks + 2*p.Flash.Channels) * p.Flash.PagesPerBlock
	if logical > total-reserve {
		logical = total - reserve
	}
	if logical < p.Flash.PagesPerBlock {
		return nil, fmt.Errorf("ftl: geometry too small: %d logical pages", logical)
	}
	b := &Base{
		P:            p,
		Arr:          arr,
		logicalPages: logical,
		AMT:          make([]flash.PPA, logical),
		PVT:          make([]bool, total),
		Info:         make([]BlockInfo, p.Flash.TotalBlocks()),
		freeByCh:     make([]blockQueue, p.Flash.Channels),
		activeHost:   make([]int, p.Flash.Channels),
		activeGC:     make([]int, p.Flash.Channels),
	}
	for i := range b.AMT {
		b.AMT[i] = flash.NullPPA
	}
	for i := range b.activeHost {
		b.activeHost[i] = -1
		b.activeGC[i] = -1
	}
	for blk := 0; blk < p.Flash.TotalBlocks(); blk++ {
		ch := arr.ChannelOfBlock(blk)
		b.freeByCh[ch].push(blk)
	}
	b.freeCount = p.Flash.TotalBlocks()
	b.mcache = newMapCache(p.MappingCacheSlots, p.Flash.PageSize)
	b.erases = make([]int, p.Flash.TotalBlocks())
	for blk := range b.erases {
		b.erases[blk] = arr.EraseCount(blk)
	}
	return b, nil
}

// LogicalPages returns the exported capacity in pages.
func (b *Base) LogicalPages() int { return b.logicalPages }

// PageSize returns the flash page size.
func (b *Base) PageSize() int { return b.P.Flash.PageSize }

// FreeBlocks returns the number of blocks in the free pool.
func (b *Base) FreeBlocks() int { return b.freeCount }

// CheckLPA validates a logical address.
func (b *Base) CheckLPA(lpa uint64) error {
	if lpa >= uint64(b.logicalPages) {
		return fmt.Errorf("%w: lpa %d of %d", ErrOutOfRange, lpa, b.logicalPages)
	}
	return nil
}

// allocBlock pops a free block, preferring channel ch, and marks it active
// with the given kind. Returns -1 if the pool is empty.
func (b *Base) allocBlock(ch int, kind flash.PageKind) int {
	for i := 0; i < b.P.Flash.Channels; i++ {
		c := (ch + i) % b.P.Flash.Channels
		if blk, ok := b.freeByCh[c].pop(); ok {
			b.freeCount--
			b.Info[blk] = BlockInfo{State: bsActive, Kind: kind}
			return blk
		}
	}
	return -1
}

// releaseBlock returns an erased block to the free pool.
func (b *Base) releaseBlock(blk int) {
	ch := b.Arr.ChannelOfBlock(blk)
	b.Info[blk] = BlockInfo{State: bsFree, Kind: flash.KindFree}
	b.freeByCh[ch].push(blk)
	b.freeCount++
}

// frontier describes one of the two write frontiers (host or GC).
type frontier struct {
	active *[]int
	cursor *int
}

func (b *Base) hostFrontier() frontier { return frontier{&b.activeHost, &b.cursor} }
func (b *Base) gcFrontier() frontier   { return frontier{&b.activeGC, &b.gcCursor} }

// HostFrontier exposes the host-write frontier for embedding FTLs.
func (b *Base) HostFrontier() frontier { return b.hostFrontier() }

// GCFrontier exposes the GC/migration frontier for embedding FTLs.
func (b *Base) GCFrontier() frontier { return b.gcFrontier() }

// AppendPage programs data+oob at the next page of fr's current active
// block (rotating across channels), sealing and replacing blocks as they
// fill. kind tags newly allocated blocks. Returns the PPA and completion.
//
// A program failure burns the target page; AppendPage records the burned
// page as invalid fill and relocates the write to the next page (or the
// next block) transparently. The loop terminates because each failed
// attempt consumes one page of finite capacity: a pathological plan that
// fails every program ends in ErrDeviceFull, like worn-out hardware would.
func (b *Base) AppendPage(fr frontier, kind flash.PageKind, data []byte, oob flash.OOB, at vclock.Time) (flash.PPA, vclock.Time, error) {
	chans := b.P.Flash.Channels
	misses := 0 // consecutive channels with no block to allocate
	for misses < chans {
		ch := *fr.cursor % chans
		*fr.cursor = (*fr.cursor + 1) % chans
		blk := (*fr.active)[ch]
		if blk < 0 {
			blk = b.allocBlock(ch, kind)
			if blk < 0 {
				misses++
				continue
			}
			(*fr.active)[ch] = blk
		}
		misses = 0
		ppa, done, err := b.Arr.Program(blk, data, oob, at)
		if err != nil {
			if errors.Is(err, fault.ErrProgramFail) {
				b.ProgramFailures++
				b.Info[blk].Fill++
				b.Info[blk].Invalid++
				if b.Info[blk].Fill == b.P.Flash.PagesPerBlock {
					b.Info[blk].State = bsSealed
					(*fr.active)[ch] = -1
				}
				at = done
				continue // relocate to the next page/block
			}
			return flash.NullPPA, at, err
		}
		b.Info[blk].Fill++
		b.Info[blk].Valid++
		b.PVT[ppa] = true
		if b.Info[blk].Fill == b.P.Flash.PagesPerBlock {
			b.Info[blk].State = bsSealed
			(*fr.active)[ch] = -1
		}
		return ppa, done, nil
	}
	return flash.NullPPA, at, ErrDeviceFull
}

// InvalidatePPA marks a physical page invalid and updates the BST.
func (b *Base) InvalidatePPA(ppa flash.PPA) {
	if ppa == flash.NullPPA || !b.PVT[ppa] {
		return
	}
	b.PVT[ppa] = false
	blk := b.Arr.BlockOf(ppa)
	b.Info[blk].Valid--
	b.Info[blk].Invalid++
}

// VictimBlock returns the sealed block with the most invalid pages among
// those accepted by keep (nil = all sealed blocks), or -1 if none has any
// invalid page.
func (b *Base) VictimBlock(keep func(blk int) bool) int {
	best, bestInvalid, bestErases := -1, 0, 0
	for blk := range b.Info {
		info := &b.Info[blk]
		if info.State != bsSealed || info.Invalid == 0 {
			continue
		}
		if keep != nil && !keep(blk) {
			continue
		}
		// Ties on invalid count break toward the least-worn block so equal
		// victims rotate instead of the first index starving the rest.
		e := b.erases[blk]
		if info.Invalid > bestInvalid || (info.Invalid == bestInvalid && e < bestErases) {
			best, bestInvalid, bestErases = blk, info.Invalid, e
		}
	}
	return best
}

// VictimBlockOfKind is VictimBlock restricted to sealed blocks of one kind.
// Same scan order and tie-break as VictimBlock with an equivalent keep
// closure; the inlined predicate keeps the per-pass GC victim search off
// the closure-call path.
func (b *Base) VictimBlockOfKind(kind flash.PageKind) int {
	best, bestInvalid, bestErases := -1, 0, 0
	for blk := range b.Info {
		info := &b.Info[blk]
		if info.State != bsSealed || info.Invalid == 0 || info.Kind != kind {
			continue
		}
		e := b.erases[blk]
		if info.Invalid > bestInvalid || (info.Invalid == bestInvalid && e < bestErases) {
			best, bestInvalid, bestErases = blk, info.Invalid, e
		}
	}
	return best
}

// SealedBlocks calls fn for every sealed block.
func (b *Base) SealedBlocks(fn func(blk int, info *BlockInfo)) {
	for blk := range b.Info {
		if b.Info[blk].State == bsSealed {
			fn(blk, &b.Info[blk])
		}
	}
}

// EraseBlock erases blk, clears its validity bits, returns it to the free
// pool, and counts the erase toward GC work and the wear-leveling interval.
//
// An erase failure retires blk as a grown bad block: validity is cleared,
// the BST entry goes bsBad, and the block never re-enters the free pool.
// Retirement is transparent to callers (the erase "succeeded" but freed
// nothing); the caller's reclamation loop simply moves to the next victim.
func (b *Base) EraseBlock(blk int, at vclock.Time) (vclock.Time, error) {
	done, err := b.Arr.Erase(blk, at)
	if err != nil {
		if errors.Is(err, fault.ErrEraseFail) {
			ps := b.P.Flash.PagesPerBlock
			base := blk * ps
			for off := 0; off < ps; off++ {
				b.PVT[base+off] = false
			}
			b.Info[blk] = BlockInfo{State: bsBad, Kind: flash.KindBad, Invalid: ps, Fill: ps}
			b.GrownBadBlocks++
			return done, nil
		}
		return at, err
	}
	base := blk * b.P.Flash.PagesPerBlock
	for off := 0; off < b.P.Flash.PagesPerBlock; off++ {
		b.PVT[base+off] = false
	}
	b.GC.Erases++
	b.erasesSinceWL++
	b.erases[blk]++
	b.releaseBlock(blk)
	return done, nil
}

// AllocDedicated pops a free block (preferring channel chHint) for a
// dedicated purpose such as TimeSSD's delta blocks. Returns -1 when the
// free pool is empty. The block starts in the active state.
func (b *Base) AllocDedicated(kind flash.PageKind, chHint int) int {
	return b.allocBlock(chHint, kind)
}

// ProgramDedicated appends a page to a dedicated block allocated with
// AllocDedicated, maintaining fill/validity bookkeeping. sealed reports
// whether the block just filled up (the owner should allocate a new one).
//
// A program failure burns the page: fill/invalid are recorded (sealing the
// block if the burned page was its last) and fault.ErrProgramFail is
// returned with the post-attempt completion time, so the owner can retry on
// the same block or allocate a fresh one when sealed.
func (b *Base) ProgramDedicated(blk int, data []byte, oob flash.OOB, at vclock.Time) (ppa flash.PPA, done vclock.Time, sealed bool, err error) {
	ppa, done, err = b.Arr.Program(blk, data, oob, at)
	if err != nil {
		if errors.Is(err, fault.ErrProgramFail) {
			b.ProgramFailures++
			b.Info[blk].Fill++
			b.Info[blk].Invalid++
			if b.Info[blk].Fill == b.P.Flash.PagesPerBlock {
				b.Info[blk].State = bsSealed
				sealed = true
			}
			return flash.NullPPA, done, sealed, err
		}
		return flash.NullPPA, at, false, err
	}
	b.Info[blk].Fill++
	b.Info[blk].Valid++
	b.PVT[ppa] = true
	if b.Info[blk].Fill == b.P.Flash.PagesPerBlock {
		b.Info[blk].State = bsSealed
		sealed = true
	}
	return ppa, done, sealed, nil
}

// WearCheckDue reports whether enough erases have happened to warrant a
// wear-leveling pass, resetting the interval counter when it fires.
func (b *Base) WearCheckDue() bool {
	if b.erasesSinceWL < b.P.WearCheckEvery {
		return false
	}
	b.erasesSinceWL = 0
	return true
}

// ColdBlock picks the sealed block with the lowest erase count whose data
// is fully valid (cold data), restricted by keep. Returns -1 if none.
func (b *Base) ColdBlock(keep func(blk int) bool) int {
	best, bestErases := -1, int(^uint(0)>>1)
	for blk := range b.Info {
		info := &b.Info[blk]
		if info.State != bsSealed || info.Valid == 0 {
			continue
		}
		if keep != nil && !keep(blk) {
			continue
		}
		if e := b.erases[blk]; e < bestErases {
			best, bestErases = blk, e
		}
	}
	return best
}

// AdoptedBlock describes one in-use block discovered by a mount-time scan.
// Adopted blocks must be full (the rebuilder pads partially-written blocks
// closed before adoption, as firmware does after a crash).
type AdoptedBlock struct {
	Blk     int
	Kind    flash.PageKind
	Valid   int
	Invalid int
	// Bad marks a grown bad block rediscovered by the scan (every page
	// KindBad): it is re-retired instead of rejoining service.
	Bad bool
}

// Adopt installs BST entries for scanned blocks and rebuilds the free pool
// from the remainder. The caller must already have set the PVT bits that
// justify each block's Valid count.
func (b *Base) Adopt(blocks []AdoptedBlock) error {
	ps := b.P.Flash.PagesPerBlock
	inUse := make(map[int]bool, len(blocks))
	for _, ab := range blocks {
		if ab.Blk < 0 || ab.Blk >= len(b.Info) {
			return fmt.Errorf("ftl: adopt out-of-range block %d", ab.Blk)
		}
		if inUse[ab.Blk] {
			return fmt.Errorf("ftl: block %d adopted twice", ab.Blk)
		}
		if got := b.Arr.WritePtr(ab.Blk); got != ps {
			return fmt.Errorf("ftl: adopting partially-written block %d (%d/%d pages)", ab.Blk, got, ps)
		}
		if ab.Valid+ab.Invalid != ps {
			return fmt.Errorf("ftl: block %d counts %d+%d != %d", ab.Blk, ab.Valid, ab.Invalid, ps)
		}
		inUse[ab.Blk] = true
		if ab.Bad {
			b.Info[ab.Blk] = BlockInfo{State: bsBad, Kind: flash.KindBad, Invalid: ps, Fill: ps}
			b.GrownBadBlocks++
			continue
		}
		b.Info[ab.Blk] = BlockInfo{State: bsSealed, Kind: ab.Kind, Valid: ab.Valid, Invalid: ab.Invalid, Fill: ps}
	}
	// Rebuild the free pool from everything not adopted.
	for ch := range b.freeByCh {
		b.freeByCh[ch] = blockQueue{}
	}
	b.freeCount = 0
	for blk := 0; blk < b.P.Flash.TotalBlocks(); blk++ {
		if inUse[blk] {
			continue
		}
		if got := b.Arr.WritePtr(blk); got != 0 {
			return fmt.Errorf("ftl: unadopted block %d has %d programmed pages", blk, got)
		}
		b.Info[blk] = BlockInfo{State: bsFree, Kind: flash.KindFree}
		b.freeByCh[b.Arr.ChannelOfBlock(blk)].push(blk)
		b.freeCount++
	}
	return nil
}

// MigrateValidPages moves every valid page of blk to the GC frontier,
// updating the AMT from each page's OOB reverse mapping. OOB metadata
// (including back-pointers) is copied verbatim, so version chains survive
// relocation of their valid head. GC counters are charged. If onRelocated
// is non-nil it is called with each source PPA vacated by the migration —
// TimeSSD marks these reclaimable so a Bloom-filter false positive cannot
// mistake a relocation shadow for a retained version.
func (b *Base) MigrateValidPages(blk int, at vclock.Time, onRelocated ...func(flash.PPA)) (vclock.Time, error) {
	ps := b.P.Flash.PagesPerBlock
	for off := 0; off < ps && b.Info[blk].Valid > 0; off++ {
		ppa := b.Arr.AddrOf(blk, off)
		if !b.PVT[ppa] {
			continue
		}
		data, oob, done, err := b.Arr.Read(ppa, at)
		if err != nil {
			if errors.Is(err, flash.ErrReadFailed) {
				// The page is unrecoverable: count the loss, drop it from
				// the valid set so the erase can proceed.
				b.ReadFailures++
				b.PVT[ppa] = false
				b.Info[blk].Valid--
				b.Info[blk].Invalid++
				at = done
				continue
			}
			return at, err
		}
		b.GC.Reads++
		at = done
		newPPA, done, err := b.AppendPage(b.gcFrontier(), oob.Kind, data, oob, at)
		if err != nil {
			return at, err
		}
		b.GC.Writes++
		at = done
		b.PVT[ppa] = false
		b.Info[blk].Valid--
		b.Info[blk].Invalid++
		if oob.Kind == flash.KindData {
			b.AMT[oob.LPA] = newPPA
		}
		for _, fn := range onRelocated {
			fn(ppa)
		}
	}
	return at, nil
}

// WearImbalanced reports whether the erase-count spread exceeds WearDelta.
func (b *Base) WearImbalanced() bool {
	min, max := b.Arr.WearSpread()
	return max-min > b.P.WearDelta
}

// WriteAmplification returns flash programs / host page writes.
func (b *Base) WriteAmplification() float64 {
	if b.HostPageWrites == 0 {
		return 0
	}
	return float64(b.Arr.Stats().Programs) / float64(b.HostPageWrites)
}

// Counters assembles the base FTL's share of the canonical counter
// surface: host command counts, flash micro-operation totals, and GC
// work. TimeSSD layers its retention counters on top (core.Counters);
// every legacy stats type is a view of the result.
func (b *Base) Counters() obs.Counters {
	fs := b.Arr.Stats()
	return obs.Counters{
		HostPageWrites: b.HostPageWrites,
		HostPageReads:  b.HostPageReads,
		TrimOps:        b.TrimOps,
		FlashReads:     fs.Reads,
		FlashPrograms:  fs.Programs,
		FlashErases:    fs.Erases,
		GCRuns:         b.GC.Runs,
		GCReads:        b.GC.Reads,
		GCWrites:       b.GC.Writes,
		GCErases:       b.GC.Erases,
		GCDeltaOps:     b.GC.DeltaOps,
		ReadFailures:   b.ReadFailures,
	}
}
