package ftl

import (
	"container/list"

	"almanac/internal/vclock"
)

// mapCache is the DFTL-style demand cache over the address mapping table.
// The AMT's authoritative content stays in core (the simulator does not
// materialise translation pages as stored flash pages), but the *cost* of
// demand paging is charged faithfully: a miss reads one translation page
// from flash, and evicting a dirtied translation page writes it back. The
// GMD of Fig. 3 is the vpn→location directory; here it is implicit in the
// channel assignment (translation pages stripe across channels).
type mapCache struct {
	slots          int
	entriesPerPage int
	lru            *list.List // front = most recent; values are vpns
	byVPN          map[uint64]*list.Element
	dirty          map[uint64]bool
}

// MapStats counts demand-paging activity on the mapping table.
type MapStats struct {
	Hits       int64
	Misses     int64
	Writebacks int64
}

func newMapCache(slots, pageSize int) *mapCache {
	if slots <= 0 {
		return nil
	}
	entries := pageSize / 4 // 4-byte mapping entries, as in the paper's sizing example (§3.5)
	if entries < 1 {
		entries = 1
	}
	return &mapCache{
		slots:          slots,
		entriesPerPage: entries,
		lru:            list.New(),
		byVPN:          make(map[uint64]*list.Element, slots),
		dirty:          make(map[uint64]bool, slots),
	}
}

// TouchMapping accounts for the translation-table access of one host
// operation on lpa. With the cache disabled (full-DRAM mapping) it is
// free. write marks the entry's translation page dirty, so its eventual
// eviction costs a flash program.
func (b *Base) TouchMapping(lpa uint64, write bool, at vclock.Time) vclock.Time {
	mc := b.mcache
	if mc == nil {
		return at
	}
	vpn := lpa / uint64(mc.entriesPerPage)
	if el, ok := mc.byVPN[vpn]; ok {
		mc.lru.MoveToFront(el)
		if write {
			mc.dirty[vpn] = true
		}
		b.MapStats.Hits++
		return at
	}
	b.MapStats.Misses++
	// Evict the least-recently-used translation page if the cache is full.
	if mc.lru.Len() >= mc.slots {
		back := mc.lru.Back()
		evicted := back.Value.(uint64)
		mc.lru.Remove(back)
		delete(mc.byVPN, evicted)
		if mc.dirty[evicted] {
			delete(mc.dirty, evicted)
			b.MapStats.Writebacks++
			at = b.Arr.Charge(int(evicted)%b.P.Flash.Channels, at, b.P.Flash.ProgLatency)
		}
	}
	// Fetch the translation page.
	at = b.Arr.Charge(int(vpn)%b.P.Flash.Channels, at, b.P.Flash.ReadLatency)
	mc.byVPN[vpn] = mc.lru.PushFront(vpn)
	if write {
		mc.dirty[vpn] = true
	}
	return at
}

// MappingCached reports whether lpa's translation entry is currently
// resident (always true with the cache disabled).
func (b *Base) MappingCached(lpa uint64) bool {
	if b.mcache == nil {
		return true
	}
	_, ok := b.mcache.byVPN[lpa/uint64(b.mcache.entriesPerPage)]
	return ok
}
