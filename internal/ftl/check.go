package ftl

import (
	"fmt"

	"almanac/internal/flash"
)

// CheckConsistency cross-validates the FTL's in-core structures against
// each other and against the flash array. It is O(device) and meant for
// tests and debugging assertions, not the I/O path. The first violated
// invariant is returned.
func (b *Base) CheckConsistency() error {
	ps := b.P.Flash.PagesPerBlock
	freeBlocks := 0
	for blk := range b.Info {
		info := &b.Info[blk]
		valid, programmed := 0, b.Arr.WritePtr(blk)
		for off := 0; off < ps; off++ {
			if b.PVT[b.Arr.AddrOf(blk, off)] {
				valid++
			}
		}
		if valid != info.Valid {
			return fmt.Errorf("ftl: block %d: PVT says %d valid pages, BST says %d", blk, valid, info.Valid)
		}
		switch info.State {
		case bsFree:
			freeBlocks++
			if info.Fill != 0 || info.Valid != 0 || info.Invalid != 0 {
				return fmt.Errorf("ftl: free block %d has counts %+v", blk, *info)
			}
			if programmed != 0 {
				return fmt.Errorf("ftl: free block %d has %d programmed pages on flash", blk, programmed)
			}
		case bsActive, bsSealed:
			if info.Fill != programmed {
				return fmt.Errorf("ftl: block %d: BST fill %d, flash write pointer %d", blk, info.Fill, programmed)
			}
			if info.Valid+info.Invalid != info.Fill {
				return fmt.Errorf("ftl: block %d: valid %d + invalid %d != fill %d",
					blk, info.Valid, info.Invalid, info.Fill)
			}
			if info.State == bsSealed && info.Fill != ps {
				return fmt.Errorf("ftl: sealed block %d only %d/%d full", blk, info.Fill, ps)
			}
			if info.Kind == flash.KindFree {
				return fmt.Errorf("ftl: in-use block %d has kind free", blk)
			}
		case bsBad:
			// A grown bad block: retired, fully "filled" with dead pages,
			// and pinned full on the medium so the retirement persists.
			if info.Valid != 0 || info.Invalid != ps || info.Fill != ps {
				return fmt.Errorf("ftl: bad block %d has counts %+v", blk, *info)
			}
			if programmed != ps {
				return fmt.Errorf("ftl: bad block %d has %d/%d programmed pages on flash", blk, programmed, ps)
			}
		default:
			return fmt.Errorf("ftl: block %d in unknown state %d", blk, info.State)
		}
	}
	if freeBlocks != b.freeCount {
		return fmt.Errorf("ftl: free pool count %d, but %d blocks are in the free state", b.freeCount, freeBlocks)
	}
	// Every mapped LPA must point at a valid data page whose OOB agrees.
	for lpa, ppa := range b.AMT {
		if ppa == flash.NullPPA {
			continue
		}
		if int(ppa) >= b.P.Flash.TotalPages() {
			return fmt.Errorf("ftl: lpa %d maps to out-of-range ppa %d", lpa, ppa)
		}
		if !b.PVT[ppa] {
			return fmt.Errorf("ftl: lpa %d maps to invalid ppa %d", lpa, ppa)
		}
		oob, err := b.Arr.PeekOOB(ppa)
		if err != nil {
			return fmt.Errorf("ftl: lpa %d maps to unreadable ppa %d: %w", lpa, ppa, err)
		}
		if oob.Kind != flash.KindData {
			return fmt.Errorf("ftl: lpa %d maps to %v page %d", lpa, oob.Kind, ppa)
		}
		if oob.LPA != uint64(lpa) {
			return fmt.Errorf("ftl: reverse mapping of ppa %d says lpa %d, AMT says %d", ppa, oob.LPA, lpa)
		}
	}
	return nil
}
