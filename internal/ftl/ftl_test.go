package ftl

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"almanac/internal/flash"
	"almanac/internal/vclock"
)

func tinyParams() Params {
	fc := flash.DefaultConfig()
	fc.Channels = 2
	fc.ChipsPerChannel = 1
	fc.BlocksPerPlane = 16
	fc.PagesPerBlock = 8
	fc.PageSize = 128
	p := WithFlash(fc)
	return p
}

func newRegular(t *testing.T) *Regular {
	t.Helper()
	r, err := NewRegular(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func pageOf(r *Regular, b byte) []byte {
	p := make([]byte, r.PageSize())
	for i := range p {
		p[i] = b
	}
	return p
}

func TestLogicalCapacityExcludesOP(t *testing.T) {
	r := newRegular(t)
	total := r.P.Flash.TotalPages()
	if r.LogicalPages() >= total {
		t.Fatalf("logical %d not smaller than raw %d", r.LogicalPages(), total)
	}
	if r.LogicalPages() <= 0 {
		t.Fatal("no logical capacity")
	}
}

func TestReadUnwrittenIsZero(t *testing.T) {
	r := newRegular(t)
	data, done, err := r.Read(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if done != 100 {
		t.Fatalf("unmapped read cost device time: %v", done)
	}
	for _, b := range data {
		if b != 0 {
			t.Fatal("unwritten page not zero")
		}
	}
}

func TestWriteReadBack(t *testing.T) {
	r := newRegular(t)
	at, err := r.Write(3, pageOf(r, 0xaa), 0)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := r.Read(3, at)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, pageOf(r, 0xaa)) {
		t.Fatal("read back mismatch")
	}
}

func TestOverwriteInvalidatesOld(t *testing.T) {
	r := newRegular(t)
	at, _ := r.Write(5, pageOf(r, 1), 0)
	at, _ = r.Write(5, pageOf(r, 2), at)
	data, _, _ := r.Read(5, at)
	if data[0] != 2 {
		t.Fatal("overwrite not visible")
	}
	// Exactly one invalid page exists device-wide.
	invalid := 0
	for i := range r.Info {
		invalid += r.Info[i].Invalid
	}
	if invalid != 1 {
		t.Fatalf("invalid pages = %d, want 1", invalid)
	}
}

func TestTrim(t *testing.T) {
	r := newRegular(t)
	at, _ := r.Write(9, pageOf(r, 7), 0)
	at, err := r.Trim(9, at)
	if err != nil {
		t.Fatal(err)
	}
	data, _, _ := r.Read(9, at)
	for _, b := range data {
		if b != 0 {
			t.Fatal("trimmed page still has content")
		}
	}
}

func TestOutOfRange(t *testing.T) {
	r := newRegular(t)
	lpa := uint64(r.LogicalPages())
	if _, err := r.Write(lpa, pageOf(r, 1), 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("write: %v", err)
	}
	if _, _, err := r.Read(lpa, 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read: %v", err)
	}
	if _, err := r.Trim(lpa, 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("trim: %v", err)
	}
}

// TestGCReclaimsSpace drives far more write traffic than raw capacity; GC
// must keep the device writable and mappings correct throughout.
func TestGCReclaimsSpace(t *testing.T) {
	r := newRegular(t)
	rng := rand.New(rand.NewSource(1))
	logical := r.LogicalPages() / 2 // 50% utilisation
	model := make(map[uint64]byte)
	var at vclock.Time
	writes := r.P.Flash.TotalPages() * 4
	for i := 0; i < writes; i++ {
		lpa := uint64(rng.Intn(logical))
		b := byte(rng.Intn(255) + 1)
		var err error
		at, err = r.Write(lpa, pageOf(r, b), at)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		model[lpa] = b
	}
	if r.GC.Runs == 0 {
		t.Fatal("GC never ran despite 4x device writes")
	}
	for lpa, want := range model {
		data, _, err := r.Read(lpa, at)
		if err != nil {
			t.Fatalf("read %d: %v", lpa, err)
		}
		if data[0] != want {
			t.Fatalf("lpa %d: got %d want %d", lpa, data[0], want)
		}
	}
}

func TestWriteAmplificationAboveOne(t *testing.T) {
	r := newRegular(t)
	rng := rand.New(rand.NewSource(2))
	logical := int(float64(r.LogicalPages()) * 0.9)
	var at vclock.Time
	for i := 0; i < r.P.Flash.TotalPages()*4; i++ {
		var err error
		at, err = r.Write(uint64(rng.Intn(logical)), pageOf(r, byte(i)), at)
		if err != nil {
			t.Fatal(err)
		}
	}
	wa := r.WriteAmplification()
	if wa <= 1.0 {
		t.Fatalf("write amplification %.3f under pressure, want > 1", wa)
	}
	if wa > 10 {
		t.Fatalf("write amplification %.3f absurdly high", wa)
	}
}

func TestDeviceFullWithAllValid(t *testing.T) {
	r := newRegular(t)
	var at vclock.Time
	// Fill every logical page once (all data valid, nothing to reclaim),
	// then keep writing unique pages until the FTL must give up.
	for lpa := 0; lpa < r.LogicalPages(); lpa++ {
		var err error
		at, err = r.Write(uint64(lpa), pageOf(r, 1), at)
		if err != nil {
			if errors.Is(err, ErrDeviceFull) {
				return // acceptable: ran out while still priming
			}
			t.Fatal(err)
		}
	}
	// Now overwrites succeed (they create garbage to collect).
	if _, err := r.Write(0, pageOf(r, 2), at); err != nil {
		t.Fatalf("overwrite on full-but-garbage-free device: %v", err)
	}
}

func TestWearLevelingBoundsSpread(t *testing.T) {
	p := tinyParams()
	p.WearDelta = 4
	p.WearCheckEvery = 8
	r, err := NewRegular(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	// Static cold data in half the space, hot updates in a few pages:
	// without wear leveling the cold blocks would never be erased.
	var at vclock.Time
	cold := r.LogicalPages() / 2
	for lpa := 0; lpa < cold; lpa++ {
		at, err = r.Write(uint64(lpa), pageOf(r, 1), at)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < r.P.Flash.TotalPages()*8; i++ {
		lpa := uint64(cold + rng.Intn(4))
		at, err = r.Write(lpa, pageOf(r, byte(i)), at)
		if err != nil {
			t.Fatal(err)
		}
	}
	min, max := r.Arr.WearSpread()
	if max == 0 {
		t.Fatal("no erases happened")
	}
	if min == 0 {
		t.Fatalf("wear leveling never recycled the coldest block (spread %d..%d)", min, max)
	}
}

func TestMigratePreservesOOB(t *testing.T) {
	r := newRegular(t)
	var at vclock.Time
	at, _ = r.Write(1, pageOf(r, 1), at)
	ppa := r.AMT[1]
	blk := r.Arr.BlockOf(ppa)
	// Force-migrate the block holding LPA 1.
	at, err := r.MigrateValidPages(blk, at)
	if err != nil {
		t.Fatal(err)
	}
	newPPA := r.AMT[1]
	if newPPA == ppa {
		t.Fatal("page did not move")
	}
	_, oob, _, err := r.Arr.Read(newPPA, at)
	if err != nil {
		t.Fatal(err)
	}
	if oob.LPA != 1 {
		t.Fatalf("OOB LPA after migration: %d", oob.LPA)
	}
}

func TestBadParams(t *testing.T) {
	p := tinyParams()
	p.OPRatio = -1
	if _, err := NewRegular(p); err == nil {
		t.Fatal("negative OP accepted")
	}
	p = tinyParams()
	p.GCLowBlocks = 0
	if _, err := NewRegular(p); err == nil {
		t.Fatal("zero GC low watermark accepted")
	}
	p = tinyParams()
	p.GCHighBlocks = p.GCLowBlocks - 1
	if _, err := NewRegular(p); err == nil {
		t.Fatal("inverted watermarks accepted")
	}
}

// TestRandomisedModelCheck runs a random mixed workload against a map model
// (property: the FTL is linearisable to a simple key-value store).
func TestRandomisedModelCheck(t *testing.T) {
	r := newRegular(t)
	rng := rand.New(rand.NewSource(4))
	logical := r.LogicalPages() * 3 / 4
	model := make(map[uint64]byte)
	var at vclock.Time
	for i := 0; i < 6000; i++ {
		lpa := uint64(rng.Intn(logical))
		switch rng.Intn(10) {
		case 0: // trim
			var err error
			at, err = r.Trim(lpa, at)
			if err != nil {
				t.Fatal(err)
			}
			delete(model, lpa)
		case 1, 2: // read
			data, _, err := r.Read(lpa, at)
			if err != nil {
				t.Fatal(err)
			}
			want := model[lpa] // zero if absent
			if data[0] != want {
				t.Fatalf("step %d: lpa %d = %d, want %d", i, lpa, data[0], want)
			}
		default: // write
			b := byte(rng.Intn(255) + 1)
			var err error
			at, err = r.Write(lpa, pageOf(r, b), at)
			if err != nil {
				t.Fatal(err)
			}
			model[lpa] = b
		}
	}
}
