package ftl

import (
	"math/rand"
	"testing"

	"almanac/internal/vclock"
)

func cachedParams(slots int) Params {
	p := tinyParams()
	p.MappingCacheSlots = slots
	return p
}

func TestMappingFullyCachedIsFree(t *testing.T) {
	r, err := NewRegular(cachedParams(0))
	if err != nil {
		t.Fatal(err)
	}
	at, err := r.Write(1, pageOf(r, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Read(1, at); err != nil {
		t.Fatal(err)
	}
	if r.MapStats.Hits+r.MapStats.Misses != 0 {
		t.Fatalf("fully-cached mapping produced demand-paging stats: %+v", r.MapStats)
	}
	if !r.MappingCached(1) {
		t.Fatal("fully-cached mapping reported a miss")
	}
}

func TestMappingMissChargesRead(t *testing.T) {
	r, err := NewRegular(cachedParams(2))
	if err != nil {
		t.Fatal(err)
	}
	// First access to an LPA's translation page misses and costs a
	// translation-page read before the data read even starts.
	start := vclock.Time(vclock.Second)
	_, done, err := r.Read(5, start)
	if err != nil {
		t.Fatal(err)
	}
	if r.MapStats.Misses != 1 {
		t.Fatalf("misses = %d", r.MapStats.Misses)
	}
	// Unmapped LPA: the only cost is the translation fetch.
	if got, want := done.Sub(start), r.P.Flash.ReadLatency; got != want {
		t.Fatalf("miss charged %v, want one read latency %v", got, want)
	}
	// Second access hits for free.
	_, done2, _ := r.Read(5, done)
	if r.MapStats.Hits != 1 {
		t.Fatalf("hits = %d", r.MapStats.Hits)
	}
	if done2 != done {
		t.Fatalf("hit charged %v", done2.Sub(done))
	}
}

func TestMappingEvictionWritesBackDirty(t *testing.T) {
	r, err := NewRegular(cachedParams(1))
	if err != nil {
		t.Fatal(err)
	}
	entries := uint64(r.PageSize() / 4)
	// Dirty translation page 0 via a write…
	at, err := r.Write(0, pageOf(r, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	// …then touch a different translation page: the eviction must charge a
	// program (write-back) plus the read (fetch).
	before := at
	_, at, err = r.Read(entries*3, before)
	if err != nil {
		t.Fatal(err)
	}
	if r.MapStats.Writebacks != 1 {
		t.Fatalf("writebacks = %d", r.MapStats.Writebacks)
	}
	if got := at.Sub(before); got < r.P.Flash.ReadLatency+r.P.Flash.ProgLatency {
		t.Fatalf("dirty eviction charged only %v", got)
	}
	if r.MappingCached(0) {
		t.Fatal("evicted translation page still reported cached")
	}
}

func TestMappingCacheCorrectnessUnderChurn(t *testing.T) {
	// Demand paging must never change WHAT is read — only when.
	r, err := NewRegular(cachedParams(2))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	model := map[uint64]byte{}
	var at vclock.Time
	logical := r.LogicalPages() / 2
	for i := 0; i < 3000; i++ {
		lpa := uint64(rng.Intn(logical))
		if rng.Intn(3) == 0 {
			data, _, err := r.Read(lpa, at)
			if err != nil {
				t.Fatal(err)
			}
			if data[0] != model[lpa] {
				t.Fatalf("step %d: lpa %d = %d want %d", i, lpa, data[0], model[lpa])
			}
			continue
		}
		b := byte(rng.Intn(255) + 1)
		if at, err = r.Write(lpa, pageOf(r, b), at); err != nil {
			t.Fatal(err)
		}
		model[lpa] = b
	}
	if r.MapStats.Misses == 0 || r.MapStats.Hits == 0 {
		t.Fatalf("cache never exercised: %+v", r.MapStats)
	}
}

func TestMappingLocalityHitsMore(t *testing.T) {
	// A sequential scan (high translation-page locality) must hit far more
	// often than a uniform random scan with the same cache.
	run := func(sequential bool) float64 {
		r, err := NewRegular(cachedParams(2))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		var at vclock.Time
		logical := r.LogicalPages()
		for i := 0; i < 2000; i++ {
			lpa := uint64(i % logical)
			if !sequential {
				lpa = uint64(rng.Intn(logical))
			}
			if at, err = r.Write(lpa, pageOf(r, 1), at); err != nil {
				t.Fatal(err)
			}
		}
		total := r.MapStats.Hits + r.MapStats.Misses
		return float64(r.MapStats.Hits) / float64(total)
	}
	seq := run(true)
	rnd := run(false)
	if seq <= rnd {
		t.Fatalf("sequential hit rate %.2f not above random %.2f", seq, rnd)
	}
	if seq < 0.9 {
		t.Fatalf("sequential scan hit rate only %.2f", seq)
	}
}
