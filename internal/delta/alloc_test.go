package delta

import (
	"math/rand"
	"testing"
)

// TestEncodeAllocs pins the steady-state zero-allocation contract of the
// encoder: with a reused dst and a warm xorScratch pool, Encode must not
// allocate. A GC pause during the measured runs can drain the pool and cost
// one refill, so a nonzero reading gets one retry before it counts as a
// regression.
func TestEncodeAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	old := make([]byte, 4096)
	for i := range old {
		old[i] = byte(rng.Intn(8))
	}
	ref := append([]byte(nil), old...)
	for i := 0; i < 200; i++ {
		ref[rng.Intn(len(ref))] ^= byte(1 + rng.Intn(255))
	}

	out := make([]byte, 0, 2*len(old))
	measure := func() float64 {
		return testing.AllocsPerRun(100, func() {
			_, out = Encode(out[:0], old, ref)
		})
	}
	n := measure()
	if n != 0 {
		n = measure()
	}
	if n != 0 {
		t.Fatalf("Encode allocates %.2f times per call in steady state, want 0", n)
	}

	// The raw fallback (incompressible page) must also stay allocation-free
	// with a reused dst.
	noise := make([]byte, 4096)
	rng.Read(noise)
	n = testing.AllocsPerRun(100, func() {
		_, out = Encode(out[:0], noise, nil)
	})
	if n != 0 {
		n = testing.AllocsPerRun(100, func() {
			_, out = Encode(out[:0], noise, nil)
		})
	}
	if n != 0 {
		t.Fatalf("Encode raw fallback allocates %.2f times per call, want 0", n)
	}
}
