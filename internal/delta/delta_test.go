package delta

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"almanac/internal/vclock"
)

const pageSize = 4096

// similarPages builds an (old, ref) pair where ref differs from old in
// roughly frac of its bytes — the paper's "content locality" assumption.
func similarPages(rng *rand.Rand, frac float64) (old, ref []byte) {
	old = make([]byte, pageSize)
	rng.Read(old)
	ref = append([]byte(nil), old...)
	n := int(frac * pageSize)
	for i := 0; i < n; i++ {
		ref[rng.Intn(pageSize)] = byte(rng.Intn(256))
	}
	return old, ref
}

func TestEncodeDecodeXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, frac := range []float64{0, 0.01, 0.05, 0.2, 0.5} {
		old, ref := similarPages(rng, frac)
		enc, payload := Encode(nil, old, ref)
		got, err := Decode(enc, payload, ref, pageSize)
		if err != nil {
			t.Fatalf("frac=%v: decode: %v", frac, err)
		}
		if !bytes.Equal(got, old) {
			t.Fatalf("frac=%v: round trip mismatch", frac)
		}
	}
}

func TestEncodeSimilarPagesCompressWell(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	old, ref := similarPages(rng, 0.05)
	enc, payload := Encode(nil, old, ref)
	if enc != EncXORLZF {
		t.Fatalf("similar pages chose encoding %v", enc)
	}
	if len(payload) > pageSize/2 {
		t.Fatalf("5%% diff compressed to %d bytes; expected well under half a page", len(payload))
	}
}

func TestEncodeIncompressibleFallsBackToRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	old := make([]byte, pageSize)
	rng.Read(old)
	// No reference at all and random content: LZF will not pay.
	enc, payload := Encode(nil, old, nil)
	if enc != EncRaw {
		t.Fatalf("random content without reference chose %v, want EncRaw", enc)
	}
	got, err := Decode(enc, payload, nil, pageSize)
	if err != nil || !bytes.Equal(got, old) {
		t.Fatalf("raw round trip failed: %v", err)
	}
}

func TestEncodeNoReference(t *testing.T) {
	old := bytes.Repeat([]byte("log entry "), 410)[:pageSize]
	enc, payload := Encode(nil, old, nil)
	if enc != EncRawLZF {
		t.Fatalf("compressible content without reference chose %v", enc)
	}
	got, err := Decode(enc, payload, nil, pageSize)
	if err != nil || !bytes.Equal(got, old) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestDecodeWrongSizes(t *testing.T) {
	if _, err := Decode(EncRaw, []byte{1, 2, 3}, nil, pageSize); err == nil {
		t.Fatal("short raw payload accepted")
	}
	if _, err := Decode(EncXORLZF, nil, []byte{1}, pageSize); err == nil {
		t.Fatal("wrong-size reference accepted")
	}
	if _, err := Decode(Encoding(99), nil, nil, pageSize); err == nil {
		t.Fatal("unknown encoding accepted")
	}
}

func TestQuickXORRoundTrip(t *testing.T) {
	f := func(seed int64, changes uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		old, ref := similarPages(rng, float64(changes%1000)/1000)
		enc, payload := Encode(nil, old, ref)
		got, err := Decode(enc, payload, ref, pageSize)
		return err == nil && bytes.Equal(got, old)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func makeDelta(rng *rand.Rand, lpa uint64, ts vclock.Time, payloadLen int) *Delta {
	p := make([]byte, payloadLen)
	rng.Read(p)
	return &Delta{
		LPA:     lpa,
		BackPtr: rng.Uint64(),
		TS:      ts,
		RefTS:   ts + 100,
		Enc:     EncXORLZF,
		Payload: p,
	}
}

func TestPackUnpackPage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var ds []*Delta
	for i := 0; i < 10; i++ {
		ds = append(ds, makeDelta(rng, uint64(i), vclock.Time(i*1000), 50+rng.Intn(200)))
	}
	page, n, err := PackPage(ds, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("packed %d of 10", n)
	}
	if len(page) != pageSize {
		t.Fatalf("page is %d bytes", len(page))
	}
	got, err := UnpackPage(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("unpacked %d deltas", len(got))
	}
	for i := range ds {
		a, b := ds[i], got[i]
		if a.LPA != b.LPA || a.BackPtr != b.BackPtr || a.TS != b.TS ||
			a.RefTS != b.RefTS || a.Enc != b.Enc || !bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("delta %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestPackPagePartialFit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var ds []*Delta
	for i := 0; i < 5; i++ {
		ds = append(ds, makeDelta(rng, uint64(i), vclock.Time(i), 1500))
	}
	_, n, err := PackPage(ds, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 || n >= 5 {
		t.Fatalf("expected a partial fit, packed %d", n)
	}
}

func TestPackPageOversize(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := makeDelta(rng, 1, 1, pageSize) // payload alone fills the page
	if _, _, err := PackPage([]*Delta{d}, pageSize); err == nil {
		t.Fatal("oversize delta packed without error")
	}
}

func TestPackPageEmpty(t *testing.T) {
	if _, _, err := PackPage(nil, pageSize); err == nil {
		t.Fatal("empty pack accepted")
	}
}

func TestUnpackCorrupt(t *testing.T) {
	if _, err := UnpackPage([]byte{1}); err == nil {
		t.Fatal("tiny page accepted")
	}
	// Count claims more entries than fit.
	bad := make([]byte, 64)
	bad[0] = 0xff
	bad[1] = 0xff
	if _, err := UnpackPage(bad); err == nil {
		t.Fatal("overflowing count accepted")
	}
}

func TestBufferLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuffer(pageSize)
	if !b.Empty() {
		t.Fatal("fresh buffer not empty")
	}
	if page, _, err := b.Flush(); err != nil || page != nil {
		t.Fatal("flush of empty buffer should be a no-op")
	}
	added := 0
	for {
		d := makeDelta(rng, uint64(added), vclock.Time(added), 300)
		if !b.Fits(d) {
			if b.Add(d) {
				t.Fatal("Add succeeded after Fits said no")
			}
			break
		}
		if !b.Add(d) {
			t.Fatal("Add failed after Fits said yes")
		}
		added++
	}
	if added == 0 {
		t.Fatal("nothing fit in an empty buffer")
	}
	page, ds, err := b.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != added {
		t.Fatalf("flushed %d deltas, added %d", len(ds), added)
	}
	got, err := UnpackPage(page)
	if err != nil || len(got) != added {
		t.Fatalf("unpack after flush: %v, %d deltas", err, len(got))
	}
	if !b.Empty() {
		t.Fatal("buffer not reset after flush")
	}
}

func TestPageCapacity(t *testing.T) {
	if got := PageCapacity(pageSize, 0); got != pageSize-headerSize {
		t.Fatalf("capacity(0) = %d", got)
	}
	if got := PageCapacity(pageSize, 2); got != pageSize-headerSize-2*entrySize {
		t.Fatalf("capacity(2) = %d", got)
	}
}
