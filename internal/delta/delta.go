// Package delta implements TimeSSD's delta compression engine (§3.6).
//
// When an obsolete data version is selected for compression, the latest
// version mapped to the same LPA is taken as the reference; the obsolete
// version is represented by a compressed delta (XOR difference against the
// reference, squeezed with LZF). Deltas are far smaller than pages for
// workloads with content locality, which is what lets TimeSSD retain weeks
// of history.
//
// Each delta carries the metadata the paper lists: the LPA it belongs to,
// the back-pointer to the previous version's physical page, its own write
// timestamp, and the write timestamp of the reference version (needed to
// pick the right reference at decompression time). Deltas are coalesced
// into page-sized delta pages with a header recording the number of deltas,
// their byte offsets, and their metadata (§3.7).
package delta

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"almanac/internal/lzf"
	"almanac/internal/vclock"
)

// Encoding identifies how a delta payload encodes the obsolete version.
type Encoding uint8

const (
	// EncXORLZF is the normal case: payload = LZF(old XOR reference).
	EncXORLZF Encoding = iota
	// EncRawLZF stores LZF(old) without a reference; used when the version
	// chain has no newer reference (e.g. the version was trimmed).
	EncRawLZF
	// EncRaw stores the old version verbatim; fallback when compression
	// does not pay (incompressible content).
	EncRaw
)

// Delta is one compressed obsolete version of a logical page.
type Delta struct {
	LPA     uint64      // logical page this version belongs to
	BackPtr uint64      // PPA of the previous (older) version in the chain
	TS      vclock.Time // write timestamp of this version
	RefTS   vclock.Time // write timestamp of the reference version
	Enc     Encoding
	Payload []byte
}

// ErrCorruptPage is returned when a delta page fails to parse.
var ErrCorruptPage = errors.New("delta: corrupt delta page")

// xorScratch pools the XOR staging buffer Encode needs for EncXORLZF; the
// harness compresses on many devices concurrently, so the pool (rather than
// a package-level buffer) keeps Encode safe to call from parallel workers.
var xorScratch = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// xorBytes stores a XOR b into dst, one 8-byte word at a time. All three
// slices must have equal length; dst may alias a.
func xorBytes(dst, a, b []byte) {
	n := len(a)
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(a[i:])^binary.LittleEndian.Uint64(b[i:]))
	}
	for ; i < n; i++ {
		dst[i] = a[i] ^ b[i]
	}
}

// Encode compresses old against ref (both pageSize long), appends the chosen
// payload to dst, and returns the encoding plus the extended slice. ref may
// be nil, in which case the old version is self-compressed (EncRawLZF or
// EncRaw). Callers reuse dst across calls to amortise allocations; pass nil
// for a one-shot encode.
func Encode(dst, old, ref []byte) (Encoding, []byte) {
	return EncodeWith(nil, dst, old, ref)
}

// EncodeWith is Encode through a caller-owned lzf.Compressor, whose
// generation-tagged match table skips the per-call table clear the pure
// compressor pays. A nil compressor falls back to lzf.Compress; either way
// the emitted bytes are identical (the compressor guarantees byte-identical
// output). Hot single-goroutine paths — GC delta emission — hold one
// compressor per device.
func EncodeWith(c *lzf.Compressor, dst, old, ref []byte) (Encoding, []byte) {
	if ref != nil && len(ref) != len(old) {
		panic("delta: reference and version sizes differ")
	}
	base := len(dst)
	src := old
	enc := EncRawLZF
	if ref != nil {
		sp := xorScratch.Get().(*[]byte)
		s := *sp
		if cap(s) < len(old) {
			s = make([]byte, len(old))
		}
		s = s[:len(old)]
		xorBytes(s, old, ref)
		src = s
		enc = EncXORLZF
		defer func() { *sp = s; xorScratch.Put(sp) }()
	}
	if c != nil {
		dst = c.Compress(dst, src)
	} else {
		dst = lzf.Compress(dst, src)
	}
	if len(dst)-base >= len(old) {
		// Compression did not pay; store verbatim.
		dst = append(dst[:base], old...)
		return EncRaw, dst
	}
	return enc, dst
}

// Decode reconstructs the obsolete version from payload. ref must be the
// page content whose write timestamp equals the delta's RefTS when Enc is
// EncXORLZF; it is ignored otherwise. pageSize bounds the output.
func Decode(enc Encoding, payload, ref []byte, pageSize int) ([]byte, error) {
	return DecodeAppend(make([]byte, 0, pageSize), enc, payload, ref, pageSize)
}

// DecodeAppend is Decode with a caller-supplied destination: the decoded
// version is appended to dst and the extended slice returned. Query paths
// use it with pooled buffers to keep steady-state decodes allocation-free.
func DecodeAppend(dst []byte, enc Encoding, payload, ref []byte, pageSize int) ([]byte, error) {
	base := len(dst)
	switch enc {
	case EncRaw:
		if len(payload) != pageSize {
			return nil, fmt.Errorf("delta: raw payload is %d bytes, want %d", len(payload), pageSize)
		}
		return append(dst, payload...), nil
	case EncRawLZF, EncXORLZF:
		if enc == EncXORLZF && len(ref) != pageSize {
			return nil, fmt.Errorf("delta: reference is %d bytes, want %d", len(ref), pageSize)
		}
		out, err := lzf.Decompress(dst, payload, pageSize)
		if err != nil {
			return nil, err
		}
		if len(out)-base != pageSize {
			return nil, fmt.Errorf("delta: decoded %d bytes, want %d", len(out)-base, pageSize)
		}
		if enc == EncXORLZF {
			body := out[base:]
			xorBytes(body, body, ref)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("delta: unknown encoding %d", enc)
	}
}

// Size returns the number of bytes d occupies inside a delta page,
// including its per-delta header entry.
func (d *Delta) Size() int { return entrySize + len(d.Payload) }

// Delta page layout:
//
//	u16 count
//	count × entry { u32 off, u32 len, u8 enc, u64 lpa, u64 backptr, i64 ts, i64 refts }
//	payload bytes...
const (
	headerSize = 2
	entrySize  = 4 + 4 + 1 + 8 + 8 + 8 + 8
)

// PageCapacity returns the payload capacity of a delta page of the given
// size holding n deltas.
func PageCapacity(pageSize, n int) int { return pageSize - headerSize - n*entrySize }

// PackPage serialises deltas into a page buffer of pageSize bytes. It packs
// as many leading deltas as fit and returns the buffer plus the number of
// deltas consumed. At least one delta must fit; if the first delta alone
// exceeds the page an error is returned (callers size deltas ≤ page size).
func PackPage(deltas []*Delta, pageSize int) ([]byte, int, error) {
	if len(deltas) == 0 {
		return nil, 0, errors.New("delta: no deltas to pack")
	}
	n := 0
	used := headerSize
	for _, d := range deltas {
		if used+d.Size() > pageSize {
			break
		}
		used += d.Size()
		n++
	}
	if n == 0 {
		return nil, 0, fmt.Errorf("delta: first delta (%d B) exceeds page size %d", deltas[0].Size(), pageSize)
	}
	buf := make([]byte, pageSize)
	binary.LittleEndian.PutUint16(buf[0:2], uint16(n))
	off := headerSize + n*entrySize
	pos := headerSize
	for _, d := range deltas[:n] {
		binary.LittleEndian.PutUint32(buf[pos:], uint32(off))
		binary.LittleEndian.PutUint32(buf[pos+4:], uint32(len(d.Payload)))
		buf[pos+8] = byte(d.Enc)
		binary.LittleEndian.PutUint64(buf[pos+9:], d.LPA)
		binary.LittleEndian.PutUint64(buf[pos+17:], d.BackPtr)
		binary.LittleEndian.PutUint64(buf[pos+25:], uint64(d.TS))
		binary.LittleEndian.PutUint64(buf[pos+33:], uint64(d.RefTS))
		copy(buf[off:], d.Payload)
		off += len(d.Payload)
		pos += entrySize
	}
	return buf, n, nil
}

// UnpackPage parses a delta page produced by PackPage.
func UnpackPage(buf []byte) ([]*Delta, error) {
	if len(buf) < headerSize {
		return nil, ErrCorruptPage
	}
	n := int(binary.LittleEndian.Uint16(buf[0:2]))
	if headerSize+n*entrySize > len(buf) {
		return nil, fmt.Errorf("%w: %d entries do not fit", ErrCorruptPage, n)
	}
	out := make([]*Delta, 0, n)
	pos := headerSize
	for i := 0; i < n; i++ {
		off := int(binary.LittleEndian.Uint32(buf[pos:]))
		plen := int(binary.LittleEndian.Uint32(buf[pos+4:]))
		if off < 0 || plen < 0 || off+plen > len(buf) {
			return nil, fmt.Errorf("%w: entry %d payload out of range", ErrCorruptPage, i)
		}
		d := &Delta{
			Enc:     Encoding(buf[pos+8]),
			LPA:     binary.LittleEndian.Uint64(buf[pos+9:]),
			BackPtr: binary.LittleEndian.Uint64(buf[pos+17:]),
			TS:      vclock.Time(binary.LittleEndian.Uint64(buf[pos+25:])),
			RefTS:   vclock.Time(binary.LittleEndian.Uint64(buf[pos+33:])),
			Payload: append([]byte(nil), buf[off:off+plen]...),
		}
		out = append(out, d)
		pos += entrySize
	}
	return out, nil
}

// FindInPage scans a delta page for the newest entry belonging to lpa with
// a write timestamp strictly before `before`, filling d and returning true
// on a hit. Unlike UnpackPage it copies nothing: d.Payload aliases buf, so
// the result is only valid while buf is (flash page images are stable until
// their block is erased). Version walks use it to avoid materialising every
// delta in a page when they need exactly one.
func FindInPage(buf []byte, lpa uint64, before vclock.Time, d *Delta) (bool, error) {
	if len(buf) < headerSize {
		return false, ErrCorruptPage
	}
	n := int(binary.LittleEndian.Uint16(buf[0:2]))
	if headerSize+n*entrySize > len(buf) {
		return false, fmt.Errorf("%w: %d entries do not fit", ErrCorruptPage, n)
	}
	found := false
	pos := headerSize
	for i := 0; i < n; i++ {
		eLPA := binary.LittleEndian.Uint64(buf[pos+9:])
		eTS := vclock.Time(binary.LittleEndian.Uint64(buf[pos+25:]))
		if eLPA == lpa && eTS < before && (!found || eTS > d.TS) {
			off := int(binary.LittleEndian.Uint32(buf[pos:]))
			plen := int(binary.LittleEndian.Uint32(buf[pos+4:]))
			if off < 0 || plen < 0 || off+plen > len(buf) {
				return false, fmt.Errorf("%w: entry %d payload out of range", ErrCorruptPage, i)
			}
			*d = Delta{
				Enc:     Encoding(buf[pos+8]),
				LPA:     eLPA,
				BackPtr: binary.LittleEndian.Uint64(buf[pos+17:]),
				TS:      eTS,
				RefTS:   vclock.Time(binary.LittleEndian.Uint64(buf[pos+33:])),
				Payload: buf[off : off+plen : off+plen],
			}
			found = true
		}
		pos += entrySize
	}
	return found, nil
}

// Buffer coalesces deltas until a page fills (§3.6's "delta buffers").
// It is a plain accumulator; the owner decides when to flush.
type Buffer struct {
	pageSize int
	deltas   []*Delta
	used     int
}

// NewBuffer returns a delta buffer for pageSize-byte flash pages.
func NewBuffer(pageSize int) *Buffer {
	return &Buffer{pageSize: pageSize, used: headerSize}
}

// Fits reports whether d can be added without exceeding one page.
func (b *Buffer) Fits(d *Delta) bool { return b.used+d.Size() <= b.pageSize }

// Add appends d to the buffer. It returns false if d does not fit (the
// caller should Flush first).
func (b *Buffer) Add(d *Delta) bool {
	if !b.Fits(d) {
		return false
	}
	b.deltas = append(b.deltas, d)
	b.used += d.Size()
	return true
}

// Len returns the number of buffered deltas.
func (b *Buffer) Len() int { return len(b.deltas) }

// Empty reports whether the buffer holds no deltas.
func (b *Buffer) Empty() bool { return len(b.deltas) == 0 }

// Flush serialises the buffered deltas into a page image and resets the
// buffer. It returns nil if the buffer is empty.
func (b *Buffer) Flush() ([]byte, []*Delta, error) {
	if len(b.deltas) == 0 {
		return nil, nil, nil
	}
	page, n, err := PackPage(b.deltas, b.pageSize)
	if err != nil {
		return nil, nil, err
	}
	if n != len(b.deltas) {
		return nil, nil, fmt.Errorf("delta: buffer overflow, packed %d of %d", n, len(b.deltas))
	}
	flushed := b.deltas
	b.deltas = nil
	b.used = headerSize
	return page, flushed, nil
}
