package delta

import (
	"bytes"
	"testing"
)

// FuzzDeltaEncodeDecode checks that Encode∘Decode reconstructs the exact
// obsolete version for every (old, ref) pair, with and without a
// reference. Deltas are how retained history survives GC (§3.6); a lossy
// round trip here silently corrupts time travel.
func FuzzDeltaEncodeDecode(f *testing.F) {
	f.Add([]byte("old-page-content"), []byte("ref-page-content"), true)
	f.Add(bytes.Repeat([]byte{0}, 512), bytes.Repeat([]byte{0}, 512), true)
	f.Add(bytes.Repeat([]byte("ab"), 2048), bytes.Repeat([]byte("ac"), 2048), true)
	f.Add([]byte{}, []byte{}, true)
	f.Add([]byte("self-compressed, no reference"), []byte{}, false)

	f.Fuzz(func(t *testing.T, old, ref []byte, useRef bool) {
		if len(old) > 1<<16 {
			t.Skip()
		}
		if useRef {
			// Encode requires ref and old to be the same page size.
			if len(ref) < len(old) {
				t.Skip()
			}
			ref = ref[:len(old)]
		} else {
			ref = nil
		}
		enc, payload := Encode(nil, old, ref)
		got, err := Decode(enc, payload, ref, len(old))
		if err != nil {
			t.Fatalf("Decode(enc=%d) of own payload failed: %v", enc, err)
		}
		if !bytes.Equal(got, old) {
			t.Fatalf("round trip mismatch for enc=%d: %d bytes in, %d bytes out", enc, len(old), len(got))
		}
	})
}
