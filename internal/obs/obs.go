// Package obs is the observability layer of the simulator: atomic
// counters, fixed-bucket latency histograms, and a lock-free trace ring,
// all keyed by operation class and aware of the simulation's two clocks.
//
// Every sample carries two durations. The *virtual* duration is the span
// between a command's virtual issue time and its virtual completion time —
// what the paper's evaluation plots (Figs. 6–11) as device latency. The
// *wall* duration is how long the host CPU spent simulating the command,
// which is what profiling the simulator itself needs. The two answer
// different questions and neither can be derived from the other, so both
// are recorded per class.
//
// The package deliberately imports nothing from the rest of the module
// (durations travel as int64 nanoseconds), so any layer — flash, ftl,
// core, array, almaproto, harness — may call it without creating an import
// cycle, and the almalint layering matrix needs no entry for it: obs
// observes, it never mutates simulation state.
//
// Cost model: every recording site first checks Registry.Enabled, so a
// disabled registry costs one atomic load per call. All methods are
// nil-receiver safe; code that may run without a registry (the plain FTL,
// bare flash arrays) simply leaves the pointer nil.
package obs

import (
	"sync/atomic"
	"time"
)

// Class identifies an operation class with its own counters and
// histograms.
type Class uint8

const (
	HostRead Class = iota
	HostWrite
	HostTrim
	FlashRead
	FlashProgram
	FlashErase
	GCPass
	DeltaFlush
	Rollback
	// Fault classes count injected NAND failures and the firmware's
	// recovery work (internal/fault). Appended after the v3 classes; the
	// wire format keys classes by name, so older peers simply ignore them.
	FaultECCCorrected
	FaultUncorrectable
	FaultProgramFail
	FaultEraseFail
	FaultPowerCut
	// Volume classes are the per-tenant view of host traffic recorded by
	// the service layer (internal/service): the same I/O the Host* classes
	// count device-wide, re-attributed to the volume that issued it, plus
	// the service-only batch and per-volume rollback operations. Appended
	// after the fault classes; the wire format keys classes by name, so
	// older peers simply ignore them.
	VolRead
	VolWrite
	VolTrim
	VolBatch
	VolRollback
	NumClasses
)

func (c Class) String() string {
	switch c {
	case HostRead:
		return "host-read"
	case HostWrite:
		return "host-write"
	case HostTrim:
		return "host-trim"
	case FlashRead:
		return "flash-read"
	case FlashProgram:
		return "flash-program"
	case FlashErase:
		return "flash-erase"
	case GCPass:
		return "gc-pass"
	case DeltaFlush:
		return "delta-flush"
	case Rollback:
		return "rollback"
	case FaultECCCorrected:
		return "fault-ecc-corrected"
	case FaultUncorrectable:
		return "fault-uncorrectable"
	case FaultProgramFail:
		return "fault-program-fail"
	case FaultEraseFail:
		return "fault-erase-fail"
	case FaultPowerCut:
		return "fault-power-cut"
	case VolRead:
		return "vol-read"
	case VolWrite:
		return "vol-write"
	case VolTrim:
		return "vol-trim"
	case VolBatch:
		return "vol-batch"
	case VolRollback:
		return "vol-rollback"
	default:
		return "class-unknown"
	}
}

// ClassByName is the inverse of Class.String; ok is false for unknown
// names (e.g. a newer peer's classes arriving over the wire).
func ClassByName(name string) (Class, bool) {
	for c := Class(0); c < NumClasses; c++ {
		if c.String() == name {
			return c, true
		}
	}
	return 0, false
}

// classMetrics is the per-class recording state.
type classMetrics struct {
	errors atomic.Int64
	virt   hist
	wall   hist
}

// Registry collects observations for one device (one array shard). It is
// safe for concurrent use by any number of recorders and readers; reads
// are lock-free and never block recording.
type Registry struct {
	enabled atomic.Bool
	shard   atomic.Int64
	classes [NumClasses]classMetrics
	ring    ring
}

// NewRegistry returns a disabled registry.
func NewRegistry() *Registry { return &Registry{} }

// SetEnabled turns recording on or off. The transition is racy by design:
// samples straddling the flip may or may not be recorded.
func (r *Registry) SetEnabled(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// Enabled reports whether the registry records. This is the one atomic
// load the disabled path pays.
func (r *Registry) Enabled() bool { return r != nil && r.enabled.Load() }

// SetShard labels every subsequent trace event with an array shard id.
func (r *Registry) SetShard(id int) {
	if r != nil {
		r.shard.Store(int64(id))
	}
}

// Shard returns the configured shard label.
func (r *Registry) Shard() int {
	if r == nil {
		return 0
	}
	return int(r.shard.Load())
}

// wallBase anchors wall-time measurement: samples are offsets from process
// start, so they fit comfortably in int64 nanoseconds.
var wallBase = time.Now()

func wallNow() int64 { return time.Since(wallBase).Nanoseconds() + 1 }

// Start opens a wall-time measurement. It returns 0 when the registry is
// disabled (or nil); Observe treats a zero start as "no wall sample", so
// an enable that races an in-flight operation degrades gracefully.
func (r *Registry) Start() int64 {
	if !r.Enabled() {
		return 0
	}
	return wallNow()
}

// Observe records one completed operation: virtNS is the virtual-clock
// duration, wallStart the value Start returned. Failed operations count
// only toward the class error counter — histograms hold successful
// operations exclusively, which keeps each class count equal to the
// corresponding device counter (host-write count == HostPageWrites, and
// so on).
func (r *Registry) Observe(c Class, virtNS, wallStart int64, ok bool) {
	if !r.Enabled() || c >= NumClasses {
		return
	}
	m := &r.classes[c]
	if !ok {
		m.errors.Add(1)
		return
	}
	m.virt.observe(virtNS)
	if wallStart > 0 {
		m.wall.observe(wallNow() - wallStart)
	}
}

// Record is Observe plus a trace-ring event carrying the logical page
// address and the virtual issue/done pair. Host commands, GC passes,
// delta flushes and rollbacks use it; flash micro-operations use Observe
// alone so they cannot flush host-level history out of the ring.
func (r *Registry) Record(c Class, lpa uint64, issueNS, doneNS, wallStart int64, ok bool) {
	if !r.Enabled() || c >= NumClasses {
		return
	}
	r.Observe(c, doneNS-issueNS, wallStart, ok)
	r.ring.push(c, uint32(r.shard.Load()), ok, lpa, issueNS, doneNS)
}

// Ops snapshots the per-class statistics of every class that has recorded
// at least one sample or error, keyed by Class.String(). Classes are
// visited in declaration order, so the key set is deterministic.
func (r *Registry) Ops() map[string]OpStats {
	if r == nil {
		return nil
	}
	out := make(map[string]OpStats)
	for c := Class(0); c < NumClasses; c++ {
		m := &r.classes[c]
		st := OpStats{
			Errors: m.errors.Load(),
			Virt:   m.virt.snapshot(),
			Wall:   m.wall.snapshot(),
		}
		st.Count = st.Virt.Count
		if st.Count > 0 || st.Errors > 0 {
			out[c.String()] = st
		}
	}
	return out
}

// Trace returns up to max recent events, oldest first. max <= 0 means
// the whole ring.
func (r *Registry) Trace(max int) []Event {
	if r == nil {
		return nil
	}
	return r.ring.snapshot(max)
}
