package obs

import (
	"sync"
	"sync/atomic"
	"testing"
)

// eventFor derives every field of a stress event from its LPA, so a
// reader can prove a snapshot slot is self-consistent: any torn read —
// fields from two different writers mixed in one event — breaks the
// derivation.
func eventFor(lpa uint64) Event {
	return Event{
		Class:   Class(lpa % 5),
		Shard:   int(lpa % 16),
		OK:      lpa%2 == 0,
		LPA:     lpa,
		IssueNS: int64(lpa * 7),
		DoneNS:  int64(lpa*7) + 3,
	}
}

// TestRingStressTornReads hammers the seqlock trace ring with concurrent
// writers while readers spin on snapshot: every event a reader observes
// must be exactly one writer's publication, never a blend of two. The
// test's real teeth are under -race, where any non-atomic slot access in
// push or snapshot is fatal; the consistency check catches logic-level
// tearing (a stale sequence word validating a half-overwritten slot) that
// the race detector cannot see.
func TestRingStressTornReads(t *testing.T) {
	const (
		writers = 8
		readers = 4
		perW    = 20000
	)
	r := &ring{}
	var done atomic.Bool
	var torn atomic.Int64
	var snaps atomic.Int64

	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				events := r.snapshot(0)
				if len(events) > RingSize {
					t.Errorf("snapshot returned %d events, ring holds %d", len(events), RingSize)
					return
				}
				snaps.Add(1)
				for _, e := range events {
					if e != eventFor(e.LPA) {
						torn.Add(1)
						t.Errorf("torn event: got %+v, want %+v", e, eventFor(e.LPA))
						return
					}
				}
			}
		}()
	}
	var wwg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wwg.Add(1)
		go func(g int) {
			defer wwg.Done()
			for i := 0; i < perW; i++ {
				e := eventFor(uint64(g*perW + i + 1))
				r.push(e.Class, uint32(e.Shard), e.OK, e.LPA, e.IssueNS, e.DoneNS)
			}
		}(g)
	}
	wwg.Wait()
	done.Store(true)
	wg.Wait()

	if torn.Load() != 0 {
		t.Fatalf("%d torn reads", torn.Load())
	}
	if snaps.Load() == 0 {
		t.Fatal("readers never completed a snapshot")
	}
	// A writer that stalls mid-push and gets lapped publishes its (by then
	// ancient) ticket last, leaving that slot's sequence naming an old
	// generation that snapshot rightly skips — the documented best-effort
	// behaviour under >RingSize concurrent tickets. Each writer can strand
	// at most one such slot, so the quiescent ring is full up to that.
	final := r.snapshot(0)
	if len(final) < RingSize-writers {
		t.Fatalf("final snapshot has %d events, want at least %d (full ring minus one stale slot per lapped writer)",
			len(final), RingSize-writers)
	}
	for _, e := range final {
		if e != eventFor(e.LPA) {
			t.Fatalf("final snapshot torn event: %+v", e)
		}
	}
}
