package obs

import "sort"

// Counters is the canonical scalar-counter surface of one device (or,
// summed, of an array). Every other stats type in the module —
// core.Stats, the base FTL's exported fields, almaproto.DeviceStats — is
// a view of this struct. It is flat and comparable so per-shard
// snapshots can be compared with == in determinism tests.
type Counters struct {
	// Host-visible command counts.
	HostPageWrites int64
	HostPageReads  int64
	TrimOps        int64

	// Flash micro-operations.
	FlashReads    int64
	FlashPrograms int64
	FlashErases   int64

	// Garbage collection.
	GCRuns     int64
	GCReads    int64
	GCWrites   int64
	GCErases   int64
	GCDeltaOps int64

	// Pages lost to uncorrectable reads during internal migration.
	ReadFailures int64

	// TimeSSD retention machinery.
	Invalidations     int64
	DeltasCreated     int64
	DeltaPagesWritten int64
	ExpiredReclaimed  int64
	WindowDrops       int64
	IdleCompressions  int64
	EstimatorChecks   int64
	EstimatorTrips    int64

	// Host-side reference-cache telemetry (query-path decode cache). These
	// describe simulator performance, not simulated-device behavior, and are
	// deliberately excluded from the almaproto wire payload.
	RefCacheHits      int64
	RefCacheMisses    int64
	RefCacheEvictions int64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.HostPageWrites += o.HostPageWrites
	c.HostPageReads += o.HostPageReads
	c.TrimOps += o.TrimOps
	c.FlashReads += o.FlashReads
	c.FlashPrograms += o.FlashPrograms
	c.FlashErases += o.FlashErases
	c.GCRuns += o.GCRuns
	c.GCReads += o.GCReads
	c.GCWrites += o.GCWrites
	c.GCErases += o.GCErases
	c.GCDeltaOps += o.GCDeltaOps
	c.ReadFailures += o.ReadFailures
	c.Invalidations += o.Invalidations
	c.DeltasCreated += o.DeltasCreated
	c.DeltaPagesWritten += o.DeltaPagesWritten
	c.ExpiredReclaimed += o.ExpiredReclaimed
	c.WindowDrops += o.WindowDrops
	c.IdleCompressions += o.IdleCompressions
	c.EstimatorChecks += o.EstimatorChecks
	c.EstimatorTrips += o.EstimatorTrips
	c.RefCacheHits += o.RefCacheHits
	c.RefCacheMisses += o.RefCacheMisses
	c.RefCacheEvictions += o.RefCacheEvictions
}

// OpStats is the per-class statistics snapshot: sample count, error
// count, and the virtual-time and wall-time histograms.
type OpStats struct {
	Count  int64
	Errors int64
	Virt   HistSnapshot
	Wall   HistSnapshot
}

func (o *OpStats) add(s OpStats) {
	o.Count += s.Count
	o.Errors += s.Errors
	o.Virt.Add(s.Virt)
	o.Wall.Add(s.Wall)
}

// Sub removes an earlier snapshot of the same class, leaving the
// activity between the two points (see HistSnapshot.Sub for the MaxNS
// caveat).
func (o *OpStats) Sub(earlier OpStats) {
	o.Count -= earlier.Count
	o.Errors -= earlier.Errors
	o.Virt.Sub(earlier.Virt)
	o.Wall.Sub(earlier.Wall)
}

// DeltaOps returns later minus earlier per class: the per-op activity
// between two snapshots of the same device. Classes absent from earlier
// are taken whole; classes whose delta is empty are omitted.
func DeltaOps(earlier, later map[string]OpStats) map[string]OpStats {
	out := make(map[string]OpStats, len(later))
	for _, name := range SortedOpNames(later) {
		st := later[name]
		st.Sub(earlier[name])
		if st.Count != 0 || st.Errors != 0 {
			out[name] = st
		}
	}
	return out
}

// Snapshot is a point-in-time view of one device or a whole array:
// scalar counters plus per-class histograms. Merging shard snapshots
// visits keys in sorted order, so array-wide snapshots built from the
// same per-shard states are identical regardless of merge order.
type Snapshot struct {
	Shards        int
	WindowStartNS int64 // start of the retrievable window, virtual ns
	Segments      int   // live Bloom-filter time segments (summed over shards)
	C             Counters
	Ops           map[string]OpStats
}

// Merge folds o into s: counters and segment counts sum, the window
// start takes the maximum (the intersection semantics of an array's
// retrievable window), and per-class stats accumulate key by key.
func (s *Snapshot) Merge(o Snapshot) {
	s.Shards += o.Shards
	if o.WindowStartNS > s.WindowStartNS {
		s.WindowStartNS = o.WindowStartNS
	}
	s.Segments += o.Segments
	s.C.Add(o.C)
	if len(o.Ops) == 0 {
		return
	}
	if s.Ops == nil {
		s.Ops = make(map[string]OpStats, len(o.Ops))
	}
	for _, name := range SortedOpNames(o.Ops) {
		st := s.Ops[name]
		st.add(o.Ops[name])
		s.Ops[name] = st
	}
}

// SortedOpNames returns the map's keys in sorted order — the mandated
// iteration order wherever per-class stats are merged, encoded, or
// rendered.
func SortedOpNames(ops map[string]OpStats) []string {
	names := make([]string, 0, len(ops))
	for name := range ops {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
