package obs

import "sync/atomic"

// Event is one traced operation.
type Event struct {
	Class   Class
	Shard   int
	OK      bool
	LPA     uint64
	IssueNS int64 // virtual issue time
	DoneNS  int64 // virtual completion time
}

// RingSize is the trace ring capacity (power of two). 4096 events cover
// several seconds of host-level history at trace-replay rates while
// keeping the per-registry footprint at 4096×5 words ≈ 160 KiB; flash
// micro-operations are deliberately excluded (see Registry.Record) so the
// ring's reach is measured in host commands, not flash pages.
const RingSize = 4096

// ring is a lock-free, fixed-size trace buffer. Writers claim a ticket
// from next and publish through the slot's sequence word (odd while the
// slot is being written, 2×ticket once published), so readers can detect
// torn or overwritten slots without ever blocking a writer. Every slot
// word is atomic, which keeps the structure race-detector-clean. If more
// than RingSize writers are simultaneously in flight, a reader may skip
// the contested slots — the ring is best-effort recent history, not an
// audit log.
type ring struct {
	next  atomic.Uint64
	slots [RingSize]slot
}

type slot struct {
	seq   atomic.Uint64 // 0 empty, odd writing, else 2×ticket
	meta  atomic.Uint64 // class | ok<<8 | shard<<16
	lpa   atomic.Uint64
	issue atomic.Int64
	done  atomic.Int64
}

func packMeta(c Class, shard uint32, ok bool) uint64 {
	m := uint64(c)
	if ok {
		m |= 1 << 8
	}
	return m | uint64(shard)<<16
}

func (r *ring) push(c Class, shard uint32, ok bool, lpa uint64, issue, done int64) {
	t := r.next.Add(1) // tickets start at 1
	s := &r.slots[(t-1)&(RingSize-1)]
	s.seq.Store(2*t - 1)
	s.meta.Store(packMeta(c, shard, ok))
	s.lpa.Store(lpa)
	s.issue.Store(issue)
	s.done.Store(done)
	s.seq.Store(2 * t)
}

// snapshot returns up to max published events, oldest first.
func (r *ring) snapshot(max int) []Event {
	head := r.next.Load()
	if max <= 0 || max > RingSize {
		max = RingSize
	}
	out := make([]Event, 0, max)
	for i := uint64(0); i < RingSize && i < head && len(out) < max; i++ {
		t := head - i
		s := &r.slots[(t-1)&(RingSize-1)]
		seq := s.seq.Load()
		if seq != 2*t {
			continue // unpublished, in flight, or already overwritten
		}
		meta, lpa := s.meta.Load(), s.lpa.Load()
		issue, done := s.issue.Load(), s.done.Load()
		if s.seq.Load() != seq {
			continue // torn by a wrap-around writer
		}
		out = append(out, Event{
			Class:   Class(meta & 0xff),
			OK:      meta&(1<<8) != 0,
			Shard:   int(uint32(meta >> 16)),
			LPA:     lpa,
			IssueNS: issue,
			DoneNS:  done,
		})
	}
	// Collected newest-first; reverse into chronological order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
