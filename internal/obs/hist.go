package obs

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every latency histogram.
//
// Bucket 0 holds sub-microsecond samples; bucket i (i ≥ 1) holds samples
// in [2^(i-1) µs, 2^i µs). The last bucket additionally absorbs overflow,
// so with 28 buckets the top finite bound is 2^26 µs ≈ 67 s — far beyond
// any single simulated command — and the exact maximum is tracked
// separately. Power-of-two microsecond buckets make bucketing one
// bits.Len64 with no float math on the record path.
const NumBuckets = 28

func bucketOf(ns int64) int {
	if ns < 1000 {
		return 0
	}
	b := bits.Len64(uint64(ns / 1000))
	if b > NumBuckets-1 {
		b = NumBuckets - 1
	}
	return b
}

// BucketBoundNS returns the exclusive upper bound of bucket i in
// nanoseconds; the last bucket is unbounded and returns -1.
func BucketBoundNS(i int) int64 {
	if i >= NumBuckets-1 {
		return -1
	}
	return 1000 << i
}

// hist is the mutable, atomically-updated histogram.
type hist struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

func (h *hist) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketOf(ns)].Add(1)
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			return
		}
	}
}

// snapshot reads the histogram without stopping writers. Concurrent
// recording can skew count against buckets by in-flight samples; totals
// re-converge once recording quiesces.
func (h *hist) snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		SumNS: h.sum.Load(),
		MaxNS: h.max.Load(),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is an immutable histogram copy: the exchange format for
// merging, the wire, and reporting.
type HistSnapshot struct {
	Count   int64
	SumNS   int64
	MaxNS   int64
	Buckets [NumBuckets]int64
}

// MeanNS returns the average sample, or 0 for an empty histogram.
func (s HistSnapshot) MeanNS() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumNS / s.Count
}

// QuantileNS returns an upper bound on the q-quantile (0 < q ≤ 1): the
// bound of the first bucket at which the cumulative count reaches
// q×Count. For the unbounded last bucket it returns MaxNS.
func (s HistSnapshot) QuantileNS(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	want := int64(q * float64(s.Count))
	if want < 1 {
		want = 1
	}
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if cum >= want {
			if b := BucketBoundNS(i); b >= 0 {
				return b
			}
			return s.MaxNS
		}
	}
	return s.MaxNS
}

// Add merges another snapshot into s.
func (s *HistSnapshot) Add(o HistSnapshot) {
	s.Count += o.Count
	s.SumNS += o.SumNS
	if o.MaxNS > s.MaxNS {
		s.MaxNS = o.MaxNS
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Sub removes an earlier snapshot of the same histogram, leaving the
// samples observed between the two points (buckets are monotone
// counters, so the difference is exact). MaxNS cannot be decomposed and
// keeps s's value — the maximum seen up to the later point, not within
// the interval.
func (s *HistSnapshot) Sub(earlier HistSnapshot) {
	s.Count -= earlier.Count
	s.SumNS -= earlier.SumNS
	for i := range s.Buckets {
		s.Buckets[i] -= earlier.Buckets[i]
	}
}
