package obs

import "sync/atomic"

// WireStats counts transport activity on one protocol connection: frames
// and bytes in each direction, plus how the output side batched its
// writes. Like the Registry, every field is an atomic and a nil receiver
// is a no-op, so the protocol hot path records unconditionally and the
// zero value is ready to use.
//
// These are host-side telemetry, like the RefCache* counters: they
// measure the transport implementation, not simulated-device behavior,
// and are deliberately not part of the almaproto counter payload.
type WireStats struct {
	framesIn  atomic.Int64
	bytesIn   atomic.Int64
	framesOut atomic.Int64
	bytesOut  atomic.Int64
	writes    atomic.Int64 // Write calls issued by the output path
	coalesced atomic.Int64 // Write calls that carried more than one frame
}

// RecordRead counts one inbound frame of n wire bytes (header included).
func (w *WireStats) RecordRead(n int) {
	if w == nil {
		return
	}
	w.framesIn.Add(1)
	w.bytesIn.Add(int64(n))
}

// RecordFlush counts one outbound Write call covering frames frames and n
// wire bytes. frames > 1 marks the write as coalesced.
func (w *WireStats) RecordFlush(frames, n int) {
	if w == nil {
		return
	}
	w.framesOut.Add(int64(frames))
	w.bytesOut.Add(int64(n))
	w.writes.Add(1)
	if frames > 1 {
		w.coalesced.Add(1)
	}
}

// WireCounters is a point-in-time copy of a WireStats.
type WireCounters struct {
	FramesIn  int64
	BytesIn   int64
	FramesOut int64
	BytesOut  int64
	Writes    int64
	Coalesced int64
}

// Snapshot copies the counters; safe concurrently with recording.
func (w *WireStats) Snapshot() WireCounters {
	if w == nil {
		return WireCounters{}
	}
	return WireCounters{
		FramesIn:  w.framesIn.Load(),
		BytesIn:   w.bytesIn.Load(),
		FramesOut: w.framesOut.Load(),
		BytesOut:  w.bytesOut.Load(),
		Writes:    w.writes.Load(),
		Coalesced: w.coalesced.Load(),
	}
}

// Add folds o into c field by field (aggregating per-connection stats
// into a server-wide view).
func (c *WireCounters) Add(o WireCounters) {
	c.FramesIn += o.FramesIn
	c.BytesIn += o.BytesIn
	c.FramesOut += o.FramesOut
	c.BytesOut += o.BytesOut
	c.Writes += o.Writes
	c.Coalesced += o.Coalesced
}
