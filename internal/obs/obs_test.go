package obs

import (
	"reflect"
	"sync"
	"testing"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {999, 0}, {1000, 1}, {1999, 1}, {2000, 2},
		{3999, 2}, {4000, 3}, {1_000_000, 10}, {1 << 62, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	if BucketBoundNS(0) != 1000 || BucketBoundNS(3) != 8000 {
		t.Errorf("unexpected bucket bounds: %d, %d", BucketBoundNS(0), BucketBoundNS(3))
	}
	if BucketBoundNS(NumBuckets-1) != -1 {
		t.Errorf("last bucket must be unbounded")
	}
}

func TestHistSnapshotStats(t *testing.T) {
	var h hist
	for _, ns := range []int64{500, 1500, 1500, 3000, 1_000_000} {
		h.observe(ns)
	}
	s := h.snapshot()
	if s.Count != 5 || s.SumNS != 500+1500+1500+3000+1_000_000 {
		t.Fatalf("count/sum wrong: %+v", s)
	}
	if s.MaxNS != 1_000_000 {
		t.Fatalf("max = %d", s.MaxNS)
	}
	if s.MeanNS() != s.SumNS/5 {
		t.Fatalf("mean = %d", s.MeanNS())
	}
	// Median lands in the [1µs,2µs) bucket whose upper bound is 2000ns.
	if q := s.QuantileNS(0.5); q != 2000 {
		t.Fatalf("p50 = %d, want 2000", q)
	}
	if q := s.QuantileNS(1.0); q != 1_024_000 {
		t.Fatalf("p100 = %d, want 1024000 (the [512µs,1024µs) bucket bound)", q)
	}
}

func TestDisabledRecordsNothing(t *testing.T) {
	r := NewRegistry()
	if r.Start() != 0 {
		t.Fatal("Start must return 0 while disabled")
	}
	r.Observe(HostWrite, 1000, 0, true)
	r.Record(HostRead, 1, 0, 1000, 0, true)
	if len(r.Ops()) != 0 || len(r.Trace(0)) != 0 {
		t.Fatal("disabled registry recorded samples")
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	if r.Enabled() || r.Start() != 0 || r.Shard() != 0 {
		t.Fatal("nil registry must read as disabled")
	}
	r.SetEnabled(true)
	r.SetShard(3)
	r.Observe(HostWrite, 1, 0, true)
	r.Record(HostWrite, 1, 0, 1, 0, true)
	if r.Ops() != nil || r.Trace(0) != nil {
		t.Fatal("nil registry must return empty snapshots")
	}
}

func TestObserveCountsAndErrors(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	ws := r.Start()
	if ws == 0 {
		t.Fatal("Start returned 0 while enabled")
	}
	r.Observe(HostWrite, 750_000, ws, true)
	r.Observe(HostWrite, 750_000, ws, true)
	r.Observe(HostWrite, 0, ws, false)
	ops := r.Ops()
	st, ok := ops["host-write"]
	if !ok {
		t.Fatalf("missing host-write class: %v", ops)
	}
	if st.Count != 2 || st.Errors != 1 {
		t.Fatalf("count/errors = %d/%d, want 2/1", st.Count, st.Errors)
	}
	if st.Virt.Count != 2 || st.Wall.Count != 2 {
		t.Fatalf("hist counts = %d/%d, want 2/2", st.Virt.Count, st.Wall.Count)
	}
	if _, ok := ops["host-read"]; ok {
		t.Fatal("empty classes must be omitted")
	}
}

func TestClassNamesRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for c := Class(0); c < NumClasses; c++ {
		name := c.String()
		if seen[name] {
			t.Fatalf("duplicate class name %q", name)
		}
		seen[name] = true
		got, ok := ClassByName(name)
		if !ok || got != c {
			t.Fatalf("ClassByName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := ClassByName("no-such-class"); ok {
		t.Fatal("unknown name resolved")
	}
}

func TestRingOrderAndWrap(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.SetShard(7)
	total := RingSize + 100
	for i := 0; i < total; i++ {
		r.Record(HostWrite, uint64(i), int64(i), int64(i+1), 0, i%2 == 0)
	}
	ev := r.Trace(0)
	if len(ev) != RingSize {
		t.Fatalf("got %d events, want %d", len(ev), RingSize)
	}
	for i, e := range ev {
		want := uint64(total - RingSize + i)
		if e.LPA != want {
			t.Fatalf("event %d: lpa %d, want %d (not chronological)", i, e.LPA, want)
		}
		if e.Shard != 7 || e.Class != HostWrite {
			t.Fatalf("event %d mislabelled: %+v", i, e)
		}
		if e.OK != (want%2 == 0) {
			t.Fatalf("event %d outcome wrong: %+v", i, e)
		}
	}
	if got := r.Trace(16); len(got) != 16 || got[15].LPA != uint64(total-1) {
		t.Fatalf("Trace(16) wrong tail: %+v", got)
	}
}

func TestSnapshotMergeDeterministic(t *testing.T) {
	mk := func(shard int) Snapshot {
		r := NewRegistry()
		r.SetEnabled(true)
		r.SetShard(shard)
		for i := 0; i < 10*(shard+1); i++ {
			r.Observe(HostWrite, int64(1000*(i+1)), 0, true)
			r.Observe(FlashProgram, 750_000, 0, true)
		}
		return Snapshot{
			Shards:        1,
			WindowStartNS: int64(shard * 100),
			Segments:      shard + 1,
			C:             Counters{HostPageWrites: int64(10 * (shard + 1))},
			Ops:           r.Ops(),
		}
	}
	parts := []Snapshot{mk(0), mk(1), mk(2)}
	var fwd, rev Snapshot
	for _, p := range parts {
		fwd.Merge(p)
	}
	for i := len(parts) - 1; i >= 0; i-- {
		rev.Merge(parts[i])
	}
	if !reflect.DeepEqual(fwd, rev) {
		t.Fatalf("merge is order-sensitive:\n%+v\n%+v", fwd, rev)
	}
	if fwd.Shards != 3 || fwd.Segments != 6 || fwd.WindowStartNS != 200 {
		t.Fatalf("merged header wrong: %+v", fwd)
	}
	if fwd.C.HostPageWrites != 60 || fwd.Ops["host-write"].Count != 60 {
		t.Fatalf("merged counts wrong: %+v", fwd)
	}
	names := SortedOpNames(fwd.Ops)
	if !sortedStrings(names) {
		t.Fatalf("SortedOpNames not sorted: %v", names)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

// TestConcurrentHammer drives counters and the ring from many goroutines
// while readers snapshot continuously; run under -race this is the
// lock-freedom proof for the recording path.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.Ops()
					_ = r.Trace(64)
				}
			}
		}()
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				ws := r.Start()
				r.Record(Class(i%int(NumClasses)), uint64(i), int64(i), int64(i+1000), ws, true)
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()
	var total int64
	for _, st := range r.Ops() {
		total += st.Count
	}
	if want := int64(writers * perWriter); total != want {
		t.Fatalf("recorded %d samples, want %d", total, want)
	}
}
