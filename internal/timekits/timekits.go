// Package timekits implements TimeKits, the paper's host-side toolkit for
// exploiting TimeSSD's firmware-isolated time-travel property (§3.9).
//
// It exposes exactly the API of Table 1 — address-based state queries
// (AddrQuery, AddrQueryRange, AddrQueryAll), time-based state queries
// (TimeQuery, TimeQueryRange, TimeQueryAll) and state rollbacks (RollBack,
// RollBackAll) — plus the multi-threaded recovery driver used by the
// paper's file-revert case study (Fig. 11). In the real system these calls
// travel over vendor NVMe commands; here they call straight into the
// simulated firmware.
package timekits

import (
	"errors"
	"fmt"
	"sort"

	"almanac/internal/core"
	"almanac/internal/vclock"
)

// Kit wraps a TimeSSD device.
type Kit struct {
	dev *core.TimeSSD
}

// New returns a TimeKits instance bound to dev.
func New(dev *core.TimeSSD) *Kit { return &Kit{dev: dev} }

// Device returns the underlying TimeSSD.
func (k *Kit) Device() *core.TimeSSD { return k.dev }

// PageVersions is the result of an address-based query for one LPA.
type PageVersions struct {
	LPA      uint64
	Versions []core.Version // newest first
}

// Result carries a query's payload together with its virtual-time cost.
type Result[T any] struct {
	Value   T
	Start   vclock.Time
	Done    vclock.Time
	Elapsed vclock.Duration
}

func result[T any](v T, start, done vclock.Time) Result[T] {
	return Result[T]{Value: v, Start: start, Done: done, Elapsed: done.Sub(start)}
}

// ErrBadRange is returned for invalid address or time ranges.
var ErrBadRange = errors.New("timekits: invalid range")

// AddrQuery returns, for cnt LPAs starting at addr, the version that was
// current at time t — the paper's "first data version written since some
// time ago" read back in recovery scenarios. LPAs with no content at t get
// an empty version list.
func (k *Kit) AddrQuery(addr uint64, cnt int, t, at vclock.Time) (Result[[]PageVersions], error) {
	return k.addrQuery(addr, cnt, at, func(lpa uint64, when vclock.Time) ([]core.Version, vclock.Time, error) {
		v, done, err := k.dev.VersionAt(lpa, t, when)
		if err != nil || v == nil {
			return nil, done, err
		}
		return []core.Version{*v}, done, nil
	})
}

// AddrQueryRange returns all versions written within [t1, t2] for cnt LPAs
// starting at addr.
func (k *Kit) AddrQueryRange(addr uint64, cnt int, t1, t2, at vclock.Time) (Result[[]PageVersions], error) {
	if t2 < t1 {
		return Result[[]PageVersions]{}, fmt.Errorf("%w: t2 %v before t1 %v", ErrBadRange, t2, t1)
	}
	return k.addrQuery(addr, cnt, at, func(lpa uint64, when vclock.Time) ([]core.Version, vclock.Time, error) {
		vers, done, err := k.dev.Versions(lpa, when)
		if err != nil {
			return nil, done, err
		}
		var keep []core.Version
		for _, v := range vers {
			if v.TS >= t1 && v.TS <= t2 {
				keep = append(keep, v)
			}
		}
		return keep, done, nil
	})
}

// AddrQueryAll returns every retained version for cnt LPAs starting at addr.
func (k *Kit) AddrQueryAll(addr uint64, cnt int, at vclock.Time) (Result[[]PageVersions], error) {
	return k.addrQuery(addr, cnt, at, k.dev.Versions)
}

// addrQuery fans one per-LPA query over the range. Each LPA's walk starts
// at the same instant, so independent LPAs proceed in parallel across
// channels exactly as the firmware parallelises them.
func (k *Kit) addrQuery(addr uint64, cnt int, at vclock.Time,
	fn func(lpa uint64, at vclock.Time) ([]core.Version, vclock.Time, error)) (Result[[]PageVersions], error) {
	if err := k.checkRange(addr, cnt); err != nil {
		return Result[[]PageVersions]{}, err
	}
	out := make([]PageVersions, 0, cnt)
	done := at
	for i := 0; i < cnt; i++ {
		lpa := addr + uint64(i)
		vers, d, err := fn(lpa, at)
		if err != nil {
			return Result[[]PageVersions]{}, err
		}
		if d > done {
			done = d
		}
		out = append(out, PageVersions{LPA: lpa, Versions: vers})
	}
	return result(out, at, done), nil
}

// TimeQuery returns every LPA updated since time t with the matching write
// timestamps. It scans all valid LPAs (the paper's ~12-minute full-device
// query; proportionally faster on this simulator's smaller geometry).
func (k *Kit) TimeQuery(t, at vclock.Time) (Result[[]core.UpdateRecord], error) {
	return k.timeQuery(t, vclock.Time(int64(^uint64(0)>>1)), at)
}

// TimeQueryRange returns every LPA updated within [t1, t2].
func (k *Kit) TimeQueryRange(t1, t2, at vclock.Time) (Result[[]core.UpdateRecord], error) {
	if t2 < t1 {
		return Result[[]core.UpdateRecord]{}, fmt.Errorf("%w: t2 %v before t1 %v", ErrBadRange, t2, t1)
	}
	return k.timeQuery(t1, t2, at)
}

// TimeQueryAll returns the update history of the entire retention window.
func (k *Kit) TimeQueryAll(at vclock.Time) (Result[[]core.UpdateRecord], error) {
	return k.timeQuery(k.dev.RetentionWindowStart(), vclock.Time(int64(^uint64(0)>>1)), at)
}

func (k *Kit) timeQuery(from, to, at vclock.Time) (Result[[]core.UpdateRecord], error) {
	recs, done, err := k.dev.UpdatedBetween(from, to, at)
	if err != nil {
		return Result[[]core.UpdateRecord]{}, err
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].LPA < recs[j].LPA })
	return result(recs, at, done), nil
}

// checkRange validates an (addr, cnt) LPA range against device capacity —
// untrusted counts must never reach a preallocation or a long loop.
func (k *Kit) checkRange(addr uint64, cnt int) error {
	logical := uint64(k.dev.LogicalPages())
	if cnt < 1 || uint64(cnt) > logical || addr > logical-uint64(cnt) {
		return fmt.Errorf("%w: addr %d cnt %d (device has %d pages)", ErrBadRange, addr, cnt, logical)
	}
	return nil
}

// RollBack reverts cnt LPAs starting at addr to their state at time t.
func (k *Kit) RollBack(addr uint64, cnt int, t, at vclock.Time) (Result[int], error) {
	if err := k.checkRange(addr, cnt); err != nil {
		return Result[int]{}, err
	}
	changed := 0
	cur := at
	for i := 0; i < cnt; i++ {
		done, err := k.dev.RollBack(addr+uint64(i), t, cur)
		if err != nil {
			return Result[int]{}, err
		}
		cur = done
		changed++
	}
	return result(changed, at, cur), nil
}

// RollBackAll reverts every LPA with retrievable state to time t.
func (k *Kit) RollBackAll(t, at vclock.Time) (Result[int], error) {
	n, done, err := k.dev.RollBackAll(t, at)
	if err != nil {
		return Result[int]{}, err
	}
	return result(n, at, done), nil
}

// RollBackParallel reverts an explicit set of LPAs to time t using the
// given number of host threads. Each thread owns a shard of the LPAs and
// issues its operations serially; threads overlap on the device, which is
// what lets recovery scale with the SSD's internal parallelism (Fig. 11).
// The elapsed time is that of the slowest thread.
func (k *Kit) RollBackParallel(lpas []uint64, threads int, t, at vclock.Time) (Result[int], error) {
	if threads < 1 {
		return Result[int]{}, fmt.Errorf("%w: threads %d", ErrBadRange, threads)
	}
	if threads > len(lpas) && len(lpas) > 0 {
		threads = len(lpas)
	}
	cur := make([]vclock.Time, threads)
	for i := range cur {
		cur[i] = at
	}
	changed := 0
	// Round-robin sharding; operations of different threads interleave in
	// issue order, contending for channels exactly like concurrent host
	// threads with one outstanding request each.
	for i, lpa := range lpas {
		th := i % threads
		done, err := k.dev.RollBack(lpa, t, cur[th])
		if err != nil {
			return Result[int]{}, err
		}
		cur[th] = done
		changed++
	}
	done := at
	for _, c := range cur {
		if c > done {
			done = c
		}
	}
	return result(changed, at, done), nil
}

// VersionsParallel fetches full version histories for a set of LPAs with
// the given host thread count, returning when the slowest thread finishes.
func (k *Kit) VersionsParallel(lpas []uint64, threads int, at vclock.Time) (Result[[]PageVersions], error) {
	if threads < 1 {
		return Result[[]PageVersions]{}, fmt.Errorf("%w: threads %d", ErrBadRange, threads)
	}
	if threads > len(lpas) && len(lpas) > 0 {
		threads = len(lpas)
	}
	cur := make([]vclock.Time, threads)
	for i := range cur {
		cur[i] = at
	}
	out := make([]PageVersions, 0, len(lpas))
	for i, lpa := range lpas {
		th := i % threads
		vers, done, err := k.dev.Versions(lpa, cur[th])
		if err != nil {
			return Result[[]PageVersions]{}, err
		}
		cur[th] = done
		out = append(out, PageVersions{LPA: lpa, Versions: vers})
	}
	done := at
	for _, c := range cur {
		if c > done {
			done = c
		}
	}
	return result(out, at, done), nil
}
