package timekits

import (
	"errors"

	"almanac/internal/core"
	"almanac/internal/ftl"
	"almanac/internal/vclock"
)

// ErrReadOnly is returned by writes to a past view.
var ErrReadOnly = errors.New("timekits: past view is read-only")

// pastDevice adapts a TimeSSD into a read-only block device whose contents
// are the storage state as of a fixed past instant: every Read resolves
// through VersionAt. Mounting a file system on it (fsim.Mount) browses the
// whole tree exactly as it existed then — the paper's "roll back a storage
// system to a previous state" (§2.2) without modifying anything.
type pastDevice struct {
	dev  *core.TimeSSD
	when vclock.Time
	zero []byte
}

var _ ftl.Device = (*pastDevice)(nil)

// DeviceAt returns a read-only view of the device's state at time `when`.
// Pages whose version at `when` has expired from the retention window read
// as they do today or as zero, depending on what survives — callers should
// stay within the window for faithful results.
func (k *Kit) DeviceAt(when vclock.Time) ftl.Device {
	return &pastDevice{dev: k.dev, when: when, zero: make([]byte, k.dev.PageSize())}
}

func (p *pastDevice) Read(lpa uint64, at vclock.Time) ([]byte, vclock.Time, error) {
	v, done, err := p.dev.VersionAt(lpa, p.when, at)
	if err != nil {
		return nil, done, err
	}
	if v == nil {
		return p.zero, done, nil
	}
	return v.Data, done, nil
}

func (p *pastDevice) Write(uint64, []byte, vclock.Time) (vclock.Time, error) {
	return 0, ErrReadOnly
}

func (p *pastDevice) Trim(uint64, vclock.Time) (vclock.Time, error) {
	return 0, ErrReadOnly
}

func (p *pastDevice) LogicalPages() int { return p.dev.LogicalPages() }
func (p *pastDevice) PageSize() int     { return p.dev.PageSize() }
