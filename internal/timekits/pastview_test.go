package timekits

import (
	"bytes"
	"errors"
	"testing"

	"almanac/internal/core"
	"almanac/internal/flash"
	"almanac/internal/fsim"
	"almanac/internal/ftl"
	"almanac/internal/vclock"
)

// TestMountFileSystemAsOfThePast is the headline integration: a file
// system is created, evolves (edits, new files, deletions), and then the
// entire tree is mounted read-only exactly as it stood at an earlier
// instant — including a file that "no longer exists".
func TestMountFileSystemAsOfThePast(t *testing.T) {
	// fsim needs real-sized pages; build a dedicated device.
	fc := flash.DefaultConfig()
	fc.Channels = 2
	fc.ChipsPerChannel = 1
	fc.BlocksPerPlane = 32
	fc.PagesPerBlock = 16
	fc.PageSize = 512
	cfg := core.DefaultConfig(ftl.WithFlash(fc))
	cfg.MinRetention = 30 * vclock.Day
	dev, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := New(dev)
	fs, at, err := fsim.Mkfs(dev, fsim.DefaultOptions(fsim.ModeInPlace), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 1: two files.
	if at, err = fs.Create("report.txt", at.Add(vclock.Second)); err != nil {
		t.Fatal(err)
	}
	v1 := []byte("quarterly numbers: 42")
	if at, err = fs.Write("report.txt", 0, v1, at); err != nil {
		t.Fatal(err)
	}
	if at, err = fs.Create("doomed.txt", at); err != nil {
		t.Fatal(err)
	}
	if at, err = fs.Write("doomed.txt", 0, []byte("short-lived"), at); err != nil {
		t.Fatal(err)
	}
	snapshot := at // ← the instant we will travel back to

	// Epoch 2: edits and a deletion.
	at = at.Add(vclock.Hour)
	v2 := []byte("quarterly numbers: 7 (restated)")
	if at, err = fs.Write("report.txt", 0, v2, at); err != nil {
		t.Fatal(err)
	}
	if at, err = fs.Delete("doomed.txt", at); err != nil {
		t.Fatal(err)
	}
	if at, err = fs.Create("new.txt", at); err != nil {
		t.Fatal(err)
	}
	if at, err = fs.Write("new.txt", 0, []byte("born later"), at); err != nil {
		t.Fatal(err)
	}

	// The present is the present…
	sz, _ := fs.Size("report.txt")
	cur, _, _ := fs.Read("report.txt", 0, int(sz), at)
	if !bytes.Equal(cur, v2) {
		t.Fatal("present state wrong")
	}

	// …and the past is mountable.
	past, done, err := fsim.Mount(k.DeviceAt(snapshot), at)
	if err != nil {
		t.Fatalf("mounting the past: %v", err)
	}
	names := past.List()
	if len(names) != 2 {
		t.Fatalf("past tree has %v, want [doomed.txt report.txt]", names)
	}
	psz, err := past.Size("report.txt")
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := past.Read("report.txt", 0, int(psz), done)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v1) {
		t.Fatalf("past content %q, want %q", got, v1)
	}
	dsz, err := past.Size("doomed.txt")
	if err != nil {
		t.Fatal(err)
	}
	dgot, _, err := past.Read("doomed.txt", 0, int(dsz), done)
	if err != nil || !bytes.Equal(dgot, []byte("short-lived")) {
		t.Fatalf("deleted file not readable in the past view: %v %q", err, dgot)
	}
	if _, err := past.Size("new.txt"); err == nil {
		t.Fatal("a file from the future exists in the past")
	}
	// The past is immutable.
	if _, err := past.Create("huh", done); err == nil {
		t.Fatal("past view accepted a write")
	}

	// The present is untouched by all that browsing.
	cur2, _, _ := fs.Read("report.txt", 0, int(sz), at)
	if !bytes.Equal(cur2, v2) {
		t.Fatal("past browsing disturbed the present")
	}
}

func TestPastDeviceBasics(t *testing.T) {
	k := newKit(t)
	d := k.Device()
	page := func(b byte) []byte {
		p := make([]byte, d.PageSize())
		p[0] = b
		return p
	}
	d.Write(5, page(1), vclock.Time(vclock.Hour))
	d.Write(5, page(2), vclock.Time(2*vclock.Hour))

	pv := k.DeviceAt(vclock.Time(90 * vclock.Minute))
	if pv.LogicalPages() != d.LogicalPages() || pv.PageSize() != d.PageSize() {
		t.Fatal("geometry mismatch")
	}
	data, _, err := pv.Read(5, vclock.Time(3*vclock.Hour))
	if err != nil || data[0] != 1 {
		t.Fatalf("past read: %v %d", err, data[0])
	}
	// Unwritten-at-that-time pages read zero.
	data, _, err = pv.Read(6, vclock.Time(3*vclock.Hour))
	if err != nil || data[0] != 0 {
		t.Fatalf("past read of empty page: %v", err)
	}
	if _, err := pv.Write(5, page(9), 0); !errors.Is(err, ErrReadOnly) {
		t.Fatal("write accepted")
	}
	if _, err := pv.Trim(5, 0); !errors.Is(err, ErrReadOnly) {
		t.Fatal("trim accepted")
	}
}
