package timekits

import (
	"bytes"
	"math/rand"
	"testing"

	"almanac/internal/core"
	"almanac/internal/flash"
	"almanac/internal/ftl"
	"almanac/internal/vclock"
)

func newKit(t *testing.T) *Kit {
	t.Helper()
	fc := flash.DefaultConfig()
	fc.Channels = 4
	fc.ChipsPerChannel = 1
	fc.BlocksPerPlane = 16
	fc.PagesPerBlock = 8
	fc.PageSize = 128
	cfg := core.DefaultConfig(ftl.WithFlash(fc))
	cfg.MinRetention = 0
	cfg.BFGroup = 1
	d, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return New(d)
}

func page(k *Kit, lpa uint64, seq int) []byte {
	p := make([]byte, k.Device().PageSize())
	for i := range p {
		p[i] = byte(lpa)
	}
	p[0] = byte(seq)
	return p
}

// seed writes three versions of LPAs 0..n-1 at t=100i+{1000,2000,3000}.
func seed(t *testing.T, k *Kit, n int) vclock.Time {
	t.Helper()
	var at vclock.Time
	for round := 0; round < 3; round++ {
		for lpa := 0; lpa < n; lpa++ {
			at = vclock.Time(1000*(round+1) + 100*lpa)
			if _, err := k.Device().Write(uint64(lpa), page(k, uint64(lpa), round), at); err != nil {
				t.Fatal(err)
			}
		}
	}
	return 100000
}

func TestAddrQuery(t *testing.T) {
	k := newKit(t)
	at := seed(t, k, 4)
	res, err := k.AddrQuery(0, 4, 2500, at)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Value) != 4 {
		t.Fatalf("%d results", len(res.Value))
	}
	for _, pv := range res.Value {
		if len(pv.Versions) != 1 {
			t.Fatalf("lpa %d: %d versions at t=2500", pv.LPA, len(pv.Versions))
		}
		if pv.Versions[0].Data[0] != 1 {
			t.Fatalf("lpa %d: wrong round", pv.LPA)
		}
	}
	if res.Elapsed <= 0 {
		t.Fatal("query cost no device time")
	}
}

func TestAddrQueryEmptyPage(t *testing.T) {
	k := newKit(t)
	at := seed(t, k, 2)
	res, err := k.AddrQuery(50, 1, 2500, at)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Value[0].Versions) != 0 {
		t.Fatal("never-written LPA returned versions")
	}
}

func TestAddrQueryRange(t *testing.T) {
	k := newKit(t)
	at := seed(t, k, 2)
	res, err := k.AddrQueryRange(0, 1, 1500, 2500, at)
	if err != nil {
		t.Fatal(err)
	}
	vers := res.Value[0].Versions
	if len(vers) != 1 || vers[0].Data[0] != 1 {
		t.Fatalf("range query returned %d versions", len(vers))
	}
	if _, err := k.AddrQueryRange(0, 1, 2500, 1500, at); err == nil {
		t.Fatal("inverted time range accepted")
	}
}

func TestAddrQueryAll(t *testing.T) {
	k := newKit(t)
	at := seed(t, k, 2)
	res, err := k.AddrQueryAll(1, 1, at)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Value[0].Versions); got != 3 {
		t.Fatalf("got %d versions, want 3", got)
	}
}

func TestAddrQueryBadCount(t *testing.T) {
	k := newKit(t)
	if _, err := k.AddrQuery(0, 0, 0, 0); err == nil {
		t.Fatal("cnt=0 accepted")
	}
}

func TestRangeValidation(t *testing.T) {
	k := newKit(t)
	logical := uint64(k.Device().LogicalPages())
	// Hostile counts must be rejected before any allocation or loop.
	if _, err := k.AddrQueryAll(0, 1<<30, 0); err == nil {
		t.Fatal("absurd cnt accepted")
	}
	if _, err := k.AddrQueryAll(logical-1, 2, 0); err == nil {
		t.Fatal("range crossing device end accepted")
	}
	if _, err := k.RollBack(logical, 1, 0, 0); err == nil {
		t.Fatal("rollback past device end accepted")
	}
	// The largest legal range is accepted.
	if _, err := k.AddrQuery(0, int(logical), 0, 0); err != nil {
		t.Fatalf("full-device query rejected: %v", err)
	}
}

func TestTimeQuery(t *testing.T) {
	k := newKit(t)
	at := seed(t, k, 4)
	res, err := k.TimeQuery(2900, at)
	if err != nil {
		t.Fatal(err)
	}
	// Only round-2 writes (t=3000+100*lpa) are since 2900.
	if len(res.Value) != 4 {
		t.Fatalf("TimeQuery found %d LPAs, want 4", len(res.Value))
	}
	for _, r := range res.Value {
		if len(r.Times) != 1 {
			t.Fatalf("lpa %d: %d timestamps", r.LPA, len(r.Times))
		}
	}
}

func TestTimeQueryRange(t *testing.T) {
	k := newKit(t)
	at := seed(t, k, 4)
	res, err := k.TimeQueryRange(2000, 2300, at)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Value) != 4 {
		t.Fatalf("found %d LPAs", len(res.Value))
	}
	// Results are sorted by LPA.
	for i := 1; i < len(res.Value); i++ {
		if res.Value[i].LPA <= res.Value[i-1].LPA {
			t.Fatal("results not sorted")
		}
	}
	if _, err := k.TimeQueryRange(10, 5, at); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestTimeQueryAll(t *testing.T) {
	k := newKit(t)
	at := seed(t, k, 3)
	res, err := k.TimeQueryAll(at)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Value) != 3 {
		t.Fatalf("found %d LPAs", len(res.Value))
	}
}

func TestRollBackRange(t *testing.T) {
	k := newKit(t)
	at := seed(t, k, 4)
	res, err := k.RollBack(0, 4, 1500, at)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 4 {
		t.Fatalf("rolled back %d", res.Value)
	}
	for lpa := uint64(0); lpa < 4; lpa++ {
		data, _, _ := k.Device().Read(lpa, res.Done)
		if data[0] != 0 || data[5] != byte(lpa) {
			t.Fatalf("lpa %d not at round 0", lpa)
		}
	}
}

func TestRollBackAllKit(t *testing.T) {
	k := newKit(t)
	at := seed(t, k, 4)
	res, err := k.RollBackAll(1500, at)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 4 {
		t.Fatalf("changed %d pages", res.Value)
	}
}

func TestRollBackParallelCorrectAndFaster(t *testing.T) {
	k := newKit(t)
	d := k.Device()
	// Spread versions over many LPAs so channels can overlap.
	var at, endRound0 vclock.Time
	n := 64
	for round := 0; round < 2; round++ {
		for lpa := 0; lpa < n; lpa++ {
			at = at.Add(10 * vclock.Millisecond)
			done, err := d.Write(uint64(lpa), page(k, uint64(lpa), round), at)
			if err != nil {
				t.Fatal(err)
			}
			at = done
		}
		if round == 0 {
			endRound0 = at
		}
	}
	lpas := make([]uint64, n)
	for i := range lpas {
		lpas[i] = uint64(i)
	}
	// Measure with 1 thread on a fresh device copy is impossible (state
	// mutates), so measure 1-thread on the second half and 4-thread on the
	// first half; both shards are statistically identical.
	t1, err := k.VersionsParallel(lpas[:n/2], 1, at)
	if err != nil {
		t.Fatal(err)
	}
	// Start the second measurement after the first drains so residual
	// channel busy-time does not pollute it.
	t4, err := k.VersionsParallel(lpas[n/2:], 4, t1.Done)
	if err != nil {
		t.Fatal(err)
	}
	if t4.Elapsed >= t1.Elapsed {
		t.Fatalf("4 threads (%v) not faster than 1 (%v)", t4.Elapsed, t1.Elapsed)
	}
	// And parallel rollback restores content correctly.
	res, err := k.RollBackParallel(lpas, 4, endRound0, t4.Done)
	if err != nil {
		t.Fatal(err)
	}
	for lpa := 0; lpa < n; lpa++ {
		data, _, _ := d.Read(uint64(lpa), res.Done)
		if data[0] != 0 {
			t.Fatalf("lpa %d: rollback restored wrong round %d", lpa, data[0])
		}
	}
}

func TestRollBackParallelBadThreads(t *testing.T) {
	k := newKit(t)
	if _, err := k.RollBackParallel(nil, 0, 0, 0); err == nil {
		t.Fatal("threads=0 accepted")
	}
}

// TestKitUnderChurn drives random writes then checks AddrQueryAll agrees
// with direct device Versions for every LPA.
func TestKitUnderChurn(t *testing.T) {
	k := newKit(t)
	d := k.Device()
	rng := rand.New(rand.NewSource(3))
	var at vclock.Time
	for i := 0; i < 3000; i++ {
		at = at.Add(vclock.Second)
		lpa := uint64(rng.Intn(32))
		done, err := d.Write(lpa, page(k, lpa, i), at)
		if err != nil {
			t.Fatal(err)
		}
		at = done
	}
	for lpa := uint64(0); lpa < 32; lpa++ {
		want, _, err := d.Versions(lpa, at)
		if err != nil {
			t.Fatal(err)
		}
		res, err := k.AddrQueryAll(lpa, 1, at)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Value[0].Versions
		if len(got) != len(want) {
			t.Fatalf("lpa %d: kit %d versions, device %d", lpa, len(got), len(want))
		}
		for i := range got {
			if got[i].TS != want[i].TS || !bytes.Equal(got[i].Data, want[i].Data) {
				t.Fatalf("lpa %d version %d mismatch", lpa, i)
			}
		}
	}
}
