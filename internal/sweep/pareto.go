package sweep

import (
	"fmt"
	"strconv"
)

// The sweep's objective space, fixed across every spec so artifacts from
// different sweeps compare: GC overhead, wear, and tail latency are
// minimized; achieved retention is maximized. This is the paper's §3.4
// triangle (retention vs GC overhead vs wear) with the latency axis the
// service layer cares about added.

// dominates reports whether a is at least as good as b in every
// objective and strictly better in at least one.
func dominates(a, b Metrics) bool {
	better := false
	type pair struct{ x, y float64 }
	mins := []pair{
		{a.GCOverhead, b.GCOverhead},
		{float64(a.WearMax), float64(b.WearMax)},
		{a.P99WriteMS, b.P99WriteMS},
		{b.RetentionDays, a.RetentionDays}, // maximized: flip
	}
	for _, p := range mins {
		if p.x > p.y {
			return false
		}
		if p.x < p.y {
			better = true
		}
	}
	return better
}

// Pareto returns the non-dominated subset of the results, in point
// enumeration order.
func (r *Results) Pareto() []PointResult {
	var out []PointResult
	for i, a := range r.Points {
		dominated := false
		for j, b := range r.Points {
			if i != j && dominates(b.Metrics, a.Metrics) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	return out
}

func fmtMetricCells(m Metrics) []string {
	return []string{
		strconv.FormatFloat(m.GCOverhead, 'f', 4, 64),
		strconv.FormatFloat(m.WriteAmp, 'f', 3, 64),
		strconv.Itoa(m.WearMax),
		strconv.Itoa(m.WearSpread),
		strconv.FormatFloat(m.RetentionDays, 'f', 2, 64),
		strconv.FormatFloat(m.P99WriteMS, 'f', 3, 64),
		strconv.FormatInt(m.Errors, 10),
	}
}

var metricHeader = []string{"gc-ovh", "write-amp", "wear-max", "wear-spread", "retention(d)", "p99-write(ms)", "errors"}

// TableFor renders a point set as header+rows: one column per axis knob
// followed by the metric columns. Used for both the full result table
// and the Pareto table so the two align.
func (r *Results) TableFor(points []PointResult) (header []string, rows [][]string) {
	for _, a := range r.Spec.Axes {
		header = append(header, a.Knob)
	}
	header = append(header, metricHeader...)
	for _, p := range points {
		row := append([]string(nil), p.Values...)
		row = append(row, fmtMetricCells(p.Metrics)...)
		rows = append(rows, row)
	}
	return header, rows
}

// ParetoTable renders the Pareto frontier.
func (r *Results) ParetoTable() (header []string, rows [][]string) {
	return r.TableFor(r.Pareto())
}

// Title is the canonical table title for this sweep.
func (r *Results) Title() string {
	return fmt.Sprintf("Design-space sweep %q: %d points, workload %s @%.0f%% usage",
		r.Spec.Name, len(r.Points), r.Spec.Workload, r.Spec.Usage*100)
}
