package sweep

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"almanac/internal/core"
	"almanac/internal/flash"
	"almanac/internal/ftl"
	"almanac/internal/vclock"
)

// microBase is a deliberately tiny device so a 256-point grid stays in
// test-budget territory: 2 ch × 1 chip × 1 plane × 8 blocks × 16 pages.
func microBase(t *testing.T) core.Config {
	t.Helper()
	fc := flash.DefaultConfig()
	fc.Channels = 2
	fc.ChipsPerChannel = 1
	fc.BlocksPerPlane = 8
	fc.PagesPerBlock = 16
	fc.PageSize = 2048
	cfg := core.DefaultConfig(ftl.WithFlash(fc))
	cfg.MinRetention = 30 * vclock.Minute
	if err := cfg.Validate(); err != nil {
		t.Fatalf("micro base invalid: %v", err)
	}
	return cfg
}

// bigSpecText is the acceptance-criteria sweep: a 4-axis grid with 256
// points (>= the required 200). Retention-bound values are scaled to the
// micro device so high-retention points degrade, not wedge.
const bigSpecText = `sweep accept-grid
seed 7
sample grid
workload src usage 0.7 days 1 reqperday 60
axis op 0.1 0.2 0.28 0.45
axis minret 20m 40m 1h20m 2h40m
axis bfgroup 4 16 64 256
axis th 0.05 0.1 0.2 0.4
`

func mustParse(t *testing.T, text string) *Spec {
	t.Helper()
	s, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func TestSpecStringRoundTrip(t *testing.T) {
	texts := []string{
		bigSpecText,
		"sweep lhs-demo\nseed 42\nsample lhs 16\nworkload web usage 0.5 days 3 reqperday 500\naxis op range 0.07 0.45\naxis th range 0.05 0.4\n",
		"sweep defaults-only\naxis cohort 1 2 4\n",
	}
	for _, text := range texts {
		s := mustParse(t, text)
		again := mustParse(t, s.String())
		if s.String() != again.String() {
			t.Fatalf("String not a fixed point of Parse:\n%q\n%q", s.String(), again.String())
		}
	}
}

func TestParseCanonicalisesValues(t *testing.T) {
	// 0.10 and 90m are legal spellings but not canonical; Parse must
	// rewrite them so checkpoint keys never depend on author spelling.
	s := mustParse(t, "sweep canon\naxis op 0.10 0.2\naxis minret 90m 3h\n")
	if got := s.Axes[0].Values[0]; got != "0.1" {
		t.Fatalf("op value not canonicalised: %q", got)
	}
	if got := s.Axes[1].Values[0]; got != "1h30m0s" {
		t.Fatalf("minret value not canonicalised: %q", got)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct{ name, text string }{
		{"no name", "seed 3\naxis op 0.1 0.2\n"},
		{"dup name", "sweep a\nsweep b\naxis op 0.1 0.2\n"},
		{"unknown directive", "sweep a\nbogus 1\naxis op 0.1 0.2\n"},
		{"unknown knob", "sweep a\naxis warpdrive 1 2\n"},
		{"dup knob", "sweep a\naxis op 0.1 0.2\naxis op 0.3 0.4\n"},
		{"bad value", "sweep a\naxis op banana 0.2\n"},
		{"no axes", "sweep a\nseed 1\n"},
		{"range under grid", "sweep a\naxis op range 0.1 0.4\n"},
		{"values under lhs", "sweep a\nsample lhs 8\naxis op 0.1 0.2\n"},
		{"inverted range", "sweep a\nsample lhs 8\naxis op range 0.4 0.1\n"},
		{"half range", "sweep a\naxis op range 0.1\n"},
		{"zero lhs samples", "sweep a\nsample lhs 0\naxis op range 0.1 0.4\n"},
		{"bad usage", "sweep a\nworkload src usage 1.5 days 2 reqperday 10\naxis op 0.1 0.2\n"},
		{"bad days", "sweep a\nworkload src usage 0.5 days 0 reqperday 10\naxis op 0.1 0.2\n"},
		{"name with spaces impossible via parse but blank", "sweep \naxis op 0.1 0.2\n"},
	}
	for _, c := range cases {
		if _, err := Parse(c.text); err == nil {
			t.Errorf("%s: Parse accepted %q", c.name, c.text)
		}
	}
}

func TestGridEnumeration(t *testing.T) {
	s := mustParse(t, "sweep g\naxis cohort 1 2\naxis nfixed 64 128 256\n")
	pts, err := s.Points(microBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6", len(pts))
	}
	// First axis slowest.
	wantOrder := [][]string{
		{"1", "64"}, {"1", "128"}, {"1", "256"},
		{"2", "64"}, {"2", "128"}, {"2", "256"},
	}
	for i, p := range pts {
		if p.Index != i {
			t.Fatalf("point %d has Index %d", i, p.Index)
		}
		for j, v := range wantOrder[i] {
			if p.Values[j] != v {
				t.Fatalf("point %d values %v, want %v", i, p.Values, wantOrder[i])
			}
		}
	}
}

func TestLHSSampling(t *testing.T) {
	text := "sweep l\nseed 99\nsample lhs 12\naxis op range 0.1 0.4\naxis nfixed range 64 512\n"
	s := mustParse(t, text)
	base := microBase(t)
	pts1, err := s.Points(base)
	if err != nil {
		t.Fatal(err)
	}
	pts2, err := mustParse(t, text).Points(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts1) != len(pts2) {
		t.Fatalf("LHS not deterministic: %d vs %d points", len(pts1), len(pts2))
	}
	for i := range pts1 {
		if pts1[i].Key != pts2[i].Key {
			t.Fatalf("LHS point %d differs across expansions", i)
		}
	}
	// Latin-hypercube property: n samples, every axis value unique (one
	// per stratum) unless rounding collapsed strata.
	if len(pts1) != 12 {
		t.Fatalf("got %d LHS points, want 12", len(pts1))
	}
	opSeen := map[string]bool{}
	for _, p := range pts1 {
		opSeen[p.Values[0]] = true
	}
	if len(opSeen) != 12 {
		t.Fatalf("op axis reused a stratum: %d unique of 12", len(opSeen))
	}
	// A different seed must produce a different design.
	other := mustParse(t, strings.Replace(text, "seed 99", "seed 100", 1))
	pts3, err := other.Points(base)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range pts1 {
		if pts1[i].Key != pts3[i].Key {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed change did not change the LHS design")
	}
}

func TestPointsDedupe(t *testing.T) {
	// Two spellings that canonicalise differently but apply identically
	// cannot happen post-Parse; instead force duplicates via a knob whose
	// values repeat after clamping — here literally identical values are
	// rejected earlier, so build the spec by hand (package-internal test).
	s := &Spec{Name: "dup", Sampling: "grid", Workload: "src", Usage: 0.5, Days: 1, ReqPerDay: 10,
		Axes: []Axis{{Knob: "cohort", Values: []string{"2", "2"}}}}
	pts, err := s.Points(microBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("duplicate configs not deduped: %d points", len(pts))
	}
}

func runArtifact(t *testing.T, spec *Spec, base core.Config, workers int, checkpoint string) ([]byte, *Results) {
	t.Helper()
	eng := &Engine{Spec: spec, Base: base, Workers: workers, Checkpoint: checkpoint}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run (workers=%d): %v", workers, err)
	}
	b, err := res.Artifact().Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b, res
}

// TestSweepDeterministic is the ISSUE acceptance gate: a >=200-point
// grid over >=4 axes completes, the artifact and Pareto table are
// byte-identical at worker counts 1 and N, and every point key
// round-trips through core.ParseConfig.
func TestSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("256-point grid")
	}
	spec := mustParse(t, bigSpecText)
	base := microBase(t)

	serial, resSerial := runArtifact(t, spec, base, 1, "")
	par, resPar := runArtifact(t, mustParse(t, bigSpecText), base, 8, "")
	if !bytes.Equal(serial, par) {
		t.Fatal("artifact differs between -j 1 and -j 8")
	}
	if len(resSerial.Points) < 200 {
		t.Fatalf("only %d points, acceptance needs >= 200", len(resSerial.Points))
	}
	if len(spec.Axes) < 4 {
		t.Fatalf("only %d axes, acceptance needs >= 4", len(spec.Axes))
	}

	sh, sr := resSerial.ParetoTable()
	ph, pr := resPar.ParetoTable()
	if strings.Join(sh, "|") != strings.Join(ph, "|") || len(sr) != len(pr) {
		t.Fatal("Pareto table differs between worker counts")
	}
	for i := range sr {
		if strings.Join(sr[i], "|") != strings.Join(pr[i], "|") {
			t.Fatalf("Pareto row %d differs between worker counts", i)
		}
	}
	if len(sr) == 0 {
		t.Fatal("empty Pareto frontier")
	}

	// Every emitted config must round-trip through the canonical codec.
	for _, p := range resSerial.Points {
		cfg, err := core.ParseConfig(p.Key)
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", p.Key, err)
		}
		if cfg.String() != p.Key {
			t.Fatalf("config key not a round-trip fixed point:\n%s\n%s", p.Key, cfg.String())
		}
	}

	// Pareto members must be actual points and non-dominated.
	keys := map[string]Metrics{}
	for _, p := range resSerial.Points {
		keys[p.Key] = p.Metrics
	}
	for _, p := range resSerial.Pareto() {
		m, ok := keys[p.Key]
		if !ok {
			t.Fatalf("Pareto key %q not in point set", p.Key)
		}
		for _, q := range resSerial.Points {
			if q.Key != p.Key && dominates(q.Metrics, m) {
				t.Fatalf("Pareto point %q is dominated by %q", p.Key, q.Key)
			}
		}
	}
}

// smallSpecText keeps checkpoint/resume tests cheap: 3x3 grid.
const smallSpecText = `sweep ckpt-grid
seed 3
workload src usage 0.6 days 1 reqperday 40
axis op 0.1 0.2 0.4
axis th 0.05 0.1 0.3
`

// TestCheckpointResume kills a sweep partway (StopAfter), then resumes
// from the checkpoint and requires the final artifact to be
// byte-identical to an uninterrupted run.
func TestCheckpointResume(t *testing.T) {
	base := microBase(t)
	want, _ := runArtifact(t, mustParse(t, smallSpecText), base, 1, "")

	ck := filepath.Join(t.TempDir(), "sweep.ckpt")
	eng := &Engine{Spec: mustParse(t, smallSpecText), Base: base, Workers: 2, Checkpoint: ck, StopAfter: 4}
	if _, err := eng.Run(); !errors.Is(err, ErrStopped) {
		t.Fatalf("truncated run: err = %v, want ErrStopped", err)
	}
	lines := checkpointLines(t, ck)
	if len(lines) != 4 {
		t.Fatalf("checkpoint holds %d lines after StopAfter=4, want 4", len(lines))
	}

	// Simulate a kill mid-append: a torn, unparsable final line must be
	// ignored on resume.
	f, err := os.OpenFile(ck, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	got, res := runArtifact(t, mustParse(t, smallSpecText), base, 1, ck)
	if !bytes.Equal(want, got) {
		t.Fatal("resumed artifact differs from uninterrupted run")
	}
	if len(res.Points) != 9 {
		t.Fatalf("resumed run has %d points, want 9", len(res.Points))
	}
}

// TestCheckpointFullResume re-runs over a complete checkpoint: nothing
// executes (every point is already done) and the artifact still matches.
func TestCheckpointFullResume(t *testing.T) {
	base := microBase(t)
	ck := filepath.Join(t.TempDir(), "sweep.ckpt")
	want, _ := runArtifact(t, mustParse(t, smallSpecText), base, 2, ck)
	before := checkpointLines(t, ck)
	got, _ := runArtifact(t, mustParse(t, smallSpecText), base, 1, ck)
	if !bytes.Equal(want, got) {
		t.Fatal("re-run over complete checkpoint changed the artifact")
	}
	if after := checkpointLines(t, ck); len(after) != len(before) {
		t.Fatalf("complete re-run appended lines: %d -> %d", len(before), len(after))
	}
}

func TestCheckpointMidFileCorruption(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "sweep.ckpt")
	if err := os.WriteFile(ck, []byte("not json at all\n{\"key\":\"x\",\"values\":null,\"metrics\":{}}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng := &Engine{Spec: mustParse(t, smallSpecText), Base: microBase(t), Checkpoint: ck}
	if _, err := eng.Run(); err == nil || !strings.Contains(err.Error(), "unparsable non-final line") {
		t.Fatalf("mid-file corruption not reported: err = %v", err)
	}
}

func checkpointLines(t *testing.T, path string) []string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, l := range strings.Split(string(b), "\n") {
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}

func TestArtifactFileRoundTrip(t *testing.T) {
	base := microBase(t)
	_, res := runArtifact(t, mustParse(t, smallSpecText), base, 0, "")
	a := res.Artifact()
	path := filepath.Join(t.TempDir(), "SWEEP_test.json")
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != a.Name || back.Seed != a.Seed || back.Spec != a.Spec || len(back.Points) != len(a.Points) {
		t.Fatal("artifact did not survive the file round trip")
	}
	// The embedded spec must itself re-parse: the artifact is the
	// experiment.
	if _, err := Parse(back.Spec); err != nil {
		t.Fatalf("embedded spec does not re-parse: %v", err)
	}
	// Schema gate.
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadArtifact(path); err == nil {
		t.Fatal("ReadArtifact accepted a foreign schema")
	}
}

func TestDefaultSpec(t *testing.T) {
	s := DefaultSpec(1, 4, 2, 100)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Axes) != 4 {
		t.Fatalf("default spec has %d axes, want 4", len(s.Axes))
	}
	pts, err := s.Points(microBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 256 {
		t.Fatalf("full default grid has %d points, want 256", len(pts))
	}
	if _, err := Parse(s.String()); err != nil {
		t.Fatalf("default spec text does not re-parse: %v", err)
	}
	// Clamping.
	if got := len(DefaultSpec(1, 0, 2, 100).Axes[0].Values); got != 2 {
		t.Fatalf("valuesPerAxis<2 not clamped: %d", got)
	}
	if got := len(DefaultSpec(1, 9, 2, 100).Axes[0].Values); got != 4 {
		t.Fatalf("valuesPerAxis>4 not clamped: %d", got)
	}
}

func TestKnobsDocumented(t *testing.T) {
	ks := Knobs()
	if len(ks) != len(knobs) {
		t.Fatalf("Knobs() returned %d entries, want %d", len(ks), len(knobs))
	}
	for i, k := range ks {
		if k[1] == "" {
			t.Errorf("knob %q undocumented", k[0])
		}
		if i > 0 && ks[i-1][0] >= k[0] {
			t.Errorf("Knobs() unsorted at %q", k[0])
		}
	}
}

func TestDominates(t *testing.T) {
	a := Metrics{GCOverhead: 1, WearMax: 10, P99WriteMS: 5, RetentionDays: 3}
	b := Metrics{GCOverhead: 2, WearMax: 10, P99WriteMS: 5, RetentionDays: 3}
	if !dominates(a, b) || dominates(b, a) {
		t.Fatal("strictly-better GC overhead must dominate")
	}
	if dominates(a, a) {
		t.Fatal("a point must not dominate itself (no strict improvement)")
	}
	c := Metrics{GCOverhead: 0.5, WearMax: 20, P99WriteMS: 5, RetentionDays: 3}
	if dominates(a, c) || dominates(c, a) {
		t.Fatal("trade-off points must be mutually non-dominated")
	}
	d := Metrics{GCOverhead: 1, WearMax: 10, P99WriteMS: 5, RetentionDays: 4}
	if !dominates(d, a) {
		t.Fatal("higher retention at equal cost must dominate")
	}
}
