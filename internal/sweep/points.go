package sweep

import (
	"fmt"
	"math/rand"

	"almanac/internal/core"
)

// Point is one design point: the axis values that define it, the
// concrete configuration they produce over the engine's base config, and
// the canonical key every downstream surface (checkpoint, artifact,
// Pareto tables) uses to refer to it.
type Point struct {
	Index  int      // position in enumeration order
	Values []string // one canonical value per spec axis, in axis order
	Config core.Config
	Key    string // Config.String(): the one unambiguous serialization
}

// Points expands the spec into design points over base. Enumeration is
// deterministic: grid sampling walks the cartesian product with the
// first axis slowest, and Latin-hypercube sampling derives its strata
// permutations from the spec seed alone. Duplicate keys (distinct
// samples that round to the same configuration) keep only their first
// occurrence, so keys are unique within a sweep. Every returned config
// passed Validate.
func (s *Spec) Points(base core.Config) ([]Point, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var valueTuples [][]string
	switch s.Sampling {
	case "grid":
		valueTuples = gridTuples(s.Axes)
	case "lhs":
		valueTuples = lhsTuples(s.Axes, s.Samples, s.Seed)
	}
	points := make([]Point, 0, len(valueTuples))
	seen := make(map[string]bool, len(valueTuples))
	for _, tuple := range valueTuples {
		cfg := base
		// The base retention key is shared, not cloned: knobs never touch
		// it and configs are otherwise value types.
		for i, a := range s.Axes {
			if err := knobs[a.Knob].apply(&cfg, tuple[i]); err != nil {
				return nil, fmt.Errorf("sweep: axis %q value %q: %v", a.Knob, tuple[i], err)
			}
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: point %v yields invalid config: %v", tuple, err)
		}
		key := cfg.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		points = append(points, Point{Index: len(points), Values: tuple, Config: cfg, Key: key})
	}
	return points, nil
}

// gridTuples walks the cartesian product of explicit axis values, first
// axis slowest — the order a nested-loop sweep would produce.
func gridTuples(axes []Axis) [][]string {
	total := 1
	for _, a := range axes {
		total *= len(a.Values)
	}
	out := make([][]string, 0, total)
	tuple := make([]string, len(axes))
	var walk func(depth int)
	walk = func(depth int) {
		if depth == len(axes) {
			out = append(out, append([]string(nil), tuple...))
			return
		}
		for _, v := range axes[depth].Values {
			tuple[depth] = v
			walk(depth + 1)
		}
	}
	walk(0)
	return out
}

// lhsTuples draws n Latin-hypercube samples: each axis's range is cut
// into n equal strata, each stratum is used exactly once per axis, and
// the per-axis stratum orders are independent seeded permutations. The
// sample sits at a seeded offset within its stratum. All randomness
// flows from the spec seed, so the design is a pure function of the
// spec.
func lhsTuples(axes []Axis, n int, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	perAxis := make([][]string, len(axes))
	for ai, a := range axes {
		k := knobs[a.Knob]
		lo, _ := k.parse(a.Min)
		hi, _ := k.parse(a.Max)
		perm := rng.Perm(n)
		vals := make([]string, n)
		for i := 0; i < n; i++ {
			stratum := float64(perm[i])
			pos := (stratum + rng.Float64()) / float64(n)
			vals[i] = k.format(lo + pos*(hi-lo))
		}
		perAxis[ai] = vals
	}
	out := make([][]string, n)
	for i := 0; i < n; i++ {
		tuple := make([]string, len(axes))
		for ai := range axes {
			tuple[ai] = perAxis[ai][i]
		}
		out[i] = tuple
	}
	return out
}
