// Package sweep is the design-space exploration engine: it expands a
// declarative parameter-space specification into concrete TimeSSD
// configurations, runs one deterministic workload per configuration
// across a host worker pool, extracts comparison metrics from
// internal/obs snapshots, and reduces the result set to Pareto-frontier
// tables and a machine-readable artifact.
//
// Almanac's headline numbers — retention vs GC overhead vs wear under
// Eq. 1 — are single points in a large space (over-provisioning,
// retention bound, Bloom segmentation, cohort size, cache sizing, …).
// EagleTree's argument (PAPERS.md) is that SSD algorithm research lives
// or dies on systematic exploration of exactly this space; SimpleSSD's
// is that the configuration surface must be declarative so experiments
// are scriptable and reproducible. This package is both arguments
// applied to the simulator: the spec text is the experiment, and the
// same spec plus the same seed produces a byte-identical artifact at any
// worker count, on any host.
//
// Every design point is keyed by the canonical text encoding of its
// core.Config (core.ParseConfig / Config.String): checkpoint rows,
// artifact rows, and resume matching all use that one serialization, so
// a sweep killed mid-run resumes from its checkpoint file — possibly
// under a different binary — to the same artifact bytes.
package sweep

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"almanac/internal/core"
	"almanac/internal/vclock"
)

// Axis is one swept dimension: a named knob and either an explicit value
// list (grid sampling) or an inclusive numeric range (Latin-hypercube
// sampling). Values are canonical per-knob strings ("0.15", "12h0m0s",
// "64") so an axis serializes unambiguously into the spec text.
type Axis struct {
	Knob   string
	Values []string // explicit grid values; empty when Min/Max is set
	Min    string   // range lower bound (LHS); empty when Values is set
	Max    string   // range upper bound
}

// Spec is a parameter-space specification: workload, sampling strategy,
// and the swept axes. Construct specs with Parse (or, inside the sweep
// and harness layers, as literals); the almalint sweepspec rule keeps
// every other package on the Parse path so specs stay serialisable and
// CI-replayable, exactly like fault plans.
type Spec struct {
	Name      string
	Seed      int64
	Sampling  string // "grid" or "lhs"
	Samples   int    // LHS sample count (0 for grid)
	Workload  string // trace workload name (trace.NamedSpec)
	Usage     float64
	Days      int
	ReqPerDay int
	Axes      []Axis
}

// knob describes one sweepable core.Config dimension: how to parse and
// canonicalise its values, how to interpolate it for Latin-hypercube
// sampling, and how to apply it to a config.
type knob struct {
	doc    string
	parse  func(string) (float64, error) // value text → numeric position
	format func(float64) string          // numeric position → canonical text
	apply  func(*core.Config, string) error
}

func intKnob(doc string, apply func(*core.Config, int)) knob {
	return knob{
		doc: doc,
		parse: func(s string) (float64, error) {
			n, err := strconv.Atoi(s)
			return float64(n), err
		},
		format: func(f float64) string {
			return strconv.Itoa(int(math.Round(f)))
		},
		apply: func(c *core.Config, s string) error {
			n, err := strconv.Atoi(s)
			if err != nil {
				return err
			}
			apply(c, n)
			return nil
		},
	}
}

func floatKnob(doc string, apply func(*core.Config, float64)) knob {
	return knob{
		doc: doc,
		parse: func(s string) (float64, error) {
			return strconv.ParseFloat(s, 64)
		},
		format: func(f float64) string {
			return strconv.FormatFloat(f, 'g', -1, 64)
		},
		apply: func(c *core.Config, s string) error {
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return err
			}
			apply(c, f)
			return nil
		},
	}
}

func durKnob(doc string, apply func(*core.Config, vclock.Duration)) knob {
	return knob{
		doc: doc,
		parse: func(s string) (float64, error) {
			d, err := time.ParseDuration(s)
			return float64(d), err
		},
		format: func(f float64) string {
			return time.Duration(f).String()
		},
		apply: func(c *core.Config, s string) error {
			d, err := time.ParseDuration(s)
			if err != nil {
				return err
			}
			apply(c, vclock.Duration(d))
			return nil
		},
	}
}

// knobs is the sweepable surface over core.Config. Geometry is fixed by
// the engine's base config — sweeping device size changes the workload
// footprint, which compares devices on different problems.
var knobs = map[string]knob{
	"op": floatKnob("over-provisioning ratio (ftl.Params.OPRatio)",
		func(c *core.Config, v float64) { c.FTL.OPRatio = v }),
	"minret": durKnob("guaranteed retention lower bound (Config.MinRetention)",
		func(c *core.Config, v vclock.Duration) { c.MinRetention = v }),
	"th": floatKnob("Eq. 1 GC-overhead threshold (Config.TH)",
		func(c *core.Config, v float64) { c.TH = v }),
	"bfgroup": intKnob("Bloom page-group granularity N (Config.BFGroup)",
		func(c *core.Config, v int) { c.BFGroup = v }),
	"bfcap": intKnob("Bloom segment capacity (Config.BFCapacity)",
		func(c *core.Config, v int) { c.BFCapacity = v }),
	"cohort": intKnob("delta-block cohort size (Config.CohortSegments)",
		func(c *core.Config, v int) { c.CohortSegments = v }),
	"refcache": intKnob("decoded-version cache slots (Config.RefCacheSlots)",
		func(c *core.Config, v int) { c.RefCacheSlots = v }),
	"mapcache": intKnob("demand-paged AMT slots (ftl.Params.MappingCacheSlots)",
		func(c *core.Config, v int) { c.FTL.MappingCacheSlots = v }),
	"nfixed": intKnob("Eq. 1 estimation period in writes (Config.NFixed)",
		func(c *core.Config, v int) { c.NFixed = v }),
	"idlethresh": durKnob("background-compression idle threshold (Config.IdleThreshold)",
		func(c *core.Config, v vclock.Duration) { c.IdleThreshold = v }),
}

// Knobs returns the sweepable knob names and their documentation, sorted
// by name.
func Knobs() [][2]string {
	names := make([]string, 0, len(knobs))
	for name := range knobs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([][2]string, len(names))
	for i, name := range names {
		out[i] = [2]string{name, knobs[name].doc}
	}
	return out
}

// Validate checks the spec is well-formed: known knobs, parseable values,
// a known sampling strategy, and a runnable workload description.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("sweep: spec has no name")
	}
	if strings.ContainsAny(s.Name, " \t\n") {
		return fmt.Errorf("sweep: spec name %q contains whitespace", s.Name)
	}
	switch s.Sampling {
	case "grid":
		if s.Samples != 0 {
			return fmt.Errorf("sweep: grid sampling takes no sample count")
		}
	case "lhs":
		if s.Samples < 1 {
			return fmt.Errorf("sweep: lhs sampling needs a positive sample count, got %d", s.Samples)
		}
	default:
		return fmt.Errorf("sweep: unknown sampling strategy %q (grid|lhs)", s.Sampling)
	}
	if s.Workload == "" {
		return fmt.Errorf("sweep: no workload")
	}
	if s.Usage <= 0 || s.Usage >= 1 {
		return fmt.Errorf("sweep: usage %g outside (0,1)", s.Usage)
	}
	if s.Days < 1 {
		return fmt.Errorf("sweep: days must be at least 1, got %d", s.Days)
	}
	if s.ReqPerDay < 1 {
		return fmt.Errorf("sweep: reqperday must be at least 1, got %d", s.ReqPerDay)
	}
	if len(s.Axes) == 0 {
		return fmt.Errorf("sweep: no axes")
	}
	seen := map[string]bool{}
	for _, a := range s.Axes {
		k, ok := knobs[a.Knob]
		if !ok {
			return fmt.Errorf("sweep: unknown knob %q", a.Knob)
		}
		if seen[a.Knob] {
			return fmt.Errorf("sweep: knob %q swept twice", a.Knob)
		}
		seen[a.Knob] = true
		switch {
		case len(a.Values) > 0:
			if a.Min != "" || a.Max != "" {
				return fmt.Errorf("sweep: axis %q mixes explicit values and a range", a.Knob)
			}
			if s.Sampling == "lhs" {
				return fmt.Errorf("sweep: axis %q lists explicit values but sampling is lhs (use range)", a.Knob)
			}
			for _, v := range a.Values {
				if _, err := k.parse(v); err != nil {
					return fmt.Errorf("sweep: axis %q value %q: %v", a.Knob, v, err)
				}
			}
		case a.Min != "" && a.Max != "":
			if s.Sampling == "grid" {
				return fmt.Errorf("sweep: axis %q gives a range but sampling is grid (list values)", a.Knob)
			}
			lo, err := k.parse(a.Min)
			if err != nil {
				return fmt.Errorf("sweep: axis %q min %q: %v", a.Knob, a.Min, err)
			}
			hi, err := k.parse(a.Max)
			if err != nil {
				return fmt.Errorf("sweep: axis %q max %q: %v", a.Knob, a.Max, err)
			}
			if hi < lo {
				return fmt.Errorf("sweep: axis %q range inverted (%s > %s)", a.Knob, a.Min, a.Max)
			}
		default:
			return fmt.Errorf("sweep: axis %q has neither values nor a full range", a.Knob)
		}
	}
	return nil
}

// String renders the canonical spec text. Parse(s.String()) round-trips
// for every valid spec, and String is a fixed point of Parse∘String, so
// the spec embedded in a SWEEP_N.json artifact re-runs exactly.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep %s\n", s.Name)
	fmt.Fprintf(&b, "seed %d\n", s.Seed)
	if s.Sampling == "lhs" {
		fmt.Fprintf(&b, "sample lhs %d\n", s.Samples)
	} else {
		fmt.Fprintf(&b, "sample grid\n")
	}
	fmt.Fprintf(&b, "workload %s usage %s days %d reqperday %d\n",
		s.Workload, strconv.FormatFloat(s.Usage, 'g', -1, 64), s.Days, s.ReqPerDay)
	for _, a := range s.Axes {
		if len(a.Values) > 0 {
			fmt.Fprintf(&b, "axis %s %s\n", a.Knob, strings.Join(a.Values, " "))
		} else {
			fmt.Fprintf(&b, "axis %s range %s %s\n", a.Knob, a.Min, a.Max)
		}
	}
	return b.String()
}

// Parse decodes a spec from its text form. Lines are `key args…`; blank
// lines and #-comments are skipped. The returned spec is validated.
func Parse(text string) (*Spec, error) {
	s := &Spec{Sampling: "grid", Usage: 0.8, Days: 2, ReqPerDay: 200, Workload: "src"}
	sawName := false
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		bad := func(format string, args ...any) error {
			return fmt.Errorf("sweep: line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		switch f[0] {
		case "sweep":
			if len(f) != 2 {
				return nil, bad("want `sweep <name>`")
			}
			if sawName {
				return nil, bad("duplicate sweep line")
			}
			s.Name = f[1]
			sawName = true
		case "seed":
			if len(f) != 2 {
				return nil, bad("want `seed <n>`")
			}
			n, err := strconv.ParseInt(f[1], 10, 64)
			if err != nil {
				return nil, bad("bad seed %q: %v", f[1], err)
			}
			s.Seed = n
		case "sample":
			switch {
			case len(f) == 2 && f[1] == "grid":
				s.Sampling, s.Samples = "grid", 0
			case len(f) == 3 && f[1] == "lhs":
				n, err := strconv.Atoi(f[2])
				if err != nil {
					return nil, bad("bad lhs sample count %q: %v", f[2], err)
				}
				s.Sampling, s.Samples = "lhs", n
			default:
				return nil, bad("want `sample grid` or `sample lhs <n>`")
			}
		case "workload":
			if len(f) != 8 || f[2] != "usage" || f[4] != "days" || f[6] != "reqperday" {
				return nil, bad("want `workload <name> usage <f> days <n> reqperday <n>`")
			}
			s.Workload = f[1]
			u, err := strconv.ParseFloat(f[3], 64)
			if err != nil {
				return nil, bad("bad usage %q: %v", f[3], err)
			}
			s.Usage = u
			d, err := strconv.Atoi(f[5])
			if err != nil {
				return nil, bad("bad days %q: %v", f[5], err)
			}
			s.Days = d
			r, err := strconv.Atoi(f[7])
			if err != nil {
				return nil, bad("bad reqperday %q: %v", f[7], err)
			}
			s.ReqPerDay = r
		case "axis":
			if len(f) < 3 {
				return nil, bad("want `axis <knob> <values…>` or `axis <knob> range <min> <max>`")
			}
			ax := Axis{Knob: f[1]}
			if f[2] == "range" {
				if len(f) != 5 {
					return nil, bad("want `axis <knob> range <min> <max>`")
				}
				ax.Min, ax.Max = f[3], f[4]
			} else {
				ax.Values = append(ax.Values, f[2:]...)
			}
			s.Axes = append(s.Axes, ax)
		default:
			return nil, bad("unknown directive %q", f[0])
		}
	}
	if !sawName {
		return nil, fmt.Errorf("sweep: spec has no `sweep <name>` line")
	}
	// Canonicalise axis values so String output, point values, and
	// checkpoint keys never depend on how the author spelled a number.
	for i := range s.Axes {
		k, ok := knobs[s.Axes[i].Knob]
		if !ok {
			continue // Validate reports it with a better message
		}
		for j, v := range s.Axes[i].Values {
			if f, err := k.parse(v); err == nil {
				s.Axes[i].Values[j] = k.format(f)
			}
		}
		if s.Axes[i].Min != "" {
			if f, err := k.parse(s.Axes[i].Min); err == nil {
				s.Axes[i].Min = k.format(f)
			}
		}
		if s.Axes[i].Max != "" {
			if f, err := k.parse(s.Axes[i].Max); err == nil {
				s.Axes[i].Max = k.format(f)
			}
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
