package sweep

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"almanac/internal/core"
	"almanac/internal/obs"
	"almanac/internal/trace"
	"almanac/internal/vclock"
)

// Metrics are the comparison dimensions extracted from one design
// point's obs snapshot at the end of its workload. Every field is
// derived from virtual-time state — simulated device time, simulated
// flash micro-operations — so metrics are identical across hosts,
// worker counts, and runs.
type Metrics struct {
	// GCOverhead is GC flash micro-operations (reads+writes+erases) per
	// host page write: the paper's Eq. 1 quantity, measured rather than
	// estimated.
	GCOverhead float64 `json:"gc_overhead"`
	// WriteAmp is flash programs per host page write.
	WriteAmp float64 `json:"write_amp"`
	// WearMax is the maximum per-block erase count; WearSpread is
	// max-min — the wear-leveling pressure the configuration produced.
	WearMax    int `json:"wear_max"`
	WearSpread int `json:"wear_spread"`
	// RetentionDays is the achieved retention window at end of trace.
	RetentionDays float64 `json:"retention_days"`
	// P99WriteMS is the virtual-time p99 host-write latency (histogram
	// bucket upper bound, ms).
	P99WriteMS float64 `json:"p99_write_ms"`
	// Errors counts refused host operations (e.g. writes rejected to
	// protect the retention bound).
	Errors int64 `json:"errors"`
}

// PointResult pairs a design point with its metrics. Values are the
// axis values in spec-axis order; Key is the canonical core.Config
// encoding the sweep is checkpointed and diffed by.
type PointResult struct {
	Key     string   `json:"key"`
	Values  []string `json:"values"`
	Metrics Metrics  `json:"metrics"`
}

// Results is a completed (or resumed-to-completion) sweep.
type Results struct {
	Spec   *Spec
	Points []PointResult // in point enumeration order
}

// ErrStopped is returned by Engine.Run when StopAfter truncated the run:
// the checkpoint holds everything completed so far and a new Run with
// the same spec resumes where this one stopped.
var ErrStopped = errors.New("sweep: stopped before all points completed")

// Engine executes a Spec. The zero value is not usable: Spec and Base
// must be set.
type Engine struct {
	Spec *Spec
	// Base is the configuration every axis mutates from. Its geometry
	// also fixes the workload footprint.
	Base core.Config
	// Workers bounds the host worker pool (0 = GOMAXPROCS, 1 = serial).
	// Like the harness pool, parallelism changes wall-clock only: each
	// point writes a preassigned result slot.
	Workers int
	// Checkpoint, when non-empty, is a JSONL file appended after every
	// completed point and consulted before running any. Completed points
	// are matched by canonical config key, so resume survives process
	// death (the torn final line of a killed run is ignored) and even a
	// rebuilt binary, as long as the spec is unchanged.
	Checkpoint string
	// StopAfter, when positive, stops the run after that many *new*
	// points complete (checkpointed points don't count). Run returns
	// ErrStopped. This is the testing hook for kill/resume equivalence.
	StopAfter int
}

// Run expands, executes, and collects the sweep.
func (e *Engine) Run() (*Results, error) {
	if e.Spec == nil {
		return nil, errors.New("sweep: engine has no spec")
	}
	points, err := e.Spec.Points(e.Base)
	if err != nil {
		return nil, err
	}
	done, err := e.loadCheckpoint()
	if err != nil {
		return nil, err
	}

	var ckpt *os.File
	var ckptMu sync.Mutex
	if e.Checkpoint != "" {
		ckpt, err = os.OpenFile(e.Checkpoint, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		defer func() {
			if cerr := ckpt.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	}

	slots := make([]PointResult, len(points))
	var todo []int
	for i, p := range points {
		if m, ok := done[p.Key]; ok {
			slots[i] = PointResult{Key: p.Key, Values: p.Values, Metrics: m}
			continue
		}
		todo = append(todo, i)
	}

	var started int64
	stopped := false
	budget := int64(len(todo))
	if e.StopAfter > 0 && int64(e.StopAfter) < budget {
		budget = int64(e.StopAfter)
		stopped = true
	}
	err = e.parallel(len(todo), func(ti int) error {
		if atomic.AddInt64(&started, 1) > budget {
			return nil
		}
		i := todo[ti]
		m, err := runPoint(e.Spec, points[i])
		if err != nil {
			return fmt.Errorf("point %d (%s): %w", i, points[i].Key, err)
		}
		pr := PointResult{Key: points[i].Key, Values: points[i].Values, Metrics: m}
		slots[i] = pr
		if ckpt != nil {
			line, err := json.Marshal(pr)
			if err != nil {
				return err
			}
			line = append(line, '\n')
			ckptMu.Lock()
			_, werr := ckpt.Write(line)
			ckptMu.Unlock()
			if werr != nil {
				return werr
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if stopped {
		return nil, ErrStopped
	}
	return &Results{Spec: e.Spec, Points: slots}, nil
}

// loadCheckpoint reads completed points from the checkpoint file. A
// parse failure on the final line is a torn write from a killed run and
// is ignored; a parse failure anywhere else is corruption and reported.
func (e *Engine) loadCheckpoint() (map[string]Metrics, error) {
	done := map[string]Metrics{}
	if e.Checkpoint == "" {
		return done, nil
	}
	f, err := os.Open(e.Checkpoint)
	if err != nil {
		if os.IsNotExist(err) {
			return done, nil
		}
		return nil, err
	}
	defer f.Close() //nolint:errcheck // read-only
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var pending string
	line := 0
	for sc.Scan() {
		line++
		if pending != "" {
			return nil, fmt.Errorf("sweep: checkpoint %s line %d: unparsable non-final line: %s", e.Checkpoint, line-1, pending)
		}
		text := sc.Text()
		if text == "" {
			continue
		}
		var pr PointResult
		if err := json.Unmarshal([]byte(text), &pr); err != nil || pr.Key == "" {
			pending = text // only fatal if another line follows
			continue
		}
		done[pr.Key] = pr.Metrics
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return done, nil
}

// parallel mirrors the harness worker-pool discipline: n independent
// jobs, preassigned result slots, lowest-index error wins, and Workers=1
// degenerates to the serial order.
func (e *Engine) parallel(n int, job func(i int) error) error {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runPoint builds the point's device, replays the spec workload on it,
// and reduces the closing obs snapshot to Metrics. Everything here is
// virtual-time-only; the host contributes no observable state.
func runPoint(s *Spec, p Point) (Metrics, error) {
	dev, err := core.New(p.Config)
	if err != nil {
		return Metrics{}, err
	}
	dev.Obs().SetEnabled(true)

	footprint := uint64(float64(dev.LogicalPages()) * s.Usage)
	if footprint == 0 {
		return Metrics{}, fmt.Errorf("sweep: zero footprint at usage %g", s.Usage)
	}
	gen := trace.NewContentGen(dev.PageSize(), trace.ContentSimilar, s.Seed)
	warmEnd, err := trace.Fill(dev, footprint, gen, 0)
	if err != nil {
		return Metrics{}, fmt.Errorf("warmup: %w", err)
	}
	tspec, err := trace.NamedSpec(s.Workload, footprint, s.Days, s.ReqPerDay, s.Seed)
	if err != nil {
		return Metrics{}, err
	}
	reqs, err := trace.Generate(tspec)
	if err != nil {
		return Metrics{}, err
	}
	shift := warmEnd.Add(vclock.Second)
	for i := range reqs {
		reqs[i].At = reqs[i].At + shift
	}
	st, err := trace.Replay(dev, reqs, trace.ReplayOptions{Content: gen, AnnounceIdle: true})
	if err != nil {
		return Metrics{}, fmt.Errorf("replay: %w", err)
	}

	snap := dev.Snapshot()
	return snapshotMetrics(snap, dev, st.End, int64(st.Errors)), nil
}

// snapshotMetrics reduces a closing obs snapshot (plus the device's wear
// and window state) to the sweep's comparison dimensions.
func snapshotMetrics(snap obs.Snapshot, dev *core.TimeSSD, end vclock.Time, errors int64) Metrics {
	m := Metrics{Errors: errors}
	if hw := snap.C.HostPageWrites; hw > 0 {
		m.GCOverhead = float64(snap.C.GCReads+snap.C.GCWrites+snap.C.GCErases) / float64(hw)
		m.WriteAmp = float64(snap.C.FlashPrograms) / float64(hw)
	}
	minWear, maxWear := dev.Arr.WearSpread()
	m.WearMax = maxWear
	m.WearSpread = maxWear - minWear
	m.RetentionDays = dev.RetentionDuration(end).Hours() / 24
	if hwOps, ok := snap.Ops[obs.HostWrite.String()]; ok {
		m.P99WriteMS = float64(hwOps.Virt.QuantileNS(0.99)) / 1e6
	}
	return m
}
