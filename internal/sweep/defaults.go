package sweep

// Default grid presets: the four axes the paper's own evaluation varies
// implicitly — slack space (OP), the retention bound, Bloom segmentation
// granularity, and the Eq. 1 threshold — each with up to four values
// spanning the regime the ablations identified as interesting. Four
// values on four axes is the 256-point grid `almasweep` runs by default.
var defaultAxisPresets = []Axis{
	{Knob: "op", Values: []string{"0.07", "0.15", "0.28", "0.45"}},
	{Knob: "minret", Values: []string{"2h0m0s", "6h0m0s", "12h0m0s", "24h0m0s"}},
	{Knob: "bfgroup", Values: []string{"4", "16", "64", "256"}},
	{Knob: "th", Values: []string{"0.05", "0.1", "0.2", "0.4"}},
}

// DefaultSpec builds the standard exploration grid: the four preset axes
// truncated to valuesPerAxis values each (clamped to [2,4]), over the
// given per-point workload length. valuesPerAxis=4 yields the full
// 256-point design.
func DefaultSpec(seed int64, valuesPerAxis, days, reqPerDay int) *Spec {
	if valuesPerAxis < 2 {
		valuesPerAxis = 2
	}
	if valuesPerAxis > 4 {
		valuesPerAxis = 4
	}
	s := &Spec{
		Name:      "default-grid",
		Seed:      seed,
		Sampling:  "grid",
		Workload:  "src",
		Usage:     0.8,
		Days:      days,
		ReqPerDay: reqPerDay,
	}
	for _, a := range defaultAxisPresets {
		s.Axes = append(s.Axes, Axis{Knob: a.Knob, Values: a.Values[:valuesPerAxis]})
	}
	return s
}
