package invariant

import (
	"errors"
	"strings"
	"testing"
)

func TestAssert(t *testing.T) {
	Assert(true, "never fires")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Assert(false) did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "block 7") {
			t.Fatalf("panic message %v lacks formatted detail", r)
		}
	}()
	Assert(false, "block %d", 7)
}

func TestAssertNoErr(t *testing.T) {
	AssertNoErr(nil, "gc-consistency")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("AssertNoErr(err) did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "gc-consistency") || !strings.Contains(msg, "boom") {
			t.Fatalf("panic message %v lacks audit name or cause", r)
		}
	}()
	AssertNoErr(errors.New("boom"), "gc-consistency")
}
