//go:build almanacdebug

package invariant

// Enabled reports that deep runtime assertions are compiled in.
const Enabled = true
