//go:build !almanacdebug

package invariant

// Enabled reports that deep runtime assertions are compiled out; guarded
// blocks are removed as dead code.
const Enabled = false
