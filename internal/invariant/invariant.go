// Package invariant is the runtime half of Almanac's correctness tooling
// (the static half is internal/lint): deep assertions compiled into the
// hot paths only under the almanacdebug build tag, and into nothing at all
// otherwise.
//
// Enabled is an untyped bool constant, so in normal builds every
//
//	if invariant.Enabled { ... }
//
// block is dead code the compiler deletes — the simulator pays zero cost.
// Under `go test -tags almanacdebug` the blocks run: AMT/PVT
// cross-consistency after every GC pass, flash erase-before-program and
// in-block program-order audits, and the Bloom chain's no-false-negative
// property (a non-expired page must never look expired).
//
// The package is a leaf: it may be imported from anywhere, including
// internal/flash and internal/bloom, without creating cycles.
package invariant

import "fmt"

// Assert panics with a formatted message if cond is false. Call it only
// under `if invariant.Enabled` so the arguments are not even evaluated in
// normal builds.
func Assert(cond bool, format string, args ...any) {
	if !cond {
		panic("invariant violated: " + fmt.Sprintf(format, args...))
	}
}

// AssertNoErr panics if err is non-nil, attributing it to a named audit.
func AssertNoErr(err error, audit string) {
	if err != nil {
		panic("invariant violated [" + audit + "]: " + err.Error())
	}
}
