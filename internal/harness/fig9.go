package harness

import (
	"fmt"

	"almanac/internal/apps"
	"almanac/internal/vclock"
)

// Fig. 9a compares against ext4 in its default ordered-journal mode (large
// sequential IOZone requests amortise its commits, matching the paper's
// measured seq-write parity); Fig. 9b's discussion explicitly attributes
// Ext4's OLTP deficit to data journaling, so that figure uses it.
var (
	fig9aStacks = []fsKind{fsExt4Ordered, fsF2FS, fsTimeSSD}
	fig9bStacks = []fsKind{fsExt4Data, fsF2FS, fsTimeSSD}
)

// Figure9IOZone reproduces Fig. 9a: IOZone sequential/random read/write
// throughput on Ext4 (data journaling), F2FS (log-structured) and TimeSSD
// (in-place, journaling off), normalised to Ext4.
func Figure9IOZone(c Config) (*Table, error) {
	t := &Table{
		Title:  "Figure 9a: IOZone normalised speedup over Ext4",
		Header: []string{"phase", "Ext4", "F2FS", "TimeSSD"},
	}
	// phase -> stack -> MB/s. Each stack is an independent simulation: run
	// them across the worker pool, each writing its own results slot, then
	// assemble the shared map serially.
	type phaseRates map[fsKind]float64
	rates := map[string]phaseRates{}
	order := []string{"SeqRead", "SeqWrite", "RandomRead", "RandomWrite"}
	results := make([]*apps.IOZoneResult, len(fig9aStacks))
	err := c.parallel(len(fig9aStacks), func(i int) error {
		k := fig9aStacks[i]
		fs, _, err := c.newFSStack(k)
		if err != nil {
			return err
		}
		pagesPerFile := fsPageLimit(fs.Device().PageSize())
		files := 8
		res, _, err := apps.IOZone(fs, apps.IOZoneConfig{
			Files:         files,
			PagesPerFile:  pagesPerFile,
			OpsPerPhase:   c.IOZoneOps,
			SeqChunkPages: 16,
			Seed:          c.Seed,
		}, vclock.Time(vclock.Second))
		if err != nil {
			return fmt.Errorf("iozone on %v: %w", k, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, k := range fig9aStacks {
		res := results[i]
		for name, r := range map[string]apps.Result{
			"SeqRead": res.SeqRead, "SeqWrite": res.SeqWrite,
			"RandomRead": res.RandRead, "RandomWrite": res.RandWrite,
		} {
			if rates[name] == nil {
				rates[name] = phaseRates{}
			}
			rates[name][k] = r.MBPerSec()
		}
	}
	for _, name := range order {
		base := rates[name][fsExt4Ordered]
		t.AddRow(name,
			f2(1.0),
			f2(rates[name][fsF2FS]/base),
			f2(rates[name][fsTimeSSD]/base))
	}
	t.Notes = append(t.Notes,
		"paper: reads comparable everywhere; random write ≈3.3× Ext4 on TimeSSD (no journal traffic), F2FS slightly below TimeSSD")
	return t, nil
}

// fsPageLimit bounds files to 3/4 of the per-file maximum.
func fsPageLimit(pageSize int) int { return (12 + pageSize/8) * 3 / 4 }

// Figure9OLTP reproduces Fig. 9b: PostMark and the OLTP benchmarks
// (TPCC, TPCB, TATP) on the three stacks, normalised to Ext4.
func Figure9OLTP(c Config) (*Table, error) {
	t := &Table{
		Title:  "Figure 9b: PostMark and OLTP normalised speedup over Ext4",
		Header: []string{"workload", "Ext4", "F2FS", "TimeSSD"},
	}
	names := []string{"PostMark", "TPCC", "TPCB", "TATP"}
	tps := map[string]map[fsKind]float64{}
	for _, name := range names {
		tps[name] = map[fsKind]float64{}
	}
	// Every (stack, benchmark) combination builds its own file-system stack,
	// so all twelve cells are independent simulations: dispatch them across
	// the worker pool and merge into the shared map serially afterwards.
	type cell struct {
		stack fsKind
		name  string
	}
	var cells []cell
	for _, k := range fig9bStacks {
		for _, name := range names {
			cells = append(cells, cell{k, name})
		}
	}
	rates := make([]float64, len(cells))
	err := c.parallel(len(cells), func(i int) error {
		k := cells[i].stack
		fs, _, err := c.newFSStack(k)
		if err != nil {
			return err
		}
		if cells[i].name == "PostMark" {
			pm := apps.DefaultPostMark()
			pm.Transactions = c.PostMarkTxns
			pm.Seed = c.Seed
			pmRes, _, err := apps.PostMark(fs, pm, vclock.Time(vclock.Second))
			if err != nil {
				return fmt.Errorf("postmark on %v: %w", k, err)
			}
			rates[i] = pmRes.OpsPerSec()
			return nil
		}
		var kind apps.OLTPKind
		switch cells[i].name {
		case "TPCC":
			kind = apps.TPCC
		case "TPCB":
			kind = apps.TPCB
		default:
			kind = apps.TATP
		}
		res, _, err := apps.OLTP(fs, apps.OLTPConfig{
			Kind:         kind,
			TablePages:   c.OLTPTablePages,
			Transactions: c.OLTPTxns,
			Seed:         c.Seed,
		}, vclock.Time(vclock.Second))
		if err != nil {
			return fmt.Errorf("%v on %v: %w", kind, k, err)
		}
		rates[i] = res.OpsPerSec()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, cl := range cells {
		tps[cl.name][cl.stack] = rates[i]
	}
	for _, name := range names {
		base := tps[name][fsExt4Data]
		t.AddRow(name, f2(1.0), f2(tps[name][fsF2FS]/base), f2(tps[name][fsTimeSSD]/base))
	}
	t.Notes = append(t.Notes,
		"paper: TimeSSD 2.2× Ext4 on PostMark; 1.5×/1.7×/1.6× on TPCC/TPCB/TATP; 1.1–1.2× over F2FS",
		fmt.Sprintf("raw TPS on TimeSSD: PostMark=%.0f TPCC=%.0f TPCB=%.0f TATP=%.0f",
			tps["PostMark"][fsTimeSSD], tps["TPCC"][fsTimeSSD], tps["TPCB"][fsTimeSSD], tps["TATP"][fsTimeSSD]))
	return t, nil
}
