package harness

import (
	"fmt"

	"almanac/internal/core"
	"almanac/internal/ftl"
	"almanac/internal/sweep"
)

// sweepExperiment runs the design-space exploration engine as a harness
// experiment: the default grid over the Config's device geometry, with
// the worker pool shared through Config.Workers. Every metric the sweep
// extracts is virtual-time-derived, so — like the figure experiments and
// unlike scaling/obs — the rendered table is byte-identical at any
// worker count and participates in TestParallelMatchesSerial.
type sweepExperiment struct{}

func (sweepExperiment) Name() string { return "sweep" }

func (sweepExperiment) Run(c Config, t *Table) error {
	spec := sweep.DefaultSpec(c.Seed, c.SweepAxisValues, c.SweepDays, c.SweepReqPerDay)
	base := core.DefaultConfig(ftl.WithFlash(c.Flash))
	base.MinRetention = c.MinRetention
	eng := &sweep.Engine{Spec: spec, Base: base, Workers: c.Workers}
	res, err := eng.Run()
	if err != nil {
		return err
	}
	pareto := res.Pareto()
	header, rows := res.TableFor(pareto)
	t.Title = res.Title()
	t.Header = header
	t.Rows = rows
	t.Notes = append(t.Notes,
		fmt.Sprintf("Pareto frontier: %d of %d design points are non-dominated (objectives: min gc-ovh, min wear-max, min p99-write, max retention)", len(pareto), len(res.Points)),
		"run the full space with cmd/almasweep: larger grids, LHS sampling, checkpoint/resume, committed SWEEP_N.json artifacts")
	return nil
}

func init() { Register("sweep", sweepExperiment{}) }
