package harness

import (
	"fmt"

	"almanac/internal/trace"
)

// pairResult carries one workload's TimeSSD-vs-Regular comparison.
type pairResult struct {
	name        string
	usage       float64
	respRegular float64 // avg response, ms
	respTime    float64
	p99Regular  float64 // 99th percentile response, ms
	p99Time     float64
	waRegular   float64 // write amplification
	waTime      float64
	retention   float64 // TimeSSD retention at end, days
}

// runPairs replays every named workload on both device types at every
// utilisation — the shared engine behind Figures 6 and 7. The
// (usage, workload) cells are independent simulations, dispatched across
// the worker pool; each fills its own slot so the row order matches the
// serial sweep exactly.
func (c Config) runPairs() ([]pairResult, error) {
	type pairJob struct {
		usage float64
		name  string
	}
	var jobs []pairJob
	for _, usage := range c.Usages {
		for _, name := range trace.AllNames() {
			jobs = append(jobs, pairJob{usage, name})
		}
	}
	out := make([]pairResult, len(jobs))
	err := c.parallel(len(jobs), func(i int) error {
		usage, name := jobs[i].usage, jobs[i].name
		reg, err := c.newRegular()
		if err != nil {
			return err
		}
		regRun, err := c.runTrace(reg, name, usage, c.Days)
		if err != nil {
			return fmt.Errorf("regular: %w", err)
		}
		tsd, err := c.newTimeSSD(nil)
		if err != nil {
			return err
		}
		tsdRun, err := c.runTrace(tsd, name, usage, c.Days)
		if err != nil {
			return fmt.Errorf("timessd: %w", err)
		}
		out[i] = pairResult{
			name:        name,
			usage:       usage,
			respRegular: regRun.stats.AvgResponse().Seconds() * 1e3,
			respTime:    tsdRun.stats.AvgResponse().Seconds() * 1e3,
			p99Regular:  regRun.stats.Percentile(0.99).Seconds() * 1e3,
			p99Time:     tsdRun.stats.Percentile(0.99).Seconds() * 1e3,
			waRegular:   reg.WriteAmplification(),
			waTime:      tsd.WriteAmplification(),
			retention:   tsd.RetentionDuration(tsdRun.end).Hours() / 24,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Figure6 reproduces Fig. 6: average I/O response time of the real-world
// traces on TimeSSD vs a regular SSD at 50% and 80% capacity usage.
func Figure6(c Config) (*Table, error) {
	pairs, err := c.runPairs()
	if err != nil {
		return nil, err
	}
	return figure6From(pairs), nil
}

// Figure7 reproduces Fig. 7: write amplification for the same runs.
func Figure7(c Config) (*Table, error) {
	pairs, err := c.runPairs()
	if err != nil {
		return nil, err
	}
	return figure7From(pairs), nil
}

// Figures6And7 runs the pair sweep once and produces both tables.
func Figures6And7(c Config) (*Table, *Table, error) {
	pairs, err := c.runPairs()
	if err != nil {
		return nil, nil, err
	}
	return figure6From(pairs), figure7From(pairs), nil
}

func figure6From(pairs []pairResult) *Table {
	t := &Table{
		Title:  "Figure 6: Average I/O response time, TimeSSD vs Regular SSD",
		Header: []string{"usage", "workload", "regular(ms)", "timessd(ms)", "overhead", "p99-reg(ms)", "p99-tsd(ms)"},
	}
	var sum, n float64
	byUsage := map[float64][2]float64{}
	for _, p := range pairs {
		over := p.respTime/p.respRegular - 1
		t.AddRow(fmt.Sprintf("%.0f%%", p.usage*100), p.name,
			fmt.Sprintf("%.3f", p.respRegular), fmt.Sprintf("%.3f", p.respTime), pct(over),
			fmt.Sprintf("%.3f", p.p99Regular), fmt.Sprintf("%.3f", p.p99Time))
		sum += over
		n++
		agg := byUsage[p.usage]
		agg[0] += over
		agg[1]++
		byUsage[p.usage] = agg
	}
	for _, usage := range []float64{0.5, 0.8} {
		if agg, ok := byUsage[usage]; ok && agg[1] > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("mean overhead @%.0f%% usage: %s (paper: +2.5%% @50%%, +5.8%% @80%%)",
				usage*100, pct(agg[0]/agg[1])))
		}
	}
	_ = sum / n
	return t
}

func figure7From(pairs []pairResult) *Table {
	t := &Table{
		Title:  "Figure 7: Write amplification, TimeSSD vs Regular SSD",
		Header: []string{"usage", "workload", "regular", "timessd", "increase"},
	}
	byUsage := map[float64][2]float64{}
	for _, p := range pairs {
		inc := p.waTime/p.waRegular - 1
		t.AddRow(fmt.Sprintf("%.0f%%", p.usage*100), p.name,
			f2(p.waRegular), f2(p.waTime), pct(inc))
		agg := byUsage[p.usage]
		agg[0] += inc
		agg[1]++
		byUsage[p.usage] = agg
	}
	for _, usage := range []float64{0.5, 0.8} {
		if agg, ok := byUsage[usage]; ok && agg[1] > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("mean WA increase @%.0f%% usage: %s (paper: +10.1%% @50%%, +15.3%% @80%%)",
				usage*100, pct(agg[0]/agg[1])))
		}
	}
	return t
}
