package harness

import (
	"strings"
	"testing"
)

// TestQuickScaleHeadlines locks in the reproduction's headline numbers at
// the exact configuration `go run ./cmd/almanac` uses, with generous
// envelopes: regressions that push the mean response overhead or the WA
// increase out of the paper's neighbourhood should fail loudly here, not
// be discovered by a reader of EXPERIMENTS.md.
func TestQuickScaleHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-scale sweep")
	}
	f6, f7, err := Figures6And7(Quick())
	if err != nil {
		t.Fatal(err)
	}
	meanOf := func(tab *Table, usage string) float64 {
		var sum float64
		n := 0
		for i, row := range tab.Rows {
			if row[0] != usage {
				continue
			}
			reg := cell(t, tab, i, 2)
			tsd := cell(t, tab, i, 3)
			sum += tsd/reg - 1
			n++
		}
		if n == 0 {
			t.Fatalf("no rows for usage %s", usage)
		}
		return sum / float64(n)
	}
	// Paper: +2.5% @50%, +5.8% @80%. Envelope: within ±25 percentage
	// points — the claim being locked is "negligible overhead", not the
	// decimal.
	for _, usage := range []string{"50%", "80%"} {
		m := meanOf(f6, usage)
		if m < -0.25 || m > 0.25 {
			t.Errorf("fig6 mean overhead @%s = %+.1f%%, outside ±25%%", usage, m*100)
		}
	}
	// Paper: WA +10.1% @50%, +15.3% @80%. Envelope: increase must be
	// positive (retention is never free) and under +60%.
	for _, usage := range []string{"50%", "80%"} {
		m := meanOf(f7, usage)
		if m <= 0 || m > 0.6 {
			t.Errorf("fig7 mean WA increase @%s = %+.1f%%, outside (0, +60%%]", usage, m*100)
		}
	}
	// Sanity on the table wiring itself.
	if !strings.Contains(f6.Title, "Figure 6") || !strings.Contains(f7.Title, "Figure 7") {
		t.Fatal("tables mislabeled")
	}
}
