package harness

import (
	"fmt"

	"almanac/internal/obs"
	"almanac/internal/trace"
	"almanac/internal/vclock"
)

// ObsReport exercises the observability layer end to end: it runs a
// warm/replay/rollback sequence on a single TimeSSD with instrumentation
// enabled and renders one row per (phase, operation class) from snapshot
// deltas. Quantiles are read from the virtual-time histograms — the
// latency the simulated device charged, not host CPU time; the wall
// column reports the mean host-side cost of the same operations.
//
// The run is a single device with phases that must execute in order, so
// Config.Workers does not apply; the wall column also wants an otherwise
// idle host.
func ObsReport(c Config) (*Table, error) {
	dev, err := c.newTimeSSD(nil)
	if err != nil {
		return nil, err
	}
	dev.Obs().SetEnabled(true)

	t := &Table{
		Title:  "Observability: per-phase operation latency",
		Header: []string{"phase", "op", "count", "errors", "virt p50 ms", "virt p99 ms", "virt max ms", "wall mean µs"},
	}
	nsToMS := func(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) }
	prev := dev.Snapshot()
	addPhase := func(name string) {
		cur := dev.Snapshot()
		delta := obs.DeltaOps(prev.Ops, cur.Ops)
		for _, op := range obs.SortedOpNames(delta) {
			st := delta[op]
			t.AddRow(name, op,
				fmt.Sprintf("%d", st.Count),
				fmt.Sprintf("%d", st.Errors),
				nsToMS(st.Virt.QuantileNS(0.5)),
				nsToMS(st.Virt.QuantileNS(0.99)),
				nsToMS(st.Virt.MaxNS),
				fmt.Sprintf("%.1f", float64(st.Wall.MeanNS())/1e3))
		}
		prev = cur
	}

	footprint := uint64(float64(dev.LogicalPages()) * 0.5)
	gen := trace.NewContentGen(dev.PageSize(), trace.ContentSimilar, c.Seed)
	warmEnd, err := trace.Fill(dev, footprint, gen, 0)
	if err != nil {
		return nil, fmt.Errorf("warmup: %w", err)
	}
	addPhase("warm")

	spec, err := trace.NamedSpec(ablationWorkload, footprint, c.Days, c.ReqPerDay, c.Seed)
	if err != nil {
		return nil, err
	}
	reqs, err := trace.Generate(spec)
	if err != nil {
		return nil, err
	}
	shift := warmEnd.Add(vclock.Second)
	for i := range reqs {
		reqs[i].At = reqs[i].At + shift
	}
	st, err := trace.Replay(dev, reqs, trace.ReplayOptions{Content: gen, AnnounceIdle: true})
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	addPhase("replay")

	// Time-travel the whole device back to the warm point; the rollback's
	// internal writes and reads land in their own host-op classes.
	if _, _, err := dev.RollBackAll(warmEnd, st.End.Add(vclock.Second)); err != nil {
		return nil, fmt.Errorf("rollback: %w", err)
	}
	addPhase("rollback")

	t.Notes = append(t.Notes,
		"virt columns are simulated device time (includes channel queueing); wall is host CPU cost of the instrumented path",
		"quantiles are power-of-two bucket upper bounds while max is exact, so max can read below p50",
		"virt max ms is the maximum up to the end of the phase, not within it (histograms subtract, maxima do not)",
		fmt.Sprintf("count consistency: host-write count matches HostPageWrites (%d), flash-read count matches FlashReads (%d)",
			prev.C.HostPageWrites, prev.C.FlashReads))
	return t, nil
}
