package harness

import (
	"fmt"

	"almanac/internal/core"
	"almanac/internal/trace"
	"almanac/internal/vclock"
)

// ablationWorkload is the trace used for design-choice ablations: `src`
// is a mid-intensity MSR server trace with both hot updates and idle gaps.
const ablationWorkload = "src"

// ablationConfig raises the write intensity well above the figure runs so
// every mechanism under ablation — compression, expiry, the estimator — is
// firmly engaged.
func (c Config) ablationConfig() Config {
	c.ReqPerDay *= 4
	return c
}

// ablationRun measures one TimeSSD variant on the ablation workload at
// 80% usage (where the mechanisms matter most).
func (c Config) ablationRun(mutate func(*core.Config)) (resp, wa, retention float64, st core.Stats, err error) {
	c = c.ablationConfig()
	dev, err := c.newTimeSSD(mutate)
	if err != nil {
		return 0, 0, 0, core.Stats{}, err
	}
	run, err := c.runTrace(dev, ablationWorkload, 0.8, c.Days)
	if err != nil {
		return 0, 0, 0, core.Stats{}, err
	}
	return run.stats.AvgResponse().Seconds() * 1e3,
		dev.WriteAmplification(),
		dev.RetentionDuration(run.end).Hours() / 24,
		dev.TimeStats(),
		nil
}

// AblationCompression quantifies §3.6's delta compression: with it off,
// retained versions occupy full pages, shrinking the retention window and
// raising GC traffic.
func AblationCompression(c Config) (*Table, error) {
	t := &Table{
		Title:  "Ablation: delta compression (workload src @80% usage)",
		Header: []string{"variant", "resp(ms)", "write-amp", "retention(days)", "deltas"},
	}
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"full (compression on)", nil},
		{"no idle compression", func(cc *core.Config) { cc.DisableIdleCompression = true }},
		{"no compression at all", func(cc *core.Config) { cc.DisableCompression = true }},
	}
	rows := make([][]string, len(variants))
	err := c.parallel(len(variants), func(i int) error {
		v := variants[i]
		resp, wa, ret, st, err := c.ablationRun(v.mutate)
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		rows[i] = []string{v.name, fmt.Sprintf("%.3f", resp), f2(wa), fmt.Sprintf("%.1f", ret),
			fmt.Sprintf("%d", st.DeltasCreated)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes, "expected: disabling compression shortens retention and/or raises GC cost; idle compression moves compression off the critical path")
	return t, nil
}

// AblationGroupSize sweeps the Bloom-filter page-group granularity N
// (§3.5): larger N shrinks filter memory but coarsens expiration.
func AblationGroupSize(c Config) (*Table, error) {
	t := &Table{
		Title:  "Ablation: Bloom-filter group size N (workload src @80% usage)",
		Header: []string{"N", "resp(ms)", "retention(days)", "bf-segments", "window-drops"},
	}
	c = c.ablationConfig()
	groups := []int{1, 4, 16, 64}
	rows := make([][]string, len(groups))
	err := c.parallel(len(groups), func(i int) error {
		n := groups[i]
		dev, err := c.newTimeSSD(func(cc *core.Config) { cc.BFGroup = n })
		if err != nil {
			return err
		}
		run, err := c.runTrace(dev, ablationWorkload, 0.8, c.Days)
		if err != nil {
			return fmt.Errorf("N=%d: %w", n, err)
		}
		rows[i] = []string{fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", run.stats.AvgResponse().Seconds()*1e3),
			fmt.Sprintf("%.1f", dev.RetentionDuration(run.end).Hours()/24),
			fmt.Sprintf("%d", dev.Segments()),
			fmt.Sprintf("%d", dev.TimeStats().WindowDrops)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes, "the paper fixes N=16; the sweep shows the memory/precision trade-off is flat around it")
	return t, nil
}

// AblationThreshold sweeps the GC-overhead threshold TH of Eq. 1 (§3.8) —
// the retention-vs-performance dial. The estimator only governs foreground
// GC, so the sweep runs a continuous gapless write stream (no idle cycles
// for the background machinery): exactly the regime where Eq. 1 is the
// device's only control loop.
func AblationThreshold(c Config) (*Table, error) {
	t := &Table{
		Title:  "Ablation: GC-overhead threshold TH (continuous write stream @80% usage)",
		Header: []string{"TH", "resp(ms)", "retention(days)", "estimator-trips", "window-drops"},
	}
	ths := []float64{0.05, 0.1, 0.2, 0.5}
	rows := make([][]string, len(ths))
	err := c.parallel(len(ths), func(i int) error {
		th := ths[i]
		dev, err := c.newTimeSSD(func(cc *core.Config) {
			cc.TH = th
			// The sweep isolates Eq. 1: no minimum bound, so the estimator
			// alone decides how much history survives.
			cc.MinRetention = 0
		})
		if err != nil {
			return err
		}
		footprint := uint64(float64(dev.LogicalPages()) * 0.8)
		gen := trace.NewContentGen(dev.PageSize(), trace.ContentSimilar, c.Seed)
		warmEnd, err := trace.Fill(dev, footprint, gen, 0)
		if err != nil {
			return err
		}
		spec := trace.Spec{
			Name:        "continuous",
			Seed:        c.Seed,
			Requests:    c.ReqPerDay * c.Days * 4,
			Duration:    vclock.Duration(c.Days) * vclock.Day,
			WriteRatio:  0.8,
			Footprint:   footprint,
			AvgPages:    2,
			HotFraction: 0.1,
			HotAccess:   0.7,
			BurstLen:    1 << 30, // one endless burst: no idle at all
			BurstGap:    10 * vclock.Millisecond,
		}
		reqs, err := trace.Generate(spec)
		if err != nil {
			return err
		}
		for i := range reqs {
			reqs[i].At = reqs[i].At + warmEnd.Add(vclock.Second)
		}
		st, err := trace.Replay(dev, reqs, trace.ReplayOptions{Content: gen, AnnounceIdle: true})
		if err != nil {
			return fmt.Errorf("TH=%.2f: %w", th, err)
		}
		rows[i] = []string{fmt.Sprintf("%.2f", th),
			fmt.Sprintf("%.3f", st.AvgResponse().Seconds()*1e3),
			fmt.Sprintf("%.1f", dev.RetentionDuration(st.End).Hours()/24),
			fmt.Sprintf("%d", dev.TimeStats().EstimatorTrips),
			fmt.Sprintf("%d", dev.TimeStats().WindowDrops)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"larger TH tolerates more GC overhead per write, buying longer retention (§3.4 trade-off)",
		"finding: at simulator scale the space-pressure shedder reacts before Eq. 1 accumulates a period, so the sweep is nearly flat — retention here is space-bound, not overhead-bound")
	return t, nil
}

// AblationMinRetention sweeps the guaranteed retention lower bound (§3.4):
// a larger bound preserves more history against floods but forces the
// device to refuse writes sooner when space runs out inside the window —
// the enforcement trade-off behind the paper's "stop serving I/O" policy.
func AblationMinRetention(c Config) (*Table, error) {
	t := &Table{
		Title:  "Ablation: guaranteed retention lower bound (workload src @80% usage)",
		Header: []string{"bound", "resp(ms)", "retention(days)", "write-failures"},
	}
	c = c.ablationConfig()
	bounds := []vclock.Duration{0, vclock.Hour, 12 * vclock.Hour, 2 * vclock.Day}
	rows := make([][]string, len(bounds))
	err := c.parallel(len(bounds), func(i int) error {
		bound := bounds[i]
		dev, err := c.newTimeSSD(func(cc *core.Config) { cc.MinRetention = bound })
		if err != nil {
			return err
		}
		// Replay counts (rather than aborts on) refused writes, which is
		// the quantity this sweep reports.
		run, err := c.runTrace(dev, ablationWorkload, 0.8, c.Days)
		if err != nil {
			return fmt.Errorf("bound=%v: %w", bound, err)
		}
		rows[i] = []string{bound.String(),
			fmt.Sprintf("%.3f", run.stats.AvgResponse().Seconds()*1e3),
			fmt.Sprintf("%.1f", dev.RetentionDuration(run.end).Hours()/24),
			fmt.Sprintf("%d", run.stats.Errors)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"a bound the device cannot afford shows up as refused writes — the paper's visible-failure defence against flooding attacks (§3.4, §3.10)")
	return t, nil
}

// AblationMapCache sweeps DFTL-style demand paging of the mapping table
// (Fig. 3: "tables are cached on demand if RAM resource is scarce"): the
// smaller the resident fraction, the more host operations pay a
// translation-page fetch first.
func AblationMapCache(c Config) (*Table, error) {
	t := &Table{
		Title:  "Ablation: demand-paged mapping table (workload src @50% usage)",
		Header: []string{"cached-fraction", "resp(ms)", "hit-rate", "writebacks"},
	}
	totalVPNs := c.Flash.TotalPages() / (c.Flash.PageSize / 4)
	if totalVPNs < 8 {
		totalVPNs = 8
	}
	fracs := []struct {
		name  string
		slots int
	}{
		{"all (DRAM-resident)", 0},
		{"1/2", totalVPNs / 2},
		{"1/8", totalVPNs / 8},
		{"1/32", totalVPNs / 32},
	}
	rows := make([][]string, len(fracs))
	err := c.parallel(len(fracs), func(i int) error {
		frac := fracs[i]
		slots := frac.slots
		if frac.name != "all (DRAM-resident)" && slots < 1 {
			slots = 1 // never degrade a fraction to "fully cached" (slots 0)
		}
		dev, err := c.newTimeSSD(func(cc *core.Config) { cc.FTL.MappingCacheSlots = slots })
		if err != nil {
			return err
		}
		run, err := c.runTrace(dev, ablationWorkload, 0.5, c.Days)
		if err != nil {
			return fmt.Errorf("slots=%d: %w", slots, err)
		}
		hitRate := 1.0
		if total := dev.MapStats.Hits + dev.MapStats.Misses; total > 0 {
			hitRate = float64(dev.MapStats.Hits) / float64(total)
		}
		rows[i] = []string{frac.name,
			fmt.Sprintf("%.3f", run.stats.AvgResponse().Seconds()*1e3),
			fmt.Sprintf("%.3f", hitRate),
			fmt.Sprintf("%d", dev.MapStats.Writebacks)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"the paper's board holds the whole AMT in its 1 GB DRAM; this sweep shows the cost structure when it cannot (DFTL-style demand caching)")
	return t, nil
}

// Experiment dispatch lives in registry.go: every experiment — the
// figures and ablations above included — registers itself with
// harness.Register and is reachable only through the registry.
