package harness

import (
	"fmt"
	"math/rand"

	"almanac/internal/timekits"
	"almanac/internal/trace"
	"almanac/internal/vclock"
)

// Table3 reproduces the paper's Table 3: execution time of the TimeKits
// storage-state queries after each workload has run — TimeQuery scans
// every valid LPA (seconds; ~12 minutes on the paper's 1 TB device,
// proportionally faster here), while AddrQueryAll and RollBack touch one
// LPA's chain (milliseconds).
func Table3(c Config) (*Table, error) {
	t := &Table{
		Title:  "Table 3: Execution time of storage-state queries",
		Header: []string{"workload", "TimeQuery(s)", "AddrQueryAll(ms)", "RollBack(ms)"},
	}
	// One independent device and query sequence per workload: dispatch
	// across the worker pool, one row slot per workload.
	names := trace.AllNames()
	rows := make([][]string, len(names))
	err := c.parallel(len(names), func(i int) error {
		name := names[i]
		dev, err := c.newTimeSSD(nil)
		if err != nil {
			return err
		}
		run, err := c.runTrace(dev, name, 0.5, c.Days)
		if err != nil {
			return fmt.Errorf("table3 %s: %w", name, err)
		}
		kit := timekits.New(dev)
		at := run.end.Add(vclock.Second)

		// TimeQuery: storage state one day ago.
		tq, err := kit.TimeQuery(at.Add(-vclock.Day), at)
		if err != nil {
			return err
		}
		at = tq.Done.Add(vclock.Second)

		// AddrQueryAll on a random recently-updated LPA.
		lpas := make([]uint64, 0, len(tq.Value))
		for _, rec := range tq.Value {
			lpas = append(lpas, rec.LPA)
		}
		lpa := pickLPA(lpas, c.Seed, dev.LogicalPages())
		aq, err := kit.AddrQueryAll(lpa, 1, at)
		if err != nil {
			return err
		}
		at = aq.Done.Add(vclock.Second)

		// RollBack the same LPA to one day ago.
		rb, err := kit.RollBack(lpa, 1, at.Add(-vclock.Day), at)
		if err != nil {
			return err
		}

		rows[i] = []string{name,
			fmt.Sprintf("%.2f", tq.Elapsed.Seconds()),
			ms(aq.Elapsed),
			ms(rb.Elapsed)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"paper (1 TB device): TimeQuery 710–764 s, AddrQueryAll 0.3–6.6 ms, RollBack 1.2–7.6 ms",
		fmt.Sprintf("this device: %d logical pages — TimeQuery scales with device size", logicalPagesOf(c)))
	return t, nil
}

func pickLPA(lpas []uint64, seed int64, logical int) uint64 {
	if len(lpas) == 0 {
		return uint64(logical / 2)
	}
	rng := rand.New(rand.NewSource(seed))
	return lpas[rng.Intn(len(lpas))]
}

func logicalPagesOf(c Config) int {
	total := c.Flash.TotalPages()
	return int(float64(total) / 1.15)
}
