package harness

import (
	"strconv"
	"strings"
	"testing"
)

// tiny returns a configuration small enough that each experiment runs in
// well under a second; the assertions below check shapes, not magnitudes.
func tiny() Config {
	c := Quick()
	c.ReqPerDay = 300
	c.Days = 3
	c.Fig8MSRLens = []int{7, 14}
	c.Fig8FIULens = []int{7, 14}
	c.IOZoneOps = 150
	c.PostMarkTxns = 80
	c.OLTPTxns = 60
	c.OLTPTablePages = 128
	c.RansomScale = 0.1
	c.Fig11Commits = 25
	return c
}

func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(tab.Rows[row][col], "+"), "%"), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) %q: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}, Notes: []string{"n"}}
	tab.AddRow("1", "2")
	out := tab.Render()
	for _, want := range []string{"T\n", "a", "bb", "1", "2", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderZeroRows(t *testing.T) {
	tab := &Table{Title: "empty", Header: []string{"col-a", "col-b"}, Notes: []string{"nothing ran"}}
	out := tab.Render()
	for _, want := range []string{"empty\n", "col-a", "col-b", "note: nothing ran"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Entirely empty table: title only, no panic.
	bare := &Table{Title: "bare"}
	if got := bare.Render(); !strings.HasPrefix(got, "bare\n") {
		t.Fatalf("bare render: %q", got)
	}
}

func TestTableRenderRagged(t *testing.T) {
	tab := &Table{Title: "ragged", Header: []string{"a", "b"}}
	tab.AddRow("only-one")
	tab.AddRow("1", "2", "overflow-cell")
	tab.AddRow()
	out := tab.Render()
	for _, want := range []string{"only-one", "overflow-cell", "1", "2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Alignment: the overflow column's width must cover its widest cell.
	lines := strings.Split(out, "\n")
	if len(lines) < 6 {
		t.Fatalf("unexpected line count:\n%s", out)
	}
}

func TestFigures6And7(t *testing.T) {
	c := tiny()
	f6, f7, err := Figures6And7(c)
	if err != nil {
		t.Fatal(err)
	}
	// 12 workloads × 2 usages.
	if len(f6.Rows) != 24 || len(f7.Rows) != 24 {
		t.Fatalf("row counts: %d, %d", len(f6.Rows), len(f7.Rows))
	}
	for i := range f6.Rows {
		reg := cell(t, f6, i, 2)
		tsd := cell(t, f6, i, 3)
		if reg <= 0 || tsd <= 0 {
			t.Fatalf("fig6 row %d: non-positive response times", i)
		}
		// TimeSSD should be within a broad envelope of the regular SSD —
		// the paper reports ≤12% overhead; allow simulator slack.
		if tsd > reg*2 {
			t.Fatalf("fig6 row %v: TimeSSD response %.3f more than doubles regular %.3f",
				f6.Rows[i][:2], tsd, reg)
		}
	}
	for i := range f7.Rows {
		reg := cell(t, f7, i, 2)
		tsd := cell(t, f7, i, 3)
		if reg < 1 || tsd < 1 {
			t.Fatalf("fig7 row %d: WA below 1", i)
		}
	}
}

func TestFigure8Shape(t *testing.T) {
	c := tiny()
	tab, err := Figure8(c)
	if err != nil {
		t.Fatal(err)
	}
	// (7 MSR × 2 lens + 5 FIU × 2 lens) × 2 usages.
	want := (7*2 + 5*2) * 2
	if len(tab.Rows) != want {
		t.Fatalf("%d rows, want %d", len(tab.Rows), want)
	}
	for i, row := range tab.Rows {
		ret := cell(t, tab, i, 4)
		traceLen, _ := strconv.Atoi(row[3])
		// The generated trace's actual span can overshoot its nominal
		// length (randomised idle gaps), so allow 50% slack.
		if ret <= 0 || ret > float64(traceLen)*1.5+1 {
			t.Fatalf("row %v: retention %.1f implausible for %d-day trace", row, ret, traceLen)
		}
	}
}

func TestFigure9IOZoneShape(t *testing.T) {
	tab, err := Figure9IOZone(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		f2fs, tsd := cell(t, tab, i, 2), cell(t, tab, i, 3)
		switch row[0] {
		case "RandomWrite":
			// The paper's headline: TimeSSD ≈3.3× Ext4, F2FS between.
			if tsd < 1.5 {
				t.Fatalf("random write: TimeSSD only %.2fx Ext4", tsd)
			}
			if f2fs < 1.0 {
				t.Fatalf("random write: F2FS %.2fx below Ext4", f2fs)
			}
		case "SeqRead", "RandomRead":
			// Reads comparable everywhere (within ±35%).
			for _, v := range []float64{f2fs, tsd} {
				if v < 0.65 || v > 1.35 {
					t.Fatalf("%s: read speedup %.2f not comparable", row[0], v)
				}
			}
		}
	}
}

func TestFigure9OLTPShape(t *testing.T) {
	tab, err := Figure9OLTP(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		f2fs, tsd := cell(t, tab, i, 2), cell(t, tab, i, 3)
		if tsd <= 1.0 {
			t.Fatalf("%s: TimeSSD %.2fx not faster than Ext4 data journaling", row[0], tsd)
		}
		if tsd < f2fs*0.8 {
			t.Fatalf("%s: TimeSSD %.2fx far below F2FS %.2fx", row[0], tsd, f2fs)
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	tab, err := Figure10(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 13 {
		t.Fatalf("%d families", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if row[4] != "true/true" {
			t.Fatalf("%s: recovery not verified: %s", row[0], row[4])
		}
		fg, tsd := cell(t, tab, i, 1), cell(t, tab, i, 2)
		if fg <= 0 || tsd <= 0 {
			t.Fatalf("%s: non-positive recovery times", row[0])
		}
	}
}

func TestFigure11Shape(t *testing.T) {
	tab, err := Figure11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("%d files", len(tab.Rows))
	}
	// Aggregate: 4 threads must beat 1 thread overall.
	var t1, t4 float64
	for i := range tab.Rows {
		t1 += cell(t, tab, i, 1)
		t4 += cell(t, tab, i, 3)
	}
	if t4 >= t1 {
		t.Fatalf("4-thread total %.1fms not faster than 1-thread %.1fms", t4, t1)
	}
}

func TestTable3Shape(t *testing.T) {
	tab, err := Table3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		tq := cell(t, tab, i, 1) // seconds
		aq := cell(t, tab, i, 2) // ms
		rb := cell(t, tab, i, 3) // ms
		// The paper's key contrast: full-device TimeQuery is orders of
		// magnitude slower than single-LPA queries.
		if tq*1e3 < aq {
			t.Fatalf("%s: TimeQuery (%.3fs) cheaper than AddrQueryAll (%.3fms)", row[0], tq, aq)
		}
		if aq < 0 || rb < 0 {
			t.Fatalf("%s: negative times", row[0])
		}
	}
}

func TestAblations(t *testing.T) {
	c := tiny()
	for _, name := range []string{"ablation-compress", "ablation-group", "ablation-th", "ablation-bound", "ablation-mapcache", "ablation-wear"} {
		tab, err := Run(name, c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tab.Rows) < 3 {
			t.Fatalf("%s: only %d rows", name, len(tab.Rows))
		}
	}
}

func TestObsReport(t *testing.T) {
	tab, err := Run("obs", tiny())
	if err != nil {
		t.Fatal(err)
	}
	phases := map[string]bool{}
	ops := map[string]bool{}
	for _, row := range tab.Rows {
		phases[row[0]] = true
		ops[row[1]] = true
	}
	for _, p := range []string{"warm", "replay", "rollback"} {
		if !phases[p] {
			t.Fatalf("no rows for phase %q: %v", p, tab.Rows)
		}
	}
	// Every phase writes pages, so both the host class and the flash
	// micro-op class it decomposes into must appear.
	for _, op := range []string{"host-write", "flash-program"} {
		if !ops[op] {
			t.Fatalf("no rows for op %q", op)
		}
	}
}

func TestServiceFleetShape(t *testing.T) {
	tab, err := Run("service", tiny())
	if err != nil {
		t.Fatal(err)
	}
	phases := map[string]bool{}
	ops := map[string]bool{}
	for _, row := range tab.Rows {
		phases[row[0]] = true
		ops[row[1]] = true
	}
	for _, p := range []string{"load", "churn", "rollback", "verify"} {
		if !phases[p] {
			t.Fatalf("no rows for phase %q", p)
		}
	}
	for _, op := range []string{"vol-read", "vol-write", "vol-batch", "vol-rollback"} {
		if !ops[op] {
			t.Fatalf("no rows for class %q (have %v)", op, ops)
		}
	}
	joined := strings.Join(tab.Notes, "\n")
	if !strings.Contains(joined, "verification failures 0") {
		t.Fatalf("fleet reported failures:\n%s", joined)
	}
	if !strings.Contains(joined, "identical before/after: true") {
		t.Fatalf("rollback isolation not proven:\n%s", joined)
	}
	if !strings.Contains(joined, "clients=2048") {
		t.Fatalf("fleet below the 2048-client bar:\n%s", joined)
	}
	// Every row carries positive counts and zero errors.
	for i, row := range tab.Rows {
		if cell(t, tab, i, 2) <= 0 {
			t.Fatalf("row %v: zero count", row)
		}
		if cell(t, tab, i, 3) != 0 {
			t.Fatalf("row %v: errors", row)
		}
	}
}

// TestServiceFleetDeterministic runs the fleet twice with the same seed
// and compares every op-level outcome: the digest and isolation notes,
// and the (phase, op, count, errors) columns. Latency columns are
// scheduling-dependent and deliberately excluded.
func TestServiceFleetDeterministic(t *testing.T) {
	c := tiny()
	c.ServiceClients = 256 // smaller fleet: this test runs the experiment twice
	c.ServiceVolumes = 4
	outcomes := func(tab *Table) string {
		var b strings.Builder
		for _, row := range tab.Rows {
			b.WriteString(strings.Join(row[:4], " "))
			b.WriteByte('\n')
		}
		for _, n := range tab.Notes {
			if !strings.Contains(n, "wall") { // the wall-column disclaimer is static too, but be explicit
				b.WriteString(n)
				b.WriteByte('\n')
			}
		}
		return b.String()
	}
	a, err := Run("service", c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("service", c)
	if err != nil {
		t.Fatal(err)
	}
	if oa, ob := outcomes(a), outcomes(b); oa != ob {
		t.Errorf("op-level outcomes differ between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", oa, ob)
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", tiny()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestParallelMatchesSerial is the determinism contract of the worker
// pool: for every experiment, the rendered table at Workers=4 must be
// byte-identical to the serial order (Workers=1). scaling, obs and
// service are excluded — they ignore Workers by design and report host
// wall-clock columns that differ between any two runs (service has its
// own determinism test over the outcome digest).
func TestParallelMatchesSerial(t *testing.T) {
	c := tiny()
	c.CrashSeeds = 2 // enough seeds to exercise pooled dispatch
	for _, name := range Names() {
		if name == "scaling" || name == "obs" || name == "service" {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			serial, par := c, c
			serial.Workers = 1
			par.Workers = 4
			st, err := Run(name, serial)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			pt, err := Run(name, par)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if s, p := st.Render(), pt.Render(); s != p {
				t.Errorf("parallel table differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
			}
		})
	}
}

func TestNamesCoverExperiments(t *testing.T) {
	names := Names()
	if len(names) < 18 {
		t.Fatalf("registry suspiciously small: %d experiments", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate name %q in Names()", n)
		}
		seen[n] = true
		e, ok := Lookup(n)
		if !ok {
			t.Fatalf("%q in Names() but not resolvable via Lookup", n)
		}
		if e.Name() != n {
			t.Fatalf("experiment registered as %q reports Name() %q", n, e.Name())
		}
	}
	// The full built-in suite must be reachable through the registry.
	for _, n := range []string{"fig6", "fig7", "fig8", "fig9a", "fig9b", "fig10", "fig11",
		"table3", "ablation-compress", "ablation-group", "ablation-th", "ablation-bound",
		"ablation-mapcache", "ablation-wear", "scaling", "obs", "crashsweep", "service", "sweep"} {
		if !seen[n] {
			t.Fatalf("built-in experiment %q missing from registry", n)
		}
	}
}

// TestRegistryDrivesCustomExperiments is the API-redesign contract: an
// experiment registered at run time is immediately enumerable and
// runnable exactly like the built-ins.
func TestRegistryDrivesCustomExperiments(t *testing.T) {
	RegisterFunc("test-custom", func(c Config) (*Table, error) {
		tab := &Table{Title: "custom", Header: []string{"k"}}
		tab.AddRow("v")
		return tab, nil
	})
	found := false
	for _, n := range Names() {
		if n == "test-custom" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered experiment missing from Names()")
	}
	tab, err := Run("test-custom", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || tab.Rows[0][0] != "v" {
		t.Fatalf("custom experiment table mangled: %+v", tab)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	RegisterFunc("test-custom", func(c Config) (*Table, error) { return &Table{}, nil })
}
