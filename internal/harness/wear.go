package harness

import (
	"fmt"
	"math/rand"

	"almanac/internal/core"
	"almanac/internal/ftl"
	"almanac/internal/trace"
	"almanac/internal/vclock"
)

// AblationWear validates §3.8's claim that TimeSSD's modified wear
// leveling (delta blocks excluded from cold-swaps, retained pages handled
// like GC) "has little impact on its effectiveness": under a hot/cold
// workload, the erase-count spread with wear leveling must stay far below
// the spread without it, on both the regular SSD and TimeSSD.
func AblationWear(c Config) (*Table, error) {
	t := &Table{
		Title:  "Ablation: wear leveling effectiveness (hot/cold workload)",
		Header: []string{"device", "wear-leveling", "min-erases", "max-erases", "spread"},
	}
	type variant struct {
		device string
		wl     bool
	}
	variants := []variant{
		{"regular", true}, {"regular", false},
		{"timessd", true}, {"timessd", false},
	}
	rows := make([][]string, len(variants))
	err := c.parallel(len(variants), func(i int) error {
		r := variants[i]
		var dev ftl.Device
		var spreadOf func() (int, int)
		p := ftl.WithFlash(c.Flash)
		if !r.wl {
			p.WearDelta = 1 << 30 // never triggers
		} else {
			p.WearDelta = 4
			p.WearCheckEvery = 8
		}
		if r.device == "regular" {
			d, err := ftl.NewRegular(p)
			if err != nil {
				return err
			}
			dev = d
			spreadOf = d.Arr.WearSpread
		} else {
			cfg := core.DefaultConfig(p)
			// This sweep hammers a hot spot at far beyond trace intensity;
			// retention must be free to shed or the device would (rightly)
			// refuse writes inside the bound instead of exercising WL.
			cfg.MinRetention = 0
			d, err := core.New(cfg)
			if err != nil {
				return err
			}
			dev = d
			spreadOf = d.Arr.WearSpread
		}
		if err := c.runWearWorkload(dev); err != nil {
			return fmt.Errorf("%s wl=%v: %w", r.device, r.wl, err)
		}
		min, max := spreadOf()
		rows[i] = []string{r.device, fmt.Sprintf("%v", r.wl),
			fmt.Sprintf("%d", min), fmt.Sprintf("%d", max), fmt.Sprintf("%d", max-min)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"expected: with wear leveling on, every block participates (min-erases > 0) and the spread narrows on both devices — TimeSSD's delta-block exclusions do not break it (§3.8)")
	return t, nil
}

// runWearWorkload writes a large cold region once, then hammers a small
// hot region for several device-capacities of writes.
func (c Config) runWearWorkload(dev ftl.Device) error {
	gen := trace.NewContentGen(dev.PageSize(), trace.ContentSimilar, c.Seed)
	logical := dev.LogicalPages()
	cold := uint64(logical / 2)
	at, err := trace.Fill(dev, cold, gen, 0)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	idleDev, _ := dev.(trace.IdleDevice)
	hot := 32
	writes := c.Flash.TotalPages() * 6
	for i := 0; i < writes; i++ {
		lpa := cold + uint64(rng.Intn(hot))
		at = at.Add(10 * vclock.Millisecond)
		done, err := dev.Write(lpa, gen.NextVersion(lpa), at)
		if err != nil {
			return err
		}
		at = done
		if i%512 == 511 && idleDev != nil {
			// Periodic quiet spells so background machinery participates.
			idleDev.Idle(at, at.Add(10*vclock.Second))
			at = at.Add(10 * vclock.Second)
		}
	}
	return nil
}
