package harness

import (
	"fmt"

	"almanac/internal/trace"
)

// Figure8 reproduces Fig. 8: the retention duration TimeSSD sustains as a
// function of trace length, for the MSR and FIU workloads at 80% and 50%
// capacity usage. The paper's headline — invalid data retained for up to
// 40 days on university (FIU) workloads and up to 56 days on enterprise
// (MSR) servers at 50% usage, collapsing toward the 3-day bound under
// pressure — is the shape this table reproduces.
func Figure8(c Config) (*Table, error) {
	t := &Table{
		Title:  "Figure 8: Data retention duration (days) vs trace length",
		Header: []string{"class", "usage", "workload", "trace(days)", "retention(days)", "window-drops"},
	}
	type job struct {
		class string
		names []string
		lens  []int
	}
	jobs := []job{
		{"MSR", trace.MSRNames, c.Fig8MSRLens},
		{"FIU", trace.FIUNames, c.Fig8FIULens},
	}
	for _, j := range jobs {
		for _, usage := range c.Usages {
			for _, name := range j.names {
				for _, days := range j.lens {
					dev, err := c.newTimeSSD(nil)
					if err != nil {
						return nil, err
					}
					run, err := c.runTrace(dev, name, usage, days)
					if err != nil {
						return nil, fmt.Errorf("fig8 %s/%d: %w", name, days, err)
					}
					t.AddRow(j.class, fmt.Sprintf("%.0f%%", usage*100), name,
						fmt.Sprintf("%d", days),
						fmt.Sprintf("%.1f", dev.RetentionDuration(run.end).Hours()/24),
						fmt.Sprintf("%d", dev.TimeStats().WindowDrops))
				}
			}
		}
	}
	t.Notes = append(t.Notes,
		"paper: retention 3–56 days; longer at 50% usage than 80%, longer on idle FIU workloads than busy MSR ones")
	return t, nil
}
