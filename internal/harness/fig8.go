package harness

import (
	"fmt"

	"almanac/internal/trace"
)

// Figure8 reproduces Fig. 8: the retention duration TimeSSD sustains as a
// function of trace length, for the MSR and FIU workloads at 80% and 50%
// capacity usage. The paper's headline — invalid data retained for up to
// 40 days on university (FIU) workloads and up to 56 days on enterprise
// (MSR) servers at 50% usage, collapsing toward the 3-day bound under
// pressure — is the shape this table reproduces.
func Figure8(c Config) (*Table, error) {
	t := &Table{
		Title:  "Figure 8: Data retention duration (days) vs trace length",
		Header: []string{"class", "usage", "workload", "trace(days)", "retention(days)", "window-drops"},
	}
	type class struct {
		class string
		names []string
		lens  []int
	}
	classes := []class{
		{"MSR", trace.MSRNames, c.Fig8MSRLens},
		{"FIU", trace.FIUNames, c.Fig8FIULens},
	}
	// Flatten the sweep into one cell per (class, usage, workload, length):
	// every cell is an independent simulation, dispatched across the worker
	// pool with rows assembled in sweep order.
	type cell struct {
		class string
		usage float64
		name  string
		days  int
	}
	var cells []cell
	for _, cl := range classes {
		for _, usage := range c.Usages {
			for _, name := range cl.names {
				for _, days := range cl.lens {
					cells = append(cells, cell{cl.class, usage, name, days})
				}
			}
		}
	}
	rows := make([][]string, len(cells))
	err := c.parallel(len(cells), func(i int) error {
		j := cells[i]
		dev, err := c.newTimeSSD(nil)
		if err != nil {
			return err
		}
		run, err := c.runTrace(dev, j.name, j.usage, j.days)
		if err != nil {
			return fmt.Errorf("fig8 %s/%d: %w", j.name, j.days, err)
		}
		rows[i] = []string{j.class, fmt.Sprintf("%.0f%%", j.usage*100), j.name,
			fmt.Sprintf("%d", j.days),
			fmt.Sprintf("%.1f", dev.RetentionDuration(run.end).Hours()/24),
			fmt.Sprintf("%d", dev.TimeStats().WindowDrops)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"paper: retention 3–56 days; longer at 50% usage than 80%, longer on idle FIU workloads than busy MSR ones")
	return t, nil
}
