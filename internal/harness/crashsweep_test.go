package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCrashSweep(t *testing.T) {
	c := tiny()
	c.CrashSeeds = 2
	c.CrashCuts = 2
	tab, err := Run("crashsweep", c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != c.CrashSeeds {
		t.Fatalf("want %d rows, got %d", c.CrashSeeds, len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "ok" {
			t.Fatalf("seed %s did not survive: %v", row[0], row)
		}
		if row[1] != "2" {
			t.Fatalf("seed %s: expected 2 cuts to fire, got %s", row[0], row[1])
		}
	}
}

// TestCrashSweepDeterministic pins the replayability contract: the same
// (config, seed) pair must produce byte-identical sweep results.
func TestCrashSweepDeterministic(t *testing.T) {
	c := tiny()
	c.CrashSeeds = 1
	c.CrashCuts = 2
	a, err := Run("crashsweep", c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("crashsweep", c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("sweep not deterministic:\n%s\nvs\n%s", a.Render(), b.Render())
	}
}

func TestCrashSweepEnvOverride(t *testing.T) {
	c := tiny()
	c.CrashSeeds = 4
	c.CrashCuts = 2
	t.Setenv("ALMANAC_CRASH_SEEDS", "1")
	t.Setenv("ALMANAC_CRASH_CUTS", "1")
	tab, err := Run("crashsweep", c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || !strings.Contains(tab.Title, "1 seed(s) × 1 power cut(s)") {
		t.Fatalf("env override ignored: %q, %d rows", tab.Title, len(tab.Rows))
	}
}

func TestSaveCrashArtifacts(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("ALMANAC_CRASH_ARTIFACTS", dir)
	c := tiny()
	dev, err := c.newTimeSSD(nil)
	if err != nil {
		t.Fatal(err)
	}
	saveCrashArtifacts(7, dev)
	img, err := os.ReadFile(filepath.Join(dir, "crashsweep-seed7.img"))
	if err != nil || len(img) == 0 {
		t.Fatalf("no image artifact: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "crashsweep-seed7.txt")); err != nil {
		t.Fatalf("no plan artifact: %v", err)
	}
}
