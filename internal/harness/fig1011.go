package harness

import (
	"fmt"
	"math/rand"

	"almanac/internal/core"
	"almanac/internal/fsim"
	"almanac/internal/ransom"
	"almanac/internal/timekits"
	"almanac/internal/vclock"
)

// Figure10 reproduces Fig. 10: average time to recover user data encrypted
// by thirteen ransomware families, on FlashGuard-style raw retention vs
// TimeSSD (whose recovery additionally pays delta decompression).
func Figure10(c Config) (*Table, error) {
	t := &Table{
		Title:  "Figure 10: Ransomware data recovery time (virtual seconds)",
		Header: []string{"family", "flashguard(s)", "timessd(s)", "timessd-extra", "verified"},
	}
	// Each family's attack+recovery runs on a fresh stack per retention
	// style — 2×len(Families) independent simulations for the worker pool.
	type famRun struct {
		fg, ts *ransom.RecoverStats
	}
	runs := make([]famRun, len(ransom.Families))
	err := c.parallel(2*len(ransom.Families), func(i int) error {
		fam := ransom.Families[i/2]
		scaled := fam
		scaled.Files = int(float64(fam.Files) * c.RansomScale)
		if scaled.Files < 2 {
			scaled.Files = 2
		}
		flashguard := i%2 == 0
		st, err := c.runRansom(scaled, flashguard)
		if err != nil {
			kind := "timessd"
			if flashguard {
				kind = "flashguard"
			}
			return fmt.Errorf("%s %s: %w", fam.Name, kind, err)
		}
		if flashguard {
			runs[i/2].fg = st
		} else {
			runs[i/2].ts = st
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var sumOver, n float64
	for i, fam := range ransom.Families {
		fg, ts := runs[i].fg, runs[i].ts
		over := ts.RecoveryTime.Seconds()/fg.RecoveryTime.Seconds() - 1
		sumOver += over
		n++
		t.AddRow(fam.Name,
			fmt.Sprintf("%.2f", fg.RecoveryTime.Seconds()),
			fmt.Sprintf("%.2f", ts.RecoveryTime.Seconds()),
			pct(over),
			fmt.Sprintf("%v/%v", fg.Verified, ts.Verified))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean TimeSSD overhead vs FlashGuard-style raw retention: %s (paper: +14.1%%, from decompression)", pct(sumOver/n)),
		"paper: every family recovered in under a minute")
	return t, nil
}

// runRansom executes one family's attack + recovery on a fresh stack.
func (c Config) runRansom(fam ransom.Family, flashguard bool) (*ransom.RecoverStats, error) {
	dev, err := c.newTimeSSD(func(cc *core.Config) {
		if flashguard {
			// FlashGuard retains victim pages uncompressed: recovery reads
			// them back without delta decompression (§5.5.1).
			cc.DisableCompression = true
		}
	})
	if err != nil {
		return nil, err
	}
	opts := fsim.DefaultOptions(fsim.ModeInPlace)
	opts.InodeCount = 1024
	fs, at, err := fsim.Mkfs(dev, opts, 0)
	if err != nil {
		return nil, err
	}
	kit := timekits.New(dev)
	victims, at, err := ransom.PlantFiles(fs, fam, c.Seed, at.Add(vclock.Second))
	if err != nil {
		return nil, err
	}
	at = at.Add(vclock.Hour) // benign interval before infection
	res, at, err := ransom.Attack(fs, fam, victims, c.Seed+1, at)
	if err != nil {
		return nil, err
	}
	// The minute between the ransom note and recovery is idle: TimeSSD's
	// background pass compresses the freshly invalidated victim versions
	// (§3.6), which is exactly why its recovery later pays decompression.
	recoverAt := at.Add(vclock.Minute)
	dev.Idle(at, recoverAt)
	st, _, err := ransom.Recover(kit, res, 4, recoverAt)
	if err != nil {
		return nil, err
	}
	return st, nil
}

// fig11Files are the ten kernel source files of Fig. 11.
var fig11Files = []string{
	"mmap.c", "mprotect.c", "slab.c", "swap.c", "aio.c",
	"inode.c", "iomap.c", "iov.c", "of.c", "pci.c",
}

// Figure11 reproduces Fig. 11: replay a stream of commits to kernel source
// files, then revert each file to its state one (virtual) minute earlier
// with 1, 2 and 4 host threads; recovery time drops as threads exploit the
// SSD's internal channel parallelism.
func Figure11(c Config) (*Table, error) {
	t := &Table{
		Title:  "Figure 11: Reversing OS files to previous versions (ms per file)",
		Header: append([]string{"file"}, threadHeaders(c.Fig11Threads)...),
	}
	// One fresh run per thread count (reverting mutates state); the runs
	// are independent simulations, dispatched across the worker pool.
	results := make([]map[string]vclock.Duration, len(c.Fig11Threads))
	err := c.parallel(len(c.Fig11Threads), func(i int) error {
		times, err := c.runFig11(c.Fig11Threads[i])
		if err != nil {
			return err
		}
		results[i] = times
		return nil
	})
	if err != nil {
		return nil, err
	}
	perThread := map[int]map[string]vclock.Duration{}
	for i, threads := range c.Fig11Threads {
		perThread[threads] = results[i]
	}
	for _, name := range fig11Files {
		row := []string{name}
		for _, th := range c.Fig11Threads {
			row = append(row, ms(perThread[th][name]))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: recovery time drops markedly from 1 to 4 threads (multi-threaded recovery uses SSD channel parallelism)")
	return t, nil
}

func threadHeaders(threads []int) []string {
	out := make([]string, len(threads))
	for i, th := range threads {
		out[i] = fmt.Sprintf("%d thread(ms)", th)
	}
	return out
}

// runFig11 builds the stack, replays commit rounds, and reverts each file,
// returning per-file revert times.
func (c Config) runFig11(threads int) (map[string]vclock.Duration, error) {
	dev, err := c.newTimeSSD(nil)
	if err != nil {
		return nil, err
	}
	opts := fsim.DefaultOptions(fsim.ModeInPlace)
	fs, at, err := fsim.Mkfs(dev, opts, 0)
	if err != nil {
		return nil, err
	}
	kit := timekits.New(dev)
	rng := rand.New(rand.NewSource(c.Seed))
	ps := fs.Device().PageSize()

	// Seed the files with "source code".
	for _, name := range fig11Files {
		if at, err = fs.Create(name, at); err != nil {
			return nil, err
		}
		size := (4 + rng.Intn(12)) * ps
		if at, err = fs.Write(name, 0, srcBytes(rng, size), at); err != nil {
			return nil, err
		}
	}
	// Replay commits: each commit patches a few ranges of one file. The
	// paper replays 100 commits per minute; we space ours to land the same
	// density in virtual time.
	gap := vclock.Duration(600) * vclock.Millisecond
	for i := 0; i < c.Fig11Commits; i++ {
		name := fig11Files[rng.Intn(len(fig11Files))]
		size, _ := fs.Size(name)
		for h := 0; h < 1+rng.Intn(3); h++ {
			off := rng.Int63n(size)
			n := 64 + rng.Intn(ps)
			if off+int64(n) > size {
				n = int(size - off)
			}
			if n <= 0 {
				continue
			}
			if at, err = fs.Write(name, off, srcBytes(rng, n), at); err != nil {
				return nil, err
			}
		}
		at = at.Add(gap)
	}
	// Revert each file to one minute before the end of the replay.
	target := at.Add(-vclock.Minute)
	out := make(map[string]vclock.Duration, len(fig11Files))
	for _, name := range fig11Files {
		lpas, err := fs.FileLPAs(name)
		if err != nil {
			return nil, err
		}
		res, err := kit.RollBackParallel(lpas, threads, target, at)
		if err != nil {
			return nil, err
		}
		out[name] = res.Elapsed
		at = res.Done
	}
	return out, nil
}

func srcBytes(rng *rand.Rand, n int) []byte {
	tokens := []string{"static ", "int ", "err = ", "return ", "->", "struct page *", "if (", ")\n\t", "unlock();\n"}
	out := make([]byte, 0, n)
	for len(out) < n {
		out = append(out, tokens[rng.Intn(len(tokens))]...)
	}
	return out[:n]
}
