package harness

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"sync"

	"almanac/internal/obs"
	"almanac/internal/service"
	"almanac/internal/vclock"
)

// ServiceFleet drives the multi-tenant volume service with a fleet of
// concurrent simulated clients in one process: the clients partition the
// volumes, each writes and reads back its own pages through the batched
// service API, one volume's tenants then churn a second generation, and
// that volume alone is rolled back — with another volume's version
// history captured before and after to prove the rollback touched
// nothing outside its extent.
//
// Per phase, the table reports the per-tenant operation classes from obs
// snapshot deltas: virtual-time p50/p99/p999 (the latency the simulated
// device charged) and wall-time p50/p99/p999 (host-side cost of the same
// calls). The quantile columns depend on goroutine scheduling (arrival
// order at the shard queues); every op-level *outcome* — data read back,
// success counts, pages changed by the rollback — is deterministic for a
// fixed Config and is folded into the digest note, which is what the
// determinism tests compare.
//
// The experiment spawns ServiceClients goroutines outright (they are the
// workload, not a host-side worker pool), so Config.Workers does not
// apply.
func ServiceFleet(c Config) (*Table, error) {
	clients, ops := c.ServiceClients, c.ServiceOps
	shards, vols := c.ServiceShards, c.ServiceVolumes
	if clients <= 0 || ops <= 0 || shards <= 0 || vols <= 0 {
		return nil, fmt.Errorf("harness: service experiment needs positive clients/ops/shards/volumes, got %d/%d/%d/%d",
			clients, ops, shards, vols)
	}
	if clients%vols != 0 {
		return nil, fmt.Errorf("harness: %d clients do not partition %d volumes evenly", clients, vols)
	}
	clientsPerVol := clients / vols
	volPages := uint64(clientsPerVol * ops)

	arr, err := c.newArray(shards)
	if err != nil {
		return nil, err
	}
	defer arr.Close()
	if uint64(vols)*volPages > uint64(arr.LogicalPages()) {
		return nil, fmt.Errorf("harness: %d volumes × %d pages exceed the %d-page array",
			vols, volPages, arr.LogicalPages())
	}
	svc := service.New(arr)
	svc.SetObsEnabled(true)

	tab := &Table{
		Title:  fmt.Sprintf("Service fleet — %d clients, %d volumes, %d shards", clients, vols, shards),
		Header: []string{"phase", "op", "count", "errors", "virt p50 ms", "virt p99 ms", "virt p999 ms", "wall p50 µs", "wall p99 µs", "wall p999 µs"},
	}
	nsToMS := func(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) }
	nsToUS := func(ns int64) string { return fmt.Sprintf("%.1f", float64(ns)/1e3) }
	prev := svc.ObsSnapshot()
	addPhase := func(name string) {
		cur := svc.ObsSnapshot()
		delta := obs.DeltaOps(prev.Ops, cur.Ops)
		for _, op := range obs.SortedOpNames(delta) {
			st := delta[op]
			tab.AddRow(name, op,
				fmt.Sprintf("%d", st.Count),
				fmt.Sprintf("%d", st.Errors),
				nsToMS(st.Virt.QuantileNS(0.5)),
				nsToMS(st.Virt.QuantileNS(0.99)),
				nsToMS(st.Virt.QuantileNS(0.999)),
				nsToUS(st.Wall.QuantileNS(0.5)),
				nsToUS(st.Wall.QuantileNS(0.99)),
				nsToUS(st.Wall.QuantileNS(0.999)))
		}
		prev = cur
	}

	// Provision: one volume per tenant group; even-numbered volumes carry
	// an explicit retention promise so the upward MinRetention aggregation
	// is exercised, odd ones accept the device default.
	t0 := vclock.Time(vclock.Hour)
	handles := make([]*service.Volume, vols)
	for v := 0; v < vols; v++ {
		var retention vclock.Duration
		if v%2 == 0 {
			retention = 6 * vclock.Hour
		}
		vol, err := svc.Create(fmt.Sprintf("vol-%03d", v), fmt.Sprintf("key-%03d", v), volPages, retention, t0)
		if err != nil {
			return nil, fmt.Errorf("provision vol %d: %w", v, err)
		}
		handles[v] = vol
	}

	// dataByte is the deterministic page fill for (volume, client-in-
	// volume, page, generation).
	dataByte := func(vol, cv, page, gen int) byte {
		return byte(37*vol + 131*cv + 17*page + 101*gen + int(c.Seed))
	}
	ps := arr.PageSize()

	var digestMu sync.Mutex
	var digest uint64
	var failures int
	// runClients spawns one goroutine per selected client. Each writes its
	// ops pages as one batch, reads them back as a second batch, verifies
	// the contents, and folds its op-level outcomes into an order-
	// independent digest (per-client FNV-1a, XOR-folded — latencies are
	// deliberately not part of it).
	runClients := func(phase string, onlyVol int, gen int, write bool, at vclock.Time) {
		var wg sync.WaitGroup
		for v := 0; v < vols; v++ {
			if onlyVol >= 0 && v != onlyVol {
				continue
			}
			for cv := 0; cv < clientsPerVol; cv++ {
				wg.Add(1)
				go func(v, cv int) {
					defer wg.Done()
					vol := handles[v]
					base := uint64(cv * ops)
					h := fnv.New64a()
					fmt.Fprintf(h, "%s/%d/%d", phase, v, cv)
					bad := 0
					// One BatchRun per client, reused across its batches —
					// the same scratch-recycling discipline the protocol
					// server applies per connection.
					var run service.BatchRun
					if write {
						batch := make([]service.BatchOp, ops)
						for i := 0; i < ops; i++ {
							data := make([]byte, ps)
							fill := dataByte(v, cv, i, gen)
							for j := range data {
								data[j] = fill
							}
							batch[i] = service.BatchOp{
								Kind: service.KindWrite, LPA: base + uint64(i),
								Data: data, At: at.Add(vclock.Duration(i) * vclock.Second),
							}
						}
						vol.StartBatch(batch, &run)
						for i, r := range run.Complete() {
							fmt.Fprintf(h, "|w%d:%t", i, r.Err == nil)
							if r.Err != nil {
								bad++
							}
						}
					}
					reads := make([]service.BatchOp, ops)
					rat := at.Add(vclock.Duration(ops) * vclock.Second)
					for i := 0; i < ops; i++ {
						reads[i] = service.BatchOp{Kind: service.KindRead, LPA: base + uint64(i), At: rat}
					}
					vol.StartBatch(reads, &run)
					for i, r := range run.Complete() {
						ok := r.Err == nil && len(r.Data) == ps && r.Data[0] == dataByte(v, cv, i, gen) && r.Data[ps-1] == r.Data[0]
						fmt.Fprintf(h, "|r%d:%t", i, ok)
						if !ok {
							bad++
						}
					}
					digestMu.Lock()
					digest ^= h.Sum64()
					failures += bad
					digestMu.Unlock()
				}(v, cv)
			}
		}
		wg.Wait()
	}

	// Load: every client writes and reads back generation 1.
	t1 := t0.Add(10 * vclock.Minute)
	runClients("load", -1, 1, true, t1)
	addPhase("load")

	// Churn: volume 0's tenants overwrite their pages with generation 2.
	tCut := t0.Add(30 * vclock.Minute)
	t2 := t0.Add(vclock.Hour)
	runClients("churn", 0, 2, true, t2)
	addPhase("churn")

	// Rollback volume 0 to before the churn; volume 1's history must be
	// byte-identical across it.
	probe := volPages
	if probe > 64 {
		probe = 64
	}
	atRB := t0.Add(2 * vclock.Hour)
	before, err := handles[1].History(0, int(probe), atRB)
	if err != nil {
		return nil, fmt.Errorf("history before rollback: %w", err)
	}
	res, err := handles[0].RollBack(tCut, atRB.Add(vclock.Minute))
	if err != nil {
		return nil, fmt.Errorf("rollback: %w", err)
	}
	after, err := handles[1].History(0, int(probe), atRB.Add(2*vclock.Minute))
	if err != nil {
		return nil, fmt.Errorf("history after rollback: %w", err)
	}
	isolated := reflect.DeepEqual(before.Value, after.Value)
	if !isolated {
		failures++
	}
	addPhase("rollback")

	// Verify: every client reads generation 1 again — volume 0 because the
	// rollback reverted it, the rest because they were never rewritten.
	runClients("verify", -1, 1, false, t0.Add(3*vclock.Hour))
	addPhase("verify")

	tab.Notes = append(tab.Notes,
		fmt.Sprintf("clients=%d ops/client=%d volumes=%d shards=%d seed=%d", clients, ops, vols, shards, c.Seed),
		fmt.Sprintf("outcome digest %016x (op-level results only; latency-free, order-independent), verification failures %d", digest, failures),
		fmt.Sprintf("rollback of vol-000 to %v changed %d pages; vol-001 history identical before/after: %t", tCut, res.Value, isolated),
		"virt columns are simulated device time; wall columns are host-side cost and vary run to run",
	)
	if failures > 0 {
		return tab, fmt.Errorf("harness: service fleet had %d verification failures", failures)
	}
	return tab, nil
}
