package harness

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"almanac/internal/core"
	"almanac/internal/fault"
	"almanac/internal/flash"
	"almanac/internal/ftl"
	"almanac/internal/vclock"
)

// CrashSweep is the crash-recovery equivalence experiment: for each seed it
// drives a random write/read workload against a TimeSSD while maintaining a
// shadow model of every committed write, power-cuts the device at CrashCuts
// random virtual instants (through the internal/fault injector, so the last
// page is torn exactly as the flash layer models it), round-trips the dead
// medium through its image format, rebuilds, and verifies that the
// recovered device is equivalent to the shadow: every committed version
// readable with the right content, the full version history retrievable
// with the right timestamps, VersionAt answering history queries
// correctly, and rollback restoring shadow-predicted content. Invariants
// (core.CheckInvariants) are checked after every rebuild.
//
// Semantics verified are exactly the ones Rebuild documents: an op that
// returned before the cut is durable; the op torn by the cut simply never
// happened; the retention window restarts at the rebuild instant, so no
// committed version may be missing afterwards.
//
// The sweep honours two environment overrides so CI can scale it without a
// config fork: ALMANAC_CRASH_SEEDS and ALMANAC_CRASH_CUTS. On a failure,
// if ALMANAC_CRASH_ARTIFACTS names a directory, the failing seed's fault
// plan and flash image are saved there for offline replay.
func CrashSweep(c Config) (*Table, error) {
	seeds := envInt("ALMANAC_CRASH_SEEDS", c.CrashSeeds)
	cuts := envInt("ALMANAC_CRASH_CUTS", c.CrashCuts)
	if seeds < 1 {
		seeds = 1
	}
	if cuts < 1 {
		cuts = 1
	}
	t := &Table{
		Title:  fmt.Sprintf("Crash sweep: %d seed(s) × %d power cut(s), image round trip + rebuild each", seeds, cuts),
		Header: []string{"seed", "cuts", "writes", "versions-checked", "rollbacks", "status"},
	}
	// Seeds are fully independent workloads: sweep them across the worker
	// pool, one row slot per seed.
	rows := make([][]string, seeds)
	err := c.parallel(seeds, func(s int) error {
		seed := c.Seed + int64(s)
		res, err := crashRun(c, seed, cuts)
		if err != nil {
			return fmt.Errorf("crashsweep: seed %d: %w", seed, err)
		}
		rows[s] = []string{fmt.Sprintf("%d", seed), fmt.Sprintf("%d", res.cuts),
			fmt.Sprintf("%d", res.writes), fmt.Sprintf("%d", res.versions),
			fmt.Sprintf("%d", res.rollbacks), "ok"}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"equivalence: reads, full version history, VersionAt and rollback all match a shadow model of committed writes",
		"the retention window restarts at the rebuild instant (core.Rebuild) — a crash can lengthen retention, never shorten it")
	return t, nil
}

// shadowVer is one committed write in the shadow model.
type shadowVer struct {
	ts  vclock.Time
	tag uint64 // content is regenerated from (lpa, ts, tag)
}

type crashResult struct {
	cuts, writes, versions, rollbacks int
}

// crashRun executes one seed of the sweep.
func crashRun(c Config, seed int64, cuts int) (crashResult, error) {
	const (
		footprintLPAs = 48
		opsPerSeed    = 360
		opStep        = 150 * vclock.Millisecond
	)
	rng := rand.New(rand.NewSource(seed))
	cfg := core.DefaultConfig(ftl.WithFlash(c.Flash))
	cfg.MinRetention = c.MinRetention
	dev, err := core.New(cfg)
	if err != nil {
		return crashResult{}, err
	}

	// The op schedule: strictly increasing virtual times so every version
	// has a unique timestamp and equivalence can compare them exactly.
	shadow := make(map[uint64][]shadowVer)
	written := []uint64{}
	opAt := func(i int) vclock.Time { return vclock.Time(0).Add(vclock.Second + vclock.Duration(i)*opStep) }

	// Cut schedule: each cut fires at the virtual time of a distinct op,
	// guaranteeing it actually triggers mid-workload. The schedule is
	// consumed in time order; a cut instant the previous recovery already
	// passed simply fires on the next flash op, which is still a valid
	// mid-workload crash.
	seen := map[int]bool{}
	var cutAt []vclock.Time
	for len(cutAt) < cuts && len(cutAt) < opsPerSeed/2 {
		i := 1 + rng.Intn(opsPerSeed-1)
		if !seen[i] {
			seen[i] = true
			cutAt = append(cutAt, opAt(i))
		}
	}
	sort.Slice(cutAt, func(i, j int) bool { return cutAt[i] < cutAt[j] })

	res := crashResult{}
	arm := func() error {
		if res.cuts >= len(cutAt) {
			return nil
		}
		// Plan literals are blessed in the harness (almalint faultplan).
		inj, err := fault.NewInjector(&fault.Plan{Seed: seed, Rules: []fault.Rule{{
			Effect: fault.PowerCut, Channel: fault.Any, Block: fault.Any, Page: fault.Any,
			At: cutAt[res.cuts], Count: 1,
		}}})
		if err != nil {
			return err
		}
		dev.SetFaults(inj)
		return nil
	}
	if err := arm(); err != nil {
		return crashResult{}, err
	}

	for i := 0; i < opsPerSeed; i++ {
		at := opAt(i)
		lpa := uint64(rng.Intn(footprintLPAs))
		isRead := len(written) > 0 && rng.Float64() < 0.2
		var opErr error
		if isRead {
			lpa = written[rng.Intn(len(written))]
			var data []byte
			data, _, opErr = dev.Read(lpa, at)
			if opErr == nil {
				vers := shadow[lpa]
				want := crashContent(c.Flash.PageSize, lpa, vers[len(vers)-1])
				if !bytes.Equal(data, want) {
					saveCrashArtifacts(seed, dev)
					return res, fmt.Errorf("op %d: live read of lpa %d diverged from shadow", i, lpa)
				}
			}
		} else {
			v := shadowVer{ts: at, tag: rng.Uint64()}
			_, opErr = dev.Write(lpa, crashContent(c.Flash.PageSize, lpa, v), at)
			if opErr == nil {
				if len(shadow[lpa]) == 0 {
					written = append(written, lpa)
				}
				shadow[lpa] = append(shadow[lpa], v)
				res.writes++
			}
		}
		if opErr == nil {
			continue
		}
		if !dev.Arr.Dead() {
			saveCrashArtifacts(seed, dev)
			return res, fmt.Errorf("op %d: unexpected error with power on: %w", i, opErr)
		}
		// Power was cut mid-op. The op never happened; bring the device
		// back through the full recovery path and verify equivalence.
		res.cuts++
		dev, err = crashRecover(dev, cfg)
		if err != nil {
			return res, fmt.Errorf("op %d: %w", i, err)
		}
		n, err := verifyShadow(dev, c.Flash.PageSize, shadow, opAt(i-1))
		res.versions += n
		if err != nil {
			saveCrashArtifacts(seed, dev)
			return res, fmt.Errorf("op %d (after cut %d): %w", i, res.cuts, err)
		}
		if err := arm(); err != nil {
			return res, err
		}
		i-- // retry the torn op on the recovered device
	}

	// Final verification pass, then rollback equivalence on every
	// multi-version LPA (with injection disarmed: the workload is over).
	dev.SetFaults(nil)
	end := opAt(opsPerSeed)
	n, err := verifyShadow(dev, c.Flash.PageSize, shadow, end)
	res.versions += n
	if err != nil {
		saveCrashArtifacts(seed, dev)
		return res, err
	}
	for k, lpa := range sortedLPAs(shadow) {
		vers := shadow[lpa]
		if len(vers) < 2 {
			continue
		}
		target := vers[rng.Intn(len(vers)-1)] // any non-live version
		at := end.Add(vclock.Duration(k+1) * vclock.Second)
		if _, err := dev.RollBack(lpa, target.ts, at); err != nil {
			return res, fmt.Errorf("rollback lpa %d to %v: %w", lpa, target.ts, err)
		}
		data, _, err := dev.Read(lpa, at.Add(vclock.Second/2))
		if err != nil {
			return res, fmt.Errorf("read after rollback of lpa %d: %w", lpa, err)
		}
		if !bytes.Equal(data, crashContent(c.Flash.PageSize, lpa, target)) {
			saveCrashArtifacts(seed, dev)
			return res, fmt.Errorf("rollback of lpa %d to %v restored wrong content", lpa, target.ts)
		}
		res.rollbacks++
	}
	if err := dev.CheckInvariants(); err != nil {
		saveCrashArtifacts(seed, dev)
		return res, fmt.Errorf("invariants after rollbacks: %w", err)
	}
	return res, nil
}

// crashRecover round-trips the dead device's medium through the image
// format (power truly off) and rebuilds firmware state from flash alone.
func crashRecover(dead *core.TimeSSD, cfg core.Config) (*core.TimeSSD, error) {
	var img bytes.Buffer
	if err := dead.Arr.WriteImage(&img); err != nil {
		return nil, fmt.Errorf("imaging dead array: %w", err)
	}
	arr, err := flash.ReadImage(&img)
	if err != nil {
		return nil, fmt.Errorf("re-reading image: %w", err)
	}
	dev, err := core.Rebuild(arr, cfg)
	if err != nil {
		return nil, fmt.Errorf("rebuild: %w", err)
	}
	if err := dev.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("invariants after rebuild: %w", err)
	}
	return dev, nil
}

// verifyShadow checks the device against the shadow model: live content,
// full version history (count, timestamps, content) and a VersionAt spot
// query per LPA. Returns the number of versions checked.
func verifyShadow(dev *core.TimeSSD, pageSize int, shadow map[uint64][]shadowVer, at vclock.Time) (int, error) {
	checked := 0
	for _, lpa := range sortedLPAs(shadow) {
		want := shadow[lpa]
		got, done, err := dev.Versions(lpa, at)
		if err != nil {
			return checked, fmt.Errorf("versions of lpa %d: %w", lpa, err)
		}
		at = done
		if len(got) != len(want) {
			return checked, fmt.Errorf("lpa %d: device has %d versions, shadow committed %d", lpa, len(got), len(want))
		}
		for i, v := range got { // device is newest-first, shadow oldest-first
			w := want[len(want)-1-i]
			if v.TS != w.ts {
				return checked, fmt.Errorf("lpa %d version %d: ts %v, shadow %v", lpa, i, v.TS, w.ts)
			}
			if !bytes.Equal(v.Data, crashContent(pageSize, lpa, w)) {
				return checked, fmt.Errorf("lpa %d version at %v: content diverged from shadow", lpa, w.ts)
			}
			if v.Live != (i == 0) {
				return checked, fmt.Errorf("lpa %d version %d: live flag %v", lpa, i, v.Live)
			}
			checked++
		}
		// History query: the version current just before the newest write.
		if len(want) > 1 {
			w := want[len(want)-2]
			v, done, err := dev.VersionAt(lpa, w.ts, at)
			if err != nil || v == nil || v.TS != w.ts {
				return checked, fmt.Errorf("lpa %d: VersionAt(%v) = %v, %v", lpa, w.ts, v, err)
			}
			at = done
		}
	}
	return checked, nil
}

// crashContent derives a version's page content from its identity, so the
// shadow model never stores page bodies.
func crashContent(pageSize int, lpa uint64, v shadowVer) []byte {
	p := make([]byte, pageSize)
	x := v.tag ^ lpa ^ uint64(v.ts)
	for i := range p {
		// xorshift64: cheap, deterministic, content-addressed pages.
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p[i] = byte(x)
	}
	return p
}

// sortedLPAs returns the shadow's keys in ascending order (deterministic
// iteration; see almalint maporder).
func sortedLPAs(shadow map[uint64][]shadowVer) []uint64 {
	lpas := make([]uint64, 0, len(shadow))
	for lpa := range shadow {
		lpas = append(lpas, lpa)
	}
	sort.Slice(lpas, func(i, j int) bool { return lpas[i] < lpas[j] })
	return lpas
}

// envInt reads an integer environment override, keeping def when unset or
// malformed.
func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

// saveCrashArtifacts persists a failing run's medium for offline replay
// when ALMANAC_CRASH_ARTIFACTS names a directory. Best-effort: artifact
// trouble must never mask the sweep failure itself.
func saveCrashArtifacts(seed int64, dev *core.TimeSSD) {
	dir := os.Getenv("ALMANAC_CRASH_ARTIFACTS")
	if dir == "" || dev == nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	var img bytes.Buffer
	if err := dev.Arr.WriteImage(&img); err != nil {
		return
	}
	base := filepath.Join(dir, fmt.Sprintf("crashsweep-seed%d", seed))
	_ = os.WriteFile(base+".img", img.Bytes(), 0o644)
	_ = os.WriteFile(base+".txt", []byte(fmt.Sprintf("seed %d\nplan: single powercut rules armed per cut (see harness.CrashSweep)\n", seed)), 0o644)
}
