//go:build !race

package harness

// raceEnabled reports whether the race detector is compiled in; see
// race_test.go for why the equivalence golden suite skips under it.
const raceEnabled = false
