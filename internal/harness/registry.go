package harness

import (
	"fmt"
	"sync"
)

// Experiment is one runnable evaluation unit: a paper figure, an
// ablation, or an engine-level study like the design-space sweep. The
// harness used to dispatch experiments through a hardcoded map, which
// meant nothing outside this package could enumerate or extend the set;
// the registry replaces that so cmd/almanac (-list), cmd/almasweep, and
// tests all drive experiments through one programmatic surface.
//
// Run fills t in place rather than returning a table so an Experiment
// can stream rows and notes into a caller-owned result and so adapters
// can wrap existing table-returning functions without copying semantics.
type Experiment interface {
	// Name is the stable identifier used on the CLI and in reports.
	Name() string
	// Run executes the experiment at the given configuration, filling t.
	Run(c Config, t *Table) error
}

// funcExperiment adapts the classic `func(Config) (*Table, error)`
// experiment shape to the Experiment interface.
type funcExperiment struct {
	name string
	fn   func(Config) (*Table, error)
}

func (e funcExperiment) Name() string { return e.name }

func (e funcExperiment) Run(c Config, t *Table) error {
	tab, err := e.fn(c)
	if err != nil {
		return err
	}
	*t = *tab
	return nil
}

var (
	regMu    sync.RWMutex
	registry = map[string]Experiment{}
	regOrder []string
)

// Register adds an experiment under the given name. Registration is
// typically done from init functions; duplicate or empty names and nil
// experiments are programming errors and panic. Names() preserves
// registration order, which is the CLI run order.
func Register(name string, e Experiment) {
	if name == "" {
		panic("harness: Register with empty experiment name")
	}
	if e == nil {
		panic(fmt.Sprintf("harness: Register(%q) with nil experiment", name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("harness: experiment %q registered twice", name))
	}
	registry[name] = e
	regOrder = append(regOrder, name)
}

// RegisterFunc registers a classic table-returning experiment function.
func RegisterFunc(name string, fn func(Config) (*Table, error)) {
	Register(name, funcExperiment{name: name, fn: fn})
}

// Lookup returns the registered experiment, if any.
func Lookup(name string) (Experiment, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// Names returns the experiment identifiers in registration (run) order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(regOrder))
	copy(out, regOrder)
	return out
}

// Run executes one named experiment through the registry.
func Run(name string, c Config) (*Table, error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", name, Names())
	}
	t := &Table{}
	if err := e.Run(c, t); err != nil {
		return nil, err
	}
	return t, nil
}

// RunAll executes every registered experiment and returns the tables in
// registration order. fig6/fig7 share one trace sweep when run together,
// so they are produced by the combined entry point rather than run twice.
func RunAll(c Config) ([]*Table, error) {
	var out []*Table
	f6, f7, err := Figures6And7(c)
	if err != nil {
		return nil, err
	}
	out = append(out, f6, f7)
	for _, name := range Names() {
		if name == "fig6" || name == "fig7" {
			continue
		}
		t, err := Run(name, c)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// The built-in evaluation suite, registered in the paper's presentation
// order. New experiments self-register from their own files (see
// sweep.go) and append after these.
func init() {
	RegisterFunc("fig6", Figure6)
	RegisterFunc("fig7", Figure7)
	RegisterFunc("fig8", Figure8)
	RegisterFunc("fig9a", Figure9IOZone)
	RegisterFunc("fig9b", Figure9OLTP)
	RegisterFunc("fig10", Figure10)
	RegisterFunc("fig11", Figure11)
	RegisterFunc("table3", Table3)
	RegisterFunc("ablation-compress", AblationCompression)
	RegisterFunc("ablation-group", AblationGroupSize)
	RegisterFunc("ablation-th", AblationThreshold)
	RegisterFunc("ablation-bound", AblationMinRetention)
	RegisterFunc("ablation-mapcache", AblationMapCache)
	RegisterFunc("ablation-wear", AblationWear)
	RegisterFunc("scaling", ArrayScaling)
	RegisterFunc("obs", ObsReport)
	RegisterFunc("crashsweep", CrashSweep)
	RegisterFunc("service", ServiceFleet)
}
