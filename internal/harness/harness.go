// Package harness reproduces the paper's evaluation (§5): one entry point
// per figure and table, each returning a Table whose rows mirror what the
// paper plots. Absolute numbers differ from the paper's (the substrate is
// a simulator, not a Cosmos+ board — see DESIGN.md), but the comparisons
// the paper draws — who wins, by what factor, and where the trends bend —
// are expected to hold and are recorded side by side in EXPERIMENTS.md.
package harness

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"almanac/internal/core"
	"almanac/internal/flash"
	"almanac/internal/fsim"
	"almanac/internal/ftl"
	"almanac/internal/trace"
	"almanac/internal/vclock"
)

// Config scales every experiment. Quick() keeps the full sweep under a
// minute for tests and benchmarks; Standard() is the CLI default.
type Config struct {
	Flash flash.Config
	Seed  int64

	// Workers bounds the host worker pool that dispatches an experiment's
	// independent device configurations (`-j` on the almanac CLI): 0 means
	// one worker per GOMAXPROCS core, 1 forces the serial order. Each unit
	// of work builds its own devices and RNGs from the Config seed and
	// writes one preallocated result slot, so the assembled tables are
	// byte-identical at every worker count — parallelism changes host
	// wall-clock only, never a simulated result.
	Workers int

	// MinRetention is TimeSSD's guaranteed retention lower bound. The paper
	// defaults to three days on a 1 TB device; the bound is explicitly
	// vendor-configurable (§3.4) and must scale with device size — on the
	// small quick-scale device, three days of trace writes exceed the whole
	// device, which would (correctly, but uninterestingly) wedge it.
	MinRetention vclock.Duration

	// Trace experiments (Figs. 6–8, Table 3).
	ReqPerDay   int       // reference request rate fed to trace.NamedSpec
	Days        int       // trace length for response-time/WA experiments
	Usages      []float64 // device utilisations (the paper uses 50% and 80%)
	Fig8MSRLens []int     // trace lengths (days) for Fig. 8 MSR
	Fig8FIULens []int     // trace lengths (days) for Fig. 8 FIU

	// Application benchmarks (Fig. 9).
	IOZoneOps      int
	PostMarkTxns   int
	OLTPTxns       int
	OLTPTablePages int

	// Case studies (Figs. 10–11).
	RansomScale  float64 // multiplier on each family's file count
	Fig11Commits int     // edit rounds replayed before reverting
	Fig11Threads []int

	// Crash sweep (crashsweep experiment): power-cut/recovery fuzzing.
	CrashSeeds int // independent workload seeds swept
	CrashCuts  int // power cuts injected per seed

	// Service fleet (service experiment): concurrent tenants on the
	// multi-volume service.
	ServiceClients int // concurrent simulated clients (goroutines)
	ServiceOps     int // pages each client writes/reads per generation
	ServiceShards  int // array shards under the service
	ServiceVolumes int // volumes the clients are partitioned across

	// Design-space sweep (sweep experiment): the default grid truncated
	// to this many values per axis (2..4 — 16 to 256 points), and the
	// per-point workload length. cmd/almasweep drives the same engine
	// with arbitrary spec files.
	SweepAxisValues int
	SweepDays       int
	SweepReqPerDay  int
}

// Quick returns a configuration sized for tests and benchmarks.
func Quick() Config {
	fc := flash.DefaultConfig()
	fc.Channels = 4
	fc.ChipsPerChannel = 2
	fc.BlocksPerPlane = 32
	fc.PagesPerBlock = 32
	fc.PageSize = 2048 // 16 MiB raw
	// Write intensity is chosen so the device's slack space holds several
	// days of invalidated data — the same ratio the paper's traces bear to
	// its 1 TB board. Overdriving a small simulated device pushes TimeSSD
	// into a retention-thrash regime the paper never measures.
	return Config{
		Flash:           fc,
		Seed:            1,
		MinRetention:    6 * vclock.Hour,
		ReqPerDay:       250,
		Days:            7,
		Usages:          []float64{0.5, 0.8},
		Fig8MSRLens:     []int{28, 42, 56},
		Fig8FIULens:     []int{20, 30, 40},
		IOZoneOps:       400,
		PostMarkTxns:    300,
		OLTPTxns:        200,
		OLTPTablePages:  256,
		RansomScale:     0.25,
		Fig11Commits:    60,
		Fig11Threads:    []int{1, 2, 4},
		CrashSeeds:      8,
		CrashCuts:       2,
		ServiceClients:  2048,
		ServiceOps:      4,
		ServiceShards:   4,
		ServiceVolumes:  8,
		SweepAxisValues: 2,
		SweepDays:       2,
		SweepReqPerDay:  150,
	}
}

// Standard returns the CLI-default configuration: a larger device, longer
// traces, full Fig. 8 length sweeps.
func Standard() Config {
	fc := flash.DefaultConfig()
	fc.Channels = 8
	fc.ChipsPerChannel = 2
	fc.BlocksPerPlane = 64
	fc.PagesPerBlock = 64
	fc.PageSize = 4096 // 512 MiB raw
	// As at quick scale, write intensity keeps the slack-to-daily-writes
	// ratio in the paper's regime: its week-long traces never came close
	// to filling a 1 TB board's slack, so Figs. 6–7 must not be measured
	// in a permanently-packed device (that regime belongs to the
	// bound/threshold ablations).
	return Config{
		Flash:           fc,
		Seed:            1,
		MinRetention:    3 * vclock.Day,
		ReqPerDay:       1200,
		Days:            28,
		Usages:          []float64{0.5, 0.8},
		Fig8MSRLens:     []int{28, 35, 42, 49, 56, 63},
		Fig8FIULens:     []int{20, 25, 30, 35, 40},
		IOZoneOps:       4000,
		PostMarkTxns:    3000,
		OLTPTxns:        2000,
		OLTPTablePages:  2048,
		RansomScale:     1.0,
		Fig11Commits:    600,
		Fig11Threads:    []int{1, 2, 4},
		CrashSeeds:      32,
		CrashCuts:       3,
		ServiceClients:  4096,
		ServiceOps:      8,
		ServiceShards:   8,
		ServiceVolumes:  16,
		SweepAxisValues: 4,
		SweepDays:       4,
		SweepReqPerDay:  600,
	}
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table as aligned monospace text. Ragged rows are
// legal: column widths cover the widest row, rows wider than the header
// render their extra cells, and a zero-row (or even headerless) table
// renders its title and notes without panicking — experiment code may
// legitimately produce an empty table (e.g. a sweep whose every point was
// already checkpointed into another artifact).
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	cols := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// parallel runs n independent jobs across the configured worker pool and
// waits for all of them. Jobs must not share mutable state: each builds its
// own devices/RNGs and writes only its own result slot (by index), so table
// assembly afterwards is deterministic regardless of execution order. When
// several jobs fail, the lowest-indexed error is returned — the one the
// serial order would have hit first.
func (c Config) parallel(n int, job func(i int) error) error {
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// newRegular builds the baseline device.
func (c Config) newRegular() (*ftl.Regular, error) {
	return ftl.NewRegular(ftl.WithFlash(c.Flash))
}

// newTimeSSD builds a TimeSSD with paper defaults; mutate tweaks the
// config (ablations, FlashGuard-style raw retention, …).
func (c Config) newTimeSSD(mutate func(*core.Config)) (*core.TimeSSD, error) {
	cfg := core.DefaultConfig(ftl.WithFlash(c.Flash))
	cfg.MinRetention = c.MinRetention
	if mutate != nil {
		mutate(&cfg)
	}
	return core.New(cfg)
}

// traceRun holds one warmed trace replay and its device.
type traceRun struct {
	stats *trace.RunStats
	dev   ftl.Device
	end   vclock.Time
}

// runTrace warms the device (fills the footprint once) and replays the
// named workload over cfg.Days at the given utilisation.
func (c Config) runTrace(dev ftl.Device, name string, usage float64, days int) (*traceRun, error) {
	footprint := uint64(float64(dev.LogicalPages()) * usage)
	if footprint == 0 {
		return nil, fmt.Errorf("harness: zero footprint")
	}
	gen := trace.NewContentGen(dev.PageSize(), trace.ContentSimilar, c.Seed)
	warmEnd, err := trace.Fill(dev, footprint, gen, 0)
	if err != nil {
		return nil, fmt.Errorf("warmup: %w", err)
	}
	spec, err := trace.NamedSpec(name, footprint, days, c.ReqPerDay, c.Seed)
	if err != nil {
		return nil, err
	}
	reqs, err := trace.Generate(spec)
	if err != nil {
		return nil, err
	}
	shift := warmEnd.Add(vclock.Second)
	for i := range reqs {
		reqs[i].At = reqs[i].At + shift
	}
	st, err := trace.Replay(dev, reqs, trace.ReplayOptions{Content: gen, AnnounceIdle: true, KeepLatencies: true})
	if err != nil {
		return nil, fmt.Errorf("%s@%.0f%%: %w", name, usage*100, err)
	}
	return &traceRun{stats: st, dev: dev, end: st.End}, nil
}

// newFS builds a file-system stack: kind selects the §5.3 configuration.
type fsKind int

const (
	fsExt4Ordered fsKind = iota // ordered (metadata) journaling on a regular SSD — ext4's default
	fsExt4Data                  // data journaling on a regular SSD
	fsF2FS                      // log-structured on a regular SSD
	fsTimeSSD                   // in-place, no journal, on TimeSSD
)

func (k fsKind) String() string {
	switch k {
	case fsExt4Ordered, fsExt4Data:
		return "Ext4"
	case fsF2FS:
		return "F2FS"
	default:
		return "TimeSSD"
	}
}

func (c Config) newFSStack(k fsKind) (*fsim.FS, ftl.Device, error) {
	var dev ftl.Device
	var err error
	var mode fsim.Mode
	switch k {
	case fsExt4Ordered:
		dev, err = c.newRegular()
		mode = fsim.ModeOrderedJournal
	case fsExt4Data:
		dev, err = c.newRegular()
		mode = fsim.ModeDataJournal
	case fsF2FS:
		dev, err = c.newRegular()
		mode = fsim.ModeLogStructured
	default:
		dev, err = c.newTimeSSD(nil)
		mode = fsim.ModeInPlace
	}
	if err != nil {
		return nil, nil, err
	}
	opts := fsim.DefaultOptions(mode)
	opts.InodeCount = 1024
	fs, _, err := fsim.Mkfs(dev, opts, 0)
	if err != nil {
		return nil, nil, err
	}
	return fs, dev, nil
}

func ms(d vclock.Duration) string   { return fmt.Sprintf("%.3f", d.Seconds()*1e3) }
func pct(x float64) string          { return fmt.Sprintf("%+.1f%%", x*100) }
func f2(x float64) string           { return fmt.Sprintf("%.2f", x) }
func days(d vclock.Duration) string { return fmt.Sprintf("%.1f", d.Hours()/24) }
