package harness

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGoldens = flag.Bool("update", false, "rewrite the equivalence goldens from the current tree")

// equivalenceSkip lists experiments whose rendered tables cannot be
// goldened: scaling, obs and service report host wall-clock columns that
// differ between any two runs (the same set TestParallelMatchesSerial
// excludes; service has its own determinism test over the outcome
// digest). Everything else is pure virtual time plus seeded randomness
// and must render byte-identically on any host forever.
var equivalenceSkip = map[string]bool{
	"scaling": true,
	"obs":     true,
	"service": true,
}

// TestExperimentEquivalence is the bit-identity contract of the
// simulator core: every registered deterministic experiment must render
// byte-identically to the committed golden. The goldens were generated
// before the struct-of-arrays/arena/batched-scheduler rewrite of the hot
// path, so a diff here means the rewrite changed simulated behaviour —
// which it must never do. Regenerate (only for a deliberate model
// change) with:
//
//	go test ./internal/harness -run TestExperimentEquivalence -update
func TestExperimentEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	if raceEnabled {
		t.Skip("byte-compare adds no race coverage; the race lane runs these paths via TestParallelMatchesSerial")
	}
	c := tiny()
	c.CrashSeeds = 2 // full 32-seed sweep is the nightly lane's job
	c.Workers = 1
	for _, name := range Names() {
		if equivalenceSkip[name] || strings.HasPrefix(name, "test-") {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tab, err := Run(name, c)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			got := tab.Render()
			path := filepath.Join("testdata", "equivalence", name+".golden")
			if *updateGoldens {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update after a deliberate model change): %v", err)
			}
			if got != string(want) {
				t.Errorf("rendered table differs from committed golden %s:\n--- want ---\n%s\n--- got ---\n%s", path, want, got)
			}
		})
	}
}
