//go:build race

package harness

// raceEnabled reports whether the race detector is compiled in. The
// equivalence golden suite skips under it: byte-comparing rendered tables
// re-proves determinism, not race-freedom, and the same experiment code
// paths already run race-instrumented in TestParallelMatchesSerial and the
// service fleet test — while the extra full replays push the package past
// CI's per-package test timeout.
const raceEnabled = true
